#!/usr/bin/env bash
# Perf + bit-exactness smoke check.
#
# Builds a Release tree, runs the hot-path baseline bench (which
# enforces the >= 1.5x event-queue speedup gate), then regenerates
# both scaling-study CSVs into a scratch cache and diffs them against
# the goldens committed at the repo root. Any perf regression past the
# gate, or any single differing CSV byte, fails the script.
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: build-smoke)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-smoke}"

echo "== configure + build (Release) =="
cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc)" --target \
    bench_hotpath bench_fig09_cpi bench_fig19_itanium2

echo "== hot-path baseline (1.5x gate) =="
out_json="$build_dir/BENCH_hotpath.json"
"$build_dir/bench/bench_hotpath" --out "$out_json"

echo "== regenerate study CSVs with a cold cache =="
cache_dir="$(mktemp -d)"
trap 'rm -rf "$cache_dir"' EXIT
ODBSIM_CACHE_DIR="$cache_dir" "$build_dir/bench/bench_fig09_cpi" > /dev/null
ODBSIM_CACHE_DIR="$cache_dir" "$build_dir/bench/bench_fig19_itanium2" > /dev/null

echo "== diff vs goldens =="
status=0
for golden in odbsim_study_xeon-quad-mp.csv odbsim_study_itanium2-quad.csv; do
    if diff -q "$repo_root/$golden" "$cache_dir/$golden"; then
        echo "OK  $golden is bit-identical"
    else
        echo "FAIL $golden differs from golden" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "bench_smoke: PASS ($out_json)"
else
    echo "bench_smoke: FAIL — simulated results changed" >&2
fi
exit "$status"
