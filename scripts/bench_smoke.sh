#!/usr/bin/env bash
# Perf + bit-exactness smoke check.
#
# Builds a Release tree, runs the hot-path baseline bench (which
# enforces the >= 1.5x event-queue and >= 1.3x coherence-directory
# speedup gates and cross-checks the flat directory against the legacy
# implementation), then regenerates both scaling-study CSVs into
# scratch caches — once serially, once with the parallel
# longest-first scheduler (--jobs 0), once with --des-threads 4 (the
# conservative parallel DES engine), and once with --jobs 3
# --replay-threads 2 --des-threads 4 (every host-execution knob at
# once must be invisible in the output) — and diffs every
# regeneration against the goldens committed at the repo root.
#
# Every bench invocation pins ODBSIM_CSV_DIR to a scratch directory
# (removed on exit), so the script never leaves stray study CSVs in
# the source tree or the invoking directory.
#
# Any single differing CSV byte fails the script. A perf-gate miss
# (bench exit code 2) fails the script unless ODBSIM_PERF_GATE=warn,
# in which case it is reported and the script continues — CI uses warn
# because shared runners are too noisy for a hard wall-clock gate; the
# bit-exactness diffs remain fatal everywhere. Any other bench failure
# (e.g. the directory differential cross-check) is always fatal.
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: build-smoke)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-smoke}"
perf_gate="${ODBSIM_PERF_GATE:-strict}"

echo "== configure + build (Release) =="
cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc)" --target \
    bench_hotpath bench_fig09_cpi bench_fig19_itanium2 bench_islands \
    bench_faults

echo "== hot-path baseline (1.5x queue gate, 1.3x directory gate) =="
out_json="$build_dir/BENCH_hotpath.json"
bench_rc=0
"$build_dir/bench/bench_hotpath" --out "$out_json" || bench_rc=$?
if [ "$bench_rc" -eq 2 ]; then
    if [ "$perf_gate" = "warn" ]; then
        echo "WARN perf gate missed (ODBSIM_PERF_GATE=warn: continuing)" >&2
    else
        echo "FAIL perf gate missed (set ODBSIM_PERF_GATE=warn to downgrade)" >&2
        exit 2
    fi
elif [ "$bench_rc" -ne 0 ]; then
    echo "FAIL bench_hotpath exited with $bench_rc" >&2
    exit "$bench_rc"
fi

status=0
check_goldens() {
    local cache_dir="$1" label="$2"
    for golden in odbsim_study_xeon-quad-mp.csv odbsim_study_itanium2-quad.csv; do
        if [ ! -f "$repo_root/$golden" ]; then
            # The goldens are generated artifacts (gitignored): a fresh
            # checkout seeds them from the first serial regeneration;
            # every later regeneration — including the parallel one in
            # this very run — is diffed against that seed.
            if [ "$label" = "serial" ]; then
                cp "$cache_dir/$golden" "$repo_root/$golden"
                echo "SEED $golden was absent; seeded from the serial regeneration"
            else
                echo "FAIL $golden absent and not seedable from the $label run" >&2
                status=1
            fi
            continue
        fi
        if diff -q "$repo_root/$golden" "$cache_dir/$golden" > /dev/null; then
            echo "OK  $golden is bit-identical ($label)"
        else
            echo "FAIL $golden differs from golden ($label)" >&2
            status=1
        fi
    done
}

echo "== regenerate study CSVs with a cold cache (serial) =="
cache_serial="$(mktemp -d)"
cache_parallel="$(mktemp -d)"
trap 'rm -rf "$cache_serial" "$cache_parallel"' EXIT
ODBSIM_CSV_DIR="$cache_serial" "$build_dir/bench/bench_fig09_cpi" > /dev/null
ODBSIM_CSV_DIR="$cache_serial" "$build_dir/bench/bench_fig19_itanium2" > /dev/null
check_goldens "$cache_serial" "serial"

echo "== regenerate study CSVs with a cold cache (--jobs 0, longest-first) =="
ODBSIM_CSV_DIR="$cache_parallel" "$build_dir/bench/bench_fig09_cpi" -j 0 > /dev/null
ODBSIM_CSV_DIR="$cache_parallel" "$build_dir/bench/bench_fig19_itanium2" -j 0 > /dev/null
check_goldens "$cache_parallel" "parallel"

echo "== regenerate study CSVs with a cold cache (--des-threads 4) =="
# The conservative parallel DES engine is a host-execution knob: the
# committed goldens must come out byte-exact at any worker count
# (--des-threads deliberately does not bypass the CSV cache — see
# EXPERIMENTS.md).
cache_des="$(mktemp -d)"
trap 'rm -rf "$cache_serial" "$cache_parallel" "$cache_des"' EXIT
ODBSIM_CSV_DIR="$cache_des" "$build_dir/bench/bench_fig09_cpi" \
    --des-threads 4 > /dev/null
ODBSIM_CSV_DIR="$cache_des" "$build_dir/bench/bench_fig19_itanium2" \
    --des-threads 4 > /dev/null
check_goldens "$cache_des" "des-threads4"

echo "== regenerate study CSVs with a cold cache (--jobs 3 --replay-threads 2 --des-threads 4) =="
# Every host-execution knob at once: odd study worker count, intra-run
# replay threads, and the parallel DES engine. The goldens must still
# come out byte-exact (none of these knobs bypasses the CSV cache —
# see EXPERIMENTS.md).
cache_replay="$(mktemp -d)"
trap 'rm -rf "$cache_serial" "$cache_parallel" "$cache_des" "$cache_replay"' EXIT
ODBSIM_CSV_DIR="$cache_replay" "$build_dir/bench/bench_fig09_cpi" \
    --jobs 3 --replay-threads 2 --des-threads 4 > /dev/null
ODBSIM_CSV_DIR="$cache_replay" "$build_dir/bench/bench_fig19_itanium2" \
    --jobs 3 --replay-threads 2 --des-threads 4 > /dev/null
check_goldens "$cache_replay" "jobs3+replay2+des4"

echo "== islands deployment sweep (serial vs --jobs 0 must be bit-identical) =="
# The sweep self-checks its crossover physics (exit 3 on failure); the
# serial and parallel CSVs are then diffed for the determinism
# contract. The islands CSV is derived output, not a committed golden.
ODBSIM_CSV_DIR="$cache_serial" "$build_dir/bench/bench_islands" > /dev/null
ODBSIM_CSV_DIR="$cache_parallel" "$build_dir/bench/bench_islands" -j 0 > /dev/null
if diff -q "$cache_serial/odbsim_islands_xeon-quad-mp.csv" \
        "$cache_parallel/odbsim_islands_xeon-quad-mp.csv" > /dev/null; then
    echo "OK  odbsim_islands_xeon-quad-mp.csv is bit-identical (serial vs parallel)"
else
    echo "FAIL odbsim_islands_xeon-quad-mp.csv differs between serial and parallel runs" >&2
    status=1
fi

echo "== fault degradation study (serial vs --jobs 0 must be bit-identical) =="
# The study self-checks its degradation physics (exit 3 on failure):
# monotone tps decay with the fault scale and recovery back to >= 95%
# of the pre-crash rate. The serial and parallel CSVs are then diffed
# for the determinism contract. Note the scale-0 baseline rows inside
# the CSV run with the default (inert) fault plan, so this section
# also exercises the inertness path end to end.
ODBSIM_CSV_DIR="$cache_serial" "$build_dir/bench/bench_faults" > /dev/null
ODBSIM_CSV_DIR="$cache_parallel" "$build_dir/bench/bench_faults" -j 0 > /dev/null
if diff -q "$cache_serial/odbsim_faults_xeon-quad-mp.csv" \
        "$cache_parallel/odbsim_faults_xeon-quad-mp.csv" > /dev/null; then
    echo "OK  odbsim_faults_xeon-quad-mp.csv is bit-identical (serial vs parallel)"
else
    echo "FAIL odbsim_faults_xeon-quad-mp.csv differs between serial and parallel runs" >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "bench_smoke: PASS ($out_json)"
else
    echo "bench_smoke: FAIL — simulated results changed" >&2
fi
exit "$status"
