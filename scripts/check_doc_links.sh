#!/usr/bin/env bash
# Dead-link check for the repo's markdown documentation.
#
# Extracts every inline markdown link [text](target) from README.md,
# EXPERIMENTS.md and docs/*.md, and fails if a *relative* target does
# not exist on disk (resolved against the linking file's directory,
# fragments and optional titles stripped). External links (http/https/
# mailto) and pure in-page fragments (#...) are not validated — the
# check is about keeping the docs' cross-references alive as files
# move, not about the network.
#
# Usage: scripts/check_doc_links.sh   (exit 0 = all links resolve)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
status=0
checked=0

check_file() {
    local md="$1"
    local dir
    dir="$(dirname "$md")"
    # One link target per line; tolerate several links on one line.
    local targets
    targets="$(grep -oE '\[[^]]*\]\([^)]+\)' "$md" |
        sed -E 's/^\[[^]]*\]\(([^)]+)\)$/\1/' || true)"
    while IFS= read -r link; do
        [ -z "$link" ] && continue
        case "$link" in
          http://*|https://*|mailto:*|'#'*) continue ;;
        esac
        # Strip an optional quoted title and any #fragment.
        local target="${link%% \"*}"
        target="${target%%#*}"
        [ -z "$target" ] && continue
        checked=$((checked + 1))
        if [ ! -e "$dir/$target" ]; then
            echo "FAIL dead link in ${md#"$repo_root"/}: $link" >&2
            status=1
        fi
    done <<< "$targets"
}

for md in "$repo_root/README.md" "$repo_root/EXPERIMENTS.md" \
    "$repo_root"/docs/*.md; do
    [ -f "$md" ] && check_file "$md"
done

if [ "$status" -eq 0 ]; then
    echo "check_doc_links: PASS ($checked relative links resolve)"
else
    echo "check_doc_links: FAIL — fix the dead links above" >&2
fi
exit "$status"
