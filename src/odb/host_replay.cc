#include "odb/host_replay.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "db/database.hh"
#include "os/system.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/thread_pool.hh"

namespace odbsim::odb
{

namespace
{

/** Lock-owner identity for a replay bucket; never scheduled. */
class GroupProcess : public os::Process
{
  public:
    using os::Process::Process;

    os::NextAction
    next(os::System &) override
    {
        os::NextAction a;
        a.after = os::NextAction::After::Block;
        return a;
    }
};

/** Padded per-shard mutex (same discipline as bench_hotpath's
 *  concurrent-shard benches: no false sharing between stripes). */
struct alignas(128) Stripe
{
    std::mutex m;
};

std::uint64_t
foldDigest(std::uint64_t d, std::uint64_t v)
{
    d ^= v + 0x9e3779b97f4a7c15ULL + (d << 6) + (d >> 2);
    return d;
}

/** Deterministic plan-order digest of one trace. */
std::uint64_t
traceDigest(const db::ActionTrace &t)
{
    std::uint64_t d =
        foldDigest(static_cast<std::uint64_t>(t.type), t.logBytes);
    for (const db::Action &a : t.actions) {
        d = foldDigest(d, static_cast<std::uint64_t>(a.kind()));
        d = foldDigest(d, a.target);
        d = foldDigest(d, a.instr);
    }
    return d;
}

/** Miniature database scaled to the requested warehouse count (the
 *  MiniOdb cardinalities: a full run fits in milliseconds). */
db::DatabaseConfig
replayDbConfig(const HostReplayConfig &cfg)
{
    db::DatabaseConfig dbcfg;
    dbcfg.schema.warehouses = cfg.warehouses;
    dbcfg.schema.seed = cfg.seed;
    dbcfg.schema.customersPerDistrict = 300;
    dbcfg.schema.itemCount = 2000;
    dbcfg.schema.stockPerWarehouse = 2000;
    dbcfg.schema.initialOrdersPerDistrict = 100;
    dbcfg.schema.ordersPerDistrictCap = 400;
    dbcfg.schema.olPerDistrictCap = 4500;
    dbcfg.schema.newOrderCap = 200;
    dbcfg.schema.historyCap = 1800;
    dbcfg.schema.undoBlocks = 256;
    dbcfg.sgaFrames = 1024 * cfg.dbShards;
    dbcfg.shards = cfg.dbShards;
    return dbcfg;
}

} // namespace

HostReplayResult
HostReplay::run(const HostReplayConfig &cfg)
{
    odbsim_assert(cfg.groups >= 1, "host replay needs at least one group");
    odbsim_assert(cfg.warehouses >= cfg.groups &&
                      cfg.warehouses % cfg.groups == 0,
                  "warehouses (", cfg.warehouses,
                  ") must be a multiple of groups (", cfg.groups, ")");

    os::SystemConfig syscfg;
    syscfg.numCpus = 1;
    syscfg.seed = cfg.seed;
    os::System sys(syscfg);
    db::Database database(sys, replayDbConfig(cfg));
    db::LockManager &locks = database.locks();
    db::BufferCache &cache = database.bufferCache();

    // ---- Plan phase (serial, deterministic) -------------------------
    const auto plan_t0 = std::chrono::steady_clock::now();
    TxnPlanner planner(database, cfg.mix);
    const unsigned span = cfg.warehouses / cfg.groups;
    std::vector<db::ActionTrace> traces;
    traces.reserve(static_cast<std::size_t>(cfg.groups) * cfg.txnsPerGroup);
    std::vector<unsigned> homeGroup; // planned-for group of each trace
    homeGroup.reserve(traces.capacity());
    for (unsigned g = 0; g < cfg.groups; ++g) {
        Rng rng(cfg.seed + 0x9e3779b97f4a7c15ULL * (g + 1));
        for (unsigned t = 0; t < cfg.txnsPerGroup; ++t) {
            const std::uint32_t home_w =
                g * span + static_cast<std::uint32_t>(rng.below(span));
            traces.push_back(planner.planRandom(rng, home_w));
            homeGroup.push_back(g);
        }
    }

    // Greedy claim-map assignment: during the parallel phase each lock
    // key is only ever locked by the single group that claimed it, so
    // conflicts are structurally impossible; traces that straddle a
    // claim boundary go to the serial cross bucket.
    std::unordered_map<db::LockKey, unsigned> owner;
    std::vector<std::vector<std::size_t>> groupTraces(cfg.groups);
    std::vector<std::size_t> crossTraces;
    for (std::size_t i = 0; i < traces.size(); ++i) {
        const unsigned g = homeGroup[i];
        bool foreign = false;
        for (const db::Action &a : traces[i].actions) {
            if (a.kind() != db::ActionKind::Lock)
                continue;
            auto it = owner.find(a.target);
            if (it != owner.end() && it->second != g) {
                foreign = true;
                break;
            }
        }
        if (foreign) {
            crossTraces.push_back(i);
            continue;
        }
        for (const db::Action &a : traces[i].actions) {
            if (a.kind() == db::ActionKind::Lock)
                owner.emplace(a.target, g);
        }
        groupTraces[g].push_back(i);
    }

    const double plan_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      plan_t0)
            .count();

    // ---- Replay phase ----------------------------------------------
    std::vector<Stripe> lockStripes(locks.shards());
    std::vector<Stripe> bufStripes(cache.shards());

    const auto replayBucket = [&](const std::vector<std::size_t> &bucket,
                                  os::Process *proc,
                                  HostReplayGroupStats &stats) {
        std::vector<db::LockKey> held;
        for (std::size_t ti : bucket) {
            const db::ActionTrace &tr = traces[ti];
            for (const db::Action &a : tr.actions) {
                switch (a.kind()) {
                  case db::ActionKind::Lock: {
                      bool granted;
                      {
                          std::lock_guard<std::mutex> g(
                              lockStripes[locks.shardOf(a.target)].m);
                          granted = locks.acquire(proc, a.target);
                      }
                      odbsim_assert(granted,
                                    "host replay lock conflict: the "
                                    "claim map must make these "
                                    "impossible");
                      held.push_back(a.target);
                      ++stats.lockAcquires;
                      break;
                  }
                  case db::ActionKind::Unlock: {
                      {
                          std::lock_guard<std::mutex> g(
                              lockStripes[locks.shardOf(a.target)].m);
                          locks.release(proc, a.target, sys);
                      }
                      auto it = std::find(held.begin(), held.end(),
                                          a.target);
                      if (it != held.end())
                          held.erase(it);
                      break;
                  }
                  case db::ActionKind::Touch: {
                      const bool modify =
                          a.touch() == db::TouchKind::HeapModify;
                      std::lock_guard<std::mutex> g(
                          bufStripes[cache.shardOf(a.target)].m);
                      db::BufferLookup look = cache.lookup(a.target);
                      std::uint64_t frame = look.frame;
                      if (!look.hit) {
                          db::BufferVictim v = cache.allocate(a.target);
                          cache.fillComplete(v.frame);
                          frame = v.frame;
                      }
                      if (modify)
                          cache.markDirty(frame);
                      ++stats.touches;
                      break;
                  }
                  case db::ActionKind::Compute:
                      stats.computeInstr += a.instr;
                      break;
                  case db::ActionKind::Commit:
                      stats.logBytes += tr.logBytes;
                      for (db::LockKey k : held) {
                          std::lock_guard<std::mutex> g(
                              lockStripes[locks.shardOf(k)].m);
                          locks.release(proc, k, sys);
                      }
                      held.clear();
                      break;
                }
            }
            // Read-only traces without an explicit Commit still
            // release whatever they hold before the next transaction.
            for (db::LockKey k : held) {
                std::lock_guard<std::mutex> g(
                    lockStripes[locks.shardOf(k)].m);
                locks.release(proc, k, sys);
            }
            held.clear();
            stats.actions += tr.actions.size();
            ++stats.txns;
            stats.digest = foldDigest(stats.digest, traceDigest(tr));
        }
    };

    HostReplayResult out;
    out.groups.resize(cfg.groups);
    std::vector<std::unique_ptr<GroupProcess>> procs;
    procs.reserve(cfg.groups + 1);
    for (unsigned g = 0; g < cfg.groups; ++g)
        procs.push_back(std::make_unique<GroupProcess>(
            "host-replay-" + std::to_string(g)));
    procs.push_back(std::make_unique<GroupProcess>("host-replay-cross"));

    // One worker task per group; stats land in their group slot, so
    // the result is bit-identical for any thread count.
    const auto replay_t0 = std::chrono::steady_clock::now();
    hostParallelFor(cfg.threads, cfg.groups, [&](std::size_t g) {
        replayBucket(groupTraces[g], procs[g].get(), out.groups[g]);
    });

    // Cross-group bucket: serial, after the parallel join (its keys
    // may overlap any group's claims).
    replayBucket(crossTraces, procs.back().get(), out.cross);
    out.planSeconds = plan_seconds;
    out.replaySeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      replay_t0)
            .count();

    for (const HostReplayGroupStats &g : out.groups)
        out.digest = foldDigest(out.digest, g.digest);
    out.digest = foldDigest(out.digest, out.cross.digest);

    out.lockConflicts = locks.conflicts();
    out.locksHeldAfter = locks.heldCount();
    out.lockAcquires = locks.acquires();
    out.bufferGets = cache.gets();
    out.bufferMisses = cache.misses();
    odbsim_assert(out.lockConflicts == 0,
                  "host replay saw a lock conflict");
    odbsim_assert(out.locksHeldAfter == 0,
                  "host replay leaked a lock");
    return out;
}

} // namespace odbsim::odb
