/**
 * @file
 * OdbWorkload: drives one database with C concurrent clients (each a
 * dedicated ServerProcess bound to a home warehouse) and aggregates
 * transaction throughput and response-time statistics.
 */

#ifndef ODBSIM_ODB_WORKLOAD_HH
#define ODBSIM_ODB_WORKLOAD_HH

#include <cstdint>
#include <vector>

#include "db/database.hh"
#include "db/trace.hh"
#include "odb/planner.hh"
#include "os/placement.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace odbsim::odb
{

class ServerProcess;

/** Client population and mix. */
struct WorkloadConfig
{
    unsigned clients = 8;           ///< Concurrent clients (servers).
    TxnMix mix;                     ///< Transaction-type mix.
    std::uint64_t seed = 0x0dbULL;  ///< Workload RNG seed.
    /**
     * Server placement on the machine's socket topology. The default
     * None keeps the legacy unpinned, uniformly-drawing behaviour
     * bit-identically; Island pins each server to a socket group and
     * partitions its warehouse draws (see docs/TOPOLOGY.md).
     */
    os::PlacementConfig placement;
};

/**
 * The client/server population of one run.
 */
class OdbWorkload
{
  public:
    OdbWorkload(db::Database &database, const WorkloadConfig &cfg);

    /** Spawn the server processes (call after Database::start()). */
    void start();

    unsigned clients() const { return cfg_.clients; }

    /** Home warehouse of each spawned client. */
    const std::vector<std::uint32_t> &homes() const { return homes_; }

    /**
     * Server process @p i (valid after start()). Multi-island
     * deployments use this to address cross-island coordination
     * messages to a specific server on the target instance.
     */
    ServerProcess *server(std::size_t i) const { return servers_[i]; }

    /** Called by ServerProcess at commit time. */
    void recordCommit(db::TxnType type, Tick latency, Tick now);

    /** @name Crash + recovery orchestration (inert without a crash
     *  knob: nothing is scheduled and the timeline stays empty) @{ */
    /** A crashed server rolled back and is about to block. */
    void parkCrashed(ServerProcess *p);
    /** Redo replay finished: record MTTR, revive every server. */
    void recoveryComplete();
    /** Servers currently parked behind the crash. */
    std::size_t parkedCount() const { return parked_.size(); }
    /**
     * Commits whose completion fell in [@p a, @p b), from the 10 ms
     * commit timeline kept on crash-enabled runs — how bench_faults
     * reads the throughput dip and the post-recovery ramp.
     */
    std::uint64_t commitsBetween(Tick a, Tick b) const;
    /** @} */

    /** @name Statistics @{ */
    std::uint64_t committed() const;
    std::uint64_t
    committed(db::TxnType t) const
    {
        return counts_[static_cast<unsigned>(t)];
    }
    const RunningStat &
    latencyMs(db::TxnType t) const
    {
        return latency_[static_cast<unsigned>(t)];
    }
    /** Response-time distribution over all transaction types. */
    const Histogram &latencyHistogramMs() const { return latencyHist_; }
    /** Transactions per second over @p window ticks. */
    double tps(Tick window) const;
    void resetStats();
    /** @} */

  private:
    /** Commit-timeline bucket width (crash-enabled runs only). */
    static constexpr Tick timelineBucketTicks = 10 * tickPerMs;

    void beginCrash();

    db::Database &db_;
    WorkloadConfig cfg_;
    TxnPlanner planner_;
    Rng rng_;
    bool started_ = false;
    std::vector<std::uint32_t> homes_;
    /** Spawned servers (owned by the System; observers here). */
    std::vector<ServerProcess *> servers_;
    /** Servers parked behind the instance crash. */
    std::vector<ServerProcess *> parked_;
    /** Commits per 10 ms of absolute sim time; only populated when
     *  the fault plan schedules a crash (inertness contract). */
    std::vector<std::uint32_t> timeline_;
    bool trackTimeline_ = false;

    std::uint64_t counts_[db::numTxnTypes] = {};
    RunningStat latency_[db::numTxnTypes];
    Histogram latencyHist_{0.0, 500.0, 500};
};

} // namespace odbsim::odb

#endif // ODBSIM_ODB_WORKLOAD_HH
