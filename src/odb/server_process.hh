/**
 * @file
 * ServerProcess: one dedicated database server process per connected
 * client (Oracle's dedicated-server model, Figure 1 of the paper).
 *
 * The process loops forever: plan a transaction for its home
 * warehouse, then replay the trace action by action — buffer-cache
 * gets that may stall on disk reads, row locks that may block on
 * contention, and a commit that blocks on the group-commit log flush.
 * Clients submit with zero think time, so a server is always either
 * running, ready, or blocked on I/O/locks — the saturation load the
 * paper uses.
 */

#ifndef ODBSIM_ODB_SERVER_PROCESS_HH
#define ODBSIM_ODB_SERVER_PROCESS_HH

#include <cstdint>
#include <vector>

#include "db/database.hh"
#include "db/trace.hh"
#include "odb/planner.hh"
#include "os/process.hh"
#include "sim/rng.hh"

namespace odbsim::odb
{

class OdbWorkload;

/**
 * Replay engine for one client connection.
 */
class ServerProcess : public os::Process
{
  public:
    ServerProcess(db::Database &database, OdbWorkload &workload,
                  TxnPlanner &planner, std::uint32_t home_w, Rng rng);

    os::NextAction next(os::System &sys) override;

    /** The warehouse this server was seeded with. */
    std::uint32_t homeWarehouse() const { return homeW_; }

    /**
     * Mark this server as killed by the instance crash. Consumed at
     * the next dispatch: the in-flight transaction (if any) is rolled
     * back and the process parks until OdbWorkload::recoveryComplete
     * wakes it. Cleared by clearCrash() before the recovery wake.
     */
    void requestCrash() { crashRequested_ = true; }
    void clearCrash() { crashRequested_ = false; }
    bool crashRequested() const { return crashRequested_; }

    /**
     * Restrict this server's warehouse draws to [@p w_lo, @p w_hi)
     * with probability 1 - @p cross_fraction, drawing from the whole
     * database otherwise (island deployments; see docs/TOPOLOGY.md).
     * A transaction whose draw lands outside the partition charges
     * @p coord_instr extra instructions at commit — the distributed
     * coordination cost of a multi-instance deployment. Call before
     * the first transaction. Unpartitioned servers keep the legacy
     * single uniform draw bit-identically.
     */
    void
    setPartition(std::uint32_t w_lo, std::uint32_t w_hi,
                 double cross_fraction, std::uint64_t coord_instr)
    {
        wLo_ = w_lo;
        wSpan_ = w_hi - w_lo;
        crossFraction_ = cross_fraction;
        coordInstr_ = coord_instr;
    }

  private:
    /** Resume state within the current action. */
    enum class Resume : std::uint8_t
    {
        None,        ///< Start the action at pc_ fresh.
        LockGranted, ///< Woken holding pendingLock_.
        FillDone,    ///< Disk read into pendingFrame_ landed.
        Flushed,     ///< Commit's log flush completed.
    };

    cpu::WorkItem baseWork(std::uint64_t instr) const;
    os::NextAction replayLock(os::System &sys, const db::Action &a);
    os::NextAction replayUnlock(os::System &sys, const db::Action &a);
    os::NextAction replayTouch(os::System &sys, const db::Action &a);
    os::NextAction replayCompute(const db::Action &a);
    os::NextAction replayCommit(os::System &sys);

    /**
     * Undo the in-flight transaction: normalize any pending Resume
     * state, reverse the plan-time schema mutations back to front,
     * release every held lock. Leaves the process ready to replan.
     */
    void rollback(os::System &sys);
    /** Roll back, charge the abort cost, then sleep for the jittered
     *  client backoff and replan the same transaction on wake. */
    os::NextAction abortAndRetry(os::System &sys);
    /** Roll back and park until recovery completes. */
    os::NextAction parkForCrash(os::System &sys);

    db::Database &db_;
    OdbWorkload &workload_;
    TxnPlanner &planner_;
    std::uint32_t homeW_;
    /** Partition draw range (wSpan_ == 0: unpartitioned legacy). @{ */
    std::uint32_t wLo_ = 0;
    std::uint32_t wSpan_ = 0;
    double crossFraction_ = 0.0;
    std::uint64_t coordInstr_ = 0;
    /** True while replaying a txn outside the server's partition. */
    bool crossTxn_ = false;
    /** @} */
    Rng rng_;

    db::ActionTrace trace_;
    std::size_t pc_ = 0;
    bool txnActive_ = false;
    Tick txnStart_ = 0;
    /** Warehouse of the in-flight transaction (retries replan it). */
    std::uint32_t txnW_ = 0;

    Resume resume_ = Resume::None;
    db::LockKey pendingLock_ = 0;
    std::uint64_t pendingFrame_ = 0;

    /** @name Fault injection (all dormant on an inert FaultPlan) @{ */
    /** Spontaneous abort armed at plan time, firing at abortAtPc_. */
    bool abortArmed_ = false;
    std::size_t abortAtPc_ = 0;
    /** Replan the same (type, warehouse) after the backoff sleep. */
    bool retryPending_ = false;
    bool crashRequested_ = false;
    /** @} */

    std::vector<db::LockKey> heldLocks_;
};

} // namespace odbsim::odb

#endif // ODBSIM_ODB_SERVER_PROCESS_HH
