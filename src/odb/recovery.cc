#include "odb/recovery.hh"

#include <algorithm>

#include "mem/addr_space.hh"
#include "odb/workload.hh"
#include "sim/logging.hh"

namespace odbsim::odb
{

RecoveryProcess::RecoveryProcess(db::Database &database,
                                 OdbWorkload &workload)
    : os::Process("recovery"), db_(database), workload_(workload)
{
}

cpu::WorkItem
RecoveryProcess::applyWork(std::uint64_t instr) const
{
    // Redo apply is a streaming pass: log records in, block images
    // out — buffer-cache heavy, little private state.
    cpu::WorkItem wi;
    wi.instructions = instr;
    wi.mode = mem::ExecMode::User;
    wi.codeBase = mem::addrmap::dbCodeBase;
    wi.codeBytes = mem::addrmap::dbCodeBytes;
    wi.privateBase = privateBase();
    wi.privateBytes = mem::addrmap::pgaHotBytes;
    wi.sharedBase = mem::addrmap::dbSharedBase;
    wi.sharedBytes = mem::addrmap::dbSharedBytes;
    wi.privateWeight = 0.30f;
    wi.sharedWeight = 0.70f;
    wi.frameWeight = 0.0f;
    wi.dataRateScale = 1.0f;
    return wi;
}

os::NextAction
RecoveryProcess::next(os::System &sys)
{
    os::NextAction out;
    sim::FaultPlan &faults = sys.faults();
    const sim::FaultConfig &fc = faults.config();

    if (redoLeft_ == ~std::uint64_t{0}) {
        // First dispatch: size the redo window from the checkpoint
        // marker, bounded by the configured cap.
        const auto cap = static_cast<std::uint64_t>(
            fc.recoveryRedoCapMb * 1024.0 * 1024.0);
        redoLeft_ = std::min(db_.log().redoSinceCheckpoint(), cap);
        faults.stats().redoReplayedBytes = redoLeft_;
        odbsim_inform("crash recovery: replaying ", redoLeft_,
                      " redo bytes");
    } else if (pendingChunk_ > 0) {
        // The log read landed: charge the apply cost for the chunk.
        const double kb = static_cast<double>(pendingChunk_) / 1024.0;
        redoLeft_ -= pendingChunk_;
        pendingChunk_ = 0;
        out.work = applyWork(static_cast<std::uint64_t>(
            kb * fc.recoveryApplyInstrPerKb));
        out.after = os::NextAction::After::Continue;
        return out;
    }

    if (redoLeft_ == 0) {
        // Instance up: stamp recoveryEndTick, revive the servers.
        workload_.recoveryComplete();
        out.work = applyWork(50000); // Open-for-business bookkeeping.
        out.after = os::NextAction::After::Terminate;
        return out;
    }

    // Issue the next sequential log read and sleep until it DMAs in.
    pendingChunk_ = std::min(
        redoLeft_, static_cast<std::uint64_t>(
                       fc.recoveryReadChunkKb * 1024.0));
    sys.chargeKernel(this, sys.kernelCosts().ioSubmitInstr);
    os::System *s = &sys;
    sys.disks().readLog(pendingChunk_, [this, s] {
        s->wakeProcess(this, s->kernelCosts().ioCompleteInstr);
    });
    out.work = applyWork(2000); // Read setup.
    out.after = os::NextAction::After::Block;
    return out;
}

} // namespace odbsim::odb
