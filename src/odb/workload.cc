#include "odb/workload.hh"

#include <algorithm>
#include <memory>

#include "odb/recovery.hh"
#include "odb/server_process.hh"
#include "sim/logging.hh"

namespace odbsim::odb
{

OdbWorkload::OdbWorkload(db::Database &database, const WorkloadConfig &cfg)
    : db_(database), cfg_(cfg), planner_(database, cfg.mix),
      rng_(cfg.seed)
{
    odbsim_assert(cfg.clients >= 1, "workload needs at least one client");
}

void
OdbWorkload::start()
{
    odbsim_assert(!started_, "workload already started");
    started_ = true;
    const unsigned w_cnt = db_.schema().warehouses();
    os::System &sys = db_.sys();
    const os::PlacementConfig &pl = cfg_.placement;
    const unsigned sockets = sys.numSockets();

    // Island deployment geometry: k sockets per island, warehouses
    // split into equal contiguous ranges, one per island.
    unsigned island_k = 1, num_islands = 1;
    if (pl.policy == os::PlacementPolicy::Island) {
        island_k = std::clamp(pl.islandSockets, 1u, sockets);
        num_islands = sockets / island_k;
        odbsim_assert(num_islands * island_k == sockets,
                      "islandSockets must divide the socket count");
    }

    odbsim_assert(pl.policy != os::PlacementPolicy::Island ||
                      w_cnt >= num_islands,
                  "fewer warehouses than islands");

    homes_.clear();
    servers_.clear();
    servers_.reserve(cfg_.clients);
    for (unsigned i = 0; i < cfg_.clients; ++i) {
        // The home warehouse only seeds the server; every transaction
        // picks its warehouse uniformly (see ServerProcess::next), so
        // the working set spans the whole database as W scales. Under
        // Island placement clients round-robin over the islands (so
        // the islands stay load-balanced for any client count), the
        // home moves inside the island's partition, and draws favour
        // that range instead.
        std::uint32_t home = i % w_cnt;
        std::uint32_t w_lo = 0, w_hi = 0;
        unsigned island = 0;
        if (pl.policy == os::PlacementPolicy::Island) {
            island = i % num_islands;
            w_lo = static_cast<std::uint32_t>(
                static_cast<std::uint64_t>(island) * w_cnt /
                num_islands);
            w_hi = static_cast<std::uint32_t>(
                static_cast<std::uint64_t>(island + 1) * w_cnt /
                num_islands);
            home = w_lo + (i / num_islands) % (w_hi - w_lo);
        }
        homes_.push_back(home);
        auto sp = std::make_unique<ServerProcess>(
            db_, *this, planner_, home, rng_.fork());
        switch (pl.policy) {
          case os::PlacementPolicy::None:
          case os::PlacementPolicy::Spread:
            // Shared-everything: float over every CPU, draw globally.
            break;
          case os::PlacementPolicy::Pack:
            // One undersized instance on the first islandSockets
            // sockets; the remaining CPUs stay idle.
            sp->setCpuAffinity(sys.socketAffinityMask(
                0, std::clamp(pl.islandSockets, 1u, sockets)));
            break;
          case os::PlacementPolicy::Island:
            sp->setCpuAffinity(
                sys.socketAffinityMask(island * island_k, island_k));
            sp->setPartition(w_lo, w_hi, pl.crossIslandFraction,
                             pl.crossIslandCoordInstr);
            break;
        }
        servers_.push_back(sp.get());
        sys.spawn(std::move(sp));
    }

    // Crash orchestration: one absolute-tick event kills the instance
    // and spawns the recovery process. Nothing is scheduled (and the
    // commit timeline stays unallocated) when the knob is off.
    sim::FaultPlan &faults = sys.faults();
    if (faults.crashEnabled()) {
        trackTimeline_ = true;
        sys.eq().schedule(ticksFromMs(faults.config().crashAtMs),
                          [this] { beginCrash(); });
    }
}

void
OdbWorkload::beginCrash()
{
    os::System &sys = db_.sys();
    sim::FaultPlan &faults = sys.faults();
    ++faults.stats().crashes;
    faults.stats().crashTick = sys.now();
    // Every server dies: running/ready ones park at their next
    // dispatch; blocked ones park when the pending I/O or lock wake
    // dispatches them (crashed holders release their locks during
    // rollback, so waiter chains unwind rather than deadlock).
    for (ServerProcess *s : servers_)
        s->requestCrash();
    sys.spawn(std::make_unique<RecoveryProcess>(db_, *this));
}

void
OdbWorkload::parkCrashed(ServerProcess *p)
{
    parked_.push_back(p);
}

void
OdbWorkload::recoveryComplete()
{
    os::System &sys = db_.sys();
    sys.faults().stats().recoveryEndTick = sys.now();
    // Clear the flag on every server first: a server still waiting
    // out a long disk read when recovery finishes simply resumes
    // instead of parking after the instance is already back up.
    for (ServerProcess *s : servers_)
        s->clearCrash();
    for (ServerProcess *s : parked_)
        sys.wakeProcess(s, sys.kernelCosts().ioCompleteInstr);
    parked_.clear();
}

std::uint64_t
OdbWorkload::commitsBetween(Tick a, Tick b) const
{
    std::uint64_t n = 0;
    const std::size_t lo =
        static_cast<std::size_t>(a / timelineBucketTicks);
    const std::size_t hi = std::min(
        timeline_.size(),
        static_cast<std::size_t>(b / timelineBucketTicks));
    for (std::size_t i = lo; i < hi; ++i)
        n += timeline_[i];
    return n;
}

void
OdbWorkload::recordCommit(db::TxnType type, Tick latency, Tick now)
{
    const unsigned i = static_cast<unsigned>(type);
    ++counts_[i];
    const double ms = secondsFromTicks(latency) * 1e3;
    latency_[i].add(ms);
    latencyHist_.add(ms);
    if (trackTimeline_) {
        const auto b =
            static_cast<std::size_t>(now / timelineBucketTicks);
        if (timeline_.size() <= b)
            timeline_.resize(b + 1, 0);
        ++timeline_[b];
    }
}

std::uint64_t
OdbWorkload::committed() const
{
    std::uint64_t n = 0;
    for (const auto c : counts_)
        n += c;
    return n;
}

double
OdbWorkload::tps(Tick window) const
{
    if (window == 0)
        return 0.0;
    return static_cast<double>(committed()) / secondsFromTicks(window);
}

void
OdbWorkload::resetStats()
{
    for (auto &c : counts_)
        c = 0;
    for (auto &l : latency_)
        l.reset();
    latencyHist_.reset();
}

} // namespace odbsim::odb
