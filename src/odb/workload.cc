#include "odb/workload.hh"

#include <memory>

#include "odb/server_process.hh"
#include "sim/logging.hh"

namespace odbsim::odb
{

OdbWorkload::OdbWorkload(db::Database &database, const WorkloadConfig &cfg)
    : db_(database), cfg_(cfg), planner_(database, cfg.mix),
      rng_(cfg.seed)
{
    odbsim_assert(cfg.clients >= 1, "workload needs at least one client");
}

void
OdbWorkload::start()
{
    odbsim_assert(!started_, "workload already started");
    started_ = true;
    const unsigned w_cnt = db_.schema().warehouses();
    homes_.clear();
    for (unsigned i = 0; i < cfg_.clients; ++i) {
        // The home warehouse only seeds the server; every transaction
        // picks its warehouse uniformly (see ServerProcess::next), so
        // the working set spans the whole database as W scales.
        const std::uint32_t home = i % w_cnt;
        homes_.push_back(home);
        db_.sys().spawn(std::make_unique<ServerProcess>(
            db_, *this, planner_, home, rng_.fork()));
    }
}

void
OdbWorkload::recordCommit(db::TxnType type, Tick latency)
{
    const unsigned i = static_cast<unsigned>(type);
    ++counts_[i];
    const double ms = secondsFromTicks(latency) * 1e3;
    latency_[i].add(ms);
    latencyHist_.add(ms);
}

std::uint64_t
OdbWorkload::committed() const
{
    std::uint64_t n = 0;
    for (const auto c : counts_)
        n += c;
    return n;
}

double
OdbWorkload::tps(Tick window) const
{
    if (window == 0)
        return 0.0;
    return static_cast<double>(committed()) / secondsFromTicks(window);
}

void
OdbWorkload::resetStats()
{
    for (auto &c : counts_)
        c = 0;
    for (auto &l : latency_)
        l.reset();
    latencyHist_.reset();
}

} // namespace odbsim::odb
