/**
 * @file
 * Transaction planners for the five ODB transaction types.
 *
 * A planner runs the transaction's logic *functionally* against the
 * schema (allocating order ids, adjusting stock, deriving which rows
 * and index nodes are touched) and records an ActionTrace for timed
 * replay. Non-uniform key selection follows TPC-C: NURand customer and
 * item choices, 85/15 home/remote payment warehouses, 1% remote stock.
 *
 * Lock actions are emitted in global (table-rank, key) order, making
 * the replay deadlock-free by construction.
 */

#ifndef ODBSIM_ODB_PLANNER_HH
#define ODBSIM_ODB_PLANNER_HH

#include <cstdint>

#include "db/database.hh"
#include "db/trace.hh"
#include "sim/rng.hh"

namespace odbsim::odb
{

/** Transaction-mix weights (percent; TPC-C-like defaults). */
struct TxnMix
{
    unsigned newOrderPct = 45;
    unsigned paymentPct = 43;
    unsigned orderStatusPct = 4;
    unsigned deliveryPct = 4;
    unsigned stockLevelPct = 4;
};

/**
 * Builds action traces against one database.
 */
class TxnPlanner
{
  public:
    TxnPlanner(db::Database &database, const TxnMix &mix);

    /**
     * Pick a type from the mix and plan it for @p home_w into @p out
     * (reset first, capacity retained — the zero-allocation path a
     * server process replans its recycled trace through).
     */
    void planRandom(Rng &rng, std::uint32_t home_w,
                    db::ActionTrace &out);

    /** Plan a specific transaction type into @p out. */
    void plan(db::TxnType type, Rng &rng, std::uint32_t home_w,
              db::ActionTrace &out);

    /** Convenience by-value forms (tests, tooling). @{ */
    db::ActionTrace
    planRandom(Rng &rng, std::uint32_t home_w)
    {
        db::ActionTrace t;
        planRandom(rng, home_w, t);
        return t;
    }
    db::ActionTrace
    plan(db::TxnType type, Rng &rng, std::uint32_t home_w)
    {
        db::ActionTrace t;
        plan(type, rng, home_w, t);
        return t;
    }
    /** @} */

    const TxnMix &mix() const { return mix_; }

  private:
    void planNewOrder(db::ActionTrace &t, Rng &rng, std::uint32_t w);
    void planPayment(db::ActionTrace &t, Rng &rng, std::uint32_t w);
    void planOrderStatus(db::ActionTrace &t, Rng &rng, std::uint32_t w);
    void planDelivery(db::ActionTrace &t, Rng &rng, std::uint32_t w);
    void planStockLevel(db::ActionTrace &t, Rng &rng, std::uint32_t w);

    /** Emit the root-to-leaf index traversal for @p key. */
    void emitIndexLookup(db::ActionTrace &t, const db::ImplicitBTree &idx,
                         std::uint64_t key);
    /** Emit a heap-row touch. */
    void emitRowTouch(db::ActionTrace &t, const db::RowLoc &loc,
                      bool modify);
    /** Emit an undo-record write for a modification. */
    void emitUndo(db::ActionTrace &t, std::uint32_t bytes);
    /** Emit the per-SQL-statement execution overhead. */
    void emitStatement(db::ActionTrace &t);

    db::Database &db_;
    TxnMix mix_;
};

} // namespace odbsim::odb

#endif // ODBSIM_ODB_PLANNER_HH
