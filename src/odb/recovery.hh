/**
 * @file
 * RecoveryProcess: crash recovery of the database instance.
 *
 * Spawned at the crash tick, it reads the redo generated since the
 * last checkpoint off the log drives in fixed-size chunks and charges
 * the CPU cost of applying it, then declares the instance up again
 * through OdbWorkload::recoveryComplete. MTTR is the span between the
 * crash tick and that completion; the amount of redo to replay — and
 * therefore how long the throughput dip lasts — is bounded by how
 * recently DBWR finished a checkpoint (db::LogManager's checkpoint
 * marker) and capped by FaultConfig::recoveryRedoCapMb.
 */

#ifndef ODBSIM_ODB_RECOVERY_HH
#define ODBSIM_ODB_RECOVERY_HH

#include <cstdint>

#include "db/database.hh"
#include "os/process.hh"

namespace odbsim::odb
{

class OdbWorkload;

/**
 * Replays the post-checkpoint redo window after an instance crash.
 */
class RecoveryProcess : public os::Process
{
  public:
    RecoveryProcess(db::Database &database, OdbWorkload &workload);

    os::NextAction next(os::System &sys) override;

  private:
    cpu::WorkItem applyWork(std::uint64_t instr) const;

    db::Database &db_;
    OdbWorkload &workload_;
    /** Redo bytes still to replay; resolved on the first dispatch. */
    std::uint64_t redoLeft_ = ~std::uint64_t{0};
    /** Bytes of the log read currently in flight (0 = none). */
    std::uint64_t pendingChunk_ = 0;
};

} // namespace odbsim::odb

#endif // ODBSIM_ODB_RECOVERY_HH
