/**
 * @file
 * HostReplay: drive independent warehouse groups' transaction streams
 * on host worker threads against the K-sharded lock manager and buffer
 * cache — the end-to-end form of the concurrent-shard microbenches in
 * bench_hotpath (docs/SCALE.md), and the first replay path that turns
 * PR 8's sharding into wall-clock speedup on a multi-core host.
 *
 * This is deliberately *not* the discrete-event simulation: the DES
 * replay is a single globally-ordered clock and stays serial. Instead,
 * HostReplay splits the plan-then-replay pipeline at its natural seam:
 *
 *  1. Plan phase (serial, deterministic). A TxnPlanner builds every
 *     group's ActionTraces group by group from per-group RNG streams,
 *     mutating the schema functionally exactly as the DES path does.
 *     Each trace is then assigned by a greedy lock-key claim map:
 *     a trace whose lock keys are all unclaimed or already claimed by
 *     its home group replays with that group; a trace touching another
 *     group's claimed key (TPC-C's 15% remote payments / 1% remote
 *     stock) falls into the cross bucket.
 *
 *  2. Replay phase (host-parallel). One worker task per group replays
 *     its traces against the shared sharded tables, serialized per
 *     shard by padded stripe mutexes. The claim map makes lock
 *     *conflicts* structurally impossible during this phase — every
 *     key is locked only by its owning group, whose traces replay
 *     serially — so LockManager::release never has a waiter to wake
 *     and the scheduler is never touched from a worker thread
 *     (asserted: conflicts() == 0, heldCount() == 0 afterwards).
 *     The cross bucket replays serially after the parallel join.
 *
 * Determinism contract: all per-group counters and digests are derived
 * from the serial plan order and collected by group index, so they are
 * bit-identical for any thread count. Buffer-cache hit/miss totals are
 * the one exception — interleaving of groups on a shared shard
 * reorders LRU state — and are reported as informational only.
 */

#ifndef ODBSIM_ODB_HOST_REPLAY_HH
#define ODBSIM_ODB_HOST_REPLAY_HH

#include <cstdint>
#include <vector>

#include "odb/planner.hh"

namespace odbsim::odb
{

/** Host-parallel replay experiment definition. */
struct HostReplayConfig
{
    /** Database scale; must be divisible by groups. */
    unsigned warehouses = 16;
    /** Independent warehouse groups (one worker task each). */
    unsigned groups = 4;
    /** Transactions planned per group. */
    unsigned txnsPerGroup = 200;
    /** Host worker threads (hostParallelFor semantics: 1 = serial,
     *  0 = one per hardware thread). */
    unsigned threads = 1;
    /** Lock-manager / buffer-cache shard count (power of two). */
    unsigned dbShards = 4;
    /** Master seed for the per-group planning RNG streams. */
    std::uint64_t seed = 42;
    /** Transaction mix planned for every group. */
    TxnMix mix;
};

/** Plan-derived counters of one replay bucket (deterministic). */
struct HostReplayGroupStats
{
    std::uint64_t txns = 0;
    std::uint64_t actions = 0;
    std::uint64_t lockAcquires = 0;
    std::uint64_t touches = 0;
    std::uint64_t computeInstr = 0;
    std::uint64_t logBytes = 0;
    /** Order-sensitive fold over the bucket's actions. */
    std::uint64_t digest = 0;
};

/** Everything one HostReplay run yields. */
struct HostReplayResult
{
    /** Per-group stats, by group index (bit-identical at any thread
     *  count). */
    std::vector<HostReplayGroupStats> groups;
    /** The serially-replayed cross-group bucket. */
    HostReplayGroupStats cross;
    /** Fold of the group digests (group order) and the cross digest. */
    std::uint64_t digest = 0;

    /** @name Shared-table invariants after replay @{ */
    /** LockManager::conflicts(); 0 by construction. */
    std::uint64_t lockConflicts = 0;
    /** LockManager::heldCount(); 0 — every trace commits. */
    std::uint64_t locksHeldAfter = 0;
    /** LockManager::acquires() — equals the sum of the bucket
     *  lockAcquires counters. */
    std::uint64_t lockAcquires = 0;
    /** @} */

    /** @name Informational (timing-dependent under threads > 1) @{ */
    std::uint64_t bufferGets = 0;
    std::uint64_t bufferMisses = 0;
    /** Host wall clock of the serial plan+assign phase. */
    double planSeconds = 0.0;
    /** Host wall clock of the replay phase (parallel groups + serial
     *  cross bucket) — the figure the bench's speedup compares. */
    double replaySeconds = 0.0;
    /** @} */
};

/**
 * Runs one host-parallel replay experiment. Builds its own
 * System/Database (miniature cardinalities scaled by warehouses), so
 * concurrent calls from different threads are independent.
 */
class HostReplay
{
  public:
    static HostReplayResult run(const HostReplayConfig &cfg);
};

} // namespace odbsim::odb

#endif // ODBSIM_ODB_HOST_REPLAY_HH
