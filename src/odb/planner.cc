#include "odb/planner.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace odbsim::odb
{

using db::Action;
using db::ActionTrace;
using db::PlanUndo;
using db::RowLoc;
using db::Table;
using db::TxnType;

namespace
{

/**
 * ODB-style two-tier key skew: a share of picks lands in a small hot
 * prefix of the domain (recently active customers / popular items),
 * the rest is NURand over the full domain. This is what keeps the
 * buffer-cache hit ratio high on the paper's 2.8 GB cache even at
 * hundreds of warehouses.
 */
std::uint32_t
skewedKey(Rng &rng, std::uint32_t domain, std::uint32_t hot_span,
          double hot_prob, std::int64_t nurand_a)
{
    if (hot_span < domain && rng.chance(hot_prob))
        return static_cast<std::uint32_t>(rng.below(hot_span));
    return static_cast<std::uint32_t>(
        rng.nurand(nurand_a, 0, domain - 1));
}

std::uint32_t
pickCustomer(Rng &rng, const db::SchemaConfig &cfg)
{
    return skewedKey(rng, cfg.customersPerDistrict,
                     cfg.hotCustomersPerDistrict(), 0.80, 1023);
}

std::uint32_t
pickItem(Rng &rng, const db::SchemaConfig &cfg)
{
    return skewedKey(rng, cfg.itemCount, cfg.hotItems(), 0.85, 8191);
}

} // namespace

TxnPlanner::TxnPlanner(db::Database &database, const TxnMix &mix)
    : db_(database), mix_(mix)
{
    const unsigned total = mix.newOrderPct + mix.paymentPct +
                           mix.orderStatusPct + mix.deliveryPct +
                           mix.stockLevelPct;
    odbsim_assert(total == 100, "transaction mix must sum to 100, got ",
                  total);
}

void
TxnPlanner::planRandom(Rng &rng, std::uint32_t home_w, ActionTrace &out)
{
    const unsigned pick = static_cast<unsigned>(rng.below(100));
    TxnType type;
    if (pick < mix_.newOrderPct)
        type = TxnType::NewOrder;
    else if (pick < mix_.newOrderPct + mix_.paymentPct)
        type = TxnType::Payment;
    else if (pick < mix_.newOrderPct + mix_.paymentPct +
                        mix_.orderStatusPct)
        type = TxnType::OrderStatus;
    else if (pick < mix_.newOrderPct + mix_.paymentPct +
                        mix_.orderStatusPct + mix_.deliveryPct)
        type = TxnType::Delivery;
    else
        type = TxnType::StockLevel;
    plan(type, rng, home_w, out);
}

void
TxnPlanner::plan(TxnType type, Rng &rng, std::uint32_t home_w,
                 ActionTrace &out)
{
    ActionTrace &t = out;
    t.reset(type);
    // Per-transaction fixed path: begin, client round trips, commit
    // machinery.
    t.actions.push_back(Action::compute(db_.costs().txnBaseInstr));
    switch (type) {
      case TxnType::NewOrder:
        planNewOrder(t, rng, home_w);
        break;
      case TxnType::Payment:
        planPayment(t, rng, home_w);
        break;
      case TxnType::OrderStatus:
        planOrderStatus(t, rng, home_w);
        break;
      case TxnType::Delivery:
        planDelivery(t, rng, home_w);
        break;
      case TxnType::StockLevel:
        planStockLevel(t, rng, home_w);
        break;
      default:
        odbsim_panic("unknown transaction type");
    }
    t.actions.push_back(Action::commit());
}

void
TxnPlanner::emitIndexLookup(ActionTrace &t, const db::ImplicitBTree &idx,
                            std::uint64_t key)
{
    const db::IndexPath path = idx.lookup(key);
    for (unsigned l = 0; l < path.height; ++l) {
        const std::uint16_t offset = static_cast<std::uint16_t>(
            db::Schema::mix(key, l, 0x1d) % (db::blockBytes - 256));
        t.actions.push_back(Action::touchIndex(path.node[l], offset));
    }
}

void
TxnPlanner::emitRowTouch(ActionTrace &t, const RowLoc &loc, bool modify)
{
    const std::uint32_t offset = loc.slot * loc.rowBytes;
    const std::uint16_t bytes = static_cast<std::uint16_t>(
        std::min<std::uint32_t>(loc.rowBytes, 512));
    t.actions.push_back(Action::touchHeap(
        loc.block, static_cast<std::uint16_t>(offset), bytes, modify));
}

void
TxnPlanner::emitUndo(ActionTrace &t, std::uint32_t bytes)
{
    const std::uint64_t cursor = db_.schema().allocateUndo(bytes);
    const db::BlockId block = db_.schema().undoBlockAt(cursor);
    const std::uint16_t offset = static_cast<std::uint16_t>(
        cursor % db::blockBytes);
    t.actions.push_back(Action::touchFresh(
        block, offset,
        static_cast<std::uint16_t>(std::min<std::uint32_t>(bytes, 512))));
}

void
TxnPlanner::emitStatement(ActionTrace &t)
{
    t.actions.push_back(Action::compute(db_.costs().sqlStatementInstr));
}

void
TxnPlanner::planNewOrder(ActionTrace &t, Rng &rng, std::uint32_t w)
{
    db::Schema &s = db_.schema();
    const auto &cfg = s.config();
    const std::uint32_t d =
        static_cast<std::uint32_t>(rng.below(cfg.districtsPerWarehouse));
    const std::uint32_t c = pickCustomer(rng, cfg);
    const std::uint8_t ol_cnt =
        static_cast<std::uint8_t>(rng.range(5, 15));

    // Read warehouse (tax rate). The warehouse block is a shared hot
    // block; its buffer-busy/ITL contention is modeled as a short
    // row lock held through the order-entry phase — the source of the
    // context-switch spike at small W (Figure 8).
    t.actions.push_back(Action::lock(db::makeLockKey(Table::Warehouse, w)));
    emitStatement(t);
    emitRowTouch(t, s.warehouseRow(w), false);

    // Lock + read/update district (allocates the order id).
    t.actions.push_back(
        Action::lock(db::makeLockKey(Table::District,
                                     w * cfg.districtsPerWarehouse + d)));
    emitStatement(t);
    emitRowTouch(t, s.districtRow(w, d), true);
    emitUndo(t, 120);

    // Read customer.
    emitStatement(t);
    emitIndexLookup(t, s.customerIndex(), s.customerKey(w, d, c));
    emitRowTouch(t, s.customerRow(w, d, c), false);

    const std::uint32_t oid = s.allocateOrder(w, d, c, ol_cnt);
    t.undo.push_back(PlanUndo{PlanUndo::Kind::EraseOrder, w, d, oid, 0.0});
    const db::OrderInfo info = s.orderInfo(w, d, oid);

    // Insert order + new-order rows.
    emitStatement(t);
    emitIndexLookup(t, s.ordersIndex(), s.orderKey(w, d, oid));
    emitRowTouch(t, s.orderRow(w, d, oid), true);
    emitUndo(t, 60);
    emitStatement(t);
    emitIndexLookup(t, s.newOrderIndex(), s.newOrderKey(w, d, oid));
    emitRowTouch(t, s.newOrderRow(w, d, oid), true);

    // Order lines: item read, stock read/update, line insert. Stock
    // keys are sorted to respect the global locking order (stock rows
    // use short-duration latches folded into the path cost, so no
    // Lock actions are emitted for them).
    for (unsigned l = 0; l < ol_cnt; ++l) {
        const std::uint32_t item = pickItem(rng, cfg);
        std::uint32_t supply_w = w;
        if (s.warehouses() > 1 && rng.chance(0.01)) {
            supply_w = static_cast<std::uint32_t>(
                rng.below(s.warehouses()));
        }

        emitStatement(t);
        emitIndexLookup(t, s.itemIndex(), item);
        emitRowTouch(t, s.itemRow(item), false);

        emitStatement(t);
        emitIndexLookup(t, s.stockIndex(), s.stockKey(supply_w, item));
        emitRowTouch(t, s.stockRow(supply_w, item), true);
        emitUndo(t, 100);
        std::int32_t net = 0;
        s.adjustStock(supply_w, item,
                      -static_cast<std::int32_t>(rng.range(1, 10)),
                      &net);
        t.undo.push_back(PlanUndo{PlanUndo::Kind::StockDelta, supply_w,
                                  0, item, static_cast<double>(net)});

        emitRowTouch(t, s.orderLineRow(w, d, info.olSeqStart + l), true);
    }

    // End of the block-contention critical section.
    t.actions.push_back(
        Action::unlock(db::makeLockKey(Table::Warehouse, w)));

    t.logBytes = 4000 + 450u * ol_cnt;
}

void
TxnPlanner::planPayment(ActionTrace &t, Rng &rng, std::uint32_t w)
{
    db::Schema &s = db_.schema();
    const auto &cfg = s.config();
    const std::uint32_t d =
        static_cast<std::uint32_t>(rng.below(cfg.districtsPerWarehouse));

    // 85% of payments are for the home warehouse, 15% remote.
    std::uint32_t cw = w;
    std::uint32_t cd = d;
    if (s.warehouses() > 1 && rng.chance(0.15)) {
        cw = static_cast<std::uint32_t>(rng.below(s.warehouses()));
        cd = static_cast<std::uint32_t>(
            rng.below(cfg.districtsPerWarehouse));
    }
    const std::uint32_t c = pickCustomer(rng, cfg);
    const double amount = rng.uniform(1.0, 5000.0);

    // Locks in global (table-rank, key) order.
    t.actions.push_back(Action::lock(db::makeLockKey(Table::Warehouse, w)));
    t.actions.push_back(
        Action::lock(db::makeLockKey(Table::District,
                                     w * cfg.districtsPerWarehouse + d)));
    t.actions.push_back(Action::lock(
        db::makeLockKey(Table::Customer, s.customerKey(cw, cd, c))));

    emitStatement(t);
    emitRowTouch(t, s.warehouseRow(w), true);
    emitUndo(t, 80);
    s.addWarehouseYtd(w, amount);
    t.undo.push_back(
        PlanUndo{PlanUndo::Kind::WarehouseYtd, w, 0, 0, amount});

    emitStatement(t);
    emitRowTouch(t, s.districtRow(w, d), true);
    emitUndo(t, 80);
    s.addDistrictYtd(w, d, amount);
    t.undo.push_back(
        PlanUndo{PlanUndo::Kind::DistrictYtd, w, d, 0, amount});

    // 60% of customer selections go through the last-name index (a
    // short range scan), 40% by customer id.
    emitStatement(t);
    if (rng.chance(0.60)) {
        emitIndexLookup(t, s.customerNameIndex(),
                        s.customerKey(cw, cd, c));
        // Name collisions: the scan touches a second leaf and a few
        // candidate rows.
        const db::IndexPath p =
            s.customerNameIndex().lookup(s.customerKey(cw, cd, c));
        t.actions.push_back(Action::touchIndex(p.leaf(), 4096));
        for (unsigned k = 0; k < 2; ++k) {
            const std::uint32_t cc =
                (c + 13 * (k + 1)) % cfg.customersPerDistrict;
            emitRowTouch(t, s.customerRow(cw, cd, cc), false);
        }
    } else {
        emitIndexLookup(t, s.customerIndex(), s.customerKey(cw, cd, c));
    }
    emitRowTouch(t, s.customerRow(cw, cd, c), true);
    emitUndo(t, 120);
    s.adjustCustomerBalance(cw, cd, c, -amount);
    t.undo.push_back(
        PlanUndo{PlanUndo::Kind::CustomerBalance, cw, cd, c, -amount});

    // History insert (no index; append-only ring, never read back).
    emitStatement(t);
    const std::uint32_t hseq = s.allocateHistory(w);
    const RowLoc hloc = s.historyRow(w, hseq);
    t.actions.push_back(Action::touchFresh(
        hloc.block, static_cast<std::uint16_t>(hloc.slot * hloc.rowBytes),
        static_cast<std::uint16_t>(hloc.rowBytes)));

    t.logBytes = 3200;
}

void
TxnPlanner::planOrderStatus(ActionTrace &t, Rng &rng, std::uint32_t w)
{
    db::Schema &s = db_.schema();
    const auto &cfg = s.config();
    const std::uint32_t d =
        static_cast<std::uint32_t>(rng.below(cfg.districtsPerWarehouse));
    const std::uint32_t c = pickCustomer(rng, cfg);

    emitStatement(t);
    if (rng.chance(0.60)) {
        emitIndexLookup(t, s.customerNameIndex(), s.customerKey(w, d, c));
    } else {
        emitIndexLookup(t, s.customerIndex(), s.customerKey(w, d, c));
    }
    emitRowTouch(t, s.customerRow(w, d, c), false);

    // The customer's most recent order.
    const std::uint32_t next = s.nextOid(w, d);
    if (next > 0) {
        const std::uint32_t back =
            static_cast<std::uint32_t>(rng.below(std::min(next, 6u)));
        const std::uint32_t oid = next - 1 - back;
        emitStatement(t);
        emitIndexLookup(t, s.ordersIndex(), s.orderKey(w, d, oid));
        emitRowTouch(t, s.orderRow(w, d, oid), false);

        const db::OrderInfo info = s.orderInfo(w, d, oid);
        emitStatement(t);
        const RowLoc first = s.orderLineRow(w, d, info.olSeqStart);
        const std::uint32_t span = std::min<std::uint32_t>(
            static_cast<std::uint32_t>(info.olCnt) * first.rowBytes,
            static_cast<std::uint32_t>(db::blockBytes) -
                first.slot * first.rowBytes);
        t.actions.push_back(Action::touchHeap(
            first.block,
            static_cast<std::uint16_t>(first.slot * first.rowBytes),
            static_cast<std::uint16_t>(span), false));
    }

    t.logBytes = 0; // Read-only.
}

void
TxnPlanner::planDelivery(ActionTrace &t, Rng &rng, std::uint32_t w)
{
    db::Schema &s = db_.schema();
    const auto &cfg = s.config();
    (void)rng;

    for (std::uint32_t d = 0; d < cfg.districtsPerWarehouse; ++d) {
        const auto oid = s.popDeliveryOrder(w, d);
        if (!oid)
            continue;
        t.undo.push_back(
            PlanUndo{PlanUndo::Kind::DeliveryCursor, w, d, *oid, 0.0});
        t.actions.push_back(
            Action::lock(db::makeLockKey(
                Table::District, w * cfg.districtsPerWarehouse + d)));

        // Delete the new-order entry.
        emitStatement(t);
        emitIndexLookup(t, s.newOrderIndex(), s.newOrderKey(w, d, *oid));
        emitRowTouch(t, s.newOrderRow(w, d, *oid), true);

        // Update the order (carrier id).
        emitStatement(t);
        emitIndexLookup(t, s.ordersIndex(), s.orderKey(w, d, *oid));
        emitRowTouch(t, s.orderRow(w, d, *oid), true);
        emitUndo(t, 60);

        // Stamp the order lines.
        const db::OrderInfo info = s.orderInfo(w, d, *oid);
        emitStatement(t);
        const RowLoc first = s.orderLineRow(w, d, info.olSeqStart);
        const std::uint32_t span = std::min<std::uint32_t>(
            static_cast<std::uint32_t>(info.olCnt) * first.rowBytes,
            static_cast<std::uint32_t>(db::blockBytes) -
                first.slot * first.rowBytes);
        t.actions.push_back(Action::touchHeap(
            first.block,
            static_cast<std::uint16_t>(first.slot * first.rowBytes),
            static_cast<std::uint16_t>(span), true));
        emitUndo(t, 150);

        // Credit the customer.
        emitStatement(t);
        emitIndexLookup(t, s.customerIndex(),
                        s.customerKey(w, d, info.customer));
        emitRowTouch(t, s.customerRow(w, d, info.customer), true);
        emitUndo(t, 100);
        s.adjustCustomerBalance(w, d, info.customer, 100.0);
        t.undo.push_back(PlanUndo{PlanUndo::Kind::CustomerBalance, w, d,
                                  info.customer, 100.0});
    }

    t.logBytes = 12000;
}

void
TxnPlanner::planStockLevel(ActionTrace &t, Rng &rng, std::uint32_t w)
{
    db::Schema &s = db_.schema();
    const auto &cfg = s.config();
    const std::uint32_t d =
        static_cast<std::uint32_t>(rng.below(cfg.districtsPerWarehouse));

    emitStatement(t);
    emitRowTouch(t, s.districtRow(w, d), false);

    // Scan the order lines of the last 20 orders (~200 rows, a couple
    // of blocks at the append frontier).
    const std::uint32_t next = s.nextOid(w, d);
    const std::uint32_t lookback = std::min(next, 20u);
    emitStatement(t);
    if (lookback > 0) {
        const db::OrderInfo oldest =
            s.orderInfo(w, d, next - lookback);
        const RowLoc first = s.orderLineRow(w, d, oldest.olSeqStart);
        for (unsigned b = 0; b < 2; ++b) {
            t.actions.push_back(Action::touchHeap(
                first.block + b, 0,
                static_cast<std::uint16_t>(db::blockBytes - 1), false));
        }
    }

    // Check ~20 distinct stocked items for low quantity.
    emitStatement(t);
    for (unsigned k = 0; k < 20; ++k) {
        const std::uint32_t item = pickItem(rng, cfg);
        emitIndexLookup(t, s.stockIndex(), s.stockKey(w, item));
        emitRowTouch(t, s.stockRow(w, item), false);
    }

    t.logBytes = 0; // Read-only.
}

} // namespace odbsim::odb
