#include "odb/server_process.hh"

#include <algorithm>

#include "mem/addr_space.hh"
#include "odb/workload.hh"
#include "sim/logging.hh"

namespace odbsim::odb
{

using db::Action;
using db::ActionKind;
using db::TouchKind;

ServerProcess::ServerProcess(db::Database &database, OdbWorkload &workload,
                             TxnPlanner &planner, std::uint32_t home_w,
                             Rng rng)
    : os::Process("server-w" + std::to_string(home_w)), db_(database),
      workload_(workload), planner_(planner), homeW_(home_w), rng_(rng)
{
    // A transaction holds a handful of row locks (NewOrder: ~13);
    // pre-sizing keeps steady-state replay off the heap.
    heldLocks_.reserve(32);
}

cpu::WorkItem
ServerProcess::baseWork(std::uint64_t instr) const
{
    cpu::WorkItem wi;
    wi.instructions = instr;
    wi.mode = mem::ExecMode::User;
    wi.codeBase = mem::addrmap::dbCodeBase;
    wi.codeBytes = mem::addrmap::dbCodeBytes;
    wi.privateBase = privateBase();
    wi.privateBytes = mem::addrmap::pgaHotBytes;
    wi.sharedBase = mem::addrmap::dbSharedBase;
    wi.sharedBytes = mem::addrmap::dbSharedBytes;
    // SQL-machinery mix: session state and the shared pool; lighter
    // post-L1 traffic than block operations.
    wi.privateWeight = 0.70f;
    wi.sharedWeight = 0.30f;
    wi.frameWeight = 0.0f;
    wi.dataRateScale = 0.6f;
    return wi;
}

os::NextAction
ServerProcess::next(os::System &sys)
{
    // The instance crashed: roll back whatever is in flight and park
    // until recovery finishes. Blocked servers reach this the next
    // time their pending I/O or lock wake dispatches them.
    if (crashRequested_)
        return parkForCrash(sys);

    if (!txnActive_) {
        sim::FaultPlan &faults = sys.faults();
        if (retryPending_) {
            // Client resubmission of the aborted transaction: same
            // type, same warehouse, replanned against current state.
            retryPending_ = false;
            ++faults.stats().txnRetries;
            planner_.plan(trace_.type, rng_, txnW_, trace_);
        } else {
            // Each transaction is submitted against a uniformly
            // chosen warehouse, spanning the whole database as W
            // scales — the working-set growth at the heart of the
            // study. Shared rows (warehouse/district) collide at
            // small W, producing the contention spike of Figure 8.
            // Island-partitioned servers (wSpan_ != 0) draw from
            // their own warehouse range instead, except for the
            // cross-island fraction.
            std::uint32_t w;
            if (wSpan_ == 0) {
                w = static_cast<std::uint32_t>(
                    rng_.below(db_.schema().warehouses()));
            } else if (crossFraction_ > 0.0 &&
                       rng_.chance(crossFraction_)) {
                w = static_cast<std::uint32_t>(
                    rng_.below(db_.schema().warehouses()));
            } else {
                w = wLo_ +
                    static_cast<std::uint32_t>(rng_.below(wSpan_));
            }
            txnW_ = w;
            planner_.planRandom(rng_, w, trace_);
        }
        // Distributed transaction: the draw escaped the partition, so
        // commit will pay the multi-instance coordination cost.
        crossTxn_ = wSpan_ != 0 &&
                    (txnW_ < wLo_ || txnW_ >= wLo_ + wSpan_);
        pc_ = 0;
        txnActive_ = true;
        txnStart_ = sys.now();
        resume_ = Resume::None;
        if (faults.txnAbortsEnabled() && faults.drawTxnAbort()) {
            // Spontaneous abort (constraint violation, client
            // cancel), armed now so replay dies mid-flight at a
            // deterministic action index.
            abortArmed_ = true;
            abortAtPc_ = faults.drawAbortPoint(
                static_cast<std::uint32_t>(trace_.actions.size()));
        }
        odbsim_assert(heldLocks_.empty(),
                      "locks leaked across transactions");
    }

    if (abortArmed_ && resume_ == Resume::None && pc_ >= abortAtPc_)
        return abortAndRetry(sys);

    odbsim_assert(pc_ < trace_.actions.size(), "trace overrun");
    const Action &a = trace_.actions[pc_];
    switch (a.kind()) {
      case ActionKind::Lock:
        return replayLock(sys, a);
      case ActionKind::Unlock:
        return replayUnlock(sys, a);
      case ActionKind::Touch:
        return replayTouch(sys, a);
      case ActionKind::Compute:
        return replayCompute(a);
      case ActionKind::Commit:
        return replayCommit(sys);
    }
    odbsim_panic("unreachable action kind");
}

os::NextAction
ServerProcess::replayLock(os::System &sys, const Action &a)
{
    (void)sys;
    os::NextAction out;
    const auto &costs = db_.costs();

    if (resume_ == Resume::LockGranted) {
        resume_ = Resume::None;
        if (db_.locks().holderOf(pendingLock_) != this) {
            // Woken by the lock-wait timeout, not a grant: the
            // manager already removed us from the waiter queue, so
            // abort the transaction and let the client retry.
            return abortAndRetry(sys);
        }
        // Woken by the previous holder; the lock is ours now.
        heldLocks_.push_back(pendingLock_);
        ++pc_;
        out.work = baseWork(500); // Post-wake bookkeeping.
        out.after = os::NextAction::After::Continue;
        return out;
    }

    out.work = baseWork(costs.lockInstr);
    out.work.addRef(mem::addrmap::lockTableBase +
                        (a.target * 0x9e3779b97f4a7c15ULL) %
                            mem::addrmap::lockTableBytes,
                    64, true);
    if (db_.locks().acquire(this, a.target)) {
        heldLocks_.push_back(a.target);
        ++pc_;
        out.after = os::NextAction::After::Continue;
    } else {
        pendingLock_ = a.target;
        resume_ = Resume::LockGranted;
        out.after = os::NextAction::After::Block;
    }
    return out;
}

os::NextAction
ServerProcess::replayUnlock(os::System &sys, const Action &a)
{
    os::NextAction out;
    const auto it =
        std::find(heldLocks_.begin(), heldLocks_.end(), a.target);
    odbsim_assert(it != heldLocks_.end(),
                  "unlock of a lock that is not held");
    heldLocks_.erase(it);
    db_.locks().release(this, a.target, sys);
    out.work = baseWork(db_.costs().lockInstr / 2);
    ++pc_;
    out.after = os::NextAction::After::Continue;
    return out;
}

os::NextAction
ServerProcess::replayTouch(os::System &sys, const Action &a)
{
    os::NextAction out;
    const auto &costs = db_.costs();
    db::BufferCache &bc = db_.bufferCache();
    const db::BlockId block = a.target;
    const bool modify = a.touch() == TouchKind::HeapModify;

    std::uint64_t frame;
    if (resume_ == Resume::FillDone) {
        // The DMA landed while we slept; the frame is ours.
        resume_ = Resume::None;
        bc.fillComplete(pendingFrame_);
        frame = pendingFrame_;
    } else {
        const db::BufferLookup hit = bc.lookup(block);
        if (!hit.hit) {
            const db::BufferVictim victim = bc.allocate(block);
            if (victim.wasDirty)
                db_.dbwr().enqueueEvicted(victim.evictedBlock);
            if (a.fresh()) {
                // Freshly formatted extent block (undo, append ring):
                // no read from disk is needed, just a frame.
                bc.fillComplete(victim.frame);
                frame = victim.frame;
            } else {
                // Sleep until the disk read DMAs in.
                pendingFrame_ = victim.frame;
                resume_ = Resume::FillDone;
                sys.chargeKernel(this, sys.kernelCosts().ioSubmitInstr);
                sys.diskReadForProcess(this, block,
                                       bc.frameAddr(victim.frame),
                                       db::blockBytes);
                out.work = baseWork(costs.bufferMissInstr);
                out.work.addRef(bc.metaAddr(block), 64, true);
                out.after = os::NextAction::After::Block;
                return out;
            }
        } else {
            frame = hit.frame;
        }
    }

    // The block is resident: buffer get plus row/index work.
    std::uint64_t instr = costs.bufferGetInstr + a.instr;
    const Addr base = bc.frameAddr(frame);
    out.work = baseWork(instr);
    out.work.extraCycles = costs.bufferGetExtraCycles;
    // Intra-block traffic (slot directory, neighbouring rows).
    // Intra-block references concentrate on the header / row
    // directory quarter of the block.
    out.work.frameAddr = base;
    out.work.frameBytes = 2048;
    out.work.privateWeight = 0.40f;
    out.work.sharedWeight = 0.15f;
    out.work.frameWeight = 0.45f;
    out.work.dataRateScale = 1.0f;
    out.work.addRef(bc.metaAddr(block), 64, false);

    switch (a.touch()) {
      case TouchKind::HeapRead:
        out.work.instructions += costs.rowAccessInstr;
        // Block header + the row itself.
        out.work.addRef(base, 64, false);
        out.work.addRef(base + a.offset(),
                        std::max<std::uint32_t>(a.bytes(), 64), false);
        break;
      case TouchKind::HeapModify:
        out.work.instructions +=
            costs.rowAccessInstr + costs.rowModifyInstr;
        out.work.addRef(base, 64, true);
        out.work.addRef(base + a.offset(),
                        std::max<std::uint32_t>(a.bytes(), 64), true);
        break;
      case TouchKind::IndexNode:
        out.work.instructions += costs.indexNodeInstr;
        // Binary-search top of the node (deterministic, hot) plus the
        // key-dependent entry.
        out.work.addRef(base + 4032, 128, false);
        out.work.addRef(base + a.offset(), 64, false);
        break;
    }
    if (modify && !bc.isDirty(frame)) {
        // First modification since the last write-back: register the
        // block on DBWR's checkpoint queue.
        bc.markDirty(frame);
        db_.dbwr().noteDirty(block, sys.now());
    }
    ++pc_;
    out.after = os::NextAction::After::Continue;
    return out;
}

os::NextAction
ServerProcess::replayCompute(const Action &a)
{
    os::NextAction out;
    out.work = baseWork(a.instr);
    ++pc_;
    out.after = os::NextAction::After::Continue;
    return out;
}

os::NextAction
ServerProcess::replayCommit(os::System &sys)
{
    os::NextAction out;
    const auto &costs = db_.costs();

    if (trace_.logBytes > 0 && resume_ != Resume::Flushed) {
        // Copy redo into the log buffer and wait for the group flush.
        const double kb = static_cast<double>(trace_.logBytes) / 1024.0;
        out.work = baseWork(static_cast<std::uint64_t>(
            kb * static_cast<double>(costs.logCopyInstrPerKb)));
        out.work.addRef(mem::addrmap::logBufferBase +
                            (sys.now() / 64 * 64) %
                                mem::addrmap::logBufferBytes,
                        std::min<std::uint32_t>(trace_.logBytes, 8192),
                        true);
        resume_ = Resume::Flushed;
        db_.log().requestCommit(this, trace_.logBytes);
        out.after = os::NextAction::After::Block;
        return out;
    }

    // Durable (or read-only): release locks, finish the transaction.
    // Cross-partition transactions settle the distributed-coordination
    // bill here (2PC messaging, duplicated log work).
    resume_ = Resume::None;
    db_.locks().releaseAll(this, heldLocks_, sys);
    out.work = baseWork(3000 + (crossTxn_ ? coordInstr_ : 0));
    crossTxn_ = false;
    txnActive_ = false;
    abortArmed_ = false;
    workload_.recordCommit(trace_.type, sys.now() - txnStart_,
                           sys.now());
    out.after = os::NextAction::After::Continue;
    return out;
}

void
ServerProcess::rollback(os::System &sys)
{
    // Normalize whatever mid-action state the transaction died in. A
    // LockGranted wake may or may not actually hold the lock (grant
    // vs timeout — holderOf distinguishes); a FillDone wake means the
    // DMA landed, so publish the fill rather than leaving the frame
    // in-transit forever. A pending log flush needs nothing: the redo
    // of an aborted transaction is simply wasted log bandwidth.
    switch (resume_) {
      case Resume::LockGranted:
        if (db_.locks().holderOf(pendingLock_) == this)
            heldLocks_.push_back(pendingLock_);
        break;
      case Resume::FillDone:
        db_.bufferCache().fillComplete(pendingFrame_);
        break;
      case Resume::None:
      case Resume::Flushed:
        break;
    }
    resume_ = Resume::None;

    // Reverse the plan-time schema mutations, newest first, so the
    // retry replans against correct state (delta-based: concurrent
    // plans against the same rows survive; see db::PlanUndo).
    db::Schema &schema = db_.schema();
    for (auto it = trace_.undo.rbegin(); it != trace_.undo.rend(); ++it)
        schema.applyPlanUndo(*it);

    db_.locks().releaseAll(this, heldLocks_, sys);
    txnActive_ = false;
    abortArmed_ = false;
    crossTxn_ = false;
}

os::NextAction
ServerProcess::abortAndRetry(os::System &sys)
{
    const std::size_t replayed = pc_;
    rollback(sys);
    sim::FaultPlan &faults = sys.faults();
    ++faults.stats().txnAborts;
    retryPending_ = true;

    // Rollback cost scales with how far replay got (undo records
    // applied for the executed prefix), then the client backs off
    // with jitter before resubmitting.
    const auto &costs = db_.costs();
    os::NextAction out;
    out.work = baseWork(costs.abortBaseInstr +
                        costs.abortPerActionInstr *
                            static_cast<std::uint64_t>(replayed));
    sys.sleepProcess(this, faults.drawClientBackoff());
    out.after = os::NextAction::After::Block;
    return out;
}

os::NextAction
ServerProcess::parkForCrash(os::System &sys)
{
    if (txnActive_) {
        // The killed transaction is rolled back here at the data
        // level (the timing cost of recovery's undo/redo work is the
        // RecoveryProcess's job) and resubmitted once the instance is
        // back up.
        rollback(sys);
        ++sys.faults().stats().txnAborts;
        retryPending_ = true;
    }
    workload_.parkCrashed(this);
    os::NextAction out;
    out.work = baseWork(500); // Connection teardown remnant.
    out.after = os::NextAction::After::Block;
    return out;
}

} // namespace odbsim::odb
