/**
 * @file
 * A small set-associative TLB model over 4 KB pages. The Xeon MP's
 * page_walk_type EMON event (paper Table 2) counts page walks; here a
 * TLB miss corresponds to one walk.
 */

#ifndef ODBSIM_MEM_TLB_HH
#define ODBSIM_MEM_TLB_HH

#include <cstdint>

#include "mem/cache.hh"
#include "sim/types.hh"

namespace odbsim::mem
{

/**
 * TLB modeled as a tag-store cache over page addresses.
 */
class Tlb
{
  public:
    /**
     * @param entries Total TLB entries.
     * @param assoc Associativity.
     * @param page_bytes Page size (4 KB on the studied system).
     */
    Tlb(std::uint32_t entries, std::uint32_t assoc,
        std::uint32_t page_bytes = 4096)
        : pageBytes_(page_bytes),
          store_("tlb",
                 CacheGeometry{static_cast<std::uint64_t>(entries) * 8,
                               assoc, 8})
    {}

    /**
     * Translate an address.
     * @return true on TLB hit, false if a page walk is required.
     */
    bool
    access(Addr addr)
    {
        // Map each page to one 8-byte "line" in the tag store.
        const Addr page = addr / pageBytes_;
        return store_.access(page * 8, false).hit;
    }

    /** Drop every translation (e.g. between measurement runs). */
    void flush() { store_.flush(); }

    /** Total translations attempted since the last resetStats(). */
    std::uint64_t accesses() const { return store_.accesses(); }
    /** Translations that required a page walk. */
    std::uint64_t misses() const { return store_.misses(); }
    /** Zero the counters (translations are kept). */
    void resetStats() { store_.resetStats(); }

  private:
    std::uint32_t pageBytes_;
    SetAssocCache store_;
};

} // namespace odbsim::mem

#endif // ODBSIM_MEM_TLB_HH
