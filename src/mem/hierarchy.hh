/**
 * @file
 * Per-CPU cache hierarchy (L2 + L3 tag stores) and the system-wide
 * MemorySystem facade that adds bus, coherence and — on multi-socket
 * topologies — interconnect behaviour.
 *
 * The simulated reference stream is *set-sampled*: the CPU model feeds
 * only cache lines whose global line index is a multiple of the
 * sampling factor S, and the tag stores are built at 1/S of their
 * nominal capacity, so per-line reuse behaviour is preserved exactly
 * while counters are scaled back up by S (see DESIGN.md). The L1
 * levels (trace cache, L1D, TLB) contribute flat per-instruction
 * costs in the paper's own methodology and are modeled statistically
 * in the CPU core instead.
 *
 * With TopologyConfig::sockets > 1 the machine becomes a set of
 * hardware islands: each socket owns a front-side bus and a coherence
 * directory for the lines whose *home* is that socket, and misses that
 * leave their socket additionally traverse the bounded-bandwidth
 * interconnect (see docs/TOPOLOGY.md). With the default single socket
 * every topology path is bypassed and behaviour is bit-identical to
 * the legacy single-bus model.
 */

#ifndef ODBSIM_MEM_HIERARCHY_HH
#define ODBSIM_MEM_HIERARCHY_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "mem/access.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/coherence.hh"
#include "mem/topology.hh"
#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace odbsim::mem
{

/** Geometry of one CPU's caches (defaults: Xeon MP of the study). */
struct HierarchyConfig
{
    /** Kept for reporting; the trace cache / L1D / TLB are modeled
     *  statistically in the CPU core. @{ */
    CacheGeometry traceCache{16 * KiB, 8, 64};
    CacheGeometry l1d{8 * KiB, 4, 64};
    std::uint32_t tlbEntries = 64;
    std::uint32_t tlbAssoc = 4;
    /** @} */
    CacheGeometry l2{256 * KiB, 8, 64};  ///< Per-CPU L2 geometry.
    CacheGeometry l3{1 * MiB, 8, 64};    ///< L3 geometry (per CPU or shared).
    /**
     * Chip-multiprocessor mode: one on-die L3 shared by every core
     * instead of per-CPU L3s. L2 misses that hit the shared L3 stay
     * on-die (no front-side-bus transaction), and a line written by
     * one core is served to its siblings from the shared cache — the
     * design point the paper's introduction motivates.
     */
    bool sharedL3 = false;
};

/**
 * Weighted event counters for one privilege mode on one CPU.
 * All fields estimate the unsampled machine (increments are scaled by
 * the sampling factor).
 */
struct MemCounters
{
    std::uint64_t codeFetches = 0; ///< Code refs reaching L2 (TC misses).
    std::uint64_t dataReads = 0;   ///< Data reads reaching L2.
    std::uint64_t dataWrites = 0;  ///< Data writes reaching L2.
    std::uint64_t l2Misses = 0;    ///< Misses in L2 (code + data).
    std::uint64_t l3Misses = 0;    ///< Misses in L3.
    std::uint64_t coherenceMisses = 0; ///< Subset of l3Misses (HITM).

    /** Zero every counter. */
    void reset() { *this = MemCounters{}; }

    /** Accumulate another counter block into this one. */
    MemCounters &operator+=(const MemCounters &o);

    /** Total references reaching the L2 (code + reads + writes). */
    std::uint64_t
    l2Accesses() const
    {
        return codeFetches + dataReads + dataWrites;
    }
};

/**
 * The private cache stack of one CPU (scaled tag stores).
 */
class CpuCacheHierarchy
{
  public:
    /** Build the scaled L2/L3 tag stores for CPU @p cpu_id. */
    CpuCacheHierarchy(unsigned cpu_id, const CacheGeometry &l2,
                      const CacheGeometry &l3,
                      std::uint32_t sample_factor);

    /**
     * Map a sampled line address (line index divisible by S) to the
     * compacted address space the scaled tag stores index on; without
     * this, sampled lines would collide into 1/S of the sets.
     *
     * Line size and sample factor are powers of two (asserted at
     * construction), so the divide/multiply pair reduces to two
     * shifts computed once in the constructor:
     * addr / (line_bytes * S) * line_bytes == addr >> (lg L + lg S)
     * << lg L, exactly, for any addr.
     */
    Addr
    compress(Addr addr) const
    {
        return (addr >> compressShift_) << lineShift_;
    }

    /**
     * Map a compacted line address back to the original (uncompressed)
     * line address — the inverse of compress() for sampled lines.
     * Same shift identity as compress(), exact for any input:
     * caddr / line_bytes * line_bytes * S == caddr >> lg L << (lg L +
     * lg S).
     */
    Addr
    decompressLine(Addr caddr) const
    {
        return (caddr >> lineShift_) << compressShift_;
    }

    /** This hierarchy's (physical) CPU id. */
    unsigned cpuId() const { return cpuId_; }

    /** Counters for privilege mode @p m. @{ */
    const MemCounters &counters(ExecMode m) const
    {
        return counters_[static_cast<unsigned>(m)];
    }

    MemCounters &counters(ExecMode m)
    {
        return counters_[static_cast<unsigned>(m)];
    }
    /** @} */

    /** User + OS counters summed. */
    MemCounters totalCounters() const;

    /** Zero the counters and the tag-store statistics. */
    void resetCounters();

    /** Invalidate one line in both levels. */
    void invalidateLine(Addr line_addr);

    /** Drop all cached state. */
    void flush();

    /** The scaled tag stores (read-only). @{ */
    const SetAssocCache &l2() const { return l2_; }
    const SetAssocCache &l3() const { return l3_; }
    /** @} */

  private:
    friend class MemorySystem;

    unsigned cpuId_;
    SetAssocCache l2_;
    SetAssocCache l3_;
    std::uint32_t sampleFactor_;
    /** log2(lineBytes); constructor-computed for compress(). */
    unsigned lineShift_;
    /** log2(lineBytes * sampleFactor_). */
    unsigned compressShift_;
    MemCounters counters_[2];
};

/**
 * The full memory system: per-CPU hierarchies, one front-side bus and
 * coherence directory per socket, and (for multi-socket topologies)
 * the inter-socket interconnect and first-touch home map.
 */
class MemorySystem
{
  public:
    /**
     * A batch of accesses sharing one (cpu, mode, now) triple — the
     * hot-path entry point the CPU core uses.
     *
     * beginEpoch() performs the per-batch work once (advancing the bus
     * model to @p now and resolving the per-mode counter block);
     * access() then runs the pure per-reference path. This is
     * bit-exact versus calling MemorySystem::access per reference:
     * with a constant `now`, every bus_.maybeUpdate(now) after the
     * first is a no-op, and the counter block resolved up front is the
     * same one every per-reference lookup would return.
     *
     * An epoch is a thin non-owning view: keep it strictly inside the
     * scope that called beginEpoch() and do not interleave it with
     * calls that advance simulated time.
     */
    class AccessEpoch
    {
      public:
        /** Simulate one sampled post-L1 reference (see
         *  MemorySystem::access for the address contract). */
        AccessResult access(Addr addr, AccessKind kind);

      private:
        friend class MemorySystem;
        AccessEpoch(MemorySystem &sys, CpuCacheHierarchy &h,
                    MemCounters &ctr)
            : sys_(&sys), h_(&h), ctr_(&ctr)
        {}

        MemorySystem *sys_;
        CpuCacheHierarchy *h_;
        MemCounters *ctr_;
    };

    /**
     * @param sample_factor Set-sampling factor S: tag stores are
     *        built at 1/S capacity and callers must feed only lines
     *        whose index is a multiple of S, weighting counters by S.
     * @param topo Socket topology; the default single socket keeps
     *        the legacy single-bus model bit-identically.
     */
    MemorySystem(unsigned num_cpus, const HierarchyConfig &hier_cfg,
                 const BusConfig &bus_cfg, std::uint32_t sample_factor,
                 const TopologyConfig &topo = {});

    /** Number of physical CPUs. */
    unsigned numCpus() const { return static_cast<unsigned>(cpus_.size()); }
    /** Set-sampling factor S the tag stores were scaled by. */
    std::uint32_t sampleFactor() const { return sampleFactor_; }
    /** True in CMP mode (one on-die L3 shared by every core). */
    bool sharedL3() const { return sharedL3_ != nullptr; }

    /** Cache hierarchy of CPU @p i. @{ */
    CpuCacheHierarchy &cpu(unsigned i) { return *cpus_[i]; }
    const CpuCacheHierarchy &cpu(unsigned i) const { return *cpus_[i]; }
    /** @} */

    /** Socket 0's front-side bus (the only bus when sockets == 1). @{ */
    FrontSideBus &bus() { return bus_; }
    const FrontSideBus &bus() const { return bus_; }
    /** @} */

    /** Socket 0's coherence directory (the only one at S=1). @{ */
    CoherenceDirectory &directory() { return directory_; }
    const CoherenceDirectory &directory() const { return directory_; }
    /** @} */

    /** @name Socket topology @{ */
    /** The configured topology. */
    const TopologyConfig &topology() const { return topo_; }
    /** Socket count S (>= 1). */
    unsigned numSockets() const { return sockets_; }
    /** True when the multi-socket model is engaged (S > 1). */
    bool multiSocket() const { return multiSocket_; }
    /** Socket owning physical CPU @p cpu (always 0 at S=1). */
    unsigned
    socketOf(unsigned cpu) const
    {
        return multiSocket_ ? cpu / cpusPerSocket_ : 0;
    }
    /** Front-side bus of socket @p s. @{ */
    FrontSideBus &busAt(unsigned s) { return *buses_[s]; }
    const FrontSideBus &busAt(unsigned s) const { return *buses_[s]; }
    /** @} */
    /** Coherence directory of socket @p s. */
    CoherenceDirectory &directoryAt(unsigned s) { return *dirs_[s]; }
    /** The inter-socket interconnect model (nullptr at S=1). */
    const FrontSideBus *interconnect() const { return link_.get(); }
    /**
     * Home socket of @p addr: the recorded first-touch home when one
     * exists, else page-interleaved across the sockets. Always 0 at
     * S=1.
     */
    unsigned
    homeSocket(Addr addr) const
    {
        if (!multiSocket_)
            return 0;
        const Addr page = addr >> topo_.pageShift;
        if (const std::uint8_t *h = homePages_.find(page))
            return *h;
        return static_cast<unsigned>(page % sockets_);
    }
    /**
     * Record @p socket as the home of [base, base+bytes) — first-touch
     * page homing (process private regions at first dispatch, buffer
     * frames at fill time). No-op at S=1; later calls overwrite.
     */
    void setHomeRegion(Addr base, std::uint64_t bytes, unsigned socket);
    /**
     * Conservative parallel-DES lookahead in CPU cycles: the minimum
     * interconnect latency of any cross-socket interaction,
     * hopLatencyCycles × the minimum hop count between two distinct
     * sockets. This is the horizon sim::ParallelEngine derives its
     * epochs from — no island can affect another sooner than this.
     * 0 at S=1 (there is no second island to look ahead to).
     */
    double
    crossSocketLookaheadCycles() const
    {
        if (!multiSocket_)
            return 0.0;
        unsigned min_hops = socketHops(0, 1, sockets_);
        for (unsigned s = 2; s < sockets_; ++s)
            min_hops = std::min(min_hops, socketHops(0, s, sockets_));
        return topo_.hopLatencyCycles * min_hops;
    }
    /** @} */

    /** @name Multi-socket statistics (all zero at S=1) @{ */
    /** Weighted L3 misses serviced by a remote socket. */
    std::uint64_t remoteMisses() const { return remoteMisses_; }
    /** Share of L3 misses serviced by a remote socket, in [0, 1]. */
    double
    remoteMissShare() const
    {
        const std::uint64_t total = localMisses_ + remoteMisses_;
        return total ? static_cast<double>(remoteMisses_) /
                           static_cast<double>(total)
                     : 0.0;
    }
    /** Mean interconnect utilization over the measurement period. */
    double
    linkUtilizationMean() const
    {
        return link_ ? link_->utilizationStat().mean() : 0.0;
    }
    /** @} */

    /**
     * Simulate one sampled post-L1 reference. @p addr must lie on a
     * sampled line (line index divisible by the sample factor).
     *
     * Equivalent to `beginEpoch(cpu_id, mode, now).access(addr, kind)`
     * — kept for callers making isolated accesses; loops should hoist
     * the epoch.
     */
    AccessResult access(unsigned cpu_id, Addr addr, AccessKind kind,
                        ExecMode mode, Tick now);

    /**
     * Open an access batch for @p cpu_id in @p mode at time @p now:
     * advances the bus models once and resolves the counter block, so
     * AccessEpoch::access runs only per-reference work.
     */
    AccessEpoch
    beginEpoch(unsigned cpu_id, ExecMode mode, Tick now)
    {
        advanceBuses(now);
        CpuCacheHierarchy &h = *cpus_[cpu_id];
        return AccessEpoch(*this, h, h.counters(mode));
    }

    /**
     * A DMA engine filled @p bytes at @p base (disk read into memory):
     * stale cached copies are invalidated and the transfer is charged
     * to the home socket's bus. On a multi-socket topology a
     * non-negative @p home_socket re-homes the region to that socket
     * first (first-touch homing by the process that requested the
     * read); DMA landing outside socket 0 (where I/O attaches) also
     * crosses the interconnect.
     */
    void dmaFill(Addr base, std::uint64_t bytes, Tick now,
                 int home_socket = -1);

    /** DMA read of memory (disk write from memory): bus traffic only. */
    void dmaDrain(std::uint64_t bytes, Tick now);

    /** Reset statistics on every component (cache state is kept). */
    void resetStats();

    /** Drop all cached state and statistics (home map is kept). */
    void flushAll();

  private:
    static CacheGeometry scaleGeometry(const CacheGeometry &g,
                                       std::uint32_t factor,
                                       const char *name);

    /** The per-reference body shared by access() and AccessEpoch. */
    AccessResult accessImpl(CpuCacheHierarchy &h, MemCounters &ctr,
                            Addr addr, AccessKind kind);

    /** The L3-miss tail of accessImpl on a multi-socket topology. */
    AccessResult missMultiSocket(CpuCacheHierarchy &h, MemCounters &ctr,
                                 Addr line, bool is_write,
                                 AccessResult res);

    /**
     * Directory owning @p line: the home socket's on a multi-socket
     * topology, the single directory otherwise.
     */
    CoherenceDirectory &
    dirFor(Addr line)
    {
        return multiSocket_ ? *dirs_[homeSocket(line)] : directory_;
    }

    /** Advance every bus model (and the interconnect) to @p now. */
    void
    advanceBuses(Tick now)
    {
        bus_.maybeUpdate(now);
        if (multiSocket_) {
            for (auto &b : extraBuses_)
                b->maybeUpdate(now);
            link_->maybeUpdate(now);
        }
    }

    HierarchyConfig hierCfg_;
    TopologyConfig topo_;
    std::uint32_t sampleFactor_;
    /** @name Per-access invariants, computed once in the constructor.
     *  @{ */
    std::uint64_t weight_;   ///< sampleFactor_ widened for counters.
    Addr lineMask_;          ///< ~(l3.lineBytes - 1)
    Addr sampledStride_;     ///< l3.lineBytes * sampleFactor_
    bool singleCpu_;         ///< P=1: directory fast path applies.
    unsigned sockets_;       ///< Socket count S (>= 1).
    unsigned cpusPerSocket_; ///< ceil(P / S).
    bool multiSocket_;       ///< S > 1: topology paths engaged.
    /** @} */
    std::vector<std::unique_ptr<CpuCacheHierarchy>> cpus_;
    /** The on-die shared L3 (CMP mode only). */
    std::unique_ptr<SetAssocCache> sharedL3_;
    FrontSideBus bus_;
    CoherenceDirectory directory_;
    /** Buses / directories of sockets 1..S-1 (empty at S=1). @{ */
    std::vector<std::unique_ptr<FrontSideBus>> extraBuses_;
    std::vector<std::unique_ptr<CoherenceDirectory>> extraDirs_;
    /** @} */
    /** Per-socket views: [0] = bus_/directory_, then the extras. @{ */
    std::vector<FrontSideBus *> buses_;
    std::vector<CoherenceDirectory *> dirs_;
    /** @} */
    /** The inter-socket interconnect (allocated only at S > 1). */
    std::unique_ptr<FrontSideBus> link_;
    /** First-touch page homes: page index -> socket. */
    sim::FlatMap<Addr, std::uint8_t> homePages_;
    /** Weighted L3 misses serviced locally / by a remote socket. @{ */
    std::uint64_t localMisses_ = 0;
    std::uint64_t remoteMisses_ = 0;
    /** @} */
};

inline AccessResult
MemorySystem::AccessEpoch::access(Addr addr, AccessKind kind)
{
    return sys_->accessImpl(*h_, *ctr_, addr, kind);
}

} // namespace odbsim::mem

#endif // ODBSIM_MEM_HIERARCHY_HH
