/**
 * @file
 * A set-associative cache model with true-LRU replacement and dirty-line
 * tracking, used for every level of the simulated hierarchy (trace
 * cache, L1D, L2, L3).
 *
 * The model is a tag store only — no data is held — because odbsim
 * needs hit/miss/writeback behaviour, not values.
 */

#ifndef ODBSIM_MEM_CACHE_HH
#define ODBSIM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace odbsim::mem
{

/** Static shape of a cache. */
struct CacheGeometry
{
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 0;
    /** Ways per set. */
    std::uint32_t assoc = 0;
    /** Line size in bytes. */
    std::uint32_t lineBytes = 64;

    /** Total line count (capacity / line size). */
    std::uint64_t numLines() const { return sizeBytes / lineBytes; }
    /** Set count (lines / associativity). */
    std::uint64_t numSets() const { return numLines() / assoc; }
};

/** Result of a cache access. */
struct CacheAccessResult
{
    /** The line was resident (no fill needed). */
    bool hit = false;
    /** A valid line was evicted to make room. */
    bool evicted = false;
    /** The evicted line was dirty (writeback needed). */
    bool evictedDirty = false;
    /** Line address (not tag) of the evicted victim, if any. */
    Addr evictedLineAddr = 0;
};

/**
 * Tag-store set-associative cache with true LRU.
 */
class SetAssocCache
{
  public:
    /**
     * @param name Label used in statistics reporting.
     * @param geom Capacity/associativity/line-size shape; sizeBytes
     *        and assoc must be non-zero and consistent.
     */
    SetAssocCache(std::string name, const CacheGeometry &geom);

    /** Label given at construction. */
    const std::string &name() const { return name_; }
    /** Shape given at construction. */
    const CacheGeometry &geometry() const { return geom_; }

    /**
     * Access the cache, allocating on miss.
     *
     * @param addr Byte address of the reference.
     * @param is_write Marks the line dirty on hit or fill.
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /** Check for presence without updating LRU or allocating. */
    bool probe(Addr addr) const;

    /** Probe and report whether the resident line is dirty. */
    bool probeDirty(Addr addr) const;

    /**
     * Invalidate a line if present.
     * @return true if the line was present and dirty.
     */
    bool invalidate(Addr addr);

    /** Drop every line (e.g. between measurement runs). */
    void flush();

    /** Number of currently valid lines. */
    std::uint64_t validLines() const { return valid_; }

    /** @name Raw statistics @{ */
    /** Total access() calls since the last resetStats(). */
    std::uint64_t accesses() const { return accesses_; }
    /** Accesses that missed and allocated. */
    std::uint64_t misses() const { return misses_; }
    /** Dirty evictions (writebacks to the next level). */
    std::uint64_t writebacks() const { return writebacks_; }
    /** misses / accesses, 0 when idle. */
    double
    missRatio() const
    {
        return accesses_ ? static_cast<double>(misses_) /
                               static_cast<double>(accesses_)
                         : 0.0;
    }
    /** Zero every counter above (cache state is kept). */
    void resetStats();
    /** @} */

  private:
    /**
     * One tag-store entry, packed to 16 bytes: the tag shares a word
     * with the valid/dirty flags (the tag is addr / lineBytes /
     * numSets, so its top two bits are always free for realistic
     * address spaces), halving the per-line footprint versus the
     * naive {tag, clock, bool, bool} layout and keeping twice as many
     * sets per hardware cache line during the victim scan.
     */
    struct Line
    {
        static constexpr std::uint64_t validBit = 1;
        static constexpr std::uint64_t dirtyBit = 2;
        static constexpr unsigned tagShift = 2;

        /** tag << tagShift | dirtyBit? | validBit? */
        std::uint64_t meta = 0;
        /** True-LRU clock stamp of the last touch. */
        std::uint64_t lastUse = 0;

        bool valid() const { return meta & validBit; }
        bool dirty() const { return meta & dirtyBit; }
        Addr tag() const { return meta >> tagShift; }
    };
    static_assert(sizeof(Line) == 16, "tag-store entry must stay packed");

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Addr lineAddr(Addr tag, std::uint64_t set) const;

    std::string name_;
    CacheGeometry geom_;
    std::uint64_t numSets_;
    std::vector<Line> lines_;
    std::uint64_t useClock_ = 0;
    std::uint64_t valid_ = 0;

    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace odbsim::mem

#endif // ODBSIM_MEM_CACHE_HH
