/**
 * @file
 * The simulated virtual address map.
 *
 * The database server processes of the modeled Oracle-style system all
 * map the same shared regions (code, SGA) at the same addresses, plus a
 * private per-process region (PGA, stack). The kernel has its own code
 * and data regions. These addresses feed the cache models; no data is
 * stored behind them.
 */

#ifndef ODBSIM_MEM_ADDR_SPACE_HH
#define ODBSIM_MEM_ADDR_SPACE_HH

#include "sim/types.hh"

namespace odbsim::mem
{

/** Layout constants for the simulated address space. */
namespace addrmap
{

/** Kernel text (hot footprint). */
constexpr Addr kernelCodeBase = 0x0100'0000;
constexpr std::uint64_t kernelCodeBytes = 256 * KiB;

/** Kernel data structures (run queues, buffer heads, drivers). */
constexpr Addr kernelDataBase = 0x0200'0000;
constexpr std::uint64_t kernelDataBytes = 512 * KiB;

/** Database server text (hot footprint of the RDBMS binary). */
constexpr Addr dbCodeBase = 0x1000'0000;
constexpr std::uint64_t dbCodeBytes = 1536 * KiB;

/** Shared pool: dictionary cache, SQL area, session structures. */
constexpr Addr dbSharedBase = 0x1800'0000;
constexpr std::uint64_t dbSharedBytes = 2 * MiB;

/** SGA metadata: buffer-cache hash buckets and block descriptors. */
constexpr Addr sgaMetaBase = 0x2000'0000;
constexpr std::uint64_t sgaMetaBytesPerFrame = 64;

/** Redo log buffer (ring). */
constexpr Addr logBufferBase = 0x3000'0000;
constexpr std::uint64_t logBufferBytes = 1 * MiB;

/** Lock manager resource table. */
constexpr Addr lockTableBase = 0x3800'0000;
constexpr std::uint64_t lockTableBytes = 2 * MiB;

/** Database buffer cache frames (the bulk of the SGA). */
constexpr Addr sgaFrameBase = 0x4000'0000;

/** Per-process private region (PGA + stack). */
constexpr Addr pgaBase = 0x4'0000'0000;
constexpr std::uint64_t pgaStride = 256 * KiB;
constexpr std::uint64_t pgaHotBytes = 64 * KiB;

/** Address of buffer-cache frame @p frame (8 KB frames). */
constexpr Addr
frameAddr(std::uint64_t frame, std::uint64_t frame_bytes)
{
    return sgaFrameBase + frame * frame_bytes;
}

/** Address of the metadata descriptor for frame @p frame. */
constexpr Addr
frameMetaAddr(std::uint64_t frame)
{
    return sgaMetaBase + frame * sgaMetaBytesPerFrame;
}

/** Base of process @p pid's private region. */
constexpr Addr
processPrivateBase(std::uint64_t pid)
{
    return pgaBase + pid * pgaStride;
}

} // namespace addrmap

} // namespace odbsim::mem

#endif // ODBSIM_MEM_ADDR_SPACE_HH
