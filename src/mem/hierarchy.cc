#include "mem/hierarchy.hh"

#include <bit>

#include "sim/logging.hh"

namespace odbsim::mem
{

MemCounters &
MemCounters::operator+=(const MemCounters &o)
{
    codeFetches += o.codeFetches;
    dataReads += o.dataReads;
    dataWrites += o.dataWrites;
    l2Misses += o.l2Misses;
    l3Misses += o.l3Misses;
    coherenceMisses += o.coherenceMisses;
    return *this;
}

CpuCacheHierarchy::CpuCacheHierarchy(unsigned cpu_id,
                                     const CacheGeometry &l2,
                                     const CacheGeometry &l3,
                                     std::uint32_t sample_factor)
    : cpuId_(cpu_id), l2_("l2", l2), l3_("l3", l3),
      sampleFactor_(sample_factor)
{
    const std::uint64_t line_bytes = l2.lineBytes;
    odbsim_assert(line_bytes >= 1 && std::has_single_bit(line_bytes),
                  "line size must be a power of two");
    odbsim_assert(sample_factor >= 1 &&
                      std::has_single_bit(
                          static_cast<std::uint64_t>(sample_factor)),
                  "sample factor must be a power of two");
    lineShift_ = static_cast<unsigned>(std::countr_zero(line_bytes));
    compressShift_ =
        lineShift_ + static_cast<unsigned>(std::countr_zero(
                         static_cast<std::uint64_t>(sample_factor)));
}

MemCounters
CpuCacheHierarchy::totalCounters() const
{
    MemCounters sum = counters_[0];
    sum += counters_[1];
    return sum;
}

void
CpuCacheHierarchy::resetCounters()
{
    counters_[0].reset();
    counters_[1].reset();
    l2_.resetStats();
    l3_.resetStats();
}

void
CpuCacheHierarchy::invalidateLine(Addr line_addr)
{
    const Addr c = compress(line_addr);
    l2_.invalidate(c);
    l3_.invalidate(c);
}

void
CpuCacheHierarchy::flush()
{
    l2_.flush();
    l3_.flush();
}

CacheGeometry
MemorySystem::scaleGeometry(const CacheGeometry &g, std::uint32_t factor,
                            const char *name)
{
    CacheGeometry scaled = g;
    odbsim_assert(g.sizeBytes % factor == 0,
                  "cache ", name, " size not divisible by sample factor");
    scaled.sizeBytes = g.sizeBytes / factor;
    odbsim_assert(scaled.numSets() >= 2,
                  "sample factor leaves too few sets in ", name);
    return scaled;
}

MemorySystem::MemorySystem(unsigned num_cpus,
                           const HierarchyConfig &hier_cfg,
                           const BusConfig &bus_cfg,
                           std::uint32_t sample_factor,
                           const TopologyConfig &topo)
    : hierCfg_(hier_cfg), topo_(topo), sampleFactor_(sample_factor),
      weight_(sample_factor),
      lineMask_(~static_cast<Addr>(hier_cfg.l3.lineBytes - 1)),
      sampledStride_(static_cast<Addr>(hier_cfg.l3.lineBytes) *
                     sample_factor),
      singleCpu_(num_cpus == 1),
      sockets_(topo.sockets < 1 ? 1u : topo.sockets),
      cpusPerSocket_((num_cpus + sockets_ - 1) / sockets_),
      multiSocket_(sockets_ > 1), bus_(bus_cfg), directory_(num_cpus)
{
    odbsim_assert(num_cpus >= 1, "need at least one CPU");
    odbsim_assert(sample_factor >= 1 &&
                      (sample_factor & (sample_factor - 1)) == 0,
                  "sample factor must be a power of two");
    odbsim_assert(std::has_single_bit(
                      static_cast<std::uint64_t>(hier_cfg.l3.lineBytes)),
                  "line size must be a power of two");
    odbsim_assert(!(multiSocket_ && hier_cfg.sharedL3),
                  "CMP (one die) and multi-socket topology are exclusive");
    odbsim_assert(sockets_ <= maxCoherentCpus, "too many sockets");
    odbsim_assert(topo_.pageShift >= 6 && topo_.pageShift <= 30,
                  "unreasonable topology page shift");
    const CacheGeometry l2 =
        scaleGeometry(hier_cfg.l2, sample_factor, "l2");
    const CacheGeometry l3 =
        scaleGeometry(hier_cfg.l3, sample_factor, "l3");
    for (unsigned i = 0; i < num_cpus; ++i)
        cpus_.push_back(std::make_unique<CpuCacheHierarchy>(
            i, l2, l3, sample_factor));
    if (hier_cfg.sharedL3)
        sharedL3_ = std::make_unique<SetAssocCache>("shared-l3", l3);

    // Sockets 1..S-1 get their own bus and directory; the interconnect
    // reuses the M/G/1 bus model with link occupancies and no base
    // residency (the per-hop latency is charged separately).
    if (multiSocket_) {
        for (unsigned s = 1; s < sockets_; ++s) {
            extraBuses_.push_back(
                std::make_unique<FrontSideBus>(bus_cfg));
            extraDirs_.push_back(
                std::make_unique<CoherenceDirectory>(num_cpus));
        }
        BusConfig link_cfg = bus_cfg;
        link_cfg.baseTransactionCycles = 0.0;
        link_cfg.lineOccupancyCycles = topo_.linkOccupancyCycles;
        link_cfg.dmaOccupancyCyclesPerKb =
            topo_.linkDmaOccupancyCyclesPerKb;
        link_ = std::make_unique<FrontSideBus>(link_cfg);
    }
    buses_.push_back(&bus_);
    dirs_.push_back(&directory_);
    for (unsigned s = 1; s < sockets_; ++s) {
        buses_.push_back(extraBuses_[s - 1].get());
        dirs_.push_back(extraDirs_[s - 1].get());
    }

    // Pre-size the directories for the lines the caches can keep
    // resident so warm-up performs no rehash (perf hint only; the
    // tables still grow on demand).
    for (CoherenceDirectory *d : dirs_)
        d->reserve(num_cpus * (l3.numLines() + l2.numLines()));
}

void
MemorySystem::setHomeRegion(Addr base, std::uint64_t bytes,
                            unsigned socket)
{
    if (!multiSocket_ || bytes == 0)
        return;
    odbsim_assert(socket < sockets_, "home socket out of range");
    const Addr first = base >> topo_.pageShift;
    const Addr last = (base + bytes - 1) >> topo_.pageShift;
    for (Addr page = first; page <= last; ++page)
        homePages_.findOrInsert(page) =
            static_cast<std::uint8_t>(socket);
}

AccessResult
MemorySystem::access(unsigned cpu_id, Addr addr, AccessKind kind,
                     ExecMode mode, Tick now)
{
    advanceBuses(now);
    CpuCacheHierarchy &h = *cpus_[cpu_id];
    return accessImpl(h, h.counters(mode), addr, kind);
}

AccessResult
MemorySystem::accessImpl(CpuCacheHierarchy &h, MemCounters &ctr,
                         Addr addr, AccessKind kind)
{
    const unsigned cpu_id = h.cpuId_;
    const std::uint64_t weight = weight_;
    const Addr line = addr & lineMask_;
    const bool is_code = kind == AccessKind::CodeFetch;
    const bool is_write = kind == AccessKind::DataWrite;

    AccessResult res;
    if (is_code)
        ctr.codeFetches += weight;
    else if (is_write)
        ctr.dataWrites += weight;
    else
        ctr.dataReads += weight;

    // The scaled tag stores index on the compacted sampled-line space.
    const Addr caddr = h.compress(addr);

    // Dirty victims from L2 are assumed to hit L3 (tag-store
    // approximation); only L3 victims produce bus writebacks.
    if (h.l2_.access(caddr, is_write).hit) {
        if (is_write) {
            if (singleCpu_) {
                // P=1 fast path: onWriteHit's remote mask is provably
                // empty (sharers can only be bit 0), so only the
                // directory's tracking state needs to advance.
                dirFor(line).touchSolo(line, true);
            } else {
                std::uint32_t mask = dirFor(line).onWriteHit(cpu_id, line);
                while (mask) {
                    const unsigned j =
                        static_cast<unsigned>(std::countr_zero(mask));
                    mask &= mask - 1;
                    cpus_[j]->invalidateLine(line);
                }
            }
        }
        res.servicedBy = ServicedBy::L2;
        return res;
    }
    ctr.l2Misses += weight;

    SetAssocCache &l3 = sharedL3_ ? *sharedL3_ : h.l3_;
    const CacheAccessResult l3res = l3.access(caddr, is_write);
    if (l3res.evicted) {
        // Map the victim back to its original (uncompressed) line
        // address for the directory.
        const Addr victim_line = h.decompressLine(l3res.evictedLineAddr);
        if (sharedL3_) {
            // Inclusive shared L3: evicting a line removes every
            // core's L2 copy and its directory state.
            for (auto &c : cpus_)
                c->l2_.invalidate(l3res.evictedLineAddr);
            directory_.onDmaFill(victim_line);
        } else {
            dirFor(victim_line).onEviction(cpu_id, victim_line);
        }
        if (l3res.evictedDirty) {
            if (!multiSocket_) {
                bus_.addLineTransfers(static_cast<double>(weight));
            } else {
                // The writeback lands in the victim's home memory and
                // crosses the interconnect when that home is remote.
                const unsigned vhome = homeSocket(victim_line);
                buses_[vhome]->addLineTransfers(
                    static_cast<double>(weight));
                if (vhome != socketOf(cpu_id))
                    link_->addLineTransfers(static_cast<double>(weight));
            }
        }
    }
    if (l3res.hit) {
        if (singleCpu_) {
            // P=1: a fill by the only CPU can neither observe a remote
            // dirty copy nor need invalidations; track the line only.
            dirFor(line).touchSolo(line, is_write);
            res.servicedBy = ServicedBy::L3;
            return res;
        }
        // In CMP mode an L3 hit may still be a coherence transfer:
        // another core wrote the line and the modified copy is served
        // on-die (cheap), but it counts as a HITM event. Remote copies
        // to invalidate live only in L2s (the L3 is shared); in SMP
        // mode the whole remote stack is invalidated.
        const CoherenceOutcome hit_out =
            dirFor(line).onFill(cpu_id, line, is_write);
        std::uint32_t mask = hit_out.invalidateMask;
        while (mask) {
            const unsigned j =
                static_cast<unsigned>(std::countr_zero(mask));
            mask &= mask - 1;
            if (sharedL3_)
                cpus_[j]->l2_.invalidate(caddr);
            else
                cpus_[j]->invalidateLine(line);
        }
        if (hit_out.remoteDirty) {
            if (sharedL3_) {
                cpus_[hit_out.remoteOwner]->l2_.invalidate(caddr);
                ctr.coherenceMisses += weight;
            } else {
                cpus_[hit_out.remoteOwner]->invalidateLine(line);
            }
        }
        res.servicedBy = ServicedBy::L3;
        return res;
    }
    ctr.l3Misses += weight;

    if (multiSocket_)
        return missMultiSocket(h, ctr, line, is_write, res);

    if (singleCpu_) {
        // P=1: an L3 miss is always serviced by memory — remoteDirty
        // is impossible, so no cache-to-cache transfer or extra
        // writeback can occur.
        directory_.touchSolo(line, is_write);
        res.servicedBy = ServicedBy::Memory;
        res.memStallExtraCycles = bus_.queueWaitCycles();
        bus_.addLineTransfers(static_cast<double>(weight));
        return res;
    }

    const CoherenceOutcome out = directory_.onFill(cpu_id, line, is_write);
    std::uint32_t mask = out.invalidateMask;
    while (mask) {
        const unsigned j = static_cast<unsigned>(std::countr_zero(mask));
        mask &= mask - 1;
        cpus_[j]->invalidateLine(line);
    }
    if (out.remoteDirty) {
        // Cache-to-cache transfer: the dirty copy leaves the remote
        // cache and its writeback also crosses the bus.
        cpus_[out.remoteOwner]->invalidateLine(line);
        ctr.coherenceMisses += weight;
        bus_.addLineTransfers(static_cast<double>(weight));
        res.servicedBy = ServicedBy::RemoteCache;
    } else {
        res.servicedBy = ServicedBy::Memory;
    }
    res.memStallExtraCycles = bus_.queueWaitCycles();
    bus_.addLineTransfers(static_cast<double>(weight));
    return res;
}

AccessResult
MemorySystem::missMultiSocket(CpuCacheHierarchy &h, MemCounters &ctr,
                              Addr line, bool is_write, AccessResult res)
{
    // The miss is orchestrated by the line's home socket: its
    // directory classifies the miss and its bus carries the fill (and
    // any writeback). The requester additionally pays per-hop latency
    // and link queueing to reach the servicing socket when that socket
    // is not its own.
    const unsigned cpu_id = h.cpuId_;
    const double weight = static_cast<double>(weight_);
    const unsigned my_socket = cpu_id / cpusPerSocket_;
    const unsigned home = homeSocket(line);
    CoherenceDirectory &dir = *dirs_[home];
    FrontSideBus &hb = *buses_[home];

    double extra = hb.queueWaitCycles();
    unsigned servicing = home;
    if (singleCpu_) {
        // P=1: no remote cache can hold the line dirty.
        dir.touchSolo(line, is_write);
        res.servicedBy = ServicedBy::Memory;
    } else {
        const CoherenceOutcome out = dir.onFill(cpu_id, line, is_write);
        std::uint32_t mask = out.invalidateMask;
        while (mask) {
            const unsigned j =
                static_cast<unsigned>(std::countr_zero(mask));
            mask &= mask - 1;
            cpus_[j]->invalidateLine(line);
        }
        if (out.remoteDirty) {
            // Cache-to-cache transfer from the owner; its writeback
            // also crosses the home bus.
            cpus_[out.remoteOwner]->invalidateLine(line);
            ctr.coherenceMisses += weight_;
            hb.addLineTransfers(weight);
            res.servicedBy = ServicedBy::RemoteCache;
            servicing = out.remoteOwner / cpusPerSocket_;
        } else {
            res.servicedBy = ServicedBy::Memory;
        }
    }
    if (servicing != my_socket) {
        extra += topo_.hopLatencyCycles *
                     socketHops(my_socket, servicing, sockets_) +
                 link_->queueWaitCycles();
        link_->addLineTransfers(weight);
        remoteMisses_ += weight_;
    } else {
        localMisses_ += weight_;
    }
    hb.addLineTransfers(weight);
    res.memStallExtraCycles = extra;
    return res;
}

void
MemorySystem::dmaFill(Addr base, std::uint64_t bytes, Tick now,
                      int home_socket)
{
    advanceBuses(now);
    if (!multiSocket_)
        bus_.addDmaBytes(static_cast<double>(bytes));

    // Only sampled lines can be cached; snoop just those. On a
    // multi-socket topology this runs against the lines' *current*
    // home directories, before any re-homing below.
    const Addr stride = sampledStride_;
    Addr first = base & ~static_cast<Addr>(stride - 1);
    if (first < base)
        first += stride;
    for (Addr line = first; line < base + bytes; line += stride) {
        CoherenceDirectory &dir = dirFor(line);
        const SnoopState s = dir.snoop(line);
        if (!s.tracked)
            continue;
        for (unsigned j = 0; j < numCpus(); ++j) {
            if (s.sharers & (1u << j))
                cpus_[j]->invalidateLine(line);
        }
        if (s.modifiedOwner >= 0)
            cpus_[static_cast<unsigned>(s.modifiedOwner)]
                ->invalidateLine(line);
        if (sharedL3_)
            sharedL3_->invalidate(cpus_[0]->compress(line));
        dir.onDmaFill(line);
    }

    if (multiSocket_) {
        // First-touch homing: the filled region moves to the socket of
        // the process that requested the read (when the caller knows
        // it). The DMA occupies the home bus, plus the interconnect
        // when the home is not socket 0, where I/O attaches.
        if (home_socket >= 0)
            setHomeRegion(base, bytes,
                          static_cast<unsigned>(home_socket));
        const unsigned home = homeSocket(base);
        buses_[home]->addDmaBytes(static_cast<double>(bytes));
        if (home != 0)
            link_->addDmaBytes(static_cast<double>(bytes));
    }
}

void
MemorySystem::dmaDrain(std::uint64_t bytes, Tick now)
{
    advanceBuses(now);
    // Drains always stage through socket 0, where I/O attaches.
    bus_.addDmaBytes(static_cast<double>(bytes));
}

void
MemorySystem::resetStats()
{
    for (auto &c : cpus_)
        c->resetCounters();
    if (sharedL3_)
        sharedL3_->resetStats();
    bus_.resetStats();
    directory_.resetStats();
    for (auto &b : extraBuses_)
        b->resetStats();
    for (auto &d : extraDirs_)
        d->resetStats();
    if (link_)
        link_->resetStats();
    localMisses_ = 0;
    remoteMisses_ = 0;
}

void
MemorySystem::flushAll()
{
    for (auto &c : cpus_)
        c->flush();
    if (sharedL3_)
        sharedL3_->flush();
    for (CoherenceDirectory *d : dirs_)
        d->clear();
    resetStats();
}

} // namespace odbsim::mem
