#include "mem/coherence.hh"

#include <bit>

#include "sim/logging.hh"

namespace odbsim::mem
{

CoherenceDirectory::CoherenceDirectory(unsigned num_cpus)
    : numCpus_(num_cpus)
{
    odbsim_assert(num_cpus >= 1 && num_cpus <= maxCoherentCpus,
                  "unsupported CPU count ", num_cpus);
}

void
CoherenceDirectory::reserve(std::size_t lines)
{
    table_.reserve(lines);
}

CoherenceOutcome
CoherenceDirectory::onFill(unsigned cpu, Addr line_addr, bool is_write)
{
    CoherenceOutcome out;
    LineState &e = table_.findOrInsert(line_addr);
    const std::uint32_t self = 1u << cpu;

    if (e.modifiedOwner >= 0 &&
        static_cast<unsigned>(e.modifiedOwner) != cpu) {
        out.remoteDirty = true;
        out.remoteOwner = static_cast<unsigned>(e.modifiedOwner);
        ++coherenceMisses_;
    }

    if (is_write) {
        const std::uint32_t remote = e.sharers & ~self;
        out.invalidateMask = remote;
        invalidations_ += std::popcount(remote);
        e.sharers = self;
        e.modifiedOwner = static_cast<std::int16_t>(cpu);
    } else {
        // A remote dirty copy is downgraded to shared by the fill.
        if (out.remoteDirty)
            e.modifiedOwner = -1;
        e.sharers |= self;
    }
    return out;
}

std::uint32_t
CoherenceDirectory::onWriteHit(unsigned cpu, Addr line_addr)
{
    LineState &e = table_.findOrInsert(line_addr);
    const std::uint32_t self = 1u << cpu;
    const std::uint32_t remote = e.sharers & ~self;
    invalidations_ += std::popcount(remote);
    e.sharers = self;
    e.modifiedOwner = static_cast<std::int16_t>(cpu);
    return remote;
}

void
CoherenceDirectory::touchSolo(Addr line_addr, bool is_write)
{
    odbsim_assert(numCpus_ == 1,
                  "touchSolo is only valid on a single-CPU directory");
    LineState &e = table_.findOrInsert(line_addr);
    if (is_write) {
        e.sharers = 1u;
        e.modifiedOwner = 0;
    } else {
        e.sharers |= 1u;
    }
}

SnoopState
CoherenceDirectory::snoop(Addr line_addr) const
{
    const LineState *s = table_.find(line_addr);
    if (!s)
        return SnoopState{};
    return SnoopState{true, s->sharers, s->modifiedOwner};
}

void
CoherenceDirectory::onEviction(unsigned cpu, Addr line_addr)
{
    const std::size_t i = table_.findIndex(line_addr);
    if (i == Table::npos)
        return;
    LineState &e = table_.valueAt(i);
    e.sharers &= ~(1u << cpu);
    if (e.modifiedOwner >= 0 &&
        static_cast<unsigned>(e.modifiedOwner) == cpu) {
        e.modifiedOwner = -1;
    }
    if (e.sharers == 0 && e.modifiedOwner < 0)
        table_.eraseAt(i);
}

void
CoherenceDirectory::onDmaFill(Addr line_addr)
{
    table_.erase(line_addr);
}

void
CoherenceDirectory::clear()
{
    table_.clear();
}

} // namespace odbsim::mem
