#include "mem/coherence.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"

namespace odbsim::mem
{

namespace
{

/** Starting table size: 16 KiB of slots, far below any real grid
 *  point's tracked population so reserve() normally sizes the table
 *  once and warm-up never rehashes. */
constexpr std::size_t minCapacity = 1024;

} // namespace

CoherenceDirectory::CoherenceDirectory(unsigned num_cpus)
    : numCpus_(num_cpus)
{
    odbsim_assert(num_cpus >= 1 && num_cpus <= maxCoherentCpus,
                  "unsupported CPU count ", num_cpus);
    rehash(minCapacity);
}

const CoherenceDirectory::Slot *
CoherenceDirectory::find(Addr key) const
{
    std::size_t i = indexOf(key);
    while (live(slots_[i])) {
        if (slots_[i].key == key)
            return &slots_[i];
        i = (i + 1) & mask_;
    }
    return nullptr;
}

CoherenceDirectory::Slot &
CoherenceDirectory::findOrInsert(Addr key)
{
    // Keep the load factor below 7/8 so probe chains stay short and
    // an empty slot always terminates the scan. Growth only triggers
    // while the tracked population reaches a new high-water mark.
    if ((size_ + 1) * 8 > slots_.size() * 7)
        rehash(slots_.size() * 2);

    std::size_t i = indexOf(key);
    while (live(slots_[i])) {
        if (slots_[i].key == key)
            return slots_[i];
        i = (i + 1) & mask_;
    }
    Slot &s = slots_[i];
    s.key = key;
    s.sharers = 0;
    s.modifiedOwner = -1;
    s.gen = gen_;
    ++size_;
    return s;
}

void
CoherenceDirectory::eraseAt(std::size_t i)
{
    --size_;
    // Backward-shift deletion: pull every displaced follower of the
    // probe chain one hole closer to its ideal slot, leaving no
    // tombstone behind.
    std::size_t j = i;
    while (true) {
        j = (j + 1) & mask_;
        if (!live(slots_[j]))
            break;
        const std::size_t ideal = indexOf(slots_[j].key);
        if (((j - ideal) & mask_) >= ((j - i) & mask_)) {
            slots_[i] = slots_[j];
            i = j;
        }
    }
    // Mark empty with a stamp that can never equal a future live
    // generation: gen_ only grows until its wrap re-zeroes the array.
    slots_[i].gen = static_cast<std::uint16_t>(gen_ - 1);
}

void
CoherenceDirectory::rehash(std::size_t new_capacity)
{
    odbsim_assert(std::has_single_bit(new_capacity),
                  "directory capacity must be a power of two");
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    shift_ = 64 - static_cast<unsigned>(std::countr_zero(new_capacity));
    ++allocations_;
    for (const Slot &s : old) {
        if (s.gen != gen_)
            continue;
        std::size_t i = indexOf(s.key);
        while (live(slots_[i]))
            i = (i + 1) & mask_;
        slots_[i] = s;
    }
}

void
CoherenceDirectory::reserve(std::size_t lines)
{
    std::size_t cap = minCapacity;
    // Capacity such that `lines` stays under the 7/8 load threshold.
    while ((lines + 1) * 8 > cap * 7)
        cap *= 2;
    if (cap > slots_.size())
        rehash(cap);
}

CoherenceOutcome
CoherenceDirectory::onFill(unsigned cpu, Addr line_addr, bool is_write)
{
    CoherenceOutcome out;
    Slot &e = findOrInsert(line_addr);
    const std::uint32_t self = 1u << cpu;

    if (e.modifiedOwner >= 0 &&
        static_cast<unsigned>(e.modifiedOwner) != cpu) {
        out.remoteDirty = true;
        out.remoteOwner = static_cast<unsigned>(e.modifiedOwner);
        ++coherenceMisses_;
    }

    if (is_write) {
        const std::uint32_t remote = e.sharers & ~self;
        out.invalidateMask = remote;
        invalidations_ += std::popcount(remote);
        e.sharers = self;
        e.modifiedOwner = static_cast<std::int16_t>(cpu);
    } else {
        // A remote dirty copy is downgraded to shared by the fill.
        if (out.remoteDirty)
            e.modifiedOwner = -1;
        e.sharers |= self;
    }
    return out;
}

std::uint32_t
CoherenceDirectory::onWriteHit(unsigned cpu, Addr line_addr)
{
    Slot &e = findOrInsert(line_addr);
    const std::uint32_t self = 1u << cpu;
    const std::uint32_t remote = e.sharers & ~self;
    invalidations_ += std::popcount(remote);
    e.sharers = self;
    e.modifiedOwner = static_cast<std::int16_t>(cpu);
    return remote;
}

void
CoherenceDirectory::touchSolo(Addr line_addr, bool is_write)
{
    odbsim_assert(numCpus_ == 1,
                  "touchSolo is only valid on a single-CPU directory");
    Slot &e = findOrInsert(line_addr);
    if (is_write) {
        e.sharers = 1u;
        e.modifiedOwner = 0;
    } else {
        e.sharers |= 1u;
    }
}

SnoopState
CoherenceDirectory::snoop(Addr line_addr) const
{
    const Slot *s = find(line_addr);
    if (!s)
        return SnoopState{};
    return SnoopState{true, s->sharers, s->modifiedOwner};
}

void
CoherenceDirectory::onEviction(unsigned cpu, Addr line_addr)
{
    std::size_t i = indexOf(line_addr);
    while (live(slots_[i])) {
        if (slots_[i].key == line_addr)
            break;
        i = (i + 1) & mask_;
    }
    if (!live(slots_[i]))
        return;
    Slot &e = slots_[i];
    e.sharers &= ~(1u << cpu);
    if (e.modifiedOwner >= 0 &&
        static_cast<unsigned>(e.modifiedOwner) == cpu) {
        e.modifiedOwner = -1;
    }
    if (e.sharers == 0 && e.modifiedOwner < 0)
        eraseAt(i);
}

void
CoherenceDirectory::onDmaFill(Addr line_addr)
{
    std::size_t i = indexOf(line_addr);
    while (live(slots_[i])) {
        if (slots_[i].key == line_addr) {
            eraseAt(i);
            return;
        }
        i = (i + 1) & mask_;
    }
}

void
CoherenceDirectory::clear()
{
    size_ = 0;
    ++gen_;
    if (gen_ == 0) {
        // 16-bit generation wrapped: wipe the array so stamps from
        // 65535 clears ago cannot resurrect as live.
        std::fill(slots_.begin(), slots_.end(), Slot{});
        gen_ = 1;
    }
}

} // namespace odbsim::mem
