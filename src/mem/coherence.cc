#include "mem/coherence.hh"

#include <bit>

#include "sim/logging.hh"

namespace odbsim::mem
{

CoherenceDirectory::CoherenceDirectory(unsigned num_cpus)
    : numCpus_(num_cpus)
{
    odbsim_assert(num_cpus >= 1 && num_cpus <= maxCoherentCpus,
                  "unsupported CPU count ", num_cpus);
}

CoherenceOutcome
CoherenceDirectory::onFill(unsigned cpu, Addr line_addr, bool is_write)
{
    CoherenceOutcome out;
    Entry &e = lines_[line_addr];
    const std::uint32_t self = 1u << cpu;

    if (e.modifiedOwner >= 0 &&
        static_cast<unsigned>(e.modifiedOwner) != cpu) {
        out.remoteDirty = true;
        out.remoteOwner = static_cast<unsigned>(e.modifiedOwner);
        ++coherenceMisses_;
    }

    if (is_write) {
        const std::uint32_t remote = e.sharers & ~self;
        out.invalidateMask = remote;
        invalidations_ += std::popcount(remote);
        e.sharers = self;
        e.modifiedOwner = static_cast<std::int8_t>(cpu);
    } else {
        // A remote dirty copy is downgraded to shared by the fill.
        if (out.remoteDirty)
            e.modifiedOwner = -1;
        e.sharers |= self;
    }
    return out;
}

std::uint32_t
CoherenceDirectory::onWriteHit(unsigned cpu, Addr line_addr)
{
    Entry &e = lines_[line_addr];
    const std::uint32_t self = 1u << cpu;
    const std::uint32_t remote = e.sharers & ~self;
    invalidations_ += std::popcount(remote);
    e.sharers = self;
    e.modifiedOwner = static_cast<std::int8_t>(cpu);
    return remote;
}

SnoopState
CoherenceDirectory::snoop(Addr line_addr) const
{
    auto it = lines_.find(line_addr);
    if (it == lines_.end())
        return SnoopState{};
    return SnoopState{true, it->second.sharers, it->second.modifiedOwner};
}

void
CoherenceDirectory::onEviction(unsigned cpu, Addr line_addr)
{
    auto it = lines_.find(line_addr);
    if (it == lines_.end())
        return;
    Entry &e = it->second;
    e.sharers &= ~(1u << cpu);
    if (e.modifiedOwner >= 0 &&
        static_cast<unsigned>(e.modifiedOwner) == cpu) {
        e.modifiedOwner = -1;
    }
    if (e.sharers == 0 && e.modifiedOwner < 0)
        lines_.erase(it);
}

void
CoherenceDirectory::onDmaFill(Addr line_addr)
{
    lines_.erase(line_addr);
}

void
CoherenceDirectory::clear()
{
    lines_.clear();
}

} // namespace odbsim::mem
