#include "mem/bus.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace odbsim::mem
{

FrontSideBus::FrontSideBus(const BusConfig &cfg)
    : cfg_(cfg)
{
    odbsim_assert(cfg.windowTicks > 0, "bus window must be positive");
}

void
FrontSideBus::maybeUpdate(Tick now)
{
    if (now < windowStart_ + cfg_.windowTicks)
        return;
    const Tick elapsed = now - windowStart_;
    const double window_cycles =
        secondsFromTicks(elapsed) * cfg_.cpuFreqHz;
    recompute(window_cycles);
    windowStart_ = now;
    windowLineTxns_ = 0.0;
    windowDmaKb_ = 0.0;
}

void
FrontSideBus::recompute(double window_cycles)
{
    if (window_cycles <= 0.0)
        return;

    const double busy_cycles =
        windowLineTxns_ * cfg_.lineOccupancyCycles +
        windowDmaKb_ * cfg_.dmaOccupancyCyclesPerKb;
    double raw_util = busy_cycles / window_cycles;
    raw_util = std::min(raw_util, cfg_.maxUtilization);

    util_ = cfg_.ewmaAlpha * raw_util + (1.0 - cfg_.ewmaAlpha) * util_;

    // Effective mean service time weighted by transaction mix. Treat a
    // DMA KB as 16 line-sized transactions for the queueing term.
    const double total_txns =
        windowLineTxns_ + windowDmaKb_ * 16.0;
    double mean_service = cfg_.lineOccupancyCycles;
    if (total_txns > 0.0)
        mean_service = busy_cycles / total_txns;

    const double rho = std::min(util_, cfg_.maxUtilization);
    wait_ = rho * mean_service * (1.0 + cfg_.serviceCv2) /
            (2.0 * (1.0 - rho));

    utilStat_.add(util_);
    ioqStat_.add(ioqCycles());
}

void
FrontSideBus::resetStats()
{
    utilStat_.reset();
    ioqStat_.reset();
}

} // namespace odbsim::mem
