/**
 * @file
 * A directory that tracks, per cache line, which CPUs hold the line and
 * whether one of them holds it modified. It classifies L3 misses as
 * coherence misses (serviced by a remote dirty copy) versus ordinary
 * capacity/conflict misses, and drives invalidation of remote copies on
 * writes — the mechanism behind the paper's observation that coherence
 * traffic contributes little on the 4-way system (Section 5.2).
 */

#ifndef ODBSIM_MEM_COHERENCE_HH
#define ODBSIM_MEM_COHERENCE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace odbsim::mem
{

/** Maximum CPUs trackable by the sharer bitmask. */
constexpr unsigned maxCoherentCpus = 32;

/** What the directory decided about a miss. */
struct CoherenceOutcome
{
    /** The line was dirty in another CPU's cache (coherence miss). */
    bool remoteDirty = false;
    /** CPU that held the dirty copy (valid when remoteDirty). */
    unsigned remoteOwner = 0;
    /** Bitmask of CPUs whose copies must be invalidated (writes). */
    std::uint32_t invalidateMask = 0;
};

/** Current residency of a line, for snooping. */
struct SnoopState
{
    bool tracked = false;
    std::uint32_t sharers = 0;
    std::int8_t modifiedOwner = -1;
};

/**
 * Sharer/owner directory over cache-line addresses.
 */
class CoherenceDirectory
{
  public:
    explicit CoherenceDirectory(unsigned num_cpus);

    /**
     * Record an L3 miss (line fill) by @p cpu and classify it.
     * Ownership state is updated: writes make @p cpu exclusive owner.
     */
    CoherenceOutcome onFill(unsigned cpu, Addr line_addr, bool is_write);

    /**
     * Record a write hit by @p cpu: remote sharers get invalidated.
     * @return bitmask of CPUs whose copies must be invalidated.
     */
    std::uint32_t onWriteHit(unsigned cpu, Addr line_addr);

    /** Look up the residency of a line without changing state. */
    SnoopState snoop(Addr line_addr) const;

    /** A line silently left @p cpu's L3 (eviction). */
    void onEviction(unsigned cpu, Addr line_addr);

    /** DMA overwrote the line: all cached copies are stale. */
    void onDmaFill(Addr line_addr);

    /** Drop all state. */
    void clear();

    /** Lines currently tracked. */
    std::size_t trackedLines() const { return lines_.size(); }

    /** @name Raw statistics @{ */
    std::uint64_t coherenceMisses() const { return coherenceMisses_; }
    std::uint64_t invalidationsSent() const { return invalidations_; }
    void
    resetStats()
    {
        coherenceMisses_ = 0;
        invalidations_ = 0;
    }
    /** @} */

  private:
    struct Entry
    {
        std::uint32_t sharers = 0;
        std::int8_t modifiedOwner = -1;
    };

    unsigned numCpus_;
    std::unordered_map<Addr, Entry> lines_;
    std::uint64_t coherenceMisses_ = 0;
    std::uint64_t invalidations_ = 0;
};

} // namespace odbsim::mem

#endif // ODBSIM_MEM_COHERENCE_HH
