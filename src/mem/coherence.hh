/**
 * @file
 * A directory that tracks, per cache line, which CPUs hold the line and
 * whether one of them holds it modified. It classifies L3 misses as
 * coherence misses (serviced by a remote dirty copy) versus ordinary
 * capacity/conflict misses, and drives invalidation of remote copies on
 * writes — the mechanism behind the paper's observation that coherence
 * traffic contributes little on the 4-way system (Section 5.2).
 *
 * The directory sits on the memory-system hot path (every write hit,
 * L3 fill, eviction and DMA snoop touches it), so its storage is a
 * sim::FlatMap — the flat open-addressing table that originated here
 * and was extracted to sim/flat_map.hh once the db layer needed the
 * same discipline: packed 16-byte slots, power-of-two capacity with
 * Fibonacci hashing and linear probing, backward-shift deletion (no
 * tombstones, so probe chains never rot), and an O(1) clear() via
 * generation stamping. After warm-up the table performs zero heap
 * allocations — growth only happens while the tracked-line population
 * reaches a new high-water mark (observable via tableAllocations()).
 */

#ifndef ODBSIM_MEM_COHERENCE_HH
#define ODBSIM_MEM_COHERENCE_HH

#include <cstddef>
#include <cstdint>
#include <limits>

#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace odbsim::mem
{

/** Maximum CPUs trackable by the sharer bitmask. */
constexpr unsigned maxCoherentCpus = 32;

/** What the directory decided about a miss. */
struct CoherenceOutcome
{
    /** The line was dirty in another CPU's cache (coherence miss). */
    bool remoteDirty = false;
    /** CPU that held the dirty copy (valid when remoteDirty). */
    unsigned remoteOwner = 0;
    /** Bitmask of CPUs whose copies must be invalidated (writes). */
    std::uint32_t invalidateMask = 0;
};

/** Current residency of a line, for snooping. */
struct SnoopState
{
    bool tracked = false;
    std::uint32_t sharers = 0;
    std::int16_t modifiedOwner = -1;
};

/**
 * Sharer/owner directory over cache-line addresses.
 */
class CoherenceDirectory
{
  public:
    /** @param num_cpus Width of the sharer masks (<= 32 CPUs). */
    explicit CoherenceDirectory(unsigned num_cpus);

    /**
     * Record an L3 miss (line fill) by @p cpu and classify it.
     * Ownership state is updated: writes make @p cpu exclusive owner.
     */
    CoherenceOutcome onFill(unsigned cpu, Addr line_addr, bool is_write);

    /**
     * Record a write hit by @p cpu: remote sharers get invalidated.
     * @return bitmask of CPUs whose copies must be invalidated.
     */
    std::uint32_t onWriteHit(unsigned cpu, Addr line_addr);

    /**
     * Single-CPU fast path covering onFill and onWriteHit at once.
     *
     * With one CPU the sharer mask is only ever bit 0, so
     * onFill/onWriteHit provably cannot observe a remote copy:
     * `remote = sharers & ~1` is always 0 (no invalidations, no
     * counter increments) and `modifiedOwner` is only ever -1 or 0, so
     * `remoteDirty` is always false. The only work left is keeping the
     * line *tracked* so snoop(), onDmaFill() and trackedLines() stay
     * bit-identical to the general path. Callers must only use this
     * on a directory constructed with num_cpus == 1 (asserted in
     * debug builds).
     */
    void touchSolo(Addr line_addr, bool is_write);

    /** Look up the residency of a line without changing state. */
    SnoopState snoop(Addr line_addr) const;

    /** A line silently left @p cpu's L3 (eviction). */
    void onEviction(unsigned cpu, Addr line_addr);

    /** DMA overwrote the line: all cached copies are stale. */
    void onDmaFill(Addr line_addr);

    /** Drop all state (O(1): bumps the generation stamp). */
    void clear();

    /** Lines currently tracked. */
    std::size_t trackedLines() const { return table_.size(); }

    /**
     * Pre-size the table for @p lines tracked lines so the warm-up
     * phase does not rehash. Never shrinks.
     */
    void reserve(std::size_t lines);

    /** @name Allocation observability (perf-test hook) @{ */
    /** Slots in the flat table (always a power of two). */
    std::size_t capacity() const { return table_.capacity(); }
    /**
     * Heap allocations the table has performed so far (construction,
     * reserve() and load-driven rehashes). Steady-state operation —
     * any churn whose tracked population stays at or below the
     * high-water mark — must not advance this.
     */
    std::uint64_t tableAllocations() const { return table_.allocations(); }
    /** @} */

    /** @name Raw statistics @{ */
    /** Fills classified as dirty-in-a-remote-cache (onFill). */
    std::uint64_t coherenceMisses() const { return coherenceMisses_; }
    /** Total sharer invalidations requested by write fills. */
    std::uint64_t invalidationsSent() const { return invalidations_; }
    /** Zero both counters (directory state is kept). */
    void
    resetStats()
    {
        coherenceMisses_ = 0;
        invalidations_ = 0;
    }
    /** @} */

  private:
    /** Sharer/owner state for one tracked line. */
    struct LineState
    {
        std::uint32_t sharers = 0;
        std::int16_t modifiedOwner = -1;
    };

    /**
     * Tracked lines. FlatMap keeps the generation stamps in a side
     * array, so a stored slot is exactly {Addr, LineState} — the same
     * 16 packed bytes the original in-class table used.
     */
    using Table = sim::FlatMap<Addr, LineState>;
    static_assert(sizeof(Table::Slot) == 16,
                  "directory slot must stay packed");
    static_assert(maxCoherentCpus <=
                      static_cast<unsigned>(
                          std::numeric_limits<std::int16_t>::max()),
                  "modifiedOwner must be able to hold any CPU id");
    static_assert(maxCoherentCpus <= 32,
                  "sharers bitmask is 32 bits wide");

    unsigned numCpus_;
    Table table_;
    std::uint64_t coherenceMisses_ = 0;
    std::uint64_t invalidations_ = 0;
};

} // namespace odbsim::mem

#endif // ODBSIM_MEM_COHERENCE_HH
