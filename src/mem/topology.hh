/**
 * @file
 * Multi-socket "hardware islands" machine topology.
 *
 * The 2003 study's machines are single-bus SMPs: every CPU reaches
 * every line at the same cost. Modern multi-socket boxes are not —
 * each socket owns a slice of physical memory behind its own bus, and
 * accesses to another socket's slice cross a point-to-point
 * interconnect that adds per-hop latency and has bounded bandwidth
 * (the effect the *OLTP on Hardware Islands* deployments exploit).
 *
 * TopologyConfig describes that machine shape. With the default
 * sockets == 1 the whole subsystem is inert and the memory system is
 * bit-identical to the legacy single-bus model — the contract
 * documented in docs/TOPOLOGY.md that keeps the golden study CSVs
 * byte-stable.
 */

#ifndef ODBSIM_MEM_TOPOLOGY_HH
#define ODBSIM_MEM_TOPOLOGY_HH

#include "sim/types.hh"

namespace odbsim::mem
{

/** Static shape of the socket/interconnect topology. */
struct TopologyConfig
{
    /**
     * Socket count S. 1 (default) = the legacy single-bus machine;
     * every knob below is ignored and the model is bit-identical to
     * the pre-topology code. S > 1 splits the physical CPUs evenly
     * across sockets (ceil(P/S) per socket, earlier sockets first) and
     * gives each socket its own front-side bus and coherence
     * directory.
     */
    unsigned sockets = 1;
    /**
     * Extra latency, in CPU cycles, added to an L3 miss for every
     * interconnect hop between the requesting socket and the socket
     * that services it (the home memory, or the dirty line's owner).
     * This is the remote-access penalty of the deployment sweep.
     */
    double hopLatencyCycles = 300.0;
    /**
     * Interconnect occupancy of one 64 B line transfer, in CPU
     * cycles. Together with the M/G/1 queue of the link model this
     * bounds cross-socket bandwidth.
     */
    double linkOccupancyCycles = 40.0;
    /** Interconnect occupancy of one KB of remote DMA traffic. */
    double linkDmaOccupancyCyclesPerKb = 160.0;
    /**
     * log2 of the granularity at which untouched memory interleaves
     * across sockets (the fallback when no first-touch home is
     * recorded): home = (addr >> pageShift) mod sockets.
     */
    unsigned pageShift = 12;

    /** True when the multi-socket model is engaged. */
    bool multiSocket() const { return sockets > 1; }
};

/**
 * Interconnect hop count between two sockets: direct links up to four
 * sockets (every commodity 2S/4S box is fully connected), a ring with
 * minimum-distance routing beyond.
 */
constexpr unsigned
socketHops(unsigned from, unsigned to, unsigned sockets)
{
    if (from == to)
        return 0;
    if (sockets <= 4)
        return 1;
    const unsigned d = from > to ? from - to : to - from;
    return d < sockets - d ? d : sockets - d;
}

} // namespace odbsim::mem

#endif // ODBSIM_MEM_TOPOLOGY_HH
