#include "mem/cache.hh"

#include "sim/logging.hh"

namespace odbsim::mem
{

SetAssocCache::SetAssocCache(std::string name, const CacheGeometry &geom)
    : name_(std::move(name)), geom_(geom)
{
    odbsim_assert(geom.sizeBytes > 0 && geom.assoc > 0 &&
                      geom.lineBytes > 0,
                  "bad cache geometry for ", name_);
    odbsim_assert(geom.sizeBytes % (geom.assoc * geom.lineBytes) == 0,
                  "cache size must be a multiple of assoc * line for ",
                  name_);
    numSets_ = geom.numSets();
    odbsim_assert((numSets_ & (numSets_ - 1)) == 0,
                  "number of sets must be a power of two for ", name_);
    lines_.resize(numSets_ * geom.assoc);
}

std::uint64_t
SetAssocCache::setIndex(Addr addr) const
{
    return (addr / geom_.lineBytes) & (numSets_ - 1);
}

Addr
SetAssocCache::tagOf(Addr addr) const
{
    return (addr / geom_.lineBytes) / numSets_;
}

Addr
SetAssocCache::lineAddr(Addr tag, std::uint64_t set) const
{
    return (tag * numSets_ + set) * geom_.lineBytes;
}

CacheAccessResult
SetAssocCache::access(Addr addr, bool is_write)
{
    ++accesses_;
    ++useClock_;

    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * geom_.assoc];

    // valid + tag match in a single compare (dirty masked out).
    const std::uint64_t want = (tag << Line::tagShift) | Line::validBit;

    Line *victim = base;
    for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
        Line &line = base[w];
        if ((line.meta & ~Line::dirtyBit) == want) {
            line.lastUse = useClock_;
            if (is_write)
                line.meta |= Line::dirtyBit;
            return CacheAccessResult{true, false, false, 0};
        }
        if (!line.valid()) {
            victim = &line;
        } else if (victim->valid() && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    ++misses_;
    CacheAccessResult res;
    res.hit = false;
    if (victim->valid()) {
        res.evicted = true;
        res.evictedDirty = victim->dirty();
        res.evictedLineAddr = lineAddr(victim->tag(), set);
        if (victim->dirty())
            ++writebacks_;
    } else {
        ++valid_;
    }
    victim->meta = want | (is_write ? Line::dirtyBit : 0);
    victim->lastUse = useClock_;
    return res;
}

bool
SetAssocCache::probe(Addr addr) const
{
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t want =
        (tagOf(addr) << Line::tagShift) | Line::validBit;
    const Line *base = &lines_[set * geom_.assoc];
    for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
        if ((base[w].meta & ~Line::dirtyBit) == want)
            return true;
    }
    return false;
}

bool
SetAssocCache::probeDirty(Addr addr) const
{
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t want =
        (tagOf(addr) << Line::tagShift) | Line::validBit;
    const Line *base = &lines_[set * geom_.assoc];
    for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
        if ((base[w].meta & ~Line::dirtyBit) == want)
            return base[w].dirty();
    }
    return false;
}

bool
SetAssocCache::invalidate(Addr addr)
{
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t want =
        (tagOf(addr) << Line::tagShift) | Line::validBit;
    Line *base = &lines_[set * geom_.assoc];
    for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
        Line &line = base[w];
        if ((line.meta & ~Line::dirtyBit) == want) {
            const bool was_dirty = line.dirty();
            line.meta = 0;
            --valid_;
            return was_dirty;
        }
    }
    return false;
}

void
SetAssocCache::flush()
{
    for (auto &line : lines_)
        line.meta = 0;
    valid_ = 0;
}

void
SetAssocCache::resetStats()
{
    accesses_ = 0;
    misses_ = 0;
    writebacks_ = 0;
}

} // namespace odbsim::mem
