/**
 * @file
 * Common memory-access vocabulary shared by the cache, CPU and
 * performance-counter models.
 */

#ifndef ODBSIM_MEM_ACCESS_HH
#define ODBSIM_MEM_ACCESS_HH

#include <cstdint>

#include "sim/types.hh"

namespace odbsim::mem
{

/** What kind of reference an access is. */
enum class AccessKind : std::uint8_t
{
    CodeFetch,
    DataRead,
    DataWrite,
};

/** Privilege mode the access executes in (EMON ring split). */
enum class ExecMode : std::uint8_t
{
    User,
    Os,
};

constexpr const char *
toString(ExecMode m)
{
    return m == ExecMode::User ? "user" : "os";
}

/**
 * Deepest level of the hierarchy that serviced a post-L1 access. The
 * simulated stream is the L2 reference stream (L1/trace-cache hits
 * never reach it — their flat contribution is modeled statistically,
 * matching the paper's fixed-cost methodology).
 */
enum class ServicedBy : std::uint8_t
{
    L2,
    L3,
    Memory,      ///< L3 miss serviced by DRAM over the bus.
    RemoteCache, ///< L3 miss serviced by a dirty line in another CPU.
};

/** Outcome of a single simulated reference. */
struct AccessResult
{
    /** Deepest level that serviced the reference. */
    ServicedBy servicedBy = ServicedBy::L2;
    /**
     * Extra stall cycles beyond the fixed Table 3 costs, valid when
     * l3Miss(): the bus queueing delay of the servicing socket, plus —
     * on a multi-socket topology — the interconnect hop latency and
     * link queueing of a remote access. On a single-socket machine
     * this is exactly the front-side bus queueWaitCycles() the CPU
     * model historically read itself.
     */
    double memStallExtraCycles = 0.0;

    /** True when the reference left the requesting CPU's caches. */
    bool l3Miss() const
    {
        return servicedBy == ServicedBy::Memory ||
               servicedBy == ServicedBy::RemoteCache;
    }
};

} // namespace odbsim::mem

#endif // ODBSIM_MEM_ACCESS_HH
