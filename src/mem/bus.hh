/**
 * @file
 * Analytic model of the shared front-side bus and its in-order queue
 * (IOQ), reproducing the paper's Figure 16 measurements.
 *
 * Every L3 miss becomes a cache-line bus transaction and every disk
 * transfer becomes DMA traffic on the same bus. The model recomputes
 * bus utilization over fixed time windows from the offered load and
 * derives the mean IOQ residency with an M/G/1 queueing approximation:
 *
 *     wait = rho * S * (1 + cv^2) / (2 * (1 - rho))
 *
 * where S is the mean bus occupancy of a transaction and cv its
 * coefficient of variation. The measured "bus-transaction time" the
 * paper reports (102 cycles at 1P, growing with utilization at 4P) is
 * base latency + wait.
 */

#ifndef ODBSIM_MEM_BUS_HH
#define ODBSIM_MEM_BUS_HH

#include <cstdint>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace odbsim::mem
{

/** Static parameters of the front-side bus model. */
struct BusConfig
{
    /** CPU clock, used to convert ticks to cycles. */
    double cpuFreqHz = 1.6e9;
    /**
     * Zero-load IOQ residency of a transaction, in CPU cycles
     * (the paper measures 102 on the 1P Xeon MP).
     */
    double baseTransactionCycles = 102.0;
    /** Bus occupancy of one 64 B line transfer, in CPU cycles. */
    double lineOccupancyCycles = 40.0;
    /** Bus occupancy of one KB of DMA traffic, in CPU cycles. */
    double dmaOccupancyCyclesPerKb = 160.0;
    /** Squared coefficient of variation of service times. */
    double serviceCv2 = 1.5;
    /** Load-recomputation window, in ticks. */
    Tick windowTicks = 100 * tickPerUs;
    /** EWMA smoothing weight given to the newest window. */
    double ewmaAlpha = 0.5;
    /** Utilization is clamped below this to keep the queue stable. */
    double maxUtilization = 0.97;
};

/**
 * The shared front-side bus / IOQ model.
 */
class FrontSideBus
{
  public:
    /** @param cfg M/G/1 service parameters and window length. */
    explicit FrontSideBus(const BusConfig &cfg);

    /** Record @p n cache-line transactions (L3 misses/writebacks). */
    void
    addLineTransfers(double n)
    {
        windowLineTxns_ += n;
    }

    /** Record @p bytes of DMA traffic from the I/O subsystem. */
    void
    addDmaBytes(double bytes)
    {
        windowDmaKb_ += bytes / 1024.0;
    }

    /**
     * Advance the model clock; recomputes utilization and IOQ wait
     * whenever a full window has elapsed.
     */
    void maybeUpdate(Tick now);

    /** Current smoothed bus utilization in [0, 1). */
    double utilization() const { return util_; }

    /** Current mean IOQ residency of a transaction, in CPU cycles. */
    double ioqCycles() const { return cfg_.baseTransactionCycles + wait_; }

    /** Current mean queueing delay (IOQ residency above base). */
    double queueWaitCycles() const { return wait_; }

    /** Time-weighted statistics over the measurement period. @{ */
    /** Utilization samples, one per elapsed window. */
    const RunningStat &utilizationStat() const { return utilStat_; }
    /** IOQ residency samples, one per elapsed window. */
    const RunningStat &ioqStat() const { return ioqStat_; }
    /** @} */

    /** Clear the statistics (model state and clock are kept). */
    void resetStats();

    /** Parameters given at construction. */
    const BusConfig &config() const { return cfg_; }

  private:
    void recompute(double window_cycles);

    BusConfig cfg_;
    Tick windowStart_ = 0;
    double windowLineTxns_ = 0.0;
    double windowDmaKb_ = 0.0;

    double util_ = 0.0;
    double wait_ = 0.0;

    RunningStat utilStat_;
    RunningStat ioqStat_;
};

} // namespace odbsim::mem

#endif // ODBSIM_MEM_BUS_HH
