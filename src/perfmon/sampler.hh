/**
 * @file
 * EMON-style round-robin counter sampling.
 *
 * The Xeon MP has 18 counters in 9 pairs, each pair tied to an event
 * subset, so the paper measured each event for ten seconds at a time
 * in a round-robin over the measurement period, repeated six times.
 * EmonSampler reproduces that methodology: the measurement window is
 * cut into slices, each slice observes one event group, and per-event
 * totals are extrapolated from the observed slices — which is exactly
 * where the paper's OS-CPI sampling noise (Section 5.1) comes from.
 */

#ifndef ODBSIM_PERFMON_SAMPLER_HH
#define ODBSIM_PERFMON_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "perfmon/events.hh"
#include "sim/types.hh"

namespace odbsim::perfmon
{

/** A set of events measurable simultaneously. */
struct EventGroup
{
    const char *name;
    std::vector<EmonEvent> events;
};

/** Result of a sampled measurement. */
struct SampledMeasurement
{
    /** Extrapolated full-window counter estimates. */
    SystemCounters estimated;
    /** Ground truth over the same window (free in simulation). */
    SystemCounters actual;
    /** Total window length. */
    Tick window = 0;
    /** Slices observed per group. */
    unsigned slicesPerGroup = 0;
};

/**
 * Round-robin sampler; drives the simulation itself.
 */
class EmonSampler
{
  public:
    /** The default 5-group schedule used for the studies. */
    static std::vector<EventGroup> defaultGroups();

    explicit EmonSampler(std::vector<EventGroup> groups =
                             defaultGroups());

    /**
     * Advance @p sys through rounds * groups slices of @p slice ticks
     * each, observing one group per slice round-robin.
     */
    SampledMeasurement measure(os::System &sys, Tick slice,
                               unsigned rounds);

  private:
    std::vector<EventGroup> groups_;
};

} // namespace odbsim::perfmon

#endif // ODBSIM_PERFMON_SAMPLER_HH
