#include "perfmon/sampler.hh"

#include "sim/logging.hh"

namespace odbsim::perfmon
{

namespace
{

/** Copy only @p group's events from @p src into @p dst (accumulate). */
void
accumulateGroup(SystemCounters &dst, const SystemCounters &src,
                const EventGroup &group)
{
    for (const EmonEvent e : group.events) {
        switch (e) {
          case EmonEvent::Instructions:
            dst.instructions += src.instructions;
            break;
          case EmonEvent::ClockCycles:
            dst.cycles += src.cycles;
            break;
          case EmonEvent::BranchMispredicts:
            dst.branchMispredicts += src.branchMispredicts;
            break;
          case EmonEvent::TlbMisses:
            dst.tlbMisses += src.tlbMisses;
            break;
          case EmonEvent::TcMisses:
            dst.tcMisses += src.tcMisses;
            break;
          case EmonEvent::L2Misses:
            dst.l2Misses += src.l2Misses;
            break;
          case EmonEvent::L3Misses:
            dst.l3Misses += src.l3Misses;
            break;
          case EmonEvent::CoherenceMisses:
            dst.coherenceMisses += src.coherenceMisses;
            break;
          case EmonEvent::BusUtilization:
            dst.busUtilization = src.busUtilization;
            break;
          case EmonEvent::BusTransactionTime:
            dst.ioqCycles = src.ioqCycles;
            break;
          default:
            break;
        }
    }
}

void
scaleReading(EventReading &r, double f)
{
    r.user *= f;
    r.os *= f;
}

} // namespace

std::vector<EventGroup>
EmonSampler::defaultGroups()
{
    return {
        {"retirement", {EmonEvent::Instructions, EmonEvent::ClockCycles}},
        {"frontend",
         {EmonEvent::BranchMispredicts, EmonEvent::TlbMisses,
          EmonEvent::TcMisses}},
        {"cache", {EmonEvent::L2Misses, EmonEvent::L3Misses}},
        {"coherence", {EmonEvent::CoherenceMisses}},
        {"bus",
         {EmonEvent::BusUtilization, EmonEvent::BusTransactionTime}},
    };
}

EmonSampler::EmonSampler(std::vector<EventGroup> groups)
    : groups_(std::move(groups))
{
    odbsim_assert(!groups_.empty(), "sampler needs at least one group");
}

SampledMeasurement
EmonSampler::measure(os::System &sys, Tick slice, unsigned rounds)
{
    odbsim_assert(slice > 0 && rounds > 0, "bad sampling schedule");

    SampledMeasurement out;
    const SystemCounters window_start = SystemCounters::read(sys);
    const Tick t0 = sys.now();

    for (unsigned r = 0; r < rounds; ++r) {
        for (const EventGroup &g : groups_) {
            const SystemCounters before = SystemCounters::read(sys);
            sys.runFor(slice);
            const SystemCounters after = SystemCounters::read(sys);
            accumulateGroup(out.estimated, after.delta(before), g);
        }
    }

    out.window = sys.now() - t0;
    out.slicesPerGroup = rounds;
    out.actual = SystemCounters::read(sys).delta(window_start);
    out.actual.busUtilization =
        sys.memsys().bus().utilizationStat().mean();
    out.actual.ioqCycles = sys.memsys().bus().ioqStat().mean();

    // Each accumulating event was observed for rounds * slice out of
    // the full window; extrapolate to the window.
    const double scale =
        static_cast<double>(groups_.size());
    scaleReading(out.estimated.instructions, scale);
    scaleReading(out.estimated.cycles, scale);
    scaleReading(out.estimated.branchMispredicts, scale);
    scaleReading(out.estimated.tlbMisses, scale);
    scaleReading(out.estimated.tcMisses, scale);
    scaleReading(out.estimated.l2Misses, scale);
    scaleReading(out.estimated.l3Misses, scale);
    scaleReading(out.estimated.coherenceMisses, scale);
    return out;
}

} // namespace odbsim::perfmon
