#include "perfmon/events.hh"

namespace odbsim::perfmon
{

SystemCounters
SystemCounters::read(const os::System &sys)
{
    SystemCounters out;
    // Architectural counters are per logical CPU; memory-side
    // counters live in the (possibly SMT-shared) cache hierarchies.
    for (unsigned i = 0; i < sys.numCpus(); ++i) {
        const auto &core = sys.core(i);
        for (unsigned m = 0; m < 2; ++m) {
            const auto mode = static_cast<mem::ExecMode>(m);
            const auto &cc = core.counters()[mode];
            auto &u = m == 0 ? out.instructions.user : out.instructions.os;
            u += cc.instructions;
            auto &cy = m == 0 ? out.cycles.user : out.cycles.os;
            cy += cc.cycles;
            auto &br = m == 0 ? out.branchMispredicts.user
                              : out.branchMispredicts.os;
            br += cc.branchMispredicts;
            auto &tlb = m == 0 ? out.tlbMisses.user : out.tlbMisses.os;
            tlb += cc.tlbMisses;
        }
    }
    for (unsigned i = 0; i < sys.memsys().numCpus(); ++i) {
        for (unsigned m = 0; m < 2; ++m) {
            const auto mode = static_cast<mem::ExecMode>(m);
            const auto &mc = sys.memsys().cpu(i).counters(mode);
            auto &tc = m == 0 ? out.tcMisses.user : out.tcMisses.os;
            tc += static_cast<double>(mc.codeFetches);
            auto &l2 = m == 0 ? out.l2Misses.user : out.l2Misses.os;
            l2 += static_cast<double>(mc.l2Misses);
            auto &l3 = m == 0 ? out.l3Misses.user : out.l3Misses.os;
            l3 += static_cast<double>(mc.l3Misses);
            auto &coh = m == 0 ? out.coherenceMisses.user
                               : out.coherenceMisses.os;
            coh += static_cast<double>(mc.coherenceMisses);
        }
    }
    out.busUtilization = sys.memsys().bus().utilization();
    out.ioqCycles = sys.memsys().bus().ioqCycles();
    return out;
}

SystemCounters
SystemCounters::delta(const SystemCounters &earlier) const
{
    SystemCounters out;
    out.instructions = instructions - earlier.instructions;
    out.cycles = cycles - earlier.cycles;
    out.branchMispredicts =
        branchMispredicts - earlier.branchMispredicts;
    out.tlbMisses = tlbMisses - earlier.tlbMisses;
    out.tcMisses = tcMisses - earlier.tcMisses;
    out.l2Misses = l2Misses - earlier.l2Misses;
    out.l3Misses = l3Misses - earlier.l3Misses;
    out.coherenceMisses = coherenceMisses - earlier.coherenceMisses;
    out.busUtilization = busUtilization;
    out.ioqCycles = ioqCycles;
    return out;
}

namespace
{

double
ratio(double num, double den)
{
    return den > 0.0 ? num / den : 0.0;
}

} // namespace

double
SystemCounters::cpi() const
{
    return ratio(cycles.total(), instructions.total());
}

double
SystemCounters::cpiUser() const
{
    return ratio(cycles.user, instructions.user);
}

double
SystemCounters::cpiOs() const
{
    return ratio(cycles.os, instructions.os);
}

double
SystemCounters::mpi() const
{
    return ratio(l3Misses.total(), instructions.total());
}

double
SystemCounters::mpiUser() const
{
    return ratio(l3Misses.user, instructions.user);
}

double
SystemCounters::mpiOs() const
{
    return ratio(l3Misses.os, instructions.os);
}

} // namespace odbsim::perfmon
