/**
 * @file
 * The performance-monitoring events of the paper's Table 2 and the
 * system-wide counter snapshot used by the analysis layer.
 *
 * | Alias              | EMON event              | Meaning               |
 * |--------------------|-------------------------|-----------------------|
 * | Instructions       | instr_retired           | instructions retired  |
 * | Branch Mispred.    | mispred_branch_retired  | mispredicted branches |
 * | TLB Miss           | page_walk_type          | TLB misses (walks)    |
 * | TC Miss            | BPU_fetch_request       | trace-cache misses    |
 * | L2 Miss            | BSU_cache_reference     | L2 misses             |
 * | L3 Miss            | BSU_cache_reference     | L3 misses             |
 * | Clock Cycles       | Global_power_events     | unhalted cycles       |
 * | Bus Utilization    | FSB_data_activity       | bus busy fraction     |
 * | Bus-Transaction    | IOQ_active_entries &    | mean IOQ residency    |
 * | Time               | IOQ_allocation          |                       |
 */

#ifndef ODBSIM_PERFMON_EVENTS_HH
#define ODBSIM_PERFMON_EVENTS_HH

#include <cstdint>

#include "os/system.hh"

namespace odbsim::perfmon
{

/** The monitored events (paper Table 2). */
enum class EmonEvent : std::uint8_t
{
    Instructions,
    BranchMispredicts,
    TlbMisses,
    TcMisses,
    L2Misses,
    L3Misses,
    CoherenceMisses, ///< L3-miss qualifier (HITM), beyond Table 2.
    ClockCycles,
    BusUtilization,
    BusTransactionTime,
    NumEvents,
};

constexpr unsigned numEmonEvents =
    static_cast<unsigned>(EmonEvent::NumEvents);

constexpr const char *
toString(EmonEvent e)
{
    switch (e) {
      case EmonEvent::Instructions: return "instr_retired";
      case EmonEvent::BranchMispredicts: return "mispred_branch_retired";
      case EmonEvent::TlbMisses: return "page_walk_type";
      case EmonEvent::TcMisses: return "BPU_fetch_request";
      case EmonEvent::L2Misses: return "BSU_cache_reference.L2";
      case EmonEvent::L3Misses: return "BSU_cache_reference.L3";
      case EmonEvent::CoherenceMisses: return "BSU_cache_reference.HITM";
      case EmonEvent::ClockCycles: return "Global_power_events";
      case EmonEvent::BusUtilization: return "FSB_data_activity";
      case EmonEvent::BusTransactionTime: return "IOQ_active_entries";
      default: return "?";
    }
}

/** A user/OS split of one accumulating event. */
struct EventReading
{
    double user = 0.0;
    double os = 0.0;

    double total() const { return user + os; }

    EventReading
    operator-(const EventReading &o) const
    {
        return EventReading{user - o.user, os - o.os};
    }

    EventReading &
    operator+=(const EventReading &o)
    {
        user += o.user;
        os += o.os;
        return *this;
    }
};

/**
 * A full snapshot of the machine's counters, aggregated over CPUs and
 * split by privilege mode where the hardware supports it.
 */
struct SystemCounters
{
    EventReading instructions;
    EventReading cycles;
    EventReading branchMispredicts;
    EventReading tlbMisses;
    EventReading tcMisses;
    EventReading l2Misses;
    EventReading l3Misses;
    EventReading coherenceMisses;
    /** Instantaneous bus gauges (not accumulating). */
    double busUtilization = 0.0;
    double ioqCycles = 0.0;

    /** Read the live counters of @p sys. */
    static SystemCounters read(const os::System &sys);

    /** Accumulating counters' delta since @p earlier (gauges copied). */
    SystemCounters delta(const SystemCounters &earlier) const;

    /** @name Derived metrics @{ */
    double cpi() const;
    double cpiUser() const;
    double cpiOs() const;
    double mpi() const;
    double mpiUser() const;
    double mpiOs() const;
    /** @} */
};

} // namespace odbsim::perfmon

#endif // ODBSIM_PERFMON_EVENTS_HH
