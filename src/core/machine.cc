#include "core/machine.hh"

#include "sim/logging.hh"

namespace odbsim::core
{

MachinePreset
makeMachine(MachineKind kind, unsigned processors,
            std::uint32_t sample_period, std::uint64_t seed)
{
    odbsim_assert(processors >= 1 && processors <= 8,
                  "unsupported processor count ", processors);

    MachinePreset preset;
    preset.name = toString(kind);
    os::SystemConfig &sys = preset.sys;
    sys.numCpus = processors;
    sys.seed = seed;
    sys.core.samplePeriod = sample_period;

    switch (kind) {
      case MachineKind::XeonQuadMpHt:
        // Same machine as XeonQuadMp, with HT enabled: each physical
        // processor exposes two logical CPUs sharing its caches.
        sys.threadsPerCore = 2;
        sys.numCpus = processors * 2;
        [[fallthrough]];
      case MachineKind::XeonQuadMp:
        // 1.6 GHz NetBurst Xeon MP: trace cache, 256 KB L2, 1 MB L3;
        // ServerWorks GC-HE chipset; 26 Ultra320 drives (24 data + 2
        // dedicated redo-log drives).
        sys.core.freqHz = 1.6e9;
        sys.hierarchy.traceCache = {16 * KiB, 8, 64};
        sys.hierarchy.l1d = {8 * KiB, 4, 64};
        sys.hierarchy.l2 = {256 * KiB, 8, 64};
        sys.hierarchy.l3 = {1 * MiB, 8, 64};
        sys.bus.cpuFreqHz = 1.6e9;
        sys.bus.baseTransactionCycles = 102.0;
        sys.bus.lineOccupancyCycles = 40.0;
        sys.bus.dmaOccupancyCyclesPerKb = 160.0;
        sys.disks.dataDisks = 24;
        sys.disks.logDisks = 2;
        // 4 GB machine, ~2.8 GB database buffer cache, ~100 MB
        // warehouses: the cache covers ~28.7 warehouse-equivalents.
        preset.cacheWarehouseEquivalents = 28.7;
        break;

      case MachineKind::Itanium2Quad:
        // 1.5 GHz Itanium2: 3 MB on-die L3, ~50% more bus bandwidth,
        // 16 GB of memory, 34 drives (Section 6.3 / [22]).
        sys.core.freqHz = 1.5e9;
        sys.hierarchy.traceCache = {16 * KiB, 8, 64};
        sys.hierarchy.l1d = {16 * KiB, 4, 64};
        sys.hierarchy.l2 = {256 * KiB, 8, 64};
        sys.hierarchy.l3 = {3 * MiB, 12, 64};
        sys.bus.cpuFreqHz = 1.5e9;
        sys.bus.baseTransactionCycles = 96.0;
        sys.bus.lineOccupancyCycles = 27.0;   // +50% bandwidth.
        sys.bus.dmaOccupancyCyclesPerKb = 107.0;
        sys.disks.dataDisks = 32;
        sys.disks.logDisks = 2;
        // 16 GB machine: a far larger buffer cache (~12 GB).
        preset.cacheWarehouseEquivalents = 120.0;
        break;

      case MachineKind::CmpQuad:
        // Hypothetical CMP: same cores and platform as the Xeon MP,
        // but the four cores share one 2 MB on-die L3; L2 misses that
        // hit it never cross the front-side bus.
        sys.core.freqHz = 1.6e9;
        sys.hierarchy.l2 = {256 * KiB, 8, 64};
        sys.hierarchy.l3 = {2 * MiB, 16, 64};
        sys.hierarchy.sharedL3 = true;
        sys.bus.cpuFreqHz = 1.6e9;
        sys.bus.baseTransactionCycles = 102.0;
        sys.bus.lineOccupancyCycles = 40.0;
        sys.bus.dmaOccupancyCyclesPerKb = 160.0;
        sys.disks.dataDisks = 24;
        sys.disks.logDisks = 2;
        preset.cacheWarehouseEquivalents = 28.7;
        break;
    }
    return preset;
}

} // namespace odbsim::core
