/**
 * @file
 * Repeated measurements: the paper repeated every counter measurement
 * six times; RepeatRunner does the same across seeds and reports
 * means with confidence intervals, so downstream comparisons can tell
 * signal from simulation noise.
 */

#ifndef ODBSIM_CORE_REPEAT_HH
#define ODBSIM_CORE_REPEAT_HH

#include <cmath>
#include <functional>
#include <vector>

#include "core/experiment.hh"
#include "sim/stats.hh"

namespace odbsim::core
{

/** Mean / spread of one metric over repeated runs. */
struct MetricStats
{
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::size_t n = 0;

    /** Half-width of the ~95% confidence interval of the mean. */
    double
    ci95() const
    {
        return n > 1 ? 1.96 * stddev /
                           std::sqrt(static_cast<double>(n))
                     : 0.0;
    }
};

/** One configuration measured across seeds. */
struct RepeatedResult
{
    std::vector<RunResult> runs;

    /** Aggregate any metric over the runs. */
    MetricStats stats(
        const std::function<double(const RunResult &)> &get) const;

    MetricStats tps() const;
    MetricStats cpi() const;
    MetricStats mpi() const;
    MetricStats ipx() const;
    MetricStats cpuUtil() const;
};

/**
 * Measure @p cfg @p repeats times with derived seeds (the paper's
 * six-repeat methodology).
 */
RepeatedResult repeatRun(const OltpConfiguration &cfg,
                         const RunKnobs &base_knobs = {},
                         unsigned repeats = 6);

} // namespace odbsim::core

#endif // ODBSIM_CORE_REPEAT_HH
