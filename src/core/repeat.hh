/**
 * @file
 * Repeated measurements: the paper repeated every counter measurement
 * six times; RepeatRunner does the same across seeds and reports
 * means with confidence intervals, so downstream comparisons can tell
 * signal from simulation noise.
 */

#ifndef ODBSIM_CORE_REPEAT_HH
#define ODBSIM_CORE_REPEAT_HH

#include <cmath>
#include <functional>
#include <vector>

#include "core/experiment.hh"
#include "sim/stats.hh"

namespace odbsim::core
{

/** Mean / spread of one metric over repeated runs. */
struct MetricStats
{
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::size_t n = 0;

    /** Half-width of the ~95% confidence interval of the mean. */
    double
    ci95() const
    {
        return n > 1 ? 1.96 * stddev /
                           std::sqrt(static_cast<double>(n))
                     : 0.0;
    }
};

/** One configuration measured across seeds. */
struct RepeatedResult
{
    std::vector<RunResult> runs;

    /** Aggregate any metric over the runs. */
    MetricStats stats(
        const std::function<double(const RunResult &)> &get) const;

    MetricStats tps() const;
    MetricStats cpi() const;
    MetricStats mpi() const;
    MetricStats ipx() const;
    MetricStats cpuUtil() const;
};

/**
 * Measure @p cfg @p repeats times with derived seeds (the paper's
 * six-repeat methodology).
 *
 * @p jobs is host-side parallelism across the replicas (see
 * hostParallelFor): 1 (default) runs them serially; 0 uses all host
 * cores; when already on a ThreadPool worker the replicas become
 * nested tasks on that pool. Every replica derives its own RNG stream
 * from the per-replica seed and results are collected by replica
 * index, so runs/means/CIs are bit-identical at any job count.
 */
RepeatedResult repeatRun(const OltpConfiguration &cfg,
                         const RunKnobs &base_knobs = {},
                         unsigned repeats = 6,
                         unsigned jobs = 1);

/**
 * Collapse repeated replicas into one representative RunResult: every
 * double metric (including the CPI breakdown) becomes the mean over
 * the replicas, integer event counts become the rounded mean, the
 * configuration and raw counters are replica 0's, and the host-side
 * profiling fields (wallSeconds, eventsFired) are summed — they
 * measure the cost of producing the aggregate. A pure function of the
 * index-ordered replica vector, so it inherits repeatRun's
 * bit-identical determinism.
 */
RunResult aggregateRuns(const std::vector<RunResult> &runs);

} // namespace odbsim::core

#endif // ODBSIM_CORE_REPEAT_HH
