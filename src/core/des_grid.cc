#include "core/des_grid.hh"

#include <algorithm>
#include <chrono>
#include <memory>

#include "core/client_table.hh"
#include "db/database.hh"
#include "odb/server_process.hh"
#include "odb/workload.hh"
#include "os/system.hh"
#include "sim/logging.hh"
#include "sim/parallel_engine.hh"

namespace odbsim::core
{
namespace
{

/** One shared-nothing database instance bound to an island queue. */
struct IslandInstance
{
    std::unique_ptr<os::System> sys;
    std::unique_ptr<db::Database> db;
    std::unique_ptr<odb::OdbWorkload> workload;
};

void
fnv(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ULL;
    }
}

/**
 * Self-rescheduling emitter of one island's coordination traffic:
 * picks a peer and a payload from the island-local stream, sends the
 * message at now + latency (>= the engine lookahead by construction),
 * and re-arms after an exponential gap. Lives in island @p island's
 * execution, so every draw is bit-identical at any worker count.
 */
struct CoordDriver
{
    sim::ParallelEngine *engine = nullptr;
    unsigned island = 0;
    unsigned islands = 1;
    Rng rng{0};
    double meanIntervalTicks = 1.0;
    Tick latency = 1;
    std::uint64_t instr = 0;
    std::vector<IslandInstance> *instances = nullptr;
    std::vector<std::uint64_t> *received = nullptr;

    Tick
    nextGap()
    {
        const double g = rng.exponential(meanIntervalTicks);
        return g < 1.0 ? Tick{1} : static_cast<Tick>(g);
    }

    void
    arm()
    {
        const Tick now = engine->islandQueue(island).curTick();
        engine->schedule(island, now + nextGap(), [this] { fire(); });
    }

    void
    fire()
    {
        const Tick now = engine->islandQueue(island).curTick();
        unsigned tgt = static_cast<unsigned>(rng.below(islands - 1));
        if (tgt >= island)
            ++tgt;
        const std::uint64_t payload = rng.next();
        IslandInstance *inst = &(*instances)[tgt];
        std::uint64_t *rcv = &(*received)[tgt];
        const std::uint64_t cost = instr;
        // The remote end pays the coordination tax on its next
        // dispatch of the addressed server — the same modelling as
        // PlacementConfig::crossIslandCoordInstr, but paid across
        // instances through the engine's merge-ordered delivery.
        engine->sendCross(island, tgt, now + latency,
                          [inst, rcv, payload, cost] {
                              ++*rcv;
                              odb::OdbWorkload &w = *inst->workload;
                              inst->sys->chargeKernel(
                                  w.server(payload % w.clients()), cost);
                          });
        engine->schedule(island, now + nextGap(), [this] { fire(); });
    }
};

} // namespace

DesGridResult
runDesGridPoint(const DesGridConfig &cfg)
{
    odbsim_assert(cfg.islands >= 1, "DesGridConfig: islands must be >= 1");

    // A throwaway preset resolves the machine's core clock so the
    // interconnect hop latency converts to ticks.
    const MachinePreset clock_probe =
        makeMachine(cfg.machine, cfg.cpusPerIsland, cfg.samplePeriod,
                    cfg.seed);
    const ClockDomain clock(clock_probe.sys.core.freqHz);

    // Effective lookahead: the interconnect's minimum cross-socket
    // latency is the hard floor; the coordination-latency floor keeps
    // the epoch grid at control-message granularity (see des_grid.hh).
    Tick lookahead = 0;
    if (cfg.islands > 1) {
        unsigned min_hops = mem::socketHops(0, 1, cfg.islands);
        for (unsigned s = 2; s < cfg.islands; ++s)
            min_hops =
                std::min(min_hops, mem::socketHops(0, s, cfg.islands));
        const Tick hop_ticks = clock.cyclesToTicks(
            cfg.interconnect.hopLatencyCycles * min_hops);
        lookahead = std::max(hop_ticks, ticksFromUs(cfg.coordLatencyUs));
        odbsim_assert(lookahead > 0, "degenerate lookahead");
    }

    sim::ParallelEngineConfig ecfg;
    ecfg.islands = cfg.islands;
    ecfg.lookahead = lookahead;
    ecfg.workers = cfg.desThreads;
    ecfg.oracle = cfg.oracle;
    sim::ParallelEngine engine(ecfg);

    std::vector<IslandInstance> instances(cfg.islands);
    std::vector<std::uint64_t> received(cfg.islands, 0);
    for (unsigned i = 0; i < cfg.islands; ++i) {
        const std::uint64_t iseed = desIslandSeed(cfg.seed, i);
        const MachinePreset preset = makeMachine(
            cfg.machine, cfg.cpusPerIsland, cfg.samplePeriod, iseed);
        os::SystemConfig syscfg = preset.sys;
        syscfg.desThreads = cfg.desThreads;
        auto sys =
            std::make_unique<os::System>(syscfg, &engine.islandQueue(i));

        db::DatabaseConfig dbcfg;
        dbcfg.schema.warehouses = cfg.warehousesPerIsland;
        dbcfg.schema.seed = iseed;
        dbcfg.cacheWarehouseEquivalents = preset.cacheWarehouseEquivalents;
        auto db = std::make_unique<db::Database>(*sys, dbcfg);
        db->start();

        const unsigned clients =
            cfg.clientsPerIsland
                ? cfg.clientsPerIsland
                : paperClients(cfg.warehousesPerIsland, cfg.cpusPerIsland);
        odb::WorkloadConfig wcfg;
        wcfg.clients = clients;
        wcfg.seed = iseed * 7919 + cfg.warehousesPerIsland;
        auto workload = std::make_unique<odb::OdbWorkload>(*db, wcfg);
        workload->start();
        db->instantWarm({}, 1);

        instances[i] = {std::move(sys), std::move(db),
                        std::move(workload)};
    }

    // Coordination drivers: stored in a pre-sized vector so the
    // this-pointers captured by their events stay stable.
    std::vector<CoordDriver> drivers(cfg.islands);
    if (cfg.islands > 1 && cfg.coordIntervalUs > 0.0) {
        for (unsigned i = 0; i < cfg.islands; ++i) {
            CoordDriver &d = drivers[i];
            d.engine = &engine;
            d.island = i;
            d.islands = cfg.islands;
            d.rng = Rng(desIslandSeed(cfg.seed, i) ^ 0xc00dULL);
            d.meanIntervalTicks =
                static_cast<double>(ticksFromUs(cfg.coordIntervalUs));
            d.latency = lookahead;
            d.instr = cfg.coordInstr;
            d.instances = &instances;
            d.received = &received;
            d.arm();
        }
    }

    const auto wall_start = std::chrono::steady_clock::now();
    engine.run(cfg.warmup);
    for (auto &inst : instances) {
        inst.sys->beginMeasurement();
        inst.workload->resetStats();
        inst.db->resetStats();
    }
    engine.run(cfg.warmup + cfg.measure);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    DesGridResult r;
    r.islands = cfg.islands;
    r.workers = engine.workers();
    r.lookahead = lookahead;
    r.committedPerIsland.resize(cfg.islands);
    r.coordReceived = received;
    std::uint64_t digest = 0xcbf29ce484222325ULL;
    for (unsigned i = 0; i < cfg.islands; ++i) {
        const IslandInstance &inst = instances[i];
        const std::uint64_t committed = inst.workload->committed();
        r.committedPerIsland[i] = committed;
        r.committed += committed;
        r.tps += inst.workload->tps(inst.sys->measurementWindow());
        fnv(digest, committed);
        for (unsigned t = 0; t < db::numTxnTypes; ++t)
            fnv(digest, inst.workload->committed(
                            static_cast<db::TxnType>(t)));
        fnv(digest, inst.sys->sched().contextSwitches());
        fnv(digest, inst.sys->disks().dataReads());
        fnv(digest, received[i]);
    }
    r.eventsFired = engine.eventsFired();
    r.crossSent = engine.crossSent();
    r.crossDelivered = engine.crossDelivered();
    r.epochBarriers = engine.epochBarriers();
    fnv(digest, r.eventsFired);
    fnv(digest, r.crossSent);
    fnv(digest, r.crossDelivered);
    fnv(digest, r.epochBarriers);
    r.digest = digest;
    r.wallSeconds = wall;
    return r;
}

} // namespace odbsim::core
