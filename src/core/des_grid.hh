/**
 * @file
 * DesGridPoint: an island-decomposed deployment of the OLTP grid point
 * for the conservative parallel DES engine.
 *
 * The paper's grid points are single coherence domains — one System,
 * one shared lock manager, one scheduler — which is exactly the S=1
 * degenerate case of sim::ParallelEngine (the serial engine, taken by
 * every golden run regardless of --des-threads). The deployment that
 * *earns* parallel DES is the hardware-islands one from docs/
 * TOPOLOGY.md: one database instance per socket, shared-nothing inside
 * the box, coupled only through cross-socket coordination traffic
 * (distributed-commit control messages) that cannot arrive sooner than
 * the interconnect latency. runDesGridPoint() builds that: S complete
 * System+Database+Workload instances, each bound to its island's event
 * queue, exchanging coordination messages through the engine with the
 * interconnect-derived lookahead.
 *
 * Every per-island RNG stream is derived from (seed, island), and
 * cross-island interaction happens only through ParallelEngine's
 * merge-ordered delivery, so the whole deployment — every commit
 * count, latency histogram and coordination counter — is bit-identical
 * at any worker count and to the shared-queue oracle. The digest field
 * condenses that into one comparable word.
 */

#ifndef ODBSIM_CORE_DES_GRID_HH
#define ODBSIM_CORE_DES_GRID_HH

#include <cstdint>
#include <vector>

#include "core/machine.hh"
#include "mem/topology.hh"
#include "sim/types.hh"

namespace odbsim::core
{

/** One island-decomposed deployment (see file comment). */
struct DesGridConfig
{
    /** Database instances — one per socket/island. */
    unsigned islands = 4;
    /** Workload scale of each instance, in warehouses. */
    unsigned warehousesPerIsland = 10;
    /** Processors of each instance's machine preset. */
    unsigned cpusPerIsland = 4;
    /** Clients per instance; 0 selects the paper's Table 1 value. */
    unsigned clientsPerIsland = 0;
    /** Machine preset each instance runs on. */
    MachineKind machine = MachineKind::XeonQuadMp;
    /** Interconnect shape between the islands; sockets is overridden
     *  to the island count. hopLatencyCycles × min hops is the hard
     *  lower bound on the engine lookahead. */
    mem::TopologyConfig interconnect;
    /** Dynamic warm-up before the measurement window, in ticks. */
    Tick warmup = ticksFromSeconds(0.1);
    /** Measurement window, in ticks. */
    Tick measure = ticksFromSeconds(0.5);
    /** CPU-model set-sampling factor. */
    std::uint32_t samplePeriod = 16;
    /** Master seed; all per-island streams derive from it. */
    std::uint64_t seed = 42;
    /** DES worker threads (RunKnobs::desThreads semantics: 1 serial,
     *  0 = hardware concurrency; bit-identical at any value). */
    unsigned desThreads = 1;
    /** Run on the shared-queue differential oracle instead of the
     *  per-island queues (single-threaded by construction). */
    bool oracle = false;
    /** Mean interval between coordination messages an island emits,
     *  in simulated microseconds (exponentially distributed). */
    double coordIntervalUs = 200.0;
    /**
     * Minimum latency of a coordination message, in simulated
     * microseconds. The effective engine lookahead is
     * max(interconnect hop latency, this) — control messages queue
     * behind real work at the remote end, so their floor is far above
     * one interconnect hop, which keeps the epoch count sane.
     */
    double coordLatencyUs = 50.0;
    /** Kernel instructions the receiving server pays per coordination
     *  message (the cross-island coordination tax). */
    std::uint64_t coordInstr = 400000;
};

/** Aggregate outcome of one island-decomposed deployment run. */
struct DesGridResult
{
    unsigned islands = 0;
    /** Resolved engine worker count. */
    unsigned workers = 0;
    /** Effective lookahead the epochs were derived from, in ticks. */
    Tick lookahead = 0;
    /** Committed transactions, summed and per island. */
    std::uint64_t committed = 0;
    std::vector<std::uint64_t> committedPerIsland;
    /** Coordination messages received per island. */
    std::vector<std::uint64_t> coordReceived;
    /** Aggregate transactions per second over the window. */
    double tps = 0.0;
    /** Engine counters over the whole run. */
    std::uint64_t eventsFired = 0;
    std::uint64_t crossSent = 0;
    std::uint64_t crossDelivered = 0;
    std::uint64_t epochBarriers = 0;
    /**
     * FNV-1a digest of every per-island observable (commit counts per
     * type, context switches, disk reads, coordination receipts) in
     * island order plus the engine totals — the word the parallel
     * path is cross-checked against the oracle with.
     */
    std::uint64_t digest = 0;
    /** Host wall-clock seconds spent inside ParallelEngine::run. */
    double wallSeconds = 0.0;
};

/** Seed of island @p i's instance streams under master @p seed. */
constexpr std::uint64_t
desIslandSeed(std::uint64_t seed, unsigned i)
{
    return seed + 1000003ULL * (i + 1);
}

/** Build and run one island-decomposed deployment. */
DesGridResult runDesGridPoint(const DesGridConfig &cfg);

} // namespace odbsim::core

#endif // ODBSIM_CORE_DES_GRID_HH
