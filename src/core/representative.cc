#include "core/representative.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace odbsim::core
{

Recommendation
RepresentativeConfigSelector::select(const StudyResult &study,
                                     double margin, unsigned granularity)
{
    odbsim_assert(!study.series.empty(), "empty study");
    odbsim_assert(margin >= 1.0, "margin must be >= 1");
    odbsim_assert(granularity >= 1, "granularity must be >= 1");

    Recommendation rec;
    for (const auto &series : study.series) {
        PivotRow row;
        row.processors = series.processors;
        row.cpiFit = series.cpiFit();
        row.mpiFit = series.mpiFit();
        row.cpiPivotW = row.cpiFit.pivotX;
        row.mpiPivotW = row.mpiFit.pivotX;
        rec.maxPivotW = std::max({rec.maxPivotW, row.cpiPivotW,
                                  row.mpiPivotW});
        rec.pivots.push_back(std::move(row));
    }

    const double padded = rec.maxPivotW * margin;
    rec.recommendedW = static_cast<unsigned>(
        std::ceil(padded / static_cast<double>(granularity)) *
        granularity);
    return rec;
}

} // namespace odbsim::core
