/**
 * @file
 * RepresentativeConfigSelector: the paper's Section 6.2 method — use
 * the CPI/MPI pivot points to choose the minimal workload
 * configuration whose behaviour extrapolates to fully scaled setups,
 * so simulation studies need not model anything larger.
 */

#ifndef ODBSIM_CORE_REPRESENTATIVE_HH
#define ODBSIM_CORE_REPRESENTATIVE_HH

#include <vector>

#include "core/scaling_study.hh"

namespace odbsim::core
{

/** Pivot points for one processor count (paper Table 5). */
struct PivotRow
{
    unsigned processors = 0;
    double cpiPivotW = 0.0;
    double mpiPivotW = 0.0;
    analysis::PiecewiseFit cpiFit;
    analysis::PiecewiseFit mpiFit;
};

/** The selector's recommendation. */
struct Recommendation
{
    std::vector<PivotRow> pivots;
    /** Largest pivot over all processor counts and both metrics. */
    double maxPivotW = 0.0;
    /**
     * Recommended minimal representative warehouse count: the largest
     * pivot padded by a safety margin and rounded up to a round
     * configuration size (the paper proposes 200 W for pivots near
     * 150).
     */
    unsigned recommendedW = 0;
};

/**
 * Derives pivot points and the minimal representative configuration
 * from a completed scaling study.
 */
class RepresentativeConfigSelector
{
  public:
    /**
     * @param margin Safety factor applied to the largest pivot.
     * @param granularity Recommendation is rounded up to a multiple.
     */
    static Recommendation select(const StudyResult &study,
                                 double margin = 1.3,
                                 unsigned granularity = 50);
};

} // namespace odbsim::core

#endif // ODBSIM_CORE_REPRESENTATIVE_HH
