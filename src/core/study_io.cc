#include "core/study_io.hh"

#include <fstream>
#include <sstream>

namespace odbsim::core
{

namespace
{

constexpr const char *profileCsvHeader =
    "processors,warehouses,wallSeconds,eventsFired,eventsPerSec";

constexpr const char *csvHeader =
    "processors,warehouses,clients,measureSeconds,txns,tps,ironLawTps,"
    "cpuUtil,osCycleShare,osInstrShare,ipx,ipxUser,ipxOs,cpi,cpiUser,"
    "cpiOs,mpi,mpiUser,mpiOs,rdKb,wrKb,logKb,readsPerTxn,ctxPerTxn,"
    "bufferHit,diskUtil,diskLatMs,busUtil,ioqCycles,cohShare,bInst,"
    "bBranch,bTlb,bTc,bL2,bL3,bOther";

} // namespace

void
saveStudyCsv(const StudyResult &study, std::ostream &out)
{
    out << csvHeader << "\n";
    out.precision(12);
    for (const auto &series : study.series) {
        for (const auto &r : series.points) {
            out << r.processors << ',' << r.warehouses << ','
                << r.clients << ',' << r.measureSeconds << ','
                << r.txnsCommitted << ',' << r.tps << ','
                << r.ironLawTps << ',' << r.cpuUtil << ','
                << r.osCycleShare << ',' << r.osInstrShare << ','
                << r.ipx << ',' << r.ipxUser << ',' << r.ipxOs << ','
                << r.cpi << ',' << r.cpiUser << ',' << r.cpiOs << ','
                << r.mpi << ',' << r.mpiUser << ',' << r.mpiOs << ','
                << r.diskReadKbPerTxn << ',' << r.diskWriteKbPerTxn
                << ',' << r.logKbPerTxn << ',' << r.diskReadsPerTxn
                << ',' << r.ctxPerTxn << ',' << r.bufferHitRatio << ','
                << r.avgDiskUtil << ',' << r.diskReadLatencyMs << ','
                << r.busUtil << ',' << r.ioqCycles << ','
                << r.coherenceShareOfL3 << ',' << r.breakdown.inst
                << ',' << r.breakdown.branch << ',' << r.breakdown.tlb
                << ',' << r.breakdown.tc << ',' << r.breakdown.l2 << ','
                << r.breakdown.l3 << ',' << r.breakdown.other << "\n";
        }
    }
}

bool
saveStudyCsv(const StudyResult &study, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    saveStudyCsv(study, out);
    return static_cast<bool>(out);
}

void
saveStudyProfileCsv(const StudyResult &study, std::ostream &out)
{
    out << profileCsvHeader << "\n";
    out.precision(6);
    for (const auto &series : study.series) {
        for (const auto &r : series.points) {
            out << r.processors << ',' << r.warehouses << ','
                << r.wallSeconds << ',' << r.eventsFired << ','
                << r.eventsPerSec() << "\n";
        }
    }
}

bool
saveStudyProfileCsv(const StudyResult &study, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    saveStudyProfileCsv(study, out);
    return static_cast<bool>(out);
}

bool
loadStudyProfileCsv(std::istream &in, std::vector<PointProfile> &out)
{
    out.clear();
    std::string line;
    if (!std::getline(in, line) || line != profileCsvHeader)
        return false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream ss(line);
        PointProfile p;
        char c;
        double events, events_per_sec;
        ss >> p.processors >> c >> p.warehouses >> c >> p.wallSeconds >>
            c >> events >> c >> events_per_sec;
        if (ss.fail()) {
            out.clear();
            return false;
        }
        p.eventsFired = static_cast<std::uint64_t>(events);
        out.push_back(p);
    }
    return !out.empty();
}

bool
loadStudyProfileCsv(const std::string &path,
                    std::vector<PointProfile> &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    return loadStudyProfileCsv(in, out);
}

bool
loadStudyCsv(std::istream &in, StudyResult &out)
{
    std::string line;
    if (!std::getline(in, line) || line != csvHeader)
        return false;

    out.series.clear();
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream ss(line);
        RunResult r;
        char c;
        double txns;
        ss >> r.processors >> c >> r.warehouses >> c >> r.clients >>
            c >> r.measureSeconds >> c >> txns >> c >> r.tps >> c >>
            r.ironLawTps >> c >> r.cpuUtil >> c >> r.osCycleShare >>
            c >> r.osInstrShare >> c >> r.ipx >> c >> r.ipxUser >> c >>
            r.ipxOs >> c >> r.cpi >> c >> r.cpiUser >> c >> r.cpiOs >>
            c >> r.mpi >> c >> r.mpiUser >> c >> r.mpiOs >> c >>
            r.diskReadKbPerTxn >> c >> r.diskWriteKbPerTxn >> c >>
            r.logKbPerTxn >> c >> r.diskReadsPerTxn >> c >>
            r.ctxPerTxn >> c >> r.bufferHitRatio >> c >>
            r.avgDiskUtil >> c >> r.diskReadLatencyMs >> c >>
            r.busUtil >> c >> r.ioqCycles >> c >>
            r.coherenceShareOfL3 >> c >> r.breakdown.inst >> c >>
            r.breakdown.branch >> c >> r.breakdown.tlb >> c >>
            r.breakdown.tc >> c >> r.breakdown.l2 >> c >>
            r.breakdown.l3 >> c >> r.breakdown.other;
        if (ss.fail())
            return false;
        r.txnsCommitted = static_cast<std::uint64_t>(txns);
        if (out.series.empty() ||
            out.series.back().processors != r.processors) {
            StudySeries s;
            s.processors = r.processors;
            out.series.push_back(std::move(s));
        }
        out.series.back().points.push_back(std::move(r));
    }
    return !out.series.empty();
}

bool
loadStudyCsv(const std::string &path, StudyResult &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    return loadStudyCsv(in, out);
}

} // namespace odbsim::core
