#include "core/repeat.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/thread_pool.hh"

namespace odbsim::core
{

MetricStats
RepeatedResult::stats(
    const std::function<double(const RunResult &)> &get) const
{
    RunningStat acc;
    for (const auto &r : runs)
        acc.add(get(r));
    MetricStats out;
    out.mean = acc.mean();
    out.stddev = acc.stddev();
    out.min = acc.min();
    out.max = acc.max();
    out.n = acc.count();
    return out;
}

MetricStats
RepeatedResult::tps() const
{
    return stats([](const RunResult &r) { return r.tps; });
}

MetricStats
RepeatedResult::cpi() const
{
    return stats([](const RunResult &r) { return r.cpi; });
}

MetricStats
RepeatedResult::mpi() const
{
    return stats([](const RunResult &r) { return r.mpi; });
}

MetricStats
RepeatedResult::ipx() const
{
    return stats([](const RunResult &r) { return r.ipx; });
}

MetricStats
RepeatedResult::cpuUtil() const
{
    return stats([](const RunResult &r) { return r.cpuUtil; });
}

RepeatedResult
repeatRun(const OltpConfiguration &cfg, const RunKnobs &base_knobs,
          unsigned repeats, unsigned jobs)
{
    odbsim_assert(repeats >= 1, "need at least one repeat");
    RepeatedResult out;
    out.runs.resize(repeats);
    // Replica i's identity is its index: the seed derivation below is
    // the only coupling between replicas, so any host-side schedule
    // fills the same slots with the same bits.
    hostParallelFor(jobs, repeats, [&](std::size_t i) {
        RunKnobs knobs = base_knobs;
        knobs.seed = base_knobs.seed + 0x9e3779b9ULL * (i + 1);
        out.runs[i] = ExperimentRunner::run(cfg, knobs);
    });
    return out;
}

RunResult
aggregateRuns(const std::vector<RunResult> &runs)
{
    odbsim_assert(!runs.empty(), "aggregateRuns needs at least one run");
    const double n = static_cast<double>(runs.size());
    auto meanOf = [&](auto get) {
        double sum = 0.0;
        for (const auto &r : runs)
            sum += get(r);
        return sum / n;
    };
    auto meanCount = [&](auto get) {
        double sum = 0.0;
        for (const auto &r : runs)
            sum += static_cast<double>(get(r));
        return static_cast<std::uint64_t>(sum / n + 0.5);
    };

    RunResult out = runs.front(); // config, counters, defaults
    out.measureSeconds = meanOf([](const RunResult &r) {
        return r.measureSeconds; });
    out.txnsCommitted = meanCount([](const RunResult &r) {
        return r.txnsCommitted; });
    out.tps = meanOf([](const RunResult &r) { return r.tps; });
    out.ironLawTps = meanOf([](const RunResult &r) { return r.ironLawTps; });
    out.cpuUtil = meanOf([](const RunResult &r) { return r.cpuUtil; });
    out.osCycleShare = meanOf([](const RunResult &r) {
        return r.osCycleShare; });
    out.osInstrShare = meanOf([](const RunResult &r) {
        return r.osInstrShare; });
    out.ipx = meanOf([](const RunResult &r) { return r.ipx; });
    out.ipxUser = meanOf([](const RunResult &r) { return r.ipxUser; });
    out.ipxOs = meanOf([](const RunResult &r) { return r.ipxOs; });
    out.cpi = meanOf([](const RunResult &r) { return r.cpi; });
    out.cpiUser = meanOf([](const RunResult &r) { return r.cpiUser; });
    out.cpiOs = meanOf([](const RunResult &r) { return r.cpiOs; });
    out.mpi = meanOf([](const RunResult &r) { return r.mpi; });
    out.mpiUser = meanOf([](const RunResult &r) { return r.mpiUser; });
    out.mpiOs = meanOf([](const RunResult &r) { return r.mpiOs; });
    out.diskReadKbPerTxn = meanOf([](const RunResult &r) {
        return r.diskReadKbPerTxn; });
    out.diskWriteKbPerTxn = meanOf([](const RunResult &r) {
        return r.diskWriteKbPerTxn; });
    out.logKbPerTxn = meanOf([](const RunResult &r) {
        return r.logKbPerTxn; });
    out.diskReadsPerTxn = meanOf([](const RunResult &r) {
        return r.diskReadsPerTxn; });
    out.ctxPerTxn = meanOf([](const RunResult &r) { return r.ctxPerTxn; });
    out.avgLatencyMs = meanOf([](const RunResult &r) {
        return r.avgLatencyMs; });
    out.p95LatencyMs = meanOf([](const RunResult &r) {
        return r.p95LatencyMs; });
    out.bufferHitRatio = meanOf([](const RunResult &r) {
        return r.bufferHitRatio; });
    out.avgDiskUtil = meanOf([](const RunResult &r) {
        return r.avgDiskUtil; });
    out.diskReadLatencyMs = meanOf([](const RunResult &r) {
        return r.diskReadLatencyMs; });
    out.busUtil = meanOf([](const RunResult &r) { return r.busUtil; });
    out.ioqCycles = meanOf([](const RunResult &r) { return r.ioqCycles; });
    out.coherenceShareOfL3 = meanOf([](const RunResult &r) {
        return r.coherenceShareOfL3; });
    out.remoteMissShare = meanOf([](const RunResult &r) {
        return r.remoteMissShare; });
    out.linkUtil = meanOf([](const RunResult &r) { return r.linkUtil; });
    out.txnAborts = meanCount([](const RunResult &r) {
        return r.txnAborts; });
    out.txnRetries = meanCount([](const RunResult &r) {
        return r.txnRetries; });
    out.lockTimeouts = meanCount([](const RunResult &r) {
        return r.lockTimeouts; });
    out.diskTransientErrors = meanCount([](const RunResult &r) {
        return r.diskTransientErrors; });
    out.driveFailures = meanCount([](const RunResult &r) {
        return r.driveFailures; });
    out.redoReplayedBytes = meanCount([](const RunResult &r) {
        return r.redoReplayedBytes; });
    out.mttrMs = meanOf([](const RunResult &r) { return r.mttrMs; });
    out.tpsPreCrash = meanOf([](const RunResult &r) {
        return r.tpsPreCrash; });
    out.tpsPostRecovery = meanOf([](const RunResult &r) {
        return r.tpsPostRecovery; });
    out.breakdown.inst = meanOf([](const RunResult &r) {
        return r.breakdown.inst; });
    out.breakdown.branch = meanOf([](const RunResult &r) {
        return r.breakdown.branch; });
    out.breakdown.tlb = meanOf([](const RunResult &r) {
        return r.breakdown.tlb; });
    out.breakdown.tc = meanOf([](const RunResult &r) {
        return r.breakdown.tc; });
    out.breakdown.l2 = meanOf([](const RunResult &r) {
        return r.breakdown.l2; });
    out.breakdown.l3 = meanOf([](const RunResult &r) {
        return r.breakdown.l3; });
    out.breakdown.other = meanOf([](const RunResult &r) {
        return r.breakdown.other; });

    double wall = 0.0;
    std::uint64_t events = 0;
    for (const auto &r : runs) {
        wall += r.wallSeconds;
        events += r.eventsFired;
    }
    out.wallSeconds = wall;
    out.eventsFired = events;
    return out;
}

} // namespace odbsim::core
