#include "core/repeat.hh"

#include <cmath>

#include "sim/logging.hh"

namespace odbsim::core
{

MetricStats
RepeatedResult::stats(
    const std::function<double(const RunResult &)> &get) const
{
    RunningStat acc;
    for (const auto &r : runs)
        acc.add(get(r));
    MetricStats out;
    out.mean = acc.mean();
    out.stddev = acc.stddev();
    out.min = acc.min();
    out.max = acc.max();
    out.n = acc.count();
    return out;
}

MetricStats
RepeatedResult::tps() const
{
    return stats([](const RunResult &r) { return r.tps; });
}

MetricStats
RepeatedResult::cpi() const
{
    return stats([](const RunResult &r) { return r.cpi; });
}

MetricStats
RepeatedResult::mpi() const
{
    return stats([](const RunResult &r) { return r.mpi; });
}

MetricStats
RepeatedResult::ipx() const
{
    return stats([](const RunResult &r) { return r.ipx; });
}

MetricStats
RepeatedResult::cpuUtil() const
{
    return stats([](const RunResult &r) { return r.cpuUtil; });
}

RepeatedResult
repeatRun(const OltpConfiguration &cfg, const RunKnobs &base_knobs,
          unsigned repeats)
{
    odbsim_assert(repeats >= 1, "need at least one repeat");
    RepeatedResult out;
    out.runs.reserve(repeats);
    for (unsigned i = 0; i < repeats; ++i) {
        RunKnobs knobs = base_knobs;
        knobs.seed = base_knobs.seed + 0x9e3779b9ULL * (i + 1);
        out.runs.push_back(ExperimentRunner::run(cfg, knobs));
    }
    return out;
}

} // namespace odbsim::core
