#include "core/experiment.hh"

#include <chrono>

#include "analysis/iron_law.hh"
#include "core/client_table.hh"
#include "db/database.hh"
#include "odb/workload.hh"
#include "os/system.hh"
#include "sim/logging.hh"

namespace odbsim::core
{

RunResult
ExperimentRunner::run(const OltpConfiguration &cfg, const RunKnobs &knobs)
{
    MachinePreset preset = makeMachine(
        cfg.machine, cfg.processors, knobs.samplePeriod, knobs.seed);
    preset.sys.topology = cfg.topology;
    return runWithPreset(preset, cfg.warehouses, cfg.clients, knobs,
                         cfg.placement);
}

RunResult
ExperimentRunner::runWithPreset(const MachinePreset &preset,
                                unsigned warehouses, unsigned cfg_clients,
                                const RunKnobs &knobs,
                                const os::PlacementConfig &placement)
{
    const auto wall_start = std::chrono::steady_clock::now();

    // Knob-level fault plan: copied into the machine description so
    // the System constructs its FaultPlan from it. An empty default
    // leaves the run bit-identical (inertness contract).
    os::SystemConfig syscfg = preset.sys;
    syscfg.faults = knobs.faults;
    syscfg.eventQueue = knobs.eventQueue;
    syscfg.desThreads = knobs.desThreads;
    os::System sys(syscfg);

    db::DatabaseConfig dbcfg;
    dbcfg.schema.warehouses = warehouses;
    dbcfg.schema.seed = knobs.seed;
    dbcfg.cacheWarehouseEquivalents = preset.cacheWarehouseEquivalents;
    dbcfg.shards = knobs.dbShards;
    db::Database database(sys, dbcfg);
    database.start();

    const unsigned clients =
        cfg_clients ? cfg_clients
                    : paperClients(warehouses, preset.sys.numCpus);
    odb::WorkloadConfig wcfg;
    wcfg.clients = clients;
    wcfg.seed = knobs.seed * 7919 + warehouses;
    wcfg.placement = placement;
    odb::OdbWorkload workload(database, wcfg);
    workload.start();

    if (knobs.instantWarm)
        database.instantWarm({}, knobs.replayThreads);
    // Dynamic warm-up: larger databases need more transactions to
    // reach steady-state residency of the skew-hot rows.
    const Tick extra_warm = ticksFromMs(
        static_cast<double>(warehouses) * knobs.warmupPerWarehouseMs);
    sys.runFor(knobs.warmup + extra_warm);

    sys.beginMeasurement();
    workload.resetStats();
    database.resetStats();
    sys.runFor(knobs.measure);

    RunResult r;
    r.warehouses = warehouses;
    r.processors = preset.sys.numCpus;
    r.clients = clients;

    const Tick window = sys.measurementWindow();
    r.measureSeconds = secondsFromTicks(window);
    r.txnsCommitted = workload.committed();
    r.tps = workload.tps(window);

    r.counters = perfmon::SystemCounters::read(sys);
    r.counters.busUtilization =
        sys.memsys().bus().utilizationStat().mean();
    r.counters.ioqCycles = sys.memsys().bus().ioqStat().mean();

    r.cpuUtil = sys.avgCpuUtilization();
    const auto &c = r.counters;
    r.osCycleShare = c.cycles.total() > 0.0
                         ? c.cycles.os / c.cycles.total()
                         : 0.0;
    r.osInstrShare = c.instructions.total() > 0.0
                         ? c.instructions.os / c.instructions.total()
                         : 0.0;

    const double txns = static_cast<double>(r.txnsCommitted);
    if (txns > 0.0) {
        r.ipx = c.instructions.total() / txns;
        r.ipxUser = c.instructions.user / txns;
        r.ipxOs = c.instructions.os / txns;
    }
    r.cpi = c.cpi();
    r.cpiUser = c.cpiUser();
    r.cpiOs = c.cpiOs();
    r.mpi = c.mpi();
    r.mpiUser = c.mpiUser();
    r.mpiOs = c.mpiOs();

    r.ironLawTps = analysis::ironLawTpsAtUtilization(
        preset.sys.numCpus, preset.sys.core.freqHz, r.ipx, r.cpi,
        r.cpuUtil);

    const auto &disks = sys.disks();
    if (txns > 0.0) {
        r.diskReadKbPerTxn =
            static_cast<double>(disks.dataBytesRead()) / 1024.0 / txns;
        r.diskWriteKbPerTxn =
            static_cast<double>(disks.dataBytesWritten()) / 1024.0 / txns;
        r.logKbPerTxn =
            static_cast<double>(disks.logBytesWritten()) / 1024.0 / txns;
        r.diskReadsPerTxn =
            static_cast<double>(disks.dataReads()) / txns;
        r.ctxPerTxn =
            static_cast<double>(sys.sched().contextSwitches()) / txns;
    }
    {
        // Mix-wide response time (weighted by per-type counts).
        double sum = 0.0;
        for (unsigned i = 0; i < db::numTxnTypes; ++i) {
            const auto &lat =
                workload.latencyMs(static_cast<db::TxnType>(i));
            sum += lat.mean() * static_cast<double>(lat.count());
        }
        if (txns > 0.0)
            r.avgLatencyMs = sum / txns;
        r.p95LatencyMs = workload.latencyHistogramMs().quantile(0.95);
    }
    r.bufferHitRatio = database.bufferCache().hitRatio();
    r.avgDiskUtil = disks.avgDataUtilization(window);
    r.diskReadLatencyMs = disks.avgReadLatencyMs();

    r.busUtil = r.counters.busUtilization;
    r.ioqCycles = r.counters.ioqCycles;
    r.remoteMissShare = sys.memsys().remoteMissShare();
    r.linkUtil = sys.memsys().linkUtilizationMean();
    r.coherenceShareOfL3 =
        c.l3Misses.total() > 0.0
            ? c.coherenceMisses.total() / c.l3Misses.total()
            : 0.0;

    r.breakdown =
        analysis::computeCpiBreakdown(r.counters, knobs.ioq1pCycles);

    // Fault-injection outcomes: all zero on the default plan (and
    // kept out of the golden CSVs either way).
    {
        const sim::FaultStats &fs = sys.faults().stats();
        r.txnAborts = fs.txnAborts;
        r.txnRetries = fs.txnRetries;
        r.lockTimeouts = fs.lockTimeouts;
        r.diskTransientErrors = fs.diskTransientErrors;
        r.driveFailures = fs.driveFailures;
        r.redoReplayedBytes = fs.redoReplayedBytes;
        if (fs.crashes > 0 && fs.recoveryEndTick > fs.crashTick) {
            r.mttrMs = secondsFromTicks(fs.recoveryEndTick -
                                        fs.crashTick) * 1e3;
            const Tick span = ticksFromMs(500.0);
            const Tick pre_lo = fs.crashTick > span
                                    ? fs.crashTick - span
                                    : 0;
            r.tpsPreCrash =
                static_cast<double>(workload.commitsBetween(
                    pre_lo, fs.crashTick)) /
                secondsFromTicks(fs.crashTick - pre_lo);
            // Settled post-recovery rate: the first 150 ms after
            // instance-up are the revival burst and client ramp, not
            // steady state.
            const Tick post_lo =
                fs.recoveryEndTick + ticksFromMs(150.0);
            r.tpsPostRecovery =
                static_cast<double>(workload.commitsBetween(
                    post_lo, post_lo + span)) /
                secondsFromTicks(span);
        }
    }

    // Host-side profiling: what this point cost to produce. Filled
    // last so the wall time covers construction, warm-up, measurement
    // and metric extraction alike.
    r.eventsFired = sys.eq().eventsFired();
    r.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    return r;
}

} // namespace odbsim::core
