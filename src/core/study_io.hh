/**
 * @file
 * CSV persistence for study results, so expensive characterization
 * sweeps can be archived, diffed and shared between tools.
 */

#ifndef ODBSIM_CORE_STUDY_IO_HH
#define ODBSIM_CORE_STUDY_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/scaling_study.hh"

namespace odbsim::core
{

/** Serialize a study as CSV (one row per measured configuration). */
void saveStudyCsv(const StudyResult &study, std::ostream &out);
bool saveStudyCsv(const StudyResult &study, const std::string &path);

/**
 * Serialize the host-side profile of a study (per-point wall time,
 * events fired, events/sec) as CSV.
 *
 * Deliberately a separate sidecar, never part of saveStudyCsv: wall
 * time is nondeterministic, and the golden study CSVs must regenerate
 * bit-identically across hosts and runs.
 */
void saveStudyProfileCsv(const StudyResult &study, std::ostream &out);
bool saveStudyProfileCsv(const StudyResult &study,
                         const std::string &path);

/** One row of a profile sidecar: host-side cost of one grid point. */
struct PointProfile
{
    unsigned processors = 0;
    unsigned warehouses = 0;
    double wallSeconds = 0.0;
    std::uint64_t eventsFired = 0;
};

/**
 * Parse a profile sidecar written by saveStudyProfileCsv — the
 * measured per-point costs feed StudyConfig::costHint so a re-run
 * dispatches grid points longest-first.
 * @return false on missing file or malformed content (out is left
 *         empty); callers should fall back to the W×P estimate.
 */
bool loadStudyProfileCsv(std::istream &in,
                         std::vector<PointProfile> &out);
bool loadStudyProfileCsv(const std::string &path,
                         std::vector<PointProfile> &out);

/**
 * Parse a study from CSV written by saveStudyCsv.
 * @return false on missing file or malformed content.
 */
bool loadStudyCsv(std::istream &in, StudyResult &out);
bool loadStudyCsv(const std::string &path, StudyResult &out);

} // namespace odbsim::core

#endif // ODBSIM_CORE_STUDY_IO_HH
