/**
 * @file
 * CSV persistence for study results, so expensive characterization
 * sweeps can be archived, diffed and shared between tools.
 */

#ifndef ODBSIM_CORE_STUDY_IO_HH
#define ODBSIM_CORE_STUDY_IO_HH

#include <iosfwd>
#include <string>

#include "core/scaling_study.hh"

namespace odbsim::core
{

/** Serialize a study as CSV (one row per measured configuration). */
void saveStudyCsv(const StudyResult &study, std::ostream &out);
bool saveStudyCsv(const StudyResult &study, const std::string &path);

/**
 * Parse a study from CSV written by saveStudyCsv.
 * @return false on missing file or malformed content.
 */
bool loadStudyCsv(std::istream &in, StudyResult &out);
bool loadStudyCsv(const std::string &path, StudyResult &out);

} // namespace odbsim::core

#endif // ODBSIM_CORE_STUDY_IO_HH
