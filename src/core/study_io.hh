/**
 * @file
 * CSV persistence for study results, so expensive characterization
 * sweeps can be archived, diffed and shared between tools.
 */

#ifndef ODBSIM_CORE_STUDY_IO_HH
#define ODBSIM_CORE_STUDY_IO_HH

#include <iosfwd>
#include <string>

#include "core/scaling_study.hh"

namespace odbsim::core
{

/** Serialize a study as CSV (one row per measured configuration). */
void saveStudyCsv(const StudyResult &study, std::ostream &out);
bool saveStudyCsv(const StudyResult &study, const std::string &path);

/**
 * Serialize the host-side profile of a study (per-point wall time,
 * events fired, events/sec) as CSV.
 *
 * Deliberately a separate sidecar, never part of saveStudyCsv: wall
 * time is nondeterministic, and the golden study CSVs must regenerate
 * bit-identically across hosts and runs.
 */
void saveStudyProfileCsv(const StudyResult &study, std::ostream &out);
bool saveStudyProfileCsv(const StudyResult &study,
                         const std::string &path);

/**
 * Parse a study from CSV written by saveStudyCsv.
 * @return false on missing file or malformed content.
 */
bool loadStudyCsv(std::istream &in, StudyResult &out);
bool loadStudyCsv(const std::string &path, StudyResult &out);

} // namespace odbsim::core

#endif // ODBSIM_CORE_STUDY_IO_HH
