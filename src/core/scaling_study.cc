#include "core/scaling_study.hh"

#include "sim/logging.hh"

namespace odbsim::core
{

std::vector<double>
StudySeries::warehouseAxis() const
{
    std::vector<double> xs;
    xs.reserve(points.size());
    for (const auto &p : points)
        xs.push_back(static_cast<double>(p.warehouses));
    return xs;
}

analysis::PiecewiseFit
StudySeries::cpiFit() const
{
    const auto xs = warehouseAxis();
    const auto ys = metric([](const RunResult &r) { return r.cpi; });
    return analysis::fitTwoSegment(xs, ys);
}

analysis::PiecewiseFit
StudySeries::mpiFit() const
{
    const auto xs = warehouseAxis();
    const auto ys = metric([](const RunResult &r) { return r.mpi; });
    return analysis::fitTwoSegment(xs, ys);
}

const StudySeries &
StudyResult::forProcessors(unsigned p) const
{
    for (const auto &s : series) {
        if (s.processors == p)
            return s;
    }
    odbsim_fatal("no series for ", p, " processors in study result");
}

StudyResult
ScalingStudy::run(const StudyConfig &cfg)
{
    odbsim_assert(!cfg.warehouses.empty() && !cfg.processors.empty(),
                  "empty study grid");
    StudyResult out;
    for (const unsigned p : cfg.processors) {
        StudySeries series;
        series.processors = p;
        for (const unsigned w : cfg.warehouses) {
            OltpConfiguration point;
            point.warehouses = w;
            point.processors = p;
            point.machine = cfg.machine;
            RunResult r = ExperimentRunner::run(point, cfg.knobs);
            if (cfg.onPoint)
                cfg.onPoint(r);
            series.points.push_back(std::move(r));
        }
        out.series.push_back(std::move(series));
    }
    return out;
}

} // namespace odbsim::core
