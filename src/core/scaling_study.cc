#include "core/scaling_study.hh"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "core/repeat.hh"
#include "sim/logging.hh"
#include "sim/thread_pool.hh"

namespace odbsim::core
{

std::vector<double>
StudySeries::warehouseAxis() const
{
    std::vector<double> xs;
    xs.reserve(points.size());
    for (const auto &p : points)
        xs.push_back(static_cast<double>(p.warehouses));
    return xs;
}

analysis::PiecewiseFit
StudySeries::cpiFit() const
{
    const auto xs = warehouseAxis();
    const auto ys = metric([](const RunResult &r) { return r.cpi; });
    return analysis::fitTwoSegment(xs, ys);
}

analysis::PiecewiseFit
StudySeries::mpiFit() const
{
    const auto xs = warehouseAxis();
    const auto ys = metric([](const RunResult &r) { return r.mpi; });
    return analysis::fitTwoSegment(xs, ys);
}

const StudySeries &
StudyResult::forProcessors(unsigned p) const
{
    for (const auto &s : series) {
        if (s.processors == p)
            return s;
    }
    odbsim_fatal("no series for ", p, " processors in study result");
}

namespace
{

/** Map the jobs knob to a worker count for a grid of @p points. */
unsigned
resolveJobs(unsigned jobs, std::size_t points)
{
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    if (points < static_cast<std::size_t>(jobs))
        jobs = static_cast<unsigned>(points);
    return jobs;
}

} // namespace

StudyResult
ScalingStudy::run(const StudyConfig &cfg)
{
    odbsim_assert(!cfg.warehouses.empty() && !cfg.processors.empty(),
                  "empty study grid");

    const std::size_t nw = cfg.warehouses.size();
    const std::size_t total = cfg.processors.size() * nw;

    // Pre-size the grid so every point has a fixed slot: results are
    // collected by grid index, never by completion order, which is
    // what keeps the parallel path bit-identical to the serial one.
    StudyResult out;
    out.series.resize(cfg.processors.size());
    for (std::size_t pi = 0; pi < cfg.processors.size(); ++pi) {
        out.series[pi].processors = cfg.processors[pi];
        out.series[pi].points.resize(nw);
    }

    const unsigned jobs = resolveJobs(cfg.jobs, total);

    std::mutex progress_mutex;
    const auto runPoint = [&](std::size_t pi, std::size_t wi) {
        OltpConfiguration point;
        point.warehouses = cfg.warehouses[wi];
        point.processors = cfg.processors[pi];
        point.machine = cfg.machine;
        point.topology = cfg.topology;
        point.placement = cfg.placement;
        RunResult r;
        if (cfg.repeats <= 1) {
            r = ExperimentRunner::run(point, cfg.knobs);
        } else {
            // Hierarchical decomposition: the point fans its seed
            // replicas out as nested tasks on the worker pool it is
            // already running on (hostParallelFor detects the pool);
            // on the serial path the replicas run serially too.
            const unsigned inner = jobs > 1 ? jobs : 1;
            RepeatedResult rep =
                repeatRun(point, cfg.knobs, cfg.repeats, inner);
            r = aggregateRuns(rep.runs);
        }
        if (cfg.onPoint) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            cfg.onPoint(r);
        }
        out.series[pi].points[wi] = std::move(r);
    };
    if (jobs <= 1) {
        // Legacy serial path: grid order, no worker threads.
        for (std::size_t pi = 0; pi < cfg.processors.size(); ++pi)
            for (std::size_t wi = 0; wi < nw; ++wi)
                runPoint(pi, wi);
    } else {
        // Dispatch the independent points longest-first (LPT): the
        // most expensive simulations start earliest so no worker is
        // left finishing a huge point alone at the end. Cost is the
        // caller's hint when given (e.g. a previous run's profile
        // sidecar), else the warehouses × processors proxy. Pure
        // makespan optimization — results land in their grid slot, so
        // the StudyResult is bit-identical to any other order.
        std::vector<double> cost(total);
        for (std::size_t k = 0; k < total; ++k) {
            const unsigned w = cfg.warehouses[k % nw];
            const unsigned p = cfg.processors[k / nw];
            cost[k] = cfg.costHint
                          ? cfg.costHint(w, p)
                          : static_cast<double>(w) * p;
        }
        std::vector<std::size_t> order(total);
        std::iota(order.begin(), order.end(), std::size_t{0});
        // Stable: equal-cost points keep grid order, so the dispatch
        // sequence is deterministic for a given config.
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return cost[a] > cost[b];
                         });
        ThreadPool pool(jobs);
        pool.parallelFor(total, [&](std::size_t k) {
            const std::size_t g = order[k];
            runPoint(g / nw, g % nw);
        });
    }
    return out;
}

} // namespace odbsim::core
