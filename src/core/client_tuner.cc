#include "core/client_tuner.hh"

#include <algorithm>
#include <cmath>

namespace odbsim::core
{

TunedClients
ClientTuner::tune(OltpConfiguration cfg, double target_util,
                  unsigned max_clients, RunKnobs knobs)
{
    TunedClients out;
    // Start from one runnable process per CPU; grow until the target
    // utilization is met or adding clients stops helping (I/O bound).
    unsigned c =
        std::min(max_clients, std::max(2u, 2 * cfg.processors));
    double prev_util = 0.0;

    while (true) {
        cfg.clients = c;
        const RunResult r = ExperimentRunner::run(cfg, knobs);
        ++out.trials;
        out.clients = c;
        out.achievedUtil = r.cpuUtil;

        if (r.cpuUtil >= target_util)
            return out;
        if (c >= max_clients) {
            out.ioBound = true;
            return out;
        }
        if (out.trials > 2 && r.cpuUtil < prev_util + 0.005) {
            // More clients no longer raise utilization: the storage
            // subsystem is the bottleneck.
            out.ioBound = true;
            return out;
        }
        prev_util = r.cpuUtil;

        // Grow proportionally to the utilization shortfall, at least
        // by 2 clients.
        const double factor =
            std::min(2.0, std::max(1.15, target_util / r.cpuUtil));
        const unsigned next = static_cast<unsigned>(
            std::ceil(static_cast<double>(c) * factor));
        c = std::min(max_clients, std::max(next, c + 2));
    }
}

} // namespace odbsim::core
