/**
 * @file
 * The paper's Table 1: the number of concurrent clients needed to keep
 * CPU utilization above 90% at each (warehouses, processors)
 * configuration, with interpolation for intermediate warehouse counts.
 *
 * |            |        Clients       |
 * | Warehouses |   1P  |   2P  |  4P  |
 * |        10  |    8  |   10  |  10  |
 * |        50  |    8  |   16  |  32  |
 * |       100  |    6  |   16  |  48  |
 * |       500  |   12  |   25  |  56  |
 * |       800  |   13  |   36  |  64  |
 */

#ifndef ODBSIM_CORE_CLIENT_TABLE_HH
#define ODBSIM_CORE_CLIENT_TABLE_HH

namespace odbsim::core
{

/**
 * Clients from the paper's Table 1, linearly interpolated in W (and
 * extrapolated beyond 800 W along the last segment). P snaps to the
 * nearest of {1, 2, 4}.
 */
unsigned paperClients(unsigned warehouses, unsigned processors);

} // namespace odbsim::core

#endif // ODBSIM_CORE_CLIENT_TABLE_HH
