#include "core/client_table.hh"

#include <algorithm>
#include <cmath>

namespace odbsim::core
{

namespace
{

constexpr unsigned tableW[] = {10, 50, 100, 500, 800};
constexpr unsigned tableC[][3] = {
    // 1P, 2P, 4P
    {8, 10, 10},   // 10 W
    {8, 16, 32},   // 50 W
    {6, 16, 48},   // 100 W
    {12, 25, 56},  // 500 W
    {13, 36, 64},  // 800 W
};
constexpr unsigned tableRows = 5;

unsigned
columnFor(unsigned processors)
{
    if (processors <= 1)
        return 0;
    if (processors <= 2)
        return 1;
    return 2;
}

} // namespace

unsigned
paperClients(unsigned warehouses, unsigned processors)
{
    const unsigned col = columnFor(processors);
    if (warehouses <= tableW[0])
        return tableC[0][col];

    // Find the surrounding rows (extrapolate along the last segment
    // beyond 800 W).
    unsigned hi = tableRows - 1;
    for (unsigned r = 1; r < tableRows; ++r) {
        if (warehouses <= tableW[r]) {
            hi = r;
            break;
        }
    }
    const unsigned lo = hi - 1;
    const double frac =
        (static_cast<double>(warehouses) - tableW[lo]) /
        (static_cast<double>(tableW[hi]) - tableW[lo]);
    const double c = tableC[lo][col] +
                     frac * (static_cast<double>(tableC[hi][col]) -
                             tableC[lo][col]);
    const double clamped = std::clamp(c, 1.0, 128.0);
    return static_cast<unsigned>(std::lround(clamped));
}

} // namespace odbsim::core
