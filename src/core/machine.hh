/**
 * @file
 * Machine presets: the Quad Xeon MP server of the main study and the
 * Quad Itanium2 server of Section 6.3's validation experiment.
 */

#ifndef ODBSIM_CORE_MACHINE_HH
#define ODBSIM_CORE_MACHINE_HH

#include <cstdint>
#include <string>

#include "os/system.hh"

namespace odbsim::core
{

/** Which physical machine to model. */
enum class MachineKind
{
    /** 4-way Intel Xeon MP, 1.6 GHz, 1 MB L3, 26 disks (Section 3.3). */
    XeonQuadMp,
    /** 4-way Itanium2, 1.5 GHz, 3 MB L3, +50% bus BW, 34 disks
     *  (Section 6.3). */
    Itanium2Quad,
    /**
     * A hypothetical 4-core chip multiprocessor with a 2 MB shared
     * on-die L3 — the design direction the paper's introduction and
     * conclusions motivate (Piranha/Power4-style). Not a measured
     * machine; used for the CMP exploration benches.
     */
    CmpQuad,
    /**
     * The study's Xeon MP with Hyper-Threading *enabled* (the paper
     * ran with it disabled, Section 3.3): two hardware threads per
     * core sharing the cache hierarchy and issue bandwidth.
     */
    XeonQuadMpHt,
};

constexpr const char *
toString(MachineKind k)
{
    switch (k) {
      case MachineKind::XeonQuadMp: return "xeon-quad-mp";
      case MachineKind::Itanium2Quad: return "itanium2-quad";
      case MachineKind::CmpQuad: return "cmp-quad";
      case MachineKind::XeonQuadMpHt: return "xeon-quad-mp-ht";
    }
    return "?";
}

/** A fully-resolved machine description. */
struct MachinePreset
{
    std::string name;
    os::SystemConfig sys;
    /**
     * Buffer-cache size expressed in warehouse-equivalents of
     * read-hot blocks (passed to DatabaseConfig); reflects each
     * machine's memory capacity.
     */
    double cacheWarehouseEquivalents = 28.7;
};

/**
 * Build a machine preset.
 *
 * @param kind Which machine.
 * @param processors CPUs enabled (1..4 in the study).
 * @param sample_period CPU-model trace sampling period.
 * @param seed Run seed.
 */
MachinePreset makeMachine(MachineKind kind, unsigned processors,
                          std::uint32_t sample_period = 16,
                          std::uint64_t seed = 0x0dbULL);

} // namespace odbsim::core

#endif // ODBSIM_CORE_MACHINE_HH
