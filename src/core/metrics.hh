/**
 * @file
 * RunResult: everything one measured configuration yields — the iron
 * law inputs (TPS, IPX, CPI), the memory-system metrics (MPI, bus),
 * the system events (disk I/O, context switches), and the CPI
 * breakdown of Figure 12.
 */

#ifndef ODBSIM_CORE_METRICS_HH
#define ODBSIM_CORE_METRICS_HH

#include <cstdint>

#include "analysis/cpi_breakdown.hh"
#include "perfmon/events.hh"

namespace odbsim::core
{

/** All measurements from one configuration run. */
struct RunResult
{
    /** @name Configuration @{ */
    unsigned warehouses = 0;
    unsigned processors = 0;
    unsigned clients = 0;
    /** @} */

    /** @name Throughput @{ */
    double measureSeconds = 0.0;
    std::uint64_t txnsCommitted = 0;
    double tps = 0.0;
    /** Iron-law prediction from the measured IPX/CPI/utilization. */
    double ironLawTps = 0.0;
    /** @} */

    /** @name CPU accounting @{ */
    double cpuUtil = 0.0;
    /** OS share of busy cycles (paper Figure 3). */
    double osCycleShare = 0.0;
    /** OS share of retired instructions. */
    double osInstrShare = 0.0;
    /** @} */

    /** @name Iron-law terms (Figures 4-6, 9-11, 13-15) @{ */
    double ipx = 0.0, ipxUser = 0.0, ipxOs = 0.0;
    double cpi = 0.0, cpiUser = 0.0, cpiOs = 0.0;
    double mpi = 0.0, mpiUser = 0.0, mpiOs = 0.0;
    /** @} */

    /** @name System events (Figures 7-8) @{ */
    double diskReadKbPerTxn = 0.0;
    double diskWriteKbPerTxn = 0.0;
    double logKbPerTxn = 0.0;
    double diskReadsPerTxn = 0.0;
    double ctxPerTxn = 0.0;
    /** Transaction response times over the window. @{ */
    double avgLatencyMs = 0.0;
    double p95LatencyMs = 0.0;
    /** @} */
    double bufferHitRatio = 0.0;
    double avgDiskUtil = 0.0;
    double diskReadLatencyMs = 0.0;
    /** @} */

    /** @name Bus / coherence (Figure 16, Section 5.2) @{ */
    double busUtil = 0.0;
    double ioqCycles = 0.0;
    double coherenceShareOfL3 = 0.0;
    /** @} */

    /**
     * @name Socket topology (multi-socket runs only; both exactly
     * zero at S=1 and excluded from the golden study CSVs)
     * @{
     */
    /** Share of L3 misses serviced by a remote socket. */
    double remoteMissShare = 0.0;
    /** Mean inter-socket interconnect utilization. */
    double linkUtil = 0.0;
    /** @} */

    /**
     * @name Fault injection (robustness runs only; all exactly zero
     * under the default fault-free plan and excluded from the golden
     * study CSVs, which must stay bit-identical)
     * @{
     */
    std::uint64_t txnAborts = 0;
    std::uint64_t txnRetries = 0;
    std::uint64_t lockTimeouts = 0;
    std::uint64_t diskTransientErrors = 0;
    std::uint64_t driveFailures = 0;
    std::uint64_t redoReplayedBytes = 0;
    /** Mean time to recover: crash tick to instance-up, ms (0 when no
     *  crash was injected). */
    double mttrMs = 0.0;
    /** Committed-txn rate over the 500 ms before the crash. */
    double tpsPreCrash = 0.0;
    /** Committed-txn rate over the 500 ms after recovery completed. */
    double tpsPostRecovery = 0.0;
    /** @} */

    /** CPI decomposition (Figure 12 / Tables 3-4). */
    analysis::CpiComponents breakdown;

    /** Raw counter deltas over the window. */
    perfmon::SystemCounters counters;

    /**
     * @name Host-side profiling (observability only)
     *
     * Wall-clock cost of producing this point. eventsFired is
     * deterministic (a property of the simulation), wallSeconds is
     * not — neither participates in the golden study CSVs, which must
     * regenerate bit-identically; saveStudyProfileCsv writes them to a
     * separate sidecar instead.
     * @{
     */
    /** Host wall-clock seconds consumed by the whole run. */
    double wallSeconds = 0.0;
    /** Simulation-kernel events fired over the whole run. */
    std::uint64_t eventsFired = 0;
    /** Kernel event throughput on the host (0 if not timed). */
    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(eventsFired) / wallSeconds
                   : 0.0;
    }
    /** @} */
};

} // namespace odbsim::core

#endif // ODBSIM_CORE_METRICS_HH
