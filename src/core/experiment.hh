/**
 * @file
 * ExperimentRunner: build a machine + database + workload for one OLTP
 * configuration, warm it up, measure it, and return a RunResult — one
 * data point of the paper's characterization.
 */

#ifndef ODBSIM_CORE_EXPERIMENT_HH
#define ODBSIM_CORE_EXPERIMENT_HH

#include <cstdint>

#include "core/machine.hh"
#include "core/metrics.hh"
#include "sim/types.hh"

namespace odbsim::core
{

/** One point of the OLTP configuration space (Section 3.2). */
struct OltpConfiguration
{
    /** Workload scale (the cached-vs-scaled axis). */
    unsigned warehouses = 10;
    /** Processors enabled. */
    unsigned processors = 4;
    /** Concurrent clients; 0 selects the paper's Table 1 value. */
    unsigned clients = 0;
    MachineKind machine = MachineKind::XeonQuadMp;
};

/** Simulation-control knobs. */
struct RunKnobs
{
    /** Dynamic warm-up after the instant buffer-cache prefill. */
    Tick warmup = ticksFromSeconds(0.4);
    /** Measurement window. */
    Tick measure = ticksFromSeconds(1.5);
    /** CPU-model set-sampling factor. */
    std::uint32_t samplePeriod = 16;
    std::uint64_t seed = 42;
    /** Pre-populate the buffer cache in hotness order (substitute for
     *  the paper's 20-minute warm-up). */
    bool instantWarm = true;
    /** IOQ residency of the 1P baseline for the Table 4 L3 formula. */
    double ioq1pCycles = 102.0;
};

/**
 * Runs one configuration end to end.
 */
class ExperimentRunner
{
  public:
    /** Measure @p cfg and return its metrics. */
    static RunResult run(const OltpConfiguration &cfg,
                         const RunKnobs &knobs = {});

    /**
     * Measure a configuration on a hand-built machine (ablations:
     * custom cache sizes, disk counts, bus parameters).
     *
     * @param clients 0 selects the paper's Table 1 value.
     */
    static RunResult runWithPreset(const MachinePreset &preset,
                                   unsigned warehouses, unsigned clients,
                                   const RunKnobs &knobs = {});
};

} // namespace odbsim::core

#endif // ODBSIM_CORE_EXPERIMENT_HH
