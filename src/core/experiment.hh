/**
 * @file
 * ExperimentRunner: build a machine + database + workload for one OLTP
 * configuration, warm it up, measure it, and return a RunResult — one
 * data point of the paper's characterization.
 *
 * Unit conventions used throughout the core API:
 *  - durations are simulated Ticks (1 tick = 1 picosecond; see
 *    sim/types.hh helpers ticksFromSeconds()/secondsFromTicks());
 *  - IPX values are instructions per transaction (RunResult reports
 *    them raw; figures display millions);
 *  - MPI values are misses per instruction (figures display
 *    misses per 1000 instructions, i.e. MPI × 1e3);
 *  - CPI values are cycles per instruction, dimensionless.
 */

#ifndef ODBSIM_CORE_EXPERIMENT_HH
#define ODBSIM_CORE_EXPERIMENT_HH

#include <cstdint>

#include "core/machine.hh"
#include "core/metrics.hh"
#include "mem/topology.hh"
#include "os/placement.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/types.hh"

namespace odbsim::core
{

/** @brief One point of the OLTP configuration space (Section 3.2). */
struct OltpConfiguration
{
    /** Workload scale in warehouses (the cached-vs-scaled axis). */
    unsigned warehouses = 10;
    /** Processors enabled on the machine preset. */
    unsigned processors = 4;
    /** Concurrent clients; 0 selects the paper's Table 1 value. */
    unsigned clients = 0;
    /** Machine preset to measure on. */
    MachineKind machine = MachineKind::XeonQuadMp;
    /**
     * Socket topology overriding the preset's (default: one socket,
     * the paper's machines; see docs/TOPOLOGY.md).
     */
    mem::TopologyConfig topology;
    /** Server-process placement on that topology (default: legacy). */
    os::PlacementConfig placement;
};

/**
 * @brief Simulation-control knobs, shared by every run of a study.
 *
 * An entire run is a pure function of (configuration, knobs): every
 * RNG stream is derived from @ref seed plus configuration fields, so
 * two runs with equal inputs are bit-identical — including runs
 * executed concurrently on different host threads.
 */
struct RunKnobs
{
    /** Dynamic warm-up (in Ticks of simulated time) after the instant
     *  buffer-cache prefill; scaled up with warehouses internally. */
    Tick warmup = ticksFromSeconds(0.4);
    /** Measurement window in Ticks of simulated time. */
    Tick measure = ticksFromSeconds(1.5);
    /** CPU-model set-sampling factor: 1 of every N cache sets is
     *  simulated (16 reproduces the paper's error envelope). */
    std::uint32_t samplePeriod = 16;
    /** Master seed; all per-run streams derive from it. */
    std::uint64_t seed = 42;
    /** Pre-populate the buffer cache in hotness order (substitute for
     *  the paper's 20-minute warm-up). */
    bool instantWarm = true;
    /** IOQ residency (bus cycles) of the 1P baseline for the Table 4
     *  L3 stall formula; the paper measured 102. */
    double ioq1pCycles = 102.0;
    /** Fault-injection plan (default: none — structurally inert, the
     *  run is bit-identical to one without the subsystem). */
    sim::FaultConfig faults;
    /** Dynamic warm-up added per warehouse on top of @ref warmup, in
     *  simulated milliseconds: larger databases need more transactions
     *  to reach steady-state residency of the skew-hot rows. The
     *  default reproduces the paper-scale behaviour; 100×-scale grid
     *  points dial it down to keep wall clock bounded. */
    double warmupPerWarehouseMs = 4.0;
    /** Engine shard count for the lock manager and buffer cache
     *  (power of two; 1 = the unsharded paper-scale layout whose
     *  goldens are byte-exact — see docs/SCALE.md). */
    unsigned dbShards = 1;
    /** Event-queue ordering structure (wheel default; the heap kind
     *  is the bit-identical differential/perf oracle). */
    EventQueueKind eventQueue = EventQueueKind::wheel;
    /**
     * Host worker threads for the intra-run replay-side parallel
     * phases (today: the instant-warm buffer-cache prefill, which is
     * partitioned by buffer shard). 1 (default) is the legacy serial
     * path; 0 = one worker per hardware thread. A *host-execution*
     * knob like StudyConfig::jobs, not an engine knob: the simulated
     * machine and every metric are bit-identical at any value, so it
     * does not bypass the study CSV caches (enforced by
     * scripts/bench_smoke.sh's --replay-threads byte-diff).
     */
    unsigned replayThreads = 1;
    /**
     * Host worker threads for the conservative parallel DES engine
     * (sim::ParallelEngine) when the deployment has multiple islands;
     * 1 (default) advances islands serially, 0 = one worker per
     * hardware thread. Every paper grid point is a single coherence
     * domain — one island — where the engine degenerates to the plain
     * serial event queue, so this is a *host-execution* knob like
     * @ref replayThreads: results and the golden study CSVs are
     * bit-identical at any value (enforced by bench_smoke.sh's
     * --des-threads byte-diff and the des_determinism_contract test)
     * and it does not bypass the study CSV caches.
     */
    unsigned desThreads = 1;
};

/**
 * @brief Runs one configuration end to end.
 *
 * Stateless: each call constructs its own System, Database and
 * Workload, so concurrent calls from different threads are safe and
 * independent (this is what the parallel ScalingStudy executor relies
 * on).
 */
class ExperimentRunner
{
  public:
    /**
     * @brief Measure @p cfg and return its metrics.
     * @param cfg   The grid point (warehouses, processors, clients,
     *              machine preset).
     * @param knobs Simulation control (windows in Ticks, seed,
     *              sampling).
     * @return All RunResult metrics over the measurement window.
     */
    static RunResult run(const OltpConfiguration &cfg,
                         const RunKnobs &knobs = {});

    /**
     * @brief Measure a configuration on a hand-built machine
     * (ablations: custom cache sizes, disk counts, bus parameters).
     *
     * @param preset     Machine description (CPUs, caches, disks, bus,
     *                    topology).
     * @param warehouses Workload scale in warehouses.
     * @param clients    Concurrent clients; 0 selects the paper's
     *                   Table 1 value.
     * @param knobs      Simulation control (windows in Ticks, seed,
     *                   sampling).
     * @param placement  Server placement on the preset's topology
     *                   (default: legacy unpinned behaviour).
     * @return All RunResult metrics over the measurement window.
     */
    static RunResult runWithPreset(const MachinePreset &preset,
                                   unsigned warehouses, unsigned clients,
                                   const RunKnobs &knobs = {},
                                   const os::PlacementConfig &placement =
                                       {});
};

} // namespace odbsim::core

#endif // ODBSIM_CORE_EXPERIMENT_HH
