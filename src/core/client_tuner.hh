/**
 * @file
 * ClientTuner: reproduce how the paper's Table 1 was obtained — find
 * the smallest client population that keeps CPU utilization above the
 * target (90%) at a given (W, P), or detect that the configuration is
 * I/O bound and cannot reach it (their 1200 W case, which peaked at
 * 63% on 4P).
 */

#ifndef ODBSIM_CORE_CLIENT_TUNER_HH
#define ODBSIM_CORE_CLIENT_TUNER_HH

#include "core/experiment.hh"

namespace odbsim::core
{

/** Tuning outcome for one configuration. */
struct TunedClients
{
    unsigned clients = 0;
    double achievedUtil = 0.0;
    /** Utilization stopped improving before the target was met. */
    bool ioBound = false;
    unsigned trials = 0;
};

/**
 * Searches the client count for a utilization target.
 */
class ClientTuner
{
  public:
    /**
     * @param cfg Configuration to tune (its clients field is ignored).
     * @param target_util Utilization goal (the paper's 0.90).
     * @param max_clients Search ceiling.
     * @param knobs Per-trial simulation knobs (short runs suffice).
     */
    static TunedClients tune(OltpConfiguration cfg,
                             double target_util = 0.90,
                             unsigned max_clients = 128,
                             RunKnobs knobs = shortKnobs());

    /** Abbreviated knobs for tuning trials. */
    static RunKnobs
    shortKnobs()
    {
        RunKnobs k;
        k.warmup = ticksFromSeconds(0.25);
        k.measure = ticksFromSeconds(0.6);
        return k;
    }
};

} // namespace odbsim::core

#endif // ODBSIM_CORE_CLIENT_TUNER_HH
