/**
 * @file
 * ScalingStudy: the paper's full characterization sweep — measure a
 * grid of (warehouses × processors) configurations and derive the
 * Section 6 piecewise-linear models and pivot points.
 *
 * Grid points are independent simulations (each derives every RNG
 * stream from its own seed), so the sweep can be executed by a worker
 * pool; see StudyConfig::jobs. The StudyResult is bit-identical for
 * any jobs value.
 */

#ifndef ODBSIM_CORE_SCALING_STUDY_HH
#define ODBSIM_CORE_SCALING_STUDY_HH

#include <functional>
#include <vector>

#include "analysis/piecewise.hh"
#include "core/experiment.hh"
#include "core/metrics.hh"

namespace odbsim::core
{

/**
 * @brief Sweep definition: the (warehouses × processors) grid, the
 * machine preset, the per-run simulation knobs, and the host-side
 * execution policy.
 */
struct StudyConfig
{
    /** Warehouse axis (workload scale), ascending. */
    std::vector<unsigned> warehouses = {10,  25,  35,  50,  75,  100,
                                        150, 200, 300, 400, 600, 800};
    /** Processor-count axis; one StudySeries per entry. */
    std::vector<unsigned> processors = {1, 2, 4};
    /** Machine preset every point is measured on. */
    MachineKind machine = MachineKind::XeonQuadMp;
    /** Socket topology applied to every point (default: one socket,
     *  the legacy machine; see docs/TOPOLOGY.md). */
    mem::TopologyConfig topology;
    /** Server placement on that topology (default: legacy). */
    os::PlacementConfig placement;
    /** Simulation-control knobs shared by every point (seed included;
     *  per-point streams are derived from it plus the configuration). */
    RunKnobs knobs;
    /**
     * Host worker threads used to execute grid points concurrently.
     *
     * 0 = one worker per hardware thread (auto); 1 = the legacy serial
     * path; N>1 = a fixed pool of N workers. The StudyResult is
     * bit-identical for every value — points are independent and are
     * collected by grid index, not completion order. Only the
     * invocation order of onPoint changes.
     */
    unsigned jobs = 1;
    /**
     * Per-point seed replicas (the paper's six-repeat methodology),
     * hierarchically decomposed under jobs: each grid point measures
     * @c repeats replicas with derived seeds and stores their
     * aggregateRuns() mean. 1 (default) is the legacy single-run path,
     * byte-for-byte. With jobs > 1 the replicas of a point run as
     * nested tasks on the same worker pool (repeatRun's nested
     * fan-out), so the largest grid point no longer floors the sweep's
     * wall clock; results stay bit-identical at any job count because
     * replicas are collected by replica index before aggregation.
     */
    unsigned repeats = 1;
    /**
     * Optional progress callback (per finished configuration).
     *
     * With jobs != 1 it is invoked from worker threads, serialized by
     * an internal mutex (so plain stdio printing is safe), in
     * completion order rather than grid order.
     */
    std::function<void(const RunResult &)> onPoint;
    /**
     * Optional per-point cost estimate (any monotone unit — seconds,
     * events, …) used to dispatch grid points longest-first on the
     * parallel path, which minimizes makespan when point costs are
     * uneven (classic LPT scheduling). Absent, the estimate defaults
     * to warehouses × processors, which tracks simulated work well.
     *
     * Scheduling only: the StudyResult is bit-identical for any hint
     * (results are collected by grid index). A natural source is a
     * previous run's `*_profile.csv` sidecar via
     * loadStudyProfileCsv() — see bench_common's sharedStudy().
     */
    std::function<double(unsigned warehouses, unsigned processors)>
        costHint;
};

/** @brief All measurements for one processor count. */
struct StudySeries
{
    /** Processor count this series was measured at. */
    unsigned processors = 0;
    std::vector<RunResult> points; ///< Ordered by warehouses.

    /**
     * @brief Extract one metric across the warehouse axis.
     * @param get Projection from a measured point to the metric value.
     * @return One value per point, in warehouse order.
     */
    std::vector<double>
    metric(const std::function<double(const RunResult &)> &get) const
    {
        std::vector<double> out;
        out.reserve(points.size());
        for (const auto &p : points)
            out.push_back(get(p));
        return out;
    }

    /** @brief The warehouse axis as doubles (for the fitters). */
    std::vector<double> warehouseAxis() const;

    /** @brief Two-segment fit of CPI over warehouses (Figure 17). */
    analysis::PiecewiseFit cpiFit() const;

    /** @brief Two-segment fit of L3 MPI over warehouses (Figure 18). */
    analysis::PiecewiseFit mpiFit() const;
};

/** @brief Full study output: one series per processor count. */
struct StudyResult
{
    std::vector<StudySeries> series; ///< One per processor count.

    /**
     * @brief The series measured with @p p processors.
     * Fatal if the study holds no such series.
     */
    const StudySeries &forProcessors(unsigned p) const;
};

/**
 * @brief Runs the sweep described by a StudyConfig.
 */
class ScalingStudy
{
  public:
    /**
     * @brief Measure every (warehouses, processors) grid point.
     *
     * With cfg.jobs != 1 the independent points are dispatched to a
     * ThreadPool, longest-estimated-first (see StudyConfig::costHint);
     * results land in their grid slot regardless of completion order,
     * so the returned StudyResult is bit-identical to the serial path.
     * A failure (fatal/panic) in any point terminates the process
     * exactly as in the serial path.
     */
    static StudyResult run(const StudyConfig &cfg);
};

} // namespace odbsim::core

#endif // ODBSIM_CORE_SCALING_STUDY_HH
