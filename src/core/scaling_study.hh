/**
 * @file
 * ScalingStudy: the paper's full characterization sweep — measure a
 * grid of (warehouses × processors) configurations and derive the
 * Section 6 piecewise-linear models and pivot points.
 */

#ifndef ODBSIM_CORE_SCALING_STUDY_HH
#define ODBSIM_CORE_SCALING_STUDY_HH

#include <functional>
#include <vector>

#include "analysis/piecewise.hh"
#include "core/experiment.hh"
#include "core/metrics.hh"

namespace odbsim::core
{

/** Sweep definition. */
struct StudyConfig
{
    std::vector<unsigned> warehouses = {10,  25,  35,  50,  75,  100,
                                        150, 200, 300, 400, 600, 800};
    std::vector<unsigned> processors = {1, 2, 4};
    MachineKind machine = MachineKind::XeonQuadMp;
    RunKnobs knobs;
    /** Optional progress callback (per finished configuration). */
    std::function<void(const RunResult &)> onPoint;
};

/** All measurements for one processor count. */
struct StudySeries
{
    unsigned processors = 0;
    std::vector<RunResult> points; ///< Ordered by warehouses.

    /** Extract one metric across the warehouse axis. */
    std::vector<double>
    metric(const std::function<double(const RunResult &)> &get) const
    {
        std::vector<double> out;
        out.reserve(points.size());
        for (const auto &p : points)
            out.push_back(get(p));
        return out;
    }

    /** The warehouse axis as doubles. */
    std::vector<double> warehouseAxis() const;

    /** Two-segment fit of CPI over warehouses (Figure 17). */
    analysis::PiecewiseFit cpiFit() const;

    /** Two-segment fit of L3 MPI over warehouses (Figure 18). */
    analysis::PiecewiseFit mpiFit() const;
};

/** Full study output. */
struct StudyResult
{
    std::vector<StudySeries> series; ///< One per processor count.

    const StudySeries &forProcessors(unsigned p) const;
};

/**
 * Runs the sweep.
 */
class ScalingStudy
{
  public:
    static StudyResult run(const StudyConfig &cfg);
};

} // namespace odbsim::core

#endif // ODBSIM_CORE_SCALING_STUDY_HH
