#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>
#include <limits>

#include "sim/logging.hh"

namespace odbsim
{

namespace
{
constexpr Tick maxTick = std::numeric_limits<Tick>::max();
} // namespace

EventQueue::EventQueue(EventQueueKind kind) : kind_(kind)
{
    for (auto &level : bucketHead_)
        level.fill(noSlot);
}

bool
EventHandle::pending() const
{
    return q_ && q_->slotPending(idx_, gen_);
}

void
EventHandle::cancel()
{
    if (q_)
        q_->cancelSlot(idx_, gen_);
}

bool
EventQueue::slotPending(std::uint32_t idx, std::uint32_t gen) const
{
    // A released slot has its generation bumped, so a stale handle
    // (fired event, or a reclaimed cancelled entry) never matches.
    if (idx >= slotCount_)
        return false;
    const Slot &s = slotAt(idx);
    return s.gen == gen && !s.cancelled;
}

void
EventQueue::cancelSlot(std::uint32_t idx, std::uint32_t gen)
{
    if (!slotPending(idx, gen))
        return;
    Slot &s = slotAt(idx);
    --live_;
    if (s.where == Where::bucket) {
        // Wheel buckets are doubly linked, so a cancelled event is
        // unlinked and its slot reclaimed immediately — a bucket never
        // holds dead entries, which is what lets advanceWheelTo() skip
        // passed-over buckets without sweeping them.
        unlinkFromBucket(idx);
        releaseSlot(idx);
        return;
    }
    // Heap entries (heap kind / wheel overflow) and collected due
    // cohorts reclaim lazily: the entry is dropped, and the slot
    // recycled, when it surfaces.
    s.cancelled = true;
}

std::uint32_t
EventQueue::acquireSlot()
{
    if (freeHead_ != noSlot) {
        const std::uint32_t idx = freeHead_;
        freeHead_ = slotAt(idx).next;
        return idx;
    }
    if ((slotCount_ & (chunkSlots - 1)) == 0)
        chunks_.push_back(std::make_unique<Slot[]>(chunkSlots));
    return slotCount_++;
}

void
EventQueue::releaseSlot(std::uint32_t idx)
{
    Slot &s = slotAt(idx);
    s.cb.reset();
    s.cancelled = false;
    s.where = Where::none;
    ++s.gen; // invalidate outstanding handles before reuse
    s.next = freeHead_;
    freeHead_ = idx;
}

EventHandle
EventQueue::scheduleSlot(Tick when)
{
#ifndef NDEBUG
    odbsim_assert(when >= curTick_,
                  "event scheduled in the past: ", when, " < ", curTick_);
#endif
    if (when < curTick_)
        when = curTick_; // release builds clamp to "fire now"

    const std::uint32_t idx = acquireSlot();
    Slot &s = slotAt(idx);
    s.when = when;
    s.seq = nextSeq_++;
    ++live_;
    if (kind_ == EventQueueKind::heap) {
        heap_.push_back(HeapItem{when, s.seq, idx});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
    } else {
        // An empty wheel can fast-forward to the present: there is no
        // live event below curTick_ for the position to stay under.
        if (live_ == 1 && wheelPos_ < curTick_)
            wheelPos_ = curTick_;
        placeSlot(idx);
    }
    return EventHandle(this, idx, s.gen);
}

EventQueue::HeapItem
EventQueue::popTop(std::vector<HeapItem> &heap)
{
    const HeapItem top = heap.front();
    std::pop_heap(heap.begin(), heap.end(), Later{});
    heap.pop_back();
    return top;
}

void
EventQueue::fireSlot(std::uint32_t idx)
{
    Slot &s = slotAt(idx);
    curTick_ = s.when;
    --live_;
    ++fired_;
    // Bump the generation before invoking so the callback sees its
    // own handle as no-longer-pending (cancel-after-fire is a
    // no-op). The callback runs in place — slot addresses are
    // stable and this slot is not on the freelist yet, so a
    // reentrant schedule() cannot clobber the callable mid-call.
    ++s.gen;
    s.cb();
    s.cb.reset();
    s.cancelled = false;
    s.where = Where::none;
    s.next = freeHead_;
    freeHead_ = idx;
}

void
EventQueue::linkIntoBucket(std::uint32_t idx, unsigned level,
                           unsigned bucket)
{
    Slot &s = slotAt(idx);
    s.where = Where::bucket;
    s.level = static_cast<std::uint8_t>(level);
    s.bucket = static_cast<std::uint8_t>(bucket);
    s.prev = noSlot;
    s.next = bucketHead_[level][bucket];
    if (s.next != noSlot)
        slotAt(s.next).prev = idx;
    bucketHead_[level][bucket] = idx;
    occ_[level] |= std::uint64_t{1} << bucket;
}

void
EventQueue::unlinkFromBucket(std::uint32_t idx)
{
    Slot &s = slotAt(idx);
    if (s.prev != noSlot) {
        slotAt(s.prev).next = s.next;
    } else {
        bucketHead_[s.level][s.bucket] = s.next;
        if (s.next == noSlot)
            occ_[s.level] &= ~(std::uint64_t{1} << s.bucket);
    }
    if (s.next != noSlot)
        slotAt(s.next).prev = s.prev;
}

void
EventQueue::placeSlot(std::uint32_t idx)
{
    Slot &s = slotAt(idx);
    if (blockOf(s.when) != blockOf(wheelPos_)) {
        // Beyond the wheel's addressable block: park in the overflow
        // heap until the position reaches the event's block.
        s.where = Where::overflow;
        heap_.push_back(HeapItem{s.when, s.seq, idx});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
        return;
    }
    // Same block: the level is the highest digit in which the event's
    // time differs from the wheel position; equal times land in the
    // level-0 bucket of the position itself (the due-now cohort).
    const Tick x = s.when ^ wheelPos_;
    const unsigned level =
        x ? (std::bit_width(x) - 1) / kWheelLevelShift : 0u;
    linkIntoBucket(idx, level,
                   static_cast<unsigned>(digitOf(s.when, level)));
}

void
EventQueue::advanceWheelTo(Tick pos)
{
    const Tick old = wheelPos_;
    wheelPos_ = pos;
    if ((old ^ pos) < kWheelBuckets)
        return; // only digit 0 moved: level-0 buckets stay valid
    // Every level whose digit changed must cascade the bucket the new
    // position landed in: its members are no longer "strictly ahead"
    // at that level and re-place into lower levels (or the due-now
    // bucket). Buckets passed over entirely are provably empty — the
    // position only ever advances to the earliest live event time.
    for (unsigned l = kWheelLevels - 1; l >= 1; --l) {
        if (digitOf(old, l) == digitOf(pos, l))
            continue;
        const unsigned b = static_cast<unsigned>(digitOf(pos, l));
        if (!(occ_[l] >> b & 1))
            continue;
        std::uint32_t n = bucketHead_[l][b];
        bucketHead_[l][b] = noSlot;
        occ_[l] &= ~(std::uint64_t{1} << b);
        while (n != noSlot) {
            const std::uint32_t nx = slotAt(n).next;
            placeSlot(n); // re-links, landing strictly below level l
            n = nx;
        }
    }
}

void
EventQueue::drainOverflow()
{
    while (!heap_.empty() && blockOf(heap_.front().when) <= blockOf(wheelPos_)) {
        const HeapItem it = popTop(heap_);
        Slot &s = slotAt(it.idx);
        if (s.cancelled) {
            releaseSlot(it.idx);
            continue;
        }
#ifndef NDEBUG
        odbsim_assert(s.when >= wheelPos_,
                      "live overflow event behind the wheel position");
#endif
        if (s.when < wheelPos_)
            s.when = wheelPos_; // unreachable by invariant; stay safe
        placeSlot(it.idx);
    }
}

bool
EventQueue::refillDue(Tick limit)
{
    // Serve out any cohort left over from a previous step() first,
    // reclaiming members cancelled since collection.
    while (dueCursor_ < due_.size()) {
        const std::uint32_t idx = due_[dueCursor_];
        if (slotAt(idx).cancelled) {
            releaseSlot(idx);
            ++dueCursor_;
            continue;
        }
        return slotAt(idx).when <= limit;
    }
    due_.clear();
    dueCursor_ = 0;

    for (;;) {
        drainOverflow();
        // Level 0 first: the lowest occupied bucket at or after the
        // position's own digit is the earliest event in the wheel
        // (lower levels are provably earlier than higher ones).
        const unsigned d0 = static_cast<unsigned>(digitOf(wheelPos_, 0));
        const std::uint64_t m0 = occ_[0] & (~std::uint64_t{0} << d0);
        if (m0) {
            const unsigned b =
                static_cast<unsigned>(std::countr_zero(m0));
            const Tick when =
                (wheelPos_ & ~Tick{kWheelBuckets - 1}) | b;
            if (when > limit)
                return false;
            wheelPos_ = when; // digit-0 move only: nothing cascades
            // A level-0 bucket is a single-tick cohort; one seq sort
            // restores the same-tick FIFO firing contract.
            occ_[0] &= ~(std::uint64_t{1} << b);
            std::uint32_t n = bucketHead_[0][b];
            bucketHead_[0][b] = noSlot;
            while (n != noSlot) {
                Slot &s = slotAt(n);
                s.where = Where::due;
                due_.push_back(n);
                n = s.next;
            }
            std::sort(due_.begin(), due_.end(),
                      [this](std::uint32_t a, std::uint32_t c) {
                          return slotAt(a).seq < slotAt(c).seq;
                      });
            return true;
        }
        unsigned l = 1;
        while (l < kWheelLevels && !occ_[l])
            ++l;
        if (l == kWheelLevels) {
            // Wheel empty: jump straight to the overflow minimum (no
            // bucket is occupied, so the jump cascades nothing).
            while (!heap_.empty() && slotAt(heap_.front().idx).cancelled)
                releaseSlot(popTop(heap_).idx);
            if (heap_.empty() || heap_.front().when > limit)
                return false;
            advanceWheelTo(heap_.front().when);
            continue;
        }
        // Advance to the start of the lowest occupied bucket of the
        // lowest occupied level — never past the earliest live event,
        // and never past the caller's limit — and cascade it down.
        const unsigned b = static_cast<unsigned>(std::countr_zero(occ_[l]));
        const unsigned shift = kWheelLevelShift * l;
        const Tick above = (wheelPos_ >> (shift + kWheelLevelShift))
                           << (shift + kWheelLevelShift);
        const Tick start = above | (Tick{b} << shift);
        if (start > limit)
            return false;
        advanceWheelTo(start);
    }
}

bool
EventQueue::step()
{
    if (kind_ == EventQueueKind::heap)
        return stepHeap();
    if (!refillDue(maxTick))
        return false;
    fireSlot(due_[dueCursor_++]);
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    if (kind_ == EventQueueKind::heap)
        return runHeap(limit);
    while (refillDue(limit))
        fireSlot(due_[dueCursor_++]);
    curTick_ = std::max(curTick_, limit);
    return curTick_;
}

bool
EventQueue::stepHeap()
{
    while (!heap_.empty()) {
        const HeapItem top = popTop(heap_);
        Slot &s = slotAt(top.idx);
        if (s.cancelled) {
            // live_ was already decremented when the event was
            // cancelled; just reclaim the slot.
            releaseSlot(top.idx);
            continue;
        }
        fireSlot(top.idx);
        return true;
    }
    return false;
}

Tick
EventQueue::runHeap(Tick limit)
{
    while (!heap_.empty()) {
        // Drop dead entries so the top reflects the next live event.
        while (!heap_.empty() && slotAt(heap_.front().idx).cancelled) {
            releaseSlot(popTop(heap_).idx);
        }
        if (heap_.empty())
            break;
        if (heap_.front().when > limit)
            break;
        stepHeap();
    }
    curTick_ = std::max(curTick_, limit);
    return curTick_;
}

Tick
EventQueue::runAll()
{
    while (step()) {
    }
    return curTick_;
}

} // namespace odbsim
