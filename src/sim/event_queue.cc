#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace odbsim
{

bool
EventHandle::pending() const
{
    return q_ && q_->slotPending(idx_, gen_);
}

void
EventHandle::cancel()
{
    if (q_)
        q_->cancelSlot(idx_, gen_);
}

bool
EventQueue::slotPending(std::uint32_t idx, std::uint32_t gen) const
{
    // A released slot has its generation bumped, so a stale handle
    // (fired event, or a reclaimed cancelled entry) never matches.
    if (idx >= slotCount_)
        return false;
    const Slot &s = slotAt(idx);
    return s.gen == gen && !s.cancelled;
}

void
EventQueue::cancelSlot(std::uint32_t idx, std::uint32_t gen)
{
    if (!slotPending(idx, gen))
        return;
    // The heap entry stays where it is (lazy reclamation): it is
    // dropped, and the slot recycled, when it reaches the top.
    slotAt(idx).cancelled = true;
    --live_;
}

std::uint32_t
EventQueue::acquireSlot()
{
    if (freeHead_ != noSlot) {
        const std::uint32_t idx = freeHead_;
        freeHead_ = slotAt(idx).nextFree;
        return idx;
    }
    if ((slotCount_ & (chunkSlots - 1)) == 0)
        chunks_.push_back(std::make_unique<Slot[]>(chunkSlots));
    return slotCount_++;
}

void
EventQueue::releaseSlot(std::uint32_t idx)
{
    Slot &s = slotAt(idx);
    s.cb.reset();
    s.cancelled = false;
    ++s.gen; // invalidate outstanding handles before reuse
    s.nextFree = freeHead_;
    freeHead_ = idx;
}

EventHandle
EventQueue::scheduleSlot(Tick when)
{
#ifndef NDEBUG
    odbsim_assert(when >= curTick_,
                  "event scheduled in the past: ", when, " < ", curTick_);
#endif
    if (when < curTick_)
        when = curTick_; // release builds clamp to "fire now"

    const std::uint32_t idx = acquireSlot();
    heap_.push_back(HeapItem{when, nextSeq_++, idx});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++live_;
    return EventHandle(this, idx, slotAt(idx).gen);
}

EventQueue::HeapItem
EventQueue::popTop()
{
    const HeapItem top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    return top;
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        const HeapItem top = popTop();
        Slot &s = slotAt(top.idx);
        if (s.cancelled) {
            // live_ was already decremented when the event was
            // cancelled; just reclaim the slot.
            releaseSlot(top.idx);
            continue;
        }
        curTick_ = top.when;
        --live_;
        ++fired_;
        // Bump the generation before invoking so the callback sees its
        // own handle as no-longer-pending (cancel-after-fire is a
        // no-op). The callback runs in place — slot addresses are
        // stable and this slot is not on the freelist yet, so a
        // reentrant schedule() cannot clobber the callable mid-call.
        ++s.gen;
        s.cb();
        s.cb.reset();
        s.cancelled = false;
        s.nextFree = freeHead_;
        freeHead_ = top.idx;
        return true;
    }
    return false;
}

Tick
EventQueue::run(Tick limit)
{
    while (!heap_.empty()) {
        // Drop dead entries so the top reflects the next live event.
        while (!heap_.empty() && slotAt(heap_.front().idx).cancelled) {
            releaseSlot(popTop().idx);
        }
        if (heap_.empty())
            break;
        if (heap_.front().when > limit) {
            curTick_ = limit;
            return curTick_;
        }
        step();
    }
    curTick_ = std::max(curTick_, limit);
    return curTick_;
}

Tick
EventQueue::runAll()
{
    while (step()) {
    }
    return curTick_;
}

} // namespace odbsim
