#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace odbsim
{

bool
EventHandle::pending() const
{
    return slot_ && !slot_->cancelled && !slot_->fired;
}

void
EventHandle::cancel()
{
    if (slot_)
        slot_->cancelled = true;
}

EventHandle
EventQueue::schedule(Tick when, Callback cb)
{
    odbsim_assert(when >= curTick_,
                  "event scheduled in the past: ", when, " < ", curTick_);
    auto slot = std::make_shared<EventHandle::Slot>();
    queue_.push(Entry{when, nextSeq_++, std::move(cb), slot});
    ++live_;
    return EventHandle(std::move(slot));
}

bool
EventQueue::step()
{
    while (!queue_.empty()) {
        // priority_queue::top() is const; the entry is moved out via a
        // const_cast that is safe because we pop immediately after.
        Entry entry = std::move(const_cast<Entry &>(queue_.top()));
        queue_.pop();
        if (entry.slot->cancelled) {
            // Cancelled entries were already removed from the live count
            // when... no: cancellation only flags the slot; account here.
            --live_;
            continue;
        }
        curTick_ = entry.when;
        entry.slot->fired = true;
        --live_;
        ++fired_;
        entry.cb();
        return true;
    }
    return false;
}

Tick
EventQueue::run(Tick limit)
{
    while (!queue_.empty()) {
        // Skip dead entries so top() reflects the next live event.
        while (!queue_.empty() && queue_.top().slot->cancelled) {
            queue_.pop();
            --live_;
        }
        if (queue_.empty())
            break;
        if (queue_.top().when > limit) {
            curTick_ = limit;
            return curTick_;
        }
        step();
    }
    curTick_ = std::max(curTick_, limit);
    return curTick_;
}

Tick
EventQueue::runAll()
{
    while (step()) {
    }
    return curTick_;
}

} // namespace odbsim
