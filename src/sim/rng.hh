/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * All stochastic behaviour in odbsim flows through Rng so that a run is
 * exactly reproducible from its seed. The generator is xoshiro256**,
 * seeded through SplitMix64, following the reference implementations by
 * Blackman and Vigna.
 */

#ifndef ODBSIM_SIM_RNG_HH
#define ODBSIM_SIM_RNG_HH

#include <cstdint>
#include <vector>

namespace odbsim
{

/** Deterministic pseudo-random number generator (xoshiro256**). */
class Rng
{
  public:
    /** Construct with a 64-bit seed, expanded through SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n) — n must be > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /** Normally distributed value (Box-Muller). */
    double normal(double mean, double stddev);

    /**
     * TPC-C style NURand non-uniform random value over [x, y].
     *
     * @param a The bit-or constant (255, 1023 or 8191 in TPC-C).
     */
    std::int64_t nurand(std::int64_t a, std::int64_t x, std::int64_t y);

    /** Fork an independent child stream (for per-process generators). */
    Rng fork();

  private:
    std::uint64_t s_[4];
    bool haveSpareNormal_ = false;
    double spareNormal_ = 0.0;
    std::uint64_t nurandC_;
};

/**
 * Zipf-distributed integer sampler over [0, n) with exponent theta.
 *
 * Uses the standard rejection-free inverse method of Gray et al. as used
 * in YCSB; construction is O(1) and sampling is O(1).
 */
class ZipfGenerator
{
  public:
    ZipfGenerator(std::uint64_t n, double theta);

    /** Sample a value in [0, n); rank 0 is the most popular. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t domain() const { return n_; }
    double theta() const { return theta_; }

  private:
    static double zeta(std::uint64_t n, double theta);

    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
};

} // namespace odbsim

#endif // ODBSIM_SIM_RNG_HH
