/**
 * @file
 * Lightweight statistics primitives used by every model in odbsim:
 * plain counters, running means/variances, and fixed-bucket histograms.
 *
 * Counters are intentionally trivial (a wrapped uint64_t) so models can
 * increment them in hot paths; aggregation and pretty-printing live in
 * the analysis layer.
 */

#ifndef ODBSIM_SIM_STATS_HH
#define ODBSIM_SIM_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace odbsim
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Running mean / variance / extrema accumulator (Welford's algorithm).
 */
class RunningStat
{
  public:
    void add(double x);
    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Histogram with uniform buckets over [lo, hi); out-of-range samples are
 * clamped into the first/last bucket and counted separately.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x, std::uint64_t weight = 1);
    void reset();

    std::uint64_t totalCount() const { return total_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    const std::vector<std::uint64_t> &buckets() const { return counts_; }
    double bucketLow(std::size_t i) const;
    double bucketWidth() const { return width_; }

    /** Approximate quantile (linear within the containing bucket). */
    double quantile(double q) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

/**
 * A time-weighted utilization tracker: accumulates busy time against
 * total observed time, e.g. for CPU or bus utilization.
 */
class UtilizationTracker
{
  public:
    /** Record an interval of the given length, busy or idle. */
    void
    record(std::uint64_t length, bool busy)
    {
        total_ += length;
        if (busy)
            busy_ += length;
    }

    void
    reset()
    {
        total_ = 0;
        busy_ = 0;
    }

    std::uint64_t busyTime() const { return busy_; }
    std::uint64_t totalTime() const { return total_; }

    double
    utilization() const
    {
        return total_ ? static_cast<double>(busy_) /
                            static_cast<double>(total_)
                      : 0.0;
    }

  private:
    std::uint64_t total_ = 0;
    std::uint64_t busy_ = 0;
};

} // namespace odbsim

#endif // ODBSIM_SIM_STATS_HH
