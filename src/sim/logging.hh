/**
 * @file
 * Error and status reporting helpers, following the gem5 conventions:
 * panic() for internal simulator bugs, fatal() for user configuration
 * errors, warn()/inform() for status messages.
 */

#ifndef ODBSIM_SIM_LOGGING_HH
#define ODBSIM_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace odbsim
{

namespace detail
{

/** Stream-concatenate a variadic argument pack into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] inline void
die(const char *kind, const std::string &msg, const char *file, int line,
    bool abort_proc)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", kind, msg.c_str(), file, line);
    if (abort_proc)
        std::abort();
    std::exit(1);
}

inline void
report(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
}

} // namespace detail

} // namespace odbsim

/**
 * Terminate with a core dump: something happened that should never happen
 * regardless of user input (an odbsim bug).
 */
#define odbsim_panic(...)                                                   \
    ::odbsim::detail::die("panic", ::odbsim::detail::concat(__VA_ARGS__),   \
                          __FILE__, __LINE__, true)

/**
 * Terminate cleanly: the simulation cannot continue because of a user
 * error (bad configuration, invalid arguments).
 */
#define odbsim_fatal(...)                                                   \
    ::odbsim::detail::die("fatal", ::odbsim::detail::concat(__VA_ARGS__),   \
                          __FILE__, __LINE__, false)

/** Warn about questionable but survivable conditions. */
#define odbsim_warn(...)                                                    \
    ::odbsim::detail::report("warn",                                        \
                             ::odbsim::detail::concat(__VA_ARGS__))

/** Informative status message. */
#define odbsim_inform(...)                                                  \
    ::odbsim::detail::report("info",                                        \
                             ::odbsim::detail::concat(__VA_ARGS__))

/** Panic if a required invariant does not hold. */
#define odbsim_assert(cond, ...)                                            \
    do {                                                                    \
        if (!(cond))                                                        \
            odbsim_panic("assertion '" #cond "' failed: ",                  \
                         ::odbsim::detail::concat(__VA_ARGS__));            \
    } while (0)

#endif // ODBSIM_SIM_LOGGING_HH
