#include "sim/parallel_engine.hh"

#include <algorithm>
#include <thread>

#include "sim/logging.hh"
#include "sim/thread_pool.hh"

namespace odbsim::sim
{

ParallelEngine::ParallelEngine(const ParallelEngineConfig &cfg) : cfg_(cfg)
{
    if (cfg_.islands == 0)
        odbsim_fatal("ParallelEngine: islands must be >= 1");
    if (cfg_.islands > 1 && cfg_.lookahead == 0)
        odbsim_fatal("ParallelEngine: islands=", cfg_.islands,
                     " requires a positive lookahead");

    const unsigned nq = (cfg_.oracle || cfg_.islands == 1) ? 1 : cfg_.islands;
    queues_.reserve(nq);
    for (unsigned i = 0; i < nq; ++i)
        queues_.push_back(std::make_unique<EventQueue>(cfg_.kind));

    if (cfg_.islands > 1) {
        boxes_.resize(std::size_t{cfg_.islands} * cfg_.islands);
        for (unsigned s = 0; s < cfg_.islands; ++s)
            for (unsigned d = 0; d < cfg_.islands; ++d)
                if (s != d)
                    boxes_[std::size_t{s} * cfg_.islands + d] =
                        std::make_unique<SpscMailbox>();
    }
    sendSeq_.assign(cfg_.islands, 0);
    sentCount_.assign(cfg_.islands, 0);

    workers_ = cfg_.workers;
    if (workers_ == 0) {
        workers_ = std::thread::hardware_concurrency();
        if (workers_ == 0)
            workers_ = 1;
    }
    workers_ = std::min(workers_, cfg_.islands);
    if (cfg_.oracle)
        workers_ = 1;
    if (workers_ > 1)
        pool_ = std::make_unique<ThreadPool>(workers_);
}

ParallelEngine::~ParallelEngine() = default;

std::uint64_t
ParallelEngine::admitSend(unsigned from, unsigned to, Tick when)
{
    if (from >= cfg_.islands || to >= cfg_.islands)
        odbsim_fatal("ParallelEngine::sendCross: island out of range (",
                     from, " -> ", to, ", islands=", cfg_.islands, ")");
    if (!direct()) {
        if (from == to)
            odbsim_fatal("ParallelEngine::sendCross: island ", from,
                         " sending to itself; use schedule()");
        const Tick now = islandQueue(from).curTick();
        const Tick boundary = (now / cfg_.lookahead + 1) * cfg_.lookahead;
        if (when < boundary)
            odbsim_fatal("ParallelEngine::sendCross: lookahead violation: "
                         "island ", from, " at tick ", now, " sent an event "
                         "for tick ", when, " < next epoch boundary ",
                         boundary, " (lookahead ", cfg_.lookahead, ")");
    }
    ++sentCount_[from];
    return sendSeq_[from]++;
}

void
ParallelEngine::runPhase(Tick target)
{
    if (queues_.size() == 1) {
        queues_[0]->run(target);
        return;
    }
    if (workers_ > 1) {
        pool_->parallelFor(queues_.size(), [this, target](std::size_t i) {
            queues_[i]->run(target);
        });
    } else {
        for (auto &q : queues_)
            q->run(target);
    }
}

void
ParallelEngine::mergeBarrier()
{
    // The merge key (srcWhen, srcIsland, srcSeq) is total and unique
    // (srcSeq never repeats within a source island), so plain sort is
    // deterministic. Oracle mode merges globally into the shared
    // queue; parallel mode merges per destination — the destination's
    // sublist of the global order is in the same relative order, which
    // is the bit-exactness argument.
    const auto before = [](const CrossEvent &a, const CrossEvent &b) {
        if (a.srcWhen != b.srcWhen)
            return a.srcWhen < b.srcWhen;
        if (a.srcIsland != b.srcIsland)
            return a.srcIsland < b.srcIsland;
        return a.srcSeq < b.srcSeq;
    };

    if (cfg_.oracle) {
        scratch_.clear();
        for (unsigned s = 0; s < cfg_.islands; ++s)
            for (unsigned d = 0; d < cfg_.islands; ++d)
                if (s != d)
                    mailbox(s, d).drainTo(scratch_);
        std::sort(scratch_.begin(), scratch_.end(), before);
        for (auto &ev : scratch_) {
            odbsim_assert(ev.when > queues_[0]->curTick(),
                          "cross event due in the past");
            queues_[0]->schedule(ev.when, std::move(ev.cb));
            ++crossDelivered_;
        }
        scratch_.clear();
        return;
    }

    for (unsigned d = 0; d < cfg_.islands; ++d) {
        scratch_.clear();
        for (unsigned s = 0; s < cfg_.islands; ++s)
            if (s != d)
                mailbox(s, d).drainTo(scratch_);
        if (scratch_.empty())
            continue;
        std::sort(scratch_.begin(), scratch_.end(), before);
        EventQueue &q = *queues_[d];
        for (auto &ev : scratch_) {
            odbsim_assert(ev.when > q.curTick(),
                          "cross event due in the past");
            q.schedule(ev.when, std::move(ev.cb));
            ++crossDelivered_;
        }
    }
    scratch_.clear();
}

bool
ParallelEngine::allQueuesEmpty() const
{
    for (const auto &q : queues_)
        if (!q->empty())
            return false;
    return true;
}

bool
ParallelEngine::allMailboxesEmpty() const
{
    for (const auto &b : boxes_)
        if (b && !b->empty())
            return false;
    return true;
}

Tick
ParallelEngine::run(Tick limit)
{
    if (direct()) {
        queues_[0]->run(limit);
        nextTick_ = limit + 1;
        return limit;
    }

    const Tick L = cfg_.lookahead;
    while (nextTick_ <= limit) {
        if (allQueuesEmpty() && allMailboxesEmpty()) {
            // Nothing pending anywhere and nothing parked: no event
            // can fire before the limit, so fast-forward every island.
            for (auto &q : queues_)
                q->run(limit);
            nextTick_ = limit + 1;
            break;
        }
        const Tick boundary = (nextTick_ / L + 1) * L;
        const Tick target = std::min(boundary - 1, limit);
        runPhase(target);
        nextTick_ = target + 1;
        // Merge only at true epoch boundaries: a run() ending
        // mid-epoch leaves sends parked, so the merge-batch structure
        // depends only on the epoch grid, never on how a run is split
        // into warmup/measure segments.
        if (target == boundary - 1) {
            mergeBarrier();
            ++epochs_;
        }
    }
    return curTick();
}

std::uint64_t
ParallelEngine::eventsFired() const
{
    std::uint64_t total = 0;
    for (const auto &q : queues_)
        total += q->eventsFired();
    return total;
}

std::uint64_t
ParallelEngine::crossSent() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : sentCount_)
        total += c;
    return total;
}

} // namespace odbsim::sim
