/**
 * @file
 * FlatMap: the flat open-addressing hash table behind every hot-path
 * key→value store in the simulator. It started life inside the
 * coherence directory (mem/coherence.cc) and was extracted once the
 * db layer — buffer-cache index, lock-resource table, schema row
 * state — needed the same storage discipline.
 *
 * Design (unchanged from the directory's original table, so the port
 * is bit-identical):
 *  - one contiguous slot array, power-of-two capacity, Fibonacci
 *    hashing (`key * 0x9e3779b97f4a7c15 >> shift`) with linear
 *    probing at a load factor kept below 7/8;
 *  - backward-shift deletion — followers of the probe chain are
 *    pulled one hole closer to their ideal slot, so there are no
 *    tombstones and probe chains never rot under churn;
 *  - O(1) clear() via 16-bit generation stamps: a slot is live iff
 *    its stamp equals the map's current generation, and the (rare)
 *    wrap re-zeroes the stamp array so a stale stamp can never be
 *    mistaken for live again;
 *  - zero steady-state heap allocations: growth only happens while
 *    the population reaches a new high-water mark, observable via
 *    allocations() (the perf-test hook the coherence directory
 *    exposed as tableAllocations()).
 *
 * The generation stamps live in a parallel array rather than inside
 * the slot, which keeps a slot at exactly sizeof(Key) + sizeof(Mapped)
 * (the directory's 16-byte packed-slot property) and makes the probe
 * scan read a dense 2-byte-per-entry liveness vector.
 *
 * Keys must be unsigned integers that fit in 64 bits; values must be
 * trivially copyable (slots are relocated by assignment during
 * backward shifts and rehashes).
 */

#ifndef ODBSIM_SIM_FLAT_MAP_HH
#define ODBSIM_SIM_FLAT_MAP_HH

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "sim/logging.hh"

namespace odbsim::sim
{

template <typename Key, typename Mapped>
class FlatMap
{
  public:
    static_assert(std::is_integral_v<Key> && sizeof(Key) <= 8,
                  "FlatMap keys are hashed as 64-bit integers");
    static_assert(std::is_trivially_copyable_v<Mapped>,
                  "FlatMap relocates values by assignment");

    /** One stored entry; exposed for sizing static_asserts. */
    struct Slot
    {
        Key key{};
        Mapped value{};
    };

    /** Sentinel index for "not found". */
    static constexpr std::size_t npos = ~static_cast<std::size_t>(0);

    /**
     * @param min_capacity Starting slot count (power of two). The
     *        default matches the coherence directory's original table:
     *        well below any real population so reserve() normally
     *        sizes the table once and warm-up never rehashes.
     */
    explicit FlatMap(std::size_t min_capacity = 1024)
        : minCapacity_(min_capacity)
    {
        odbsim_assert(std::has_single_bit(min_capacity),
                      "flat-map capacity must be a power of two");
        rehash(min_capacity);
    }

    /** Index of @p key's slot, or npos. Never mutates. */
    std::size_t
    findIndex(Key key) const
    {
        std::size_t i = indexOf(key);
        while (gens_[i] == gen_) {
            if (slots_[i].key == key)
                return i;
            i = (i + 1) & mask_;
        }
        return npos;
    }

    /** Value lookup; nullptr when absent. @{ */
    Mapped *
    find(Key key)
    {
        const std::size_t i = findIndex(key);
        return i == npos ? nullptr : &slots_[i].value;
    }
    const Mapped *
    find(Key key) const
    {
        const std::size_t i = findIndex(key);
        return i == npos ? nullptr : &slots_[i].value;
    }
    /** @} */

    /** Entry access by index (valid until the next mutation). @{ */
    Mapped &valueAt(std::size_t i) { return slots_[i].value; }
    const Mapped &valueAt(std::size_t i) const { return slots_[i].value; }
    Key keyAt(std::size_t i) const { return slots_[i].key; }
    /** @} */

    /**
     * Find @p key, inserting a default-constructed value if absent.
     * The reference is valid until the next mutation.
     */
    Mapped &
    findOrInsert(Key key)
    {
        bool inserted;
        return findOrInsert(key, inserted);
    }

    /** As above; @p inserted reports whether the entry is new. */
    Mapped &
    findOrInsert(Key key, bool &inserted)
    {
        // Keep the load factor below 7/8 so probe chains stay short
        // and an empty slot always terminates the scan. Growth only
        // triggers while the population reaches a new high-water mark.
        if ((size_ + 1) * 8 > slots_.size() * 7)
            rehash(slots_.size() * 2);

        std::size_t i = indexOf(key);
        while (gens_[i] == gen_) {
            if (slots_[i].key == key) {
                inserted = false;
                return slots_[i].value;
            }
            i = (i + 1) & mask_;
        }
        slots_[i].key = key;
        slots_[i].value = Mapped{};
        gens_[i] = gen_;
        ++size_;
        inserted = true;
        return slots_[i].value;
    }

    /** Erase the live entry at index @p i (from findIndex). */
    void
    eraseAt(std::size_t i)
    {
        --size_;
        // Backward-shift deletion: pull every displaced follower of
        // the probe chain one hole closer to its ideal slot, leaving
        // no tombstone behind.
        std::size_t j = i;
        while (true) {
            j = (j + 1) & mask_;
            if (gens_[j] != gen_)
                break;
            const std::size_t ideal = indexOf(slots_[j].key);
            if (((j - ideal) & mask_) >= ((j - i) & mask_)) {
                slots_[i] = slots_[j];
                i = j;
            }
        }
        // Mark empty with a stamp that can never equal a future live
        // generation: gen_ only grows until its wrap re-zeroes the
        // stamp array.
        gens_[i] = static_cast<std::uint16_t>(gen_ - 1);
    }

    /** Erase @p key if present; @return whether an entry was erased. */
    bool
    erase(Key key)
    {
        const std::size_t i = findIndex(key);
        if (i == npos)
            return false;
        eraseAt(i);
        return true;
    }

    /** Drop all entries (O(1): bumps the generation stamp). */
    void
    clear()
    {
        size_ = 0;
        ++gen_;
        if (gen_ == 0) {
            // 16-bit generation wrapped: wipe the stamps so a value
            // from 65535 clears ago cannot resurrect as live.
            std::fill(gens_.begin(), gens_.end(), std::uint16_t{0});
            gen_ = 1;
        }
    }

    /**
     * Pre-size the table for @p entries so the warm-up phase does not
     * rehash. Never shrinks.
     */
    void
    reserve(std::size_t entries)
    {
        // Smallest power-of-two capacity whose 7/8 load threshold
        // admits `entries` live elements, mirroring the insert-time
        // check exactly: reserving capacity×7/8 elements must neither
        // rehash on the last insert nor round up to the next power of
        // two here.
        std::size_t cap = minCapacity_;
        if (entries > 0)
            cap = std::max(cap, std::bit_ceil((entries * 8 + 6) / 7));
        if (cap > slots_.size())
            rehash(cap);
    }

    /** Live entries. */
    std::size_t size() const { return size_; }

    /** @name Allocation observability (perf-test hook) @{ */
    /** Slots in the table (always a power of two). */
    std::size_t capacity() const { return slots_.size(); }
    /**
     * Growth events (construction, reserve() and load-driven
     * rehashes). Steady-state operation — any churn whose population
     * stays at or below the high-water mark — must not advance this.
     */
    std::uint64_t allocations() const { return allocations_; }
    /** @} */

  private:
    std::size_t
    indexOf(Key key) const
    {
        return static_cast<std::size_t>(
            (static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL) >>
            shift_);
    }

    void
    rehash(std::size_t new_capacity)
    {
        odbsim_assert(std::has_single_bit(new_capacity),
                      "flat-map capacity must be a power of two");
        std::vector<Slot> old_slots = std::move(slots_);
        std::vector<std::uint16_t> old_gens = std::move(gens_);
        slots_.assign(new_capacity, Slot{});
        gens_.assign(new_capacity, std::uint16_t{0});
        mask_ = new_capacity - 1;
        shift_ =
            64 - static_cast<unsigned>(std::countr_zero(new_capacity));
        ++allocations_;
        for (std::size_t k = 0; k < old_slots.size(); ++k) {
            if (old_gens[k] != gen_)
                continue;
            std::size_t i = indexOf(old_slots[k].key);
            while (gens_[i] == gen_)
                i = (i + 1) & mask_;
            slots_[i] = old_slots[k];
            gens_[i] = gen_;
        }
    }

    std::size_t minCapacity_;
    std::vector<Slot> slots_;
    std::vector<std::uint16_t> gens_;
    std::size_t mask_ = 0;   ///< capacity - 1
    unsigned shift_ = 0;     ///< 64 - log2(capacity), for the hash
    std::size_t size_ = 0;   ///< live slots
    std::uint16_t gen_ = 1;  ///< current live generation (never 0)
    std::uint64_t allocations_ = 0;
};

} // namespace odbsim::sim

#endif // ODBSIM_SIM_FLAT_MAP_HH
