/**
 * @file
 * Conservative parallel discrete-event engine: island-per-worker
 * partitioning of the simulation with epoch barriers at the
 * interconnect lookahead.
 *
 * The model is partitioned into S islands (one logical process per
 * socket). Each island owns a private timer-wheel EventQueue and is
 * advanced by a worker thread up to an epoch horizon; islands interact
 * *only* through sendCross(), which deposits the event into a pooled
 * SPSC mailbox owned by the (source, destination) pair. At the epoch
 * barrier the mailboxes are drained and the same-epoch deliveries are
 * merged into the destination queues in (srcWhen, srcIsland, srcSeq)
 * order — a total, unique key — so the firing order seen by every
 * island, and therefore every RNG draw and counter, is bit-identical
 * at any worker count.
 *
 * Conservative correctness: the lookahead L is the minimum cross-island
 * latency (derived from the topology's hopLatencyCycles × hops), so an
 * event sent while executing epoch k (ticks [kL, (k+1)L)) cannot be
 * due before tick (k+1)L. Running each island to the end of epoch k
 * and merging before any epoch-(k+1) event fires therefore never
 * delivers an event into an island's past. sendCross() enforces the
 * contract fatally: the delivery tick must lie at or beyond the
 * sender's next epoch boundary.
 *
 * Degenerate and oracle modes:
 *  - islands == 1 degenerates to the serial engine: one queue, plain
 *    EventQueue::run, sendCross == schedule. All paper grid points
 *    (one coherence domain) take this path, which is why golden CSVs
 *    are byte-identical under any --des-threads value.
 *  - ParallelEngineConfig::oracle runs *all* islands on one shared
 *    queue, single-threaded, with the same epoch-deferred mailbox
 *    delivery semantics. It is a genuinely different execution
 *    strategy (global (when, seq) order instead of per-island queues
 *    and epoch phases) kept as the differential oracle for the
 *    parallel path — the same role EventQueueKind::heap plays for the
 *    wheel — and whole-run digests are cross-checked against it in
 *    bench_hotpath and the des_determinism_contract test.
 *
 * Threading: during a phase, worker i touches only island i's queue,
 * island i's send-sequence counter and the (i, *) mailbox producer
 * ends. Barriers run on the engine's owning thread after the
 * work-stealing pool's parallelFor join, so mailbox consumer ends and
 * the spill vectors are accessed race-free (the join is the
 * happens-before edge).
 */

#ifndef ODBSIM_SIM_PARALLEL_ENGINE_HH
#define ODBSIM_SIM_PARALLEL_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace odbsim
{
class ThreadPool;
}

namespace odbsim::sim
{

/** Construction options for ParallelEngine. */
struct ParallelEngineConfig
{
    /** Number of islands (logical processes). 1 = serial engine. */
    unsigned islands = 1;
    /**
     * Conservative lookahead L in ticks: the minimum latency of any
     * cross-island interaction. Required > 0 when islands > 1; epoch
     * boundaries sit at absolute multiples of L.
     */
    Tick lookahead = 0;
    /**
     * Host worker threads advancing islands; 0 selects
     * hardware_concurrency. Capped at the island count. 1 advances
     * the islands on the calling thread (still epoch-by-epoch, so the
     * result is bit-identical to any other worker count).
     */
    unsigned workers = 1;
    /** Ordering structure for the island queues. */
    EventQueueKind kind = EventQueueKind::wheel;
    /**
     * Differential-oracle mode: all islands share one queue, advanced
     * single-threaded, with identical epoch-deferred cross-island
     * delivery semantics (see file comment).
     */
    bool oracle = false;
};

/**
 * A cross-island event parked in a mailbox between its send and the
 * epoch barrier that delivers it.
 */
struct CrossEvent
{
    /** Delivery tick at the destination island. */
    Tick when = 0;
    /** Sender's current tick when the event was sent. */
    Tick srcWhen = 0;
    /** Per-source-island send sequence number (unique per source). */
    std::uint64_t srcSeq = 0;
    /** Source island id — the merge tiebreak between islands. */
    std::uint32_t srcIsland = 0;
    EventQueue::Callback cb;
};

/**
 * Single-producer single-consumer mailbox for cross-island events.
 *
 * The producer is the worker advancing the source island during a
 * phase; the consumer is the barrier merge on the engine's owning
 * thread. A fixed power-of-two ring of pooled CrossEvent slots absorbs
 * the common case without allocation; bursts beyond the ring capacity
 * overflow into a producer-owned spill vector that the barrier drains
 * after the phase join (which is what makes the unsynchronized spill
 * access safe).
 */
class SpscMailbox
{
  public:
    /** Ring capacity (power of two); bursts beyond it spill. */
    static constexpr std::size_t kRingSlots = 128;

    SpscMailbox() : ring_(kRingSlots) {}

    SpscMailbox(const SpscMailbox &) = delete;
    SpscMailbox &operator=(const SpscMailbox &) = delete;

    /** Producer side: deposit one event. */
    void
    push(CrossEvent &&ev)
    {
        const std::uint64_t t = tail_.load(std::memory_order_relaxed);
        const std::uint64_t h = head_.load(std::memory_order_acquire);
        if (t - h < kRingSlots) {
            ring_[t & (kRingSlots - 1)] = std::move(ev);
            tail_.store(t + 1, std::memory_order_release);
        } else {
            spill_.push_back(std::move(ev));
        }
    }

    /** Barrier-only: true if no parked events (ring and spill). */
    bool
    empty() const
    {
        return head_.load(std::memory_order_relaxed) ==
                   tail_.load(std::memory_order_relaxed) &&
               spill_.empty();
    }

    /** Barrier-only: move every parked event into @p out, in push
     *  order (ring first, then spill — which is also send order). */
    void
    drainTo(std::vector<CrossEvent> &out)
    {
        std::uint64_t h = head_.load(std::memory_order_relaxed);
        const std::uint64_t t = tail_.load(std::memory_order_acquire);
        for (; h != t; ++h)
            out.push_back(std::move(ring_[h & (kRingSlots - 1)]));
        head_.store(h, std::memory_order_release);
        for (auto &ev : spill_)
            out.push_back(std::move(ev));
        spill_.clear();
    }

  private:
    std::vector<CrossEvent> ring_;
    std::vector<CrossEvent> spill_;
    alignas(64) std::atomic<std::uint64_t> head_{0};
    alignas(64) std::atomic<std::uint64_t> tail_{0};
};

/**
 * Conservative parallel discrete-event engine (see file comment).
 *
 * Drivers bind one island's model state to each islandQueue(), then
 * advance simulated time exclusively through ParallelEngine::run —
 * never through the island queues' own run methods.
 */
class ParallelEngine
{
  public:
    explicit ParallelEngine(const ParallelEngineConfig &cfg);
    ~ParallelEngine();

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    /** Number of islands. */
    unsigned islands() const { return cfg_.islands; }
    /** Resolved worker count (after 0 → hardware, cap at islands). */
    unsigned workers() const { return workers_; }
    /** Conservative lookahead in ticks (0 when islands == 1). */
    Tick lookahead() const { return cfg_.lookahead; }
    /** True if running in differential-oracle mode. */
    bool oracle() const { return cfg_.oracle; }

    /**
     * The event queue island @p island executes on. In oracle mode
     * every island maps to the one shared queue.
     */
    EventQueue &
    islandQueue(unsigned island)
    {
        return *queues_[queueIndex(island)];
    }

    /** Schedule an island-local event at an absolute tick. */
    template <typename F>
    EventHandle
    schedule(unsigned island, Tick when, F &&cb)
    {
        return islandQueue(island).schedule(when, std::forward<F>(cb));
    }

    /**
     * Send an event from island @p from to island @p to, to fire at
     * absolute tick @p when.
     *
     * Contract (fatal if violated when islands > 1): @p when must be
     * at or beyond the sender's next epoch boundary,
     * (floor(senderNow / L) + 1) * L — guaranteed by construction for
     * any send of the form now + d with d >= lookahead. The event is
     * parked in the (from, to) mailbox and delivered at the epoch
     * barrier; with islands == 1 it is scheduled directly.
     */
    template <typename F>
    void
    sendCross(unsigned from, unsigned to, Tick when, F &&cb)
    {
        const std::uint64_t seq = admitSend(from, to, when);
        if (direct()) {
            islandQueue(to).schedule(when, std::forward<F>(cb));
            return;
        }
        CrossEvent ev;
        ev.when = when;
        ev.srcWhen = islandQueue(from).curTick();
        ev.srcSeq = seq;
        ev.srcIsland = from;
        ev.cb = std::forward<F>(cb);
        mailbox(from, to).push(std::move(ev));
    }

    /**
     * Advance every island to @p limit (inclusive, like
     * EventQueue::run), interleaving epoch phases and merge barriers.
     * Epoch alignment is absolute (multiples of L), so splitting a run
     * into warmup/measure segments changes nothing.
     * @return the tick at which execution stopped.
     */
    Tick run(Tick limit);

    /** Last tick fully executed (0 before the first run). */
    Tick
    curTick() const
    {
        return nextTick_ == 0 ? 0 : nextTick_ - 1;
    }

    /** Total events fired across all islands. */
    std::uint64_t eventsFired() const;
    /** Total sendCross calls. */
    std::uint64_t crossSent() const;
    /** Cross events delivered at barriers so far. */
    std::uint64_t crossDelivered() const { return crossDelivered_; }
    /** Merge barriers executed so far. */
    std::uint64_t epochBarriers() const { return epochs_; }

  private:
    /** True when cross sends bypass mailboxes (single island). */
    bool direct() const { return cfg_.islands == 1; }

    unsigned
    queueIndex(unsigned island) const
    {
        return (cfg_.oracle || direct()) ? 0 : island;
    }

    SpscMailbox &
    mailbox(unsigned from, unsigned to)
    {
        return *boxes_[from * cfg_.islands + to];
    }

    /** Validate a sendCross (bounds + lookahead contract), count it,
     *  and hand out the per-source sequence number. */
    std::uint64_t admitSend(unsigned from, unsigned to, Tick when);

    /** Advance every island queue to @p target (one epoch phase). */
    void runPhase(Tick target);
    /** Drain all mailboxes and merge deliveries into the destination
     *  queues in (srcWhen, srcIsland, srcSeq) order. */
    void mergeBarrier();

    bool allQueuesEmpty() const;
    bool allMailboxesEmpty() const;

    ParallelEngineConfig cfg_;
    unsigned workers_ = 1;
    std::vector<std::unique_ptr<EventQueue>> queues_;
    std::vector<std::unique_ptr<SpscMailbox>> boxes_;
    std::unique_ptr<ThreadPool> pool_;

    /** Per-source-island send sequence counters (worker-owned during
     *  phases, like the mailbox producer ends). */
    std::vector<std::uint64_t> sendSeq_;
    /** Per-source-island sent counters, summed by crossSent(). */
    std::vector<std::uint64_t> sentCount_;

    /** First tick not yet executed; epochs covered are [0, nextTick_). */
    Tick nextTick_ = 0;
    std::uint64_t crossDelivered_ = 0;
    std::uint64_t epochs_ = 0;
    /** Reused barrier merge scratch (pooled across epochs). */
    std::vector<CrossEvent> scratch_;
};

} // namespace odbsim::sim

#endif // ODBSIM_SIM_PARALLEL_ENGINE_HH
