#include "sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace odbsim
{

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::reset()
{
    n_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    sum_ = 0.0;
}

double
RunningStat::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    odbsim_assert(hi > lo && buckets > 0, "bad histogram geometry");
    width_ = (hi - lo) / static_cast<double>(buckets);
}

void
Histogram::add(double x, std::uint64_t weight)
{
    std::size_t idx;
    if (x < lo_) {
        underflow_ += weight;
        idx = 0;
    } else if (x >= hi_) {
        overflow_ += weight;
        idx = counts_.size() - 1;
    } else {
        idx = static_cast<std::size_t>((x - lo_) / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
    }
    counts_[idx] += weight;
    total_ += weight;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    underflow_ = 0;
    overflow_ = 0;
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return lo_;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(total_);
    double cum = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double next = cum + static_cast<double>(counts_[i]);
        if (next >= target) {
            const double frac =
                counts_[i] ? (target - cum) / static_cast<double>(counts_[i])
                           : 0.0;
            return bucketLow(i) + frac * width_;
        }
        cum = next;
    }
    return hi_;
}

} // namespace odbsim
