/**
 * @file
 * Exact division-free modulo by a runtime-constant divisor, after
 * Lemire, Kaser & Kurz, "Faster remainder by direct computation"
 * (2019), widened to 128 fractional bits so it is exact for every
 * 64-bit dividend.
 *
 * The buffer cache maps hashed block ids onto its (non-power-of-two)
 * frame count on every Touch action; a 64-bit hardware `div` there
 * costs tens of cycles on the studied-era cores, while this costs
 * four multiplies. Exactness matters: metaAddr() feeds the simulated
 * address stream, so the bit-exactness contract (docs/ARCHITECTURE.md)
 * requires fastmod(n) == n % d for every input.
 *
 * Correctness sketch: let M = ceil(2^128 / d) = (2^128 + e) / d with
 * 0 <= e < d. For n = q*d + r, M*n mod 2^128 = q*e + r*M (no wrap,
 * since (q*e + r*M)*d = 2^128*r + e*n < 2^128*d), and multiplying by
 * d gives floor((M*n mod 2^128) * d / 2^128) = r + floor(e*n / 2^128)
 * = r, because e*n < d * 2^64 <= 2^128. So the result is exact for
 * all n < 2^64 and all d >= 1. (d = 1 wraps M to 0 and yields 0,
 * which is also correct.)
 */

#ifndef ODBSIM_SIM_FASTMOD_HH
#define ODBSIM_SIM_FASTMOD_HH

#include <cstdint>

#include "sim/logging.hh"

namespace odbsim::sim
{

/** Precomputed `% d` over 64-bit dividends, exact for all inputs. */
class FastMod64
{
  public:
    /** A divisor of 1 until reset(); mod() returns 0. */
    FastMod64() = default;

    explicit FastMod64(std::uint64_t divisor) { reset(divisor); }

    void
    reset(std::uint64_t divisor)
    {
        odbsim_assert(divisor >= 1, "fastmod divisor must be >= 1");
        d_ = divisor;
        // M = ceil(2^128 / d), computed as floor((2^128 - 1) / d) + 1
        // (d never divides 2^128 exactly except d a power of two, for
        // which the +1 carry is still the correct ceiling mod 2^128).
        const unsigned __int128 m =
            ~static_cast<unsigned __int128>(0) / divisor + 1;
        mLo_ = static_cast<std::uint64_t>(m);
        mHi_ = static_cast<std::uint64_t>(m >> 64);
    }

    std::uint64_t divisor() const { return d_; }

    /** n % divisor, without a division. */
    std::uint64_t
    mod(std::uint64_t n) const
    {
        // frac = (M * n) mod 2^128; only the low 64 bits of mHi_*n
        // survive the shift into the upper limb.
        const unsigned __int128 lo =
            static_cast<unsigned __int128>(mLo_) * n;
        const unsigned __int128 frac =
            lo + (static_cast<unsigned __int128>(mHi_ * n) << 64);
        // result = floor(frac * d / 2^128), assembled from the two
        // 64x64->128 partial products.
        const std::uint64_t frac_hi =
            static_cast<std::uint64_t>(frac >> 64);
        const std::uint64_t frac_lo = static_cast<std::uint64_t>(frac);
        const unsigned __int128 carry =
            (static_cast<unsigned __int128>(frac_lo) * d_) >> 64;
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(frac_hi) * d_ + carry) >> 64);
    }

  private:
    std::uint64_t d_ = 1;
    std::uint64_t mLo_ = 0;
    std::uint64_t mHi_ = 0;
};

} // namespace odbsim::sim

#endif // ODBSIM_SIM_FASTMOD_HH
