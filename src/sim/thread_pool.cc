#include "sim/thread_pool.hh"

#include "sim/logging.hh"

#include <chrono>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace odbsim
{

namespace
{

// Identity of the pool/worker currently executing this thread, used
// for nested submission (local-deque push, inline help).
thread_local ThreadPool *tlPool = nullptr;
thread_local unsigned tlWorker = 0;

void
pinThreadToCpu(unsigned cpu)
{
#if defined(__linux__)
    unsigned ncpu = std::thread::hardware_concurrency();
    if (ncpu == 0)
        return;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu % ncpu, &set);
    // Best effort: a failure (e.g. restricted cpuset) just leaves the
    // thread unpinned.
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
    (void)cpu;
#endif
}

} // namespace

// ---------------------------------------------------------------------------
// StealDeque

ThreadPool::StealDeque::StealDeque(std::size_t capacity)
{
    if (capacity < 2)
        capacity = 2;
    // Round up to a power of two so index & mask works.
    std::size_t cap = 2;
    while (cap < capacity)
        cap <<= 1;
    current_ = std::make_unique<Array>(cap);
    array_.store(current_.get());
}

ThreadPool::StealDeque::~StealDeque()
{
    // Workers have joined by now; anything still queued was never run
    // (possible only on fatal paths) — free it.
    std::int64_t t = top_.load();
    std::int64_t b = bottom_.load();
    Array *a = array_.load();
    for (std::int64_t i = t; i < b; ++i)
        delete a->cells[static_cast<std::size_t>(i) & a->mask].load();
}

ThreadPool::StealDeque::Array *
ThreadPool::StealDeque::grow(Array *a, std::int64_t top, std::int64_t bottom)
{
    auto bigger = std::make_unique<Array>(a->cap * 2);
    for (std::int64_t i = top; i < bottom; ++i) {
        bigger->cells[static_cast<std::size_t>(i) & bigger->mask].store(
            a->cells[static_cast<std::size_t>(i) & a->mask].load());
    }
    Array *raw = bigger.get();
    retired_.push_back(std::move(current_));
    current_ = std::move(bigger);
    array_.store(raw);
    return raw;
}

void
ThreadPool::StealDeque::push(Task *t)
{
    std::int64_t b = bottom_.load();
    std::int64_t tp = top_.load();
    Array *a = array_.load();
    if (b - tp >= static_cast<std::int64_t>(a->cap))
        a = grow(a, tp, b);
    a->cells[static_cast<std::size_t>(b) & a->mask].store(t);
    bottom_.store(b + 1);
}

ThreadPool::Task *
ThreadPool::StealDeque::pop()
{
    std::int64_t b = bottom_.load() - 1;
    Array *a = array_.load();
    bottom_.store(b);
    std::int64_t t = top_.load();
    if (t > b) {
        // Deque was empty; restore.
        bottom_.store(b + 1);
        return nullptr;
    }
    Task *task = a->cells[static_cast<std::size_t>(b) & a->mask].load();
    if (t != b)
        return task; // more than one element left: no race possible
    // Last element: race against concurrent steal()s via CAS on top.
    bool won = top_.compare_exchange_strong(t, t + 1);
    bottom_.store(b + 1);
    return won ? task : nullptr;
}

ThreadPool::Task *
ThreadPool::StealDeque::steal()
{
    std::int64_t t = top_.load();
    std::int64_t b = bottom_.load();
    if (t >= b)
        return nullptr;
    Array *a = array_.load();
    Task *task = a->cells[static_cast<std::size_t>(t) & a->mask].load();
    if (!top_.compare_exchange_strong(t, t + 1))
        return nullptr; // lost to the owner or another thief
    return task;
}

// ---------------------------------------------------------------------------
// ThreadPool

ThreadPool *
ThreadPool::current()
{
    return tlPool;
}

ThreadPool::ThreadPool(const ThreadPoolConfig &cfg) : cfg_(cfg)
{
    unsigned threads = cfg.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    deques_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        deques_.push_back(std::make_unique<StealDeque>());
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(injMutex_);
        if (joined_)
            return;
        stop_ = true;
        joined_ = true;
        ++wakeEpoch_;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::signalWork(bool all)
{
    {
        std::lock_guard<std::mutex> lock(injMutex_);
        ++wakeEpoch_;
    }
    if (all)
        cv_.notify_all();
    else
        cv_.notify_one();
}

void
ThreadPool::submitTask(Task *t, TaskPriority prio)
{
    if (tlPool == this) {
        // Nested submission: LIFO-push onto the submitting worker's
        // own deque; idle peers steal from the top (FIFO).
        deques_[tlWorker]->push(t);
        signalWork(false);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(injMutex_);
        if (stop_) {
            delete t;
            odbsim_fatal("ThreadPool: submit after shutdown");
        }
        if (prio == TaskPriority::High)
            injHigh_.push_back(t);
        else
            injNormal_.push_back(t);
        ++wakeEpoch_;
    }
    cv_.notify_one();
}

ThreadPool::Task *
ThreadPool::popInjectionLocked()
{
    if (!injHigh_.empty()) {
        Task *t = injHigh_.front();
        injHigh_.pop_front();
        return t;
    }
    if (!injNormal_.empty()) {
        Task *t = injNormal_.front();
        injNormal_.pop_front();
        return t;
    }
    return nullptr;
}

ThreadPool::Task *
ThreadPool::findTask(unsigned self)
{
    // 1. Own deque, newest first (cache-warm, nested jobs drain fast).
    if (Task *t = deques_[self]->pop())
        return t;
    // 2. Injection queue, High before Normal.
    {
        std::lock_guard<std::mutex> lock(injMutex_);
        if (Task *t = popInjectionLocked())
            return t;
    }
    // 3. Steal sweep over the peers, oldest task first per victim.
    unsigned n = static_cast<unsigned>(deques_.size());
    for (unsigned k = 1; k < n; ++k) {
        if (Task *t = deques_[(self + k) % n]->steal())
            return t;
    }
    return nullptr;
}

void
ThreadPool::runTask(Task *t)
{
    (*t)();
    delete t;
}

void
ThreadPool::runLoop(const std::shared_ptr<ForState> &st)
{
    for (;;) {
        std::size_t i = st->next.fetch_add(1);
        if (i >= st->n)
            break;
        try {
            st->body(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(st->m);
            if (!st->exc || i < st->excIdx) {
                st->exc = std::current_exception();
                st->excIdx = i;
            }
        }
        if (st->done.fetch_add(1) + 1 == st->n) {
            std::lock_guard<std::mutex> lock(st->m);
            st->cv.notify_all();
        }
    }
}

void
ThreadPool::helpUntilDone(const std::shared_ptr<ForState> &st, unsigned self)
{
    // Other runners of this job may still be executing indices on
    // peers; until they finish, keep the core busy with whatever work
    // is available (our deque, injection, steals) — this is what makes
    // nested parallelFor composable instead of deadlocking.
    while (st->done.load() < st->n) {
        if (Task *t = findTask(self)) {
            runTask(t);
            continue;
        }
        std::unique_lock<std::mutex> lock(st->m);
        if (st->done.load() < st->n)
            st->cv.wait_for(lock, std::chrono::milliseconds(1));
    }
}

void
ThreadPool::parallelForImpl(std::size_t n,
                            std::function<void(std::size_t)> fn)
{
    auto st = std::make_shared<ForState>();
    st->n = n;
    st->body = std::move(fn);

    bool onWorker = (tlPool == this);
    std::size_t runners = std::min<std::size_t>(n, size());
    // The calling worker claims indices inline, so spawn one runner
    // fewer; runners left unexecuted after the job drains see
    // next >= n and return immediately (ForState is shared, so a
    // stale runner in a deque can never dangle).
    std::size_t spawn = onWorker ? runners - 1 : runners;

    if (onWorker) {
        unsigned self = tlWorker;
        for (std::size_t r = 0; r < spawn; ++r)
            deques_[self]->push(new Task([st] { tlPool->runLoop(st); }));
        if (spawn > 0)
            signalWork(true);
        runLoop(st);
        helpUntilDone(st, self);
    } else {
        {
            std::lock_guard<std::mutex> lock(injMutex_);
            if (stop_)
                odbsim_fatal("ThreadPool: parallelFor after shutdown");
            for (std::size_t r = 0; r < spawn; ++r)
                injNormal_.push_back(new Task([st] { tlPool->runLoop(st); }));
            ++wakeEpoch_;
        }
        cv_.notify_all();
        std::unique_lock<std::mutex> lock(st->m);
        st->cv.wait(lock, [&] { return st->done.load() >= st->n; });
    }

    if (st->exc)
        std::rethrow_exception(st->exc);
}

void
ThreadPool::workerLoop(unsigned id)
{
    tlPool = this;
    tlWorker = id;
    if (cfg_.pinThreads)
        pinThreadToCpu(id);

    for (;;) {
        if (Task *t = findTask(id)) {
            runTask(t);
            continue;
        }
        // Nothing found: either exit (stopping) or sleep until new
        // work is signalled. The wakeEpoch_ recheck closes the race
        // where work arrives between our empty sweep and the wait.
        std::unique_lock<std::mutex> lock(injMutex_);
        if (stop_) {
            if (Task *t = popInjectionLocked()) {
                lock.unlock();
                runTask(t);
                continue;
            }
            lock.unlock();
            // One more full sweep so a task freshly pushed to a peer's
            // deque (nested spawn during drain) is not stranded.
            if (Task *t = findTask(id)) {
                runTask(t);
                continue;
            }
            return;
        }
        std::uint64_t epoch = wakeEpoch_;
        lock.unlock();
        if (Task *t = findTask(id)) {
            runTask(t);
            continue;
        }
        lock.lock();
        if (wakeEpoch_ == epoch && !stop_)
            cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
}

} // namespace odbsim
