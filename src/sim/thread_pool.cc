#include "sim/thread_pool.hh"

namespace odbsim
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stop_ set and queue drained
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

} // namespace odbsim
