/**
 * @file
 * Deterministic fault-injection plan.
 *
 * A FaultPlan is the single source of stochastic failure behaviour for
 * a run: it owns a dedicated Rng stream (forked from nothing the
 * healthy run consumes) and an absolute-tick schedule of drive events,
 * and every injected fault — transient I/O errors, degraded drives,
 * whole-drive failures, spontaneous transaction aborts, lock-wait
 * timeouts, and a mid-run instance crash — is drawn from it. Because
 * the plan's stream is separate from the workload's, and every
 * injection site is gated on a cheap enabled flag, a default
 * (fault-free) plan is *structurally inert*: it draws no random
 * numbers, schedules no events, and allocates nothing, so a run with
 * faults compiled in but disabled is bit-identical to one built
 * before the subsystem existed. docs/FAULTS.md states this contract;
 * tests/core/test_faults.cc enforces it whole-run.
 *
 * Knob validation happens at construction: out-of-range probabilities
 * and negative/NaN latencies fail fast through sim::logging instead
 * of silently corrupting a multi-hour sweep.
 */

#ifndef ODBSIM_SIM_FAULT_HH
#define ODBSIM_SIM_FAULT_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace odbsim::sim
{

/**
 * One scheduled drive event: at an absolute run time, a data drive
 * either degrades (service-time multiplier from then on) or fails
 * outright (the array re-routes its traffic to surviving drives).
 */
struct DriveFaultEvent
{
    double atMs = 0.0;         ///< Absolute sim time of the event.
    unsigned drive = 0;        ///< Data-drive index in the array.
    double degradeFactor = 1.0; ///< Service-time multiplier (>= 1).
    bool fail = false;         ///< Whole-drive failure (re-route).
};

/** Fault-injection knobs. The default is "no faults anywhere". */
struct FaultConfig
{
    /** @name Disk faults @{ */
    /** Probability a disk request hits a transient medium error and
     *  must be retried after controller backoff. */
    double diskTransientProb = 0.0;
    /** Retries before the controller gives up recovering the sector
     *  the fast way and completes via spare remap (latency-only
     *  degradation: the request still succeeds). */
    unsigned diskMaxRetries = 4;
    /** First retry backoff, ms; doubles per attempt up to the cap. */
    double diskRetryBackoffMs = 0.3;
    double diskRetryBackoffMaxMs = 5.0;
    /** Scheduled degrade/fail events on specific data drives. */
    std::vector<DriveFaultEvent> driveEvents;
    /** @} */

    /** @name Transaction faults @{ */
    /** Lock-wait timeout, ms; 0 disables timeouts. A timed-out waiter
     *  aborts its transaction and retries after client backoff. */
    double lockWaitTimeoutMs = 0.0;
    /** Probability a transaction spontaneously aborts mid-replay
     *  (constraint violation, client cancel), drawn at plan time. */
    double txnAbortProb = 0.0;
    /** Mean client retry backoff after an abort, ms (jittered). */
    double clientRetryBackoffMs = 1.0;
    /** @} */

    /** @name Crash + recovery @{ */
    /** Absolute sim time of the instance crash, ms; 0 disables. */
    double crashAtMs = 0.0;
    /** Redo-log read chunk during recovery, KB. */
    double recoveryReadChunkKb = 512.0;
    /** CPU cost of applying redo, instructions per KB. */
    double recoveryApplyInstrPerKb = 8000.0;
    /** Cap on redo replayed at recovery, MB (checkpointing bounds the
     *  window; the cap models the distance to the last checkpoint). */
    double recoveryRedoCapMb = 64.0;
    /** @} */
};

/** Injection counters (reset at beginMeasurement; crash/recovery
 *  tick marks survive resets so MTTR spans window boundaries). */
struct FaultStats
{
    std::uint64_t diskTransientErrors = 0;
    std::uint64_t diskRetriesExhausted = 0;
    std::uint64_t driveFailures = 0;
    std::uint64_t reroutedRequests = 0;
    std::uint64_t lockTimeouts = 0;
    std::uint64_t txnAborts = 0;
    std::uint64_t txnRetries = 0;
    std::uint64_t crashes = 0;
    Tick crashTick = 0;
    Tick recoveryEndTick = 0;
    std::uint64_t redoReplayedBytes = 0;
};

/**
 * The per-run fault plan: validated config + dedicated RNG stream +
 * injection counters. Components hold a FaultPlan* and consult it at
 * their injection sites; a default-constructed plan answers "no" to
 * every enabled flag without consuming randomness.
 */
class FaultPlan
{
  public:
    /** Inert plan: no faults, no RNG draws, no events. */
    FaultPlan() = default;

    /**
     * Validating constructor. Rejects NaN/negative latencies,
     * out-of-range probabilities, degrade factors below 1 and
     * out-of-range drive indices (checked later against the array)
     * via odbsim_fatal.
     */
    FaultPlan(const FaultConfig &cfg, std::uint64_t seed);

    const FaultConfig &config() const { return cfg_; }

    /** @name Enabled flags (cheap, branch-predictable gates) @{ */
    bool diskFaultsEnabled() const { return diskFaults_; }
    bool driveEventsEnabled() const { return !cfg_.driveEvents.empty(); }
    bool lockTimeoutEnabled() const { return cfg_.lockWaitTimeoutMs > 0.0; }
    bool txnAbortsEnabled() const { return cfg_.txnAbortProb > 0.0; }
    bool crashEnabled() const { return cfg_.crashAtMs > 0.0; }
    bool
    anyEnabled() const
    {
        return diskFaults_ || driveEventsEnabled() ||
               lockTimeoutEnabled() || txnAbortsEnabled() ||
               crashEnabled();
    }
    /** @} */

    /** @name Draws (only legal when the matching gate is enabled) @{ */
    /** Does this disk request hit a transient error? */
    bool drawDiskTransient() { return rng_.chance(cfg_.diskTransientProb); }

    /** Controller backoff before retry @p attempt (1-based):
     *  deterministic doubling, capped. */
    Tick diskBackoffTicks(unsigned attempt) const;

    /** Does this transaction spontaneously abort? */
    bool drawTxnAbort() { return rng_.chance(cfg_.txnAbortProb); }

    /** Replay position (action index in [0, n)) of the abort. */
    std::uint32_t
    drawAbortPoint(std::uint32_t n)
    {
        return n ? static_cast<std::uint32_t>(rng_.below(n)) : 0;
    }

    /** Jittered client backoff before retrying an aborted txn. */
    Tick drawClientBackoff();
    /** @} */

    FaultStats &stats() { return stats_; }
    const FaultStats &stats() const { return stats_; }

    Tick lockWaitTimeoutTicks() const { return lockTimeoutTicks_; }

    /**
     * Zero the injection counters at a measurement boundary. The
     * crash/recovery tick marks are preserved: MTTR is a whole-run
     * quantity and the crash may predate the window.
     */
    void resetCounters();

  private:
    FaultConfig cfg_;
    Rng rng_{0};
    FaultStats stats_;
    bool diskFaults_ = false;
    Tick lockTimeoutTicks_ = 0;
};

} // namespace odbsim::sim

#endif // ODBSIM_SIM_FAULT_HH
