#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace odbsim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
    // Derive the per-stream NURand C constant from the seed, as TPC-C
    // derives it per run.
    nurandC_ = splitmix64(x) % 1024;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    odbsim_assert(n > 0, "Rng::below needs a positive bound");
    // Multiply-shift bounded sampling (Lemire); bias is negligible for
    // the domain sizes used here.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    odbsim_assert(hi >= lo, "Rng::range needs hi >= lo");
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal(double mean, double stddev)
{
    if (haveSpareNormal_) {
        haveSpareNormal_ = false;
        return mean + stddev * spareNormal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double z0 = mag * std::cos(2.0 * M_PI * u2);
    spareNormal_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpareNormal_ = true;
    return mean + stddev * z0;
}

std::int64_t
Rng::nurand(std::int64_t a, std::int64_t x, std::int64_t y)
{
    const std::int64_t c = static_cast<std::int64_t>(nurandC_ % (a + 1));
    return (((range(0, a) | range(x, y)) + c) % (y - x + 1)) + x;
}

Rng
Rng::fork()
{
    return Rng(next());
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    odbsim_assert(n > 0, "Zipf domain must be positive");
    odbsim_assert(theta > 0.0 && theta < 1.0,
                  "Zipf theta must be in (0, 1)");
    alpha_ = 1.0 / (1.0 - theta);
    zetan_ = zeta(n, theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta(2, theta) / zetan_);
}

double
ZipfGenerator::zeta(std::uint64_t n, double theta)
{
    // Direct summation is O(n); acceptable because generators are built
    // once per table at load time with n bounded by table cardinality.
    // For very large domains, use the Euler-Maclaurin approximation.
    if (n > 1000000) {
        // Approximate tail by integral: sum_{i=1..n} i^-theta
        //   ~ zeta(1e6) + integral_{1e6}^{n} x^-theta dx.
        double head = zeta(1000000, theta);
        double a = 1e6, b = static_cast<double>(n);
        double tail = (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
                      (1.0 - theta);
        return head + tail;
    }
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += std::pow(1.0 / static_cast<double>(i), theta);
    return sum;
}

std::uint64_t
ZipfGenerator::sample(Rng &rng) const
{
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const double v =
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_);
    std::uint64_t r = static_cast<std::uint64_t>(v);
    return r >= n_ ? n_ - 1 : r;
}

} // namespace odbsim
