/**
 * @file
 * Fundamental simulation types: ticks, cycles, addresses and unit helpers.
 *
 * One simulation tick equals one picosecond. Picoseconds give exact
 * integer conversion for the 1.6 GHz Xeon MP clock used throughout the
 * study (625 ps per cycle) and enough range (uint64_t) for several days
 * of simulated time.
 */

#ifndef ODBSIM_SIM_TYPES_HH
#define ODBSIM_SIM_TYPES_HH

#include <cstdint>

namespace odbsim
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of CPU clock cycles. */
using Cycles = std::uint64_t;

/** A simulated virtual or physical address (byte granularity). */
using Addr = std::uint64_t;

/** Ticks per picosecond-based unit. */
constexpr Tick tickPerPs = 1;
constexpr Tick tickPerNs = 1000 * tickPerPs;
constexpr Tick tickPerUs = 1000 * tickPerNs;
constexpr Tick tickPerMs = 1000 * tickPerUs;
constexpr Tick tickPerSec = 1000 * tickPerMs;

/** Convert seconds (double) to ticks. */
constexpr Tick
ticksFromSeconds(double s)
{
    return static_cast<Tick>(s * static_cast<double>(tickPerSec));
}

/** Convert ticks to seconds (double). */
constexpr double
secondsFromTicks(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerSec);
}

/** Convert milliseconds (double) to ticks. */
constexpr Tick
ticksFromMs(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(tickPerMs));
}

/** Convert microseconds (double) to ticks. */
constexpr Tick
ticksFromUs(double us)
{
    return static_cast<Tick>(us * static_cast<double>(tickPerUs));
}

/**
 * Fixed CPU clock helper: converts between cycles and ticks for a core
 * running at a given frequency.
 */
class ClockDomain
{
  public:
    explicit ClockDomain(double freq_hz)
        : freqHz_(freq_hz),
          ticksPerCycle_(static_cast<double>(tickPerSec) / freq_hz)
    {}

    /** Clock frequency in Hz. */
    double frequency() const { return freqHz_; }

    /** Picoseconds covered by one cycle (may be fractional). */
    double ticksPerCycle() const { return ticksPerCycle_; }

    /** Convert a cycle count to ticks (rounded to nearest tick). */
    Tick
    cyclesToTicks(double cycles) const
    {
        return static_cast<Tick>(cycles * ticksPerCycle_ + 0.5);
    }

    /** Convert a tick span to (fractional) cycles. */
    double
    ticksToCycles(Tick t) const
    {
        return static_cast<double>(t) / ticksPerCycle_;
    }

  private:
    double freqHz_;
    double ticksPerCycle_;
};

/** Common storage sizes. */
constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;
constexpr std::uint64_t GiB = 1024 * MiB;

} // namespace odbsim

#endif // ODBSIM_SIM_TYPES_HH
