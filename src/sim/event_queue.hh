/**
 * @file
 * The discrete-event simulation kernel: events, the global event queue,
 * and the Simulator driver that advances simulated time.
 *
 * Events scheduled for the same tick fire in scheduling order (FIFO),
 * which keeps runs deterministic for a fixed seed.
 */

#ifndef ODBSIM_SIM_EVENT_QUEUE_HH
#define ODBSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace odbsim
{

class EventQueue;

/**
 * Handle to a scheduled event; allows cancellation without searching
 * the queue (the queue entry is marked dead and skipped on pop).
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if the handle refers to a still-pending event. */
    bool pending() const;

    /** Cancel the event if still pending. */
    void cancel();

  private:
    friend class EventQueue;
    struct Slot
    {
        bool cancelled = false;
        bool fired = false;
    };
    explicit EventHandle(std::shared_ptr<Slot> slot)
        : slot_(std::move(slot))
    {}

    std::shared_ptr<Slot> slot_;
};

/**
 * Time-ordered queue of callback events.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Schedule a callback at an absolute tick (>= curTick). */
    EventHandle schedule(Tick when, Callback cb);

    /** Schedule a callback after a relative delay. */
    EventHandle
    scheduleAfter(Tick delay, Callback cb)
    {
        return schedule(curTick_ + delay, std::move(cb));
    }

    /** True if no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (non-cancelled) pending events. */
    std::size_t size() const { return live_; }

    /**
     * Fire the next event (advancing curTick to its scheduled time).
     * @return false if the queue was empty.
     */
    bool step();

    /**
     * Run until the queue drains or simulated time reaches the limit.
     * Events scheduled exactly at @p limit do fire.
     * @return the tick at which execution stopped.
     */
    Tick run(Tick limit);

    /** Run until the queue is empty. */
    Tick runAll();

    /** Total number of events fired so far. */
    std::uint64_t eventsFired() const { return fired_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
        std::shared_ptr<EventHandle::Slot> slot;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t fired_ = 0;
    std::size_t live_ = 0;
};

} // namespace odbsim

#endif // ODBSIM_SIM_EVENT_QUEUE_HH
