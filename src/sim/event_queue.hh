/**
 * @file
 * The discrete-event simulation kernel: events, the global event queue,
 * and the Simulator driver that advances simulated time.
 *
 * Events scheduled for the same tick fire in scheduling order (FIFO),
 * which keeps runs deterministic for a fixed seed.
 *
 * The queue is built for the hot path: callbacks live in a chunked
 * slab of reusable slots (addressed by index + generation, so handles
 * stay O(1) and safe across slot reuse), and callback captures up to
 * EventQueue::smallCallbackBytes are stored inline. Slot addresses are
 * stable — chunks are never reallocated — so a callback is constructed
 * directly in its slot at schedule() time and invoked in place when it
 * fires: scheduling performs no heap allocation and no type-erased
 * moves once the slab is warm.
 *
 * Two orderings are available over that storage, selected at
 * construction:
 *
 *  - EventQueueKind::wheel (the default): a hierarchical timer wheel —
 *    kWheelLevels levels of kWheelBuckets buckets, one occupancy
 *    bitmask per level — giving O(1) amortized schedule and fire at
 *    high event density. Level-0 buckets are single-tick cohorts, so
 *    the same-tick FIFO contract is restored by one seq sort per
 *    cohort at fire time. Events beyond the wheel horizon (or in a
 *    different 2^48-tick block than the wheel position) wait in a
 *    heap-ordered overflow and are cascaded into the wheel when the
 *    position reaches their block.
 *
 *  - EventQueueKind::heap: the previous global binary heap of 24-byte
 *    POD entries with lazy cancel reclamation. Kept as the differential
 *    oracle for the wheel (both fire in identical (when, seq) order,
 *    so whole runs are bit-identical across kinds) and for A/B
 *    measurement in bench_hotpath.
 */

#ifndef ODBSIM_SIM_EVENT_QUEUE_HH
#define ODBSIM_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/small_function.hh"
#include "sim/types.hh"

namespace odbsim
{

class EventQueue;

/** Ordering structure used by an EventQueue (see file comment). */
enum class EventQueueKind : std::uint8_t
{
    wheel, ///< hierarchical timer wheel + far-future overflow heap
    heap,  ///< single binary heap (the pre-wheel implementation)
};

/**
 * Handle to a scheduled event; allows cancellation without searching
 * the queue (wheel entries are unlinked in O(1); heap/overflow entries
 * are marked dead and skipped on pop).
 *
 * Handles are cheap value types: copies refer to the same event, so
 * pending()/cancel() agree across copies. A handle must not be used
 * after its EventQueue has been destroyed.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if the handle refers to a still-pending event. */
    bool pending() const;

    /** Cancel the event if still pending (otherwise a no-op). */
    void cancel();

  private:
    friend class EventQueue;
    EventHandle(EventQueue *q, std::uint32_t idx, std::uint32_t gen)
        : q_(q), idx_(idx), gen_(gen)
    {}

    EventQueue *q_ = nullptr;
    std::uint32_t idx_ = 0;
    std::uint32_t gen_ = 0;
};

/**
 * Time-ordered queue of callback events.
 */
class EventQueue
{
  public:
    /** Captures up to this size are stored inline (no allocation). */
    static constexpr std::size_t smallCallbackBytes = 112;

    using Callback = SmallFunction<void(), smallCallbackBytes>;

    explicit EventQueue(EventQueueKind kind = EventQueueKind::wheel);

    /** Which ordering structure this queue was built with. */
    EventQueueKind kind() const { return kind_; }

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * Contract: @p when must be >= curTick(). Debug builds enforce
     * this with a panic; release builds clamp a past tick to curTick()
     * so the event still fires (after all events already pending at
     * the current tick).
     *
     * The callable is constructed directly in its slab slot — pass
     * the lambda itself (not a pre-wrapped std::function) to stay on
     * the allocation-free path.
     */
    template <typename F>
    EventHandle
    schedule(Tick when, F &&cb)
    {
        const EventHandle h = scheduleSlot(when);
        slotAt(h.idx_).cb = std::forward<F>(cb);
        return h;
    }

    /** Schedule a callback after a relative delay. */
    template <typename F>
    EventHandle
    scheduleAfter(Tick delay, F &&cb)
    {
        return schedule(curTick_ + delay, std::forward<F>(cb));
    }

    /** True if no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live pending events (cancelled entries excluded). */
    std::size_t size() const { return live_; }

    /**
     * Fire the next event (advancing curTick to its scheduled time).
     * @return false if the queue was empty.
     */
    bool step();

    /**
     * Run until the queue drains or simulated time reaches the limit.
     * Events scheduled exactly at @p limit do fire.
     * @return the tick at which execution stopped.
     */
    Tick run(Tick limit);

    /** Run until the queue is empty. */
    Tick runAll();

    /** Total number of events fired so far. */
    std::uint64_t eventsFired() const { return fired_; }

    /** @name Wheel geometry (compile-time, exposed for tests) @{ */
    /** log2 of buckets per level. */
    static constexpr unsigned kWheelLevelShift = 6;
    /** Buckets per level. */
    static constexpr unsigned kWheelBuckets = 1u << kWheelLevelShift;
    /** Number of wheel levels. */
    static constexpr unsigned kWheelLevels = 8;
    /**
     * Ticks addressable by the wheel from the current position. Events
     * in a different 2^48-tick block than the wheel position wait in
     * the overflow heap (~281 simulated seconds per block at 1 tick =
     * 1 ps).
     */
    static constexpr Tick kWheelHorizon =
        Tick{1} << (kWheelLevelShift * kWheelLevels);
    /** @} */

  private:
    friend class EventHandle;

    static constexpr std::uint32_t noSlot = 0xffffffffu;
    /** Slots per slab chunk (chunks are never moved, so slot
     *  addresses are stable across slab growth). */
    static constexpr std::uint32_t chunkShift = 9;
    static constexpr std::uint32_t chunkSlots = 1u << chunkShift;

    /** Where a live slot currently lives (wheel kind only). */
    enum class Where : std::uint8_t
    {
        none,     ///< free, or owned by the heap kind (always lazy)
        bucket,   ///< linked into a wheel bucket
        overflow, ///< parked in the overflow heap
        due,      ///< collected into the current firing cohort
    };

    /**
     * One slab entry. The generation counter is bumped when the event
     * fires or a cancelled entry is reclaimed, which invalidates every
     * outstanding handle to the old occupant before the slot is
     * reused. The wheel kind additionally records the ordering key
     * (when, seq), the doubly-linked bucket neighbours, and the
     * level/bucket coordinates needed for O(1) unlink on cancel.
     */
    struct Slot
    {
        Callback cb;
        Tick when = 0;
        std::uint64_t seq = 0;
        std::uint32_t gen = 0;
        std::uint32_t next = noSlot; ///< bucket link, or freelist link
        std::uint32_t prev = noSlot;
        Where where = Where::none;
        bool cancelled = false;
        std::uint8_t level = 0;
        std::uint8_t bucket = 0;
    };

    /** Heap entry: ordering key plus the slab index — POD, 24 bytes.
     *  Used by the heap kind's single heap and the wheel's overflow. */
    struct HeapItem
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t idx;
    };

    /** Max-heap comparator under which the earliest event is on top. */
    struct Later
    {
        bool
        operator()(const HeapItem &a, const HeapItem &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Slot &
    slotAt(std::uint32_t idx)
    {
        return chunks_[idx >> chunkShift][idx & (chunkSlots - 1)];
    }
    const Slot &
    slotAt(std::uint32_t idx) const
    {
        return chunks_[idx >> chunkShift][idx & (chunkSlots - 1)];
    }

    /** Clamp/assert @p when, claim a slot and enqueue it; the caller
     *  fills the slot's callback. */
    EventHandle scheduleSlot(Tick when);

    bool slotPending(std::uint32_t idx, std::uint32_t gen) const;
    void cancelSlot(std::uint32_t idx, std::uint32_t gen);
    std::uint32_t acquireSlot();
    void releaseSlot(std::uint32_t idx);
    HeapItem popTop(std::vector<HeapItem> &heap);

    /** Fire the slot at @p idx (generation bump, callback, release). */
    void fireSlot(std::uint32_t idx);

    /** @name Wheel internals @{ */
    static Tick
    digitOf(Tick pos, unsigned level)
    {
        return (pos >> (kWheelLevelShift * level)) & (kWheelBuckets - 1);
    }
    static Tick
    blockOf(Tick pos)
    {
        return pos >> (kWheelLevelShift * kWheelLevels);
    }

    void linkIntoBucket(std::uint32_t idx, unsigned level, unsigned bucket);
    void unlinkFromBucket(std::uint32_t idx);
    /** Place a claimed slot (when/seq already set) into the wheel or
     *  the overflow heap, relative to the current wheel position. */
    void placeSlot(std::uint32_t idx);
    /** Advance wheelPos_ to @p pos, cascading every bucket whose
     *  level digit changed down to its new level. */
    void advanceWheelTo(Tick pos);
    /** Move overflow entries belonging to wheelPos_'s block into the
     *  wheel, reclaiming cancelled ones. */
    void drainOverflow();
    /**
     * Refill the due cohort with the earliest pending events without
     * advancing the wheel position past @p limit.
     * @return true if due_ holds an uncancelled event with
     *         when <= @p limit.
     */
    bool refillDue(Tick limit);
    /** @} */

    bool stepHeap();
    Tick runHeap(Tick limit);

    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::uint32_t slotCount_ = 0;
    std::vector<HeapItem> heap_; ///< heap kind: all events; wheel
                                 ///< kind: far-future overflow
    std::uint32_t freeHead_ = noSlot;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t fired_ = 0;
    std::size_t live_ = 0;
    EventQueueKind kind_ = EventQueueKind::wheel;

    /** Wheel position: <= curTick_ between events and <= every live
     *  event's when, so schedule() always inserts at or after it. */
    Tick wheelPos_ = 0;
    /** Per-level bucket occupancy bitmasks (bit b = bucket b). */
    std::array<std::uint64_t, kWheelLevels> occ_{};
    /** Bucket list heads, [level][bucket]. */
    std::array<std::array<std::uint32_t, kWheelBuckets>, kWheelLevels>
        bucketHead_;
    /** Current same-tick firing cohort, seq-sorted; reused storage. */
    std::vector<std::uint32_t> due_;
    std::size_t dueCursor_ = 0;
};

} // namespace odbsim

#endif // ODBSIM_SIM_EVENT_QUEUE_HH
