/**
 * @file
 * The discrete-event simulation kernel: events, the global event queue,
 * and the Simulator driver that advances simulated time.
 *
 * Events scheduled for the same tick fire in scheduling order (FIFO),
 * which keeps runs deterministic for a fixed seed.
 *
 * The queue is built for the hot path: callbacks live in a chunked
 * slab of reusable slots (addressed by index + generation, so handles
 * stay O(1) and safe across slot reuse), the priority heap holds only
 * 24-byte POD entries, and callback captures up to
 * EventQueue::smallCallbackBytes are stored inline. Slot addresses are
 * stable — chunks are never reallocated — so a callback is constructed
 * directly in its slot at schedule() time and invoked in place when it
 * fires: scheduling performs no heap allocation and no type-erased
 * moves once the slab is warm. Cancelled events are reclaimed lazily
 * when their heap entry surfaces.
 */

#ifndef ODBSIM_SIM_EVENT_QUEUE_HH
#define ODBSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/small_function.hh"
#include "sim/types.hh"

namespace odbsim
{

class EventQueue;

/**
 * Handle to a scheduled event; allows cancellation without searching
 * the queue (the slot is marked dead and skipped on pop).
 *
 * Handles are cheap value types: copies refer to the same event, so
 * pending()/cancel() agree across copies. A handle must not be used
 * after its EventQueue has been destroyed.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if the handle refers to a still-pending event. */
    bool pending() const;

    /** Cancel the event if still pending (otherwise a no-op). */
    void cancel();

  private:
    friend class EventQueue;
    EventHandle(EventQueue *q, std::uint32_t idx, std::uint32_t gen)
        : q_(q), idx_(idx), gen_(gen)
    {}

    EventQueue *q_ = nullptr;
    std::uint32_t idx_ = 0;
    std::uint32_t gen_ = 0;
};

/**
 * Time-ordered queue of callback events.
 */
class EventQueue
{
  public:
    /** Captures up to this size are stored inline (no allocation). */
    static constexpr std::size_t smallCallbackBytes = 112;

    using Callback = SmallFunction<void(), smallCallbackBytes>;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * Contract: @p when must be >= curTick(). Debug builds enforce
     * this with a panic; release builds clamp a past tick to curTick()
     * so the event still fires (after all events already pending at
     * the current tick).
     *
     * The callable is constructed directly in its slab slot — pass
     * the lambda itself (not a pre-wrapped std::function) to stay on
     * the allocation-free path.
     */
    template <typename F>
    EventHandle
    schedule(Tick when, F &&cb)
    {
        const EventHandle h = scheduleSlot(when);
        slotAt(h.idx_).cb = std::forward<F>(cb);
        return h;
    }

    /** Schedule a callback after a relative delay. */
    template <typename F>
    EventHandle
    scheduleAfter(Tick delay, F &&cb)
    {
        return schedule(curTick_ + delay, std::forward<F>(cb));
    }

    /** True if no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live pending events (cancelled entries excluded). */
    std::size_t size() const { return live_; }

    /**
     * Fire the next event (advancing curTick to its scheduled time).
     * @return false if the queue was empty.
     */
    bool step();

    /**
     * Run until the queue drains or simulated time reaches the limit.
     * Events scheduled exactly at @p limit do fire.
     * @return the tick at which execution stopped.
     */
    Tick run(Tick limit);

    /** Run until the queue is empty. */
    Tick runAll();

    /** Total number of events fired so far. */
    std::uint64_t eventsFired() const { return fired_; }

  private:
    friend class EventHandle;

    static constexpr std::uint32_t noSlot = 0xffffffffu;
    /** Slots per slab chunk (chunks are never moved, so slot
     *  addresses are stable across slab growth). */
    static constexpr std::uint32_t chunkShift = 9;
    static constexpr std::uint32_t chunkSlots = 1u << chunkShift;

    /**
     * One slab entry. The generation counter is bumped when the event
     * fires or a cancelled entry is reclaimed, which invalidates every
     * outstanding handle to the old occupant before the slot is
     * reused.
     */
    struct Slot
    {
        Callback cb;
        std::uint32_t gen = 0;
        std::uint32_t nextFree = noSlot;
        bool cancelled = false;
    };

    /** Heap entry: ordering key plus the slab index — POD, 24 bytes. */
    struct HeapItem
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t idx;
    };

    /** Max-heap comparator under which the earliest event is on top. */
    struct Later
    {
        bool
        operator()(const HeapItem &a, const HeapItem &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Slot &
    slotAt(std::uint32_t idx)
    {
        return chunks_[idx >> chunkShift][idx & (chunkSlots - 1)];
    }
    const Slot &
    slotAt(std::uint32_t idx) const
    {
        return chunks_[idx >> chunkShift][idx & (chunkSlots - 1)];
    }

    /** Clamp/assert @p when, claim a slot and push its heap entry;
     *  the caller fills the slot's callback. */
    EventHandle scheduleSlot(Tick when);

    bool slotPending(std::uint32_t idx, std::uint32_t gen) const;
    void cancelSlot(std::uint32_t idx, std::uint32_t gen);
    std::uint32_t acquireSlot();
    void releaseSlot(std::uint32_t idx);
    HeapItem popTop();

    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::uint32_t slotCount_ = 0;
    std::vector<HeapItem> heap_;
    std::uint32_t freeHead_ = noSlot;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t fired_ = 0;
    std::size_t live_ = 0;
};

} // namespace odbsim

#endif // ODBSIM_SIM_EVENT_QUEUE_HH
