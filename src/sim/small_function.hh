/**
 * @file
 * SmallFunction: a move-only callable wrapper with inline small-buffer
 * storage.
 *
 * std::function heap-allocates any capture larger than its tiny
 * implementation-defined buffer (two pointers on libstdc++), which made
 * every EventQueue::schedule call allocate. SmallFunction stores
 * callables up to a configurable inline capacity directly in the
 * object, so the simulator's event callbacks — lambdas capturing a
 * this-pointer plus a request struct — never touch the allocator on
 * the hot path. Oversized callables transparently fall back to the
 * heap, so correctness never depends on the capacity.
 */

#ifndef ODBSIM_SIM_SMALL_FUNCTION_HH
#define ODBSIM_SIM_SMALL_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace odbsim
{

template <typename Signature, std::size_t InlineBytes = 112>
class SmallFunction;

/**
 * Move-only type-erased callable with @p InlineBytes of in-object
 * storage.
 *
 * Unlike std::function it cannot be copied (event callbacks never
 * need to be) which lets move-only captures (unique_ptr, moved-in
 * request structs) be stored directly.
 */
template <typename R, typename... Args, std::size_t InlineBytes>
class SmallFunction<R(Args...), InlineBytes>
{
  public:
    SmallFunction() = default;
    SmallFunction(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    SmallFunction(F &&f)
    {
        construct(std::forward<F>(f));
    }

    SmallFunction(SmallFunction &&other) noexcept
    {
        moveFrom(std::move(other));
    }

    SmallFunction &
    operator=(SmallFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(std::move(other));
        }
        return *this;
    }

    SmallFunction &
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    /**
     * Assign a callable, constructing it directly in the inline
     * buffer — the one copy/move of the capture this wrapper ever
     * performs, which is what lets EventQueue build callbacks in
     * their slab slot with no intermediate type-erased moves.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    SmallFunction &
    operator=(F &&f)
    {
        reset();
        construct(std::forward<F>(f));
        return *this;
    }

    SmallFunction(const SmallFunction &) = delete;
    SmallFunction &operator=(const SmallFunction &) = delete;

    ~SmallFunction() { reset(); }

    /** Destroy the held callable, leaving the wrapper empty. */
    void
    reset()
    {
        if (!invoke_)
            return;
        manage_(nullptr, inline_ ? static_cast<void *>(buf_) : heap_);
        invoke_ = nullptr;
        manage_ = nullptr;
    }

    explicit operator bool() const { return invoke_ != nullptr; }

    R
    operator()(Args... args)
    {
        return invoke_(inline_ ? static_cast<void *>(buf_) : heap_,
                       std::forward<Args>(args)...);
    }

    /** True if callables of type @p Fn avoid the heap fallback. */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= InlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_move_constructible_v<Fn>;
    }

  private:
    using Invoke = R (*)(void *, Args &&...);
    using Manage = void (*)(void *dst, void *src);

    template <typename F>
    void
    construct(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            invoke_ = [](void *obj, Args &&...args) -> R {
                return (*static_cast<Fn *>(obj))(
                    std::forward<Args>(args)...);
            };
            // Inline storage: dst != nullptr relocates (move-construct
            // into dst, destroy src); dst == nullptr just destroys.
            manage_ = [](void *dst, void *src) {
                Fn *from = static_cast<Fn *>(src);
                if (dst)
                    ::new (dst) Fn(std::move(*from));
                from->~Fn();
            };
            inline_ = true;
        } else {
            heap_ = new Fn(std::forward<F>(f));
            invoke_ = [](void *obj, Args &&...args) -> R {
                return (*static_cast<Fn *>(obj))(
                    std::forward<Args>(args)...);
            };
            // Heap storage: moves steal the pointer, so manage only
            // ever deletes.
            manage_ = [](void *, void *src) {
                delete static_cast<Fn *>(src);
            };
            inline_ = false;
        }
    }

    void
    moveFrom(SmallFunction &&other) noexcept
    {
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        inline_ = other.inline_;
        if (!invoke_)
            return;
        if (inline_)
            manage_(buf_, other.buf_);
        else
            heap_ = other.heap_;
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
    }

    union {
        alignas(std::max_align_t) unsigned char buf_[InlineBytes];
        void *heap_;
    };
    Invoke invoke_ = nullptr;
    Manage manage_ = nullptr;
    bool inline_ = false;
};

} // namespace odbsim

#endif // ODBSIM_SIM_SMALL_FUNCTION_HH
