/**
 * @file
 * Free-list-pooled intrusive FIFO.
 *
 * Generalizes the pooled waiter-queue pattern from db::LockManager:
 * nodes live in one contiguous vector, linked by 32-bit indices, and
 * retired nodes go on a free list for reuse — so steady-state churn at
 * or below the high-water population never touches the heap. That is
 * the property the zero-allocation replay gate needs from every
 * hot-path queue (disk request queues, DBWR work queues, the scheduler
 * ready queue), including fault-injection requeues during retry and
 * backoff.
 *
 * The queue also exposes its intrusive links (head()/next()/erase())
 * so users that scan for the first *eligible* element — the scheduler
 * honouring CPU affinity — can unlink from the middle in O(1) once
 * the predecessor is known.
 *
 * Growth events are observable via allocations(): perf tests pin the
 * counter after warm-up and assert it stays flat.
 */

#ifndef ODBSIM_SIM_POOLED_FIFO_HH
#define ODBSIM_SIM_POOLED_FIFO_HH

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

namespace odbsim::sim
{

/** Pooled FIFO of @p T values linked by pool indices. */
template <typename T>
class PooledFifo
{
  public:
    /** Index sentinel: "no node". */
    static constexpr std::uint32_t npos = ~std::uint32_t{0};

    bool empty() const { return head_ == npos; }
    std::size_t size() const { return size_; }

    /** Pre-size the node pool for @p n simultaneously queued items. */
    void
    reserve(std::size_t n)
    {
        if (n > pool_.capacity()) {
            pool_.reserve(n);
            ++allocations_;
        }
    }

    /**
     * Pool growth events (perf-test hook). Steady-state churn at or
     * below the high-water population must not advance this.
     */
    std::uint64_t allocations() const { return allocations_; }

    /** Append a value; returns its node index (stable until popped). */
    std::uint32_t
    pushBack(T value)
    {
        const std::uint32_t n = allocNode();
        pool_[n].value = std::move(value);
        pool_[n].next = npos;
        if (tail_ == npos) {
            head_ = n;
        } else {
            pool_[tail_].next = n;
        }
        tail_ = n;
        ++size_;
        return n;
    }

    /** Oldest value (undefined when empty). */
    T &front() { return pool_[head_].value; }
    const T &front() const { return pool_[head_].value; }

    /** Remove and return the oldest value. */
    T
    popFront()
    {
        const std::uint32_t n = head_;
        head_ = pool_[n].next;
        if (head_ == npos)
            tail_ = npos;
        T out = std::move(pool_[n].value);
        freeNode(n);
        --size_;
        return out;
    }

    /** @name Intrusive traversal (for scan-and-unlink users) @{ */
    std::uint32_t head() const { return head_; }
    std::uint32_t next(std::uint32_t n) const { return pool_[n].next; }
    T &at(std::uint32_t n) { return pool_[n].value; }
    const T &at(std::uint32_t n) const { return pool_[n].value; }

    /**
     * Unlink node @p n whose predecessor is @p prev (npos when @p n is
     * the head) and return its value.
     */
    T
    erase(std::uint32_t prev, std::uint32_t n)
    {
        if (prev == npos) {
            head_ = pool_[n].next;
        } else {
            pool_[prev].next = pool_[n].next;
        }
        if (tail_ == n)
            tail_ = prev;
        T out = std::move(pool_[n].value);
        freeNode(n);
        --size_;
        return out;
    }
    /** @} */

  private:
    struct Node
    {
        T value{};
        std::uint32_t next = npos;
    };

    std::uint32_t
    allocNode()
    {
        std::uint32_t n;
        if (freeHead_ != npos) {
            n = freeHead_;
            freeHead_ = pool_[n].next;
        } else {
            if (pool_.size() == pool_.capacity())
                ++allocations_;
            n = static_cast<std::uint32_t>(pool_.size());
            pool_.emplace_back();
        }
        return n;
    }

    void
    freeNode(std::uint32_t n)
    {
        // Reset the payload so pooled nodes do not pin resources the
        // value owned (e.g. captured completion callbacks).
        pool_[n].value = T{};
        pool_[n].next = freeHead_;
        freeHead_ = n;
    }

    std::vector<Node> pool_;
    std::uint32_t head_ = npos;
    std::uint32_t tail_ = npos;
    std::uint32_t freeHead_ = npos;
    std::size_t size_ = 0;
    std::uint64_t allocations_ = 0;
};

} // namespace odbsim::sim

#endif // ODBSIM_SIM_POOLED_FIFO_HH
