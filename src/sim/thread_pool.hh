/**
 * @file
 * A work-stealing worker pool for running independent host-side tasks —
 * the execution engine behind parallel scaling studies and intra-point
 * parallelism (per-seed repeat replicas, host-parallel shard replay).
 * The simulator itself stays single-threaded and deterministic; the
 * pool only ever runs *self-contained* jobs concurrently, never parts
 * of one simulation's event loop.
 *
 * Pool v2 design:
 *  - Each worker owns a Chase–Lev-style deque: the owner pushes and
 *    pops at the bottom (LIFO, cache-warm), idle workers steal from
 *    the top (FIFO, oldest first). All index/cell accesses are C++
 *    atomics (no standalone fences), so the implementation is exactly
 *    as TSan models it.
 *  - External submit() lands in a global injection queue (two bands:
 *    TaskPriority::High drains before Normal); workers prefer their
 *    local deque, then injection, then stealing.
 *  - Nested submission: a task already running on a worker may call
 *    parallelFor() on its own pool without deadlock. The calling
 *    worker claims loop indices inline and then *helps* — draining its
 *    deque, the injection queue, and stealing from peers — until the
 *    nested job completes. External callers block on a condition
 *    variable instead.
 *  - Optional CPU-affinity pinning (ThreadPoolConfig::pinThreads) pins
 *    worker i to cpu i mod hardware_concurrency on Linux.
 *
 * Determinism contract (unchanged from pool v1): tasks must not share
 * mutable state (each ExperimentRunner::run call builds its own
 * System/Database/Workload and derives every RNG stream from the
 * per-run seed), so any interleaving of task execution produces
 * bit-identical results. Callers that need ordered output must collect
 * results by task index, not completion order — see ScalingStudy::run
 * and repeatRun. Stealing changes *which thread* runs an index, never
 * the result collected for it.
 */

#ifndef ODBSIM_SIM_THREAD_POOL_HH
#define ODBSIM_SIM_THREAD_POOL_HH

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace odbsim
{

/** Scheduling band for externally submitted tasks. */
enum class TaskPriority { Normal, High };

/** Construction options for ThreadPool. */
struct ThreadPoolConfig
{
    /** Worker count; 0 selects hardware_concurrency() (at least 1). */
    unsigned threads = 0;
    /** Pin worker i to cpu (i mod ncpu); Linux only, best effort. */
    bool pinThreads = false;
};

/**
 * Work-stealing thread pool.
 *
 * Workers are started in the constructor and joined in shutdown() (or
 * the destructor); the pool is reusable across any number of
 * submit()/parallelFor() rounds. Submitting from multiple threads is
 * safe; submitting after shutdown() is a fatal usage error
 * (odbsim_fatal), not an exception.
 */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers.
     *
     * @param threads Worker count; 0 selects
     *        std::thread::hardware_concurrency() (at least 1).
     */
    explicit ThreadPool(unsigned threads = 0)
        : ThreadPool(ThreadPoolConfig{threads, false})
    {
    }

    /** Start workers per @p cfg (count, pinning). */
    explicit ThreadPool(const ThreadPoolConfig &cfg);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Completes all pending tasks, then joins workers. */
    ~ThreadPool();

    /**
     * Complete all pending tasks and join the workers. Idempotent;
     * called implicitly by the destructor. After shutdown() any
     * submit()/parallelFor() is a fatal error.
     */
    void shutdown();

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * The pool whose worker is executing the calling thread's current
     * task, or nullptr if the caller is not a pool worker. Lets nested
     * code (repeatRun, host-parallel replay) fan out on the pool it is
     * already running on instead of spawning a transient pool.
     */
    static ThreadPool *current();

    /**
     * Enqueue @p fn for execution on a worker.
     *
     * Called from outside the pool, the task lands in the global
     * injection queue in the given priority band; called from a worker
     * of this pool, it is pushed onto that worker's local deque (LIFO)
     * where peers can steal it.
     *
     * @return A future for fn's result; exceptions thrown by fn are
     *         captured and rethrown from future::get().
     */
    template <typename F>
    auto
    submit(TaskPriority prio, F &&fn)
        -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using Ret = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<Ret()>>(
            std::forward<F>(fn));
        std::future<Ret> result = task->get_future();
        submitTask(new Task([task] { (*task)(); }), prio);
        return result;
    }

    /** submit() at TaskPriority::Normal. */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        return submit(TaskPriority::Normal, std::forward<F>(fn));
    }

    /**
     * Run fn(0) … fn(n-1) on the pool and block until all complete.
     *
     * Tasks may run in any order and concurrently; indices provide the
     * deterministic identity for collecting results. If one or more
     * invocations throw, every index is still executed (no partial
     * cancellation) and the exception of the lowest-indexed failing
     * task is rethrown here.
     *
     * May be called from inside a task running on this pool: the
     * calling worker executes indices inline and helps run other
     * pending tasks while waiting, so nested fan-out cannot deadlock
     * even on a single-worker pool.
     */
    template <typename Fn>
    void
    parallelFor(std::size_t n, Fn &&fn)
    {
        if (n == 0)
            return;
        if (n == 1) {
            fn(std::size_t{0});
            return;
        }
        parallelForImpl(n, std::function<void(std::size_t)>(
                               std::forward<Fn>(fn)));
    }

  private:
    /** Type-erased unit of work, heap-owned while queued. */
    using Task = std::function<void()>;

    /**
     * Chase–Lev work-stealing deque of Task*. The owning worker
     * push()es and pop()s at the bottom; any other thread steal()s at
     * the top. Implemented with seq_cst atomics throughout (hot enough
     * for host-side jobs, and free of the standalone fences TSan
     * cannot model). Retired grow arrays are kept alive until the
     * deque is destroyed so in-flight steals never dangle.
     */
    class StealDeque
    {
      public:
        explicit StealDeque(std::size_t capacity = 64);
        ~StealDeque();

        void push(Task *t); //!< owner only
        Task *pop();        //!< owner only
        Task *steal();      //!< any thread

      private:
        struct Array
        {
            explicit Array(std::size_t c) : cap(c), mask(c - 1), cells(c) {}
            std::size_t cap;
            std::size_t mask;
            std::vector<std::atomic<Task *>> cells;
        };

        Array *grow(Array *a, std::int64_t top, std::int64_t bottom);

        std::atomic<std::int64_t> top_{0};
        std::atomic<std::int64_t> bottom_{0};
        std::atomic<Array *> array_{nullptr};
        std::unique_ptr<Array> current_;              // owner-managed
        std::vector<std::unique_ptr<Array>> retired_; // owner-managed
    };

    /** Shared state of one parallelFor job (heap-held so stale runner
     *  tasks left in a deque after completion stay harmless). */
    struct ForState
    {
        std::size_t n = 0;
        std::function<void(std::size_t)> body;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::mutex m;
        std::condition_variable cv;
        std::exception_ptr exc;
        std::size_t excIdx = 0;
    };

    void parallelForImpl(std::size_t n, std::function<void(std::size_t)> fn);
    void submitTask(Task *t, TaskPriority prio);
    void signalWork(bool all);
    Task *findTask(unsigned self);
    Task *popInjectionLocked();
    void runTask(Task *t);
    void runLoop(const std::shared_ptr<ForState> &st);
    void helpUntilDone(const std::shared_ptr<ForState> &st, unsigned self);
    void workerLoop(unsigned id);

    ThreadPoolConfig cfg_;
    std::vector<std::unique_ptr<StealDeque>> deques_;
    std::vector<std::thread> workers_;

    std::mutex injMutex_;
    std::condition_variable cv_;
    std::deque<Task *> injHigh_;
    std::deque<Task *> injNormal_;
    std::uint64_t wakeEpoch_ = 0;
    bool stop_ = false;
    bool joined_ = false;
};

/**
 * Run fn(0) … fn(n-1) with host-side parallelism @p jobs, reusing the
 * caller's pool when already on one.
 *
 *  - n <= 1: runs inline.
 *  - jobs == 1: plain serial loop (the structurally-inert default).
 *  - already on a pool worker: nested parallelFor on that pool (the
 *    worker helps, so this composes with ScalingStudy's outer fan-out
 *    without oversubscribing).
 *  - otherwise: a transient pool of min(jobs, n) workers, where
 *    jobs == 0 selects hardware_concurrency().
 *
 * The index-identity determinism contract of ThreadPool::parallelFor
 * applies unchanged.
 */
template <typename Fn>
void
hostParallelFor(unsigned jobs, std::size_t n, Fn &&fn)
{
    if (n == 0)
        return;
    if (n == 1) {
        fn(std::size_t{0});
        return;
    }
    if (jobs == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    if (ThreadPool *pool = ThreadPool::current()) {
        pool->parallelFor(n, std::forward<Fn>(fn));
        return;
    }
    unsigned want = jobs;
    if (want == 0) {
        want = std::thread::hardware_concurrency();
        if (want == 0)
            want = 1;
    }
    want = static_cast<unsigned>(
        std::min<std::size_t>(want, n));
    if (want <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(want);
    pool.parallelFor(n, std::forward<Fn>(fn));
}

} // namespace odbsim

#endif // ODBSIM_SIM_THREAD_POOL_HH
