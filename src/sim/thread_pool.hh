/**
 * @file
 * A small fixed-size worker pool for running independent host-side
 * tasks — the execution engine behind parallel scaling studies. The
 * simulator itself stays single-threaded and deterministic; the pool
 * only ever runs *whole simulations* (or other self-contained jobs)
 * concurrently, never parts of one.
 *
 * Determinism contract: tasks must not share mutable state (each
 * ExperimentRunner::run call builds its own System/Database/Workload
 * and derives every RNG stream from the per-run seed), so any
 * interleaving of task execution produces bit-identical results.
 * Callers that need ordered output must collect results by task index,
 * not completion order — see ScalingStudy::run.
 */

#ifndef ODBSIM_SIM_THREAD_POOL_HH
#define ODBSIM_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace odbsim
{

/**
 * Fixed-size thread pool.
 *
 * Workers are started in the constructor and joined in the destructor;
 * the pool is reusable across any number of submit()/parallelFor()
 * rounds. Submitting from multiple threads is safe; submitting after
 * shutdown() throws.
 */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers.
     *
     * @param threads Worker count; 0 selects
     *        std::thread::hardware_concurrency() (at least 1).
     */
    explicit ThreadPool(unsigned threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Drains nothing: pending tasks are completed, then workers join. */
    ~ThreadPool();

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Enqueue @p fn for execution on a worker.
     *
     * @return A future for fn's result; exceptions thrown by fn are
     *         captured and rethrown from future::get().
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using Ret = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<Ret()>>(
            std::forward<F>(fn));
        std::future<Ret> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stop_)
                throw std::runtime_error("ThreadPool: submit after stop");
            tasks_.emplace([task] { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

    /**
     * Run fn(0) … fn(n-1) on the pool and block until all complete.
     *
     * Tasks may run in any order and concurrently; indices provide the
     * deterministic identity for collecting results. If one or more
     * invocations throw, every task is still completed (no partial
     * cancellation) and the exception of the lowest-indexed failing
     * task is rethrown here.
     */
    template <typename Fn>
    void
    parallelFor(std::size_t n, Fn &&fn)
    {
        std::vector<std::future<void>> pending;
        pending.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            pending.push_back(submit([&fn, i] { fn(i); }));
        std::exception_ptr first;
        for (auto &f : pending) {
            try {
                f.get();
            } catch (...) {
                if (!first)
                    first = std::current_exception();
            }
        }
        if (first)
            std::rethrow_exception(first);
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace odbsim

#endif // ODBSIM_SIM_THREAD_POOL_HH
