#include "sim/fault.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace odbsim::sim
{

namespace
{

/** A probability knob must be a finite value in [0, 1]. */
void
checkProb(double v, const char *name)
{
    if (!std::isfinite(v) || v < 0.0 || v > 1.0)
        odbsim_fatal("fault config: ", name, " must be in [0, 1], got ",
                     v);
}

/** A latency/size knob must be finite and non-negative. */
void
checkNonNegative(double v, const char *name)
{
    if (!std::isfinite(v) || v < 0.0)
        odbsim_fatal("fault config: ", name,
                     " must be finite and >= 0, got ", v);
}

} // namespace

FaultPlan::FaultPlan(const FaultConfig &cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed)
{
    checkProb(cfg.diskTransientProb, "diskTransientProb");
    checkProb(cfg.txnAbortProb, "txnAbortProb");
    checkNonNegative(cfg.diskRetryBackoffMs, "diskRetryBackoffMs");
    checkNonNegative(cfg.diskRetryBackoffMaxMs, "diskRetryBackoffMaxMs");
    checkNonNegative(cfg.lockWaitTimeoutMs, "lockWaitTimeoutMs");
    checkNonNegative(cfg.clientRetryBackoffMs, "clientRetryBackoffMs");
    checkNonNegative(cfg.crashAtMs, "crashAtMs");
    checkNonNegative(cfg.recoveryRedoCapMb, "recoveryRedoCapMb");
    if (!std::isfinite(cfg.recoveryReadChunkKb) ||
        cfg.recoveryReadChunkKb <= 0.0) {
        odbsim_fatal("fault config: recoveryReadChunkKb must be > 0, "
                     "got ", cfg.recoveryReadChunkKb);
    }
    checkNonNegative(cfg.recoveryApplyInstrPerKb,
                     "recoveryApplyInstrPerKb");
    for (const DriveFaultEvent &ev : cfg.driveEvents) {
        checkNonNegative(ev.atMs, "driveEvents[].atMs");
        if (!std::isfinite(ev.degradeFactor) || ev.degradeFactor < 1.0)
            odbsim_fatal("fault config: driveEvents[].degradeFactor "
                         "must be >= 1, got ", ev.degradeFactor);
    }
    diskFaults_ = cfg.diskTransientProb > 0.0;
    lockTimeoutTicks_ = ticksFromMs(cfg.lockWaitTimeoutMs);
}

Tick
FaultPlan::diskBackoffTicks(unsigned attempt) const
{
    // Deterministic doubling backoff, capped: the controller's retry
    // ladder is firmware, not chance.
    double ms = cfg_.diskRetryBackoffMs;
    for (unsigned i = 1; i < attempt; ++i)
        ms *= 2.0;
    ms = std::min(ms, cfg_.diskRetryBackoffMaxMs);
    return ticksFromMs(ms);
}

Tick
FaultPlan::drawClientBackoff()
{
    // Jittered uniformly in [0.5, 1.5) x the mean so retry storms
    // decorrelate instead of thundering back in lockstep.
    const double ms = cfg_.clientRetryBackoffMs * (0.5 + rng_.uniform());
    return ticksFromMs(ms);
}

void
FaultPlan::resetCounters()
{
    const Tick crash_tick = stats_.crashTick;
    const Tick recovery_end = stats_.recoveryEndTick;
    const std::uint64_t crashes = stats_.crashes;
    const std::uint64_t redo = stats_.redoReplayedBytes;
    stats_ = FaultStats{};
    stats_.crashTick = crash_tick;
    stats_.recoveryEndTick = recovery_end;
    stats_.crashes = crashes;
    stats_.redoReplayedBytes = redo;
}

} // namespace odbsim::sim
