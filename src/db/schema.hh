/**
 * @file
 * The ODB order-entry schema: warehouses, districts, customers,
 * orders, order lines, items, stock, history — plus undo segments —
 * laid out over a virtual volume of 8 KB blocks.
 *
 * Storage is *implicit*: every row maps deterministically to a
 * (block, slot) via fixed per-table geometry, and indexes are
 * ImplicitBTrees, so an 800-warehouse database (millions of blocks)
 * costs O(warehouses) memory. Mutable state (sequence counters, stock
 * quantities, balances) is materialized lazily.
 *
 * Geometry summary (blocks per warehouse, at the default row sizes):
 * customer heap 2500, stock heap 4000, orders 32, order-line 300,
 * new-order 2, history 200, warehouse 1, district 1, plus global item
 * heap and index extents — about 7.8 K blocks (~61 MB) per warehouse.
 * The paper quotes ~100 MB per warehouse including all overheads; the
 * DatabaseConfig default scales the buffer cache so the working-set /
 * cache ratio at a given W matches the paper's machine.
 */

#ifndef ODBSIM_DB_SCHEMA_HH
#define ODBSIM_DB_SCHEMA_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "db/btree.hh"
#include "db/trace.hh"
#include "db/types.hh"
#include "sim/flat_map.hh"

namespace odbsim::db
{

/** Logical sizing of the database. */
struct SchemaConfig
{
    unsigned warehouses = 10;
    std::uint32_t districtsPerWarehouse = 10;
    std::uint32_t customersPerDistrict = 3000;
    std::uint32_t itemCount = 100000;
    std::uint32_t stockPerWarehouse = 100000;
    /** Orders pre-loaded per district. */
    std::uint32_t initialOrdersPerDistrict = 3000;
    /** Order key-space capacity per district (addressing wraps). */
    std::uint32_t ordersPerDistrictCap = 8000;
    /** Order-line key-space capacity per district. */
    std::uint32_t olPerDistrictCap = 45000;
    /** New-order ring capacity per district. */
    std::uint32_t newOrderCap = 2000;
    /** History ring capacity per warehouse. */
    std::uint32_t historyCap = 36000;
    /** Undo-segment ring, in blocks (shared). */
    std::uint32_t undoBlocks = 65536;
    /**
     * Two-tier access skew: the hot fraction of picks lands in a
     * small prefix of the key domain (recently active customers /
     * popular items) — what keeps the buffer-cache hit ratio high on
     * a 2.8 GB cache even at hundreds of warehouses. @{
     */
    std::uint32_t hotCustomersPerDistrict() const
    {
        return customersPerDistrict / 30;
    }
    std::uint32_t hotItems() const { return itemCount / 40; }
    /** @} */
    std::uint64_t seed = 0x5eedULL;
};

/** Where a row lives. */
struct RowLoc
{
    BlockId block = 0;
    std::uint32_t slot = 0;
    std::uint32_t rowBytes = 0;
};

/** Facts about one order. */
struct OrderInfo
{
    std::uint32_t olSeqStart = 0;
    std::uint32_t customer = 0;
    std::uint8_t olCnt = 10;
};

/**
 * Schema geometry + functional database state.
 */
class Schema
{
  public:
    explicit Schema(const SchemaConfig &cfg);

    const SchemaConfig &config() const { return cfg_; }
    unsigned warehouses() const { return cfg_.warehouses; }

    /** Total blocks of the volume (heaps + indexes + undo). */
    std::uint64_t totalBlocks() const { return totalBlocks_; }

    /** Blocks regularly read by transactions, per warehouse (used to
     *  size buffer caches comparably to the paper's setup). */
    double readableBlocksPerWarehouse() const;

    /** @name Row addressing @{ */
    RowLoc warehouseRow(std::uint32_t w) const;
    RowLoc districtRow(std::uint32_t w, std::uint32_t d) const;
    RowLoc customerRow(std::uint32_t w, std::uint32_t d,
                       std::uint32_t c) const;
    RowLoc itemRow(std::uint32_t i) const;
    RowLoc stockRow(std::uint32_t w, std::uint32_t i) const;
    RowLoc orderRow(std::uint32_t w, std::uint32_t d,
                    std::uint32_t o) const;
    RowLoc orderLineRow(std::uint32_t w, std::uint32_t d,
                        std::uint32_t seq) const;
    RowLoc newOrderRow(std::uint32_t w, std::uint32_t d,
                       std::uint32_t o) const;
    RowLoc historyRow(std::uint32_t w, std::uint32_t seq) const;
    BlockId undoBlockAt(std::uint64_t cursor) const;
    /** @} */

    /** @name Index geometry @{ */
    const ImplicitBTree &customerIndex() const { return *custIdx_; }
    const ImplicitBTree &customerNameIndex() const { return *nameIdx_; }
    const ImplicitBTree &itemIndex() const { return *itemIdx_; }
    const ImplicitBTree &stockIndex() const { return *stockIdx_; }
    const ImplicitBTree &ordersIndex() const { return *ordersIdx_; }
    const ImplicitBTree &newOrderIndex() const { return *noIdx_; }
    /** @} */

    /** @name Index key builders @{ */
    std::uint64_t
    customerKey(std::uint32_t w, std::uint32_t d, std::uint32_t c) const
    {
        return (static_cast<std::uint64_t>(w) *
                    cfg_.districtsPerWarehouse +
                d) *
                   cfg_.customersPerDistrict +
               c;
    }
    std::uint64_t
    stockKey(std::uint32_t w, std::uint32_t i) const
    {
        return static_cast<std::uint64_t>(w) * cfg_.stockPerWarehouse + i;
    }
    std::uint64_t
    orderKey(std::uint32_t w, std::uint32_t d, std::uint32_t o) const
    {
        return district(w, d) * cfg_.ordersPerDistrictCap +
               o % cfg_.ordersPerDistrictCap;
    }
    std::uint64_t
    newOrderKey(std::uint32_t w, std::uint32_t d, std::uint32_t o) const
    {
        return district(w, d) * cfg_.newOrderCap + o % cfg_.newOrderCap;
    }
    /** @} */

    /** @name Mutable transactional state @{ */
    std::uint32_t nextOid(std::uint32_t w, std::uint32_t d) const;
    /** Create a new order for @p customer; returns its oid. */
    std::uint32_t allocateOrder(std::uint32_t w, std::uint32_t d,
                                std::uint32_t customer,
                                std::uint8_t ol_cnt);
    OrderInfo orderInfo(std::uint32_t w, std::uint32_t d,
                        std::uint32_t o) const;
    /** Oldest undelivered order of (w, d), if any. */
    std::optional<std::uint32_t> popDeliveryOrder(std::uint32_t w,
                                                  std::uint32_t d);
    std::uint64_t allocateUndo(std::uint32_t bytes);
    std::uint32_t allocateHistory(std::uint32_t w);
    /** Adjust a stock quantity (TPC-C restock rule applies). When
     *  @p net_applied is non-null it receives the net change actually
     *  made — the exact amount a rollback must subtract back out. */
    std::int32_t adjustStock(std::uint32_t w, std::uint32_t i,
                             std::int32_t delta,
                             std::int32_t *net_applied = nullptr);
    double adjustCustomerBalance(std::uint32_t w, std::uint32_t d,
                                 std::uint32_t c, double delta);
    double addWarehouseYtd(std::uint32_t w, double amt);
    double addDistrictYtd(std::uint32_t w, std::uint32_t d, double amt);

    /**
     * Reverse one plan-time mutation (transaction rollback). Applied
     * back to front over ActionTrace::undo; see PlanUndo for the
     * delta-reversal and sequence-gap semantics.
     */
    void applyPlanUndo(const PlanUndo &u);
    /** @} */

    /** Deterministic attribute derivation. */
    static std::uint64_t mix(std::uint64_t a, std::uint64_t b,
                             std::uint64_t c);

    /** Line count of a pre-loaded order. */
    std::uint8_t initialOlCnt(std::uint32_t w, std::uint32_t d,
                              std::uint32_t o) const;

    /**
     * Growth events of the lazily materialized row-state tables
     * (live orders, stock quantities, customer balances). The tables
     * are reserved from the warehouse count at construction, so this
     * only advances when the materialized population outgrows that
     * initial sizing — planner steady state over a stable working set
     * must keep it flat.
     */
    std::uint64_t
    stateAllocations() const
    {
        return liveOrders_.allocations() + stockQty_.allocations() +
               custBalance_.allocations();
    }

    /**
     * Emit block ids from hottest to coldest (for warm pre-fill);
     * stops when @p cb returns false.
     *
     * @param active Warehouses with bound clients; when non-null,
     *        per-warehouse heap/leaf stages cover only these (remote
     *        traffic touches the rest, but steady-state residency is
     *        dominated by home warehouses).
     */
    void enumerateWarm(const std::function<bool(BlockId)> &cb,
                       const std::vector<std::uint32_t> *active =
                           nullptr) const;

  private:
    std::uint64_t
    district(std::uint32_t w, std::uint32_t d) const
    {
        return static_cast<std::uint64_t>(w) * cfg_.districtsPerWarehouse +
               d;
    }

    SchemaConfig cfg_;

    /** @name Heap extents @{ */
    BlockId whBase_, distBase_, custBase_, histBase_, noBase_,
        ordBase_, olBase_, itemBase_, stockBase_, undoBase_;
    /** @} */
    std::uint64_t totalBlocks_ = 0;

    std::unique_ptr<ImplicitBTree> custIdx_, nameIdx_, itemIdx_,
        stockIdx_, ordersIdx_, noIdx_;

    /** Per-district counters (index = w * districts + d). */
    std::vector<std::uint32_t> nextOid_;
    std::vector<std::uint32_t> nextDelivery_;
    std::vector<std::uint32_t> nextOlSeq_;
    std::vector<double> districtYtd_;
    std::vector<double> warehouseYtd_;
    std::vector<std::uint32_t> historySeq_;
    std::uint64_t undoCursor_ = 0;

    /**
     * Orders created during the run (others are derived), and the
     * lazily materialized stock quantities / balances. Flat tables on
     * the planner hot path; reserved from the warehouse count in the
     * constructor so the warm working set materializes without a
     * rehash. @{
     */
    sim::FlatMap<std::uint64_t, OrderInfo> liveOrders_;
    sim::FlatMap<std::uint64_t, std::int32_t> stockQty_;
    sim::FlatMap<std::uint64_t, double> custBalance_;
    /** @} */
};

} // namespace odbsim::db

#endif // ODBSIM_DB_SCHEMA_HH
