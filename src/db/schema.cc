#include "db/schema.hh"

#include <algorithm>
#include <memory>

#include "sim/logging.hh"

namespace odbsim::db
{

namespace
{

/** @name Fixed row geometry (bytes per row / rows per 8 KB block) @{ */
constexpr std::uint32_t whRowBytes = 96;
constexpr std::uint32_t whRowsPerBlock = 1;
constexpr std::uint32_t distRowBytes = 106;
constexpr std::uint32_t distRowsPerBlock = 10;
constexpr std::uint32_t custRowBytes = 656;
constexpr std::uint32_t custRowsPerBlock = 12;
constexpr std::uint32_t histRowBytes = 46;
constexpr std::uint32_t histRowsPerBlock = 150;
constexpr std::uint32_t noRowBytes = 8;
constexpr std::uint32_t noRowsPerBlock = 1000;
constexpr std::uint32_t ordRowBytes = 32;
constexpr std::uint32_t ordRowsPerBlock = 250;
constexpr std::uint32_t olRowBytes = 54;
constexpr std::uint32_t olRowsPerBlock = 150;
constexpr std::uint32_t itemRowBytes = 82;
constexpr std::uint32_t itemRowsPerBlock = 96;
constexpr std::uint32_t stockRowBytes = 306;
constexpr std::uint32_t stockRowsPerBlock = 25;
/** @} */

/** @name Index occupancy @{ */
constexpr std::uint32_t custIdxKeysPerLeaf = 300;
constexpr std::uint32_t nameIdxKeysPerLeaf = 250;
constexpr std::uint32_t itemIdxKeysPerLeaf = 400;
constexpr std::uint32_t stockIdxKeysPerLeaf = 400;
constexpr std::uint32_t ordIdxKeysPerLeaf = 350;
constexpr std::uint32_t noIdxKeysPerLeaf = 500;
constexpr std::uint32_t idxFanout = 250;
/** @} */

std::uint64_t
heapBlocks(std::uint64_t rows, std::uint32_t rows_per_block)
{
    return (rows + rows_per_block - 1) / rows_per_block;
}

} // namespace

Schema::Schema(const SchemaConfig &cfg)
    : cfg_(cfg)
{
    odbsim_assert(cfg.warehouses >= 1, "schema needs >= 1 warehouse");
    const std::uint64_t w = cfg.warehouses;
    const std::uint64_t dd = w * cfg.districtsPerWarehouse;

    BlockId cursor = 0;
    auto extent = [&cursor](std::uint64_t blocks) {
        const BlockId base = cursor;
        cursor += blocks;
        return base;
    };

    itemBase_ = extent(heapBlocks(cfg.itemCount, itemRowsPerBlock));
    whBase_ = extent(heapBlocks(w, whRowsPerBlock));
    distBase_ = extent(heapBlocks(dd, distRowsPerBlock));
    custBase_ = extent(heapBlocks(dd * cfg.customersPerDistrict,
                                  custRowsPerBlock));
    histBase_ =
        extent(heapBlocks(w * cfg.historyCap, histRowsPerBlock));
    noBase_ = extent(heapBlocks(dd * cfg.newOrderCap, noRowsPerBlock));
    ordBase_ =
        extent(heapBlocks(dd * cfg.ordersPerDistrictCap, ordRowsPerBlock));
    olBase_ = extent(heapBlocks(dd * cfg.olPerDistrictCap, olRowsPerBlock));
    stockBase_ = extent(
        heapBlocks(w * cfg.stockPerWarehouse, stockRowsPerBlock));

    auto make_index = [&](std::uint64_t keys, std::uint32_t per_leaf) {
        auto t = std::make_unique<ImplicitBTree>(cursor, keys, per_leaf,
                                                 idxFanout);
        cursor += t->blocksUsed();
        return t;
    };
    custIdx_ = make_index(dd * cfg.customersPerDistrict,
                          custIdxKeysPerLeaf);
    nameIdx_ = make_index(dd * cfg.customersPerDistrict,
                          nameIdxKeysPerLeaf);
    itemIdx_ = make_index(cfg.itemCount, itemIdxKeysPerLeaf);
    stockIdx_ = make_index(w * cfg.stockPerWarehouse,
                           stockIdxKeysPerLeaf);
    ordersIdx_ = make_index(dd * cfg.ordersPerDistrictCap,
                            ordIdxKeysPerLeaf);
    noIdx_ = make_index(dd * cfg.newOrderCap, noIdxKeysPerLeaf);

    undoBase_ = extent(cfg.undoBlocks);
    totalBlocks_ = cursor;

    nextOid_.assign(dd, cfg.initialOrdersPerDistrict);
    // 30% of the pre-loaded orders are undelivered, as in TPC-C.
    nextDelivery_.assign(dd, cfg.initialOrdersPerDistrict * 7 / 10);
    nextOlSeq_.assign(dd, cfg.initialOrdersPerDistrict * 10);
    districtYtd_.assign(dd, 30000.0);
    warehouseYtd_.assign(w, 300000.0);
    historySeq_.assign(w, 0);

    // Size the lazily materialized state for the skew-favoured
    // working set (hot customers and stock the mix keeps revisiting)
    // so warm-up materializes it without a rehash. The tables still
    // grow past this as a long run's populations climb, but only at
    // high-water marks (see stateAllocations()).
    liveOrders_.reserve(dd * 64);
    stockQty_.reserve(w * 1024);
    custBalance_.reserve(dd * 64);
}

double
Schema::readableBlocksPerWarehouse() const
{
    // Blocks a transaction mix actually reads, per warehouse: customer
    // and stock heaps, their indexes, plus the order/order-line region
    // near the append frontier. Used to size buffer caches with the
    // same working-set ratio as the paper's 100 MB/warehouse setup.
    const double w = static_cast<double>(cfg_.warehouses);
    const double cust = static_cast<double>(heapBlocks(
        static_cast<std::uint64_t>(w) * cfg_.districtsPerWarehouse *
            cfg_.customersPerDistrict,
        custRowsPerBlock));
    const double stock = static_cast<double>(
        heapBlocks(static_cast<std::uint64_t>(w) * cfg_.stockPerWarehouse,
                   stockRowsPerBlock));
    const double idx = static_cast<double>(
        custIdx_->blocksUsed() + nameIdx_->blocksUsed() +
        stockIdx_->blocksUsed() + ordersIdx_->blocksUsed());
    // Recent orders/order lines: ~15% of the order extents are warm.
    const double recent =
        0.15 * static_cast<double>(
                   heapBlocks(static_cast<std::uint64_t>(w) *
                                  cfg_.districtsPerWarehouse *
                                  cfg_.olPerDistrictCap,
                              olRowsPerBlock));
    return (cust + stock + idx + recent) / w;
}

RowLoc
Schema::warehouseRow(std::uint32_t w) const
{
    return RowLoc{whBase_ + w / whRowsPerBlock, w % whRowsPerBlock,
                  whRowBytes};
}

RowLoc
Schema::districtRow(std::uint32_t w, std::uint32_t d) const
{
    const std::uint64_t key = district(w, d);
    return RowLoc{distBase_ + key / distRowsPerBlock,
                  static_cast<std::uint32_t>(key % distRowsPerBlock),
                  distRowBytes};
}

RowLoc
Schema::customerRow(std::uint32_t w, std::uint32_t d,
                    std::uint32_t c) const
{
    const std::uint64_t key = customerKey(w, d, c);
    return RowLoc{custBase_ + key / custRowsPerBlock,
                  static_cast<std::uint32_t>(key % custRowsPerBlock),
                  custRowBytes};
}

RowLoc
Schema::itemRow(std::uint32_t i) const
{
    return RowLoc{itemBase_ + i / itemRowsPerBlock, i % itemRowsPerBlock,
                  itemRowBytes};
}

RowLoc
Schema::stockRow(std::uint32_t w, std::uint32_t i) const
{
    const std::uint64_t key = stockKey(w, i);
    return RowLoc{stockBase_ + key / stockRowsPerBlock,
                  static_cast<std::uint32_t>(key % stockRowsPerBlock),
                  stockRowBytes};
}

RowLoc
Schema::orderRow(std::uint32_t w, std::uint32_t d, std::uint32_t o) const
{
    const std::uint64_t key = orderKey(w, d, o);
    return RowLoc{ordBase_ + key / ordRowsPerBlock,
                  static_cast<std::uint32_t>(key % ordRowsPerBlock),
                  ordRowBytes};
}

RowLoc
Schema::orderLineRow(std::uint32_t w, std::uint32_t d,
                     std::uint32_t seq) const
{
    const std::uint64_t key =
        district(w, d) * cfg_.olPerDistrictCap + seq % cfg_.olPerDistrictCap;
    return RowLoc{olBase_ + key / olRowsPerBlock,
                  static_cast<std::uint32_t>(key % olRowsPerBlock),
                  olRowBytes};
}

RowLoc
Schema::newOrderRow(std::uint32_t w, std::uint32_t d,
                    std::uint32_t o) const
{
    const std::uint64_t key = newOrderKey(w, d, o);
    return RowLoc{noBase_ + key / noRowsPerBlock,
                  static_cast<std::uint32_t>(key % noRowsPerBlock),
                  noRowBytes};
}

RowLoc
Schema::historyRow(std::uint32_t w, std::uint32_t seq) const
{
    const std::uint64_t key = static_cast<std::uint64_t>(w) *
                                  cfg_.historyCap +
                              seq % cfg_.historyCap;
    return RowLoc{histBase_ + key / histRowsPerBlock,
                  static_cast<std::uint32_t>(key % histRowsPerBlock),
                  histRowBytes};
}

BlockId
Schema::undoBlockAt(std::uint64_t cursor) const
{
    return undoBase_ + (cursor / blockBytes) % cfg_.undoBlocks;
}

std::uint32_t
Schema::nextOid(std::uint32_t w, std::uint32_t d) const
{
    return nextOid_[district(w, d)];
}

std::uint32_t
Schema::allocateOrder(std::uint32_t w, std::uint32_t d,
                      std::uint32_t customer, std::uint8_t ol_cnt)
{
    const std::uint64_t dd = district(w, d);
    const std::uint32_t oid = nextOid_[dd]++;
    OrderInfo info;
    info.olSeqStart = nextOlSeq_[dd];
    info.customer = customer;
    info.olCnt = ol_cnt;
    nextOlSeq_[dd] += ol_cnt;
    liveOrders_.findOrInsert((dd << 32) | oid) = info;
    return oid;
}

OrderInfo
Schema::orderInfo(std::uint32_t w, std::uint32_t d, std::uint32_t o) const
{
    const std::uint64_t dd = district(w, d);
    if (const OrderInfo *live = liveOrders_.find((dd << 32) | o))
        return *live;
    // Pre-loaded order: derive deterministically. Initial orders are
    // laid out with 10 line slots each.
    OrderInfo info;
    info.olSeqStart = o * 10;
    info.customer = static_cast<std::uint32_t>(
        mix(dd, o, 0xc0ffee) % cfg_.customersPerDistrict);
    info.olCnt = initialOlCnt(w, d, o);
    return info;
}

std::optional<std::uint32_t>
Schema::popDeliveryOrder(std::uint32_t w, std::uint32_t d)
{
    const std::uint64_t dd = district(w, d);
    if (nextDelivery_[dd] >= nextOid_[dd])
        return std::nullopt;
    return nextDelivery_[dd]++;
}

std::uint64_t
Schema::allocateUndo(std::uint32_t bytes)
{
    const std::uint64_t at = undoCursor_;
    undoCursor_ += bytes;
    return at;
}

std::uint32_t
Schema::allocateHistory(std::uint32_t w)
{
    return historySeq_[w]++;
}

std::int32_t
Schema::adjustStock(std::uint32_t w, std::uint32_t i, std::int32_t delta,
                    std::int32_t *net_applied)
{
    const std::uint64_t key = stockKey(w, i);
    bool inserted;
    std::int32_t &slot = stockQty_.findOrInsert(key, inserted);
    const std::int32_t before =
        inserted ? static_cast<std::int32_t>(50 + mix(w, i, 0x57) % 50)
                 : slot;
    std::int32_t qty = before + delta;
    if (qty < 10)
        qty += 91; // TPC-C restock rule.
    slot = qty;
    if (net_applied)
        *net_applied = qty - before;
    return qty;
}

double
Schema::adjustCustomerBalance(std::uint32_t w, std::uint32_t d,
                              std::uint32_t c, double delta)
{
    const std::uint64_t key = customerKey(w, d, c);
    bool inserted;
    double &slot = custBalance_.findOrInsert(key, inserted);
    double bal = (inserted ? -10.0 : slot) + delta;
    slot = bal;
    return bal;
}

double
Schema::addWarehouseYtd(std::uint32_t w, double amt)
{
    warehouseYtd_[w] += amt;
    return warehouseYtd_[w];
}

double
Schema::addDistrictYtd(std::uint32_t w, std::uint32_t d, double amt)
{
    districtYtd_[district(w, d)] += amt;
    return districtYtd_[district(w, d)];
}

void
Schema::applyPlanUndo(const PlanUndo &u)
{
    switch (u.kind) {
      case PlanUndo::Kind::StockDelta: {
        // Raw reversal of the recorded net delta — the restock rule
        // must not re-fire while undoing its own effect.
        const std::uint64_t key = stockKey(u.w, u.a);
        bool inserted;
        std::int32_t &slot = stockQty_.findOrInsert(key, inserted);
        if (inserted)
            slot = static_cast<std::int32_t>(50 + mix(u.w, u.a, 0x57) % 50);
        slot -= static_cast<std::int32_t>(u.amount);
        break;
      }
      case PlanUndo::Kind::CustomerBalance: {
        const std::uint64_t key = customerKey(u.w, u.d, u.a);
        bool inserted;
        double &slot = custBalance_.findOrInsert(key, inserted);
        if (inserted)
            slot = -10.0;
        slot -= u.amount;
        break;
      }
      case PlanUndo::Kind::WarehouseYtd:
        warehouseYtd_[u.w] -= u.amount;
        break;
      case PlanUndo::Kind::DistrictYtd:
        districtYtd_[district(u.w, u.d)] -= u.amount;
        break;
      case PlanUndo::Kind::EraseOrder: {
        const std::uint64_t dd = district(u.w, u.d);
        const std::size_t i =
            liveOrders_.findIndex((dd << 32) | u.a);
        if (i != decltype(liveOrders_)::npos)
            liveOrders_.eraseAt(i);
        break;
      }
      case PlanUndo::Kind::DeliveryCursor: {
        const std::uint64_t dd = district(u.w, u.d);
        // Guarded restore: only step the cursor back if no later
        // delivery advanced past this order in the meantime.
        if (nextDelivery_[dd] == u.a + 1)
            nextDelivery_[dd] = u.a;
        break;
      }
    }
}

std::uint64_t
Schema::mix(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    std::uint64_t x = a * 0x9e3779b97f4a7c15ULL + b;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x += c;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

std::uint8_t
Schema::initialOlCnt(std::uint32_t w, std::uint32_t d,
                     std::uint32_t o) const
{
    return static_cast<std::uint8_t>(
        5 + mix(district(w, d), o, 0x01) % 11);
}

void
Schema::enumerateWarm(const std::function<bool(BlockId)> &cb,
                      const std::vector<std::uint32_t> *active) const
{
    const std::uint32_t w_cnt = cfg_.warehouses;
    const std::uint32_t d_cnt = cfg_.districtsPerWarehouse;

    // Stage 1: index internals (root first) — the hottest blocks.
    const ImplicitBTree *indexes[] = {custIdx_.get(), nameIdx_.get(),
                                      stockIdx_.get(), itemIdx_.get(),
                                      ordersIdx_.get(), noIdx_.get()};
    for (const auto *idx : indexes) {
        for (unsigned l = idx->height(); l-- > 1;) {
            for (std::uint64_t n = 0; n < idx->levelNodes(l); ++n) {
                if (!cb(idx->levelBase(l) + n))
                    return;
            }
        }
    }

    // Stage 2: warehouse + district rows, per-district append frontier.
    for (std::uint32_t w = 0; w < w_cnt; ++w) {
        if (!cb(warehouseRow(w).block))
            return;
        if (!cb(districtRow(w, 0).block))
            return;
    }
    for (std::uint32_t w = 0; w < w_cnt; ++w) {
        for (std::uint32_t d = 0; d < d_cnt; ++d) {
            const std::uint64_t dd = district(w, d);
            if (!cb(orderRow(w, d, nextOid_[dd]).block))
                return;
            if (!cb(orderLineRow(w, d, nextOlSeq_[dd]).block))
                return;
            if (!cb(newOrderRow(w, d, nextOid_[dd]).block))
                return;
        }
        if (!cb(historyRow(w, historySeq_[w]).block))
            return;
    }

    // Stage 3: the (shared) item heap and item index leaves, hot
    // prefix first.
    const std::uint64_t item_blocks =
        heapBlocks(cfg_.itemCount, itemRowsPerBlock);
    const std::uint64_t hot_item_blocks =
        heapBlocks(cfg_.hotItems(), itemRowsPerBlock);
    for (std::uint64_t b = 0; b < hot_item_blocks; ++b) {
        if (!cb(itemBase_ + b))
            return;
    }
    for (std::uint64_t n = 0; n < itemIdx_->levelNodes(0); ++n) {
        if (!cb(itemIdx_->levelBase(0) + n))
            return;
    }
    for (std::uint64_t b = hot_item_blocks; b < item_blocks; ++b) {
        if (!cb(itemBase_ + b))
            return;
    }

    // The warehouse set the per-warehouse stages iterate: the home
    // warehouses when given, else all of them.
    std::vector<std::uint32_t> home_ws;
    if (active && !active->empty()) {
        home_ws = *active;
        std::sort(home_ws.begin(), home_ws.end());
        home_ws.erase(std::unique(home_ws.begin(), home_ws.end()),
                      home_ws.end());
    } else {
        home_ws.resize(w_cnt);
        for (std::uint32_t w = 0; w < w_cnt; ++w)
            home_ws[w] = w;
    }

    // Stage 4: the hot tier — the skew-favoured customer and stock
    // rows and their index leaves, interleaved across warehouses so
    // every warehouse's hot rows are covered before any cold block.
    const std::uint32_t hot_cust = cfg_.hotCustomersPerDistrict();
    const std::uint64_t hot_cust_blocks_per_d =
        heapBlocks(hot_cust, custRowsPerBlock);
    const std::uint64_t cust_blocks_per_d =
        heapBlocks(cfg_.customersPerDistrict, custRowsPerBlock);
    const std::uint64_t hot_stock_blocks =
        heapBlocks(cfg_.hotItems(), stockRowsPerBlock);
    const std::uint64_t stock_per_w =
        heapBlocks(cfg_.stockPerWarehouse, stockRowsPerBlock);
    const std::uint64_t hot_stock_leaves =
        (cfg_.hotItems() + stockIdxKeysPerLeaf - 1) / stockIdxKeysPerLeaf;
    const std::uint64_t hot_rounds =
        std::max<std::uint64_t>(hot_cust_blocks_per_d * d_cnt,
                                hot_stock_blocks);
    for (std::uint64_t r = 0; r < hot_rounds; ++r) {
        for (const std::uint32_t w : home_ws) {
            if (r < hot_cust_blocks_per_d * d_cnt) {
                const std::uint32_t d = static_cast<std::uint32_t>(
                    r / hot_cust_blocks_per_d);
                const std::uint64_t blk =
                    district(w, d) * cust_blocks_per_d +
                    r % hot_cust_blocks_per_d;
                if (!cb(custBase_ + blk))
                    return;
            }
            if (r < hot_stock_blocks) {
                if (!cb(stockBase_ + w * stock_per_w + r))
                    return;
            }
            if (r < d_cnt) {
                const std::uint64_t key = customerKey(
                    w, static_cast<std::uint32_t>(r), 0);
                if (!cb(custIdx_->lookup(key).leaf()))
                    return;
                if (!cb(nameIdx_->lookup(key).leaf()))
                    return;
            }
            if (r < hot_stock_leaves) {
                const std::uint64_t key =
                    stockKey(w, 0) + r * stockIdxKeysPerLeaf;
                if (!cb(stockIdx_->lookup(key).leaf()))
                    return;
            }
        }
    }

    // Stage 5: the delivery window — a few order and order-line
    // blocks past the delivery frontier, plus the index leaves over
    // them.
    for (const std::uint32_t w : home_ws) {
        for (std::uint32_t d = 0; d < d_cnt; ++d) {
            const std::uint64_t dd = district(w, d);
            const BlockId ord_lo = orderRow(w, d, nextDelivery_[dd]).block;
            for (BlockId b = ord_lo; b <= ord_lo + 3; ++b) {
                if (!cb(b))
                    return;
            }
            const BlockId ol_lo =
                orderLineRow(w, d, nextDelivery_[dd] * 10).block;
            for (BlockId b = ol_lo; b <= ol_lo + 8; ++b) {
                if (!cb(b))
                    return;
            }
            if (!cb(ordersIdx_->lookup(orderKey(w, d, nextDelivery_[dd]))
                        .leaf()))
                return;
            if (!cb(noIdx_->lookup(newOrderKey(w, d, nextOid_[dd]))
                        .leaf()))
                return;
        }
    }

    // Stage 6: cold blocks, round-robin across warehouses — a uniform
    // LRU sample of the remaining heaps and leaves.
    const std::uint64_t cust_per_w = cust_blocks_per_d * d_cnt;
    const std::uint64_t cil_per_w =
        static_cast<std::uint64_t>(d_cnt) * cfg_.customersPerDistrict /
        custIdxKeysPerLeaf;
    const std::uint64_t nil_per_w =
        static_cast<std::uint64_t>(d_cnt) * cfg_.customersPerDistrict /
        nameIdxKeysPerLeaf;
    const std::uint64_t sil_per_w =
        static_cast<std::uint64_t>(cfg_.stockPerWarehouse) /
        stockIdxKeysPerLeaf;
    const std::uint64_t max_round = std::max(cust_per_w, stock_per_w);
    for (std::uint64_t r = 0; r < max_round; ++r) {
        for (const std::uint32_t w : home_ws) {
            if (r < cil_per_w) {
                const std::uint64_t key =
                    customerKey(w, 0, 0) + r * custIdxKeysPerLeaf;
                if (!cb(custIdx_->lookup(key).leaf()))
                    return;
            }
            if (r < nil_per_w) {
                const std::uint64_t key =
                    customerKey(w, 0, 0) + r * nameIdxKeysPerLeaf;
                if (!cb(nameIdx_->lookup(key).leaf()))
                    return;
            }
            if (r < sil_per_w) {
                const std::uint64_t key =
                    stockKey(w, 0) + r * stockIdxKeysPerLeaf;
                if (!cb(stockIdx_->lookup(key).leaf()))
                    return;
            }
            if (r < cust_per_w) {
                if (!cb(custBase_ + w * cust_per_w + r))
                    return;
            }
            if (r < stock_per_w) {
                if (!cb(stockBase_ + w * stock_per_w + r))
                    return;
            }
        }
    }
}

} // namespace odbsim::db
