/**
 * @file
 * The database buffer cache — the dominant component of the SGA.
 *
 * Frames hold 8 KB database blocks; a hash map finds resident blocks
 * and an intrusive LRU list orders victims. Replacement hands dirty
 * victims to the caller (who forwards them to DBWR); frames being
 * filled by an in-flight DMA are exempt from eviction.
 *
 * The studied configuration dedicated 2.8 GB to this cache — 358,400
 * frames — which sets the cached/scaled crossover near 33 warehouses
 * of ~10.7 K blocks each.
 *
 * Every replayed Touch action probes the resident-block index, so it
 * is a sim::FlatMap reserved to the frame count at construction: the
 * resident population can never exceed the frame count, so steady
 * state never rehashes and lookups are one Fibonacci-hashed probe
 * into a contiguous slot array (mapAllocations() observes this).
 * metaAddr()'s bucket fold over the non-power-of-two frame count is a
 * precomputed exact fastmod rather than a 64-bit hardware divide.
 */

#ifndef ODBSIM_DB_BUFFER_CACHE_HH
#define ODBSIM_DB_BUFFER_CACHE_HH

#include <cstdint>
#include <vector>

#include "db/types.hh"
#include "mem/addr_space.hh"
#include "sim/fastmod.hh"
#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace odbsim::db
{

/** Result of a block lookup. */
struct BufferLookup
{
    bool hit = false;
    std::uint64_t frame = 0;
};

/** Result of allocating a frame for a missing block. */
struct BufferVictim
{
    std::uint64_t frame = 0;
    /** The frame previously held a block. */
    bool hadBlock = false;
    BlockId evictedBlock = invalidBlock;
    /** The evicted block was dirty and must reach DBWR. */
    bool wasDirty = false;
};

/**
 * LRU block cache over a fixed pool of frames.
 */
class BufferCache
{
  public:
    explicit BufferCache(std::uint64_t frames);

    std::uint64_t numFrames() const { return frames_.size() - 1; }
    std::uint64_t residentBlocks() const { return map_.size(); }

    /** Probe for @p b; hits are promoted to MRU. */
    BufferLookup lookup(BlockId b);

    /** Probe without LRU promotion or statistics. */
    BufferLookup
    peek(BlockId b) const
    {
        const std::uint32_t *f = map_.find(b);
        if (!f)
            return BufferLookup{false, 0};
        return BufferLookup{true, *f};
    }

    /**
     * Claim a frame for @p b (which must not be resident) and mark it
     * I/O-pending; the caller writes back the dirty victim if any and
     * calls fillComplete() when the DMA lands.
     */
    BufferVictim allocate(BlockId b);

    /** The DMA for @p frame finished; the frame becomes evictable. */
    void fillComplete(std::uint64_t frame);

    /** Mark the block in @p frame modified. */
    void markDirty(std::uint64_t frame);

    /** Whether the block in @p frame is dirty. */
    bool isDirty(std::uint64_t frame) const
    {
        return frames_[frame].dirty;
    }

    /** Block currently held by @p frame. */
    BlockId blockAt(std::uint64_t frame) const
    {
        return frames_[frame].block;
    }

    /**
     * Warm-up helper: make @p b resident at MRU with no I/O and no
     * statistics; @p dirty marks it modified (steady-state dirty
     * population). No-op if already resident or no free frame exists.
     */
    void prefill(BlockId b, bool dirty = false);

    /** Clean a resident block (DBWR finished writing it back). */
    void markClean(BlockId b);

    /** Virtual address of frame @p f (for the cache models). */
    Addr
    frameAddr(std::uint64_t f) const
    {
        return mem::addrmap::frameAddr(f, blockBytes);
    }

    /**
     * Virtual address of the hash-bucket/descriptor for @p b. The
     * fold onto the frame count is an exact fastmod (bit-identical to
     * `%`, asserted by test), so the per-Touch hot path never pays a
     * 64-bit hardware divide.
     */
    Addr
    metaAddr(BlockId b) const
    {
        const std::uint64_t bucket =
            frameMod_.mod(b * 0x9e3779b97f4a7c15ULL);
        return mem::addrmap::frameMetaAddr(bucket);
    }

    /** @name Statistics @{ */
    std::uint64_t gets() const { return gets_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t dirtyEvictions() const { return dirtyEvictions_; }
    double
    hitRatio() const
    {
        return gets_ ? 1.0 - static_cast<double>(misses_) /
                                 static_cast<double>(gets_)
                     : 0.0;
    }
    void resetStats();
    /** @} */

    /**
     * Growth events of the resident-block index (perf-test hook).
     * The index is reserved to the frame count at construction, so
     * this must never advance after the constructor returns.
     */
    std::uint64_t mapAllocations() const { return map_.allocations(); }

  private:
    struct Frame
    {
        BlockId block = invalidBlock;
        bool dirty = false;
        bool ioPending = false;
        std::uint32_t prev = 0;
        std::uint32_t next = 0;
    };

    void unlink(std::uint32_t f);
    void pushFront(std::uint32_t f);

    std::vector<Frame> frames_;
    sim::FlatMap<BlockId, std::uint32_t> map_;
    sim::FastMod64 frameMod_;
    /** frames_.size() acts as the list sentinel index. */
    std::uint32_t sentinel_;
    std::uint64_t nextFree_ = 0;

    std::uint64_t gets_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t dirtyEvictions_ = 0;
};

} // namespace odbsim::db

#endif // ODBSIM_DB_BUFFER_CACHE_HH
