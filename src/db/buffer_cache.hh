/**
 * @file
 * The database buffer cache — the dominant component of the SGA.
 *
 * Frames hold 8 KB database blocks; a hash map finds resident blocks
 * and an intrusive LRU list orders victims. Replacement hands dirty
 * victims to the caller (who forwards them to DBWR); frames being
 * filled by an in-flight DMA are exempt from eviction.
 *
 * The studied configuration dedicated 2.8 GB to this cache — 358,400
 * frames — which sets the cached/scaled crossover near 33 warehouses
 * of ~10.7 K blocks each.
 *
 * Every replayed Touch action probes the resident-block index, so it
 * is a sim::FlatMap reserved to the frame count at construction: the
 * resident population can never exceed the frame count, so steady
 * state never rehashes and lookups are one Fibonacci-hashed probe
 * into a contiguous slot array (mapAllocations() observes this).
 * metaAddr()'s bucket fold over the non-power-of-two frame count is a
 * precomputed exact fastmod rather than a 64-bit hardware divide.
 *
 * The cache is sharded by block hash into K independent
 * {index, LRU list, frame range} shards over one shared frame array
 * (K power of two, default 1). K=1 is structurally identical to the
 * unsharded layout — one shard owning every frame and the whole index
 * — so paper-scale runs are unchanged; K>1 partitions the frame pool
 * and gives each shard its own LRU, the shape a concurrent host needs
 * to drive the cache without a global serialization point (see
 * docs/SCALE.md). Frame-indexed operations (fillComplete, markDirty,
 * blockAt) are shard-agnostic: frame indices remain global.
 */

#ifndef ODBSIM_DB_BUFFER_CACHE_HH
#define ODBSIM_DB_BUFFER_CACHE_HH

#include <cstdint>
#include <vector>

#include "db/types.hh"
#include "mem/addr_space.hh"
#include "sim/fastmod.hh"
#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace odbsim::db
{

/** Result of a block lookup. */
struct BufferLookup
{
    bool hit = false;
    std::uint64_t frame = 0;
};

/** Result of allocating a frame for a missing block. */
struct BufferVictim
{
    std::uint64_t frame = 0;
    /** The frame previously held a block. */
    bool hadBlock = false;
    BlockId evictedBlock = invalidBlock;
    /** The evicted block was dirty and must reach DBWR. */
    bool wasDirty = false;
};

/**
 * LRU block cache over a fixed pool of frames.
 */
class BufferCache
{
  public:
    /** @param shards Shard count (power of two, 1..256); each shard
     *  needs at least 8 frames. */
    explicit BufferCache(std::uint64_t frames, unsigned shards = 1);

    std::uint64_t numFrames() const { return totalFrames_; }
    std::uint64_t residentBlocks() const;

    /** Shard count K this cache was built with. */
    unsigned shards() const { return shardCount_; }

    /** Shard owning @p b (stable for the life of the cache). */
    unsigned
    shardOf(BlockId b) const
    {
        // Distinct mixer from the FlatMap's Fibonacci hash and from
        // metaAddr()'s fold, so shard choice stays uncorrelated with
        // both the in-shard probe index and the descriptor bucket.
        return static_cast<unsigned>((b * 0xff51afd7ed558ccdULL) >> 56) &
               (shardCount_ - 1);
    }

    /** Probe for @p b; hits are promoted to MRU of their shard. */
    BufferLookup lookup(BlockId b);

    /** Probe without LRU promotion or statistics. */
    BufferLookup
    peek(BlockId b) const
    {
        const std::uint32_t *f = shards_[shardOf(b)].map.find(b);
        if (!f)
            return BufferLookup{false, 0};
        return BufferLookup{true, *f};
    }

    /**
     * Claim a frame for @p b (which must not be resident) and mark it
     * I/O-pending; the caller writes back the dirty victim if any and
     * calls fillComplete() when the DMA lands. The victim always comes
     * from @p b's own shard.
     */
    BufferVictim allocate(BlockId b);

    /** The DMA for @p frame finished; the frame becomes evictable. */
    void fillComplete(std::uint64_t frame);

    /** Mark the block in @p frame modified. */
    void markDirty(std::uint64_t frame);

    /** Whether the block in @p frame is dirty. */
    bool isDirty(std::uint64_t frame) const
    {
        return frames_[frame].dirty;
    }

    /** Block currently held by @p frame. */
    BlockId blockAt(std::uint64_t frame) const
    {
        return frames_[frame].block;
    }

    /**
     * Warm-up helper: make @p b resident at MRU with no I/O and no
     * statistics; @p dirty marks it modified (steady-state dirty
     * population). No-op if already resident or no free frame exists
     * in @p b's shard.
     */
    void prefill(BlockId b, bool dirty = false);

    /** Clean a resident block (DBWR finished writing it back). */
    void markClean(BlockId b);

    /** Virtual address of frame @p f (for the cache models). */
    Addr
    frameAddr(std::uint64_t f) const
    {
        return mem::addrmap::frameAddr(f, blockBytes);
    }

    /**
     * Virtual address of the hash-bucket/descriptor for @p b. The
     * fold onto the frame count is an exact fastmod (bit-identical to
     * `%`, asserted by test), so the per-Touch hot path never pays a
     * 64-bit hardware divide. The fold spans the whole frame pool
     * regardless of sharding — descriptor addresses are global.
     */
    Addr
    metaAddr(BlockId b) const
    {
        const std::uint64_t bucket =
            frameMod_.mod(b * 0x9e3779b97f4a7c15ULL);
        return mem::addrmap::frameMetaAddr(bucket);
    }

    /** @name Statistics (accumulated per shard, summed on read, so
     *  concurrent drivers of disjoint shards share no mutable state)
     *  @{ */
    std::uint64_t
    gets() const
    {
        std::uint64_t n = 0;
        for (const Shard &sh : shards_)
            n += sh.gets;
        return n;
    }
    std::uint64_t
    misses() const
    {
        std::uint64_t n = 0;
        for (const Shard &sh : shards_)
            n += sh.misses;
        return n;
    }
    std::uint64_t
    dirtyEvictions() const
    {
        std::uint64_t n = 0;
        for (const Shard &sh : shards_)
            n += sh.dirtyEvictions;
        return n;
    }
    double
    hitRatio() const
    {
        const std::uint64_t g = gets();
        return g ? 1.0 - static_cast<double>(misses()) /
                             static_cast<double>(g)
                 : 0.0;
    }
    void resetStats();
    /** @} */

    /**
     * Growth events of the resident-block indexes, summed over shards
     * (perf-test hook). Every shard's index is reserved to its frame
     * share at construction, so this must never advance after the
     * constructor returns.
     */
    std::uint64_t mapAllocations() const;

  private:
    struct Frame
    {
        BlockId block = invalidBlock;
        bool dirty = false;
        bool ioPending = false;
        std::uint32_t prev = 0;
        std::uint32_t next = 0;
    };

    /** One cache shard: index + LRU over its slice of the frames +
     *  counters. Everything a lookup/allocate mutates lives here (or
     *  in the shard's own frame range), so two shards can be driven
     *  concurrently without sharing state. */
    struct Shard
    {
        sim::FlatMap<BlockId, std::uint32_t> map;
        std::uint64_t nextFree = 0; ///< Next never-used frame index.
        std::uint64_t freeEnd = 0;  ///< One past the shard's last frame.
        std::uint32_t sentinel = 0; ///< LRU list head/tail anchor.
        std::uint64_t gets = 0;
        std::uint64_t misses = 0;
        std::uint64_t dirtyEvictions = 0;
    };

    void unlink(std::uint32_t f);
    void pushFront(Shard &sh, std::uint32_t f);

    std::vector<Frame> frames_;
    std::vector<Shard> shards_;
    sim::FastMod64 frameMod_;
    std::uint64_t totalFrames_ = 0;
    unsigned shardCount_ = 1;
};

} // namespace odbsim::db

#endif // ODBSIM_DB_BUFFER_CACHE_HH
