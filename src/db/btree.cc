#include "db/btree.hh"

#include "sim/logging.hh"

namespace odbsim::db
{

ImplicitBTree::ImplicitBTree(BlockId base, std::uint64_t capacity,
                             std::uint32_t keys_per_leaf,
                             std::uint32_t fanout)
    : base_(base), capacity_(capacity), keysPerLeaf_(keys_per_leaf),
      fanout_(fanout)
{
    odbsim_assert(capacity >= 1, "btree capacity must be positive");
    odbsim_assert(keys_per_leaf >= 1 && fanout >= 2,
                  "bad btree parameters");

    std::uint64_t nodes = (capacity + keys_per_leaf - 1) / keys_per_leaf;
    unsigned lvl = 0;
    levelNodes_[lvl++] = nodes;
    while (nodes > 1) {
        odbsim_assert(lvl < maxBtreeHeight, "btree too tall; capacity ",
                      capacity);
        nodes = (nodes + fanout - 1) / fanout;
        levelNodes_[lvl++] = nodes;
    }
    height_ = lvl;

    // Lay levels out top-down so the (hot) root/internals share a
    // compact extent prefix: root first, leaves last.
    BlockId cursor = base_;
    for (unsigned l = height_; l-- > 0;) {
        levelBase_[l] = cursor;
        cursor += levelNodes_[l];
    }
    totalBlocks_ = cursor - base_;
}

IndexPath
ImplicitBTree::lookup(std::uint64_t key) const
{
    odbsim_assert(key < capacity_, "btree key ", key,
                  " out of range (capacity ", capacity_, ")");
    IndexPath path;
    path.height = height_;

    const std::uint64_t leaf_idx = key / keysPerLeaf_;
    path.leafSlot = static_cast<std::uint32_t>(key % keysPerLeaf_);

    // Walk from root (level height-1) down to the leaf (level 0); the
    // node index at level l is the leaf index divided by fanout^l.
    std::uint64_t idx = leaf_idx;
    std::uint64_t divisor = 1;
    for (unsigned l = 1; l < height_; ++l)
        divisor *= fanout_;
    for (unsigned l = height_; l-- > 0;) {
        const std::uint64_t node_idx = leaf_idx / divisor;
        path.node[height_ - 1 - l] = levelBase_[l] + node_idx;
        divisor /= fanout_;
        if (divisor == 0)
            divisor = 1;
    }
    (void)idx;
    return path;
}

} // namespace odbsim::db
