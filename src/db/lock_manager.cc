#include "db/lock_manager.hh"

#include "sim/logging.hh"

namespace odbsim::db
{

std::uint32_t
LockManager::allocWaiter(os::Process *p)
{
    std::uint32_t n;
    if (freeHead_ != npos) {
        n = freeHead_;
        freeHead_ = pool_[n].next;
    } else {
        if (pool_.size() == pool_.capacity())
            ++poolAllocations_;
        n = static_cast<std::uint32_t>(pool_.size());
        pool_.emplace_back();
    }
    pool_[n].proc = p;
    pool_[n].next = npos;
    ++waiters_;
    return n;
}

void
LockManager::freeWaiter(std::uint32_t n)
{
    pool_[n].proc = nullptr;
    pool_[n].next = freeHead_;
    ++pool_[n].stamp; // Invalidate any pending timeout on this node.
    freeHead_ = n;
    --waiters_;
}

void
LockManager::bind(os::System *sys)
{
    sys_ = sys;
    timeoutTicks_ =
        sys && sys->faults().lockTimeoutEnabled()
            ? sys->faults().lockWaitTimeoutTicks()
            : 0;
}

os::Process *
LockManager::holderOf(LockKey key) const
{
    const std::size_t i = table_.findIndex(key);
    return i == decltype(table_)::npos ? nullptr
                                       : table_.valueAt(i).holder;
}

void
LockManager::reserve(std::size_t resources, std::size_t waiters)
{
    table_.reserve(resources);
    if (waiters > pool_.capacity()) {
        pool_.reserve(waiters);
        ++poolAllocations_;
    }
}

bool
LockManager::acquire(os::Process *p, LockKey key)
{
    acquires_.inc();
    Resource &res = table_.findOrInsert(key);
    if (res.holder == nullptr) {
        res.holder = p;
        ++held_;
        return true;
    }
    if (res.holder == p)
        return true; // Re-entrant acquisition within the transaction.
    conflicts_.inc();
    // Append to the resource's intrusive FIFO. The pool push cannot
    // invalidate `res` (it lives in the flat table, not the pool).
    const std::uint32_t n = allocWaiter(p);
    if (res.tail == npos) {
        res.head = n;
    } else {
        pool_[res.tail].next = n;
    }
    res.tail = n;
    if (timeoutTicks_ > 0) {
        // Fault injection: arm the lock-wait timeout. No cancellation
        // on grant — the (node, stamp) pair goes stale instead, so
        // the grant path stays allocation- and branch-free.
        const std::uint32_t stamp = pool_[n].stamp;
        sys_->eq().scheduleAfter(timeoutTicks_, [this, key, n, stamp] {
            onTimeout(key, n, stamp);
        });
    }
    return false;
}

void
LockManager::onTimeout(LockKey key, std::uint32_t n, std::uint32_t stamp)
{
    if (pool_[n].stamp != stamp || pool_[n].proc == nullptr)
        return; // Granted (or otherwise retired) before the deadline.
    const std::size_t i = table_.findIndex(key);
    if (i == decltype(table_)::npos)
        return;
    Resource &res = table_.valueAt(i);
    // Unlink the waiter from the resource's FIFO.
    std::uint32_t prev = npos;
    std::uint32_t cur = res.head;
    while (cur != npos && cur != n) {
        prev = cur;
        cur = pool_[cur].next;
    }
    if (cur != n)
        return; // Queued on a different resource that reused the key.
    if (prev == npos) {
        res.head = pool_[n].next;
    } else {
        pool_[prev].next = pool_[n].next;
    }
    if (res.tail == n)
        res.tail = prev;
    os::Process *p = pool_[n].proc;
    freeWaiter(n);
    ++sys_->faults().stats().lockTimeouts;
    // Wake the waiter *without* the lock; it discovers the timeout by
    // finding itself not the holder and aborts its transaction.
    sys_->wakeProcess(p, 2500);
}

void
LockManager::release(os::Process *p, LockKey key, os::System &sys)
{
    const std::size_t i = table_.findIndex(key);
    odbsim_assert(i != decltype(table_)::npos,
                  "releasing unknown lock ", key);
    Resource &res = table_.valueAt(i);
    odbsim_assert(res.holder == p, "releasing foreign lock ", key);
    if (res.head == npos) {
        // No waiter: the resource retires and the granted count
        // drops. (heldCount() is maintained explicitly, so it would
        // stay correct even if empty entries were kept around.)
        --held_;
        table_.eraseAt(i);
        return;
    }
    // Hand the lock to the oldest waiter and wake it; the wake pays a
    // short kernel path (semaphore post + reschedule). The granted
    // count is unchanged: one holder replaces another.
    const std::uint32_t n = res.head;
    res.holder = pool_[n].proc;
    res.head = pool_[n].next;
    if (res.head == npos)
        res.tail = npos;
    freeWaiter(n);
    sys.wakeProcess(res.holder, 2500);
}

void
LockManager::releaseAll(os::Process *p, std::vector<LockKey> &held,
                        os::System &sys)
{
    for (const LockKey key : held)
        release(p, key, sys);
    held.clear();
}

} // namespace odbsim::db
