#include "db/lock_manager.hh"

#include <bit>

#include "sim/logging.hh"

namespace odbsim::db
{

LockManager::LockManager(unsigned shards) : shardCount_(shards)
{
    odbsim_assert(shards >= 1 && shards <= 256 &&
                      std::has_single_bit(shards),
                  "lock manager shard count must be a power of two in "
                  "[1, 256], got ",
                  shards);
    shards_.resize(shards);
}

std::uint32_t
LockManager::allocWaiter(Shard &sh, os::Process *p)
{
    std::uint32_t n;
    if (sh.freeHead != npos) {
        n = sh.freeHead;
        sh.freeHead = sh.pool[n].next;
    } else {
        if (sh.pool.size() == sh.pool.capacity())
            ++sh.poolAllocations;
        n = static_cast<std::uint32_t>(sh.pool.size());
        sh.pool.emplace_back();
    }
    sh.pool[n].proc = p;
    sh.pool[n].next = npos;
    ++sh.waiters;
    return n;
}

void
LockManager::freeWaiter(Shard &sh, std::uint32_t n)
{
    sh.pool[n].proc = nullptr;
    sh.pool[n].next = sh.freeHead;
    ++sh.pool[n].stamp; // Invalidate any pending timeout on this node.
    sh.freeHead = n;
    --sh.waiters;
}

void
LockManager::bind(os::System *sys)
{
    sys_ = sys;
    timeoutTicks_ =
        sys && sys->faults().lockTimeoutEnabled()
            ? sys->faults().lockWaitTimeoutTicks()
            : 0;
}

os::Process *
LockManager::holderOf(LockKey key) const
{
    const Shard &sh = shards_[shardOf(key)];
    const std::size_t i = sh.table.findIndex(key);
    return i == decltype(Shard::table)::npos
               ? nullptr
               : sh.table.valueAt(i).holder;
}

void
LockManager::reserve(std::size_t resources, std::size_t waiters)
{
    const std::size_t perResources =
        (resources + shardCount_ - 1) / shardCount_;
    const std::size_t perWaiters =
        (waiters + shardCount_ - 1) / shardCount_;
    for (Shard &sh : shards_) {
        sh.table.reserve(perResources);
        if (perWaiters > sh.pool.capacity()) {
            sh.pool.reserve(perWaiters);
            ++sh.poolAllocations;
        }
    }
}

std::uint64_t
LockManager::tableAllocations() const
{
    std::uint64_t total = 0;
    for (const Shard &sh : shards_)
        total += sh.poolAllocations + sh.table.allocations();
    return total;
}

bool
LockManager::acquire(os::Process *p, LockKey key)
{
    Shard &sh = shards_[shardOf(key)];
    ++sh.acquires;
    Resource &res = sh.table.findOrInsert(key);
    if (res.holder == nullptr) {
        res.holder = p;
        ++sh.held;
        return true;
    }
    if (res.holder == p)
        return true; // Re-entrant acquisition within the transaction.
    ++sh.conflicts;
    // Append to the resource's intrusive FIFO. The pool push cannot
    // invalidate `res` (it lives in the flat table, not the pool).
    const std::uint32_t n = allocWaiter(sh, p);
    if (res.tail == npos) {
        res.head = n;
    } else {
        sh.pool[res.tail].next = n;
    }
    res.tail = n;
    if (timeoutTicks_ > 0) {
        // Fault injection: arm the lock-wait timeout. No cancellation
        // on grant — the (node, stamp) pair goes stale instead, so
        // the grant path stays allocation- and branch-free. The key
        // re-derives the shard when the timeout fires.
        const std::uint32_t stamp = sh.pool[n].stamp;
        sys_->eq().scheduleAfter(timeoutTicks_, [this, key, n, stamp] {
            onTimeout(key, n, stamp);
        });
    }
    return false;
}

void
LockManager::onTimeout(LockKey key, std::uint32_t n, std::uint32_t stamp)
{
    Shard &sh = shards_[shardOf(key)];
    if (sh.pool[n].stamp != stamp || sh.pool[n].proc == nullptr)
        return; // Granted (or otherwise retired) before the deadline.
    const std::size_t i = sh.table.findIndex(key);
    if (i == decltype(Shard::table)::npos)
        return;
    Resource &res = sh.table.valueAt(i);
    // Unlink the waiter from the resource's FIFO.
    std::uint32_t prev = npos;
    std::uint32_t cur = res.head;
    while (cur != npos && cur != n) {
        prev = cur;
        cur = sh.pool[cur].next;
    }
    if (cur != n)
        return; // Queued on a different resource that reused the key.
    if (prev == npos) {
        res.head = sh.pool[n].next;
    } else {
        sh.pool[prev].next = sh.pool[n].next;
    }
    if (res.tail == n)
        res.tail = prev;
    os::Process *p = sh.pool[n].proc;
    freeWaiter(sh, n);
    ++sys_->faults().stats().lockTimeouts;
    // Wake the waiter *without* the lock; it discovers the timeout by
    // finding itself not the holder and aborts its transaction.
    sys_->wakeProcess(p, 2500);
}

void
LockManager::release(os::Process *p, LockKey key, os::System &sys)
{
    Shard &sh = shards_[shardOf(key)];
    const std::size_t i = sh.table.findIndex(key);
    odbsim_assert(i != decltype(Shard::table)::npos,
                  "releasing unknown lock ", key);
    Resource &res = sh.table.valueAt(i);
    odbsim_assert(res.holder == p, "releasing foreign lock ", key);
    if (res.head == npos) {
        // No waiter: the resource retires and the granted count
        // drops. (heldCount() is maintained explicitly, so it would
        // stay correct even if empty entries were kept around.)
        --sh.held;
        sh.table.eraseAt(i);
        return;
    }
    // Hand the lock to the oldest waiter and wake it; the wake pays a
    // short kernel path (semaphore post + reschedule). The granted
    // count is unchanged: one holder replaces another.
    const std::uint32_t n = res.head;
    res.holder = sh.pool[n].proc;
    res.head = sh.pool[n].next;
    if (res.head == npos)
        res.tail = npos;
    freeWaiter(sh, n);
    sys.wakeProcess(res.holder, 2500);
}

void
LockManager::releaseAll(os::Process *p, std::vector<LockKey> &held,
                        os::System &sys)
{
    for (const LockKey key : held)
        release(p, key, sys);
    held.clear();
}

} // namespace odbsim::db
