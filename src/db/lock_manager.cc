#include "db/lock_manager.hh"

#include "sim/logging.hh"

namespace odbsim::db
{

bool
LockManager::acquire(os::Process *p, LockKey key)
{
    acquires_.inc();
    Resource &res = table_[key];
    if (res.holder == nullptr) {
        res.holder = p;
        return true;
    }
    if (res.holder == p)
        return true; // Re-entrant acquisition within the transaction.
    conflicts_.inc();
    res.waiters.push_back(p);
    return false;
}

void
LockManager::release(os::Process *p, LockKey key, os::System &sys)
{
    auto it = table_.find(key);
    odbsim_assert(it != table_.end(), "releasing unknown lock ", key);
    Resource &res = it->second;
    odbsim_assert(res.holder == p, "releasing foreign lock ", key);
    if (res.waiters.empty()) {
        table_.erase(it);
        return;
    }
    // Hand the lock to the oldest waiter and wake it; the wake pays a
    // short kernel path (semaphore post + reschedule).
    res.holder = res.waiters.front();
    res.waiters.pop_front();
    sys.wakeProcess(res.holder, 2500);
}

void
LockManager::releaseAll(os::Process *p, std::vector<LockKey> &held,
                        os::System &sys)
{
    for (const LockKey key : held)
        release(p, key, sys);
    held.clear();
}

} // namespace odbsim::db
