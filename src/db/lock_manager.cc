#include "db/lock_manager.hh"

#include "sim/logging.hh"

namespace odbsim::db
{

std::uint32_t
LockManager::allocWaiter(os::Process *p)
{
    std::uint32_t n;
    if (freeHead_ != npos) {
        n = freeHead_;
        freeHead_ = pool_[n].next;
    } else {
        if (pool_.size() == pool_.capacity())
            ++poolAllocations_;
        n = static_cast<std::uint32_t>(pool_.size());
        pool_.emplace_back();
    }
    pool_[n].proc = p;
    pool_[n].next = npos;
    ++waiters_;
    return n;
}

void
LockManager::freeWaiter(std::uint32_t n)
{
    pool_[n].proc = nullptr;
    pool_[n].next = freeHead_;
    freeHead_ = n;
    --waiters_;
}

void
LockManager::reserve(std::size_t resources, std::size_t waiters)
{
    table_.reserve(resources);
    if (waiters > pool_.capacity()) {
        pool_.reserve(waiters);
        ++poolAllocations_;
    }
}

bool
LockManager::acquire(os::Process *p, LockKey key)
{
    acquires_.inc();
    Resource &res = table_.findOrInsert(key);
    if (res.holder == nullptr) {
        res.holder = p;
        ++held_;
        return true;
    }
    if (res.holder == p)
        return true; // Re-entrant acquisition within the transaction.
    conflicts_.inc();
    // Append to the resource's intrusive FIFO. The pool push cannot
    // invalidate `res` (it lives in the flat table, not the pool).
    const std::uint32_t n = allocWaiter(p);
    if (res.tail == npos) {
        res.head = n;
    } else {
        pool_[res.tail].next = n;
    }
    res.tail = n;
    return false;
}

void
LockManager::release(os::Process *p, LockKey key, os::System &sys)
{
    const std::size_t i = table_.findIndex(key);
    odbsim_assert(i != decltype(table_)::npos,
                  "releasing unknown lock ", key);
    Resource &res = table_.valueAt(i);
    odbsim_assert(res.holder == p, "releasing foreign lock ", key);
    if (res.head == npos) {
        // No waiter: the resource retires and the granted count
        // drops. (heldCount() is maintained explicitly, so it would
        // stay correct even if empty entries were kept around.)
        --held_;
        table_.eraseAt(i);
        return;
    }
    // Hand the lock to the oldest waiter and wake it; the wake pays a
    // short kernel path (semaphore post + reschedule). The granted
    // count is unchanged: one holder replaces another.
    const std::uint32_t n = res.head;
    res.holder = pool_[n].proc;
    res.head = pool_[n].next;
    if (res.head == npos)
        res.tail = npos;
    freeWaiter(n);
    sys.wakeProcess(res.holder, 2500);
}

void
LockManager::releaseAll(os::Process *p, std::vector<LockKey> &held,
                        os::System &sys)
{
    for (const LockKey key : held)
        release(p, key, sys);
    held.clear();
}

} // namespace odbsim::db
