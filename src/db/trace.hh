/**
 * @file
 * Action traces: the bridge between functional planning and timed
 * replay (DESIGN.md, "plan-then-replay").
 *
 * A transaction planner executes the transaction's logic against the
 * schema functionally and records an ActionTrace; the server process
 * then replays the trace under the discrete-event clock, where buffer
 * cache lookups, lock acquisition, disk reads and the commit's log
 * flush happen with real timing and real blocking.
 */

#ifndef ODBSIM_DB_TRACE_HH
#define ODBSIM_DB_TRACE_HH

#include <cstdint>
#include <vector>

#include "db/types.hh"
#include "sim/logging.hh"

namespace odbsim::db
{

/** What a replayed step does. */
enum class ActionKind : std::uint8_t
{
    /** Acquire the exclusive row lock `target` (may block). */
    Lock,
    /** Release the row lock `target` before commit (early release,
     *  used for short block-contention critical sections). */
    Unlock,
    /** Access `block`: buffer-cache get + row/index work. */
    Touch,
    /** Pure computation (SQL execution machinery). */
    Compute,
    /** Commit: redo copy + group-commit flush + lock release. */
    Commit,
};

/** How a Touch accesses its block (sets the instruction cost). */
enum class TouchKind : std::uint8_t
{
    HeapRead,
    HeapModify,
    IndexNode,
};

/**
 * One replayable step, packed to 16 bytes: the kind/touch/fresh flags
 * and the intra-block offset and byte count (both < blockBytes, so 13
 * bits each) share one 32-bit meta word. Replay iterates millions of
 * these back to back, so four actions per cache line instead of two
 * measurably trims the trace walk, and the packing halves what the
 * recycled per-process trace buffers hold resident.
 */
struct Action
{
    /** Block id (Touch) or lock key (Lock). */
    std::uint64_t target = 0;
    /** User instructions beyond the standard per-kind path. */
    std::uint32_t instr = 0;

    ActionKind
    kind() const
    {
        return static_cast<ActionKind>(meta_ & 0x7u);
    }
    TouchKind
    touch() const
    {
        return static_cast<TouchKind>((meta_ >> 3) & 0x3u);
    }
    /**
     * Touch only: the block need not be read from disk on a buffer
     * miss (freshly formatted extent blocks: undo, new appends).
     */
    bool fresh() const { return (meta_ >> 5) & 0x1u; }
    /** Data extent touched within the block. */
    std::uint32_t bytes() const { return (meta_ >> 6) & 0x1fffu; }
    /** Byte offset of the touched extent within the block. */
    std::uint32_t offset() const { return (meta_ >> 19) & 0x1fffu; }

    static Action
    lock(LockKey key)
    {
        Action a;
        a.meta_ = packMeta(ActionKind::Lock);
        a.target = key;
        return a;
    }

    static Action
    unlock(LockKey key)
    {
        Action a;
        a.meta_ = packMeta(ActionKind::Unlock);
        a.target = key;
        return a;
    }

    static Action
    touchHeap(BlockId b, std::uint16_t offset, std::uint16_t bytes,
              bool modify)
    {
        Action a;
        a.meta_ = packMeta(ActionKind::Touch,
                           modify ? TouchKind::HeapModify
                                  : TouchKind::HeapRead,
                           false, bytes, offset);
        a.target = b;
        return a;
    }

    static Action
    touchFresh(BlockId b, std::uint16_t offset, std::uint16_t bytes)
    {
        Action a;
        a.meta_ = packMeta(ActionKind::Touch, TouchKind::HeapModify,
                           true, bytes, offset);
        a.target = b;
        return a;
    }

    static Action
    touchIndex(BlockId b, std::uint16_t offset)
    {
        Action a;
        a.meta_ = packMeta(ActionKind::Touch, TouchKind::IndexNode,
                           false, 256, offset);
        a.target = b;
        return a;
    }

    static Action
    compute(std::uint32_t instr)
    {
        Action a;
        a.meta_ = packMeta(ActionKind::Compute);
        a.instr = instr;
        return a;
    }

    static Action
    commit()
    {
        Action a;
        a.meta_ = packMeta(ActionKind::Commit);
        return a;
    }

  private:
    static std::uint32_t
    packMeta(ActionKind kind, TouchKind touch = TouchKind::HeapRead,
             bool fresh = false, std::uint32_t bytes = 0,
             std::uint32_t offset = 0)
    {
        odbsim_assert(bytes < blockBytes && offset < blockBytes,
                      "touch extent outside the block: offset ", offset,
                      " bytes ", bytes);
        return static_cast<std::uint32_t>(kind) |
               (static_cast<std::uint32_t>(touch) << 3) |
               (static_cast<std::uint32_t>(fresh) << 5) | (bytes << 6) |
               (offset << 19);
    }

    /** kind:3 | touch:2 | fresh:1 | bytes:13 | offset:13. */
    std::uint32_t meta_ = static_cast<std::uint32_t>(ActionKind::Compute);
};
static_assert(sizeof(Action) == 16, "replay actions must stay packed");

/** The five ODB transaction types (TPC-C-like mix). */
enum class TxnType : std::uint8_t
{
    NewOrder,
    Payment,
    OrderStatus,
    Delivery,
    StockLevel,
    NumTypes,
};

constexpr unsigned numTxnTypes = static_cast<unsigned>(TxnType::NumTypes);

constexpr const char *
toString(TxnType t)
{
    switch (t) {
      case TxnType::NewOrder: return "new_order";
      case TxnType::Payment: return "payment";
      case TxnType::OrderStatus: return "order_status";
      case TxnType::Delivery: return "delivery";
      case TxnType::StockLevel: return "stock_level";
      default: return "?";
    }
}

/**
 * The inverse of one plan-time schema mutation.
 *
 * Plan-then-replay applies functional effects at plan time; when a
 * transaction aborts mid-replay (fault injection: timeout, spontaneous
 * abort, crash), the planner's *value* adjustments must be reversed so
 * a retry replans against correct state. Reversal is delta-based, not
 * value-restore: concurrent transactions may have planned against the
 * same row since, and subtracting this transaction's net delta leaves
 * their effects intact. Sequence allocations (order ids, history
 * sequence, undo cursor) are deliberately *not* reversed — committed
 * databases show the same gaps after rollbacks.
 */
struct PlanUndo
{
    enum class Kind : std::uint8_t
    {
        /** Reverse a net stock-quantity delta (restock included). */
        StockDelta,
        /** Reverse a customer-balance delta. */
        CustomerBalance,
        /** Reverse a warehouse YTD increment. */
        WarehouseYtd,
        /** Reverse a district YTD increment. */
        DistrictYtd,
        /** Remove the liveOrders entry of a never-created order. */
        EraseOrder,
        /** Restore the delivery cursor (guarded: only if no later
         *  delivery advanced it further). */
        DeliveryCursor,
    };

    Kind kind = Kind::StockDelta;
    std::uint32_t w = 0;
    std::uint32_t d = 0;
    /** Item (StockDelta), customer (CustomerBalance) or oid
     *  (EraseOrder / DeliveryCursor). */
    std::uint32_t a = 0;
    /** The delta to subtract back out. */
    double amount = 0.0;
};

/** A planned transaction, ready for timed replay. */
struct ActionTrace
{
    TxnType type = TxnType::NewOrder;
    std::uint32_t logBytes = 0;
    std::vector<Action> actions;
    /** Inverses of this plan's schema mutations, in apply order;
     *  rollback walks them back to front. */
    std::vector<PlanUndo> undo;

    /**
     * Begin a new transaction in this trace, retaining the action
     * buffer's capacity — a server process replans into the same
     * trace forever, so steady-state planning allocates nothing.
     */
    void
    reset(TxnType ty)
    {
        type = ty;
        logBytes = 0;
        actions.clear();
        undo.clear();
    }
};

} // namespace odbsim::db

#endif // ODBSIM_DB_TRACE_HH
