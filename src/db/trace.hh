/**
 * @file
 * Action traces: the bridge between functional planning and timed
 * replay (DESIGN.md, "plan-then-replay").
 *
 * A transaction planner executes the transaction's logic against the
 * schema functionally and records an ActionTrace; the server process
 * then replays the trace under the discrete-event clock, where buffer
 * cache lookups, lock acquisition, disk reads and the commit's log
 * flush happen with real timing and real blocking.
 */

#ifndef ODBSIM_DB_TRACE_HH
#define ODBSIM_DB_TRACE_HH

#include <cstdint>
#include <vector>

#include "db/types.hh"

namespace odbsim::db
{

/** What a replayed step does. */
enum class ActionKind : std::uint8_t
{
    /** Acquire the exclusive row lock `target` (may block). */
    Lock,
    /** Release the row lock `target` before commit (early release,
     *  used for short block-contention critical sections). */
    Unlock,
    /** Access `block`: buffer-cache get + row/index work. */
    Touch,
    /** Pure computation (SQL execution machinery). */
    Compute,
    /** Commit: redo copy + group-commit flush + lock release. */
    Commit,
};

/** How a Touch accesses its block (sets the instruction cost). */
enum class TouchKind : std::uint8_t
{
    HeapRead,
    HeapModify,
    IndexNode,
};

/** One replayable step. */
struct Action
{
    ActionKind kind = ActionKind::Compute;
    TouchKind touch = TouchKind::HeapRead;
    /**
     * Touch only: the block need not be read from disk on a buffer
     * miss (freshly formatted extent blocks: undo, new appends).
     */
    bool fresh = false;
    /** Data extent touched within the block. */
    std::uint16_t bytes = 0;
    /** Byte offset of the touched extent within the block. */
    std::uint16_t offset = 0;
    /** User instructions beyond the standard per-kind path. */
    std::uint32_t instr = 0;
    /** Block id (Touch) or lock key (Lock). */
    std::uint64_t target = 0;

    static Action
    lock(LockKey key)
    {
        Action a;
        a.kind = ActionKind::Lock;
        a.target = key;
        return a;
    }

    static Action
    unlock(LockKey key)
    {
        Action a;
        a.kind = ActionKind::Unlock;
        a.target = key;
        return a;
    }

    static Action
    touchHeap(BlockId b, std::uint16_t offset, std::uint16_t bytes,
              bool modify)
    {
        Action a;
        a.kind = ActionKind::Touch;
        a.touch = modify ? TouchKind::HeapModify : TouchKind::HeapRead;
        a.target = b;
        a.offset = offset;
        a.bytes = bytes;
        return a;
    }

    static Action
    touchFresh(BlockId b, std::uint16_t offset, std::uint16_t bytes)
    {
        Action a = touchHeap(b, offset, bytes, true);
        a.fresh = true;
        return a;
    }

    static Action
    touchIndex(BlockId b, std::uint16_t offset)
    {
        Action a;
        a.kind = ActionKind::Touch;
        a.touch = TouchKind::IndexNode;
        a.target = b;
        a.offset = offset;
        a.bytes = 256;
        return a;
    }

    static Action
    compute(std::uint32_t instr)
    {
        Action a;
        a.kind = ActionKind::Compute;
        a.instr = instr;
        return a;
    }

    static Action
    commit()
    {
        Action a;
        a.kind = ActionKind::Commit;
        return a;
    }
};

/** The five ODB transaction types (TPC-C-like mix). */
enum class TxnType : std::uint8_t
{
    NewOrder,
    Payment,
    OrderStatus,
    Delivery,
    StockLevel,
    NumTypes,
};

constexpr unsigned numTxnTypes = static_cast<unsigned>(TxnType::NumTypes);

constexpr const char *
toString(TxnType t)
{
    switch (t) {
      case TxnType::NewOrder: return "new_order";
      case TxnType::Payment: return "payment";
      case TxnType::OrderStatus: return "order_status";
      case TxnType::Delivery: return "delivery";
      case TxnType::StockLevel: return "stock_level";
      default: return "?";
    }
}

/** A planned transaction, ready for timed replay. */
struct ActionTrace
{
    TxnType type = TxnType::NewOrder;
    std::uint32_t logBytes = 0;
    std::vector<Action> actions;
};

} // namespace odbsim::db

#endif // ODBSIM_DB_TRACE_HH
