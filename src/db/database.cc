#include "db/database.hh"

#include <unordered_set>
#include <vector>

#include "sim/logging.hh"
#include "sim/thread_pool.hh"

namespace odbsim::db
{

Database::Database(os::System &sys, const DatabaseConfig &cfg)
    : sys_(sys), cfg_(cfg), schema_(cfg.schema),
      bufcache_(resolveFrames(cfg, schema_), cfg.shards),
      locks_(cfg.shards), log_(sys, cfg_.costs),
      dbwr_(sys, cfg_.costs, bufcache_, cfg.dbwr)
{
    locks_.bind(&sys);
    dbwr_.bindLog(&log_);
}

std::uint64_t
Database::resolveFrames(const DatabaseConfig &cfg, const Schema &schema)
{
    if (cfg.sgaFrames)
        return cfg.sgaFrames;
    const double frames = cfg.cacheWarehouseEquivalents *
                          schema.readableBlocksPerWarehouse();
    return static_cast<std::uint64_t>(frames);
}

void
Database::start()
{
    log_.start();
    dbwr_.start();
}

void
Database::instantWarm(const std::vector<std::uint32_t> &active_warehouses,
                      unsigned replay_threads)
{
    // Collect hottest-first, then prefill coldest-first so the LRU
    // order in the cache matches hotness (hottest prefilled last ends
    // up at MRU).
    std::vector<BlockId> hot;
    hot.reserve(bufcache_.numFrames());
    std::unordered_set<BlockId> seen;
    seen.reserve(bufcache_.numFrames());
    const std::uint64_t budget =
        bufcache_.numFrames() - bufcache_.residentBlocks();
    schema_.enumerateWarm(
        [&](BlockId b) {
            if (seen.insert(b).second)
                hot.push_back(b);
            return hot.size() < budget;
        },
        active_warehouses.empty() ? nullptr : &active_warehouses);
    const auto dirtyOf = [this](BlockId b) {
        return Schema::mix(b, 0xd1d1, 0) % 1000 <
               static_cast<std::uint64_t>(cfg_.warmDirtyFraction * 1000.0);
    };
    const unsigned shards = bufcache_.shards();
    if (replay_threads == 1 || shards == 1 || hot.size() < 2) {
        for (auto it = hot.rbegin(); it != hot.rend(); ++it)
            bufcache_.prefill(*it, dirtyOf(*it));
    } else {
        // Host-parallel fill: split the coldest-first stream by buffer
        // shard. prefill() touches only its block's shard (map, free
        // list, LRU chain, frame range are all per-shard), and each
        // shard sees its blocks in the same relative order as the
        // serial loop, so the final cache state is bit-identical.
        std::vector<std::vector<BlockId>> per_shard(shards);
        for (auto it = hot.rbegin(); it != hot.rend(); ++it)
            per_shard[bufcache_.shardOf(*it)].push_back(*it);
        hostParallelFor(replay_threads, shards, [&](std::size_t s) {
            for (BlockId b : per_shard[s])
                bufcache_.prefill(b, dirtyOf(b));
        });
    }
    bufcache_.resetStats();
}

void
Database::resetStats()
{
    bufcache_.resetStats();
    locks_.resetStats();
    log_.resetStats();
    dbwr_.resetStats();
}

} // namespace odbsim::db
