#include "db/db_writer.hh"

#include <memory>

#include "db/redo_log.hh"
#include "mem/addr_space.hh"
#include "sim/logging.hh"

namespace odbsim::db
{

/**
 * The DBWR process: drain the urgent queue, checkpoint aged dirty
 * blocks, sleep between scans.
 */
class DbWriter::DbwrProcess : public os::Process
{
  public:
    explicit DbwrProcess(DbWriter &mgr)
        : os::Process("dbwr"), mgr_(mgr)
    {}

    os::NextAction
    next(os::System &sys) override
    {
        os::NextAction act;
        mgr_.sleeping_ = false;

        if (mgr_.outstanding_ >= mgr_.cfg_.maxOutstanding) {
            mgr_.throttled_ = true;
            act.after = os::NextAction::After::Block;
            return act;
        }

        unsigned n = 0;
        auto submit = [&](BlockId b) {
            ++mgr_.outstanding_;
            ++n;
            sys.diskWriteAsync(b, blockBytes, [this, &sys] {
                --mgr_.outstanding_;
                ++mgr_.written_;
                if (mgr_.throttled_ &&
                    mgr_.outstanding_ < mgr_.cfg_.maxOutstanding / 2) {
                    mgr_.throttled_ = false;
                    sys.wakeProcess(this, 500);
                }
            });
        };

        // Evicted dirty blocks first: they must reach disk.
        while (n < mgr_.cfg_.batchSize && !mgr_.urgent_.empty())
            submit(mgr_.urgent_.popFront());

        // Then checkpoint aged (or backlogged) dirty resident blocks.
        const Tick now = sys.now();
        const bool had_ckpt = !mgr_.ckpt_.empty();
        while (n < mgr_.cfg_.batchSize && !mgr_.ckpt_.empty()) {
            const auto &[block, dirtied_at] = mgr_.ckpt_.front();
            const bool aged =
                now - dirtied_at >= mgr_.cfg_.checkpointAge;
            const bool backlogged =
                mgr_.ckpt_.size() > mgr_.cfg_.maxDirtyBacklog;
            if (!aged && !backlogged)
                break;
            const BlockId b = block;
            mgr_.ckpt_.popFront();
            // Only write if the block is still resident and dirty;
            // evicted blocks went through the urgent path and
            // re-cleaned blocks were already written.
            const BufferLookup look = mgr_.bc_.peek(b);
            if (look.hit && mgr_.bc_.isDirty(look.frame)) {
                mgr_.bc_.markClean(b);
                submit(b);
            }
        }
        if (had_ckpt && mgr_.ckpt_.empty() && mgr_.log_) {
            // The whole registered-dirty backlog reached the writer:
            // redo older than this point will never be needed again.
            mgr_.log_->advanceCheckpoint();
        }

        if (n == 0) {
            // Nothing to do: sleep until the next scan (an urgent
            // enqueue wakes us earlier).
            mgr_.sleeping_ = true;
            sys.sleepProcess(this, mgr_.cfg_.scanInterval);
            act.after = os::NextAction::After::Block;
            return act;
        }

        sys.chargeKernel(this, sys.kernelCosts().asyncWriteInstr * n);
        act.work.instructions = mgr_.costs_.dbwrPerBlockInstr * n;
        act.work.mode = mem::ExecMode::User;
        act.work.codeBase = mem::addrmap::dbCodeBase;
        act.work.codeBytes = mem::addrmap::dbCodeBytes;
        act.work.privateBase = privateBase();
        act.work.privateBytes = mem::addrmap::pgaHotBytes;
        act.after = os::NextAction::After::Continue;
        return act;
    }

  private:
    DbWriter &mgr_;
};

DbWriter::DbWriter(os::System &sys, const DbCostModel &costs,
                   BufferCache &bc, const DbWriterConfig &cfg)
    : sys_(sys), costs_(costs), bc_(bc), cfg_(cfg)
{}

void
DbWriter::start()
{
    odbsim_assert(!proc_, "DbWriter already started");
    proc_ = sys_.spawn(std::make_unique<DbwrProcess>(*this));
}

void
DbWriter::enqueueEvicted(BlockId b)
{
    odbsim_assert(proc_, "DbWriter not started");
    urgent_.pushBack(b);
    if (sleeping_ && urgent_.size() >= cfg_.wakeThreshold) {
        sleeping_ = false;
        sys_.wakeProcess(proc_, 500);
    }
}

void
DbWriter::noteDirty(BlockId b, Tick now)
{
    odbsim_assert(proc_, "DbWriter not started");
    ckpt_.pushBack({b, now});
}

} // namespace odbsim::db
