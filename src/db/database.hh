/**
 * @file
 * Database: the facade bundling schema, buffer cache, lock manager,
 * redo log and background writers into one engine instance bound to a
 * simulated System.
 */

#ifndef ODBSIM_DB_DATABASE_HH
#define ODBSIM_DB_DATABASE_HH

#include <cstdint>
#include <memory>

#include "db/buffer_cache.hh"
#include "db/cost_model.hh"
#include "db/db_writer.hh"
#include "db/lock_manager.hh"
#include "db/redo_log.hh"
#include "db/schema.hh"
#include "os/system.hh"

namespace odbsim::db
{

/** Engine configuration. */
struct DatabaseConfig
{
    SchemaConfig schema;
    /**
     * Buffer-cache frames; 0 selects automatic sizing that reproduces
     * the paper's working-set-to-cache ratio (a 2.8 GB cache against
     * ~100 MB/warehouse ⇒ the cache covers ~28.7 warehouses of
     * read-hot blocks).
     */
    std::uint64_t sgaFrames = 0;
    /** Warehouse-equivalents the cache covers under automatic sizing. */
    double cacheWarehouseEquivalents = 28.7;
    /**
     * Fraction of warm-filled blocks marked dirty, reproducing the
     * steady-state dirty population a long-running instance carries
     * (evicting them yields the write-back traffic of Figure 7).
     */
    double warmDirtyFraction = 0.20;
    DbCostModel costs;
    DbWriterConfig dbwr;
    /**
     * Shard count for the lock manager and buffer cache (power of
     * two). 1 (the default) is structurally identical to the
     * unsharded engine, keeping paper-scale goldens byte-exact; K>1
     * partitions both by resource/block hash for production-scale
     * grids (see docs/SCALE.md).
     */
    unsigned shards = 1;
};

/**
 * One database engine instance.
 */
class Database
{
  public:
    Database(os::System &sys, const DatabaseConfig &cfg);

    /** Spawn the background processes (LGWR, DBWR). */
    void start();

    /**
     * Instantly populate the buffer cache in hotness order —
     * substitute for the paper's 20-minute warm-up run.
     *
     * @param active_warehouses Home warehouses of the bound clients;
     *        empty means all warehouses are active.
     * @param replay_threads Host-side parallelism for the prefill
     *        replay (RunKnobs::replayThreads). With a sharded cache
     *        (K > 1) the hot-block stream is partitioned by buffer
     *        shard, preserving per-shard order, and the shards are
     *        prefilled on worker threads; BufferCache::prefill touches
     *        only its block's shard, so the resulting cache state is
     *        bit-identical to the serial fill. 1 (default) and K == 1
     *        take the legacy serial loop unchanged.
     */
    void instantWarm(const std::vector<std::uint32_t>
                         &active_warehouses = {},
                     unsigned replay_threads = 1);

    os::System &sys() { return sys_; }
    Schema &schema() { return schema_; }
    const Schema &schema() const { return schema_; }
    BufferCache &bufferCache() { return bufcache_; }
    const BufferCache &bufferCache() const { return bufcache_; }
    LockManager &locks() { return locks_; }
    LogManager &log() { return log_; }
    DbWriter &dbwr() { return dbwr_; }
    const DbCostModel &costs() const { return cfg_.costs; }
    const DatabaseConfig &config() const { return cfg_; }

    void resetStats();

  private:
    static std::uint64_t resolveFrames(const DatabaseConfig &cfg,
                                       const Schema &schema);

    os::System &sys_;
    DatabaseConfig cfg_;
    Schema schema_;
    BufferCache bufcache_;
    LockManager locks_;
    LogManager log_;
    DbWriter dbwr_;
};

} // namespace odbsim::db

#endif // ODBSIM_DB_DATABASE_HH
