#include "db/redo_log.hh"

#include <algorithm>
#include <memory>

#include "mem/addr_space.hh"
#include "sim/logging.hh"

namespace odbsim::db
{

/**
 * The log-writer background process: wait for commit requests, flush
 * the accumulated group with one sequential write, wake the group.
 */
class LogManager::LgwrProcess : public os::Process
{
  public:
    explicit LgwrProcess(LogManager &mgr)
        : os::Process("lgwr"), mgr_(mgr)
    {}

    os::NextAction
    next(os::System &sys) override
    {
        os::NextAction act;

        // Wake the group whose flush just completed.
        for (os::Process *p : group_)
            sys.wakeProcess(p, 1500);
        mgr_.commitsServed_ += group_.size();
        group_.clear();

        if (mgr_.pendingBytes_ == 0) {
            mgr_.lgwrIdle_ = true;
            act.after = os::NextAction::After::Block;
            return act;
        }

        // Start the next flush: batch everything pending.
        const std::uint64_t bytes = mgr_.pendingBytes_ + 512;
        group_ = std::move(mgr_.pendingWaiters_);
        mgr_.pendingWaiters_.clear();
        mgr_.pendingBytes_ = 0;
        ++mgr_.flushes_;
        mgr_.bytesFlushed_ += bytes;
        mgr_.totalBytesFlushed_ += bytes;
        mgr_.groupSize_.add(static_cast<double>(group_.size()));

        sys.chargeKernel(this, sys.kernelCosts().logWriteInstr);
        sys.disks().writeLog(bytes, [this, &sys, bytes] {
            sys.memsys().dmaDrain(bytes, sys.now());
            sys.wakeProcess(this, sys.kernelCosts().ioCompleteInstr);
        });

        act.work.instructions = mgr_.costs_.lgwrFlushInstr;
        act.work.mode = mem::ExecMode::User;
        act.work.codeBase = mem::addrmap::dbCodeBase;
        act.work.codeBytes = mem::addrmap::dbCodeBytes;
        act.work.privateBase = privateBase();
        act.work.privateBytes = mem::addrmap::pgaHotBytes;
        act.work.addRef(mem::addrmap::logBufferBase,
                        static_cast<std::uint32_t>(std::min<std::uint64_t>(
                            bytes, mem::addrmap::logBufferBytes)),
                        false);
        act.after = os::NextAction::After::Block;
        return act;
    }

  private:
    LogManager &mgr_;
    std::vector<os::Process *> group_;
};

LogManager::LogManager(os::System &sys, const DbCostModel &costs)
    : sys_(sys), costs_(costs)
{}

void
LogManager::start()
{
    odbsim_assert(!lgwr_, "LogManager already started");
    lgwr_ = sys_.spawn(std::make_unique<LgwrProcess>(*this));
}

void
LogManager::requestCommit(os::Process *p, std::uint32_t bytes)
{
    odbsim_assert(lgwr_, "LogManager not started");
    pendingBytes_ += bytes;
    pendingWaiters_.push_back(p);
    if (lgwrIdle_) {
        lgwrIdle_ = false;
        sys_.wakeProcess(lgwr_, 800);
    }
}

void
LogManager::resetStats()
{
    flushes_ = 0;
    bytesFlushed_ = 0;
    commitsServed_ = 0;
    groupSize_.reset();
}

} // namespace odbsim::db
