/**
 * @file
 * Instruction-cost model of the database server's user-space code
 * paths. These constants set the user-space IPX (paper Figure 5,
 * roughly flat at ~1M instructions per transaction) and are the
 * counterpart of KernelCosts for ring 3.
 *
 * The dominant term is the per-SQL-statement execution overhead —
 * parse/bind/execute machinery of a commercial RDBMS — which dwarfs
 * the per-row work.
 */

#ifndef ODBSIM_DB_COST_MODEL_HH
#define ODBSIM_DB_COST_MODEL_HH

#include <cstdint>

namespace odbsim::db
{

/** User-space path lengths, in instructions. */
struct DbCostModel
{
    /** Fixed per-transaction cost: begin/commit, network round trips,
     *  client context. */
    std::uint64_t txnBaseInstr = 180000;
    /** Per SQL statement execution overhead. */
    std::uint64_t sqlStatementInstr = 30000;
    /** Buffer-cache get (hash probe, latch, pin) per block touch. */
    std::uint64_t bufferGetInstr = 1800;
    /** Extra path on a buffer-cache miss (grab frame, victim setup). */
    std::uint64_t bufferMissInstr = 5500;
    /** Row access within a block (slot directory walk, column copy). */
    std::uint64_t rowAccessInstr = 1200;
    /** Extra cost to modify a row (undo generation, redo build). */
    std::uint64_t rowModifyInstr = 2200;
    /** B-tree node traversal (binary search within a node). */
    std::uint64_t indexNodeInstr = 700;
    /** Lock manager acquire/release pair. */
    std::uint64_t lockInstr = 1500;
    /** Redo-copy cost per KB of log payload. */
    std::uint64_t logCopyInstrPerKb = 2500;
    /** LGWR per-flush cost. */
    std::uint64_t lgwrFlushInstr = 12000;
    /** DBWR per-block write-queue processing cost. */
    std::uint64_t dbwrPerBlockInstr = 2500;
    /** Fixed cost of rolling back a transaction (undo application
     *  setup, lock release sweep, client error round trip). */
    std::uint64_t abortBaseInstr = 60000;
    /** Per-replayed-action rollback cost: undo records are applied for
     *  the prefix of the transaction that already executed. */
    std::uint64_t abortPerActionInstr = 1500;
    /** Latch-spin style extra cycles per buffer get ("Other" CPI). */
    double bufferGetExtraCycles = 250.0;
};

} // namespace odbsim::db

#endif // ODBSIM_DB_COST_MODEL_HH
