/**
 * @file
 * Row-level exclusive lock manager with FIFO wait queues.
 *
 * Locks exist for *timing* fidelity: functional updates are applied at
 * plan time (see DESIGN.md "plan-then-replay"), but the blocking and
 * wake-ups of contended rows — warehouse and district rows at small
 * warehouse counts — drive the context-switch spike the paper observes
 * at 10 warehouses (Figure 8).
 *
 * Deadlock freedom is by construction: planners emit lock actions in
 * the global (table rank, key) order.
 *
 * Every replayed Lock action probes the resource table, so storage is
 * allocation-free in steady state: a sim::FlatMap from LockKey to a
 * 16-byte Resource, and a free-list-pooled intrusive FIFO replacing
 * the per-resource std::deque — waiter nodes live in one shared
 * vector and each resource threads head/tail indices through it, so
 * enqueueing a waiter or handing a lock over never touches the heap
 * once the pool has reached its high-water mark (observable via
 * tableAllocations()).
 *
 * The manager is sharded by resource hash into K independent
 * {table, waiter pool} shards (K power of two, default 1). K=1 is
 * structurally identical to the unsharded layout — one shard holding
 * the same FlatMap and pool — so paper-scale runs are unchanged; at
 * production scale (thousands of warehouses) K>1 keeps each table
 * small and, under a concurrent host, lets independent shards be
 * driven without a global serialization point (see docs/SCALE.md).
 */

#ifndef ODBSIM_DB_LOCK_MANAGER_HH
#define ODBSIM_DB_LOCK_MANAGER_HH

#include <cstdint>
#include <vector>

#include "db/types.hh"
#include "os/process.hh"
#include "os/system.hh"
#include "sim/flat_map.hh"
#include "sim/stats.hh"

namespace odbsim::db
{

/**
 * Exclusive row-lock table.
 */
class LockManager
{
  public:
    /** @param shards Shard count (power of two, 1..256). */
    explicit LockManager(unsigned shards = 1);

    /** Shard count K this manager was built with. */
    unsigned shards() const { return shardCount_; }

    /** Shard owning @p key (stable for the life of the manager). */
    unsigned
    shardOf(LockKey key) const
    {
        // Distinct mixer from the FlatMap's Fibonacci hash: the shard
        // index must not be correlated with the in-shard probe index,
        // or every key in a shard would collapse onto a fraction of
        // its table.
        return static_cast<unsigned>((key * 0xff51afd7ed558ccdULL) >> 56) &
               (shardCount_ - 1);
    }

    /**
     * Bind the owning system. Required for lock-wait timeouts (the
     * fault plan's lockWaitTimeoutMs knob): with timeouts enabled,
     * every enqueued waiter schedules a timeout event; a waiter still
     * queued when it fires is unlinked and woken *without* the lock
     * (the caller detects this via holderOf() and aborts). Without
     * the knob nothing is scheduled — the inert path is unchanged.
     */
    void bind(os::System *sys);

    /**
     * Try to acquire @p key for @p p.
     * @return true if granted; false if @p p was enqueued and must
     *         block (it will be woken holding the lock).
     */
    bool acquire(os::Process *p, LockKey key);

    /** Current holder of @p key (nullptr if unheld). After a wake, a
     *  waiter distinguishes grant from timeout by checking whether it
     *  is now the holder. */
    os::Process *holderOf(LockKey key) const;

    /** Release one lock, granting the oldest queued waiter. */
    void release(os::Process *p, LockKey key, os::System &sys);

    /**
     * Release every lock in @p held (granting queued waiters) and
     * clear the vector.
     */
    void releaseAll(os::Process *p, std::vector<LockKey> &held,
                    os::System &sys);

    /**
     * Locks currently granted — an explicit granted-holder count,
     * maintained per shard on grant/release, so it stays correct
     * regardless of how the resource table stores (or retires) empty
     * entries. Queued waiters do not count until the lock is handed
     * to them.
     */
    std::size_t
    heldCount() const
    {
        std::size_t n = 0;
        for (const Shard &sh : shards_)
            n += sh.held;
        return n;
    }

    /** Waiters currently queued across all resources. */
    std::size_t
    waiterCount() const
    {
        std::size_t n = 0;
        for (const Shard &sh : shards_)
            n += sh.waiters;
        return n;
    }

    /**
     * Pre-size every shard's resource table and waiter pool so the
     * manager as a whole absorbs @p resources simultaneously held
     * locks and @p waiters simultaneously queued processes (each
     * shard gets the ceiling share).
     */
    void reserve(std::size_t resources, std::size_t waiters);

    /**
     * Growth events of the resource tables plus the waiter pools,
     * summed over shards (perf-test hook). Steady-state churn at or
     * below the high-water population must not advance this.
     */
    std::uint64_t tableAllocations() const;

    /** @name Statistics (accumulated per shard, summed on read, so
     *  concurrent drivers of disjoint shards share no mutable state)
     *  @{ */
    std::uint64_t
    acquires() const
    {
        std::uint64_t n = 0;
        for (const Shard &sh : shards_)
            n += sh.acquires;
        return n;
    }
    std::uint64_t
    conflicts() const
    {
        std::uint64_t n = 0;
        for (const Shard &sh : shards_)
            n += sh.conflicts;
        return n;
    }
    void
    resetStats()
    {
        for (Shard &sh : shards_) {
            sh.acquires = 0;
            sh.conflicts = 0;
        }
    }
    /** @} */

  private:
    void onTimeout(LockKey key, std::uint32_t n, std::uint32_t stamp);

  private:
    /** Index sentinel for the intrusive waiter lists. */
    static constexpr std::uint32_t npos = ~std::uint32_t{0};

    /** One locked row: the holder plus its FIFO of waiter nodes. */
    struct Resource
    {
        os::Process *holder = nullptr;
        std::uint32_t head = npos; ///< Oldest waiter (granted next).
        std::uint32_t tail = npos; ///< Newest waiter.
    };

    /** Pooled waiter-queue node (lives in its shard's pool, linked by
     *  index). The stamp is bumped every time the node is freed, so a
     *  pending timeout event holding (node, stamp) can detect that its
     *  waiter was already granted (or timed out) and the node reused —
     *  the mechanism that makes same-tick grant-vs-timeout
     *  deterministic: whichever fires first invalidates the other. */
    struct Waiter
    {
        os::Process *proc = nullptr;
        std::uint32_t next = npos;
        std::uint32_t stamp = 0;
    };

    /** One independent lock domain: resource table + waiter pool +
     *  counters. Everything an acquire/release mutates lives here, so
     *  two shards can be driven concurrently without sharing state. */
    struct Shard
    {
        sim::FlatMap<LockKey, Resource> table;
        std::vector<Waiter> pool;
        std::uint32_t freeHead = npos;
        std::size_t held = 0;
        std::size_t waiters = 0;
        std::uint64_t poolAllocations = 0;
        std::uint64_t acquires = 0;
        std::uint64_t conflicts = 0;
    };

    std::uint32_t allocWaiter(Shard &sh, os::Process *p);
    void freeWaiter(Shard &sh, std::uint32_t n);

    os::System *sys_ = nullptr;
    Tick timeoutTicks_ = 0; ///< 0 = lock-wait timeouts disabled.
    std::vector<Shard> shards_;
    unsigned shardCount_ = 1;
};

} // namespace odbsim::db

#endif // ODBSIM_DB_LOCK_MANAGER_HH
