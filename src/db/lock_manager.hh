/**
 * @file
 * Row-level exclusive lock manager with FIFO wait queues.
 *
 * Locks exist for *timing* fidelity: functional updates are applied at
 * plan time (see DESIGN.md "plan-then-replay"), but the blocking and
 * wake-ups of contended rows — warehouse and district rows at small
 * warehouse counts — drive the context-switch spike the paper observes
 * at 10 warehouses (Figure 8).
 *
 * Deadlock freedom is by construction: planners emit lock actions in
 * the global (table rank, key) order.
 *
 * Every replayed Lock action probes the resource table, so storage is
 * allocation-free in steady state: a sim::FlatMap from LockKey to a
 * 16-byte Resource, and a free-list-pooled intrusive FIFO replacing
 * the per-resource std::deque — waiter nodes live in one shared
 * vector and each resource threads head/tail indices through it, so
 * enqueueing a waiter or handing a lock over never touches the heap
 * once the pool has reached its high-water mark (observable via
 * tableAllocations()).
 */

#ifndef ODBSIM_DB_LOCK_MANAGER_HH
#define ODBSIM_DB_LOCK_MANAGER_HH

#include <cstdint>
#include <vector>

#include "db/types.hh"
#include "os/process.hh"
#include "os/system.hh"
#include "sim/flat_map.hh"
#include "sim/stats.hh"

namespace odbsim::db
{

/**
 * Exclusive row-lock table.
 */
class LockManager
{
  public:
    /**
     * Bind the owning system. Required for lock-wait timeouts (the
     * fault plan's lockWaitTimeoutMs knob): with timeouts enabled,
     * every enqueued waiter schedules a timeout event; a waiter still
     * queued when it fires is unlinked and woken *without* the lock
     * (the caller detects this via holderOf() and aborts). Without
     * the knob nothing is scheduled — the inert path is unchanged.
     */
    void bind(os::System *sys);

    /**
     * Try to acquire @p key for @p p.
     * @return true if granted; false if @p p was enqueued and must
     *         block (it will be woken holding the lock).
     */
    bool acquire(os::Process *p, LockKey key);

    /** Current holder of @p key (nullptr if unheld). After a wake, a
     *  waiter distinguishes grant from timeout by checking whether it
     *  is now the holder. */
    os::Process *holderOf(LockKey key) const;

    /** Release one lock, granting the oldest queued waiter. */
    void release(os::Process *p, LockKey key, os::System &sys);

    /**
     * Release every lock in @p held (granting queued waiters) and
     * clear the vector.
     */
    void releaseAll(os::Process *p, std::vector<LockKey> &held,
                    os::System &sys);

    /**
     * Locks currently granted — an explicit granted-holder count,
     * maintained on grant/release, so it stays correct regardless of
     * how the resource table stores (or retires) empty entries.
     * Queued waiters do not count until the lock is handed to them.
     */
    std::size_t heldCount() const { return held_; }

    /** Waiters currently queued across all resources. */
    std::size_t waiterCount() const { return waiters_; }

    /**
     * Pre-size the resource table for @p resources simultaneously
     * held locks and the waiter pool for @p waiters simultaneously
     * queued processes.
     */
    void reserve(std::size_t resources, std::size_t waiters);

    /**
     * Growth events of the resource table plus the waiter pool
     * (perf-test hook). Steady-state churn at or below the high-water
     * population must not advance this.
     */
    std::uint64_t
    tableAllocations() const
    {
        return table_.allocations() + poolAllocations_;
    }

    /** @name Statistics @{ */
    std::uint64_t acquires() const { return acquires_.value(); }
    std::uint64_t conflicts() const { return conflicts_.value(); }
    void
    resetStats()
    {
        acquires_.reset();
        conflicts_.reset();
    }
    /** @} */

  private:
    void onTimeout(LockKey key, std::uint32_t n, std::uint32_t stamp);

  private:
    /** Index sentinel for the intrusive waiter lists. */
    static constexpr std::uint32_t npos = ~std::uint32_t{0};

    /** One locked row: the holder plus its FIFO of waiter nodes. */
    struct Resource
    {
        os::Process *holder = nullptr;
        std::uint32_t head = npos; ///< Oldest waiter (granted next).
        std::uint32_t tail = npos; ///< Newest waiter.
    };

    /** Pooled waiter-queue node (lives in pool_, linked by index).
     *  The stamp is bumped every time the node is freed, so a pending
     *  timeout event holding (node, stamp) can detect that its waiter
     *  was already granted (or timed out) and the node reused — the
     *  mechanism that makes same-tick grant-vs-timeout deterministic:
     *  whichever fires first invalidates the other. */
    struct Waiter
    {
        os::Process *proc = nullptr;
        std::uint32_t next = npos;
        std::uint32_t stamp = 0;
    };

    std::uint32_t allocWaiter(os::Process *p);
    void freeWaiter(std::uint32_t n);

    os::System *sys_ = nullptr;
    Tick timeoutTicks_ = 0; ///< 0 = lock-wait timeouts disabled.
    sim::FlatMap<LockKey, Resource> table_;
    std::vector<Waiter> pool_;
    std::uint32_t freeHead_ = npos;
    std::size_t held_ = 0;
    std::size_t waiters_ = 0;
    std::uint64_t poolAllocations_ = 0;
    Counter acquires_;
    Counter conflicts_;
};

} // namespace odbsim::db

#endif // ODBSIM_DB_LOCK_MANAGER_HH
