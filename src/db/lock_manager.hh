/**
 * @file
 * Row-level exclusive lock manager with FIFO wait queues.
 *
 * Locks exist for *timing* fidelity: functional updates are applied at
 * plan time (see DESIGN.md "plan-then-replay"), but the blocking and
 * wake-ups of contended rows — warehouse and district rows at small
 * warehouse counts — drive the context-switch spike the paper observes
 * at 10 warehouses (Figure 8).
 *
 * Deadlock freedom is by construction: planners emit lock actions in
 * the global (table rank, key) order.
 */

#ifndef ODBSIM_DB_LOCK_MANAGER_HH
#define ODBSIM_DB_LOCK_MANAGER_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "db/types.hh"
#include "os/process.hh"
#include "os/system.hh"
#include "sim/stats.hh"

namespace odbsim::db
{

/**
 * Exclusive row-lock table.
 */
class LockManager
{
  public:
    /**
     * Try to acquire @p key for @p p.
     * @return true if granted; false if @p p was enqueued and must
     *         block (it will be woken holding the lock).
     */
    bool acquire(os::Process *p, LockKey key);

    /** Release one lock, granting the oldest queued waiter. */
    void release(os::Process *p, LockKey key, os::System &sys);

    /**
     * Release every lock in @p held (granting queued waiters) and
     * clear the vector.
     */
    void releaseAll(os::Process *p, std::vector<LockKey> &held,
                    os::System &sys);

    /** Locks currently granted. */
    std::size_t heldCount() const { return table_.size(); }

    /** @name Statistics @{ */
    std::uint64_t acquires() const { return acquires_.value(); }
    std::uint64_t conflicts() const { return conflicts_.value(); }
    void
    resetStats()
    {
        acquires_.reset();
        conflicts_.reset();
    }
    /** @} */

  private:
    struct Resource
    {
        os::Process *holder = nullptr;
        std::deque<os::Process *> waiters;
    };

    std::unordered_map<LockKey, Resource> table_;
    Counter acquires_;
    Counter conflicts_;
};

} // namespace odbsim::db

#endif // ODBSIM_DB_LOCK_MANAGER_HH
