/**
 * @file
 * Implicit B-tree index: the node structure is computed from the key
 * domain rather than materialized. Given a capacity, keys-per-leaf and
 * fanout, every level's node count and block extent are fixed, and a
 * lookup deterministically yields the root-to-leaf path of block ids.
 *
 * This keeps 800-warehouse schemas (10M+ blocks) in O(1) memory while
 * the buffer cache and CPU caches still see the *real* block addresses
 * an index traversal touches — upper levels are shared and hot, leaves
 * are as cold as their key range.
 */

#ifndef ODBSIM_DB_BTREE_HH
#define ODBSIM_DB_BTREE_HH

#include <cstdint>

#include "db/types.hh"

namespace odbsim::db
{

/** Maximum supported tree height (root..leaf). */
constexpr unsigned maxBtreeHeight = 5;

/** Root-to-leaf path of block ids. */
struct IndexPath
{
    BlockId node[maxBtreeHeight] = {};
    unsigned height = 0;
    /** Key slot within the leaf. */
    std::uint32_t leafSlot = 0;

    BlockId leaf() const { return node[height - 1]; }
};

/**
 * A computed (non-materialized) B-tree over the key domain
 * [0, capacity).
 */
class ImplicitBTree
{
  public:
    /**
     * @param base First block id of the index extent.
     * @param capacity Maximum number of keys.
     * @param keys_per_leaf Leaf occupancy.
     * @param fanout Internal-node fanout.
     */
    ImplicitBTree(BlockId base, std::uint64_t capacity,
                  std::uint32_t keys_per_leaf, std::uint32_t fanout);

    /** Blocks consumed by the whole index extent. */
    std::uint64_t blocksUsed() const { return totalBlocks_; }

    /** Levels including the leaf level. */
    unsigned height() const { return height_; }

    std::uint64_t capacity() const { return capacity_; }

    /** Compute the root-to-leaf path for @p key (< capacity). */
    IndexPath lookup(std::uint64_t key) const;

    /** Nodes at @p level (0 = leaves). */
    std::uint64_t levelNodes(unsigned level) const
    {
        return levelNodes_[level];
    }

    /** First block of @p level's extent (0 = leaves). */
    BlockId levelBase(unsigned level) const { return levelBase_[level]; }

    std::uint32_t keysPerLeaf() const { return keysPerLeaf_; }

  private:
    BlockId base_;
    std::uint64_t capacity_;
    std::uint32_t keysPerLeaf_;
    std::uint32_t fanout_;
    unsigned height_ = 0;
    /** Node count per level; level 0 = leaves. */
    std::uint64_t levelNodes_[maxBtreeHeight] = {};
    /** First block of each level's extent (level 0 = leaves). */
    BlockId levelBase_[maxBtreeHeight] = {};
    std::uint64_t totalBlocks_ = 0;
};

} // namespace odbsim::db

#endif // ODBSIM_DB_BTREE_HH
