/**
 * @file
 * DBWR: the database-writer background process.
 *
 * Two sources feed it, as in Oracle:
 *  - the *urgent* queue: dirty blocks evicted from the buffer cache
 *    (no longer resident, must reach disk);
 *  - the *checkpoint* queue: blocks registered when first dirtied,
 *    written back once they age past the checkpoint limit — so hot
 *    blocks coalesce many modifications into one write at small
 *    warehouse counts, while cold dirty blocks stream out at scaled
 *    configurations. This produces the write-back component of the
 *    paper's Figure 7 disk-write traffic, on top of the redo log.
 */

#ifndef ODBSIM_DB_DB_WRITER_HH
#define ODBSIM_DB_DB_WRITER_HH

#include <cstdint>
#include <utility>

#include "db/buffer_cache.hh"
#include "db/cost_model.hh"
#include "db/types.hh"
#include "os/process.hh"
#include "os/system.hh"
#include "sim/pooled_fifo.hh"

namespace odbsim::db
{

class LogManager;

/** DBWR batching parameters. */
struct DbWriterConfig
{
    /** Blocks written per DBWR activation batch. */
    unsigned batchSize = 32;
    /** Urgent-queue depth that wakes an idle DBWR early. */
    unsigned wakeThreshold = 16;
    /** Maximum writes in flight before DBWR throttles itself. */
    unsigned maxOutstanding = 256;
    /** Dirty age after which a block is checkpointed out. Long, as
     *  Oracle's incremental checkpoint is: most write-back traffic is
     *  eviction-driven under cache pressure. */
    Tick checkpointAge = 5 * tickPerSec;
    /** Idle rescan period. */
    Tick scanInterval = 100 * tickPerMs;
    /** Dirty backlog that forces writes regardless of age. */
    unsigned maxDirtyBacklog = 30000;
};

/**
 * Write-back queues plus the DBWR process.
 */
class DbWriter
{
  public:
    DbWriter(os::System &sys, const DbCostModel &costs, BufferCache &bc,
             const DbWriterConfig &cfg = {});

    /** Spawn the DBWR background process. */
    void start();

    /**
     * Bind the redo-log manager so DBWR can advance the checkpoint
     * marker whenever its checkpoint queue fully drains — every dirty
     * block registered before that point is on disk, so crash
     * recovery need not replay redo older than it.
     */
    void bindLog(LogManager *log) { log_ = log; }

    /** A dirty block was evicted and must be written. */
    void enqueueEvicted(BlockId b);

    /** A resident block was dirtied (checkpoint-queue registration). */
    void noteDirty(BlockId b, Tick now);

    std::size_t urgentDepth() const { return urgent_.size(); }
    std::size_t checkpointDepth() const { return ckpt_.size(); }
    unsigned outstanding() const { return outstanding_; }

    /** @name Statistics @{ */
    std::uint64_t blocksWritten() const { return written_; }
    /** Work-queue pool growth events (zero-allocation gate hook). */
    std::uint64_t
    queueAllocations() const
    {
        return urgent_.allocations() + ckpt_.allocations();
    }
    void resetStats() { written_ = 0; }
    /** @} */

  private:
    class DbwrProcess;

    os::System &sys_;
    const DbCostModel &costs_;
    BufferCache &bc_;
    DbWriterConfig cfg_;
    os::Process *proc_ = nullptr;
    LogManager *log_ = nullptr;
    bool sleeping_ = false;
    bool throttled_ = false;
    sim::PooledFifo<BlockId> urgent_;
    sim::PooledFifo<std::pair<BlockId, Tick>> ckpt_;
    unsigned outstanding_ = 0;
    std::uint64_t written_ = 0;
};

} // namespace odbsim::db

#endif // ODBSIM_DB_DB_WRITER_HH
