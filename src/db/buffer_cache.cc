#include "db/buffer_cache.hh"

#include "sim/logging.hh"

namespace odbsim::db
{

BufferCache::BufferCache(std::uint64_t frames)
    : frameMod_(frames)
{
    odbsim_assert(frames >= 8, "buffer cache needs at least 8 frames");
    frames_.resize(frames + 1);
    sentinel_ = static_cast<std::uint32_t>(frames);
    frames_[sentinel_].prev = sentinel_;
    frames_[sentinel_].next = sentinel_;
    // Residency can never exceed the frame count, so after this the
    // index never rehashes (mapAllocations() stays flat).
    map_.reserve(frames);
}

void
BufferCache::unlink(std::uint32_t f)
{
    Frame &fr = frames_[f];
    frames_[fr.prev].next = fr.next;
    frames_[fr.next].prev = fr.prev;
}

void
BufferCache::pushFront(std::uint32_t f)
{
    Frame &fr = frames_[f];
    fr.next = frames_[sentinel_].next;
    fr.prev = sentinel_;
    frames_[fr.next].prev = f;
    frames_[sentinel_].next = f;
}

BufferLookup
BufferCache::lookup(BlockId b)
{
    ++gets_;
    const std::uint32_t *slot = map_.find(b);
    if (!slot) {
        ++misses_;
        return BufferLookup{false, 0};
    }
    const std::uint32_t f = *slot;
    unlink(f);
    pushFront(f);
    return BufferLookup{true, f};
}

BufferVictim
BufferCache::allocate(BlockId b)
{
    odbsim_assert(map_.find(b) == nullptr,
                  "allocate for already-resident block ", b);
    BufferVictim out;

    std::uint32_t f;
    if (nextFree_ < sentinel_) {
        f = static_cast<std::uint32_t>(nextFree_++);
    } else {
        // Evict from the LRU tail, skipping frames with in-flight DMA.
        f = frames_[sentinel_].prev;
        std::uint64_t walked = 0;
        while (f != sentinel_ && frames_[f].ioPending) {
            f = frames_[f].prev;
            ++walked;
        }
        odbsim_assert(f != sentinel_,
                      "all ", sentinel_, " frames are I/O pending");
        (void)walked;
        Frame &victim = frames_[f];
        out.hadBlock = true;
        out.evictedBlock = victim.block;
        out.wasDirty = victim.dirty;
        if (victim.dirty)
            ++dirtyEvictions_;
        map_.erase(victim.block);
        unlink(f);
    }

    Frame &fr = frames_[f];
    fr.block = b;
    fr.dirty = false;
    fr.ioPending = true;
    map_.findOrInsert(b) = f;
    pushFront(f);
    out.frame = f;
    return out;
}

void
BufferCache::fillComplete(std::uint64_t frame)
{
    frames_[frame].ioPending = false;
}

void
BufferCache::markDirty(std::uint64_t frame)
{
    frames_[frame].dirty = true;
}

void
BufferCache::prefill(BlockId b, bool dirty)
{
    if (map_.find(b) != nullptr)
        return;
    if (nextFree_ >= sentinel_)
        return;
    const std::uint32_t f = static_cast<std::uint32_t>(nextFree_++);
    Frame &fr = frames_[f];
    fr.block = b;
    fr.dirty = dirty;
    fr.ioPending = false;
    map_.findOrInsert(b) = f;
    pushFront(f);
}

void
BufferCache::markClean(BlockId b)
{
    const std::uint32_t *f = map_.find(b);
    if (f)
        frames_[*f].dirty = false;
}

void
BufferCache::resetStats()
{
    gets_ = 0;
    misses_ = 0;
    dirtyEvictions_ = 0;
}

} // namespace odbsim::db
