#include "db/buffer_cache.hh"

#include <bit>

#include "sim/logging.hh"

namespace odbsim::db
{

BufferCache::BufferCache(std::uint64_t frames, unsigned shards)
    : frameMod_(frames), totalFrames_(frames), shardCount_(shards)
{
    odbsim_assert(shards >= 1 && shards <= 256 &&
                      std::has_single_bit(shards),
                  "buffer cache shard count must be a power of two in "
                  "[1, 256], got ",
                  shards);
    odbsim_assert(frames >= 8 * shards,
                  "buffer cache needs at least 8 frames per shard");
    // One shared frame array; the K list sentinels live past the end
    // so frame indices stay global and dense.
    frames_.resize(frames + shards);
    shards_.resize(shards);
    std::uint64_t base = 0;
    for (unsigned s = 0; s < shards; ++s) {
        Shard &sh = shards_[s];
        const std::uint64_t count =
            frames / shards + (s < frames % shards ? 1 : 0);
        sh.nextFree = base;
        sh.freeEnd = base + count;
        sh.sentinel = static_cast<std::uint32_t>(frames + s);
        frames_[sh.sentinel].prev = sh.sentinel;
        frames_[sh.sentinel].next = sh.sentinel;
        // Residency per shard can never exceed its frame share, so
        // after this no index ever rehashes (mapAllocations() flat).
        sh.map.reserve(count);
        base += count;
    }
}

std::uint64_t
BufferCache::residentBlocks() const
{
    std::uint64_t total = 0;
    for (const Shard &sh : shards_)
        total += sh.map.size();
    return total;
}

std::uint64_t
BufferCache::mapAllocations() const
{
    std::uint64_t total = 0;
    for (const Shard &sh : shards_)
        total += sh.map.allocations();
    return total;
}

void
BufferCache::unlink(std::uint32_t f)
{
    Frame &fr = frames_[f];
    frames_[fr.prev].next = fr.next;
    frames_[fr.next].prev = fr.prev;
}

void
BufferCache::pushFront(Shard &sh, std::uint32_t f)
{
    Frame &fr = frames_[f];
    fr.next = frames_[sh.sentinel].next;
    fr.prev = sh.sentinel;
    frames_[fr.next].prev = f;
    frames_[sh.sentinel].next = f;
}

BufferLookup
BufferCache::lookup(BlockId b)
{
    Shard &sh = shards_[shardOf(b)];
    ++sh.gets;
    const std::uint32_t *slot = sh.map.find(b);
    if (!slot) {
        ++sh.misses;
        return BufferLookup{false, 0};
    }
    const std::uint32_t f = *slot;
    unlink(f);
    pushFront(sh, f);
    return BufferLookup{true, f};
}

BufferVictim
BufferCache::allocate(BlockId b)
{
    Shard &sh = shards_[shardOf(b)];
    odbsim_assert(sh.map.find(b) == nullptr,
                  "allocate for already-resident block ", b);
    BufferVictim out;

    std::uint32_t f;
    if (sh.nextFree < sh.freeEnd) {
        f = static_cast<std::uint32_t>(sh.nextFree++);
    } else {
        // Evict from the shard's LRU tail, skipping frames with
        // in-flight DMA.
        f = frames_[sh.sentinel].prev;
        std::uint64_t walked = 0;
        while (f != sh.sentinel && frames_[f].ioPending) {
            f = frames_[f].prev;
            ++walked;
        }
        odbsim_assert(f != sh.sentinel, "shard ", shardOf(b),
                      ": all frames are I/O pending");
        (void)walked;
        Frame &victim = frames_[f];
        out.hadBlock = true;
        out.evictedBlock = victim.block;
        out.wasDirty = victim.dirty;
        if (victim.dirty)
            ++sh.dirtyEvictions;
        sh.map.erase(victim.block);
        unlink(f);
    }

    Frame &fr = frames_[f];
    fr.block = b;
    fr.dirty = false;
    fr.ioPending = true;
    sh.map.findOrInsert(b) = f;
    pushFront(sh, f);
    out.frame = f;
    return out;
}

void
BufferCache::fillComplete(std::uint64_t frame)
{
    frames_[frame].ioPending = false;
}

void
BufferCache::markDirty(std::uint64_t frame)
{
    frames_[frame].dirty = true;
}

void
BufferCache::prefill(BlockId b, bool dirty)
{
    Shard &sh = shards_[shardOf(b)];
    if (sh.map.find(b) != nullptr)
        return;
    if (sh.nextFree >= sh.freeEnd)
        return;
    const std::uint32_t f = static_cast<std::uint32_t>(sh.nextFree++);
    Frame &fr = frames_[f];
    fr.block = b;
    fr.dirty = dirty;
    fr.ioPending = false;
    sh.map.findOrInsert(b) = f;
    pushFront(sh, f);
}

void
BufferCache::markClean(BlockId b)
{
    const std::uint32_t *f = shards_[shardOf(b)].map.find(b);
    if (f)
        frames_[*f].dirty = false;
}

void
BufferCache::resetStats()
{
    for (Shard &sh : shards_) {
        sh.gets = 0;
        sh.misses = 0;
        sh.dirtyEvictions = 0;
    }
}

} // namespace odbsim::db
