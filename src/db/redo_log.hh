/**
 * @file
 * Redo logging with group commit.
 *
 * Committing server processes hand their redo volume to the LogManager
 * and block; the LGWR background process batches everything that
 * arrived since the previous flush into one sequential write to the
 * dedicated log drives and wakes the whole group when it is durable.
 * The paper measures ~6 KB of log data per transaction independent of
 * W and P — the planner layer supplies those bytes.
 */

#ifndef ODBSIM_DB_REDO_LOG_HH
#define ODBSIM_DB_REDO_LOG_HH

#include <cstdint>
#include <vector>

#include "db/cost_model.hh"
#include "os/process.hh"
#include "os/system.hh"
#include "sim/stats.hh"

namespace odbsim::db
{

/**
 * Group-commit redo log manager plus its LGWR process.
 */
class LogManager
{
  public:
    LogManager(os::System &sys, const DbCostModel &costs);

    /** Spawn the LGWR background process. */
    void start();

    /**
     * Register @p bytes of redo for @p p's commit. The caller must
     * return NextAction::After::Block; it is woken when the redo is
     * on disk.
     */
    void requestCommit(os::Process *p, std::uint32_t bytes);

    /** @name Checkpointing (bounds crash-recovery redo) @{ */
    /**
     * Mark a checkpoint: everything flushed so far is also in the
     * data files, so recovery only replays redo written after this
     * point. DBWR advances it whenever its checkpoint queue drains.
     */
    void advanceCheckpoint() { ckptBytes_ = totalBytesFlushed_; }

    /** Redo bytes written since the last checkpoint — the volume a
     *  crash recovery must replay. Based on a whole-run counter that
     *  measurement-window resets do not touch. */
    std::uint64_t
    redoSinceCheckpoint() const
    {
        return totalBytesFlushed_ - ckptBytes_;
    }
    /** @} */

    /** @name Statistics @{ */
    std::uint64_t flushes() const { return flushes_; }
    std::uint64_t bytesFlushed() const { return bytesFlushed_; }
    std::uint64_t commitsServed() const { return commitsServed_; }
    const RunningStat &groupSize() const { return groupSize_; }
    void resetStats();
    /** @} */

  private:
    class LgwrProcess;

    os::System &sys_;
    const DbCostModel &costs_;
    os::Process *lgwr_ = nullptr;
    bool lgwrIdle_ = false;

    std::uint64_t pendingBytes_ = 0;
    std::vector<os::Process *> pendingWaiters_;

    std::uint64_t flushes_ = 0;
    std::uint64_t bytesFlushed_ = 0;
    std::uint64_t commitsServed_ = 0;
    /** Whole-run flush volume: never reset (resetStats() zeroes the
     *  windowed bytesFlushed_, which would underflow the checkpoint
     *  arithmetic if it were the marker's base). */
    std::uint64_t totalBytesFlushed_ = 0;
    std::uint64_t ckptBytes_ = 0;
    RunningStat groupSize_;
};

} // namespace odbsim::db

#endif // ODBSIM_DB_REDO_LOG_HH
