/**
 * @file
 * Core identifier types of the database engine.
 */

#ifndef ODBSIM_DB_TYPES_HH
#define ODBSIM_DB_TYPES_HH

#include <cstdint>

namespace odbsim::db
{

/** Global 8 KB-block identifier (position on the virtual volume). */
using BlockId = std::uint64_t;

/** Sentinel for "no block". */
constexpr BlockId invalidBlock = ~static_cast<BlockId>(0);

/** Database block size used throughout the study. */
constexpr std::uint64_t blockBytes = 8192;

/** The tables of the ODB order-entry schema. */
enum class Table : std::uint8_t
{
    Warehouse,
    District,
    Customer,
    History,
    NewOrder,
    Orders,
    OrderLine,
    Item,
    Stock,
    NumTables,
};

constexpr unsigned numTables = static_cast<unsigned>(Table::NumTables);

constexpr const char *
toString(Table t)
{
    switch (t) {
      case Table::Warehouse: return "warehouse";
      case Table::District: return "district";
      case Table::Customer: return "customer";
      case Table::History: return "history";
      case Table::NewOrder: return "new_order";
      case Table::Orders: return "orders";
      case Table::OrderLine: return "order_line";
      case Table::Item: return "item";
      case Table::Stock: return "stock";
      default: return "?";
    }
}

/** A row key: dense 64-bit ordinal within its table. */
using RowKey = std::uint64_t;

/** Lock-resource identifier: table + row key packed. */
using LockKey = std::uint64_t;

constexpr LockKey
makeLockKey(Table t, RowKey row)
{
    return (static_cast<LockKey>(t) << 56) | (row & 0x00ff'ffff'ffff'ffffULL);
}

} // namespace odbsim::db

#endif // ODBSIM_DB_TYPES_HH
