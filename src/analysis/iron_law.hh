/**
 * @file
 * The iron law of database performance (paper Section 3.4):
 *
 *     TPS_mp = (P * F) / (IPX * CPI)
 *
 * Throughput rises with processor count P and clock F, and falls with
 * the instructions executed per transaction (IPX) and the cycles per
 * instruction (CPI).
 */

#ifndef ODBSIM_ANALYSIS_IRON_LAW_HH
#define ODBSIM_ANALYSIS_IRON_LAW_HH

namespace odbsim::analysis
{

/**
 * @brief Multiprocessor transaction throughput predicted by the iron
 * law.
 *
 * @param processors Processor count P.
 * @param freq_hz    Clock frequency F in Hz (cycles per second).
 * @param ipx        Instructions per transaction (raw count, not
 *                   millions).
 * @param cpi        Cycles per instruction.
 * @return Transactions per second; 0 if @p ipx or @p cpi is
 *         non-positive.
 */
inline double
ironLawTps(unsigned processors, double freq_hz, double ipx, double cpi)
{
    if (ipx <= 0.0 || cpi <= 0.0)
        return 0.0;
    return static_cast<double>(processors) * freq_hz / (ipx * cpi);
}

/**
 * @brief The iron law solved for IPX given an observed throughput —
 * useful for cross-checking measured path lengths.
 *
 * @param processors Processor count P.
 * @param freq_hz    Clock frequency F in Hz.
 * @param tps        Observed transactions per second.
 * @param cpi        Cycles per instruction.
 * @return Instructions per transaction implied by the other three
 *         terms; 0 if @p tps or @p cpi is non-positive.
 */
inline double
ironLawIpx(unsigned processors, double freq_hz, double tps, double cpi)
{
    if (tps <= 0.0 || cpi <= 0.0)
        return 0.0;
    return static_cast<double>(processors) * freq_hz / (tps * cpi);
}

/**
 * @brief Utilization-corrected iron law: with CPUs busy a fraction u
 * of the time, the delivered throughput is u * P * F / (IPX * CPI).
 *
 * @param processors  Processor count P.
 * @param freq_hz     Clock frequency F in Hz.
 * @param ipx         Instructions per transaction.
 * @param cpi         Cycles per instruction.
 * @param utilization CPU busy fraction u in [0, 1].
 * @return Transactions per second delivered at that utilization.
 */
inline double
ironLawTpsAtUtilization(unsigned processors, double freq_hz, double ipx,
                        double cpi, double utilization)
{
    return ironLawTps(processors, freq_hz, ipx, cpi) * utilization;
}

} // namespace odbsim::analysis

#endif // ODBSIM_ANALYSIS_IRON_LAW_HH
