/**
 * @file
 * The iron law of database performance (paper Section 3.4):
 *
 *     TPS_mp = (P * F) / (IPX * CPI)
 *
 * Throughput rises with processor count P and clock F, and falls with
 * the instructions executed per transaction (IPX) and the cycles per
 * instruction (CPI).
 */

#ifndef ODBSIM_ANALYSIS_IRON_LAW_HH
#define ODBSIM_ANALYSIS_IRON_LAW_HH

namespace odbsim::analysis
{

/** Multiprocessor transaction throughput predicted by the iron law. */
inline double
ironLawTps(unsigned processors, double freq_hz, double ipx, double cpi)
{
    if (ipx <= 0.0 || cpi <= 0.0)
        return 0.0;
    return static_cast<double>(processors) * freq_hz / (ipx * cpi);
}

/**
 * The iron law solved for IPX given an observed throughput — useful
 * for cross-checking measured path lengths.
 */
inline double
ironLawIpx(unsigned processors, double freq_hz, double tps, double cpi)
{
    if (tps <= 0.0 || cpi <= 0.0)
        return 0.0;
    return static_cast<double>(processors) * freq_hz / (tps * cpi);
}

/**
 * Utilization-corrected iron law: with CPUs busy a fraction u of the
 * time, the delivered throughput is u * P * F / (IPX * CPI).
 */
inline double
ironLawTpsAtUtilization(unsigned processors, double freq_hz, double ipx,
                        double cpi, double utilization)
{
    return ironLawTps(processors, freq_hz, ipx, cpi) * utilization;
}

} // namespace odbsim::analysis

#endif // ODBSIM_ANALYSIS_IRON_LAW_HH
