/**
 * @file
 * CPI decomposition by microarchitectural event, following the paper's
 * Tables 3 and 4:
 *
 * | Component | Formula                                              |
 * |-----------|------------------------------------------------------|
 * | Inst      | 0.5 per instruction                                  |
 * | Branch    | mispredictions * 20                                  |
 * | TLB       | TLB misses * 20                                      |
 * | TC        | TC misses * 20                                       |
 * | L2        | (L2 misses - L3 misses) * 16                         |
 * | L3        | L3 misses * (300 + IOQ time - IOQ time at 1P)        |
 * | Other     | measured cycles/instr - sum of computed components   |
 */

#ifndef ODBSIM_ANALYSIS_CPI_BREAKDOWN_HH
#define ODBSIM_ANALYSIS_CPI_BREAKDOWN_HH

#include "cpu/stall_costs.hh"
#include "perfmon/events.hh"

namespace odbsim::analysis
{

/** Per-event CPI contributions (cycles per instruction). */
struct CpiComponents
{
    double inst = 0.0;
    double branch = 0.0;
    double tlb = 0.0;
    double tc = 0.0;
    double l2 = 0.0;
    double l3 = 0.0;
    double other = 0.0;

    double
    computed() const
    {
        return inst + branch + tlb + tc + l2 + l3;
    }

    double total() const { return computed() + other; }

    /** Fraction of the total CPI attributed to L3 misses. */
    double
    l3Share() const
    {
        const double t = total();
        return t > 0.0 ? l3 / t : 0.0;
    }
};

/**
 * Decompose measured counters into CPI components.
 *
 * @param c Counter deltas over the measurement window.
 * @param ioq_1p_cycles IOQ residency measured on the 1P baseline
 *        (the paper's 102 cycles).
 * @param costs The Table 3 stall-cost model.
 */
CpiComponents computeCpiBreakdown(const perfmon::SystemCounters &c,
                                  double ioq_1p_cycles,
                                  const cpu::StallCosts &costs = {});

} // namespace odbsim::analysis

#endif // ODBSIM_ANALYSIS_CPI_BREAKDOWN_HH
