/**
 * @file
 * Two-segment piecewise-linear modeling with pivot-point extraction —
 * the paper's Section 6 method. The CPI/MPI trend over warehouses is
 * fit by a steep "cached region" line and a shallow "scaled region"
 * line; their intersection, the *pivot point*, is the smallest
 * configuration whose behaviour extrapolates to fully scaled setups.
 */

#ifndef ODBSIM_ANALYSIS_PIECEWISE_HH
#define ODBSIM_ANALYSIS_PIECEWISE_HH

#include <cstddef>
#include <span>

#include "analysis/linreg.hh"

namespace odbsim::analysis
{

/** A fitted two-segment model. */
struct PiecewiseFit
{
    /** Left segment (the cached region). */
    LinearFit cached;
    /** Right segment (the scaled region). */
    LinearFit scaled;
    /** x of the segment intersection — the pivot point. */
    double pivotX = 0.0;
    /** Model value at the pivot. */
    double pivotY = 0.0;
    /** First sample index belonging to the scaled segment. */
    std::size_t breakIndex = 0;
    /** Total SSE of both segments. */
    double sse = 0.0;

    /** Evaluate the model (cached line left of the pivot). */
    double
    predict(double x) const
    {
        return x < pivotX ? cached.predict(x) : scaled.predict(x);
    }
};

/**
 * Fit a two-segment model by scanning every admissible breakpoint
 * (at least two points per segment) and keeping the split with the
 * lowest total SSE. Inputs must be sorted by x; needs >= 4 points.
 */
PiecewiseFit fitTwoSegment(std::span<const double> xs,
                           std::span<const double> ys);

/**
 * Extrapolate the scaled-region line of @p fit to configuration @p x
 * (the paper's use of the pivot: behaviours of larger setups follow
 * the scaled line).
 */
double extrapolateScaled(const PiecewiseFit &fit, double x);

} // namespace odbsim::analysis

#endif // ODBSIM_ANALYSIS_PIECEWISE_HH
