/**
 * @file
 * Two-segment piecewise-linear modeling with pivot-point extraction —
 * the paper's Section 6 method. The CPI/MPI trend over warehouses is
 * fit by a steep "cached region" line and a shallow "scaled region"
 * line; their intersection, the *pivot point*, is the smallest
 * configuration whose behaviour extrapolates to fully scaled setups.
 */

#ifndef ODBSIM_ANALYSIS_PIECEWISE_HH
#define ODBSIM_ANALYSIS_PIECEWISE_HH

#include <cstddef>
#include <span>

#include "analysis/linreg.hh"

namespace odbsim::analysis
{

/**
 * @brief A fitted two-segment model.
 *
 * The x axis is the study's configuration scale (warehouses); the y
 * axis is whatever metric was fit (CPI in cycles/instruction for
 * Figure 17, L3 MPI in misses/instruction for Figure 18).
 */
struct PiecewiseFit
{
    /** Left segment (the cached region). */
    LinearFit cached;
    /** Right segment (the scaled region). */
    LinearFit scaled;
    /** x of the segment intersection — the pivot point (warehouses). */
    double pivotX = 0.0;
    /** Model value at the pivot (units of the fitted metric). */
    double pivotY = 0.0;
    /** First sample index belonging to the scaled segment. */
    std::size_t breakIndex = 0;
    /** Total sum of squared errors of both segments. */
    double sse = 0.0;

    /**
     * @brief Evaluate the model (cached line left of the pivot).
     * @param x Configuration scale (warehouses).
     * @return Modeled metric value at @p x.
     */
    double
    predict(double x) const
    {
        return x < pivotX ? cached.predict(x) : scaled.predict(x);
    }
};

/**
 * @brief Fit a two-segment model by scanning every admissible
 * breakpoint (at least two points per segment) and keeping the split
 * with the lowest total SSE.
 *
 * @param xs Sample x values (warehouses), sorted ascending; >= 4.
 * @param ys Metric values, one per x, same length.
 * @return The best-SSE two-segment fit with its pivot point.
 */
PiecewiseFit fitTwoSegment(std::span<const double> xs,
                           std::span<const double> ys);

/**
 * @brief Extrapolate the scaled-region line of @p fit to
 * configuration @p x (the paper's use of the pivot: behaviours of
 * larger setups follow the scaled line).
 *
 * @param fit A model from fitTwoSegment().
 * @param x   Configuration scale (warehouses), typically > pivotX.
 * @return The scaled-region line's value at @p x.
 */
double extrapolateScaled(const PiecewiseFit &fit, double x);

} // namespace odbsim::analysis

#endif // ODBSIM_ANALYSIS_PIECEWISE_HH
