#include "analysis/table.hh"

#include <algorithm>
#include <cinttypes>

namespace odbsim::analysis
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

TextTable &
TextTable::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
    return *this;
}

std::string
TextTable::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
TextTable::num(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

std::string
TextTable::str() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::string out;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out += "  ";
            out.append(widths[c] - cells[c].size(), ' ');
            out += cells[c];
        }
        out += '\n';
    };
    emit_row(headers_);
    std::string rule;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        rule += "  " + std::string(widths[c], '-');
    out += rule + '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return out;
}

void
TextTable::print() const
{
    std::fputs(str().c_str(), stdout);
}

} // namespace odbsim::analysis
