/**
 * @file
 * Ordinary least-squares line fitting, the building block of the
 * paper's Section 6 linear approximation models.
 */

#ifndef ODBSIM_ANALYSIS_LINREG_HH
#define ODBSIM_ANALYSIS_LINREG_HH

#include <cstddef>
#include <span>

namespace odbsim::analysis
{

/** A fitted line y = slope * x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination. */
    double r2 = 0.0;
    /** Sum of squared residuals. */
    double sse = 0.0;
    std::size_t n = 0;

    double predict(double x) const { return slope * x + intercept; }
};

/**
 * Least-squares fit over paired samples (sizes must match, n >= 2).
 */
LinearFit fitLine(std::span<const double> xs, std::span<const double> ys);

/**
 * x-coordinate where two lines intersect; returns @p fallback when the
 * lines are (nearly) parallel.
 */
double intersectX(const LinearFit &a, const LinearFit &b,
                  double fallback);

} // namespace odbsim::analysis

#endif // ODBSIM_ANALYSIS_LINREG_HH
