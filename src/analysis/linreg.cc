#include "analysis/linreg.hh"

#include <cmath>

#include "sim/logging.hh"

namespace odbsim::analysis
{

LinearFit
fitLine(std::span<const double> xs, std::span<const double> ys)
{
    odbsim_assert(xs.size() == ys.size(), "x/y size mismatch");
    odbsim_assert(xs.size() >= 2, "need at least two points to fit");

    const double n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;

    LinearFit fit;
    fit.n = xs.size();
    if (std::abs(denom) < 1e-12) {
        // Vertical data (all x equal): fall back to a flat line at the
        // mean, which keeps downstream math defined.
        fit.slope = 0.0;
        fit.intercept = sy / n;
    } else {
        fit.slope = (n * sxy - sx * sy) / denom;
        fit.intercept = (sy - fit.slope * sx) / n;
    }

    const double mean_y = sy / n;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double resid = ys[i] - fit.predict(xs[i]);
        fit.sse += resid * resid;
        const double dev = ys[i] - mean_y;
        ss_tot += dev * dev;
    }
    fit.r2 = ss_tot > 0.0 ? 1.0 - fit.sse / ss_tot : 1.0;
    return fit;
}

double
intersectX(const LinearFit &a, const LinearFit &b, double fallback)
{
    const double dslope = a.slope - b.slope;
    if (std::abs(dslope) < 1e-12)
        return fallback;
    return (b.intercept - a.intercept) / dslope;
}

} // namespace odbsim::analysis
