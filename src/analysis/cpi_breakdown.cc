#include "analysis/cpi_breakdown.hh"

#include <algorithm>

namespace odbsim::analysis
{

CpiComponents
computeCpiBreakdown(const perfmon::SystemCounters &c,
                    double ioq_1p_cycles, const cpu::StallCosts &costs)
{
    CpiComponents out;
    const double instr = c.instructions.total();
    if (instr <= 0.0)
        return out;

    out.inst = costs.baseCyclesPerInstr;
    out.branch = c.branchMispredicts.total() *
                 costs.branchMispredictCycles / instr;
    out.tlb = c.tlbMisses.total() * costs.tlbMissCycles / instr;
    out.tc = c.tcMisses.total() * costs.tcMissCycles / instr;
    out.l2 = std::max(0.0, c.l2Misses.total() - c.l3Misses.total()) *
             costs.l2MissCycles / instr;
    const double ioq_excess = std::max(0.0, c.ioqCycles - ioq_1p_cycles);
    out.l3 = c.l3Misses.total() * (costs.l3MissCycles + ioq_excess) /
             instr;
    out.other = c.cpi() - out.computed();
    return out;
}

} // namespace odbsim::analysis
