/**
 * @file
 * Plain-text table formatting for the bench harnesses that regenerate
 * the paper's tables and figures.
 */

#ifndef ODBSIM_ANALYSIS_TABLE_HH
#define ODBSIM_ANALYSIS_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace odbsim::analysis
{

/**
 * A right-aligned fixed-width text table.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row of preformatted cells. */
    TextTable &addRow(std::vector<std::string> cells);

    /** Format a double with @p decimals digits. */
    static std::string num(double v, int decimals = 2);

    /** Format an integer. */
    static std::string num(std::uint64_t v);

    /** Render to a string. */
    std::string str() const;

    /** Print to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace odbsim::analysis

#endif // ODBSIM_ANALYSIS_TABLE_HH
