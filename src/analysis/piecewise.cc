#include "analysis/piecewise.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace odbsim::analysis
{

PiecewiseFit
fitTwoSegment(std::span<const double> xs, std::span<const double> ys)
{
    odbsim_assert(xs.size() == ys.size(), "x/y size mismatch");
    odbsim_assert(xs.size() >= 4,
                  "two-segment fit needs at least 4 points, got ",
                  xs.size());
    for (std::size_t i = 1; i < xs.size(); ++i)
        odbsim_assert(xs[i] >= xs[i - 1], "x values must be sorted");

    PiecewiseFit best;
    double best_sse = std::numeric_limits<double>::infinity();
    bool found_structured = false;

    // Prefer splits with the paper's structure — a steep cached
    // segment meeting a shallow scaled segment — and only fall back
    // to an unconstrained split when no such split exists.
    for (int structured = 1; structured >= 0 && !found_structured;
         --structured) {
        for (std::size_t split = 2; split + 2 <= xs.size(); ++split) {
            const LinearFit left =
                fitLine(xs.subspan(0, split), ys.subspan(0, split));
            const LinearFit right =
                fitLine(xs.subspan(split), ys.subspan(split));
            if (structured && left.slope <= right.slope)
                continue;
            const double sse = left.sse + right.sse;
            if (sse < best_sse) {
                best_sse = sse;
                best.cached = left;
                best.scaled = right;
                best.breakIndex = split;
                best.sse = sse;
                if (structured)
                    found_structured = true;
            }
        }
    }

    // The pivot is the intersection of the two lines; if they are
    // parallel, fall back to the midpoint between the segments. The
    // intersection is clamped into the observed range — beyond it the
    // two-segment model has no support.
    const double fallback =
        0.5 * (xs[best.breakIndex - 1] + xs[best.breakIndex]);
    best.pivotX = intersectX(best.cached, best.scaled, fallback);
    best.pivotX = std::clamp(best.pivotX, xs.front(), xs.back());
    best.pivotY = best.scaled.predict(best.pivotX);
    return best;
}

double
extrapolateScaled(const PiecewiseFit &fit, double x)
{
    return fit.scaled.predict(x);
}

} // namespace odbsim::analysis
