#include "os/scheduler.hh"

#include "os/system.hh"
#include "sim/logging.hh"

namespace odbsim::os
{

Scheduler::Scheduler(System &sys, unsigned num_cpus, Tick quantum)
    : sys_(sys), quantum_(quantum), slots_(num_cpus)
{
    odbsim_assert(num_cpus >= 1, "scheduler needs at least one CPU");
}

void
Scheduler::makeReady(Process *p)
{
    odbsim_assert(p->state_ != Process::State::Running &&
                      p->state_ != Process::State::Ready,
                  "makeReady on runnable process ", p->name());
    p->state_ = Process::State::Ready;
    for (unsigned c = 0; c < slots_.size(); ++c) {
        if (slots_[c].current == nullptr && eligible(p, c)) {
            dispatch(c, p);
            return;
        }
    }
    ready_.pushBack(p);
}

bool
Scheduler::hasEligibleReady(unsigned cpu) const
{
    // With default all-ones masks the first element matches, so this
    // costs the same as the !ready_.empty() check it generalizes.
    for (std::uint32_t n = ready_.head();
         n != decltype(ready_)::npos; n = ready_.next(n)) {
        if (eligible(ready_.at(n), cpu))
            return true;
    }
    return false;
}

void
Scheduler::wake(Process *p, std::uint64_t kernel_instr)
{
    p->pendingKernelInstr_ += kernel_instr;
    if (p->state_ == Process::State::Blocked) {
        makeReady(p);
    } else {
        // The process has not finished retiring the chunk after which
        // it intends to block; remember the wake so the block becomes
        // a no-op.
        p->wakePending_ = true;
    }
}

void
Scheduler::dispatch(unsigned cpu, Process *p)
{
    CpuSlot &slot = slots_[cpu];
    odbsim_assert(slot.current == nullptr, "dispatch on busy CPU ", cpu);
    odbsim_assert(eligible(p, cpu),
                  "dispatch violates affinity of ", p->name());

    p->lastCpu_ = cpu;
    if (!p->numaHomed_) {
        // First dispatch: on a multi-socket topology, first-touch home
        // the process's private (PGA/stack) region on this socket.
        p->numaHomed_ = true;
        sys_.homeProcessPrivate(p, cpu);
    }
    if (slot.lastRun != p || slot.wentIdle) {
        ctxSwitches_.inc();
        p->pendingKernelInstr_ +=
            sys_.kernelCosts().contextSwitchInstr;
        p->pendingExtraCycles_ +=
            sys_.kernelCosts().contextSwitchExtraCycles;
    }
    slot.current = p;
    slot.wentIdle = false;
    slot.sliceStart = sys_.now();
    p->state_ = Process::State::Running;
    runChunk(cpu);
}

void
Scheduler::runChunk(unsigned cpu)
{
    CpuSlot &slot = slots_[cpu];
    Process *p = slot.current;
    odbsim_assert(p, "runChunk on idle CPU ", cpu);

    NextAction act;
    if (p->pendingKernelInstr_ > 0) {
        act.work = sys_.makeKernelWork(p->pendingKernelInstr_,
                                       p->pendingExtraCycles_);
        p->pendingKernelInstr_ = 0;
        p->pendingExtraCycles_ = 0.0;
        act.after = NextAction::After::Continue;
    } else {
        act = p->next(sys_);
    }

    // SMT: a busy sibling thread halves the core's issue bandwidth;
    // both threads retire more slowly while sharing the pipeline.
    const unsigned sibling = sys_.siblingOf(cpu);
    const double scale =
        sibling != cpu && slots_[sibling].current != nullptr
            ? sys_.config().smtCycleFactor
            : 1.0;
    const cpu::ExecResult res =
        sys_.core(cpu).execute(act.work, sys_.now(), scale);

    // Guarantee forward progress even for zero-instruction chunks.
    const Tick span = std::max<Tick>(res.ticks, 1);
    const NextAction::After after = act.after;
    sys_.eq().scheduleAfter(span, [this, cpu, after, res] {
        // Busy time is accounted at retirement so measurement windows
        // never see more busy time than wall time.
        slots_[cpu].busyTicks += res.ticks;
        chunkDone(cpu, after);
    });
}

void
Scheduler::chunkDone(unsigned cpu, NextAction::After after)
{
    CpuSlot &slot = slots_[cpu];
    Process *p = slot.current;
    odbsim_assert(p, "chunkDone on idle CPU ", cpu);

    switch (after) {
      case NextAction::After::Continue:
        if (sys_.now() - slot.sliceStart >= quantum_ &&
            hasEligibleReady(cpu)) {
            // Quantum expired and somebody is waiting: preempt.
            p->state_ = Process::State::Ready;
            ready_.pushBack(p);
            slot.lastRun = p;
            slot.current = nullptr;
            pickNext(cpu);
        } else {
            runChunk(cpu);
        }
        break;

      case NextAction::After::Block:
        if (p->wakePending_) {
            // The wake raced with the chunk; keep running.
            p->wakePending_ = false;
            runChunk(cpu);
        } else {
            p->state_ = Process::State::Blocked;
            slot.lastRun = p;
            slot.current = nullptr;
            pickNext(cpu);
        }
        break;

      case NextAction::After::Terminate:
        p->state_ = Process::State::Done;
        slot.lastRun = p;
        slot.current = nullptr;
        pickNext(cpu);
        break;
    }
}

void
Scheduler::pickNext(unsigned cpu)
{
    CpuSlot &slot = slots_[cpu];
    // Frontmost ready process allowed on this CPU; with default
    // all-ones masks this is exactly the legacy front pop.
    std::uint32_t prev = decltype(ready_)::npos;
    for (std::uint32_t n = ready_.head();
         n != decltype(ready_)::npos; prev = n, n = ready_.next(n)) {
        if (eligible(ready_.at(n), cpu)) {
            Process *p = ready_.erase(prev, n);
            dispatch(cpu, p);
            return;
        }
    }
    slot.wentIdle = true;
}

void
Scheduler::resetStats()
{
    ctxSwitches_.reset();
    for (auto &slot : slots_)
        slot.busyTicks = 0;
}

} // namespace odbsim::os
