/**
 * @file
 * Instruction-count costs of kernel code paths, calibrated to a Linux
 * 2.4-era kernel on IA-32 (the studied system ran Red Hat Advanced
 * Server 2.1 with a 2.4.9 SMP kernel). These drive the OS-space IPX
 * growth the paper reports in Figure 6.
 */

#ifndef ODBSIM_OS_KERNEL_COSTS_HH
#define ODBSIM_OS_KERNEL_COSTS_HH

#include <cstdint>

namespace odbsim::os
{

/** Kernel path lengths, in instructions. */
struct KernelCosts
{
    /** schedule() + switch_to + runqueue manipulation. */
    std::uint64_t contextSwitchInstr = 7000;
    /** Block-I/O submission syscall path (SCSI request build + issue). */
    std::uint64_t ioSubmitInstr = 6000;
    /** Interrupt + completion + wake-up path per finished I/O. */
    std::uint64_t ioCompleteInstr = 8000;
    /** Asynchronous write submission (no completion wake needed). */
    std::uint64_t asyncWriteInstr = 4500;
    /** Log-flush submission (sequential write, group commit). */
    std::uint64_t logWriteInstr = 5000;
    /** Per-syscall baseline (entry/exit, copies). */
    std::uint64_t syscallBaseInstr = 900;
    /** Extra pipeline-flush style cycles per context switch; lands in
     *  the "Other" CPI component. */
    double contextSwitchExtraCycles = 2500.0;
};

} // namespace odbsim::os

#endif // ODBSIM_OS_KERNEL_COSTS_HH
