/**
 * @file
 * System: the top-level simulated machine — event queue, CPU cores,
 * memory system, scheduler, disk array — and the services (sleep,
 * synchronous block reads, DMA accounting) that the database layer
 * builds on.
 */

#ifndef ODBSIM_OS_SYSTEM_HH
#define ODBSIM_OS_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "mem/hierarchy.hh"
#include "os/disk.hh"
#include "os/kernel_costs.hh"
#include "os/process.hh"
#include "os/scheduler.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace odbsim::os
{

/** Full machine configuration. */
struct SystemConfig
{
    /** Logical CPUs (hardware threads). */
    unsigned numCpus = 4;
    /**
     * Hardware threads per physical core (Hyper-Threading). Sibling
     * threads share one cache hierarchy and contend for issue
     * bandwidth; the paper's machine supported HT but ran with it
     * disabled (Section 3.3) — set 2 to model it enabled.
     */
    unsigned threadsPerCore = 1;
    /**
     * Cycle multiplier applied to a thread whose sibling is busy:
     * NetBurst HT shares the pipeline, so each thread runs slower
     * while the pair retires more in total.
     */
    double smtCycleFactor = 1.45;
    cpu::CoreConfig core;
    mem::HierarchyConfig hierarchy;
    mem::BusConfig bus;
    /** Socket topology (default: one socket, the legacy machine). */
    mem::TopologyConfig topology;
    DiskArrayConfig disks;
    KernelCosts kernel;
    /** Scheduler time slice. */
    Tick quantum = 20 * tickPerMs;
    /** Fault-injection knobs (default: none; structurally inert). */
    sim::FaultConfig faults;
    /**
     * Event-queue ordering structure. The timer wheel (default) and
     * the binary heap fire events in identical (when, seq) order, so
     * whole runs are bit-identical across kinds; the heap is retained
     * as the differential/perf oracle (see docs/SCALE.md).
     */
    EventQueueKind eventQueue = EventQueueKind::wheel;
    /**
     * Host worker threads for conservative parallel DES
     * (sim::ParallelEngine) when this system is one island of a
     * multi-island deployment; 0 selects hardware_concurrency. A
     * host-execution knob: results are bit-identical at any value.
     * Ignored by standalone (internally-queued) systems — the serial
     * engine is the S=1 degenerate case.
     */
    unsigned desThreads = 1;
    std::uint64_t seed = 0x0d'b51edeULL;
};

/**
 * The simulated machine.
 */
class System
{
  public:
    /**
     * Build the machine. With @p external_eq null (the default) the
     * system owns its event queue — the serial engine. A non-null
     * @p external_eq binds every event source in the machine (disks,
     * scheduler, sleeps, lock timeouts, crash plans) to that queue
     * instead: this is how a System becomes one island of a
     * sim::ParallelEngine, executing on the island's queue while the
     * engine owns time advancement. The caller keeps ownership and
     * must outlive the system.
     */
    explicit System(const SystemConfig &cfg,
                    EventQueue *external_eq = nullptr);

    const SystemConfig &config() const { return cfg_; }

    EventQueue &eq() { return eq_; }
    Tick now() const { return eq_.curTick(); }

    mem::MemorySystem &memsys() { return memsys_; }
    const mem::MemorySystem &memsys() const { return memsys_; }

    cpu::CpuCore &core(unsigned i) { return *cores_[i]; }
    const cpu::CpuCore &core(unsigned i) const { return *cores_[i]; }
    unsigned numCpus() const { return static_cast<unsigned>(cores_.size()); }

    /** Physical core index of logical CPU @p i. */
    unsigned
    physicalOf(unsigned i) const
    {
        return i / cfg_.threadsPerCore;
    }

    /** Sibling logical CPU of @p i, or @p i itself without SMT. */
    unsigned
    siblingOf(unsigned i) const
    {
        if (cfg_.threadsPerCore < 2)
            return i;
        return i ^ 1;
    }

    /** @name Socket topology @{ */
    /** Socket count S of the configured topology (>= 1). */
    unsigned numSockets() const { return memsys_.numSockets(); }

    /** Socket owning logical CPU @p i (always 0 at S=1). */
    unsigned
    socketOfCpu(unsigned i) const
    {
        return memsys_.socketOf(physicalOf(i));
    }

    /**
     * Affinity mask over the logical CPUs of sockets
     * [@p first_socket, @p first_socket + @p num_sockets).
     */
    std::uint32_t socketAffinityMask(unsigned first_socket,
                                     unsigned num_sockets) const;

    /**
     * First-touch home @p p's private (PGA/stack) region on the socket
     * of logical CPU @p cpu. Called by the scheduler on the first
     * dispatch; a no-op on single-socket topologies.
     */
    void homeProcessPrivate(Process *p, unsigned cpu);
    /** @} */

    Scheduler &sched() { return sched_; }
    const Scheduler &sched() const { return sched_; }

    DiskArray &disks() { return disks_; }
    const DiskArray &disks() const { return disks_; }

    /** The run's fault plan (inert when no fault knobs are set). */
    sim::FaultPlan &faults() { return faults_; }
    const sim::FaultPlan &faults() const { return faults_; }

    const KernelCosts &kernelCosts() const { return cfg_.kernel; }

    Rng &rng() { return rng_; }

    /** Register and start a process; the system keeps ownership. */
    Process *spawn(std::unique_ptr<Process> p);

    /** Number of processes spawned so far. */
    std::size_t processCount() const { return processes_.size(); }

    /**
     * Submit a synchronous block read on behalf of @p p. The caller
     * must return NextAction::After::Block from the current chunk;
     * the process is woken (with the I/O completion kernel path as
     * pre-work) when the DMA into @p frame_addr finishes.
     */
    void diskReadForProcess(Process *p, std::uint64_t block_id,
                            Addr frame_addr, std::uint64_t bytes);

    /** Submit an asynchronous block write (e.g. DBWR writeback). */
    void diskWriteAsync(std::uint64_t block_id, std::uint64_t bytes,
                        std::function<void()> on_complete);

    /** Put @p p to sleep for @p duration; caller returns Block. */
    void sleepProcess(Process *p, Tick duration,
                      std::uint64_t wake_kernel_instr = 0);

    /** Wake a process blocked through a custom mechanism (locks). */
    void
    wakeProcess(Process *p, std::uint64_t kernel_instr)
    {
        sched_.wake(p, kernel_instr);
    }

    /**
     * Charge kernel instructions (a syscall path) to @p p's next
     * dispatch; runs before the process's next user chunk.
     */
    void
    chargeKernel(Process *p, std::uint64_t instr)
    {
        p->pendingKernelInstr_ += instr;
    }

    /** Build a kernel-mode WorkItem of @p instr instructions. */
    cpu::WorkItem makeKernelWork(std::uint64_t instr,
                                 double extra_cycles = 0.0) const;

    /** True when this system executes on an external (island) queue. */
    bool externallyQueued() const { return ownedEq_ == nullptr; }

    /**
     * Conservative parallel-DES lookahead in ticks: the memory
     * system's minimum cross-socket interconnect latency
     * (hopLatencyCycles × min hops) converted through the core clock.
     * 0 on single-socket topologies.
     */
    Tick desLookaheadTicks() const;

    /** Run the simulation until @p t (absolute). Externally-queued
     *  systems advance only through their engine's run. @{ */
    void
    runUntil(Tick t)
    {
        odbsim_assert(!externallyQueued(),
                      "externally-queued System: advance time through "
                      "the owning ParallelEngine");
        eq_.run(t);
    }

    /** Run the simulation for @p d more ticks. */
    void
    runFor(Tick d)
    {
        runUntil(eq_.curTick() + d);
    }
    /** @} */

    /** @name Measurement-window control @{ */
    void beginMeasurement();
    Tick measurementStart() const { return windowStart_; }
    Tick measurementWindow() const { return now() - windowStart_; }
    /** Utilization of CPU @p i over the current window. */
    double cpuUtilization(unsigned i) const;
    /** Mean utilization over all CPUs. */
    double avgCpuUtilization() const;
    /** @} */

  private:
    SystemConfig cfg_;
    /** Owned queue when no external one was bound (serial engine). */
    std::unique_ptr<EventQueue> ownedEq_;
    /** The queue every event source in this machine schedules on —
     *  ownedEq_ or the island queue passed at construction. */
    EventQueue &eq_;
    /** Constructed before disks_ so drive-event binding can refer to
     *  it; its RNG stream is independent of the workload's. */
    sim::FaultPlan faults_;
    mem::MemorySystem memsys_;
    std::vector<std::unique_ptr<cpu::CpuCore>> cores_;
    DiskArray disks_;
    Scheduler sched_;
    Rng rng_;
    std::vector<std::unique_ptr<Process>> processes_;
    std::uint64_t nextPid_ = 1;
    Tick windowStart_ = 0;
};

} // namespace odbsim::os

#endif // ODBSIM_OS_SYSTEM_HH
