/**
 * @file
 * The simulated process abstraction.
 *
 * A Process is a resumable activity: each time the scheduler dispatches
 * it, the process is asked for its next chunk of work (a WorkItem) and
 * what to do after the chunk retires — keep running, block (the process
 * must already have arranged its own wake-up, e.g. by submitting a disk
 * read or enqueueing on a lock), or terminate.
 */

#ifndef ODBSIM_OS_PROCESS_HH
#define ODBSIM_OS_PROCESS_HH

#include <cstdint>
#include <string>

#include "cpu/work.hh"
#include "mem/addr_space.hh"
#include "sim/types.hh"

namespace odbsim::os
{

class System;

/** What a process wants to do next. */
struct NextAction
{
    enum class After : std::uint8_t
    {
        Continue,  ///< Run the chunk, then ask again.
        Block,     ///< Run the chunk, then sleep until woken.
        Terminate, ///< Run the chunk, then exit.
    };

    cpu::WorkItem work;
    After after = After::Continue;
};

/**
 * Base class for all simulated activities (database server processes,
 * background writers, etc.).
 */
class Process
{
  public:
    enum class State : std::uint8_t
    {
        New,
        Ready,
        Running,
        Blocked,
        Done,
    };

    explicit Process(std::string name)
        : name_(std::move(name))
    {}

    virtual ~Process() = default;

    /** Produce the next chunk of work; called only while Running. */
    virtual NextAction next(System &sys) = 0;

    const std::string &name() const { return name_; }
    std::uint64_t pid() const { return pid_; }
    State state() const { return state_; }

    /** Base of this process's private (stack/PGA) region. */
    Addr
    privateBase() const
    {
        return mem::addrmap::processPrivateBase(pid_);
    }

    /**
     * Restrict the process to the logical CPUs set in @p mask (bit i =
     * CPU i). The default all-ones mask reproduces the unpinned legacy
     * scheduler bit-identically. Set before spawning; island placement
     * uses this to pin servers to a socket's CPUs.
     */
    void setCpuAffinity(std::uint32_t mask) { cpuAffinity_ = mask; }

    /** Allowed-CPU mask (all ones when unpinned). */
    std::uint32_t cpuAffinity() const { return cpuAffinity_; }

    /** Logical CPU of the most recent dispatch. */
    unsigned lastCpu() const { return lastCpu_; }

  private:
    friend class Scheduler;
    friend class System;

    std::string name_;
    std::uint64_t pid_ = 0;
    State state_ = State::New;
    /** Allowed-CPU bitmask; ~0 = any CPU (legacy behaviour). */
    std::uint32_t cpuAffinity_ = ~std::uint32_t{0};
    /** CPU of the most recent dispatch (NUMA first-touch anchor). */
    unsigned lastCpu_ = 0;
    /** Private region already homed to a socket (multi-socket only). */
    bool numaHomed_ = false;
    /** Wake arrived while the process was still retiring a chunk. */
    bool wakePending_ = false;
    /** Kernel instructions to charge before the next user chunk
     *  (interrupt bottom halves, context-switch path). */
    std::uint64_t pendingKernelInstr_ = 0;
    /** Extra non-event cycles charged with the pending kernel work. */
    double pendingExtraCycles_ = 0.0;
};

} // namespace odbsim::os

#endif // ODBSIM_OS_PROCESS_HH
