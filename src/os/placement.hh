/**
 * @file
 * Island-aware process placement policies for multi-socket topologies
 * (the deployment axis of *OLTP on Hardware Islands*; see
 * docs/TOPOLOGY.md).
 *
 * A placement decides which logical CPUs a database server process may
 * run on, and — for Island — which warehouse partition its
 * transactions favour. The policy itself is interpreted by the
 * workload layer (odb::OdbWorkload::start); this header only carries
 * the configuration so os, core and odb share one vocabulary.
 */

#ifndef ODBSIM_OS_PLACEMENT_HH
#define ODBSIM_OS_PLACEMENT_HH

#include <cstdint>

namespace odbsim::os
{

/** How server processes are placed on the socket topology. */
enum class PlacementPolicy : std::uint8_t
{
    /** Legacy behaviour: no pinning, uniform warehouse draws. */
    None,
    /**
     * Shared-everything: one instance spans the machine; processes
     * float freely over every CPU and draw warehouses uniformly (like
     * None, but named as the deployment it models).
     */
    Spread,
    /**
     * Every process is pinned to the first islandSockets sockets —
     * one undersized instance, leaving the remaining sockets' CPUs
     * idle. Mostly a diagnostic extreme.
     */
    Pack,
    /**
     * Hardware islands: the sockets are split into S/islandSockets
     * groups, server processes are pinned to one group each, and
     * their transactions favour that group's warehouse partition
     * (islandSockets == 1 is shared-nothing).
     */
    Island,
};

/** Placement configuration carried from core config to the workload. */
struct PlacementConfig
{
    /** Policy to apply (None = legacy, bit-identical behaviour). */
    PlacementPolicy policy = PlacementPolicy::None;
    /** Sockets per island (Island) or instance width (Pack). */
    unsigned islandSockets = 1;
    /**
     * Probability that an Island-partitioned transaction draws its
     * warehouse from the whole database instead of its own partition
     * — the distributed-transaction fraction that makes shared-nothing
     * imperfect in practice.
     */
    double crossIslandFraction = 0.15;
    /**
     * Extra instructions charged at commit when an Island-partitioned
     * transaction actually touched a warehouse outside its partition:
     * the software cost of distributed coordination (2PC messaging,
     * duplicated logging) that a shared-everything deployment never
     * pays. This is the counterweight to the hardware remote-access
     * penalty — it is what makes the deployment sweep's ordering
     * invert as the hop penalty approaches zero (docs/TOPOLOGY.md).
     */
    std::uint64_t crossIslandCoordInstr = 400000;
};

/** Human-readable policy name (CSV/report labels). */
constexpr const char *
toString(PlacementPolicy p)
{
    switch (p) {
      case PlacementPolicy::None:
        return "none";
      case PlacementPolicy::Spread:
        return "spread";
      case PlacementPolicy::Pack:
        return "pack";
      case PlacementPolicy::Island:
        return "island";
    }
    return "?";
}

} // namespace odbsim::os

#endif // ODBSIM_OS_PLACEMENT_HH
