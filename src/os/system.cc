#include "os/system.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace odbsim::os
{

System::System(const SystemConfig &cfg, EventQueue *external_eq)
    : cfg_(cfg),
      ownedEq_(external_eq
                   ? nullptr
                   : std::make_unique<EventQueue>(cfg.eventQueue)),
      eq_(external_eq ? *external_eq : *ownedEq_),
      faults_(cfg.faults, cfg.seed ^ 0xfa17ULL),
      memsys_(cfg.numCpus / std::max(1u, cfg.threadsPerCore),
              cfg.hierarchy, cfg.bus, cfg.core.samplePeriod,
              cfg.topology),
      disks_(cfg.disks, eq_, cfg.seed ^ 0xd15cULL),
      sched_(*this, cfg.numCpus, cfg.quantum),
      rng_(cfg.seed)
{
    odbsim_assert(cfg.threadsPerCore == 1 || cfg.threadsPerCore == 2,
                  "threadsPerCore must be 1 or 2");
    odbsim_assert(cfg.numCpus % cfg.threadsPerCore == 0,
                  "numCpus must be a multiple of threadsPerCore");
    for (unsigned i = 0; i < cfg.numCpus; ++i) {
        cores_.push_back(std::make_unique<cpu::CpuCore>(
            i, cfg.core, memsys_, cfg.seed + i,
            i / cfg.threadsPerCore));
    }
    disks_.bindFaults(&faults_);
}

Process *
System::spawn(std::unique_ptr<Process> p)
{
    p->pid_ = nextPid_++;
    Process *raw = p.get();
    processes_.push_back(std::move(p));
    sched_.makeReady(raw);
    return raw;
}

std::uint32_t
System::socketAffinityMask(unsigned first_socket,
                           unsigned num_sockets) const
{
    std::uint32_t mask = 0;
    for (unsigned i = 0; i < numCpus(); ++i) {
        const unsigned s = socketOfCpu(i);
        if (s >= first_socket && s < first_socket + num_sockets)
            mask |= 1u << i;
    }
    odbsim_assert(mask != 0, "socket affinity mask selects no CPU");
    return mask;
}

void
System::homeProcessPrivate(Process *p, unsigned cpu)
{
    if (memsys_.numSockets() <= 1)
        return;
    memsys_.setHomeRegion(p->privateBase(), mem::addrmap::pgaStride,
                          socketOfCpu(cpu));
}

void
System::diskReadForProcess(Process *p, std::uint64_t block_id,
                           Addr frame_addr, std::uint64_t bytes)
{
    // First-touch homing: the filled frame belongs to the socket the
    // requesting process runs on (it is Running right now, so lastCpu
    // is current). -1 on single-socket topologies = no homing.
    const int home =
        memsys_.numSockets() > 1
            ? static_cast<int>(socketOfCpu(p->lastCpu()))
            : -1;
    disks_.readBlock(block_id, bytes, [this, p, frame_addr, bytes,
                                       home] {
        memsys_.dmaFill(frame_addr, bytes, now(), home);
        sched_.wake(p, cfg_.kernel.ioCompleteInstr);
    });
}

void
System::diskWriteAsync(std::uint64_t block_id, std::uint64_t bytes,
                       std::function<void()> on_complete)
{
    disks_.writeBlock(block_id, bytes,
                      [this, bytes, cb = std::move(on_complete)] {
                          memsys_.dmaDrain(bytes, now());
                          if (cb)
                              cb();
                      });
}

void
System::sleepProcess(Process *p, Tick duration,
                     std::uint64_t wake_kernel_instr)
{
    eq_.scheduleAfter(duration, [this, p, wake_kernel_instr] {
        sched_.wake(p, wake_kernel_instr);
    });
}

Tick
System::desLookaheadTicks() const
{
    const double cycles = memsys_.crossSocketLookaheadCycles();
    if (cycles <= 0.0)
        return 0;
    return ClockDomain(cfg_.core.freqHz).cyclesToTicks(cycles);
}

cpu::WorkItem
System::makeKernelWork(std::uint64_t instr, double extra_cycles) const
{
    cpu::WorkItem wi;
    wi.instructions = instr;
    wi.mode = mem::ExecMode::Os;
    wi.codeBase = mem::addrmap::kernelCodeBase;
    wi.codeBytes = mem::addrmap::kernelCodeBytes;
    wi.privateBase = mem::addrmap::kernelDataBase;
    wi.privateBytes = mem::addrmap::kernelDataBytes;
    wi.extraCycles = extra_cycles;
    return wi;
}

void
System::beginMeasurement()
{
    for (auto &c : cores_)
        c->resetCounters();
    memsys_.resetStats();
    disks_.resetStats();
    sched_.resetStats();
    faults_.resetCounters();
    windowStart_ = now();
}

double
System::cpuUtilization(unsigned i) const
{
    const Tick window = measurementWindow();
    if (window == 0)
        return 0.0;
    return static_cast<double>(sched_.busyTicks(i)) /
           static_cast<double>(window);
}

double
System::avgCpuUtilization() const
{
    double sum = 0.0;
    for (unsigned i = 0; i < numCpus(); ++i)
        sum += cpuUtilization(i);
    return sum / numCpus();
}

} // namespace odbsim::os
