#include "os/disk.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "sim/logging.hh"

namespace odbsim::os
{

namespace
{

void
checkLatency(double v, const char *name)
{
    if (!std::isfinite(v) || v < 0.0)
        odbsim_fatal("disk config: ", name,
                     " must be finite and >= 0, got ", v);
}

} // namespace

Disk::Disk(std::string name, const DiskConfig &cfg, EventQueue &eq,
           std::uint64_t seed)
    : name_(std::move(name)), cfg_(cfg), eq_(eq), rng_(seed)
{
    checkLatency(cfg.randomPositionMs, "randomPositionMs");
    checkLatency(cfg.minPositionMs, "minPositionMs");
    checkLatency(cfg.writePositionMs, "writePositionMs");
    checkLatency(cfg.sequentialMs, "sequentialMs");
    if (!std::isfinite(cfg.transferMbPerSec) ||
        cfg.transferMbPerSec <= 0.0) {
        odbsim_fatal("disk config: transferMbPerSec must be > 0, got ",
                     cfg.transferMbPerSec);
    }
}

Tick
Disk::serviceTicks(const DiskRequest &req)
{
    const double transfer_ms =
        static_cast<double>(req.bytes) /
        (cfg_.transferMbPerSec * 1e6) * 1e3;
    double position_ms;
    if (req.sequential) {
        position_ms = cfg_.sequentialMs;
    } else {
        // Exponential spread around the mean, floored at the minimum
        // positioning time. Asynchronous writes destage through the
        // controller's write-behind cache in elevator order.
        const double mean =
            req.write ? cfg_.writePositionMs : cfg_.randomPositionMs;
        position_ms =
            cfg_.minPositionMs +
            rng_.exponential(std::max(0.05, mean - cfg_.minPositionMs));
    }
    Tick t = ticksFromMs(position_ms + transfer_ms);
    if (degradeFactor_ != 1.0) {
        t = static_cast<Tick>(static_cast<double>(t) * degradeFactor_);
    }
    return t;
}

void
Disk::submit(DiskRequest req)
{
    auto &q = req.write ? writeQueue_ : readQueue_;
    q.pushBack(QueuedReq{std::move(req), eq_.curTick()});
    if (!busy_)
        startNext();
}

void
Disk::startNext()
{
    // Demand reads preempt queued write-behind destaging.
    auto &q = !readQueue_.empty() ? readQueue_ : writeQueue_;
    odbsim_assert(!q.empty(), "startNext on empty disk queue");
    busy_ = true;
    busySince_ = eq_.curTick();

    QueuedReq qr = q.popFront();
    current_ = std::move(qr.req);
    currentQueuedAt_ = qr.queuedAt;
    attempt_ = 1;
    beginService();
}

void
Disk::beginService()
{
    eq_.scheduleAfter(serviceTicks(current_), [this] { serviceDone(); });
}

void
Disk::serviceDone()
{
    if (faults_ && faults_->diskFaultsEnabled()) {
        const unsigned max_retries = faults_->config().diskMaxRetries;
        if (attempt_ <= max_retries && faults_->drawDiskTransient()) {
            // Transient medium error: the controller backs off and
            // retries in place. The drive stays busy (head-of-line),
            // but the backoff wait is not service time.
            ++faults_->stats().diskTransientErrors;
            busyTicks_ += eq_.curTick() - busySince_;
            const Tick backoff = faults_->diskBackoffTicks(attempt_);
            ++attempt_;
            eq_.scheduleAfter(backoff, [this] {
                busySince_ = eq_.curTick();
                beginService();
            });
            return;
        }
        if (attempt_ > max_retries)
            ++faults_->stats().diskRetriesExhausted;
    }
    complete();
}

void
Disk::complete()
{
    const Tick now = eq_.curTick();
    busyTicks_ += now - busySince_;
    latency_.add(secondsFromTicks(now - currentQueuedAt_) * 1e3);
    if (current_.write) {
        ++writes_;
        bytesWritten_ += current_.bytes;
    } else {
        ++reads_;
        bytesRead_ += current_.bytes;
    }
    std::function<void()> cb = std::move(current_.onComplete);
    current_ = DiskRequest{};
    busy_ = false;
    if (!readQueue_.empty() || !writeQueue_.empty())
        startNext();
    if (cb)
        cb();
}

void
Disk::takeQueued(std::vector<DiskRequest> &out)
{
    while (!readQueue_.empty())
        out.push_back(std::move(readQueue_.popFront().req));
    while (!writeQueue_.empty())
        out.push_back(std::move(writeQueue_.popFront().req));
}

void
Disk::resetStats()
{
    reads_ = 0;
    writes_ = 0;
    bytesRead_ = 0;
    bytesWritten_ = 0;
    latency_.reset();
    busyTicks_ = 0;
}

DiskArray::DiskArray(const DiskArrayConfig &cfg, EventQueue &eq,
                     std::uint64_t seed)
    : eq_(eq)
{
    odbsim_assert(cfg.dataDisks >= 1, "need at least one data disk");
    odbsim_assert(cfg.logDisks >= 1, "need at least one log disk");
    for (unsigned i = 0; i < cfg.dataDisks; ++i) {
        dataDisks_.push_back(std::make_unique<Disk>(
            "data" + std::to_string(i), cfg.disk, eq, seed + i));
    }
    for (unsigned i = 0; i < cfg.logDisks; ++i) {
        logDisks_.push_back(std::make_unique<Disk>(
            "log" + std::to_string(i), cfg.disk, eq,
            seed + 1000 + i));
    }
}

void
DiskArray::bindFaults(sim::FaultPlan *plan)
{
    faults_ = plan;
    if (!plan)
        return;
    for (auto &d : dataDisks_)
        d->setFaultPlan(plan);
    for (auto &d : logDisks_)
        d->setFaultPlan(plan);
    if (!plan->driveEventsEnabled())
        return;
    for (const sim::DriveFaultEvent &ev : plan->config().driveEvents) {
        if (ev.drive >= dataDisks_.size()) {
            odbsim_fatal("fault config: driveEvents[].drive ", ev.drive,
                         " out of range (", dataDisks_.size(),
                         " data disks)");
        }
        eq_.schedule(ticksFromMs(ev.atMs),
                     [this, ev] { onDriveEvent(ev); });
    }
}

void
DiskArray::onDriveEvent(const sim::DriveFaultEvent &ev)
{
    Disk &d = *dataDisks_[ev.drive];
    if (!ev.fail) {
        d.degrade(ev.degradeFactor);
        return;
    }
    if (d.failed())
        return;
    d.failDrive();
    anyFailed_ = true;
    ++faults_->stats().driveFailures;
    // Orphaned queue entries move to the next surviving drives. The
    // in-service request completes on its own (the data was already
    // in flight). Failure is a rare, one-shot event, so the temporary
    // vector here is exempt from the steady-state allocation gate.
    std::vector<DiskRequest> orphans;
    d.takeQueued(orphans);
    for (DiskRequest &req : orphans) {
        ++faults_->stats().reroutedRequests;
        survivorFrom(ev.drive + 1).submit(std::move(req));
    }
}

Disk &
DiskArray::survivorFrom(std::uint64_t start)
{
    const std::size_t n = dataDisks_.size();
    for (std::size_t i = 0; i < n; ++i) {
        Disk &d = *dataDisks_[(start + i) % n];
        if (!d.failed())
            return d;
    }
    odbsim_fatal("fault injection: every data drive has failed");
}

Disk &
DiskArray::routeData(std::uint64_t block_id)
{
    // Multiplicative hash spreads block ids over the stripe set.
    const std::uint64_t h = block_id * 0x9e3779b97f4a7c15ULL;
    const std::uint64_t slot = h % dataDisks_.size();
    Disk &d = *dataDisks_[slot];
    if (anyFailed_ && d.failed())
        return survivorFrom(slot + 1);
    return d;
}

void
DiskArray::readBlock(std::uint64_t block_id, std::uint64_t bytes,
                     std::function<void()> on_complete)
{
    routeData(block_id).submit(
        DiskRequest{bytes, false, false, std::move(on_complete)});
}

void
DiskArray::writeBlock(std::uint64_t block_id, std::uint64_t bytes,
                      std::function<void()> on_complete)
{
    routeData(block_id).submit(
        DiskRequest{bytes, true, false, std::move(on_complete)});
}

void
DiskArray::writeLog(std::uint64_t bytes, std::function<void()> on_complete)
{
    Disk &d = *logDisks_[nextLogDisk_];
    nextLogDisk_ = (nextLogDisk_ + 1) % logDisks_.size();
    d.submit(DiskRequest{bytes, true, true, std::move(on_complete)});
}

void
DiskArray::readLog(std::uint64_t bytes, std::function<void()> on_complete)
{
    Disk &d = *logDisks_[nextLogReadDisk_];
    nextLogReadDisk_ = (nextLogReadDisk_ + 1) % logDisks_.size();
    d.submit(DiskRequest{bytes, false, true, std::move(on_complete)});
}

std::uint64_t
DiskArray::totalReads() const
{
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_)
        n += d->completedReads();
    for (const auto &d : logDisks_)
        n += d->completedReads();
    return n;
}

std::uint64_t
DiskArray::totalWrites() const
{
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_)
        n += d->completedWrites();
    for (const auto &d : logDisks_)
        n += d->completedWrites();
    return n;
}

std::uint64_t
DiskArray::totalBytesRead() const
{
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_)
        n += d->bytesRead();
    for (const auto &d : logDisks_)
        n += d->bytesRead();
    return n;
}

std::uint64_t
DiskArray::totalBytesWritten() const
{
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_)
        n += d->bytesWritten();
    for (const auto &d : logDisks_)
        n += d->bytesWritten();
    return n;
}

std::uint64_t
DiskArray::dataReads() const
{
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_)
        n += d->completedReads();
    return n;
}

std::uint64_t
DiskArray::dataWrites() const
{
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_)
        n += d->completedWrites();
    return n;
}

std::uint64_t
DiskArray::dataBytesRead() const
{
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_)
        n += d->bytesRead();
    return n;
}

std::uint64_t
DiskArray::dataBytesWritten() const
{
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_)
        n += d->bytesWritten();
    return n;
}

std::uint64_t
DiskArray::logWrites() const
{
    std::uint64_t n = 0;
    for (const auto &d : logDisks_)
        n += d->completedWrites();
    return n;
}

std::uint64_t
DiskArray::logBytesWritten() const
{
    std::uint64_t n = 0;
    for (const auto &d : logDisks_)
        n += d->bytesWritten();
    return n;
}

double
DiskArray::avgDataUtilization(Tick window) const
{
    if (dataDisks_.empty() || window == 0)
        return 0.0;
    double sum = 0.0;
    for (const auto &d : dataDisks_)
        sum += static_cast<double>(d->busyTicks());
    return sum / (static_cast<double>(window) * dataDisks_.size());
}

double
DiskArray::avgReadLatencyMs() const
{
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_) {
        sum += d->latency().mean() * d->latency().count();
        n += d->latency().count();
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

std::uint64_t
DiskArray::queueAllocations() const
{
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_)
        n += d->queueAllocations();
    for (const auto &d : logDisks_)
        n += d->queueAllocations();
    return n;
}

void
DiskArray::resetStats()
{
    for (auto &d : dataDisks_)
        d->resetStats();
    for (auto &d : logDisks_)
        d->resetStats();
}

} // namespace odbsim::os
