#include "os/disk.hh"

#include <algorithm>
#include <memory>

#include "sim/logging.hh"

namespace odbsim::os
{

Disk::Disk(std::string name, const DiskConfig &cfg, EventQueue &eq,
           std::uint64_t seed)
    : name_(std::move(name)), cfg_(cfg), eq_(eq), rng_(seed)
{}

Tick
Disk::serviceTicks(const DiskRequest &req)
{
    const double transfer_ms =
        static_cast<double>(req.bytes) /
        (cfg_.transferMbPerSec * 1e6) * 1e3;
    double position_ms;
    if (req.sequential) {
        position_ms = cfg_.sequentialMs;
    } else {
        // Exponential spread around the mean, floored at the minimum
        // positioning time. Asynchronous writes destage through the
        // controller's write-behind cache in elevator order.
        const double mean =
            req.write ? cfg_.writePositionMs : cfg_.randomPositionMs;
        position_ms =
            cfg_.minPositionMs +
            rng_.exponential(std::max(0.05, mean - cfg_.minPositionMs));
    }
    return ticksFromMs(position_ms + transfer_ms);
}

void
Disk::submit(DiskRequest req)
{
    auto &q = req.write ? writeQueue_ : readQueue_;
    q.emplace_back(std::move(req), eq_.curTick());
    if (!busy_)
        startNext();
}

void
Disk::startNext()
{
    // Demand reads preempt queued write-behind destaging.
    auto &q = !readQueue_.empty() ? readQueue_ : writeQueue_;
    odbsim_assert(!q.empty(), "startNext on empty disk queue");
    busy_ = true;
    busySince_ = eq_.curTick();

    DiskRequest req = std::move(q.front().first);
    const Tick queued_at = q.front().second;
    q.pop_front();

    const Tick service = serviceTicks(req);
    eq_.scheduleAfter(service, [this, req = std::move(req),
                                queued_at]() mutable {
        const Tick now = eq_.curTick();
        busyTicks_ += now - busySince_;
        latency_.add(secondsFromTicks(now - queued_at) * 1e3);
        if (req.write) {
            ++writes_;
            bytesWritten_ += req.bytes;
        } else {
            ++reads_;
            bytesRead_ += req.bytes;
        }
        busy_ = false;
        if (!readQueue_.empty() || !writeQueue_.empty())
            startNext();
        if (req.onComplete)
            req.onComplete();
    });
}

void
Disk::resetStats()
{
    reads_ = 0;
    writes_ = 0;
    bytesRead_ = 0;
    bytesWritten_ = 0;
    latency_.reset();
    busyTicks_ = 0;
}

DiskArray::DiskArray(const DiskArrayConfig &cfg, EventQueue &eq,
                     std::uint64_t seed)
{
    odbsim_assert(cfg.dataDisks >= 1, "need at least one data disk");
    odbsim_assert(cfg.logDisks >= 1, "need at least one log disk");
    for (unsigned i = 0; i < cfg.dataDisks; ++i) {
        dataDisks_.push_back(std::make_unique<Disk>(
            "data" + std::to_string(i), cfg.disk, eq, seed + i));
    }
    for (unsigned i = 0; i < cfg.logDisks; ++i) {
        logDisks_.push_back(std::make_unique<Disk>(
            "log" + std::to_string(i), cfg.disk, eq,
            seed + 1000 + i));
    }
}

void
DiskArray::readBlock(std::uint64_t block_id, std::uint64_t bytes,
                     std::function<void()> on_complete)
{
    // Multiplicative hash spreads block ids over the stripe set.
    const std::uint64_t h = block_id * 0x9e3779b97f4a7c15ULL;
    Disk &d = *dataDisks_[h % dataDisks_.size()];
    d.submit(DiskRequest{bytes, false, false, std::move(on_complete)});
}

void
DiskArray::writeBlock(std::uint64_t block_id, std::uint64_t bytes,
                      std::function<void()> on_complete)
{
    const std::uint64_t h = block_id * 0x9e3779b97f4a7c15ULL;
    Disk &d = *dataDisks_[h % dataDisks_.size()];
    d.submit(DiskRequest{bytes, true, false, std::move(on_complete)});
}

void
DiskArray::writeLog(std::uint64_t bytes, std::function<void()> on_complete)
{
    Disk &d = *logDisks_[nextLogDisk_];
    nextLogDisk_ = (nextLogDisk_ + 1) % logDisks_.size();
    d.submit(DiskRequest{bytes, true, true, std::move(on_complete)});
}

std::uint64_t
DiskArray::totalReads() const
{
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_)
        n += d->completedReads();
    for (const auto &d : logDisks_)
        n += d->completedReads();
    return n;
}

std::uint64_t
DiskArray::totalWrites() const
{
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_)
        n += d->completedWrites();
    for (const auto &d : logDisks_)
        n += d->completedWrites();
    return n;
}

std::uint64_t
DiskArray::totalBytesRead() const
{
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_)
        n += d->bytesRead();
    for (const auto &d : logDisks_)
        n += d->bytesRead();
    return n;
}

std::uint64_t
DiskArray::totalBytesWritten() const
{
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_)
        n += d->bytesWritten();
    for (const auto &d : logDisks_)
        n += d->bytesWritten();
    return n;
}

std::uint64_t
DiskArray::dataReads() const
{
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_)
        n += d->completedReads();
    return n;
}

std::uint64_t
DiskArray::dataWrites() const
{
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_)
        n += d->completedWrites();
    return n;
}

std::uint64_t
DiskArray::dataBytesRead() const
{
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_)
        n += d->bytesRead();
    return n;
}

std::uint64_t
DiskArray::dataBytesWritten() const
{
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_)
        n += d->bytesWritten();
    return n;
}

std::uint64_t
DiskArray::logWrites() const
{
    std::uint64_t n = 0;
    for (const auto &d : logDisks_)
        n += d->completedWrites();
    return n;
}

std::uint64_t
DiskArray::logBytesWritten() const
{
    std::uint64_t n = 0;
    for (const auto &d : logDisks_)
        n += d->bytesWritten();
    return n;
}

double
DiskArray::avgDataUtilization(Tick window) const
{
    if (dataDisks_.empty() || window == 0)
        return 0.0;
    double sum = 0.0;
    for (const auto &d : dataDisks_)
        sum += static_cast<double>(d->busyTicks());
    return sum / (static_cast<double>(window) * dataDisks_.size());
}

double
DiskArray::avgReadLatencyMs() const
{
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto &d : dataDisks_) {
        sum += d->latency().mean() * d->latency().count();
        n += d->latency().count();
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

void
DiskArray::resetStats()
{
    for (auto &d : dataDisks_)
        d->resetStats();
    for (auto &d : logDisks_)
        d->resetStats();
}

} // namespace odbsim::os
