/**
 * @file
 * Disk and disk-array models.
 *
 * Each disk services one request at a time from a FIFO queue. Random
 * requests pay seek + rotational latency + transfer; sequential
 * requests (the redo log) pay a much smaller cost. The studied system
 * had 26 Ultra320 SCSI drives; the array routes data blocks by hash
 * and reserves dedicated drives for the two redo-log files.
 */

#ifndef ODBSIM_OS_DISK_HH
#define ODBSIM_OS_DISK_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace odbsim::os
{

/** Per-drive service model. */
struct DiskConfig
{
    /** Mean positioning time (seek + rotation) for random access, ms
     *  (15 krpm Ultra320 class, with elevator scheduling gains). */
    double randomPositionMs = 3.2;
    /** Minimum positioning time, ms. */
    double minPositionMs = 0.8;
    /** Mean positioning time for asynchronous writes, ms: the
     *  controller's write-behind cache destages them in elevator
     *  order, far cheaper than a cold random read. */
    double writePositionMs = 1.2;
    /** Sequential (log) access service time, ms. */
    double sequentialMs = 0.35;
    /** Media transfer rate, MB/s. */
    double transferMbPerSec = 40.0;
};

/** A single disk request. */
struct DiskRequest
{
    std::uint64_t bytes = 8192;
    bool write = false;
    bool sequential = false;
    /** Invoked at completion time. */
    std::function<void()> onComplete;
};

/**
 * One drive: an in-service request plus two FIFO queues — demand
 * reads are serviced ahead of write-behind destaging, as SCSI
 * controllers of the era did.
 */
class Disk
{
  public:
    Disk(std::string name, const DiskConfig &cfg, EventQueue &eq,
         std::uint64_t seed);

    void submit(DiskRequest req);

    bool busy() const { return busy_; }
    std::size_t
    queueDepth() const
    {
        return readQueue_.size() + writeQueue_.size();
    }

    /** @name Statistics @{ */
    std::uint64_t completedReads() const { return reads_; }
    std::uint64_t completedWrites() const { return writes_; }
    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }
    const RunningStat &latency() const { return latency_; }
    /** Ticks this drive spent servicing requests. */
    Tick busyTicks() const { return busyTicks_; }
    void resetStats();
    /** @} */

  private:
    void startNext();
    Tick serviceTicks(const DiskRequest &req);

    std::string name_;
    DiskConfig cfg_;
    EventQueue &eq_;
    Rng rng_;

    std::deque<std::pair<DiskRequest, Tick>> readQueue_;
    std::deque<std::pair<DiskRequest, Tick>> writeQueue_;
    bool busy_ = false;

    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
    RunningStat latency_;
    Tick busyTicks_ = 0;
    Tick busySince_ = 0;
};

/** Shape of the storage subsystem. */
struct DiskArrayConfig
{
    unsigned dataDisks = 24;
    unsigned logDisks = 2;
    DiskConfig disk;
};

/**
 * The array: data blocks striped by id, log writes round-robined over
 * the dedicated log drives.
 */
class DiskArray
{
  public:
    DiskArray(const DiskArrayConfig &cfg, EventQueue &eq,
              std::uint64_t seed);

    /** Read one data block (random access). */
    void readBlock(std::uint64_t block_id, std::uint64_t bytes,
                   std::function<void()> on_complete);

    /** Write one data block (random access, asynchronous). */
    void writeBlock(std::uint64_t block_id, std::uint64_t bytes,
                    std::function<void()> on_complete);

    /** Sequential write to the redo log. */
    void writeLog(std::uint64_t bytes, std::function<void()> on_complete);

    unsigned numDataDisks() const
    {
        return static_cast<unsigned>(dataDisks_.size());
    }

    /** @name Aggregate statistics over data + log drives @{ */
    std::uint64_t totalReads() const;
    std::uint64_t totalWrites() const;
    std::uint64_t totalBytesRead() const;
    std::uint64_t totalBytesWritten() const;
    std::uint64_t dataReads() const;
    std::uint64_t dataWrites() const;
    std::uint64_t dataBytesRead() const;
    std::uint64_t dataBytesWritten() const;
    std::uint64_t logWrites() const;
    std::uint64_t logBytesWritten() const;
    /** Mean data-drive utilization over an observation window. */
    double avgDataUtilization(Tick window) const;
    double avgReadLatencyMs() const;
    void resetStats();
    /** @} */

    const Disk &dataDisk(unsigned i) const { return *dataDisks_[i]; }

  private:
    std::vector<std::unique_ptr<Disk>> dataDisks_;
    std::vector<std::unique_ptr<Disk>> logDisks_;
    unsigned nextLogDisk_ = 0;
};

} // namespace odbsim::os

#endif // ODBSIM_OS_DISK_HH
