/**
 * @file
 * Disk and disk-array models.
 *
 * Each disk services one request at a time from a FIFO queue. Random
 * requests pay seek + rotational latency + transfer; sequential
 * requests (the redo log) pay a much smaller cost. The studied system
 * had 26 Ultra320 SCSI drives; the array routes data blocks by hash
 * and reserves dedicated drives for the two redo-log files.
 *
 * Fault injection (sim::FaultPlan) adds three degradation modes, all
 * inert unless a plan with the matching knobs is bound: transient
 * medium errors retried in place with capped doubling backoff (the
 * drive stays busy head-of-line, so queued requests feel the stall),
 * degraded drives whose service times stretch by a multiplier, and
 * whole-drive failures after which the array re-routes the drive's
 * traffic to survivors. Retries never allocate: the in-service
 * request lives in the drive, not in a queue node.
 */

#ifndef ODBSIM_OS_DISK_HH
#define ODBSIM_OS_DISK_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/pooled_fifo.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace odbsim::os
{

/** Per-drive service model. */
struct DiskConfig
{
    /** Mean positioning time (seek + rotation) for random access, ms
     *  (15 krpm Ultra320 class, with elevator scheduling gains). */
    double randomPositionMs = 3.2;
    /** Minimum positioning time, ms. */
    double minPositionMs = 0.8;
    /** Mean positioning time for asynchronous writes, ms: the
     *  controller's write-behind cache destages them in elevator
     *  order, far cheaper than a cold random read. */
    double writePositionMs = 1.2;
    /** Sequential (log) access service time, ms. */
    double sequentialMs = 0.35;
    /** Media transfer rate, MB/s. */
    double transferMbPerSec = 40.0;
};

/** A single disk request. */
struct DiskRequest
{
    std::uint64_t bytes = 8192;
    bool write = false;
    bool sequential = false;
    /** Invoked at completion time. */
    std::function<void()> onComplete;
};

/**
 * One drive: an in-service request plus two FIFO queues — demand
 * reads are serviced ahead of write-behind destaging, as SCSI
 * controllers of the era did.
 */
class Disk
{
  public:
    Disk(std::string name, const DiskConfig &cfg, EventQueue &eq,
         std::uint64_t seed);

    void submit(DiskRequest req);

    bool busy() const { return busy_; }
    std::size_t
    queueDepth() const
    {
        return readQueue_.size() + writeQueue_.size();
    }

    /** @name Fault injection @{ */
    /** Bind the run's fault plan (null/inert plans change nothing). */
    void setFaultPlan(sim::FaultPlan *plan) { faults_ = plan; }
    /** Stretch all subsequent service times by @p factor (>= 1). */
    void degrade(double factor) { degradeFactor_ = factor; }
    /** Mark the drive dead; the array re-routes around it. */
    void failDrive() { failed_ = true; }
    bool failed() const { return failed_; }
    /** Move every queued (not in-service) request out, reads first,
     *  for re-routing after a drive failure. */
    void takeQueued(std::vector<DiskRequest> &out);
    /** @} */

    /** @name Statistics @{ */
    std::uint64_t completedReads() const { return reads_; }
    std::uint64_t completedWrites() const { return writes_; }
    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }
    const RunningStat &latency() const { return latency_; }
    /** Ticks this drive spent servicing requests (retry backoff wait
     *  keeps the drive busy but is not counted as service). */
    Tick busyTicks() const { return busyTicks_; }
    /** Queue-pool growth events (zero-allocation gate hook). */
    std::uint64_t
    queueAllocations() const
    {
        return readQueue_.allocations() + writeQueue_.allocations();
    }
    void resetStats();
    /** @} */

  private:
    /** A queued request plus its arrival time. */
    struct QueuedReq
    {
        DiskRequest req;
        Tick queuedAt = 0;
    };

    void startNext();
    void beginService();
    void serviceDone();
    void complete();
    Tick serviceTicks(const DiskRequest &req);

    std::string name_;
    DiskConfig cfg_;
    EventQueue &eq_;
    Rng rng_;
    sim::FaultPlan *faults_ = nullptr;

    sim::PooledFifo<QueuedReq> readQueue_;
    sim::PooledFifo<QueuedReq> writeQueue_;
    bool busy_ = false;
    bool failed_ = false;
    double degradeFactor_ = 1.0;

    /** The in-service request (held here, not in a queue node, so
     *  transient-error retries re-service it without allocating). */
    DiskRequest current_;
    Tick currentQueuedAt_ = 0;
    unsigned attempt_ = 1;

    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
    RunningStat latency_;
    Tick busyTicks_ = 0;
    Tick busySince_ = 0;
};

/** Shape of the storage subsystem. */
struct DiskArrayConfig
{
    unsigned dataDisks = 24;
    unsigned logDisks = 2;
    DiskConfig disk;
};

/**
 * The array: data blocks striped by id, log writes round-robined over
 * the dedicated log drives.
 */
class DiskArray
{
  public:
    DiskArray(const DiskArrayConfig &cfg, EventQueue &eq,
              std::uint64_t seed);

    /**
     * Bind the run's fault plan: propagate it to every drive and
     * schedule the plan's degrade/fail drive events. A null or inert
     * plan schedules nothing and changes nothing.
     */
    void bindFaults(sim::FaultPlan *plan);

    /** Read one data block (random access). */
    void readBlock(std::uint64_t block_id, std::uint64_t bytes,
                   std::function<void()> on_complete);

    /** Write one data block (random access, asynchronous). */
    void writeBlock(std::uint64_t block_id, std::uint64_t bytes,
                    std::function<void()> on_complete);

    /** Sequential write to the redo log. */
    void writeLog(std::uint64_t bytes, std::function<void()> on_complete);

    /** Sequential read from the redo log (crash recovery). */
    void readLog(std::uint64_t bytes, std::function<void()> on_complete);

    unsigned numDataDisks() const
    {
        return static_cast<unsigned>(dataDisks_.size());
    }

    /** @name Aggregate statistics over data + log drives @{ */
    std::uint64_t totalReads() const;
    std::uint64_t totalWrites() const;
    std::uint64_t totalBytesRead() const;
    std::uint64_t totalBytesWritten() const;
    std::uint64_t dataReads() const;
    std::uint64_t dataWrites() const;
    std::uint64_t dataBytesRead() const;
    std::uint64_t dataBytesWritten() const;
    std::uint64_t logWrites() const;
    std::uint64_t logBytesWritten() const;
    /** Mean data-drive utilization over an observation window. */
    double avgDataUtilization(Tick window) const;
    double avgReadLatencyMs() const;
    /** Queue-pool growth events across every drive. */
    std::uint64_t queueAllocations() const;
    void resetStats();
    /** @} */

    const Disk &dataDisk(unsigned i) const { return *dataDisks_[i]; }
    const Disk &logDisk(unsigned i) const { return *logDisks_[i]; }

  private:
    Disk &routeData(std::uint64_t block_id);
    Disk &survivorFrom(std::uint64_t start);
    void onDriveEvent(const sim::DriveFaultEvent &ev);

    EventQueue &eq_;
    sim::FaultPlan *faults_ = nullptr;
    std::vector<std::unique_ptr<Disk>> dataDisks_;
    std::vector<std::unique_ptr<Disk>> logDisks_;
    unsigned nextLogDisk_ = 0;
    unsigned nextLogReadDisk_ = 0;
    bool anyFailed_ = false;
};

} // namespace odbsim::os

#endif // ODBSIM_OS_DISK_HH
