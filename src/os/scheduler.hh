/**
 * @file
 * The CPU scheduler: a global round-robin ready queue feeding P
 * processors, with quantum-based preemption and context-switch cost
 * accounting — the mechanism behind the paper's Figure 8 (context
 * switches per transaction).
 *
 * Matching Linux accounting, a context switch is counted whenever a
 * CPU dispatches a task other than the one it ran last, and whenever
 * it dispatches after an idle period (the idle task counts as a task).
 *
 * Processes may carry a CPU-affinity mask (Process::setCpuAffinity);
 * the scheduler then dispatches each process only to allowed CPUs and
 * a CPU picks the frontmost *eligible* ready process. With the default
 * all-ones masks every decision below reduces exactly to the legacy
 * global round-robin, which is what keeps single-socket runs
 * bit-identical (see docs/TOPOLOGY.md).
 */

#ifndef ODBSIM_OS_SCHEDULER_HH
#define ODBSIM_OS_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "os/process.hh"
#include "sim/pooled_fifo.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace odbsim::os
{

class System;

/**
 * Global-queue round-robin scheduler.
 */
class Scheduler
{
  public:
    Scheduler(System &sys, unsigned num_cpus, Tick quantum);

    /** Enter a new or woken process into the ready state. */
    void makeReady(Process *p);

    /**
     * Wake a blocked process, charging @p kernel_instr of kernel
     * pre-work (interrupt/completion path) to its next dispatch.
     */
    void wake(Process *p, std::uint64_t kernel_instr);

    /** Number of ready (runnable, not running) processes. */
    std::size_t readyCount() const { return ready_.size(); }

    /** Process currently on @p cpu (nullptr if idle). */
    Process *running(unsigned cpu) const { return slots_[cpu].current; }

    /** @name Statistics @{ */
    std::uint64_t contextSwitches() const
    {
        return ctxSwitches_.value();
    }
    Tick busyTicks(unsigned cpu) const { return slots_[cpu].busyTicks; }
    /** Ready-queue pool growth events (zero-allocation gate hook). */
    std::uint64_t readyAllocations() const { return ready_.allocations(); }
    void resetStats();
    /** @} */

  private:
    friend class System;

    struct CpuSlot
    {
        Process *current = nullptr;
        Process *lastRun = nullptr;
        bool wentIdle = true;
        Tick sliceStart = 0;
        Tick busyTicks = 0;
    };

    /** May @p p run on @p cpu under its affinity mask? */
    static bool
    eligible(const Process *p, unsigned cpu)
    {
        return (p->cpuAffinity_ >> cpu) & 1u;
    }

    /** Is any ready process allowed to run on @p cpu? */
    bool hasEligibleReady(unsigned cpu) const;

    void dispatch(unsigned cpu, Process *p);
    void runChunk(unsigned cpu);
    void chunkDone(unsigned cpu, NextAction::After after);
    void pickNext(unsigned cpu);

    System &sys_;
    Tick quantum_;
    std::vector<CpuSlot> slots_;
    sim::PooledFifo<Process *> ready_;
    Counter ctxSwitches_;
};

} // namespace odbsim::os

#endif // ODBSIM_OS_SCHEDULER_HH
