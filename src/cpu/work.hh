/**
 * @file
 * WorkItem: the unit of computation a simulated process hands to a CPU
 * core. A work item bundles an instruction count with the memory
 * footprint executing those instructions touches:
 *
 *  - *exact references*: specific structures (buffer-cache rows, index
 *    nodes, metadata, undo/log buffers) whose sampled cache lines are
 *    each fed through the hierarchy once — true set sampling with
 *    per-line reuse preserved;
 *  - *region streams*: statistically generated post-L1 traffic into
 *    the code region, the process-private region (stack/PGA/session
 *    state), the shared pool, and the current block frame, at
 *    configured references-per-instruction rates.
 */

#ifndef ODBSIM_CPU_WORK_HH
#define ODBSIM_CPU_WORK_HH

#include <cstdint>

#include "mem/access.hh"
#include "sim/types.hh"

namespace odbsim::cpu
{

/** One explicitly-touched data structure within a work item. */
struct DataRef
{
    Addr addr = 0;            ///< Base address of the touched bytes.
    std::uint32_t bytes = 64; ///< Extent touched.
    bool write = false;       ///< Whether references dirty lines.
};

/** Maximum explicit data references a single work item may carry. */
constexpr unsigned maxWorkDataRefs = 12;

/**
 * A batch of instructions plus its memory footprint.
 */
struct WorkItem
{
    std::uint64_t instructions = 0;
    mem::ExecMode mode = mem::ExecMode::User;

    /** Code region the instructions fetch from. */
    Addr codeBase = 0;
    std::uint64_t codeBytes = 64;

    /** Process-private hot region (stack + PGA); 0 disables. */
    Addr privateBase = 0;
    std::uint64_t privateBytes = 0;

    /** Shared pool / dictionary region; 0 disables. */
    Addr sharedBase = 0;
    std::uint64_t sharedBytes = 0;

    /** Current buffer-cache frame for intra-block traffic; 0 none. */
    Addr frameAddr = 0;
    std::uint32_t frameBytes = 0;

    /** Relative weights of the data region streams. @{ */
    float privateWeight = 1.0f;
    float sharedWeight = 0.0f;
    float frameWeight = 0.0f;
    /** @} */

    /**
     * Multiplier on the configured data-references-per-instruction
     * rate: block operations are memory-intensive (> 1), pure SQL
     * machinery less so (< 1).
     */
    float dataRateScale = 1.0f;

    /**
     * Extra stall cycles not explained by the Table 3/4 events
     * (latch spins, pipeline flushes); lands in the "Other" CPI
     * component.
     */
    double extraCycles = 0.0;

    DataRef refs[maxWorkDataRefs];
    unsigned numRefs = 0;

    /** Append an explicit data reference (drops silently when full). */
    void
    addRef(Addr addr, std::uint32_t bytes, bool write)
    {
        if (numRefs < maxWorkDataRefs)
            refs[numRefs++] = DataRef{addr, bytes, write};
    }
};

} // namespace odbsim::cpu

#endif // ODBSIM_CPU_WORK_HH
