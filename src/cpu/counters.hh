/**
 * @file
 * Per-CPU architectural event counters (instructions, cycles, branch
 * mispredictions), split by privilege mode. Together with the memory
 * counters in mem::CpuCacheHierarchy these back the EMON events of the
 * paper's Table 2.
 */

#ifndef ODBSIM_CPU_COUNTERS_HH
#define ODBSIM_CPU_COUNTERS_HH

#include <cstdint>

#include "mem/access.hh"

namespace odbsim::cpu
{

/** Event totals for one privilege mode on one CPU. */
struct ModeCpuCounters
{
    double instructions = 0.0;
    double cycles = 0.0;
    double branchMispredicts = 0.0;
    double tlbMisses = 0.0;
    /** Cycles charged outside the Table 3 events ("Other"). */
    double otherCycles = 0.0;

    void reset() { *this = ModeCpuCounters{}; }

    ModeCpuCounters &
    operator+=(const ModeCpuCounters &o)
    {
        instructions += o.instructions;
        cycles += o.cycles;
        branchMispredicts += o.branchMispredicts;
        tlbMisses += o.tlbMisses;
        otherCycles += o.otherCycles;
        return *this;
    }

    double
    cpi() const
    {
        return instructions > 0.0 ? cycles / instructions : 0.0;
    }
};

/** Both modes' counters for one CPU. */
struct CpuCounters
{
    ModeCpuCounters mode[2];

    ModeCpuCounters &
    operator[](mem::ExecMode m)
    {
        return mode[static_cast<unsigned>(m)];
    }

    const ModeCpuCounters &
    operator[](mem::ExecMode m) const
    {
        return mode[static_cast<unsigned>(m)];
    }

    ModeCpuCounters
    total() const
    {
        ModeCpuCounters t = mode[0];
        t += mode[1];
        return t;
    }

    void
    reset()
    {
        mode[0].reset();
        mode[1].reset();
    }
};

} // namespace odbsim::cpu

#endif // ODBSIM_CPU_COUNTERS_HH
