#include "cpu/core.hh"

#include <algorithm>
#include <cmath>
#include <optional>

#include "sim/logging.hh"

namespace odbsim::cpu
{

namespace
{

constexpr Addr lineBytes = 64;

} // namespace

CpuCore::CpuCore(unsigned id, const CoreConfig &cfg,
                 mem::MemorySystem &memsys, std::uint64_t seed,
                 unsigned mem_cpu_id)
    : id_(id), memId_(mem_cpu_id == ~0u ? id : mem_cpu_id), cfg_(cfg),
      clock_(cfg.freqHz), memsys_(memsys),
      rng_(seed ^ (0x9e3779b97f4a7c15ULL * (id + 1))),
      codeLinear_(cfg.codeHotExponent == 1.0),
      dataLinear_(cfg.dataHotExponent == 1.0)
{
    odbsim_assert(cfg.samplePeriod == memsys.sampleFactor(),
                  "core samplePeriod (", cfg.samplePeriod,
                  ") must match MemorySystem sample factor (",
                  memsys.sampleFactor(), ")");
    odbsim_assert(memId_ < memsys.numCpus(),
                  "mem cpu id out of range");
}

CpuCore::RegionStream
CpuCore::makeStream(Addr base, std::uint64_t bytes, std::uint64_t stride)
{
    RegionStream s;
    s.lines = std::max<std::uint64_t>(1, bytes / stride);
    s.linesD = static_cast<double>(s.lines);
    // Align the region base itself to the sampled-line grid so reuse
    // across work items of the same region is exact.
    s.alignedBase = base / stride * stride;
    return s;
}

Addr
CpuCore::sampleStream(const RegionStream &s, double exp, bool linear,
                      std::uint64_t stride)
{
    // Pick among the region's *sampled* lines (every S-th line) with a
    // power-law concentration toward the region start. pow(u, 1.0) is
    // exactly u in IEEE arithmetic, so the linear path is bit-exact.
    const double u = rng_.uniform();
    const double skewed = linear ? u : std::pow(u, exp);
    std::uint64_t idx = static_cast<std::uint64_t>(skewed * s.linesD);
    if (idx >= s.lines)
        idx = s.lines - 1;
    return s.alignedBase + idx * stride;
}

double
CpuCore::stallCyclesFor(const mem::AccessResult &res, bool is_code) const
{
    const StallCosts &c = cfg_.costs;
    double cycles = is_code ? c.tcMissCycles : c.l2HitCycles;
    switch (res.servicedBy) {
      case mem::ServicedBy::L2:
        break;
      case mem::ServicedBy::L3:
        cycles += c.l2MissCycles;
        break;
      case mem::ServicedBy::Memory:
      case mem::ServicedBy::RemoteCache:
        // The memory system reports the load- and topology-dependent
        // part (bus queueing, plus interconnect hops on multi-socket
        // machines); at S=1 it is exactly the front-side bus
        // queueWaitCycles() this code used to read itself.
        cycles += c.l3MissCycles + res.memStallExtraCycles;
        break;
    }
    return cycles;
}

ExecResult
CpuCore::execute(const WorkItem &item, Tick now, double cycle_scale)
{
    const double k = static_cast<double>(cfg_.samplePeriod);
    const std::uint64_t stride = lineBytes * cfg_.samplePeriod;
    const auto mode = item.mode;
    ModeCpuCounters &ctr = counters_[mode];
    const double instr = static_cast<double>(item.instructions);

    // Flat, statistically-modeled components (paper Table 3).
    double cycles = instr * cfg_.costs.baseCyclesPerInstr;
    const double mispredicts =
        instr * cfg_.branchesPerInstr * cfg_.mispredictPerBranch;
    cycles += mispredicts * cfg_.costs.branchMispredictCycles;
    const double tlb_misses = instr * cfg_.tlbMissPerInstr;
    cycles += tlb_misses * cfg_.costs.tlbMissCycles;

    // All of this item's references share one (cpu, mode, now) triple,
    // so the per-reference loops below run against a single access
    // epoch: the bus-clock advance and the per-mode counter lookup
    // happen once per WorkItem instead of once per reference. The
    // epoch opens lazily at the first reference — a WorkItem that
    // generates none must not touch the bus clock, exactly as the
    // per-reference path behaved.
    std::optional<mem::MemorySystem::AccessEpoch> epoch;
    const auto accessRef = [&](Addr addr, mem::AccessKind kind) {
        if (!epoch)
            epoch.emplace(memsys_.beginEpoch(memId_, mode, now));
        return epoch->access(addr, kind);
    };

    // Code stream: references reaching L2 after trace-cache misses.
    // The stream descriptor (alignment, line count) is invariant per
    // WorkItem and hoisted out of the reference loop.
    codeCarry_ += instr * cfg_.codeL2RefsPerInstr / k;
    std::uint64_t n_code = static_cast<std::uint64_t>(codeCarry_);
    codeCarry_ -= static_cast<double>(n_code);
    if (n_code) {
        const RegionStream code = makeStream(
            item.codeBase, std::max<std::uint64_t>(item.codeBytes, stride),
            stride);
        for (std::uint64_t i = 0; i < n_code; ++i) {
            const Addr addr = sampleStream(code, cfg_.codeHotExponent,
                                           codeLinear_, stride);
            const mem::AccessResult res =
                accessRef(addr, mem::AccessKind::CodeFetch);
            cycles += stallCyclesFor(res, true) * k;
        }
    }

    // Data region streams.
    double total_weight = 0.0;
    const double wp = item.privateBytes ? item.privateWeight : 0.0f;
    const double ws = item.sharedBytes ? item.sharedWeight : 0.0f;
    const double wf = item.frameAddr ? item.frameWeight : 0.0f;
    total_weight = wp + ws + wf;

    dataCarry_ += instr * cfg_.dataL2RefsPerInstr *
                  static_cast<double>(item.dataRateScale) / k;
    std::uint64_t n_data = static_cast<std::uint64_t>(dataCarry_);
    dataCarry_ -= static_cast<double>(n_data);
    if (total_weight <= 0.0)
        n_data = 0;

    if (n_data) {
        const RegionStream priv =
            makeStream(item.privateBase, item.privateBytes, stride);
        const RegionStream shared =
            makeStream(item.sharedBase, item.sharedBytes, stride);
        const RegionStream frame = makeStream(
            item.frameAddr,
            std::max<std::uint32_t>(item.frameBytes, lineBytes), stride);
        for (std::uint64_t i = 0; i < n_data; ++i) {
            double pick = rng_.uniform() * total_weight;
            Addr addr;
            bool write;
            if ((pick -= wp) < 0.0) {
                addr = sampleStream(priv, cfg_.dataHotExponent,
                                    dataLinear_, stride);
                write = rng_.chance(cfg_.privateWriteFraction);
            } else if ((pick -= ws) < 0.0) {
                addr = sampleStream(shared, cfg_.dataHotExponent,
                                    dataLinear_, stride);
                write = rng_.chance(0.10);
            } else {
                // The frame stream's exponent is 1.0: pure identity.
                addr = sampleStream(frame, 1.0, true, stride);
                write = rng_.chance(cfg_.frameWriteFraction);
            }
            const mem::AccessResult res =
                accessRef(addr, write ? mem::AccessKind::DataWrite
                                      : mem::AccessKind::DataRead);
            cycles += stallCyclesFor(res, false) * k;
        }
    }

    // Exact references: feed every sampled line of each span exactly
    // once (set sampling — per-line reuse across transactions is
    // preserved exactly).
    for (unsigned r = 0; r < item.numRefs; ++r) {
        const DataRef &ref = item.refs[r];
        Addr first = (ref.addr + stride - 1) / stride * stride;
        const Addr end = ref.addr + std::max<std::uint32_t>(ref.bytes, 1);
        for (Addr a = first; a < end; a += stride) {
            const mem::AccessResult res =
                accessRef(a, ref.write ? mem::AccessKind::DataWrite
                                       : mem::AccessKind::DataRead);
            cycles += stallCyclesFor(res, false) * k;
        }
    }

    cycles += item.extraCycles;
    cycles *= cycle_scale;

    // One batched counter write-back per WorkItem.
    ctr.instructions += instr;
    ctr.branchMispredicts += mispredicts;
    ctr.tlbMisses += tlb_misses;
    ctr.otherCycles += item.extraCycles;
    ctr.cycles += cycles;

    ExecResult out;
    out.cycles = cycles;
    out.ticks = clock_.cyclesToTicks(cycles);
    return out;
}

} // namespace odbsim::cpu
