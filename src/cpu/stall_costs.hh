/**
 * @file
 * The fixed per-event stall-cycle model of the paper's Table 3.
 *
 * | Event                        | Cycles          |
 * |------------------------------|-----------------|
 * | Instruction                  | 0.5             |
 * | Branch misprediction         | 20              |
 * | TLB miss                     | 20              |
 * | TC miss                      | 20              |
 * | L2 miss (hitting L3)         | 16  (measured)  |
 * | L3 miss                      | 300 (measured)  |
 * | Bus-transaction time for 1P  | 102 (measured)  |
 *
 * The L3 miss charge follows the paper's Table 4 formula:
 * 300 + (bus-transaction time - bus-transaction time at 1P), i.e. the
 * 300-cycle memory latency already contains the unloaded 102-cycle IOQ
 * residency and only the *queueing* excess is added on top.
 */

#ifndef ODBSIM_CPU_STALL_COSTS_HH
#define ODBSIM_CPU_STALL_COSTS_HH

namespace odbsim::cpu
{

/** Per-event stall cycles (paper Table 3). */
struct StallCosts
{
    double baseCyclesPerInstr = 0.5;
    double branchMispredictCycles = 20.0;
    double tlbMissCycles = 20.0;
    double tcMissCycles = 20.0;
    /** An access that misses L2 and hits L3. */
    double l2MissCycles = 16.0;
    /** An access that misses L3, at unloaded (1P) bus latency. */
    double l3MissCycles = 300.0;
    /** Unloaded IOQ residency baked into l3MissCycles. */
    double busBaseCycles = 102.0;
    /** Latency of a data access served by the L2 (not in Table 3;
     *  contributes to the paper's "Other" residual). */
    double l2HitCycles = 7.0;
};

} // namespace odbsim::cpu

#endif // ODBSIM_CPU_STALL_COSTS_HH
