/**
 * @file
 * The CPU core timing model.
 *
 * Per the paper's own Table 3/4 methodology, the flat components of
 * CPI — base issue cost, branch mispredictions, TLB misses, and the
 * trace-cache/L1 behaviour — are charged at fixed per-event costs with
 * statistically-modeled event rates, while the W- and P-dependent
 * components (L2/L3 capacity behaviour, coherence, bus queueing) come
 * from a set-sampled tag-store simulation of the post-L1 reference
 * stream through the shared MemorySystem.
 */

#ifndef ODBSIM_CPU_CORE_HH
#define ODBSIM_CPU_CORE_HH

#include <cstdint>

#include "cpu/counters.hh"
#include "cpu/stall_costs.hh"
#include "cpu/work.hh"
#include "mem/hierarchy.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace odbsim::cpu
{

/** Tunables of the core timing model. */
struct CoreConfig
{
    double freqHz = 1.6e9;
    /** Set-sampling factor S (must match the MemorySystem's). */
    std::uint32_t samplePeriod = 16;
    /** Post-L1 data references per instruction (region streams). */
    double dataL2RefsPerInstr = 0.016;
    /** Code references reaching L2 per instruction (TC-miss rate). */
    double codeL2RefsPerInstr = 0.008;
    /** TLB misses per instruction (flat, charged statistically). */
    double tlbMissPerInstr = 0.0035;
    /** Fraction of instructions that are branches. */
    double branchesPerInstr = 0.20;
    /** Misprediction probability per branch. */
    double mispredictPerBranch = 0.02;
    /** Probability that a private-region stream reference writes. */
    double privateWriteFraction = 0.30;
    /** Probability that a frame stream reference writes. */
    double frameWriteFraction = 0.20;
    /** Concentration of code fetches (higher = hotter front). */
    double codeHotExponent = 3.0;
    /** Concentration of private/shared-region references. */
    double dataHotExponent = 1.5;
    StallCosts costs;
};

/** Result of executing one WorkItem. */
struct ExecResult
{
    double cycles = 0.0;
    Tick ticks = 0;
};

/**
 * One processor of the simulated SMP.
 */
class CpuCore
{
  public:
    /**
     * @param mem_cpu_id Index of the cache hierarchy this (logical)
     *        CPU uses; SMT siblings share one (~0 means same as id).
     */
    CpuCore(unsigned id, const CoreConfig &cfg, mem::MemorySystem &memsys,
            std::uint64_t seed = 0x0db5eedULL,
            unsigned mem_cpu_id = ~0u);

    unsigned id() const { return id_; }
    const CoreConfig &config() const { return cfg_; }
    const ClockDomain &clock() const { return clock_; }

    CpuCounters &counters() { return counters_; }
    const CpuCounters &counters() const { return counters_; }

    /** Memory-side counters live in the hierarchy. */
    const mem::MemCounters &
    memCounters(mem::ExecMode m) const
    {
        return memsys_.cpu(memId_).counters(m);
    }

    unsigned memCpuId() const { return memId_; }

    /**
     * Execute a work item at simulated time @p now.
     *
     * @param cycle_scale Multiplier on the consumed cycles (SMT
     *        sibling contention).
     * @return cycles consumed and the equivalent tick span.
     */
    ExecResult execute(const WorkItem &item, Tick now,
                       double cycle_scale = 1.0);

    void resetCounters() { counters_.reset(); }

  private:
    /**
     * Per-WorkItem invariants of one region stream, hoisted out of the
     * per-reference loops: the sampled-line grid alignment and line
     * count depend only on (base, bytes, stride), so computing them
     * once per item removes two 64-bit divisions per reference.
     */
    struct RegionStream
    {
        Addr alignedBase = 0;
        std::uint64_t lines = 1;
        double linesD = 1.0;
    };

    static RegionStream makeStream(Addr base, std::uint64_t bytes,
                                   std::uint64_t stride);
    /** A sampled-line address within the stream, hot-skewed by @p exp.
     *  @p linear short-circuits pow() when exp == 1.0 (bit-exact:
     *  IEEE pow(u, 1.0) == u). */
    Addr sampleStream(const RegionStream &s, double exp, bool linear,
                      std::uint64_t stride);

    double stallCyclesFor(const mem::AccessResult &res, bool is_code) const;

    unsigned id_;
    unsigned memId_;
    CoreConfig cfg_;
    ClockDomain clock_;
    mem::MemorySystem &memsys_;
    Rng rng_;
    CpuCounters counters_;

    /** Fractional-sample carries to avoid rounding bias. */
    double dataCarry_ = 0.0;
    double codeCarry_ = 0.0;

    /** Config-derived pow() bypass flags (exponent == 1.0 exactly). */
    bool codeLinear_ = false;
    bool dataLinear_ = false;
};

} // namespace odbsim::cpu

#endif // ODBSIM_CPU_CORE_HH
