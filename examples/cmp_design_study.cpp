/**
 * @file
 * CMP design study: the use case that motivates the paper — an
 * architect sizing a chip multiprocessor for OLTP picks a
 * representative workload configuration (at/above the pivot) and
 * explores processor count, L3 capacity and bus bandwidth there,
 * instead of simulating fully scaled setups.
 */

#include <cstdio>

#include "analysis/iron_law.hh"
#include "analysis/table.hh"
#include "core/client_table.hh"
#include "core/experiment.hh"

int
main()
{
    using namespace odbsim;
    using analysis::TextTable;

    // The paper's recommendation: 200 warehouses is a representative
    // scaled setup (Section 6.2).
    const unsigned rep_w = 200;
    core::RunKnobs knobs;
    knobs.measure = ticksFromSeconds(1.2);

    std::printf("CMP design exploration at the representative %u-"
                "warehouse configuration\n\n",
                rep_w);

    // Axis 1: processor count (the CMP core-count question).
    std::printf("Processor scaling (iron law: TPS = u*P*F/(IPX*CPI)):\n");
    TextTable t({"P", "tps", "speedup", "cpi", "coh/L3", "bus%",
                 "ioq"});
    double tps1 = 0.0;
    for (const unsigned p : {1u, 2u, 4u}) {
        core::OltpConfiguration cfg;
        cfg.warehouses = rep_w;
        cfg.processors = p;
        const core::RunResult r = core::ExperimentRunner::run(cfg, knobs);
        if (p == 1)
            tps1 = r.tps;
        t.addRow({std::to_string(p), TextTable::num(r.tps, 0),
                  TextTable::num(r.tps / tps1, 2),
                  TextTable::num(r.cpi, 2),
                  TextTable::num(r.coherenceShareOfL3, 3),
                  TextTable::num(r.busUtil * 100, 1),
                  TextTable::num(r.ioqCycles, 0)});
    }
    t.print();
    std::printf("\ncoh/L3 stays tiny: coherence misses are NOT the "
                "bottleneck — OLTP scales well onto CMPs (paper "
                "Section 5.2 / Conclusions).\n\n");

    // Axis 2: L3 capacity at 4P — where the cycles actually go.
    std::printf("L3 capacity scaling at 4P:\n");
    TextTable t2({"L3", "tps", "cpi", "L3 CPI share", "mpiK"});
    for (const std::uint64_t kb : {512u, 1024u, 2048u, 4096u}) {
        core::MachinePreset preset =
            core::makeMachine(core::MachineKind::XeonQuadMp, 4,
                              knobs.samplePeriod, knobs.seed);
        preset.sys.hierarchy.l3 = {kb * KiB, 8, 64};
        const core::RunResult r = core::ExperimentRunner::runWithPreset(
            preset, rep_w, 0, knobs);
        t2.addRow({std::to_string(kb) + "KB",
                   TextTable::num(r.tps, 0), TextTable::num(r.cpi, 2),
                   TextTable::num(r.breakdown.l3Share(), 2),
                   TextTable::num(r.mpi * 1e3, 2)});
    }
    t2.print();
    std::printf("\nL3 misses dominate CPI (~60%% in the paper): cache "
                "capacity, not coherence, is where a CMP design for "
                "OLTP should spend transistors.\n");
    return 0;
}
