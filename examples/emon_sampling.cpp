/**
 * @file
 * EMON sampling demo: reproduce the paper's measurement methodology
 * (Section 3.3) — round-robin counter groups over timed slices,
 * repeated several times — and compare the sampled estimates against
 * the simulator's ground truth, something the original authors could
 * never do on real hardware.
 */

#include <cstdio>

#include "core/machine.hh"
#include "db/database.hh"
#include "odb/workload.hh"
#include "perfmon/sampler.hh"

int
main()
{
    using namespace odbsim;

    // A 4P, 100-warehouse setup, as in the study's mid-range.
    const core::MachinePreset preset =
        core::makeMachine(core::MachineKind::XeonQuadMp, 4);
    os::System sys(preset.sys);
    db::DatabaseConfig dbcfg;
    dbcfg.schema.warehouses = 100;
    dbcfg.cacheWarehouseEquivalents = preset.cacheWarehouseEquivalents;
    db::Database database(sys, dbcfg);
    database.start();
    odb::WorkloadConfig wcfg;
    wcfg.clients = 48; // Table 1 for (100 W, 4P).
    odb::OdbWorkload workload(database, wcfg);
    workload.start();
    database.instantWarm();

    std::printf("warming up...\n");
    sys.runFor(ticksFromSeconds(0.8));
    sys.beginMeasurement();
    workload.resetStats();

    // The paper: each event measured for 10 s round-robin, repeated 6
    // times. Scaled to simulation time: 30 ms slices, 6 rounds.
    perfmon::EmonSampler sampler;
    std::printf("sampling: %zu groups x 30 ms slices x 6 rounds...\n",
                perfmon::EmonSampler::defaultGroups().size());
    const perfmon::SampledMeasurement m =
        sampler.measure(sys, 30 * tickPerMs, 6);

    auto row = [](const char *name, double est, double act) {
        const double err = act != 0.0 ? (est / act - 1.0) * 100.0 : 0.0;
        std::printf("  %-22s %14.3e %14.3e %+7.1f%%\n", name, est, act,
                    err);
    };
    std::printf("\n%-24s %14s %14s %8s\n", "event (totals)", "sampled",
                "actual", "error");
    row("instructions", m.estimated.instructions.total(),
        m.actual.instructions.total());
    row("cycles", m.estimated.cycles.total(), m.actual.cycles.total());
    row("branch mispredicts", m.estimated.branchMispredicts.total(),
        m.actual.branchMispredicts.total());
    row("TLB misses", m.estimated.tlbMisses.total(),
        m.actual.tlbMisses.total());
    row("TC misses", m.estimated.tcMisses.total(),
        m.actual.tcMisses.total());
    row("L2 misses", m.estimated.l2Misses.total(),
        m.actual.l2Misses.total());
    row("L3 misses", m.estimated.l3Misses.total(),
        m.actual.l3Misses.total());

    std::printf("\nderived metrics:\n");
    std::printf("  CPI     sampled %.3f   actual %.3f\n",
                m.estimated.cpi(), m.actual.cpi());
    std::printf("  OS CPI  sampled %.3f   actual %.3f   <- the noisy "
                "one (paper Section 5.1)\n",
                m.estimated.cpiOs(), m.actual.cpiOs());
    std::printf("  L3 MPI  sampled %.5f   actual %.5f\n",
                m.estimated.mpi(), m.actual.mpi());
    std::printf("\nThe sampled estimates track ground truth; the OS-"
                "space ratios carry the most sampling noise, exactly "
                "the variance the paper reports in Figure 11.\n");
    return 0;
}
