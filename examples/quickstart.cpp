/**
 * @file
 * Quickstart: measure one OLTP configuration and print the iron-law
 * view of its performance.
 *
 *   ./quickstart [warehouses] [processors] [clients]
 *
 * With no arguments this measures a 50-warehouse, 4-processor cached
 * setup using the paper's Table 1 client count.
 */

#include <cstdio>
#include <cstdlib>

#include "analysis/table.hh"
#include "core/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;

    core::OltpConfiguration cfg;
    cfg.warehouses = argc > 1 ? std::atoi(argv[1]) : 50;
    cfg.processors = argc > 2 ? std::atoi(argv[2]) : 4;
    cfg.clients = argc > 3 ? std::atoi(argv[3]) : 0;

    std::printf("odbsim quickstart: %u warehouses, %uP, %s clients\n\n",
                cfg.warehouses, cfg.processors,
                cfg.clients ? "explicit" : "Table-1");

    const core::RunResult r = core::ExperimentRunner::run(cfg);

    using analysis::TextTable;
    TextTable t({"metric", "value"});
    t.addRow({"clients", TextTable::num(std::uint64_t(r.clients))});
    t.addRow({"transactions measured",
              TextTable::num(r.txnsCommitted)});
    t.addRow({"TPS", TextTable::num(r.tps, 1)});
    t.addRow({"iron-law TPS (u*P*F/(IPX*CPI))",
              TextTable::num(r.ironLawTps, 1)});
    t.addRow({"CPU utilization", TextTable::num(r.cpuUtil, 3)});
    t.addRow({"OS share of cycles", TextTable::num(r.osCycleShare, 3)});
    t.addRow({"IPX (M instr/txn)", TextTable::num(r.ipx / 1e6, 3)});
    t.addRow({"  user IPX (M)", TextTable::num(r.ipxUser / 1e6, 3)});
    t.addRow({"  OS IPX (M)", TextTable::num(r.ipxOs / 1e6, 3)});
    t.addRow({"CPI", TextTable::num(r.cpi, 2)});
    t.addRow({"  user CPI", TextTable::num(r.cpiUser, 2)});
    t.addRow({"  OS CPI", TextTable::num(r.cpiOs, 2)});
    t.addRow({"L3 MPI (x1000)", TextTable::num(r.mpi * 1e3, 3)});
    t.addRow({"L3-miss share of CPI",
              TextTable::num(r.breakdown.l3Share(), 3)});
    t.addRow({"bus utilization", TextTable::num(r.busUtil, 3)});
    t.addRow({"IOQ cycles", TextTable::num(r.ioqCycles, 1)});
    t.addRow({"disk reads KB/txn", TextTable::num(r.diskReadKbPerTxn, 2)});
    t.addRow({"disk writes KB/txn",
              TextTable::num(r.diskWriteKbPerTxn, 2)});
    t.addRow({"log KB/txn", TextTable::num(r.logKbPerTxn, 2)});
    t.addRow({"context switches/txn", TextTable::num(r.ctxPerTxn, 2)});
    t.addRow({"avg latency (ms)", TextTable::num(r.avgLatencyMs, 2)});
    t.addRow({"p95 latency (ms)", TextTable::num(r.p95LatencyMs, 2)});
    t.addRow({"buffer-cache hit ratio",
              TextTable::num(r.bufferHitRatio, 4)});
    t.print();
    return 0;
}
