/**
 * @file
 * Scaling sweep: run the full W x P characterization grid and print
 * the headline metrics of the study — the quickest way to see the
 * cached/balanced/scaled structure of the configuration space.
 *
 *   ./scaling_sweep [machine] [--jobs N]   (machine: xeon | itanium2)
 *
 * --jobs N measures the independent grid points on N worker threads
 * (0 = one per hardware thread); the results are identical to the
 * serial default, only wall-clock time changes.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/table.hh"
#include "core/scaling_study.hh"
#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    using analysis::TextTable;

    // Shared knobs (--jobs/--shards/--event-queue/--profile) live in
    // bench_common; only the positional machine name is local.
    bench::parseArgs(argc, argv);
    core::StudyConfig cfg;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "itanium2") == 0)
            cfg.machine = core::MachineKind::Itanium2Quad;
    }
    cfg.jobs = bench::studyJobs();
    bench::applyEngineKnobs(cfg.knobs);
    cfg.onPoint = [](const core::RunResult &r) {
        std::fprintf(stderr, "  measured W=%u P=%u C=%u\n", r.warehouses,
                     r.processors, r.clients);
    };

    const core::StudyResult study = core::ScalingStudy::run(cfg);

    for (const auto &s : study.series) {
        std::printf("\n== %uP (%s) ==\n", s.processors,
                    core::toString(cfg.machine));
        TextTable t({"W", "C", "tps", "util", "os%", "ipxM", "cpi",
                     "cpiU", "cpiO", "mpiK", "rdKB", "wrKB", "logKB",
                     "ctx", "ioq", "bus%", "hit"});
        for (const auto &p : s.points) {
            t.addRow({TextTable::num(std::uint64_t(p.warehouses)),
                      TextTable::num(std::uint64_t(p.clients)),
                      TextTable::num(p.tps, 0),
                      TextTable::num(p.cpuUtil, 2),
                      TextTable::num(p.osCycleShare * 100, 1),
                      TextTable::num(p.ipx / 1e6, 2),
                      TextTable::num(p.cpi, 2),
                      TextTable::num(p.cpiUser, 2),
                      TextTable::num(p.cpiOs, 2),
                      TextTable::num(p.mpi * 1e3, 2),
                      TextTable::num(p.diskReadKbPerTxn, 1),
                      TextTable::num(p.diskWriteKbPerTxn, 1),
                      TextTable::num(p.logKbPerTxn, 1),
                      TextTable::num(p.ctxPerTxn, 1),
                      TextTable::num(p.ioqCycles, 0),
                      TextTable::num(p.busUtil * 100, 1),
                      TextTable::num(p.bufferHitRatio, 3)});
        }
        t.print();
        const auto cpi_fit = s.cpiFit();
        const auto mpi_fit = s.mpiFit();
        std::printf("CPI pivot: %.0f W   MPI pivot: %.0f W\n",
                    cpi_fit.pivotX, mpi_fit.pivotX);
    }
    return 0;
}
