/**
 * @file
 * Pivot study: the paper's headline methodology end to end — sweep
 * the configuration space, fit the two-region linear models, extract
 * the pivot points, and recommend the minimal representative workload
 * configuration (Sections 6.1-6.2).
 *
 *   ./pivot_study [machine] [--jobs N]   (machine: xeon | itanium2)
 *
 * --jobs N measures the independent grid points on N worker threads
 * (0 = one per hardware thread); the fitted pivots are identical to
 * the serial default, only wall-clock time changes.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/table.hh"
#include "core/representative.hh"
#include "core/scaling_study.hh"
#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    using analysis::TextTable;

    // Shared knobs (--jobs/--shards/--event-queue/--profile) live in
    // bench_common; only the positional machine name is local.
    bench::parseArgs(argc, argv);
    core::StudyConfig cfg;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "itanium2") == 0)
            cfg.machine = core::MachineKind::Itanium2Quad;
    }
    cfg.jobs = bench::studyJobs();
    bench::applyEngineKnobs(cfg.knobs);
    cfg.onPoint = [](const core::RunResult &r) {
        std::fprintf(stderr, "  measured W=%u P=%u: cpi %.2f mpi %.4f\n",
                     r.warehouses, r.processors, r.cpi, r.mpi * 1e3);
    };

    std::printf("Running the %s characterization study...\n",
                core::toString(cfg.machine));
    const core::StudyResult study = core::ScalingStudy::run(cfg);
    const core::Recommendation rec =
        core::RepresentativeConfigSelector::select(study);

    std::printf("\nPivot points (per processor count):\n");
    TextTable t({"config", "CPI pivot (W)", "MPI pivot (W)",
                 "cached slope", "scaled slope"});
    for (const auto &row : rec.pivots) {
        t.addRow({std::to_string(row.processors) + "P",
                  TextTable::num(row.cpiPivotW, 0),
                  TextTable::num(row.mpiPivotW, 0),
                  TextTable::num(row.cpiFit.cached.slope * 1e3, 3),
                  TextTable::num(row.cpiFit.scaled.slope * 1e3, 3)});
    }
    t.print();

    std::printf("\nLargest pivot: %.0f warehouses.\n", rec.maxPivotW);
    std::printf("Recommended minimal representative configuration: "
                "%u warehouses.\n\n",
                rec.recommendedW);

    // Demonstrate the payoff: predict the largest measured setup from
    // the scaled-region line and compare.
    for (const auto &series : study.series) {
        const auto fit = series.cpiFit();
        const auto &largest = series.points.back();
        const double predicted =
            analysis::extrapolateScaled(fit, largest.warehouses);
        std::printf("%uP: scaled-line prediction of CPI at %u W: %.3f "
                    "(measured %.3f, error %+.1f%%)\n",
                    series.processors, largest.warehouses, predicted,
                    largest.cpi,
                    (predicted / largest.cpi - 1.0) * 100.0);
    }
    std::printf("\nSimulating configurations beyond the pivot adds "
                "little information: their behaviour follows the "
                "scaled-region line.\n");
    return 0;
}
