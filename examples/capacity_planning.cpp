/**
 * @file
 * Capacity planning: the Section 6.2 extrapolation workflow from a
 * practitioner's seat. Measure only small-to-medium configurations
 * (cheap), fit the two-region model, and predict the behaviour of
 * setups you never ran — then validate against an actual large run.
 */

#include <cstdio>

#include "analysis/iron_law.hh"
#include "analysis/piecewise.hh"
#include "core/experiment.hh"

int
main()
{
    using namespace odbsim;

    core::RunKnobs knobs;
    knobs.measure = ticksFromSeconds(1.2);
    const unsigned procs = 4;

    // Step 1: measure an affordable grid (nothing beyond 300 W).
    std::printf("Step 1: measure small/medium configurations\n");
    std::vector<double> xs, cpis, ipxs;
    for (const unsigned w : {10u, 25u, 50u, 75u, 100u, 150u, 200u,
                             300u}) {
        core::OltpConfiguration cfg;
        cfg.warehouses = w;
        cfg.processors = procs;
        const core::RunResult r = core::ExperimentRunner::run(cfg, knobs);
        xs.push_back(w);
        cpis.push_back(r.cpi);
        ipxs.push_back(r.ipx);
        std::printf("  %4uW: cpi %.3f  ipx %.2fM  tps %.0f\n", w, r.cpi,
                    r.ipx / 1e6, r.tps);
    }

    // Step 2: fit the two-region models.
    const analysis::PiecewiseFit cpi_fit =
        analysis::fitTwoSegment(xs, cpis);
    const analysis::LinearFit ipx_fit = analysis::fitLine(xs, ipxs);
    std::printf("\nStep 2: models\n");
    std::printf("  CPI pivot at %.0f W; scaled line "
                "CPI = %.5f*W + %.3f\n",
                cpi_fit.pivotX, cpi_fit.scaled.slope,
                cpi_fit.scaled.intercept);
    std::printf("  IPX line: %.0f instr/W + %.2fM\n", ipx_fit.slope,
                ipx_fit.intercept / 1e6);

    // Step 3: predict larger setups via the iron law.
    std::printf("\nStep 3: predictions for setups never measured\n");
    const double freq = 1.6e9;
    for (const unsigned w : {400u, 600u, 800u}) {
        const double cpi = analysis::extrapolateScaled(cpi_fit, w);
        const double ipx = ipx_fit.predict(w);
        // The delivered throughput also needs a utilization estimate;
        // use the last measured point's as a conservative stand-in.
        const double tps =
            analysis::ironLawTps(procs, freq, ipx, cpi);
        std::printf("  %4uW: predicted cpi %.3f  ipx %.2fM  "
                    "iron-law TPS at 100%% util %.0f\n",
                    w, cpi, ipx / 1e6, tps);
    }

    // Step 4: validate against one real large run.
    std::printf("\nStep 4: validation at 800 W\n");
    core::OltpConfiguration cfg;
    cfg.warehouses = 800;
    cfg.processors = procs;
    const core::RunResult r = core::ExperimentRunner::run(cfg, knobs);
    const double pred_cpi = analysis::extrapolateScaled(cpi_fit, 800);
    const double pred_ipx = ipx_fit.predict(800);
    std::printf("  measured cpi %.3f vs predicted %.3f (%+.1f%%)\n",
                r.cpi, pred_cpi, (pred_cpi / r.cpi - 1) * 100);
    std::printf("  measured ipx %.2fM vs predicted %.2fM (%+.1f%%)\n",
                r.ipx / 1e6, pred_ipx / 1e6,
                (pred_ipx / r.ipx - 1) * 100);
    std::printf("\nA 300-warehouse lab setup predicts the 800-warehouse "
                "production behaviour — the paper's bridge between "
                "research and practice.\n");
    return 0;
}
