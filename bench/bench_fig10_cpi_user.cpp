/**
 * @file
 * Regenerates Figure 10: User-space CPI.
 */

#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 10", "User-space CPI");
    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);
    bench::printMetricByW(
        study, "user CPI",
        [](const core::RunResult &r) { return r.cpiUser; }, 3);
    bench::paperNote(
        "user CPI tracks the overall CPI closely, since user code is 70-80% of all instructions.");
    return 0;
}
