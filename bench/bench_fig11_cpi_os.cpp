/**
 * @file
 * Regenerates Figure 11: OS-space CPI.
 */

#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 11", "OS-space CPI");
    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);
    bench::printMetricByW(
        study, "OS CPI",
        [](const core::RunResult &r) { return r.cpiOs; }, 3);
    bench::paperNote(
        "OS CPI slightly DECREASES with W: the more kernel code runs, the better its cache locality (plus sampling noise at small W).");
    return 0;
}
