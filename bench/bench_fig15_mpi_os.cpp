/**
 * @file
 * Regenerates Figure 15: OS-space L3 misses per instruction.
 */

#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 15", "OS-space L3 misses per instruction");
    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);
    bench::printMetricByW(
        study, "OS L3 MPI (x1000)",
        [](const core::RunResult &r) { return r.mpiOs * 1e3; }, 3);
    bench::paperNote(
        "the OS-space MPI decreases with the workload size: more time in kernel code means better temporal locality of kernel structures.");
    return 0;
}
