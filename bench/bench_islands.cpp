/**
 * @file
 * Deployment sweep on a multi-socket topology: shared-everything vs
 * hardware islands vs shared-nothing at fixed W and P, as the remote-
 * access penalty scales (docs/TOPOLOGY.md; the deployment axis of
 * *OLTP on Hardware Islands* replayed on the paper's workload).
 *
 * The machine is the study's Quad Xeon MP split into 4 sockets of one
 * CPU each. Every grid point runs the same W=96, P=4 workload; only
 * the placement policy and the interconnect cost change:
 *
 *  - shared-everything  — one instance, processes float everywhere;
 *  - island(2)          — two 2-socket instances, partitioned draws;
 *  - shared-nothing     — four 1-socket instances (island(1)).
 *
 * Writes `odbsim_islands_xeon-quad-mp.csv` (plus a `_profile.csv`
 * sidecar under --profile) into ODBSIM_CACHE_DIR like the study
 * benches, honours --jobs/-j/ODBSIM_JOBS, and self-checks the sweep's
 * headline physics: shared-nothing wins under an expensive
 * interconnect, shared-everything wins when remote access is free
 * (exit code 3 if the crossover is absent).
 */

#include "support/bench_common.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hh"
#include "sim/thread_pool.hh"

namespace
{

using namespace odbsim;

/** Fixed workload scale: well past the cache knee, I/O-affected. */
constexpr unsigned kWarehouses = 96;
/** Total processors, split one per socket. */
constexpr unsigned kProcessors = 4;
constexpr unsigned kSockets = 4;

/** One deployment column of the sweep. */
struct Deployment
{
    const char *name;
    os::PlacementConfig placement;
};

std::vector<Deployment>
deployments()
{
    std::vector<Deployment> d;
    {
        Deployment se;
        se.name = "shared-everything";
        se.placement.policy = os::PlacementPolicy::Spread;
        d.push_back(se);
    }
    {
        Deployment is2;
        is2.name = "island-2";
        is2.placement.policy = os::PlacementPolicy::Island;
        is2.placement.islandSockets = 2;
        d.push_back(is2);
    }
    {
        Deployment sn;
        sn.name = "shared-nothing";
        sn.placement.policy = os::PlacementPolicy::Island;
        sn.placement.islandSockets = 1;
        d.push_back(sn);
    }
    return d;
}

/**
 * Remote-penalty scale factors applied to the default interconnect
 * (hop latency and link occupancies together). 0 models an ideal
 * machine where remote memory costs the same as local; the top end
 * models a loaded multi-hop fabric.
 */
const double kPenaltyScales[] = {0.0, 0.5, 1.0, 2.5};

mem::TopologyConfig
topologyFor(double scale)
{
    const mem::TopologyConfig base; // default knob values
    mem::TopologyConfig t;
    t.sockets = kSockets;
    t.hopLatencyCycles = base.hopLatencyCycles * scale;
    t.linkOccupancyCycles = base.linkOccupancyCycles * scale;
    t.linkDmaOccupancyCyclesPerKb =
        base.linkDmaOccupancyCyclesPerKb * scale;
    return t;
}

std::string
islandsCsvPath()
{
    const char *dir = std::getenv("ODBSIM_CACHE_DIR");
    std::string path = dir ? dir : ".";
    path += "/odbsim_islands_xeon-quad-mp.csv";
    return path;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Deployment sweep",
                  "Hardware islands: shared-everything vs island vs "
                  "shared-nothing");

    const std::vector<Deployment> deps = deployments();
    const std::size_t nscale =
        sizeof(kPenaltyScales) / sizeof(kPenaltyScales[0]);
    const std::size_t total = nscale * deps.size();

    // Results land in their grid slot, never in completion order, so
    // the CSV is bit-identical for any job count (same contract as
    // ScalingStudy::run).
    std::vector<core::RunResult> grid(total);
    const auto runPoint = [&](std::size_t k) {
        const std::size_t si = k / deps.size();
        const std::size_t di = k % deps.size();
        core::OltpConfiguration cfg;
        cfg.warehouses = kWarehouses;
        cfg.processors = kProcessors;
        cfg.machine = core::MachineKind::XeonQuadMp;
        cfg.topology = topologyFor(kPenaltyScales[si]);
        cfg.placement = deps[di].placement;
        grid[k] = core::ExperimentRunner::run(cfg);
        std::fprintf(stderr,
                     "[bench]   scale=%.2f %-17s done (tps %.0f, "
                     "remote %.0f%%)\n",
                     kPenaltyScales[si], deps[di].name, grid[k].tps,
                     grid[k].remoteMissShare * 100.0);
    };

    unsigned jobs = bench::studyJobs();
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    std::fprintf(stderr,
                 "[bench] measuring %zu deployment points (jobs=%u)...\n",
                 total, jobs);
    if (jobs <= 1) {
        for (std::size_t k = 0; k < total; ++k)
            runPoint(k);
    } else {
        ThreadPool pool(jobs);
        pool.parallelFor(total, runPoint);
    }

    // --- CSV (deterministic; diffed serial-vs-parallel by the smoke
    // script) ---
    const std::string path = islandsCsvPath();
    if (FILE *f = std::fopen(path.c_str(), "w")) {
        std::fprintf(f, "penalty_scale,deployment,sockets,warehouses,"
                        "processors,clients,tps,cpi,mpi,"
                        "remote_miss_share,link_util,bus_util,"
                        "avg_latency_ms\n");
        for (std::size_t k = 0; k < total; ++k) {
            const core::RunResult &r = grid[k];
            std::fprintf(f,
                         "%.17g,%s,%u,%u,%u,%u,%.17g,%.17g,%.17g,"
                         "%.17g,%.17g,%.17g,%.17g\n",
                         kPenaltyScales[k / deps.size()],
                         deps[k % deps.size()].name, kSockets,
                         r.warehouses, r.processors, r.clients, r.tps,
                         r.cpi, r.mpi, r.remoteMissShare, r.linkUtil,
                         r.busUtil, r.avgLatencyMs);
        }
        std::fclose(f);
        std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    } else {
        std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
        return 1;
    }
    if (bench::profileEnabled()) {
        const std::string ppath =
            path.substr(0, path.size() - 4) + "_profile.csv";
        if (FILE *f = std::fopen(ppath.c_str(), "w")) {
            std::fprintf(f, "penalty_scale,deployment,wall_seconds,"
                            "events_fired\n");
            for (std::size_t k = 0; k < total; ++k)
                std::fprintf(f, "%.17g,%s,%.6f,%" PRIu64 "\n",
                             kPenaltyScales[k / deps.size()],
                             deps[k % deps.size()].name,
                             grid[k].wallSeconds, grid[k].eventsFired);
            std::fclose(f);
            std::fprintf(stderr, "[bench] wrote per-point profile to "
                                 "%s\n",
                         ppath.c_str());
        }
    }

    // --- report ---
    std::printf("%-14s", "penalty");
    for (const auto &d : deps)
        std::printf("  %18s", d.name);
    std::printf("\n");
    for (std::size_t si = 0; si < nscale; ++si) {
        std::printf("%-14.2f", kPenaltyScales[si]);
        for (std::size_t di = 0; di < deps.size(); ++di) {
            const core::RunResult &r = grid[si * deps.size() + di];
            char cell[64];
            std::snprintf(cell, sizeof(cell), "%.0f tps (%2.0f%% rem)",
                          r.tps, r.remoteMissShare * 100.0);
            std::printf("  %18s", cell);
        }
        std::printf("\n");
    }
    bench::paperNote(
        "with an expensive interconnect, shared-nothing's locality wins; "
        "as the remote penalty vanishes, the distributed-coordination "
        "tax dominates and shared-everything takes the lead (OLTP on "
        "Hardware Islands).");

    // --- crossover self-check ---
    const auto tpsAt = [&](std::size_t si, std::size_t di) {
        return grid[si * deps.size() + di].tps;
    };
    const std::size_t se = 0, sn = deps.size() - 1;
    int rc = 0;
    if (!(tpsAt(nscale - 1, sn) > tpsAt(nscale - 1, se))) {
        std::fprintf(stderr,
                     "FAIL shared-nothing (%.0f tps) should beat "
                     "shared-everything (%.0f tps) at the highest "
                     "remote penalty\n",
                     tpsAt(nscale - 1, sn), tpsAt(nscale - 1, se));
        rc = 3;
    }
    if (!(tpsAt(0, se) > tpsAt(0, sn))) {
        std::fprintf(stderr,
                     "FAIL shared-everything (%.0f tps) should beat "
                     "shared-nothing (%.0f tps) with a free "
                     "interconnect\n",
                     tpsAt(0, se), tpsAt(0, sn));
        rc = 3;
    }
    if (rc == 0)
        std::printf("\ncrossover check: PASS (shared-nothing wins at "
                    "scale %.1f, shared-everything at 0)\n",
                    kPenaltyScales[nscale - 1]);
    return rc;
}
