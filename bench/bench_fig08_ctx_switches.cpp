/**
 * @file
 * Regenerates Figure 8: Context switches per ODB transaction.
 */

#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 8", "Context switches per ODB transaction");
    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);
    bench::printMetricByW(
        study, "context switches per txn",
        [](const core::RunResult &r) { return r.ctxPerTxn; }, 2);
    bench::paperNote(
        "elevated at 10 W (data contention on the tiny shared working set), dips, then grows in step with disk reads per transaction.");
    return 0;
}
