/**
 * @file
 * Regenerates Figure 5: User-space IPX.
 */

#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 5", "User-space IPX");
    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);
    bench::printMetricByW(
        study, "user IPX (millions)",
        [](const core::RunResult &r) { return r.ipxUser / 1e6; }, 3);
    bench::paperNote(
        "the user-space path length is flat: the database executes the same work per transaction regardless of W.");
    return 0;
}
