/**
 * @file
 * Regenerates Figure 2: TPS versus warehouses for 1P/2P/4P, plus the
 * 1200-warehouse I/O-bound point and the CPU-bound / balanced /
 * I/O-bound region classification of Section 4.1.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "support/bench_common.hh"

namespace
{

const char *
classify(const odbsim::core::RunResult &r)
{
    if (r.diskReadKbPerTxn < 8.0)
        return "CPU-bound (cached)";
    if (r.cpuUtil >= 0.70)
        return "balanced";
    return "I/O-bound";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 2", "Variance of ODB TPS with P and W scaling");

    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);
    bench::printMetricByW(
        study, "transactions per second",
        [](const core::RunResult &r) { return r.tps; }, 0);

    // The 1200 W point the paper excludes from later figures: the 26
    // disks saturate and CPU utilization cannot reach 90%.
    std::printf("\n1200-warehouse I/O-bound check (4P, max clients):\n");
    core::OltpConfiguration cfg;
    cfg.warehouses = 1200;
    cfg.processors = 4;
    const core::RunResult r = core::ExperimentRunner::run(cfg);
    std::printf("  clients %u  tps %.0f  cpuUtil %.2f  disk util %.2f  "
                "reads %.1f KB/txn\n",
                r.clients, r.tps, r.cpuUtil, r.avgDiskUtil,
                r.diskReadKbPerTxn);

    std::printf("\nregion classification (4P):\n");
    for (const auto &p : study.forProcessors(4).points) {
        std::printf("  %4uW  util %.2f  reads %6.1f KB/txn  -> %s\n",
                    p.warehouses, p.cpuUtil, p.diskReadKbPerTxn,
                    classify(p));
    }
    std::printf("  1200W  util %.2f  reads %6.1f KB/txn  -> %s\n",
                r.cpuUtil, r.diskReadKbPerTxn, classify(r));

    bench::paperNote(
        "maximum TPS at ~10 W for all P; TPS decreases as W grows; "
        "4P > 2P > 1P; at 1200 W the I/O subsystem saturates and 4P "
        "utilization stays well below 90% (paper: 63%).");
    return 0;
}
