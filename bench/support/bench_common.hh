/**
 * @file
 * Shared infrastructure for the reproduction benches: each bench
 * regenerates one table or figure of the paper. The full W x P
 * characterization study is expensive, so its results are cached in a
 * CSV next to the working directory and shared by every bench binary
 * (delete the file, or set ODBSIM_NO_CACHE=1, to force remeasurement).
 */

#ifndef ODBSIM_BENCH_SUPPORT_BENCH_COMMON_HH
#define ODBSIM_BENCH_SUPPORT_BENCH_COMMON_HH

#include <functional>
#include <string>

#include "core/scaling_study.hh"

namespace odbsim::bench
{

/** The W grid used by the paper-figure benches. */
std::vector<unsigned> figureWarehouseGrid();

/**
 * Parse the shared bench command line — the single home of the
 * CLI/env parsing every bench main shares:
 *
 *  - `--jobs N` / `-j N` (env `ODBSIM_JOBS`): worker count used to
 *    measure study grid points (0 = one worker per hardware thread,
 *    1 = serial; default);
 *  - `--profile` (env `ODBSIM_PROFILE`): print per-grid-point wall
 *    time and events fired as points complete (and a study total),
 *    plus write a `*_profile.csv` sidecar next to the study cache;
 *  - `--shards K` (env `ODBSIM_SHARDS`): engine shard count for the
 *    lock manager and buffer cache (power of two; default 1, the
 *    paper-exact layout);
 *  - `--event-queue wheel|heap` (env `ODBSIM_EVENT_QUEUE`): event
 *    queue ordering structure (default wheel; heap is the
 *    bit-identical oracle);
 *  - `--replay-threads N` (env `ODBSIM_REPLAY_THREADS`): host worker
 *    threads for the intra-run replay-side parallel phases (sharded
 *    instant-warm prefill; 1 = serial default, 0 = one per hardware
 *    thread). A host-execution knob like `--jobs`: metrics are
 *    bit-identical at any value, so it does not bypass the CSV cache;
 *  - `--des-threads N` (env `ODBSIM_DES_THREADS`): DES worker threads
 *    for the conservative parallel event engine (island-per-thread;
 *    1 = serial default, 0 = one per hardware thread). A
 *    host-execution knob like `--jobs` and `--replay-threads`:
 *    metrics are bit-identical at any value, so it does not bypass
 *    the CSV cache;
 *  - `--csv-dir DIR` (env `ODBSIM_CSV_DIR`; legacy `ODBSIM_CACHE_DIR`
 *    still honoured): directory for the shared study-cache CSVs (and
 *    their profile sidecars). Defaults to the directory holding the
 *    bench binary — the build tree — so stray CSVs never land in the
 *    source tree or whatever directory the bench was invoked from.
 *
 * Flags win over the environment. Unknown arguments are ignored so
 * bench-specific flags can coexist. Results are seed-deterministic
 * regardless of the job count (profiling only observes, never
 * perturbs, the simulation). Studies measured with non-default
 * engine knobs bypass the shared CSV cache so the committed goldens
 * can never be poisoned by an experimental configuration.
 */
void parseArgs(int argc, char **argv);

/** The worker count selected by parseArgs()/ODBSIM_JOBS (default 1). */
unsigned studyJobs();

/** True if --profile / ODBSIM_PROFILE=1 requested per-point timing. */
bool profileEnabled();

/** Engine shard count selected by --shards/ODBSIM_SHARDS (default 1). */
unsigned dbShards();

/** Event-queue kind selected by --event-queue/ODBSIM_EVENT_QUEUE. */
EventQueueKind eventQueueKind();

/** Replay-side worker threads selected by
 *  --replay-threads/ODBSIM_REPLAY_THREADS (default 1). */
unsigned replayThreads();

/** DES worker threads selected by --des-threads/ODBSIM_DES_THREADS
 *  (default 1). */
unsigned desThreads();

/** Study-cache CSV directory selected by --csv-dir/ODBSIM_CSV_DIR
 *  (default: the directory holding the bench binary). */
const std::string &csvDir();

/** Apply the parsed engine knobs (shards, event queue) to @p knobs. */
void applyEngineKnobs(core::RunKnobs &knobs);

/**
 * Obtain the full characterization study for @p machine, from the CSV
 * cache when present, measuring (and caching) otherwise.
 */
core::StudyResult sharedStudy(core::MachineKind machine);

/** Serialize a study to CSV. */
void saveStudy(const core::StudyResult &study, const std::string &path);

/** Load a study from CSV; returns false if absent/invalid. */
bool loadStudy(const std::string &path, core::StudyResult &out);

/** Print the standard bench banner. */
void banner(const char *artifact, const char *caption);

/**
 * Print one metric as a W-by-P table (the shape of the paper's
 * line-chart figures).
 */
void printMetricByW(const core::StudyResult &study, const char *metric,
                    const std::function<double(const core::RunResult &)>
                        &get,
                    int decimals = 2);

/** Print the paper's qualitative expectation for this artifact. */
void paperNote(const char *note);

} // namespace odbsim::bench

#endif // ODBSIM_BENCH_SUPPORT_BENCH_COMMON_HH
