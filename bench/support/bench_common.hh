/**
 * @file
 * Shared infrastructure for the reproduction benches: each bench
 * regenerates one table or figure of the paper. The full W x P
 * characterization study is expensive, so its results are cached in a
 * CSV next to the working directory and shared by every bench binary
 * (delete the file, or set ODBSIM_NO_CACHE=1, to force remeasurement).
 */

#ifndef ODBSIM_BENCH_SUPPORT_BENCH_COMMON_HH
#define ODBSIM_BENCH_SUPPORT_BENCH_COMMON_HH

#include <functional>
#include <string>

#include "core/scaling_study.hh"

namespace odbsim::bench
{

/** The W grid used by the paper-figure benches. */
std::vector<unsigned> figureWarehouseGrid();

/**
 * Parse the shared bench command line: `--jobs N` (or `-j N`) selects
 * the worker count used to measure study grid points (0 = one worker
 * per hardware thread, 1 = serial; default), and `--profile` prints
 * per-grid-point wall time and events fired as points complete (and a
 * study total), plus writes a `*_profile.csv` sidecar next to the
 * study cache. The `ODBSIM_JOBS` and `ODBSIM_PROFILE` environment
 * variables provide the same knobs for benches driven without flags;
 * flags win. Unknown arguments are ignored so bench-specific flags can
 * coexist. Results are seed-deterministic regardless of the job count
 * (profiling only observes, never perturbs, the simulation).
 */
void parseArgs(int argc, char **argv);

/** The worker count selected by parseArgs()/ODBSIM_JOBS (default 1). */
unsigned studyJobs();

/** True if --profile / ODBSIM_PROFILE=1 requested per-point timing. */
bool profileEnabled();

/**
 * Obtain the full characterization study for @p machine, from the CSV
 * cache when present, measuring (and caching) otherwise.
 */
core::StudyResult sharedStudy(core::MachineKind machine);

/** Serialize a study to CSV. */
void saveStudy(const core::StudyResult &study, const std::string &path);

/** Load a study from CSV; returns false if absent/invalid. */
bool loadStudy(const std::string &path, core::StudyResult &out);

/** Print the standard bench banner. */
void banner(const char *artifact, const char *caption);

/**
 * Print one metric as a W-by-P table (the shape of the paper's
 * line-chart figures).
 */
void printMetricByW(const core::StudyResult &study, const char *metric,
                    const std::function<double(const core::RunResult &)>
                        &get,
                    int decimals = 2);

/** Print the paper's qualitative expectation for this artifact. */
void paperNote(const char *note);

} // namespace odbsim::bench

#endif // ODBSIM_BENCH_SUPPORT_BENCH_COMMON_HH
