#include "bench_common.hh"

#include "core/study_io.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace odbsim::bench
{

std::vector<unsigned>
figureWarehouseGrid()
{
    return {10, 25, 35, 50, 75, 100, 150, 200, 300, 400, 600, 800};
}

namespace
{

/** Worker count for study measurement; seeded from ODBSIM_JOBS. */
unsigned g_jobs = []() -> unsigned {
    const char *env = std::getenv("ODBSIM_JOBS");
    if (!env)
        return 1;
    const long v = std::strtol(env, nullptr, 10);
    return v >= 0 ? static_cast<unsigned>(v) : 1;
}();

/** Per-point wall-time reporting; seeded from ODBSIM_PROFILE. */
bool g_profile = []() {
    const char *env = std::getenv("ODBSIM_PROFILE");
    return env && *env && std::strcmp(env, "0") != 0;
}();

/** Engine shard count; seeded from ODBSIM_SHARDS. */
unsigned g_shards = []() -> unsigned {
    const char *env = std::getenv("ODBSIM_SHARDS");
    if (!env)
        return 1;
    const long v = std::strtol(env, nullptr, 10);
    return v >= 1 ? static_cast<unsigned>(v) : 1;
}();

/** Event-queue kind; seeded from ODBSIM_EVENT_QUEUE. */
EventQueueKind g_eq_kind = []() {
    const char *env = std::getenv("ODBSIM_EVENT_QUEUE");
    if (env && std::strcmp(env, "heap") == 0)
        return EventQueueKind::heap;
    return EventQueueKind::wheel;
}();

/** Intra-run replay worker threads; seeded from ODBSIM_REPLAY_THREADS. */
unsigned g_replay_threads = []() -> unsigned {
    const char *env = std::getenv("ODBSIM_REPLAY_THREADS");
    if (!env)
        return 1;
    const long v = std::strtol(env, nullptr, 10);
    return v >= 0 ? static_cast<unsigned>(v) : 1;
}();

/** DES worker threads; seeded from ODBSIM_DES_THREADS. */
unsigned g_des_threads = []() -> unsigned {
    const char *env = std::getenv("ODBSIM_DES_THREADS");
    if (!env)
        return 1;
    const long v = std::strtol(env, nullptr, 10);
    return v >= 0 ? static_cast<unsigned>(v) : 1;
}();

/** Study-cache CSV directory; resolution order is --csv-dir >
 *  ODBSIM_CSV_DIR > ODBSIM_CACHE_DIR (legacy) > dir(argv[0]),
 *  finalized by parseArgs(). */
std::string g_csv_dir = []() -> std::string {
    if (const char *env = std::getenv("ODBSIM_CSV_DIR"))
        return env;
    if (const char *env = std::getenv("ODBSIM_CACHE_DIR"))
        return env;
    return {};
}();

std::string
cachePath(core::MachineKind machine)
{
    std::string path = csvDir();
    path += "/odbsim_study_";
    path += core::toString(machine);
    path += ".csv";
    return path;
}

/** `<cache>.csv` → `<cache>_profile.csv` (the wall-time sidecar). */
std::string
profilePath(const std::string &study_path)
{
    std::string path = study_path;
    const std::string suffix = ".csv";
    path.replace(path.size() - suffix.size(), suffix.size(),
                 "_profile.csv");
    return path;
}

/**
 * Build a longest-first cost hint from a previous run's profile
 * sidecar, if one survives next to the (possibly purged) study cache.
 * Missing sidecar or missing points fall back to the W×P estimate,
 * scaled into the sidecar's wall-seconds unit so the two cost sources
 * stay comparable.
 */
std::function<double(unsigned, unsigned)>
costHintFromProfile(const std::string &study_path)
{
    std::vector<core::PointProfile> profile;
    if (!core::loadStudyProfileCsv(profilePath(study_path), profile))
        return nullptr;
    double wall_per_wp = 0.0, wp = 0.0;
    for (const auto &p : profile)
        wp += static_cast<double>(p.warehouses) * p.processors;
    for (const auto &p : profile)
        wall_per_wp += p.wallSeconds;
    wall_per_wp = wp > 0.0 ? wall_per_wp / wp : 1.0;
    return [profile = std::move(profile),
            wall_per_wp](unsigned w, unsigned p) -> double {
        for (const auto &q : profile) {
            if (q.warehouses == w && q.processors == p)
                return q.wallSeconds;
        }
        return static_cast<double>(w) * p * wall_per_wp;
    };
}

} // namespace

void
parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const bool is_jobs = std::strcmp(argv[i], "--jobs") == 0 ||
                             std::strcmp(argv[i], "-j") == 0;
        if (is_jobs && i + 1 < argc) {
            const long v = std::strtol(argv[++i], nullptr, 10);
            if (v < 0) {
                std::fprintf(stderr, "[bench] ignoring negative --jobs\n");
                continue;
            }
            g_jobs = static_cast<unsigned>(v);
        } else if (std::strcmp(argv[i], "--profile") == 0) {
            g_profile = true;
        } else if (std::strcmp(argv[i], "--shards") == 0 &&
                   i + 1 < argc) {
            const long v = std::strtol(argv[++i], nullptr, 10);
            if (v < 1) {
                std::fprintf(stderr,
                             "[bench] ignoring non-positive --shards\n");
                continue;
            }
            g_shards = static_cast<unsigned>(v);
        } else if (std::strcmp(argv[i], "--event-queue") == 0 &&
                   i + 1 < argc) {
            const char *kind = argv[++i];
            if (std::strcmp(kind, "heap") == 0) {
                g_eq_kind = EventQueueKind::heap;
            } else if (std::strcmp(kind, "wheel") == 0) {
                g_eq_kind = EventQueueKind::wheel;
            } else {
                std::fprintf(stderr,
                             "[bench] unknown --event-queue '%s' "
                             "(expected wheel|heap)\n",
                             kind);
            }
        } else if (std::strcmp(argv[i], "--replay-threads") == 0 &&
                   i + 1 < argc) {
            const long v = std::strtol(argv[++i], nullptr, 10);
            if (v < 0) {
                std::fprintf(stderr,
                             "[bench] ignoring negative "
                             "--replay-threads\n");
                continue;
            }
            g_replay_threads = static_cast<unsigned>(v);
        } else if (std::strcmp(argv[i], "--des-threads") == 0 &&
                   i + 1 < argc) {
            const long v = std::strtol(argv[++i], nullptr, 10);
            if (v < 0) {
                std::fprintf(stderr,
                             "[bench] ignoring negative "
                             "--des-threads\n");
                continue;
            }
            g_des_threads = static_cast<unsigned>(v);
        } else if (std::strcmp(argv[i], "--csv-dir") == 0 &&
                   i + 1 < argc) {
            g_csv_dir = argv[++i];
        }
    }
    // No explicit directory anywhere: default to the directory holding
    // the bench binary (the build tree), so caches land in one
    // predictable place no matter where the bench is invoked from.
    if (g_csv_dir.empty() && argc > 0 && argv[0]) {
        const std::string self = argv[0];
        const std::size_t slash = self.rfind('/');
        if (slash != std::string::npos && slash > 0)
            g_csv_dir = self.substr(0, slash);
    }
}

unsigned
studyJobs()
{
    return g_jobs;
}

bool
profileEnabled()
{
    return g_profile;
}

unsigned
dbShards()
{
    return g_shards;
}

EventQueueKind
eventQueueKind()
{
    return g_eq_kind;
}

unsigned
replayThreads()
{
    return g_replay_threads;
}

unsigned
desThreads()
{
    return g_des_threads;
}

const std::string &
csvDir()
{
    static const std::string dot = ".";
    return g_csv_dir.empty() ? dot : g_csv_dir;
}

void
applyEngineKnobs(core::RunKnobs &knobs)
{
    knobs.dbShards = g_shards;
    knobs.eventQueue = g_eq_kind;
    // Host-execution knobs, not engine knobs: any value produces
    // bit-identical metrics (like --jobs), so they deliberately do not
    // join the cache-bypass predicate in sharedStudy() below.
    knobs.replayThreads = g_replay_threads;
    knobs.desThreads = g_des_threads;
}

void
saveStudy(const core::StudyResult &study, const std::string &path)
{
    core::saveStudyCsv(study, path);
}

bool
loadStudy(const std::string &path, core::StudyResult &out)
{
    return core::loadStudyCsv(path, out);
}

core::StudyResult
sharedStudy(core::MachineKind machine)
{
    const std::string path = cachePath(machine);
    // Non-default engine knobs must never read or write the shared
    // cache: the committed goldens are defined by the K=1 / wheel
    // configuration (bit-identical to the pre-shard engine).
    const bool default_engine =
        g_shards == 1 && g_eq_kind == EventQueueKind::wheel;
    const bool no_cache =
        std::getenv("ODBSIM_NO_CACHE") != nullptr || !default_engine;
    core::StudyResult study;
    if (!no_cache && loadStudy(path, study)) {
        std::fprintf(stderr, "[bench] loaded cached study from %s\n",
                     path.c_str());
        if (g_profile)
            std::fprintf(stderr, "[bench] --profile: study came from "
                                 "the cache; no points were measured\n");
        return study;
    }

    std::fprintf(stderr,
                 "[bench] measuring full %s characterization study "
                 "(jobs=%u)...\n",
                 core::toString(machine), g_jobs);
    core::StudyConfig cfg;
    cfg.warehouses = figureWarehouseGrid();
    cfg.machine = machine;
    cfg.jobs = g_jobs;
    applyEngineKnobs(cfg.knobs);
    // A surviving profile sidecar from an earlier --profile run turns
    // into measured longest-first costs (scheduling only — the study
    // itself is bit-identical either way).
    cfg.costHint = costHintFromProfile(path);
    if (cfg.costHint && g_jobs != 1)
        std::fprintf(stderr, "[bench] using %s for longest-first "
                             "dispatch\n",
                     profilePath(path).c_str());
    cfg.onPoint = [](const core::RunResult &r) {
        if (g_profile) {
            std::fprintf(stderr,
                         "[bench]   W=%u P=%u done (tps %.0f) "
                         "wall %.3fs  %" PRIu64 " events  %.2fM ev/s\n",
                         r.warehouses, r.processors, r.tps,
                         r.wallSeconds, r.eventsFired,
                         r.eventsPerSec() / 1e6);
        } else {
            std::fprintf(stderr, "[bench]   W=%u P=%u done (tps %.0f)\n",
                         r.warehouses, r.processors, r.tps);
        }
    };
    study = core::ScalingStudy::run(cfg);
    if (g_profile) {
        double wall = 0.0;
        std::uint64_t events = 0;
        for (const auto &s : study.series) {
            for (const auto &p : s.points) {
                wall += p.wallSeconds;
                events += p.eventsFired;
            }
        }
        std::fprintf(stderr,
                     "[bench] study total: %.3f CPU-seconds, %" PRIu64
                     " events (%.2fM ev/s)\n",
                     wall, events,
                     wall > 0.0 ? static_cast<double>(events) / wall / 1e6
                                : 0.0);
        // Wall time is host-dependent, so the profile is a sidecar —
        // never part of the golden study CSV.
        const std::string profile_path = profilePath(path);
        if (core::saveStudyProfileCsv(study, profile_path))
            std::fprintf(stderr, "[bench] wrote per-point profile to "
                                 "%s\n",
                         profile_path.c_str());
    }
    if (!no_cache)
        saveStudy(study, path);
    return study;
}

void
banner(const char *artifact, const char *caption)
{
    std::printf("\n================================================"
                "=============================\n");
    std::printf("%s — %s\n", artifact, caption);
    std::printf("Hankins et al., \"Scaling and Characterizing Database "
                "Workloads\", MICRO 2003\n");
    std::printf("=================================================="
                "===========================\n\n");
}

void
printMetricByW(const core::StudyResult &study, const char *metric,
               const std::function<double(const core::RunResult &)> &get,
               int decimals)
{
    std::printf("%-14s", "warehouses");
    for (const auto &s : study.series)
        std::printf("  %8uP", s.processors);
    std::printf("\n");
    const std::size_t rows = study.series.front().points.size();
    for (std::size_t i = 0; i < rows; ++i) {
        std::printf("%-14u",
                    study.series.front().points[i].warehouses);
        for (const auto &s : study.series)
            std::printf("  %9.*f", decimals, get(s.points[i]));
        std::printf("\n");
    }
    std::printf("(metric: %s)\n", metric);
}

void
paperNote(const char *note)
{
    std::printf("\npaper: %s\n", note);
}

} // namespace odbsim::bench
