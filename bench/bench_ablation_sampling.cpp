/**
 * @file
 * Methodology ablation: headline metrics versus the set-sampling
 * factor S of the cache model. The factor trades simulation speed for
 * variance; the characterization must be stable across it.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Ablation: set-sampling factor",
                  "Metric stability vs the cache-model sampling factor");

    std::printf("%-6s %8s %8s %8s %10s %8s\n", "S", "tps", "cpi",
                "mpiK", "busUtil%", "util");
    for (const std::uint32_t s : {4u, 8u, 16u, 32u}) {
        core::OltpConfiguration cfg;
        cfg.warehouses = 100;
        cfg.processors = 4;
        core::RunKnobs knobs;
        knobs.samplePeriod = s;
        knobs.measure = ticksFromSeconds(1.0);
        const core::RunResult r = core::ExperimentRunner::run(cfg, knobs);
        std::printf("%-6u %8.0f %8.3f %8.3f %10.1f %8.2f\n", s, r.tps,
                    r.cpi, r.mpi * 1e3, r.busUtil * 100.0, r.cpuUtil);
    }

    bench::paperNote(
        "not a paper artifact: validates that the scaled-tag-store "
        "sampling technique (DESIGN.md) does not drive the headline "
        "metrics — CPI/MPI should vary by well under the cached-vs-"
        "scaled signal across S.");
    return 0;
}
