/**
 * @file
 * Regenerates Figure 19: CPI scaling on the Quad Itanium2 server
 * (3 MB L3, ~50% more bus bandwidth, 16 GB memory, 34 disks) — the
 * Section 6.3 validation that system attributes move the pivot the
 * way the model predicts.
 */

#include <cstdio>

#include "analysis/piecewise.hh"
#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 19", "CPI scaling on an Itanium2 quad server");

    const core::StudyResult i2 =
        bench::sharedStudy(core::MachineKind::Itanium2Quad);
    const core::StudyResult xeon =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);

    const auto &i2s = i2.forProcessors(4);
    const auto &xs = xeon.forProcessors(4);

    std::printf("%-12s %14s %14s\n", "warehouses", "Itanium2 CPI",
                "Xeon MP CPI");
    for (std::size_t i = 0; i < i2s.points.size(); ++i) {
        std::printf("%-12u %14.3f %14.3f\n", i2s.points[i].warehouses,
                    i2s.points[i].cpi, xs.points[i].cpi);
    }

    const analysis::PiecewiseFit fi2 = i2s.cpiFit();
    const analysis::PiecewiseFit fx = xs.cpiFit();
    std::printf("\ncached-region slope:  Itanium2 %.6f  vs  Xeon %.6f\n",
                fi2.cached.slope, fx.cached.slope);
    std::printf("scaled-region slope:  Itanium2 %.6f  vs  Xeon %.6f\n",
                fi2.scaled.slope, fx.scaled.slope);
    std::printf("CPI pivot:            Itanium2 %.0f W  vs  Xeon %.0f W\n",
                fi2.pivotX, fx.pivotX);

    bench::paperNote(
        "the 3 MB L3 flattens the cached-region slope and the extra "
        "bus/disk bandwidth softens the scaled region; the resulting "
        "Itanium2 CPI pivot (118 W in the paper) lands close to the "
        "Xeon's (130 W), validating the Section 6.3 conjectures.");
    return 0;
}
