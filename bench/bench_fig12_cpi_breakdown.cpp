/**
 * @file
 * Regenerates Figure 12: the CPI decomposed into the Table 3/4 event
 * components (Inst, Branch, TLB, TC, L2, L3, Other) across W and P.
 */

#include <cstdio>

#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 12", "CPI breakdown by event (Tables 3 & 4)");
    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);

    for (const auto &series : study.series) {
        std::printf("%uP:\n", series.processors);
        std::printf("%-8s %6s %7s %6s %6s %6s %7s %7s %7s %6s\n", "W",
                    "Inst", "Branch", "TLB", "TC", "L2", "L3", "Other",
                    "total", "L3%");
        for (const auto &r : series.points) {
            const auto &b = r.breakdown;
            std::printf(
                "%-8u %6.2f %7.3f %6.3f %6.3f %6.3f %7.3f %7.3f %7.3f "
                "%5.0f%%\n",
                r.warehouses, b.inst, b.branch, b.tlb, b.tc, b.l2, b.l3,
                b.other, b.total(), b.l3Share() * 100.0);
        }
        std::printf("\n");
    }

    bench::paperNote(
        "L3 misses are the single largest component (~60% of CPI); the "
        "compute (Inst) and Branch components barely change across W; "
        "the L3 component grows with W and with P (bus queueing adds "
        "to the 300-cycle miss penalty).");
    return 0;
}
