/**
 * @file
 * CMP exploration: the paper's forward-looking question — "our
 * interest in CMP designs" (Section 3.2.2) and the conclusion that
 * coherence is not a bottleneck, so OLTP "would scale well on future
 * CMP designs". Compare the measured 4-way SMP against a 4-core CMP
 * with the same aggregate L3 shared on die, at the representative
 * configuration.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/repeat.hh"
#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Ablation: SMP vs CMP",
                  "Shared on-die L3 versus private L3s (Sections "
                  "3.2.2, 5.2, 7)");

    const unsigned rep_w = 200;
    core::RunKnobs knobs;
    knobs.measure = ticksFromSeconds(1.2);

    std::printf("%-14s %8s %8s %8s %8s %8s %10s\n", "machine", "tps",
                "cpi", "mpiK", "bus%", "coh/L3", "tps 95%CI");
    for (const auto kind :
         {core::MachineKind::XeonQuadMp, core::MachineKind::CmpQuad}) {
        core::OltpConfiguration cfg;
        cfg.warehouses = rep_w;
        cfg.processors = 4;
        cfg.machine = kind;
        const core::RepeatedResult rep = core::repeatRun(cfg, knobs, 3);
        const auto &r = rep.runs.front();
        const core::MetricStats tps = rep.tps();
        std::printf("%-14s %8.0f %8.3f %8.3f %8.1f %8.3f %9.0f\n",
                    core::toString(kind), tps.mean, rep.cpi().mean,
                    rep.mpi().mean * 1e3, r.busUtil * 100.0,
                    r.coherenceShareOfL3, tps.ci95());
    }

    bench::paperNote(
        "not a paper artifact (forward-looking): the shared 2 MB L3 "
        "keeps cross-core sharing on die, removing front-side-bus "
        "transactions for lines another core owns; coherence stays a "
        "small share of misses either way, supporting the paper's "
        "conclusion that OLTP suits CMPs.");
    return 0;
}
