/**
 * @file
 * Ablation (Section 6.3 conjecture): the cached-region slope is set by
 * the L3 capacity — growing the L3 should lower CPI at small W,
 * flatten the cached region, and push the pivot right.
 */

#include <cinttypes>
#include <cstdio>

#include "analysis/piecewise.hh"
#include "core/experiment.hh"
#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Ablation: L3 capacity",
                  "Pivot sensitivity to L3 size (Section 6.3)");

    core::RunKnobs knobs;
    knobs.measure = ticksFromSeconds(1.0);

    std::printf("%-10s %14s %14s %12s %10s %10s\n", "L3",
                "cached slope", "scaled slope", "pivot (W)", "CPI@10W",
                "CPI@400W");
    for (const std::uint64_t l3_kb : {512u, 1024u, 2048u, 4096u}) {
        core::MachinePreset preset =
            core::makeMachine(core::MachineKind::XeonQuadMp, 4,
                              knobs.samplePeriod, knobs.seed);
        preset.sys.hierarchy.l3 = {l3_kb * KiB, 8, 64};

        std::vector<double> xs, ys;
        for (const unsigned w : {10u, 25u, 50u, 100u, 200u, 400u}) {
            const core::RunResult r =
                core::ExperimentRunner::runWithPreset(preset, w, 0,
                                                      knobs);
            xs.push_back(w);
            ys.push_back(r.cpi);
            std::fprintf(stderr, "[bench] L3=%" PRIu64 "KB W=%u cpi %.3f\n",
                         l3_kb, w, r.cpi);
        }
        const analysis::PiecewiseFit fit =
            analysis::fitTwoSegment(xs, ys);
        std::printf("%6" PRIu64 " KB %14.6f %14.6f %12.0f %10.3f %10.3f\n",
                    l3_kb, fit.cached.slope, fit.scaled.slope,
                    fit.pivotX, ys.front(), ys.back());
    }

    bench::paperNote(
        "larger L3 caches lower the cached-region CPI and move the "
        "pivot right — the mechanism behind the paper's Itanium2 "
        "prediction.");
    return 0;
}
