/**
 * @file
 * Regenerates Figure 6: OS-space IPX.
 */

#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 6", "OS-space IPX");
    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);
    bench::printMetricByW(
        study, "OS IPX (millions)",
        [](const core::RunResult &r) { return r.ipxOs / 1e6; }, 3);
    bench::paperNote(
        "the OS-space path length grows with W, from the increasing disk I/O service and scheduler/context-switch work.");
    return 0;
}
