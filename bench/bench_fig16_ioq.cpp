/**
 * @file
 * Regenerates Figure 16: mean bus-transaction time in the IOQ, per W
 * and P, together with the bus utilization that drives it.
 */

#include <cstdio>

#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 16", "Bus-transaction time (in the IOQ)");
    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);

    bench::printMetricByW(
        study, "IOQ residency (CPU cycles)",
        [](const core::RunResult &r) { return r.ioqCycles; }, 1);

    std::printf("\nbus utilization (%%):\n");
    bench::printMetricByW(
        study, "bus utilization (%)",
        [](const core::RunResult &r) { return r.busUtil * 100.0; }, 1);

    bench::paperNote(
        "the IOQ latency stays near the unloaded 102 cycles at 1P for "
        "every W, but grows with utilization on 4P; bus utilization "
        "approaches 45% at 4P and stays below 30% at 2P.");
    return 0;
}
