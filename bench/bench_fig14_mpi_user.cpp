/**
 * @file
 * Regenerates Figure 14: User-space L3 misses per instruction.
 */

#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 14", "User-space L3 misses per instruction");
    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);
    bench::printMetricByW(
        study, "user L3 MPI (x1000)",
        [](const core::RunResult &r) { return r.mpiUser * 1e3; }, 3);
    bench::paperNote(
        "the user-space MPI component correlates with the overall MPI.");
    return 0;
}
