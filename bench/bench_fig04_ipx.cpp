/**
 * @file
 * Regenerates Figure 4: Millions of instructions per ODB transaction.
 */

#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 4", "Millions of instructions per ODB transaction");
    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);
    bench::printMetricByW(
        study, "IPX (millions of instructions per txn)",
        [](const core::RunResult &r) { return r.ipx / 1e6; }, 3);
    bench::paperNote(
        "IPX increases roughly linearly with W (its OS component grows with the I/O rate while the user component stays flat).");
    return 0;
}
