/**
 * @file
 * Hyper-Threading ablation: the paper's machine supported HT but the
 * study ran with it disabled (Section 3.3). This bench answers the
 * deferred question: what would the characterization have looked like
 * with HT on? Two hardware threads per core share the caches and
 * issue bandwidth; more in-flight transactions mask I/O but pollute
 * the shared hierarchy.
 */

#include <cstdio>

#include "core/client_table.hh"
#include "core/experiment.hh"
#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Ablation: Hyper-Threading",
                  "The study's machine with HT enabled (Section 3.3)");

    core::RunKnobs knobs;
    knobs.measure = ticksFromSeconds(1.2);

    std::printf("%-6s %-16s %8s %8s %8s %8s %8s %8s\n", "W", "machine",
                "tps", "util", "cpi", "mpiK", "ctx/txn", "clients");
    for (const unsigned w : {25u, 100u, 400u}) {
        for (const auto kind : {core::MachineKind::XeonQuadMp,
                                core::MachineKind::XeonQuadMpHt}) {
            core::OltpConfiguration cfg;
            cfg.warehouses = w;
            cfg.processors = 4; // Physical CPUs.
            cfg.machine = kind;
            // HT doubles the runnable contexts worth feeding.
            if (kind == core::MachineKind::XeonQuadMpHt)
                cfg.clients = 2 * core::paperClients(w, 4);
            const core::RunResult r =
                core::ExperimentRunner::run(cfg, knobs);
            std::printf("%-6u %-16s %8.0f %8.2f %8.3f %8.3f %8.2f %8u\n",
                        w, core::toString(kind), r.tps, r.cpuUtil,
                        r.cpi, r.mpi * 1e3, r.ctxPerTxn, r.clients);
        }
    }

    bench::paperNote(
        "not a paper artifact (the study disabled HT): per-thread CPI "
        "rises (shared pipeline and caches) while aggregate TPS gains "
        "what the extra thread-level parallelism can cover — largest "
        "where I/O waits dominate, smallest in the CPU-bound cached "
        "region.");
    return 0;
}
