/**
 * @file
 * Hot-path perf baseline: measures the simulation kernel's hottest
 * operations — event scheduling, tag-store accesses, coherence
 * directory churn, the batched memory-access path, the database
 * replay structures (buffer cache, lock manager), end-to-end
 * plan-and-replay throughput, and one reference study grid point —
 * and emits BENCH_hotpath.json, the baseline future perf PRs are
 * judged against.
 *
 * Four microbenchmarks also run against embedded copies of the
 * pre-overhaul implementations (the shared_ptr/std::function event
 * queue, and the std::unordered_map coherence directory, buffer-cache
 * index and lock table with its per-resource std::deque), so the
 * reported speedups are reproducible from this binary alone, on any
 * host, without checking out the old revisions. Each churn bench is
 * driven by one deterministic operation stream through both
 * implementations and cross-checks their observable counters, so the
 * perf comparisons double as differential tests.
 *
 * Usage: bench_hotpath [--out FILE]   (default: BENCH_hotpath.json)
 */

#include <array>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "core/des_grid.hh"
#include "core/experiment.hh"
#include "core/repeat.hh"
#include "db/buffer_cache.hh"
#include "db/database.hh"
#include "db/lock_manager.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "odb/host_replay.hh"
#include "odb/workload.hh"
#include "os/system.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/thread_pool.hh"
#include "support/bench_common.hh"

#ifndef ODBSIM_GIT_REV
#define ODBSIM_GIT_REV "unknown"
#endif
#ifndef ODBSIM_BUILD_TYPE
#define ODBSIM_BUILD_TYPE "unknown"
#endif

namespace
{

using namespace odbsim;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * The event queue as it was before the slab/small-buffer overhaul:
 * every schedule() heap-allocates a shared_ptr control block and
 * (for capturing lambdas) a std::function target, and the
 * priority_queue entry carries both. Kept verbatim as the perf
 * reference for speedup_vs_legacy.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    Tick curTick() const { return curTick_; }

    void
    schedule(Tick when, Callback cb)
    {
        auto slot = std::make_shared<Slot>();
        queue_.push(Entry{when, nextSeq_++, std::move(cb), slot});
    }

    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(curTick_ + delay, std::move(cb));
    }

    bool
    step()
    {
        while (!queue_.empty()) {
            Entry entry = std::move(const_cast<Entry &>(queue_.top()));
            queue_.pop();
            if (entry.slot->cancelled)
                continue;
            curTick_ = entry.when;
            entry.slot->fired = true;
            entry.cb();
            return true;
        }
        return false;
    }

  private:
    struct Slot
    {
        bool cancelled = false;
        bool fired = false;
    };
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
        std::shared_ptr<Slot> slot;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
};

/**
 * The coherence directory as it was before the flat-table overhaul:
 * a std::unordered_map from line address to {sharers, owner}, paying
 * a node allocation per tracked line and a pointer chase per probe.
 * Kept verbatim as the perf reference for the directory speedup gate.
 */
class LegacyCoherenceDirectory
{
  public:
    explicit LegacyCoherenceDirectory(unsigned num_cpus)
        : numCpus_(num_cpus)
    {}

    mem::CoherenceOutcome
    onFill(unsigned cpu, Addr line_addr, bool is_write)
    {
        mem::CoherenceOutcome out;
        Entry &e = lines_[line_addr];
        const std::uint32_t self = 1u << cpu;
        if (e.modifiedOwner >= 0 &&
            static_cast<unsigned>(e.modifiedOwner) != cpu) {
            out.remoteDirty = true;
            out.remoteOwner = static_cast<unsigned>(e.modifiedOwner);
            ++coherenceMisses_;
        }
        if (is_write) {
            const std::uint32_t remote = e.sharers & ~self;
            out.invalidateMask = remote;
            invalidations_ += std::popcount(remote);
            e.sharers = self;
            e.modifiedOwner = static_cast<std::int8_t>(cpu);
        } else {
            if (out.remoteDirty)
                e.modifiedOwner = -1;
            e.sharers |= self;
        }
        return out;
    }

    std::uint32_t
    onWriteHit(unsigned cpu, Addr line_addr)
    {
        Entry &e = lines_[line_addr];
        const std::uint32_t self = 1u << cpu;
        const std::uint32_t remote = e.sharers & ~self;
        invalidations_ += std::popcount(remote);
        e.sharers = self;
        e.modifiedOwner = static_cast<std::int8_t>(cpu);
        return remote;
    }

    mem::SnoopState
    snoop(Addr line_addr) const
    {
        auto it = lines_.find(line_addr);
        if (it == lines_.end())
            return mem::SnoopState{};
        return mem::SnoopState{true, it->second.sharers,
                               it->second.modifiedOwner};
    }

    void
    onEviction(unsigned cpu, Addr line_addr)
    {
        auto it = lines_.find(line_addr);
        if (it == lines_.end())
            return;
        Entry &e = it->second;
        e.sharers &= ~(1u << cpu);
        if (e.modifiedOwner >= 0 &&
            static_cast<unsigned>(e.modifiedOwner) == cpu) {
            e.modifiedOwner = -1;
        }
        if (e.sharers == 0 && e.modifiedOwner < 0)
            lines_.erase(it);
    }

    void onDmaFill(Addr line_addr) { lines_.erase(line_addr); }

    std::size_t trackedLines() const { return lines_.size(); }
    std::uint64_t coherenceMisses() const { return coherenceMisses_; }
    std::uint64_t invalidationsSent() const { return invalidations_; }

  private:
    struct Entry
    {
        std::uint32_t sharers = 0;
        std::int8_t modifiedOwner = -1;
    };

    unsigned numCpus_;
    std::unordered_map<Addr, Entry> lines_;
    std::uint64_t coherenceMisses_ = 0;
    std::uint64_t invalidations_ = 0;
};

/**
 * The buffer cache as it was before the flat-table overhaul: the same
 * frame pool and intrusive LRU, but the resident-block index is a
 * std::unordered_map (a node allocation per resident block, a pointer
 * chase per probe) and metaAddr() folds the hashed block id onto the
 * frame count with a 64-bit hardware divide. Kept verbatim as the
 * perf reference for the buffer-cache speedup gate.
 */
class LegacyBufferCache
{
  public:
    explicit LegacyBufferCache(std::uint64_t frames)
    {
        frames_.resize(frames + 1);
        sentinel_ = static_cast<std::uint32_t>(frames);
        frames_[sentinel_].prev = sentinel_;
        frames_[sentinel_].next = sentinel_;
        map_.reserve(frames);
    }

    std::uint64_t numFrames() const { return frames_.size() - 1; }
    std::uint64_t residentBlocks() const { return map_.size(); }

    db::BufferLookup
    lookup(db::BlockId b)
    {
        ++gets_;
        auto it = map_.find(b);
        if (it == map_.end()) {
            ++misses_;
            return db::BufferLookup{false, 0};
        }
        const std::uint32_t f = it->second;
        unlink(f);
        pushFront(f);
        return db::BufferLookup{true, f};
    }

    db::BufferVictim
    allocate(db::BlockId b)
    {
        db::BufferVictim out;
        std::uint32_t f;
        if (nextFree_ < sentinel_) {
            f = static_cast<std::uint32_t>(nextFree_++);
        } else {
            f = frames_[sentinel_].prev;
            while (f != sentinel_ && frames_[f].ioPending)
                f = frames_[f].prev;
            Frame &victim = frames_[f];
            out.hadBlock = true;
            out.evictedBlock = victim.block;
            out.wasDirty = victim.dirty;
            if (victim.dirty)
                ++dirtyEvictions_;
            map_.erase(victim.block);
            unlink(f);
        }
        Frame &fr = frames_[f];
        fr.block = b;
        fr.dirty = false;
        fr.ioPending = true;
        map_[b] = f;
        pushFront(f);
        out.frame = f;
        return out;
    }

    void fillComplete(std::uint64_t frame)
    {
        frames_[frame].ioPending = false;
    }
    void markDirty(std::uint64_t frame) { frames_[frame].dirty = true; }
    bool isDirty(std::uint64_t frame) const
    {
        return frames_[frame].dirty;
    }

    void
    prefill(db::BlockId b, bool dirty = false)
    {
        if (map_.find(b) != map_.end())
            return;
        if (nextFree_ >= sentinel_)
            return;
        const std::uint32_t f = static_cast<std::uint32_t>(nextFree_++);
        Frame &fr = frames_[f];
        fr.block = b;
        fr.dirty = dirty;
        fr.ioPending = false;
        map_[b] = f;
        pushFront(f);
    }

    void
    markClean(db::BlockId b)
    {
        auto it = map_.find(b);
        if (it != map_.end())
            frames_[it->second].dirty = false;
    }

    Addr
    metaAddr(db::BlockId b) const
    {
        const std::uint64_t bucket =
            (b * 0x9e3779b97f4a7c15ULL) % numFrames();
        return mem::addrmap::frameMetaAddr(bucket);
    }

    std::uint64_t gets() const { return gets_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t dirtyEvictions() const { return dirtyEvictions_; }

  private:
    struct Frame
    {
        db::BlockId block = db::invalidBlock;
        bool dirty = false;
        bool ioPending = false;
        std::uint32_t prev = 0;
        std::uint32_t next = 0;
    };

    void
    unlink(std::uint32_t f)
    {
        Frame &fr = frames_[f];
        frames_[fr.prev].next = fr.next;
        frames_[fr.next].prev = fr.prev;
    }

    void
    pushFront(std::uint32_t f)
    {
        Frame &fr = frames_[f];
        fr.next = frames_[sentinel_].next;
        fr.prev = sentinel_;
        frames_[fr.next].prev = f;
        frames_[sentinel_].next = f;
    }

    std::vector<Frame> frames_;
    std::unordered_map<db::BlockId, std::uint32_t> map_;
    std::uint32_t sentinel_;
    std::uint64_t nextFree_ = 0;
    std::uint64_t gets_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t dirtyEvictions_ = 0;
};

/**
 * The lock manager as it was before the flat-table overhaul: a
 * std::unordered_map from lock key to a resource whose FIFO wait
 * queue is a per-resource std::deque — a node allocation per locked
 * row and a deque-segment allocation per first waiter. Kept verbatim
 * as the perf reference for the lock-manager speedup gate.
 */
class LegacyLockManager
{
  public:
    bool
    acquire(os::Process *p, db::LockKey key)
    {
        ++acquires_;
        Resource &res = table_[key];
        if (res.holder == nullptr) {
            res.holder = p;
            return true;
        }
        if (res.holder == p)
            return true;
        ++conflicts_;
        res.waiters.push_back(p);
        return false;
    }

    void
    release(os::Process *p, db::LockKey key, os::System &sys)
    {
        auto it = table_.find(key);
        odbsim_assert(it != table_.end(), "releasing unknown lock ", key);
        Resource &res = it->second;
        odbsim_assert(res.holder == p, "releasing foreign lock ", key);
        if (res.waiters.empty()) {
            table_.erase(it);
            return;
        }
        res.holder = res.waiters.front();
        res.waiters.pop_front();
        sys.wakeProcess(res.holder, 2500);
    }

    std::size_t heldCount() const { return table_.size(); }
    std::uint64_t acquires() const { return acquires_; }
    std::uint64_t conflicts() const { return conflicts_; }

  private:
    struct Resource
    {
        os::Process *holder = nullptr;
        std::deque<os::Process *> waiters;
    };

    std::unordered_map<db::LockKey, Resource> table_;
    std::uint64_t acquires_ = 0;
    std::uint64_t conflicts_ = 0;
};

/**
 * A process that exists only as a lock-owner identity for the lock
 * churn bench; it is never spawned, so next() is never called, and
 * Scheduler::wake on it just latches wakePending_.
 */
class ParkedProcess : public os::Process
{
  public:
    using os::Process::Process;

    os::NextAction
    next(os::System &) override
    {
        os::NextAction a;
        a.after = os::NextAction::After::Block;
        return a;
    }
};

/** Capture shape of a typical kernel event (disk completion). */
struct FakeRequest
{
    void *owner = nullptr;
    std::uint64_t bytes = 8192;
    std::uint64_t queuedAt = 0;
    std::uint64_t flags = 0;
};

/**
 * Schedule/fire churn with a rolling pending population, as the
 * simulator does in steady state. Returns events per second.
 */
template <typename Queue>
double
eventChurnRate(std::uint64_t events)
{
    Queue eq;
    Rng rng(5);
    std::uint64_t sink = 0;
    for (int i = 0; i < 256; ++i) {
        FakeRequest req{&eq, 8192, eq.curTick(), 0};
        eq.schedule(rng.below(1000), [req, &sink] {
            sink += req.bytes;
        });
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < events; ++i) {
        FakeRequest req{&eq, 8192, eq.curTick(), 0};
        eq.scheduleAfter(rng.below(1000) + 1, [req, &sink] {
            sink += req.bytes;
        });
        eq.step();
    }
    const double secs = secondsSince(t0);
    if (sink == 0) // defeat dead-code elimination
        std::fprintf(stderr, "unreachable\n");
    return static_cast<double>(events) / secs;
}

/** L2-shaped tag-store churn. Returns accesses per second. */
double
cacheAccessRate(std::uint64_t accesses)
{
    mem::SetAssocCache cache("bench",
                             mem::CacheGeometry{512 * KiB, 8, 64});
    Rng rng(1);
    // Footprint ~4x the cache so the scan exercises hits, misses and
    // dirty evictions together.
    const std::uint64_t footprint = 4 * 512 * KiB / 64;
    std::uint64_t hits = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < accesses; ++i) {
        const Addr addr = rng.below(footprint) * 64;
        hits += cache.access(addr, (i & 7) == 0).hit;
    }
    const double secs = secondsSince(t0);
    if (hits == 0)
        std::fprintf(stderr, "unreachable\n");
    return static_cast<double>(accesses) / secs;
}

/**
 * MemorySystem-shaped directory churn: fills, write hits, evictions,
 * snoops and DMA invalidations over a bounded line population, with
 * the deletion-heavy cases that exercise the flat table's
 * backward-shift path. The digest accumulates every observable output
 * (outcomes, masks, counters), both to defeat dead-code elimination
 * and so the caller can cross-check the two implementations ran
 * identically. Returns ops per second.
 */
template <typename Dir>
double
directoryChurnRate(std::uint64_t ops, std::uint64_t &digest)
{
    Dir dir(4);
    Rng rng(11);
    constexpr std::uint64_t footprint = 1u << 15; // 32 Ki lines
    std::uint64_t sum = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        const Addr line = rng.below(footprint) * 64;
        const unsigned cpu = static_cast<unsigned>(rng.below(4));
        switch (rng.below(16)) {
          case 0:
          case 1:
          case 2:
          case 3:
          case 4:
          case 5: {
            const auto out = dir.onFill(cpu, line, false);
            sum += out.remoteDirty + out.invalidateMask;
            break;
          }
          case 6:
          case 7:
          case 8: {
            const auto out = dir.onFill(cpu, line, true);
            sum += out.remoteDirty + out.invalidateMask;
            break;
          }
          case 9:
          case 10:
            sum += dir.onWriteHit(cpu, line);
            break;
          case 11:
          case 12:
          case 13:
            dir.onEviction(cpu, line);
            break;
          case 14: {
            const auto s = dir.snoop(line);
            sum += s.tracked + s.sharers;
            break;
          }
          default:
            dir.onDmaFill(line);
            break;
        }
    }
    const double secs = secondsSince(t0);
    digest = sum + dir.trackedLines() + dir.coherenceMisses() * 3 +
             dir.invalidationsSent() * 7;
    return static_cast<double>(ops) / secs;
}

/**
 * End-to-end batched access path: epochs of references through a
 * 4-CPU MemorySystem (L2/L3 tag stores, directory, bus accounting),
 * the shape CpuCore::execute drives per WorkItem. Returns accesses
 * per second.
 */
double
accessPathRate(std::uint64_t accesses)
{
    constexpr std::uint32_t sampleFactor = 16;
    mem::MemorySystem ms(4, mem::HierarchyConfig{}, mem::BusConfig{},
                         sampleFactor);
    Rng rng(23);
    // Sampled-line footprint ~4x the scaled L3 so the epoch stream
    // exercises L2 hits, L3 hits/misses and evictions together.
    constexpr std::uint64_t stride = 64 * sampleFactor;
    constexpr std::uint64_t lines = 4 * 1024;
    constexpr std::uint64_t epochLen = 64;
    std::uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t done = 0; done < accesses;) {
        const unsigned cpu = static_cast<unsigned>(rng.below(4));
        auto epoch =
            ms.beginEpoch(cpu, mem::ExecMode::User, Tick{0});
        for (std::uint64_t i = 0; i < epochLen; ++i) {
            const Addr addr = rng.below(lines) * stride;
            const auto kind = (i & 7) == 0 ? mem::AccessKind::DataWrite
                                           : mem::AccessKind::DataRead;
            sink += static_cast<std::uint64_t>(
                epoch.access(addr, kind).servicedBy);
        }
        done += epochLen;
    }
    const double secs = secondsSince(t0);
    if (sink == 0)
        std::fprintf(stderr, "unreachable\n");
    return static_cast<double>(accesses) / secs;
}

/**
 * Buffer-cache churn at the studied configuration's frame count
 * (358,400 frames, the 2.8 GB SGA): the cache is prefilled to full
 * with a steady-state dirty population, then a deterministic stream
 * of the replay hot path's operations — lookup with allocate +
 * fillComplete on miss, first-modification markDirty, DBWR markClean,
 * and the metaAddr descriptor fold — runs over a footprint twice the
 * frame count, so probes, evictions (erase + insert) and the divide
 * are all exercised together. The digest accumulates every observable
 * output so the caller can cross-check the two implementations ran
 * identically. Returns ops per second.
 */
template <typename Cache>
double
bufferChurnRate(std::uint64_t ops, std::uint64_t &digest)
{
    constexpr std::uint64_t frames = 358'400;
    Cache bc(frames);
    for (std::uint64_t b = 0; b < frames; ++b)
        bc.prefill(b, (b & 3) == 0);
    Rng rng(31);
    constexpr std::uint64_t footprint = 2 * frames;
    std::uint64_t sum = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        const db::BlockId b = rng.below(footprint);
        switch (rng.below(8)) {
          default: {
            // The replayTouch path: probe, allocate on miss, and the
            // per-touch descriptor reference.
            sum += bc.metaAddr(b);
            const db::BufferLookup hit = bc.lookup(b);
            if (hit.hit) {
                sum += hit.frame;
            } else {
                const db::BufferVictim v = bc.allocate(b);
                sum += v.frame + v.evictedBlock * 3 + v.wasDirty;
                bc.fillComplete(v.frame);
            }
            break;
          }
          case 5: {
            // First modification since the last write-back.
            const db::BufferLookup hit = bc.lookup(b);
            if (hit.hit && !bc.isDirty(hit.frame)) {
                bc.markDirty(hit.frame);
                ++sum;
            }
            break;
          }
          case 6:
            bc.markClean(b); // DBWR finished a write-back.
            break;
          case 7:
            sum += bc.metaAddr(b);
            break;
        }
    }
    const double secs = secondsSince(t0);
    digest = sum + bc.gets() + bc.misses() * 3 +
             bc.dirtyEvictions() * 7 + bc.residentBlocks();
    return static_cast<double>(ops) / secs;
}

/**
 * Lock-table churn with the contention shape replay produces: each
 * round, process A acquires a run of eight keys, B contends on the
 * first four and C on the first two (FIFO depth two), then the
 * releases cascade the hand-off + wake path before the resources
 * retire. One round is 28 lock operations covering every manager
 * path: grant, conflict enqueue, FIFO hand-off, waiter retire and
 * resource erase. The digest accumulates grant results, mid-round
 * heldCount samples and the final counters for the cross-check.
 * Returns lock operations per second.
 */
template <typename Locks>
double
lockChurnRate(std::uint64_t rounds, os::System &sys, os::Process *a,
              os::Process *b, os::Process *c, std::uint64_t &digest)
{
    Locks lm;
    Rng rng(47);
    std::uint64_t sum = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) {
        const db::LockKey base = rng.below(1u << 20) * 8;
        for (unsigned j = 0; j < 8; ++j)
            sum += lm.acquire(a, base + j);
        for (unsigned j = 0; j < 4; ++j)
            sum += lm.acquire(b, base + j);
        for (unsigned j = 0; j < 2; ++j)
            sum += lm.acquire(c, base + j);
        sum += lm.heldCount() * 5;
        for (unsigned j = 0; j < 8; ++j)
            lm.release(a, base + j, sys);
        for (unsigned j = 0; j < 4; ++j)
            lm.release(b, base + j, sys);
        for (unsigned j = 0; j < 2; ++j)
            lm.release(c, base + j, sys);
        sum += lm.heldCount();
    }
    const double secs = secondsSince(t0);
    digest = sum + lm.acquires() * 3 + lm.conflicts() * 7 +
             lm.heldCount();
    return static_cast<double>(rounds * 28) / secs;
}

/**
 * End-to-end plan-and-replay throughput: a miniature ODB deployment
 * (2 CPUs, 2 warehouses with reduced cardinalities, 8 clients) runs a
 * warm-up then a measured window under the discrete-event clock, and
 * the figure is committed transactions per *host* second — the speed
 * at which the simulator plans traces and replays them through the
 * buffer cache, lock manager and log. No legacy comparison (the rig
 * spans the whole engine); the figure exists so perf PRs see whole-
 * path regressions that the microbenches miss.
 */
double
planReplayRate(double &sim_tps)
{
    os::SystemConfig scfg;
    scfg.numCpus = 2;
    scfg.core.samplePeriod = 16;
    scfg.disks.dataDisks = 4;
    scfg.disks.logDisks = 1;
    scfg.seed = 99;
    os::System sys(scfg);

    db::DatabaseConfig dcfg;
    dcfg.schema.warehouses = 2;
    dcfg.schema.customersPerDistrict = 300;
    dcfg.schema.itemCount = 2000;
    dcfg.schema.stockPerWarehouse = 2000;
    dcfg.schema.initialOrdersPerDistrict = 100;
    dcfg.schema.ordersPerDistrictCap = 400;
    dcfg.schema.olPerDistrictCap = 4500;
    dcfg.schema.newOrderCap = 200;
    dcfg.schema.historyCap = 1800;
    dcfg.schema.undoBlocks = 256;
    dcfg.sgaFrames = 4096;
    db::Database db(sys, dcfg);

    odb::WorkloadConfig wcfg;
    wcfg.clients = 8;
    wcfg.seed = 7;
    odb::OdbWorkload workload(db, wcfg);

    db.start();
    workload.start();
    db.instantWarm();
    sys.runFor(50 * tickPerMs);
    workload.resetStats();
    db.resetStats();

    constexpr Tick window = 400 * tickPerMs;
    const auto t0 = std::chrono::steady_clock::now();
    sys.runFor(window);
    const double secs = secondsSince(t0);
    sim_tps = workload.tps(window);
    return static_cast<double>(workload.committed()) / secs;
}

/**
 * 100×-density event churn: the same rolling schedule/fire pattern as
 * eventChurnRate, but with ~25,600 pending events (100× the paper-
 * scale pending population) and a mixed delay distribution spanning
 * several wheel levels — short I/O completions, medium scheduler
 * quanta, and occasional long timeout-shaped horizons. The digest
 * hashes the fired event ids *in order*, so comparing the wheel
 * against the heap proves both kinds fire the exact same (when, seq)
 * sequence while one is being measured against the other. Returns
 * events per second.
 */
double
eventChurn100xRate(EventQueueKind kind, std::uint64_t events,
                   std::uint64_t &digest)
{
    EventQueue eq(kind);
    Rng rng(13);
    constexpr int kPending = 25'600;
    std::uint64_t order = 0;
    std::uint64_t next_id = 0;
    auto delay = [&rng]() -> Tick {
        switch (rng.below(16)) {
          case 0:
            return rng.below(2'000'000) + 1; // timeout horizon
          case 1:
          case 2:
            return rng.below(50'000) + 1; // scheduler quantum
          default:
            return rng.below(1'000) + 1; // I/O completion
        }
    };
    for (int i = 0; i < kPending; ++i) {
        const std::uint64_t id = next_id++;
        eq.schedule(eq.curTick() + delay(), [id, &order] {
            order = order * 1099511628211ULL + id;
        });
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < events; ++i) {
        const std::uint64_t id = next_id++;
        eq.scheduleAfter(delay(), [id, &order] {
            order = order * 1099511628211ULL + id;
        });
        eq.step();
    }
    const double secs = secondsSince(t0);
    digest = order;
    return static_cast<double>(events) / secs;
}

/** Host threads driving the sharded db structures concurrently. */
constexpr unsigned kShardThreads = 4;

/** Stripe mutex padded to two cache lines so adjacent stripes in the
 *  vector never false-share (an unpadded std::mutex is ~40 bytes, so
 *  a plain vector would pack two stripes into one line and the K=4
 *  "uncontended" case would still ping-pong the line). */
struct alignas(128) Stripe
{
    std::mutex m;
};

/** The 4-shard owner of @p key (the fixed partition both the K=1 and
 *  K=4 runs stream the same per-thread key sets through). */
unsigned
shardOf4(std::uint64_t key)
{
    return static_cast<unsigned>((key * 0xff51afd7ed558ccdULL) >> 56) &
           (kShardThreads - 1);
}

/**
 * Per-thread key pools for the sharded churn benches: thread t gets
 * @p per distinct keys that all live in shard t of a 4-shard manager.
 * Filtering a counter stream keeps the pools deterministic and
 * duplicate-free.
 */
std::vector<std::vector<std::uint64_t>>
shardKeyPools(std::size_t per)
{
    std::vector<std::vector<std::uint64_t>> pools(kShardThreads);
    std::size_t filled = 0;
    for (std::uint64_t k = 1; filled < kShardThreads; ++k) {
        auto &pool = pools[shardOf4(k)];
        if (pool.size() < per) {
            pool.push_back(k);
            if (pool.size() == per)
                ++filled;
        }
    }
    return pools;
}

/** Run @p worker(t) on kShardThreads host threads and join. */
template <typename Fn>
void
onShardThreads(bool concurrent, Fn worker)
{
    if (!concurrent) {
        for (unsigned t = 0; t < kShardThreads; ++t)
            worker(t);
        return;
    }
    std::vector<std::thread> threads;
    threads.reserve(kShardThreads);
    for (unsigned t = 0; t < kShardThreads; ++t)
        threads.emplace_back([&worker, t] { worker(t); });
    for (auto &th : threads)
        th.join();
}

/**
 * Concurrent sharded lock churn: four host threads each stream
 * acquire/release rounds over their own key pool, taking the stripe
 * mutex of the key's shard around every operation — the access
 * discipline a concurrent host would use. With K=1 every operation
 * serializes on one stripe (the unsharded engine's global
 * serialization point); with K=4 thread t's keys live in shard t, so
 * stripes never contend and shards never share state. Each key's
 * whole lifecycle stays on its owner thread, so the digest is
 * independent of both K and the thread interleaving — the K=1 and K=4
 * digests must match exactly. Returns lock operations per second.
 */
double
lockShardChurnRate(unsigned shards, std::uint64_t rounds_per_thread,
                   os::System &sys, std::uint64_t &digest)
{
    db::LockManager lm(shards);
    static const auto pools = shardKeyPools(4096);
    ParkedProcess p0("shard-bench-0"), p1("shard-bench-1"),
        p2("shard-bench-2"), p3("shard-bench-3");
    const std::array<os::Process *, kShardThreads> procs{&p0, &p1, &p2,
                                                         &p3};
    std::vector<Stripe> stripes(shards);
    std::array<std::uint64_t, kShardThreads> sums{};

    const auto t0 = std::chrono::steady_clock::now();
    onShardThreads(true, [&](unsigned t) {
        const auto &pool = pools[t];
        os::Process *self = procs[t];
        std::uint64_t sum = 0;
        std::size_t idx = 0;
        for (std::uint64_t r = 0; r < rounds_per_thread; ++r) {
            for (unsigned j = 0; j < 8; ++j) {
                const db::LockKey key = pool[idx + j];
                std::lock_guard<std::mutex> g(stripes[lm.shardOf(key)].m);
                sum += lm.acquire(self, key) + (key & 0xff);
            }
            for (unsigned j = 0; j < 8; ++j) {
                const db::LockKey key = pool[idx + j];
                std::lock_guard<std::mutex> g(stripes[lm.shardOf(key)].m);
                lm.release(self, key, sys);
            }
            idx = (idx + 8) % pool.size();
        }
        sums[t] = sum;
    });
    const double secs = secondsSince(t0);

    digest = lm.acquires() * 3 + lm.conflicts() * 7 + lm.heldCount();
    for (unsigned t = 0; t < kShardThreads; ++t)
        digest += sums[t];
    return static_cast<double>(rounds_per_thread * kShardThreads * 16) /
           secs;
}

/**
 * Concurrent sharded buffer churn: four host threads each stream the
 * replayTouch-shaped mix (probe, allocate + fillComplete on miss,
 * markDirty, markClean, metaAddr) over their own block pool under the
 * same stripe-mutex discipline as the lock bench. Thread t's blocks
 * live in shard t of a 4-shard cache, so at K=4 stripes never contend
 * and each shard's LRU evolves exactly as it would single-threaded:
 * disjoint shards commute, which the caller cross-checks by comparing
 * the concurrent digest against a serial replay of the same streams.
 * (At K=1 the four streams interleave in one LRU, so its digest is
 * timing-dependent and only the rate is meaningful.) Returns buffer
 * operations per second.
 */
double
bufferShardChurnRate(unsigned shards, std::uint64_t ops_per_thread,
                     bool concurrent, std::uint64_t &digest)
{
    constexpr std::uint64_t kFrames = 65'536;
    db::BufferCache bc(kFrames, shards);
    // Fill every shard's frame share so the timed section starts at
    // steady-state residency (prefill no-ops once a shard is full).
    for (std::uint64_t b = 0; b < 4 * kFrames; ++b)
        bc.prefill(b, (b & 3) == 0);
    static const auto pools = shardKeyPools(65'536);
    std::vector<Stripe> stripes(shards);
    std::array<std::uint64_t, kShardThreads> sums{};

    const auto t0 = std::chrono::steady_clock::now();
    onShardThreads(concurrent, [&](unsigned t) {
        const auto &pool = pools[t];
        Rng rng(101 + t);
        std::uint64_t sum = 0;
        for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
            const db::BlockId b = pool[rng.below(pool.size())];
            std::lock_guard<std::mutex> g(stripes[bc.shardOf(b)].m);
            switch (rng.below(8)) {
              default: {
                sum += bc.metaAddr(b);
                const db::BufferLookup hit = bc.lookup(b);
                if (hit.hit) {
                    sum += hit.frame;
                } else {
                    const db::BufferVictim v = bc.allocate(b);
                    sum += v.frame + v.evictedBlock * 3 + v.wasDirty;
                    bc.fillComplete(v.frame);
                }
                break;
              }
              case 5: {
                const db::BufferLookup hit = bc.lookup(b);
                if (hit.hit && !bc.isDirty(hit.frame)) {
                    bc.markDirty(hit.frame);
                    ++sum;
                }
                break;
              }
              case 6:
                bc.markClean(b);
                break;
              case 7:
                sum += bc.metaAddr(b);
                break;
            }
        }
        sums[t] = sum;
    });
    const double secs = secondsSince(t0);

    digest = bc.gets() + bc.misses() * 3 + bc.dirtyEvictions() * 7 +
             bc.residentBlocks();
    for (unsigned t = 0; t < kShardThreads; ++t)
        digest += sums[t];
    return static_cast<double>(ops_per_thread * kShardThreads) / secs;
}

/** Best of @p reps runs, to shed scheduler noise. */
double
best(int reps, double (*fn)(std::uint64_t), std::uint64_t n)
{
    double b = 0.0;
    for (int i = 0; i < reps; ++i)
        b = std::max(b, fn(n));
    return b;
}

/** best() for the directory churn, which also yields a digest. */
template <typename Dir>
double
bestDirectory(int reps, std::uint64_t ops, std::uint64_t &digest)
{
    double b = 0.0;
    for (int i = 0; i < reps; ++i)
        b = std::max(b, directoryChurnRate<Dir>(ops, digest));
    return b;
}

/** best() over an arbitrary rate callable (the db benches). */
template <typename Fn>
double
bestOf(int reps, Fn fn)
{
    double b = 0.0;
    for (int i = 0; i < reps; ++i)
        b = std::max(b, fn());
    return b;
}

/**
 * The thread pool as it was before the work-stealing rebuild: one
 * central std::queue guarded by a mutex and condition variable, and a
 * shared_ptr<packaged_task> heap allocation plus a future per
 * submitted task; parallelFor queued one task per index through that
 * central lock. Kept verbatim as the perf reference for pool_steal's
 * speedup_vs_legacy.
 */
class LegacyMutexPool
{
  public:
    explicit LegacyMutexPool(unsigned threads)
    {
        workers_.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~LegacyMutexPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using Ret = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<Ret()>>(
            std::forward<F>(fn));
        std::future<Ret> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            tasks_.emplace([task] { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

    template <typename Fn>
    void
    parallelFor(std::size_t n, Fn &&fn)
    {
        std::vector<std::future<void>> pending;
        pending.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            pending.push_back(submit([&fn, i] { fn(i); }));
        for (auto &f : pending)
            f.get();
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock,
                         [this] { return stop_ || !tasks_.empty(); });
                if (tasks_.empty())
                    return;
                task = std::move(tasks_.front());
                tasks_.pop();
            }
            task();
        }
    }

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/** Tasks in the pool benches' imbalanced mix. */
constexpr std::uint64_t kPoolTasks = 60'000;

/** Pure per-index payload: every 64th task is ~67x heavier than the
 *  rest — the skewed mix a dynamic scheduler has to rebalance. */
std::uint64_t
poolTaskWork(std::size_t i)
{
    std::uint64_t x =
        static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL + 1;
    const unsigned iters = (i % 64 == 0) ? 20'000 : 300;
    for (unsigned k = 0; k < iters; ++k) {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
    }
    return x;
}

/** Index-order fold of the per-task outputs: identical across pools
 *  iff every index computed the same value (completion order never
 *  enters). */
std::uint64_t
poolDigest(const std::vector<std::uint64_t> &sums)
{
    std::uint64_t d = 0xcbf29ce484222325ULL;
    for (std::uint64_t v : sums)
        d = (d ^ v) * 0x100000001b3ULL;
    return d;
}

/**
 * Tasks/sec for the imbalanced mix on the work-stealing pool: a root
 * task fans the indices out with a nested parallelFor, so claims come
 * from the worker-local deque and idle workers steal the heavy tail —
 * the pool-v2 fast path (no per-task allocation, no central lock).
 */
double
poolStealRate(std::uint64_t &digest)
{
    ThreadPool pool(kShardThreads);
    std::vector<std::uint64_t> sums(kPoolTasks);
    const auto t0 = std::chrono::steady_clock::now();
    pool.submit([&pool, &sums] {
            pool.parallelFor(kPoolTasks, [&sums](std::size_t i) {
                sums[i] = poolTaskWork(i);
            });
        })
        .get();
    const double secs = secondsSince(t0);
    digest = poolDigest(sums);
    return static_cast<double>(kPoolTasks) / secs;
}

/** The same mix on the legacy pool: one mutex-queued task (and one
 *  future round-trip) per index. */
double
poolLegacyRate(std::uint64_t &digest)
{
    LegacyMutexPool pool(kShardThreads);
    std::vector<std::uint64_t> sums(kPoolTasks);
    const auto t0 = std::chrono::steady_clock::now();
    pool.parallelFor(kPoolTasks, [&sums](std::size_t i) {
        sums[i] = poolTaskWork(i);
    });
    const double secs = secondsSince(t0);
    digest = poolDigest(sums);
    return static_cast<double>(kPoolTasks) / secs;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    const char *out_path = "BENCH_hotpath.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
    }

    // The legacy-vs-new comparisons take the best of five runs each:
    // the ratio of two best-of maxima is far less sensitive to host
    // interference than any single measurement, which matters on the
    // small shared runners that execute this gate.
    std::fprintf(stderr, "[hotpath] event-scheduling churn...\n");
    constexpr std::uint64_t kEvents = 3'000'000;
    const double ev_rate = best(5, eventChurnRate<EventQueue>, kEvents);
    const double legacy_rate =
        best(5, eventChurnRate<LegacyEventQueue>, kEvents);
    const double speedup = ev_rate / legacy_rate;
    std::fprintf(stderr,
                 "[hotpath]   EventQueue       %.2fM events/s\n"
                 "[hotpath]   LegacyEventQueue %.2fM events/s\n"
                 "[hotpath]   speedup_vs_legacy %.2fx\n",
                 ev_rate / 1e6, legacy_rate / 1e6, speedup);

    std::fprintf(stderr, "[hotpath] tag-store churn...\n");
    constexpr std::uint64_t kAccesses = 20'000'000;
    const double cache_rate = best(3, cacheAccessRate, kAccesses);
    std::fprintf(stderr, "[hotpath]   SetAssocCache    %.2fM acc/s\n",
                 cache_rate / 1e6);

    std::fprintf(stderr, "[hotpath] coherence-directory churn...\n");
    constexpr std::uint64_t kDirOps = 20'000'000;
    std::uint64_t dir_digest = 0, legacy_dir_digest = 0;
    const double dir_rate = bestDirectory<mem::CoherenceDirectory>(
        5, kDirOps, dir_digest);
    const double legacy_dir_rate =
        bestDirectory<LegacyCoherenceDirectory>(5, kDirOps,
                                                legacy_dir_digest);
    const double dir_speedup = dir_rate / legacy_dir_rate;
    std::fprintf(stderr,
                 "[hotpath]   CoherenceDirectory       %.2fM ops/s\n"
                 "[hotpath]   LegacyCoherenceDirectory %.2fM ops/s\n"
                 "[hotpath]   speedup_vs_legacy %.2fx\n",
                 dir_rate / 1e6, legacy_dir_rate / 1e6, dir_speedup);
    if (dir_digest != legacy_dir_digest) {
        std::fprintf(stderr,
                     "[hotpath] FATAL: directory digests diverge "
                     "(flat %llu vs legacy %llu) — the flat table is "
                     "not behaviorally identical\n",
                     static_cast<unsigned long long>(dir_digest),
                     static_cast<unsigned long long>(legacy_dir_digest));
        return 1;
    }

    std::fprintf(stderr, "[hotpath] batched memory-access path...\n");
    constexpr std::uint64_t kPathAccesses = 10'000'000;
    const double path_rate = best(3, accessPathRate, kPathAccesses);
    std::fprintf(stderr, "[hotpath]   MemorySystem     %.2fM acc/s\n",
                 path_rate / 1e6);

    std::fprintf(stderr, "[hotpath] buffer-cache churn...\n");
    constexpr std::uint64_t kBufOps = 10'000'000;
    std::uint64_t buf_digest = 0, legacy_buf_digest = 0;
    const double buf_rate = bestOf(5, [&] {
        return bufferChurnRate<db::BufferCache>(kBufOps, buf_digest);
    });
    const double legacy_buf_rate = bestOf(5, [&] {
        return bufferChurnRate<LegacyBufferCache>(kBufOps,
                                                  legacy_buf_digest);
    });
    const double buf_speedup = buf_rate / legacy_buf_rate;
    std::fprintf(stderr,
                 "[hotpath]   BufferCache       %.2fM ops/s\n"
                 "[hotpath]   LegacyBufferCache %.2fM ops/s\n"
                 "[hotpath]   speedup_vs_legacy %.2fx\n",
                 buf_rate / 1e6, legacy_buf_rate / 1e6, buf_speedup);
    if (buf_digest != legacy_buf_digest) {
        std::fprintf(stderr,
                     "[hotpath] FATAL: buffer-cache digests diverge "
                     "(flat %llu vs legacy %llu) — the flat index is "
                     "not behaviorally identical\n",
                     static_cast<unsigned long long>(buf_digest),
                     static_cast<unsigned long long>(legacy_buf_digest));
        return 1;
    }

    std::fprintf(stderr, "[hotpath] lock-manager churn...\n");
    constexpr std::uint64_t kLockRounds = 500'000;
    std::uint64_t lock_digest = 0, legacy_lock_digest = 0;
    double lock_rate = 0.0, legacy_lock_rate = 0.0;
    {
        // One small machine shared by both runs: the lock manager
        // only needs it for Scheduler::wake on hand-off, and the
        // parked owner identities are never spawned or run.
        os::SystemConfig scfg;
        scfg.numCpus = 1;
        os::System sys(scfg);
        ParkedProcess a("lock-bench-a"), b("lock-bench-b"),
            c("lock-bench-c");
        lock_rate = bestOf(5, [&] {
            return lockChurnRate<db::LockManager>(kLockRounds, sys, &a,
                                                  &b, &c, lock_digest);
        });
        legacy_lock_rate = bestOf(5, [&] {
            return lockChurnRate<LegacyLockManager>(
                kLockRounds, sys, &a, &b, &c, legacy_lock_digest);
        });
    }
    const double lock_speedup = lock_rate / legacy_lock_rate;
    std::fprintf(stderr,
                 "[hotpath]   LockManager       %.2fM ops/s\n"
                 "[hotpath]   LegacyLockManager %.2fM ops/s\n"
                 "[hotpath]   speedup_vs_legacy %.2fx\n",
                 lock_rate / 1e6, legacy_lock_rate / 1e6, lock_speedup);
    if (lock_digest != legacy_lock_digest) {
        std::fprintf(stderr,
                     "[hotpath] FATAL: lock-manager digests diverge "
                     "(flat %llu vs legacy %llu) — the flat table is "
                     "not behaviorally identical\n",
                     static_cast<unsigned long long>(lock_digest),
                     static_cast<unsigned long long>(legacy_lock_digest));
        return 1;
    }

    std::fprintf(stderr,
                 "[hotpath] event churn at 100x density "
                 "(wheel vs heap)...\n");
    constexpr std::uint64_t kEvents100x = 3'000'000;
    std::uint64_t wheel_digest = 0, heap_digest = 0;
    const double wheel_rate = bestOf(5, [&] {
        return eventChurn100xRate(EventQueueKind::wheel, kEvents100x,
                                  wheel_digest);
    });
    const double heap_rate = bestOf(5, [&] {
        return eventChurn100xRate(EventQueueKind::heap, kEvents100x,
                                  heap_digest);
    });
    const double wheel_speedup = wheel_rate / heap_rate;
    std::fprintf(stderr,
                 "[hotpath]   wheel  %.2fM events/s\n"
                 "[hotpath]   heap   %.2fM events/s\n"
                 "[hotpath]   speedup_wheel_vs_heap %.2fx\n",
                 wheel_rate / 1e6, heap_rate / 1e6, wheel_speedup);
    if (wheel_digest != heap_digest) {
        std::fprintf(stderr,
                     "[hotpath] FATAL: wheel/heap fire-order digests "
                     "diverge (wheel %llu vs heap %llu) — the wheel is "
                     "not firing the heap's (when, seq) order\n",
                     static_cast<unsigned long long>(wheel_digest),
                     static_cast<unsigned long long>(heap_digest));
        return 1;
    }

    // The K=1-vs-K=4 speedup gates only make sense when the four bench
    // threads can actually run in parallel: on fewer cores they
    // timeslice, the K=1 stripe is never truly contended, and the
    // measured ratio is ~1.0 regardless of how well sharding works.
    // The digest cross-checks below still run (and still gate) — only
    // the throughput ratio is hardware-dependent.
    const unsigned host_cores = std::thread::hardware_concurrency();
    const bool shard_gate = host_cores >= kShardThreads;
    if (!shard_gate) {
        std::fprintf(stderr,
                     "[hotpath] note: %u host core(s) < %u bench "
                     "threads — sharded speedup gates disabled\n",
                     host_cores, kShardThreads);
    }

    std::fprintf(stderr,
                 "[hotpath] sharded lock churn (4 threads, K=1 vs "
                 "K=4)...\n");
    constexpr std::uint64_t kShardLockRounds = 150'000;
    std::uint64_t lock1_digest = 0, lock4_digest = 0;
    double lock1_rate = 0.0, lock4_rate = 0.0;
    {
        os::SystemConfig scfg;
        scfg.numCpus = 1;
        os::System sys(scfg);
        lock1_rate = bestOf(3, [&] {
            return lockShardChurnRate(1, kShardLockRounds, sys,
                                      lock1_digest);
        });
        lock4_rate = bestOf(3, [&] {
            return lockShardChurnRate(4, kShardLockRounds, sys,
                                      lock4_digest);
        });
    }
    const double lock_shard_speedup = lock4_rate / lock1_rate;
    std::fprintf(stderr,
                 "[hotpath]   K=1  %.2fM ops/s\n"
                 "[hotpath]   K=4  %.2fM ops/s\n"
                 "[hotpath]   speedup_k4_vs_k1 %.2fx\n",
                 lock1_rate / 1e6, lock4_rate / 1e6, lock_shard_speedup);
    if (lock1_digest != lock4_digest) {
        std::fprintf(stderr,
                     "[hotpath] FATAL: sharded lock digests diverge "
                     "(K=1 %llu vs K=4 %llu) — sharding changed "
                     "observable behaviour\n",
                     static_cast<unsigned long long>(lock1_digest),
                     static_cast<unsigned long long>(lock4_digest));
        return 1;
    }

    std::fprintf(stderr,
                 "[hotpath] sharded buffer churn (4 threads, K=1 vs "
                 "K=4)...\n");
    constexpr std::uint64_t kShardBufOps = 1'500'000;
    std::uint64_t buf1_digest = 0, buf4_digest = 0, buf4_serial = 0;
    const double buf1_rate = bestOf(3, [&] {
        return bufferShardChurnRate(1, kShardBufOps, true, buf1_digest);
    });
    const double buf4_rate = bestOf(3, [&] {
        return bufferShardChurnRate(4, kShardBufOps, true, buf4_digest);
    });
    bufferShardChurnRate(4, kShardBufOps, false, buf4_serial);
    const double buf_shard_speedup = buf4_rate / buf1_rate;
    std::fprintf(stderr,
                 "[hotpath]   K=1  %.2fM ops/s\n"
                 "[hotpath]   K=4  %.2fM ops/s\n"
                 "[hotpath]   speedup_k4_vs_k1 %.2fx\n",
                 buf1_rate / 1e6, buf4_rate / 1e6, buf_shard_speedup);
    if (buf4_digest != buf4_serial) {
        std::fprintf(stderr,
                     "[hotpath] FATAL: sharded buffer digests diverge "
                     "(threaded %llu vs serial %llu) — K=4 shards are "
                     "not commuting\n",
                     static_cast<unsigned long long>(buf4_digest),
                     static_cast<unsigned long long>(buf4_serial));
        return 1;
    }

    std::fprintf(stderr,
                 "[hotpath] pool churn (imbalanced mix, work-stealing "
                 "vs legacy mutex queue)...\n");
    std::uint64_t pool_ws_digest = 0, pool_legacy_digest = 0;
    const double pool_ws_rate =
        bestOf(3, [&] { return poolStealRate(pool_ws_digest); });
    const double pool_legacy_rate =
        bestOf(3, [&] { return poolLegacyRate(pool_legacy_digest); });
    const double pool_speedup = pool_ws_rate / pool_legacy_rate;
    std::fprintf(stderr,
                 "[hotpath]   ThreadPool (steal) %.2fM tasks/s\n"
                 "[hotpath]   LegacyMutexPool    %.2fM tasks/s\n"
                 "[hotpath]   speedup_vs_legacy %.2fx\n",
                 pool_ws_rate / 1e6, pool_legacy_rate / 1e6,
                 pool_speedup);
    if (pool_ws_digest != pool_legacy_digest) {
        std::fprintf(stderr,
                     "[hotpath] FATAL: pool digests diverge "
                     "(steal %llu vs legacy %llu) — the pools did not "
                     "run the same task mix\n",
                     static_cast<unsigned long long>(pool_ws_digest),
                     static_cast<unsigned long long>(pool_legacy_digest));
        return 1;
    }

    std::fprintf(stderr, "[hotpath] plan-and-replay throughput...\n");
    double sim_tps = 0.0;
    const double replay_rate =
        bestOf(3, [&] { return planReplayRate(sim_tps); });
    std::fprintf(stderr,
                 "[hotpath]   plan+replay       %.0f txn/s host "
                 "(sim tps %.0f)\n",
                 replay_rate, sim_tps);

    std::fprintf(stderr,
                 "[hotpath] host-parallel shard replay (4 groups, "
                 "1 vs %u threads)...\n",
                 kShardThreads);
    odb::HostReplayConfig hrc;
    hrc.warehouses = 64;
    hrc.groups = 4;
    hrc.txnsPerGroup = 6'000;
    hrc.dbShards = 4;
    double hr_serial_secs = 0.0, hr_par_secs = 0.0;
    std::uint64_t hr_actions = 0, hr_serial_digest = 0,
                  hr_par_digest = 0;
    for (int rep = 0; rep < 3; ++rep) {
        hrc.threads = 1;
        const odb::HostReplayResult s = odb::HostReplay::run(hrc);
        hrc.threads = kShardThreads;
        const odb::HostReplayResult p = odb::HostReplay::run(hrc);
        hr_serial_secs = rep == 0 ? s.replaySeconds
                                  : std::min(hr_serial_secs,
                                             s.replaySeconds);
        hr_par_secs = rep == 0
                          ? p.replaySeconds
                          : std::min(hr_par_secs, p.replaySeconds);
        hr_serial_digest = s.digest;
        hr_par_digest = p.digest;
        hr_actions = s.cross.actions;
        for (const odb::HostReplayGroupStats &g : s.groups)
            hr_actions += g.actions;
        if (hr_serial_digest != hr_par_digest) {
            std::fprintf(
                stderr,
                "[hotpath] FATAL: host replay digests diverge "
                "(serial %llu vs %u-thread %llu) — the replay is not "
                "thread-count invariant\n",
                static_cast<unsigned long long>(hr_serial_digest),
                kShardThreads,
                static_cast<unsigned long long>(hr_par_digest));
            return 1;
        }
    }
    const double hr_speedup = hr_serial_secs / hr_par_secs;
    std::fprintf(stderr,
                 "[hotpath]   serial    %.2fM actions/s\n"
                 "[hotpath]   %u-thread  %.2fM actions/s\n"
                 "[hotpath]   speedup_vs_serial %.2fx "
                 "(digests identical)\n",
                 static_cast<double>(hr_actions) / hr_serial_secs / 1e6,
                 kShardThreads,
                 static_cast<double>(hr_actions) / hr_par_secs / 1e6,
                 hr_speedup);

    std::fprintf(stderr,
                 "[hotpath] reference grid point (W=10, P=4)...\n");
    core::OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 4;
    const core::RunResult r = core::ExperimentRunner::run(cfg);
    std::fprintf(stderr,
                 "[hotpath]   wall %.3fs  %llu events  %.2fM ev/s  "
                 "(tps %.0f)\n",
                 r.wallSeconds,
                 static_cast<unsigned long long>(r.eventsFired),
                 r.eventsPerSec() / 1e6, r.tps);

    // The 100x-scale grid point: two orders of magnitude beyond the
    // paper's largest measured configuration (W=4096 vs the paper's
    // figure ceiling near 800/10000-client testbeds), with an
    // explicit high client density. The warm-up windows are dialed
    // down (warmupPerWarehouseMs) so the point stays minutes, not
    // hours — this figure tracks the *simulator's* event throughput
    // at scale, not the modeled machine's steady state.
    // ODBSIM_HOTPATH_100X=0 skips it (quick local runs).
    const char *env_100x = std::getenv("ODBSIM_HOTPATH_100X");
    const bool run_100x =
        !(env_100x && std::strcmp(env_100x, "0") == 0);
    core::RunResult big;
    if (run_100x) {
        std::fprintf(stderr, "[hotpath] 100x-scale grid point "
                             "(W=4096, P=4, C=1024)...\n");
        core::OltpConfiguration bigcfg;
        bigcfg.warehouses = 4096;
        bigcfg.processors = 4;
        bigcfg.clients = 1024;
        core::RunKnobs bigknobs;
        bigknobs.warmup = ticksFromMs(100.0);
        bigknobs.measure = ticksFromMs(400.0);
        bigknobs.warmupPerWarehouseMs = 0.1;
        big = core::ExperimentRunner::run(bigcfg, bigknobs);
        std::fprintf(stderr,
                     "[hotpath]   wall %.3fs  %llu events  %.2fM ev/s  "
                     "(tps %.0f)\n",
                     big.wallSeconds,
                     static_cast<unsigned long long>(big.eventsFired),
                     big.eventsPerSec() / 1e6, big.tps);
    } else {
        std::fprintf(stderr, "[hotpath] 100x-scale grid point skipped "
                             "(ODBSIM_HOTPATH_100X=0)\n");
    }

    // Intra-point parallelism at the paper's largest grid point
    // (W=800 is the figure ceiling): the same point measured with
    // repeats=3 serially and with the replicas fanned out as pool
    // tasks. The per-replica results must be bitwise identical — only
    // the wall clock may change. Shares the ODBSIM_HOTPATH_100X
    // switch with the 100x point (both are the slow at-scale
    // sections).
    constexpr unsigned kIntraRepeats = 3;
    constexpr unsigned kIntraW = 800, kIntraP = 4;
    double intra_serial_wall = 0.0, intra_par_wall = 0.0;
    double intra_speedup = 0.0;
    if (run_100x) {
        std::fprintf(stderr,
                     "[hotpath] intra-point parallel repeats (W=%u, "
                     "P=%u, repeats=%u, serial vs %u threads)...\n",
                     kIntraW, kIntraP, kIntraRepeats, kShardThreads);
        core::OltpConfiguration icfg;
        icfg.warehouses = kIntraW;
        icfg.processors = kIntraP;
        core::RunKnobs iknobs;
        iknobs.warmup = ticksFromMs(50.0);
        iknobs.measure = ticksFromMs(150.0);
        iknobs.warmupPerWarehouseMs = 0.1;
        auto t0 = std::chrono::steady_clock::now();
        const core::RepeatedResult serial =
            core::repeatRun(icfg, iknobs, kIntraRepeats, 1);
        intra_serial_wall = secondsSince(t0);
        t0 = std::chrono::steady_clock::now();
        const core::RepeatedResult par =
            core::repeatRun(icfg, iknobs, kIntraRepeats, kShardThreads);
        intra_par_wall = secondsSince(t0);
        intra_speedup = intra_serial_wall / intra_par_wall;
        for (unsigned i = 0; i < kIntraRepeats; ++i) {
            const core::RunResult &a = serial.runs[i];
            const core::RunResult &b = par.runs[i];
            if (a.tps != b.tps ||
                a.txnsCommitted != b.txnsCommitted ||
                a.eventsFired != b.eventsFired) {
                std::fprintf(
                    stderr,
                    "[hotpath] FATAL: parallel repeat replica %u "
                    "diverges from serial (tps %.17g vs %.17g) — "
                    "nested repeats are not bit-identical\n",
                    i, a.tps, b.tps);
                return 1;
            }
        }
        std::fprintf(stderr,
                     "[hotpath]   serial    %.3fs\n"
                     "[hotpath]   %u-thread  %.3fs\n"
                     "[hotpath]   speedup_vs_serial %.2fx "
                     "(replicas bitwise identical)\n",
                     intra_serial_wall, kShardThreads, intra_par_wall,
                     intra_speedup);
    } else {
        std::fprintf(stderr,
                     "[hotpath] intra-point parallel repeats skipped "
                     "(ODBSIM_HOTPATH_100X=0)\n");
    }

    // Conservative parallel DES: one S-island shared-nothing
    // deployment measured on the shared-queue oracle, then on the
    // parallel engine at 1 and S workers. All three digests must
    // agree (fatal — the engine's whole contract is bit-exactness);
    // the 1-vs-S wall-clock gate only arms when the host actually has
    // S cores to run the islands on. The 100x switch picks between
    // the full-size deployment and a quick small one.
    constexpr unsigned kDesIslands = 4;
    const bool des_gate = host_cores >= kDesIslands;
    std::fprintf(stderr,
                 "[hotpath] parallel DES (S=%u islands, oracle vs "
                 "1 vs %u workers)...\n",
                 kDesIslands, kDesIslands);
    core::DesGridConfig dcfg;
    dcfg.islands = kDesIslands;
    if (run_100x) {
        dcfg.warehousesPerIsland = 10;
        dcfg.cpusPerIsland = 4;
        dcfg.warmup = ticksFromMs(50.0);
        dcfg.measure = ticksFromMs(250.0);
    } else {
        dcfg.warehousesPerIsland = 2;
        dcfg.cpusPerIsland = 2;
        dcfg.clientsPerIsland = 6;
        dcfg.warmup = ticksFromMs(20.0);
        dcfg.measure = ticksFromMs(60.0);
    }
    dcfg.oracle = true;
    const core::DesGridResult des_oracle = core::runDesGridPoint(dcfg);
    dcfg.oracle = false;
    double des1_wall = 0.0, desS_wall = 0.0;
    std::uint64_t des1_digest = 0, desS_digest = 0;
    for (int rep = 0; rep < 2; ++rep) {
        dcfg.desThreads = 1;
        const core::DesGridResult a = core::runDesGridPoint(dcfg);
        dcfg.desThreads = kDesIslands;
        const core::DesGridResult b = core::runDesGridPoint(dcfg);
        des1_wall = rep == 0 ? a.wallSeconds
                             : std::min(des1_wall, a.wallSeconds);
        desS_wall = rep == 0 ? b.wallSeconds
                             : std::min(desS_wall, b.wallSeconds);
        des1_digest = a.digest;
        desS_digest = b.digest;
    }
    if (des1_digest != des_oracle.digest ||
        desS_digest != des_oracle.digest) {
        std::fprintf(
            stderr,
            "[hotpath] FATAL: parallel DES digests diverge "
            "(oracle %llu, 1-worker %llu, %u-worker %llu) — the "
            "engine is not bit-exact against the serial oracle\n",
            static_cast<unsigned long long>(des_oracle.digest),
            static_cast<unsigned long long>(des1_digest), kDesIslands,
            static_cast<unsigned long long>(desS_digest));
        return 1;
    }
    const double des_speedup = des1_wall / desS_wall;
    std::fprintf(stderr,
                 "[hotpath]   1-worker  %.3fs\n"
                 "[hotpath]   %u-worker  %.3fs\n"
                 "[hotpath]   speedup_vs_serial %.2fx "
                 "(%llu epochs, %llu cross events, digests "
                 "identical)\n",
                 des1_wall, kDesIslands, desS_wall, des_speedup,
                 static_cast<unsigned long long>(
                     des_oracle.epochBarriers),
                 static_cast<unsigned long long>(
                     des_oracle.crossDelivered));

    std::FILE *f = std::fopen(out_path, "w");
    if (!f) {
        std::fprintf(stderr, "[hotpath] cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"hotpath\",\n"
        "  \"event_queue\": {\n"
        "    \"events_per_sec\": %.0f,\n"
        "    \"legacy_events_per_sec\": %.0f,\n"
        "    \"speedup_vs_legacy\": %.3f\n"
        "  },\n"
        "  \"tag_store\": {\n"
        "    \"accesses_per_sec\": %.0f\n"
        "  },\n"
        "  \"directory\": {\n"
        "    \"ops_per_sec\": %.0f,\n"
        "    \"legacy_ops_per_sec\": %.0f,\n"
        "    \"speedup_vs_legacy\": %.3f,\n"
        "    \"digest_cross_check\": \"passed\"\n"
        "  },\n"
        "  \"access_path\": {\n"
        "    \"accesses_per_sec\": %.0f\n"
        "  },\n"
        "  \"buffer_cache\": {\n"
        "    \"ops_per_sec\": %.0f,\n"
        "    \"legacy_ops_per_sec\": %.0f,\n"
        "    \"speedup_vs_legacy\": %.3f,\n"
        "    \"digest_cross_check\": \"passed\"\n"
        "  },\n"
        "  \"lock_manager\": {\n"
        "    \"ops_per_sec\": %.0f,\n"
        "    \"legacy_ops_per_sec\": %.0f,\n"
        "    \"speedup_vs_legacy\": %.3f,\n"
        "    \"digest_cross_check\": \"passed\"\n"
        "  },\n"
        "  \"event_queue_100x\": {\n"
        "    \"pending_events\": 25600,\n"
        "    \"wheel_events_per_sec\": %.0f,\n"
        "    \"heap_events_per_sec\": %.0f,\n"
        "    \"speedup_wheel_vs_heap\": %.3f,\n"
        "    \"digest_cross_check\": \"passed\"\n"
        "  },\n"
        "  \"lock_shards\": {\n"
        "    \"threads\": %u,\n"
        "    \"host_cores\": %u,\n"
        "    \"speedup_gate_active\": %s,\n"
        "    \"k1_ops_per_sec\": %.0f,\n"
        "    \"k4_ops_per_sec\": %.0f,\n"
        "    \"speedup_k4_vs_k1\": %.3f,\n"
        "    \"digest_cross_check\": \"passed\"\n"
        "  },\n"
        "  \"buffer_shards\": {\n"
        "    \"threads\": %u,\n"
        "    \"host_cores\": %u,\n"
        "    \"speedup_gate_active\": %s,\n"
        "    \"k1_ops_per_sec\": %.0f,\n"
        "    \"k4_ops_per_sec\": %.0f,\n"
        "    \"speedup_k4_vs_k1\": %.3f,\n"
        "    \"digest_cross_check\": \"passed\"\n"
        "  },\n"
        "  \"pool_steal\": {\n"
        "    \"threads\": %u,\n"
        "    \"tasks\": %llu,\n"
        "    \"host_cores\": %u,\n"
        "    \"speedup_gate_active\": %s,\n"
        "    \"ws_tasks_per_sec\": %.0f,\n"
        "    \"legacy_tasks_per_sec\": %.0f,\n"
        "    \"speedup_vs_legacy\": %.3f,\n"
        "    \"digest_cross_check\": \"passed\"\n"
        "  },\n"
        "  \"plan_replay\": {\n"
        "    \"txns_per_host_sec\": %.0f,\n"
        "    \"sim_tps\": %.1f\n"
        "  },\n"
        "  \"replay_parallel\": {\n"
        "    \"groups\": %u,\n"
        "    \"db_shards\": %u,\n"
        "    \"threads\": %u,\n"
        "    \"host_cores\": %u,\n"
        "    \"actions\": %llu,\n"
        "    \"serial_replay_seconds\": %.4f,\n"
        "    \"parallel_replay_seconds\": %.4f,\n"
        "    \"speedup_vs_serial\": %.3f,\n"
        "    \"digest_cross_check\": \"passed\"\n"
        "  },\n"
        "  \"grid_point\": {\n"
        "    \"warehouses\": %u,\n"
        "    \"processors\": %u,\n"
        "    \"wall_seconds\": %.3f,\n"
        "    \"events_fired\": %llu,\n"
        "    \"events_per_sec\": %.0f\n"
        "  },\n"
        "  \"grid_point_100x\": {\n"
        "    \"skipped\": %s,\n"
        "    \"warehouses\": %u,\n"
        "    \"processors\": %u,\n"
        "    \"clients\": %u,\n"
        "    \"wall_seconds\": %.3f,\n"
        "    \"events_fired\": %llu,\n"
        "    \"events_per_sec\": %.0f,\n"
        "    \"tps\": %.1f\n"
        "  },\n"
        "  \"intra_point\": {\n"
        "    \"skipped\": %s,\n"
        "    \"warehouses\": %u,\n"
        "    \"processors\": %u,\n"
        "    \"repeats\": %u,\n"
        "    \"pool_threads\": %u,\n"
        "    \"serial_wall_seconds\": %.3f,\n"
        "    \"parallel_wall_seconds\": %.3f,\n"
        "    \"speedup_vs_serial\": %.3f,\n"
        "    \"bitwise_cross_check\": \"passed\"\n"
        "  },\n"
        "  \"des_parallel\": {\n"
        "    \"islands\": %u,\n"
        "    \"warehouses_per_island\": %u,\n"
        "    \"host_cores\": %u,\n"
        "    \"speedup_gate_active\": %s,\n"
        "    \"lookahead_ticks\": %llu,\n"
        "    \"epoch_barriers\": %llu,\n"
        "    \"cross_events\": %llu,\n"
        "    \"serial_wall_seconds\": %.3f,\n"
        "    \"parallel_wall_seconds\": %.3f,\n"
        "    \"speedup_vs_serial\": %.3f,\n"
        "    \"digest_cross_check\": \"passed\"\n"
        "  },\n"
        "  \"provenance\": {\n"
        "    \"compiler\": \"%s\",\n"
        "    \"build_type\": \"%s\",\n"
        "    \"git_rev\": \"%s\"\n"
        "  }\n"
        "}\n",
        ev_rate, legacy_rate, speedup, cache_rate, dir_rate,
        legacy_dir_rate, dir_speedup, path_rate, buf_rate,
        legacy_buf_rate, buf_speedup, lock_rate, legacy_lock_rate,
        lock_speedup, wheel_rate, heap_rate, wheel_speedup,
        kShardThreads, host_cores, shard_gate ? "true" : "false",
        lock1_rate, lock4_rate, lock_shard_speedup,
        kShardThreads, host_cores, shard_gate ? "true" : "false",
        buf1_rate, buf4_rate, buf_shard_speedup, kShardThreads,
        static_cast<unsigned long long>(kPoolTasks), host_cores,
        shard_gate ? "true" : "false", pool_ws_rate, pool_legacy_rate,
        pool_speedup, replay_rate, sim_tps, hrc.groups, hrc.dbShards,
        kShardThreads, host_cores,
        static_cast<unsigned long long>(hr_actions), hr_serial_secs,
        hr_par_secs, hr_speedup, r.warehouses, r.processors,
        r.wallSeconds, static_cast<unsigned long long>(r.eventsFired),
        r.eventsPerSec(), run_100x ? "false" : "true", big.warehouses,
        big.processors, big.clients, big.wallSeconds,
        static_cast<unsigned long long>(big.eventsFired),
        big.eventsPerSec(), big.tps, run_100x ? "false" : "true",
        kIntraW, kIntraP, kIntraRepeats, kShardThreads,
        intra_serial_wall, intra_par_wall, intra_speedup, kDesIslands,
        dcfg.warehousesPerIsland, host_cores,
        des_gate ? "true" : "false",
        static_cast<unsigned long long>(des_oracle.lookahead),
        static_cast<unsigned long long>(des_oracle.epochBarriers),
        static_cast<unsigned long long>(des_oracle.crossDelivered),
        des1_wall, desS_wall, des_speedup, __VERSION__,
        ODBSIM_BUILD_TYPE, ODBSIM_GIT_REV);
    std::fclose(f);
    std::fprintf(stderr, "[hotpath] wrote %s\n", out_path);

    int rc = 0;
    if (speedup < 1.5) {
        std::fprintf(stderr,
                     "[hotpath] WARNING: event-queue speedup %.2fx is "
                     "below the 1.5x gate\n",
                     speedup);
        rc = 2;
    }
    if (dir_speedup < 1.3) {
        std::fprintf(stderr,
                     "[hotpath] WARNING: directory speedup %.2fx is "
                     "below the 1.3x gate\n",
                     dir_speedup);
        rc = 2;
    }
    if (buf_speedup < 1.3) {
        std::fprintf(stderr,
                     "[hotpath] WARNING: buffer-cache speedup %.2fx is "
                     "below the 1.3x gate\n",
                     buf_speedup);
        rc = 2;
    }
    if (lock_speedup < 1.3) {
        std::fprintf(stderr,
                     "[hotpath] WARNING: lock-manager speedup %.2fx is "
                     "below the 1.3x gate\n",
                     lock_speedup);
        rc = 2;
    }
    if (wheel_speedup < 1.5) {
        std::fprintf(stderr,
                     "[hotpath] WARNING: 100x-density wheel-vs-heap "
                     "speedup %.2fx is below the 1.5x gate\n",
                     wheel_speedup);
        rc = 2;
    }
    if (shard_gate && lock_shard_speedup < 1.3) {
        std::fprintf(stderr,
                     "[hotpath] WARNING: sharded lock speedup %.2fx is "
                     "below the 1.3x gate\n",
                     lock_shard_speedup);
        rc = 2;
    }
    if (shard_gate && buf_shard_speedup < 1.3) {
        std::fprintf(stderr,
                     "[hotpath] WARNING: sharded buffer speedup %.2fx "
                     "is below the 1.3x gate\n",
                     buf_shard_speedup);
        rc = 2;
    }
    if (shard_gate && pool_speedup < 1.3) {
        std::fprintf(stderr,
                     "[hotpath] WARNING: work-stealing pool speedup "
                     "%.2fx is below the 1.3x gate\n",
                     pool_speedup);
        rc = 2;
    }
    if (des_gate && des_speedup < 1.3) {
        std::fprintf(stderr,
                     "[hotpath] WARNING: parallel DES speedup %.2fx "
                     "is below the 1.3x gate\n",
                     des_speedup);
        rc = 2;
    }
    return rc;
}
