/**
 * @file
 * Hot-path perf baseline: measures the simulation kernel's hottest
 * operations — event scheduling, tag-store accesses, coherence
 * directory churn, the batched memory-access path, and one reference
 * study grid point — and emits BENCH_hotpath.json, the baseline
 * future perf PRs are judged against.
 *
 * Two microbenchmarks also run against embedded copies of the
 * pre-overhaul implementations (the shared_ptr/std::function event
 * queue and the std::unordered_map coherence directory), so the
 * reported speedups are reproducible from this binary alone, on any
 * host, without checking out the old revisions. The directory churn
 * is driven by one deterministic operation stream through both
 * implementations and cross-checks their observable counters, so the
 * perf comparison doubles as a differential test.
 *
 * Usage: bench_hotpath [--out FILE]   (default: BENCH_hotpath.json)
 */

#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>

#include "core/experiment.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

#ifndef ODBSIM_GIT_REV
#define ODBSIM_GIT_REV "unknown"
#endif
#ifndef ODBSIM_BUILD_TYPE
#define ODBSIM_BUILD_TYPE "unknown"
#endif

namespace
{

using namespace odbsim;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * The event queue as it was before the slab/small-buffer overhaul:
 * every schedule() heap-allocates a shared_ptr control block and
 * (for capturing lambdas) a std::function target, and the
 * priority_queue entry carries both. Kept verbatim as the perf
 * reference for speedup_vs_legacy.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    Tick curTick() const { return curTick_; }

    void
    schedule(Tick when, Callback cb)
    {
        auto slot = std::make_shared<Slot>();
        queue_.push(Entry{when, nextSeq_++, std::move(cb), slot});
    }

    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(curTick_ + delay, std::move(cb));
    }

    bool
    step()
    {
        while (!queue_.empty()) {
            Entry entry = std::move(const_cast<Entry &>(queue_.top()));
            queue_.pop();
            if (entry.slot->cancelled)
                continue;
            curTick_ = entry.when;
            entry.slot->fired = true;
            entry.cb();
            return true;
        }
        return false;
    }

  private:
    struct Slot
    {
        bool cancelled = false;
        bool fired = false;
    };
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
        std::shared_ptr<Slot> slot;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
};

/**
 * The coherence directory as it was before the flat-table overhaul:
 * a std::unordered_map from line address to {sharers, owner}, paying
 * a node allocation per tracked line and a pointer chase per probe.
 * Kept verbatim as the perf reference for the directory speedup gate.
 */
class LegacyCoherenceDirectory
{
  public:
    explicit LegacyCoherenceDirectory(unsigned num_cpus)
        : numCpus_(num_cpus)
    {}

    mem::CoherenceOutcome
    onFill(unsigned cpu, Addr line_addr, bool is_write)
    {
        mem::CoherenceOutcome out;
        Entry &e = lines_[line_addr];
        const std::uint32_t self = 1u << cpu;
        if (e.modifiedOwner >= 0 &&
            static_cast<unsigned>(e.modifiedOwner) != cpu) {
            out.remoteDirty = true;
            out.remoteOwner = static_cast<unsigned>(e.modifiedOwner);
            ++coherenceMisses_;
        }
        if (is_write) {
            const std::uint32_t remote = e.sharers & ~self;
            out.invalidateMask = remote;
            invalidations_ += std::popcount(remote);
            e.sharers = self;
            e.modifiedOwner = static_cast<std::int8_t>(cpu);
        } else {
            if (out.remoteDirty)
                e.modifiedOwner = -1;
            e.sharers |= self;
        }
        return out;
    }

    std::uint32_t
    onWriteHit(unsigned cpu, Addr line_addr)
    {
        Entry &e = lines_[line_addr];
        const std::uint32_t self = 1u << cpu;
        const std::uint32_t remote = e.sharers & ~self;
        invalidations_ += std::popcount(remote);
        e.sharers = self;
        e.modifiedOwner = static_cast<std::int8_t>(cpu);
        return remote;
    }

    mem::SnoopState
    snoop(Addr line_addr) const
    {
        auto it = lines_.find(line_addr);
        if (it == lines_.end())
            return mem::SnoopState{};
        return mem::SnoopState{true, it->second.sharers,
                               it->second.modifiedOwner};
    }

    void
    onEviction(unsigned cpu, Addr line_addr)
    {
        auto it = lines_.find(line_addr);
        if (it == lines_.end())
            return;
        Entry &e = it->second;
        e.sharers &= ~(1u << cpu);
        if (e.modifiedOwner >= 0 &&
            static_cast<unsigned>(e.modifiedOwner) == cpu) {
            e.modifiedOwner = -1;
        }
        if (e.sharers == 0 && e.modifiedOwner < 0)
            lines_.erase(it);
    }

    void onDmaFill(Addr line_addr) { lines_.erase(line_addr); }

    std::size_t trackedLines() const { return lines_.size(); }
    std::uint64_t coherenceMisses() const { return coherenceMisses_; }
    std::uint64_t invalidationsSent() const { return invalidations_; }

  private:
    struct Entry
    {
        std::uint32_t sharers = 0;
        std::int8_t modifiedOwner = -1;
    };

    unsigned numCpus_;
    std::unordered_map<Addr, Entry> lines_;
    std::uint64_t coherenceMisses_ = 0;
    std::uint64_t invalidations_ = 0;
};

/** Capture shape of a typical kernel event (disk completion). */
struct FakeRequest
{
    void *owner = nullptr;
    std::uint64_t bytes = 8192;
    std::uint64_t queuedAt = 0;
    std::uint64_t flags = 0;
};

/**
 * Schedule/fire churn with a rolling pending population, as the
 * simulator does in steady state. Returns events per second.
 */
template <typename Queue>
double
eventChurnRate(std::uint64_t events)
{
    Queue eq;
    Rng rng(5);
    std::uint64_t sink = 0;
    for (int i = 0; i < 256; ++i) {
        FakeRequest req{&eq, 8192, eq.curTick(), 0};
        eq.schedule(rng.below(1000), [req, &sink] {
            sink += req.bytes;
        });
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < events; ++i) {
        FakeRequest req{&eq, 8192, eq.curTick(), 0};
        eq.scheduleAfter(rng.below(1000) + 1, [req, &sink] {
            sink += req.bytes;
        });
        eq.step();
    }
    const double secs = secondsSince(t0);
    if (sink == 0) // defeat dead-code elimination
        std::fprintf(stderr, "unreachable\n");
    return static_cast<double>(events) / secs;
}

/** L2-shaped tag-store churn. Returns accesses per second. */
double
cacheAccessRate(std::uint64_t accesses)
{
    mem::SetAssocCache cache("bench",
                             mem::CacheGeometry{512 * KiB, 8, 64});
    Rng rng(1);
    // Footprint ~4x the cache so the scan exercises hits, misses and
    // dirty evictions together.
    const std::uint64_t footprint = 4 * 512 * KiB / 64;
    std::uint64_t hits = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < accesses; ++i) {
        const Addr addr = rng.below(footprint) * 64;
        hits += cache.access(addr, (i & 7) == 0).hit;
    }
    const double secs = secondsSince(t0);
    if (hits == 0)
        std::fprintf(stderr, "unreachable\n");
    return static_cast<double>(accesses) / secs;
}

/**
 * MemorySystem-shaped directory churn: fills, write hits, evictions,
 * snoops and DMA invalidations over a bounded line population, with
 * the deletion-heavy cases that exercise the flat table's
 * backward-shift path. The digest accumulates every observable output
 * (outcomes, masks, counters), both to defeat dead-code elimination
 * and so the caller can cross-check the two implementations ran
 * identically. Returns ops per second.
 */
template <typename Dir>
double
directoryChurnRate(std::uint64_t ops, std::uint64_t &digest)
{
    Dir dir(4);
    Rng rng(11);
    constexpr std::uint64_t footprint = 1u << 15; // 32 Ki lines
    std::uint64_t sum = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        const Addr line = rng.below(footprint) * 64;
        const unsigned cpu = static_cast<unsigned>(rng.below(4));
        switch (rng.below(16)) {
          case 0:
          case 1:
          case 2:
          case 3:
          case 4:
          case 5: {
            const auto out = dir.onFill(cpu, line, false);
            sum += out.remoteDirty + out.invalidateMask;
            break;
          }
          case 6:
          case 7:
          case 8: {
            const auto out = dir.onFill(cpu, line, true);
            sum += out.remoteDirty + out.invalidateMask;
            break;
          }
          case 9:
          case 10:
            sum += dir.onWriteHit(cpu, line);
            break;
          case 11:
          case 12:
          case 13:
            dir.onEviction(cpu, line);
            break;
          case 14: {
            const auto s = dir.snoop(line);
            sum += s.tracked + s.sharers;
            break;
          }
          default:
            dir.onDmaFill(line);
            break;
        }
    }
    const double secs = secondsSince(t0);
    digest = sum + dir.trackedLines() + dir.coherenceMisses() * 3 +
             dir.invalidationsSent() * 7;
    return static_cast<double>(ops) / secs;
}

/**
 * End-to-end batched access path: epochs of references through a
 * 4-CPU MemorySystem (L2/L3 tag stores, directory, bus accounting),
 * the shape CpuCore::execute drives per WorkItem. Returns accesses
 * per second.
 */
double
accessPathRate(std::uint64_t accesses)
{
    constexpr std::uint32_t sampleFactor = 16;
    mem::MemorySystem ms(4, mem::HierarchyConfig{}, mem::BusConfig{},
                         sampleFactor);
    Rng rng(23);
    // Sampled-line footprint ~4x the scaled L3 so the epoch stream
    // exercises L2 hits, L3 hits/misses and evictions together.
    constexpr std::uint64_t stride = 64 * sampleFactor;
    constexpr std::uint64_t lines = 4 * 1024;
    constexpr std::uint64_t epochLen = 64;
    std::uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t done = 0; done < accesses;) {
        const unsigned cpu = static_cast<unsigned>(rng.below(4));
        auto epoch =
            ms.beginEpoch(cpu, mem::ExecMode::User, Tick{0});
        for (std::uint64_t i = 0; i < epochLen; ++i) {
            const Addr addr = rng.below(lines) * stride;
            const auto kind = (i & 7) == 0 ? mem::AccessKind::DataWrite
                                           : mem::AccessKind::DataRead;
            sink += static_cast<std::uint64_t>(
                epoch.access(addr, kind).servicedBy);
        }
        done += epochLen;
    }
    const double secs = secondsSince(t0);
    if (sink == 0)
        std::fprintf(stderr, "unreachable\n");
    return static_cast<double>(accesses) / secs;
}

/** Best of @p reps runs, to shed scheduler noise. */
double
best(int reps, double (*fn)(std::uint64_t), std::uint64_t n)
{
    double b = 0.0;
    for (int i = 0; i < reps; ++i)
        b = std::max(b, fn(n));
    return b;
}

/** best() for the directory churn, which also yields a digest. */
template <typename Dir>
double
bestDirectory(int reps, std::uint64_t ops, std::uint64_t &digest)
{
    double b = 0.0;
    for (int i = 0; i < reps; ++i)
        b = std::max(b, directoryChurnRate<Dir>(ops, digest));
    return b;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = "BENCH_hotpath.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
    }

    // The legacy-vs-new comparisons take the best of five runs each:
    // the ratio of two best-of maxima is far less sensitive to host
    // interference than any single measurement, which matters on the
    // small shared runners that execute this gate.
    std::fprintf(stderr, "[hotpath] event-scheduling churn...\n");
    constexpr std::uint64_t kEvents = 3'000'000;
    const double ev_rate = best(5, eventChurnRate<EventQueue>, kEvents);
    const double legacy_rate =
        best(5, eventChurnRate<LegacyEventQueue>, kEvents);
    const double speedup = ev_rate / legacy_rate;
    std::fprintf(stderr,
                 "[hotpath]   EventQueue       %.2fM events/s\n"
                 "[hotpath]   LegacyEventQueue %.2fM events/s\n"
                 "[hotpath]   speedup_vs_legacy %.2fx\n",
                 ev_rate / 1e6, legacy_rate / 1e6, speedup);

    std::fprintf(stderr, "[hotpath] tag-store churn...\n");
    constexpr std::uint64_t kAccesses = 20'000'000;
    const double cache_rate = best(3, cacheAccessRate, kAccesses);
    std::fprintf(stderr, "[hotpath]   SetAssocCache    %.2fM acc/s\n",
                 cache_rate / 1e6);

    std::fprintf(stderr, "[hotpath] coherence-directory churn...\n");
    constexpr std::uint64_t kDirOps = 20'000'000;
    std::uint64_t dir_digest = 0, legacy_dir_digest = 0;
    const double dir_rate = bestDirectory<mem::CoherenceDirectory>(
        5, kDirOps, dir_digest);
    const double legacy_dir_rate =
        bestDirectory<LegacyCoherenceDirectory>(5, kDirOps,
                                                legacy_dir_digest);
    const double dir_speedup = dir_rate / legacy_dir_rate;
    std::fprintf(stderr,
                 "[hotpath]   CoherenceDirectory       %.2fM ops/s\n"
                 "[hotpath]   LegacyCoherenceDirectory %.2fM ops/s\n"
                 "[hotpath]   speedup_vs_legacy %.2fx\n",
                 dir_rate / 1e6, legacy_dir_rate / 1e6, dir_speedup);
    if (dir_digest != legacy_dir_digest) {
        std::fprintf(stderr,
                     "[hotpath] FATAL: directory digests diverge "
                     "(flat %llu vs legacy %llu) — the flat table is "
                     "not behaviorally identical\n",
                     static_cast<unsigned long long>(dir_digest),
                     static_cast<unsigned long long>(legacy_dir_digest));
        return 1;
    }

    std::fprintf(stderr, "[hotpath] batched memory-access path...\n");
    constexpr std::uint64_t kPathAccesses = 10'000'000;
    const double path_rate = best(3, accessPathRate, kPathAccesses);
    std::fprintf(stderr, "[hotpath]   MemorySystem     %.2fM acc/s\n",
                 path_rate / 1e6);

    std::fprintf(stderr,
                 "[hotpath] reference grid point (W=10, P=4)...\n");
    core::OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 4;
    const core::RunResult r = core::ExperimentRunner::run(cfg);
    std::fprintf(stderr,
                 "[hotpath]   wall %.3fs  %llu events  %.2fM ev/s  "
                 "(tps %.0f)\n",
                 r.wallSeconds,
                 static_cast<unsigned long long>(r.eventsFired),
                 r.eventsPerSec() / 1e6, r.tps);

    std::FILE *f = std::fopen(out_path, "w");
    if (!f) {
        std::fprintf(stderr, "[hotpath] cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"hotpath\",\n"
        "  \"event_queue\": {\n"
        "    \"events_per_sec\": %.0f,\n"
        "    \"legacy_events_per_sec\": %.0f,\n"
        "    \"speedup_vs_legacy\": %.3f\n"
        "  },\n"
        "  \"tag_store\": {\n"
        "    \"accesses_per_sec\": %.0f\n"
        "  },\n"
        "  \"directory\": {\n"
        "    \"ops_per_sec\": %.0f,\n"
        "    \"legacy_ops_per_sec\": %.0f,\n"
        "    \"speedup_vs_legacy\": %.3f,\n"
        "    \"digest_cross_check\": \"passed\"\n"
        "  },\n"
        "  \"access_path\": {\n"
        "    \"accesses_per_sec\": %.0f\n"
        "  },\n"
        "  \"grid_point\": {\n"
        "    \"warehouses\": %u,\n"
        "    \"processors\": %u,\n"
        "    \"wall_seconds\": %.3f,\n"
        "    \"events_fired\": %llu,\n"
        "    \"events_per_sec\": %.0f\n"
        "  },\n"
        "  \"provenance\": {\n"
        "    \"compiler\": \"%s\",\n"
        "    \"build_type\": \"%s\",\n"
        "    \"git_rev\": \"%s\"\n"
        "  }\n"
        "}\n",
        ev_rate, legacy_rate, speedup, cache_rate, dir_rate,
        legacy_dir_rate, dir_speedup, path_rate, r.warehouses,
        r.processors, r.wallSeconds,
        static_cast<unsigned long long>(r.eventsFired),
        r.eventsPerSec(), __VERSION__, ODBSIM_BUILD_TYPE,
        ODBSIM_GIT_REV);
    std::fclose(f);
    std::fprintf(stderr, "[hotpath] wrote %s\n", out_path);

    int rc = 0;
    if (speedup < 1.5) {
        std::fprintf(stderr,
                     "[hotpath] WARNING: event-queue speedup %.2fx is "
                     "below the 1.5x gate\n",
                     speedup);
        rc = 2;
    }
    if (dir_speedup < 1.3) {
        std::fprintf(stderr,
                     "[hotpath] WARNING: directory speedup %.2fx is "
                     "below the 1.3x gate\n",
                     dir_speedup);
        rc = 2;
    }
    return rc;
}
