/**
 * @file
 * Hot-path perf baseline: measures the simulation kernel's three
 * hottest operations — event scheduling, tag-store accesses, and one
 * reference study grid point — and emits BENCH_hotpath.json, the
 * baseline future perf PRs are judged against.
 *
 * The event-scheduling microbenchmark also runs against an embedded
 * copy of the pre-overhaul event queue (shared_ptr slot + std::function
 * callback + fat priority_queue entry), so the reported
 * speedup_vs_legacy is reproducible from this binary alone, on any
 * host, without checking out the old revision.
 *
 * Usage: bench_hotpath [--out FILE]   (default: BENCH_hotpath.json)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <string>

#include "core/experiment.hh"
#include "mem/cache.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace
{

using namespace odbsim;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * The event queue as it was before the slab/small-buffer overhaul:
 * every schedule() heap-allocates a shared_ptr control block and
 * (for capturing lambdas) a std::function target, and the
 * priority_queue entry carries both. Kept verbatim as the perf
 * reference for speedup_vs_legacy.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    Tick curTick() const { return curTick_; }

    void
    schedule(Tick when, Callback cb)
    {
        auto slot = std::make_shared<Slot>();
        queue_.push(Entry{when, nextSeq_++, std::move(cb), slot});
    }

    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(curTick_ + delay, std::move(cb));
    }

    bool
    step()
    {
        while (!queue_.empty()) {
            Entry entry = std::move(const_cast<Entry &>(queue_.top()));
            queue_.pop();
            if (entry.slot->cancelled)
                continue;
            curTick_ = entry.when;
            entry.slot->fired = true;
            entry.cb();
            return true;
        }
        return false;
    }

  private:
    struct Slot
    {
        bool cancelled = false;
        bool fired = false;
    };
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
        std::shared_ptr<Slot> slot;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
};

/** Capture shape of a typical kernel event (disk completion). */
struct FakeRequest
{
    void *owner = nullptr;
    std::uint64_t bytes = 8192;
    std::uint64_t queuedAt = 0;
    std::uint64_t flags = 0;
};

/**
 * Schedule/fire churn with a rolling pending population, as the
 * simulator does in steady state. Returns events per second.
 */
template <typename Queue>
double
eventChurnRate(std::uint64_t events)
{
    Queue eq;
    Rng rng(5);
    std::uint64_t sink = 0;
    for (int i = 0; i < 256; ++i) {
        FakeRequest req{&eq, 8192, eq.curTick(), 0};
        eq.schedule(rng.below(1000), [req, &sink] {
            sink += req.bytes;
        });
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < events; ++i) {
        FakeRequest req{&eq, 8192, eq.curTick(), 0};
        eq.scheduleAfter(rng.below(1000) + 1, [req, &sink] {
            sink += req.bytes;
        });
        eq.step();
    }
    const double secs = secondsSince(t0);
    if (sink == 0) // defeat dead-code elimination
        std::fprintf(stderr, "unreachable\n");
    return static_cast<double>(events) / secs;
}

/** L2-shaped tag-store churn. Returns accesses per second. */
double
cacheAccessRate(std::uint64_t accesses)
{
    mem::SetAssocCache cache("bench",
                             mem::CacheGeometry{512 * KiB, 8, 64});
    Rng rng(1);
    // Footprint ~4x the cache so the scan exercises hits, misses and
    // dirty evictions together.
    const std::uint64_t footprint = 4 * 512 * KiB / 64;
    std::uint64_t hits = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < accesses; ++i) {
        const Addr addr = rng.below(footprint) * 64;
        hits += cache.access(addr, (i & 7) == 0).hit;
    }
    const double secs = secondsSince(t0);
    if (hits == 0)
        std::fprintf(stderr, "unreachable\n");
    return static_cast<double>(accesses) / secs;
}

/** Best of @p reps runs, to shed scheduler noise. */
double
best(int reps, double (*fn)(std::uint64_t), std::uint64_t n)
{
    double b = 0.0;
    for (int i = 0; i < reps; ++i)
        b = std::max(b, fn(n));
    return b;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = "BENCH_hotpath.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
    }

    std::fprintf(stderr, "[hotpath] event-scheduling churn...\n");
    constexpr std::uint64_t kEvents = 3'000'000;
    const double ev_rate = best(3, eventChurnRate<EventQueue>, kEvents);
    const double legacy_rate =
        best(3, eventChurnRate<LegacyEventQueue>, kEvents);
    const double speedup = ev_rate / legacy_rate;
    std::fprintf(stderr,
                 "[hotpath]   EventQueue       %.2fM events/s\n"
                 "[hotpath]   LegacyEventQueue %.2fM events/s\n"
                 "[hotpath]   speedup_vs_legacy %.2fx\n",
                 ev_rate / 1e6, legacy_rate / 1e6, speedup);

    std::fprintf(stderr, "[hotpath] tag-store churn...\n");
    constexpr std::uint64_t kAccesses = 20'000'000;
    const double cache_rate = best(3, cacheAccessRate, kAccesses);
    std::fprintf(stderr, "[hotpath]   SetAssocCache    %.2fM acc/s\n",
                 cache_rate / 1e6);

    std::fprintf(stderr,
                 "[hotpath] reference grid point (W=10, P=4)...\n");
    core::OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 4;
    const core::RunResult r = core::ExperimentRunner::run(cfg);
    std::fprintf(stderr,
                 "[hotpath]   wall %.3fs  %llu events  %.2fM ev/s  "
                 "(tps %.0f)\n",
                 r.wallSeconds,
                 static_cast<unsigned long long>(r.eventsFired),
                 r.eventsPerSec() / 1e6, r.tps);

    std::FILE *f = std::fopen(out_path, "w");
    if (!f) {
        std::fprintf(stderr, "[hotpath] cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"hotpath\",\n"
        "  \"event_queue\": {\n"
        "    \"events_per_sec\": %.0f,\n"
        "    \"legacy_events_per_sec\": %.0f,\n"
        "    \"speedup_vs_legacy\": %.3f\n"
        "  },\n"
        "  \"tag_store\": {\n"
        "    \"accesses_per_sec\": %.0f\n"
        "  },\n"
        "  \"grid_point\": {\n"
        "    \"warehouses\": %u,\n"
        "    \"processors\": %u,\n"
        "    \"wall_seconds\": %.3f,\n"
        "    \"events_fired\": %llu,\n"
        "    \"events_per_sec\": %.0f\n"
        "  }\n"
        "}\n",
        ev_rate, legacy_rate, speedup, cache_rate, r.warehouses,
        r.processors, r.wallSeconds,
        static_cast<unsigned long long>(r.eventsFired),
        r.eventsPerSec());
    std::fclose(f);
    std::fprintf(stderr, "[hotpath] wrote %s\n", out_path);

    if (speedup < 1.5) {
        std::fprintf(stderr,
                     "[hotpath] WARNING: event-queue speedup %.2fx is "
                     "below the 1.5x gate\n",
                     speedup);
        return 2;
    }
    return 0;
}
