/**
 * @file
 * Ablation (Section 6.3 conjecture): disk bandwidth sets the
 * scaled-region behaviour — more spindles shorten I/O waits, reduce
 * the concurrency (and context switching) needed to mask them, and
 * soften the scaled region.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Ablation: disk bandwidth",
                  "Scaled-region sensitivity to spindle count "
                  "(Section 6.3)");

    core::RunKnobs knobs;
    knobs.measure = ticksFromSeconds(1.0);

    std::printf("%-8s %8s %8s %8s %10s %8s %8s\n", "disks", "tps",
                "util", "cpi", "ctx/txn", "ioLatMs", "diskUtil");
    for (const unsigned disks : {8u, 16u, 24u, 48u}) {
        core::MachinePreset preset =
            core::makeMachine(core::MachineKind::XeonQuadMp, 4,
                              knobs.samplePeriod, knobs.seed);
        preset.sys.disks.dataDisks = disks;
        const core::RunResult r =
            core::ExperimentRunner::runWithPreset(preset, 400, 0, knobs);
        std::printf("%-8u %8.0f %8.2f %8.3f %10.2f %8.2f %8.2f\n",
                    disks, r.tps, r.cpuUtil, r.cpi, r.ctxPerTxn,
                    r.diskReadLatencyMs, r.avgDiskUtil);
    }

    bench::paperNote(
        "adding drives reduces per-read latency and raises achievable "
        "utilization/TPS in the scaled region; with fewer drives the "
        "system slides toward I/O bound (low CPU utilization) at the "
        "same W.");
    return 0;
}
