/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths: the
 * set-associative tag store, the buffer cache, implicit B-tree
 * lookups, the event queue, and the regression fits.
 */

#include <benchmark/benchmark.h>

#include "analysis/piecewise.hh"
#include "db/btree.hh"
#include "db/buffer_cache.hh"
#include "mem/cache.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "support/bench_common.hh"

namespace
{

using namespace odbsim;

void
BM_CacheAccess(benchmark::State &state)
{
    mem::SetAssocCache cache("bench",
                             mem::CacheGeometry{64 * KiB, 8, 64});
    Rng rng(1);
    const std::uint64_t footprint = state.range(0);
    for (auto _ : state) {
        const Addr addr = rng.below(footprint) * 64;
        benchmark::DoNotOptimize(cache.access(addr, false).hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(512)->Arg(4096)->Arg(65536);

void
BM_BufferCacheLookup(benchmark::State &state)
{
    db::BufferCache bc(100000);
    for (db::BlockId b = 0; b < 100000; ++b)
        bc.prefill(b);
    Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(bc.lookup(rng.below(100000)).hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferCacheLookup);

void
BM_BufferCacheMissEvict(benchmark::State &state)
{
    db::BufferCache bc(4096);
    Rng rng(3);
    db::BlockId next = 0;
    for (auto _ : state) {
        const auto v = bc.allocate(1000000 + next++);
        bc.fillComplete(v.frame);
        benchmark::DoNotOptimize(v.frame);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferCacheMissEvict);

void
BM_BTreeLookup(benchmark::State &state)
{
    db::ImplicitBTree tree(0, 24000000, 300, 250);
    Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tree.lookup(rng.below(24000000)).leaf());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup);

void
BM_EventQueueChurn(benchmark::State &state)
{
    EventQueue eq;
    Rng rng(5);
    // Keep a rolling population of pending events.
    for (int i = 0; i < 256; ++i)
        eq.schedule(rng.below(1000), [] {});
    for (auto _ : state) {
        eq.scheduleAfter(rng.below(1000) + 1, [] {});
        eq.step();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueChurn);

void
BM_PiecewiseFit(benchmark::State &state)
{
    std::vector<double> xs, ys;
    Rng rng(6);
    for (double x : {10., 25., 35., 50., 75., 100., 150., 200., 300.,
                     400., 600., 800.}) {
        xs.push_back(x);
        ys.push_back(x < 100 ? 2 + 0.02 * x
                             : 4 + 0.001 * (x - 100) +
                                   rng.normal(0, 0.01));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analysis::fitTwoSegment(xs, ys).pivotX);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PiecewiseFit);

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

} // namespace

int
main(int argc, char **argv)
{
    // Shared bench knobs first (--jobs/--shards/... are not google-
    // benchmark flags, so they must be consumed before Initialize —
    // and unrecognized leftovers are tolerated, not fatal).
    odbsim::bench::parseArgs(argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
