/**
 * @file
 * Regenerates Table 5: CPI and MPI pivot points for 1P/2P/4P, with the
 * paper's values side by side, plus the Section 6.2 representative-
 * configuration recommendation.
 */

#include <cstdio>

#include "analysis/table.hh"
#include "core/representative.hh"
#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    using analysis::TextTable;
    bench::banner("Table 5", "Number of warehouses for pivot points");

    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);
    const core::Recommendation rec =
        core::RepresentativeConfigSelector::select(study);

    // Paper Table 5 values.
    const double paper_cpi[] = {119, 142, 130};
    const double paper_mpi[] = {102, 147, 144};

    TextTable t({"config", "CPI meas", "CPI paper", "MPI meas",
                 "MPI paper"});
    std::size_t i = 0;
    for (const auto &row : rec.pivots) {
        t.addRow({std::to_string(row.processors) + "P",
                  TextTable::num(row.cpiPivotW, 0),
                  TextTable::num(paper_cpi[i], 0),
                  TextTable::num(row.mpiPivotW, 0),
                  TextTable::num(paper_mpi[i], 0)});
        ++i;
    }
    t.print();

    std::printf("\nlargest pivot: %.0f W\n", rec.maxPivotW);
    std::printf("recommended minimal representative configuration: "
                "%u warehouses\n",
                rec.recommendedW);

    bench::paperNote(
        "all pivot points fall below 150 warehouses; the paper "
        "proposes the 200 W setup as a representative scaled "
        "configuration from which larger setups extrapolate along the "
        "scaled-region line.");
    return 0;
}
