/**
 * @file
 * Regenerates Figure 7: disk I/O per transaction in KB — reads,
 * write-back, and redo-log traffic, plus the buffer-cache hit ratio
 * that drives the read curve.
 */

#include <cstdio>

#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 7",
                  "Disk I/Os per transaction (reads and writes), in KB");
    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);

    std::printf("4P series:\n");
    std::printf("%-12s %10s %10s %10s %10s %10s\n", "warehouses",
                "read KB", "write KB", "log KB", "total KB", "bufHit");
    for (const auto &r : study.forProcessors(4).points) {
        std::printf("%-12u %10.2f %10.2f %10.2f %10.2f %10.3f\n",
                    r.warehouses, r.diskReadKbPerTxn,
                    r.diskWriteKbPerTxn, r.logKbPerTxn,
                    r.diskReadKbPerTxn + r.diskWriteKbPerTxn +
                        r.logKbPerTxn,
                    r.bufferHitRatio);
    }

    std::printf("\nread KB/txn across processor counts:\n");
    bench::printMetricByW(
        study, "disk reads KB per txn",
        [](const core::RunResult &r) { return r.diskReadKbPerTxn; }, 2);

    bench::paperNote(
        "reads ~0 below ~25-35 W (working set fits the buffer cache), "
        "growing beyond; log traffic ~6 KB/txn independent of W and P; "
        "write-back appears only once evictions begin and grows with "
        "W.");
    return 0;
}
