/**
 * @file
 * Degradation study under deterministic fault injection: transaction
 * throughput, abort rate and response time as the fault intensity
 * scales, plus one mid-run instance crash measuring MTTR and the
 * recovery ramp (docs/FAULTS.md).
 *
 * The machine is the study's Quad Xeon MP at W=96, P=4 — the same
 * I/O-affected operating point as the islands sweep. The grid is
 * fault-scale x retry-profile:
 *
 *  - scale s in {0, 0.4, 1, 2.5} multiplies the transient-disk-error
 *    and spontaneous-abort probabilities (s=0 is the fault-free
 *    baseline and must match a run without the subsystem);
 *  - profile "fast" times out lock waits quickly and retries almost
 *    immediately; "patient" waits longer on both knobs;
 *
 * plus one crash point: the instance is killed mid-measurement, redo
 * is replayed off the log drives, and the CSV records MTTR and the
 * throughput on both sides of the outage.
 *
 * Writes `odbsim_faults_xeon-quad-mp.csv` into ODBSIM_CACHE_DIR,
 * honours --jobs/-j/ODBSIM_JOBS with a bit-identical CSV for any job
 * count, and self-checks the degradation physics (exit code 3):
 * throughput must fall monotonically with the fault scale in each
 * profile, and post-recovery throughput must return to >= 95% of the
 * pre-crash rate.
 */

#include "support/bench_common.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hh"
#include "sim/thread_pool.hh"

namespace
{

using namespace odbsim;

/** Same I/O-affected operating point as the islands sweep. */
constexpr unsigned kWarehouses = 96;
constexpr unsigned kProcessors = 4;

/** Fault intensities; 0 is the inert baseline. */
const double kFaultScales[] = {0.0, 0.4, 1.0, 2.5};

/** One retry-discipline column of the sweep. */
struct Profile
{
    const char *name;
    double lockWaitTimeoutMs;
    double clientRetryBackoffMs;
};

const Profile kProfiles[] = {
    {"fast", 30.0, 0.5},
    {"patient", 120.0, 4.0},
};

constexpr std::size_t kNumScales =
    sizeof(kFaultScales) / sizeof(kFaultScales[0]);
constexpr std::size_t kNumProfiles =
    sizeof(kProfiles) / sizeof(kProfiles[0]);
/** Scale x profile grid plus the crash point. */
constexpr std::size_t kTotal = kNumScales * kNumProfiles + 1;
constexpr std::size_t kCrashIndex = kTotal - 1;

/** Data drives on the Quad Xeon MP preset. */
constexpr unsigned kDataDisks = 24;

sim::FaultConfig
faultsFor(double s, const Profile &p)
{
    sim::FaultConfig fc;
    if (s <= 0.0)
        return fc; // Structurally inert baseline.
    fc.diskTransientProb = 0.08 * s;
    fc.txnAbortProb = 0.03 * s;
    fc.lockWaitTimeoutMs = p.lockWaitTimeoutMs;
    fc.clientRetryBackoffMs = p.clientRetryBackoffMs;
    // Aging drives: a scale-sized subset of the array serves slower
    // from t=0. Both the subset and the multiplier grow with s, so
    // the mean service time rises monotonically with the scale.
    const unsigned degraded = std::min(
        kDataDisks,
        static_cast<unsigned>(kDataDisks * 0.3 * s + 0.5));
    for (unsigned i = 0; i < degraded; ++i) {
        sim::DriveFaultEvent ev;
        ev.atMs = 1.0;
        ev.drive = i;
        ev.degradeFactor = 1.0 + 0.6 * s;
        fc.driveEvents.push_back(ev);
    }
    return fc;
}

sim::FaultConfig
crashFaults()
{
    sim::FaultConfig fc;
    // Mid-measurement kill: warm-up ends at ~784 ms (0.4 s base +
    // 96 * 4 ms dynamic), measurement runs 1.5 s more, so a 1200 ms
    // crash leaves a settled pre-crash window and room for recovery
    // plus the 500 ms post-recovery window before the run ends.
    fc.crashAtMs = 1200.0;
    fc.recoveryRedoCapMb = 8.0;
    return fc;
}

std::string
faultsCsvPath()
{
    const char *dir = std::getenv("ODBSIM_CACHE_DIR");
    std::string path = dir ? dir : ".";
    path += "/odbsim_faults_xeon-quad-mp.csv";
    return path;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Degradation study",
                  "Fault injection: disk faults, aborts/retries, and "
                  "crash recovery");

    // Results land in their grid slot, never in completion order, so
    // the CSV is bit-identical for any job count.
    std::vector<core::RunResult> grid(kTotal);
    const auto runPoint = [&](std::size_t k) {
        core::OltpConfiguration cfg;
        cfg.warehouses = kWarehouses;
        cfg.processors = kProcessors;
        cfg.machine = core::MachineKind::XeonQuadMp;
        core::RunKnobs knobs;
        const char *label;
        if (k == kCrashIndex) {
            knobs.faults = crashFaults();
            label = "crash";
        } else {
            const std::size_t si = k / kNumProfiles;
            const std::size_t pi = k % kNumProfiles;
            knobs.faults =
                faultsFor(kFaultScales[si], kProfiles[pi]);
            label = kProfiles[pi].name;
        }
        grid[k] = core::ExperimentRunner::run(cfg, knobs);
        std::fprintf(stderr,
                     "[bench]   point %zu (%s) done (tps %.0f, "
                     "aborts %" PRIu64 ", mttr %.1f ms)\n",
                     k, label, grid[k].tps, grid[k].txnAborts,
                     grid[k].mttrMs);
    };

    unsigned jobs = bench::studyJobs();
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    std::fprintf(stderr,
                 "[bench] measuring %zu fault points (jobs=%u)...\n",
                 kTotal, jobs);
    if (jobs <= 1) {
        for (std::size_t k = 0; k < kTotal; ++k)
            runPoint(k);
    } else {
        ThreadPool pool(jobs);
        pool.parallelFor(kTotal, runPoint);
    }

    // --- CSV (deterministic; diffed serial-vs-parallel by the smoke
    // script) ---
    const std::string path = faultsCsvPath();
    if (FILE *f = std::fopen(path.c_str(), "w")) {
        std::fprintf(f,
                     "fault_scale,profile,warehouses,processors,"
                     "clients,tps,abort_rate,txn_aborts,txn_retries,"
                     "lock_timeouts,disk_transient_errors,"
                     "avg_latency_ms,p95_latency_ms,mttr_ms,"
                     "tps_pre_crash,tps_post_recovery,"
                     "redo_replayed_bytes\n");
        for (std::size_t k = 0; k < kTotal; ++k) {
            const core::RunResult &r = grid[k];
            const double scale =
                k == kCrashIndex ? 0.0
                                 : kFaultScales[k / kNumProfiles];
            const char *profile =
                k == kCrashIndex ? "crash"
                                 : kProfiles[k % kNumProfiles].name;
            const double abort_rate =
                r.txnsCommitted > 0
                    ? static_cast<double>(r.txnAborts) /
                          static_cast<double>(r.txnsCommitted)
                    : 0.0;
            std::fprintf(f,
                         "%.17g,%s,%u,%u,%u,%.17g,%.17g,%" PRIu64
                         ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                         ",%.17g,%.17g,%.17g,%.17g,%.17g,%" PRIu64
                         "\n",
                         scale, profile, r.warehouses, r.processors,
                         r.clients, r.tps, abort_rate, r.txnAborts,
                         r.txnRetries, r.lockTimeouts,
                         r.diskTransientErrors, r.avgLatencyMs,
                         r.p95LatencyMs, r.mttrMs, r.tpsPreCrash,
                         r.tpsPostRecovery, r.redoReplayedBytes);
        }
        std::fclose(f);
        std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    } else {
        std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
        return 1;
    }

    // --- report ---
    std::printf("%-8s", "scale");
    for (const auto &p : kProfiles)
        std::printf("  %24s", p.name);
    std::printf("\n");
    for (std::size_t si = 0; si < kNumScales; ++si) {
        std::printf("%-8.2f", kFaultScales[si]);
        for (std::size_t pi = 0; pi < kNumProfiles; ++pi) {
            const core::RunResult &r = grid[si * kNumProfiles + pi];
            char cell[64];
            std::snprintf(cell, sizeof(cell),
                          "%.0f tps (%" PRIu64 " aborts)", r.tps,
                          r.txnAborts);
            std::printf("  %24s", cell);
        }
        std::printf("\n");
    }
    {
        const core::RunResult &c = grid[kCrashIndex];
        std::printf("\ncrash point: mttr %.1f ms, tps %.0f -> %.0f "
                    "across the outage (%.1f MB redo)\n",
                    c.mttrMs, c.tpsPreCrash, c.tpsPostRecovery,
                    static_cast<double>(c.redoReplayedBytes) / 1024.0 /
                        1024.0);
    }
    bench::paperNote(
        "throughput degrades smoothly as fault intensity rises (wasted "
        "replay work, retry backoff, disk retries), and an instance "
        "crash costs one redo-window of downtime before throughput "
        "ramps back to steady state.");

    // --- degradation self-checks ---
    int rc = 0;
    for (std::size_t pi = 0; pi < kNumProfiles; ++pi) {
        for (std::size_t si = 1; si < kNumScales; ++si) {
            const double prev =
                grid[(si - 1) * kNumProfiles + pi].tps;
            const double cur = grid[si * kNumProfiles + pi].tps;
            if (!(cur < prev)) {
                std::fprintf(stderr,
                             "FAIL %s: tps should fall with the fault "
                             "scale (%.0f at %.1f vs %.0f at %.1f)\n",
                             kProfiles[pi].name, cur, kFaultScales[si],
                             prev, kFaultScales[si - 1]);
                rc = 3;
            }
        }
        const core::RunResult &worst =
            grid[(kNumScales - 1) * kNumProfiles + pi];
        if (worst.txnAborts == 0 || worst.txnRetries == 0) {
            std::fprintf(stderr,
                         "FAIL %s: the top fault scale should abort "
                         "and retry transactions\n",
                         kProfiles[pi].name);
            rc = 3;
        }
    }
    {
        const core::RunResult &c = grid[kCrashIndex];
        if (!(c.mttrMs > 0.0)) {
            std::fprintf(stderr, "FAIL crash point measured no "
                                 "recovery time\n");
            rc = 3;
        }
        if (!(c.tpsPostRecovery >= 0.95 * c.tpsPreCrash)) {
            std::fprintf(stderr,
                         "FAIL post-recovery tps %.0f below 95%% of "
                         "the pre-crash %.0f\n",
                         c.tpsPostRecovery, c.tpsPreCrash);
            rc = 3;
        }
    }
    if (rc == 0)
        std::printf("\ndegradation check: PASS (monotonic tps decay, "
                    "recovery back to >= 95%% of steady state)\n");
    return rc;
}
