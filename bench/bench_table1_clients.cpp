/**
 * @file
 * Regenerates the paper's Table 1: the number of concurrent clients
 * needed to keep CPU utilization above 90% at each (W, P), found with
 * the same search the authors ran by hand.
 */

#include <cstdio>

#include "analysis/table.hh"
#include "core/client_table.hh"
#include "core/client_tuner.hh"
#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    using analysis::TextTable;
    bench::banner("Table 1", "Number of clients at 90% CPU utilization");

    const unsigned warehouses[] = {10, 50, 100, 500, 800};
    const unsigned procs[] = {1, 2, 4};

    TextTable t({"W", "1P meas", "1P paper", "2P meas", "2P paper",
                 "4P meas", "4P paper"});
    for (const unsigned w : warehouses) {
        std::vector<std::string> row = {TextTable::num(std::uint64_t(w))};
        for (const unsigned p : procs) {
            core::OltpConfiguration cfg;
            cfg.warehouses = w;
            cfg.processors = p;
            const core::TunedClients tuned = core::ClientTuner::tune(cfg);
            std::string cell =
                TextTable::num(std::uint64_t(tuned.clients));
            if (tuned.ioBound) {
                char buf[48];
                std::snprintf(buf, sizeof(buf), "%s (io,%.0f%%)",
                              cell.c_str(), tuned.achievedUtil * 100);
                cell = buf;
            }
            row.push_back(cell);
            row.push_back(
                TextTable::num(std::uint64_t(core::paperClients(w, p))));
            std::fprintf(stderr, "[bench] tuned W=%u P=%u -> C=%u "
                         "(util %.2f, %u trials)\n",
                         w, p, tuned.clients, tuned.achievedUtil,
                         tuned.trials);
        }
        t.addRow(std::move(row));
    }
    t.print();
    bench::paperNote(
        "clients range 8-64, growing with W (to mask disk I/O) and "
        "with P; (io,..%) marks configurations our disk model could "
        "not drive to 90%.");
    return 0;
}
