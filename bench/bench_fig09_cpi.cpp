/**
 * @file
 * Regenerates Figure 9: Overall CPI trends.
 */

#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 9", "Overall CPI trends");
    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);
    bench::printMetricByW(
        study, "cycles per instruction",
        [](const core::RunResult &r) { return r.cpi; }, 3);
    bench::paperNote(
        "CPI rises steeply from 10 to ~100 W then levels off; higher P means higher CPI (bus queueing inflates the L3 miss penalty).");
    return 0;
}
