/**
 * @file
 * Regenerates Figure 3: CPU utilization split: OS and user.
 */

#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 3", "CPU utilization split: OS and user");
    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);
    bench::printMetricByW(
        study, "OS share of busy cycles (%)",
        [](const core::RunResult &r) { return r.osCycleShare * 100.0; }, 1);
    bench::paperNote(
        "OS share of CPU time grows from under 10% at small W to about 20% at 800 W, driven by disk I/O servicing and context switches.");
    return 0;
}
