/**
 * @file
 * Regenerates Figure 13: L3 misses per instruction.
 */

#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 13", "L3 misses per instruction");
    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);
    bench::printMetricByW(
        study, "L3 MPI (x1000)",
        [](const core::RunResult &r) { return r.mpi * 1e3; }, 3);
    bench::paperNote(
        "MPI rises sharply until ~100 W as the working set defeats the 1 MB L3, then grows only slowly; MPI does NOT grow with P (coherence misses are negligible).");
    return 0;
}
