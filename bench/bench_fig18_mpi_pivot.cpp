/**
 * @file
 * Regenerates Figure 18: the two-segment linear approximation of the
 * 4P L3-MPI trend, with its pivot point.
 */

#include <cstdio>

#include "analysis/piecewise.hh"
#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 18",
                  "Linear approximation models for the 4P L3 MPI trend");
    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);
    const auto &series = study.forProcessors(4);
    const analysis::PiecewiseFit fit = series.mpiFit();

    std::printf("cached region:  MPI = %.3e * W + %.5f  (r2 %.3f)\n",
                fit.cached.slope, fit.cached.intercept, fit.cached.r2);
    std::printf("scaled region:  MPI = %.3e * W + %.5f  (r2 %.3f)\n",
                fit.scaled.slope, fit.scaled.intercept, fit.scaled.r2);
    std::printf("pivot point:    %.0f warehouses (MPI %.5f)\n\n",
                fit.pivotX, fit.pivotY);

    std::printf("%-12s %12s %12s %12s\n", "warehouses", "measured(mK)",
                "model(mK)", "resid(mK)");
    for (const auto &r : series.points) {
        const double model = fit.predict(r.warehouses);
        std::printf("%-12u %12.3f %12.3f %+12.3f\n", r.warehouses,
                    r.mpi * 1e3, model * 1e3, (r.mpi - model) * 1e3);
    }

    bench::paperNote(
        "the MPI trend splits into the same cached/scaled regions; the "
        "paper's 4P MPI pivot is 144 W, slightly above its CPI pivot "
        "because CPI also captures the bus-latency growth.");
    return 0;
}
