/**
 * @file
 * Regenerates Figure 17: the two-segment linear approximation of the
 * 4P CPI trend, with the cached/scaled pivot point.
 */

#include <cstdio>

#include "analysis/piecewise.hh"
#include "support/bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace odbsim;
    bench::parseArgs(argc, argv);
    bench::banner("Figure 17",
                  "Linear approximation models for the 4P CPI trend");
    const core::StudyResult study =
        bench::sharedStudy(core::MachineKind::XeonQuadMp);
    const auto &series = study.forProcessors(4);
    const analysis::PiecewiseFit fit = series.cpiFit();

    std::printf("cached region:  CPI = %.6f * W + %.4f  (r2 %.3f)\n",
                fit.cached.slope, fit.cached.intercept, fit.cached.r2);
    std::printf("scaled region:  CPI = %.6f * W + %.4f  (r2 %.3f)\n",
                fit.scaled.slope, fit.scaled.intercept, fit.scaled.r2);
    std::printf("pivot point:    %.0f warehouses (CPI %.3f)\n\n",
                fit.pivotX, fit.pivotY);

    std::printf("%-12s %10s %10s %10s\n", "warehouses", "measured",
                "model", "resid");
    for (const auto &r : series.points) {
        const double model = fit.predict(r.warehouses);
        std::printf("%-12u %10.3f %10.3f %+10.3f\n", r.warehouses,
                    r.cpi, model, r.cpi - model);
    }

    bench::paperNote(
        "two linear regions describe the CPI trend accurately; their "
        "intersection — the pivot point — is 130 W for 4P in the "
        "paper's Table 5, the smallest configuration that behaves "
        "like a scaled setup.");
    return 0;
}
