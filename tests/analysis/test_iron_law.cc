/**
 * @file
 * Tests for the iron law of database performance (Section 3.4).
 */

#include <gtest/gtest.h>

#include "analysis/iron_law.hh"

namespace
{

using namespace odbsim::analysis;

TEST(IronLaw, BasicThroughput)
{
    // 1 CPU at 1.6 GHz, 1.6M instructions per txn at CPI 1:
    // exactly 1000 TPS.
    EXPECT_DOUBLE_EQ(ironLawTps(1, 1.6e9, 1.6e6, 1.0), 1000.0);
}

TEST(IronLaw, ScalesLinearlyWithProcessors)
{
    const double one = ironLawTps(1, 1.6e9, 1.3e6, 4.0);
    EXPECT_DOUBLE_EQ(ironLawTps(2, 1.6e9, 1.3e6, 4.0), 2 * one);
    EXPECT_DOUBLE_EQ(ironLawTps(4, 1.6e9, 1.3e6, 4.0), 4 * one);
}

TEST(IronLaw, InverseInIpxAndCpi)
{
    const double base = ironLawTps(4, 1.6e9, 1.0e6, 2.0);
    EXPECT_DOUBLE_EQ(ironLawTps(4, 1.6e9, 2.0e6, 2.0), base / 2);
    EXPECT_DOUBLE_EQ(ironLawTps(4, 1.6e9, 1.0e6, 4.0), base / 2);
    EXPECT_DOUBLE_EQ(ironLawTps(4, 1.6e9, 2.0e6, 4.0), base / 4);
}

TEST(IronLaw, DegenerateInputsYieldZero)
{
    EXPECT_DOUBLE_EQ(ironLawTps(4, 1.6e9, 0.0, 2.0), 0.0);
    EXPECT_DOUBLE_EQ(ironLawTps(4, 1.6e9, 1e6, 0.0), 0.0);
}

TEST(IronLaw, IpxInversionRoundTrips)
{
    const double tps = ironLawTps(4, 1.6e9, 1.3e6, 3.7);
    EXPECT_NEAR(ironLawIpx(4, 1.6e9, tps, 3.7), 1.3e6, 1e-3);
}

TEST(IronLaw, UtilizationScalesDelivery)
{
    const double full = ironLawTps(4, 1.6e9, 1.3e6, 4.0);
    EXPECT_DOUBLE_EQ(
        ironLawTpsAtUtilization(4, 1.6e9, 1.3e6, 4.0, 0.9),
        0.9 * full);
}

TEST(IronLaw, PaperScaleSanity)
{
    // The study's machine: 4 x 1.6 GHz, ~1M instr/txn, CPI ~4 at 90%
    // utilization -> throughput in the hundreds-to-low-thousands TPS.
    const double tps =
        ironLawTpsAtUtilization(4, 1.6e9, 1.0e6, 4.0, 0.9);
    EXPECT_GT(tps, 500.0);
    EXPECT_LT(tps, 3000.0);
}

} // namespace
