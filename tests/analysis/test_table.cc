/**
 * @file
 * Tests for the text-table formatter.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/table.hh"

namespace
{

using odbsim::analysis::TextTable;

TEST(TextTable, FormatsAlignedColumns)
{
    TextTable t({"a", "long_header"});
    t.addRow({"1", "2"});
    t.addRow({"100", "20000"});
    const std::string s = t.str();
    // Header, rule, two rows.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
    EXPECT_NE(s.find("long_header"), std::string::npos);
    EXPECT_NE(s.find("20000"), std::string::npos);
    // Every line has the same width (right-aligned grid).
    std::size_t prev = std::string::npos;
    std::size_t pos = 0;
    while (pos < s.size()) {
        const std::size_t nl = s.find('\n', pos);
        const std::size_t len = nl - pos;
        if (prev != std::string::npos)
            EXPECT_EQ(len, prev);
        prev = len;
        pos = nl + 1;
    }
}

TEST(TextTable, ShortRowsArePadded)
{
    TextTable t({"a", "b", "c"});
    t.addRow({"1"});
    EXPECT_NO_THROW(t.str());
}

TEST(TextTable, NumFormatsDoubles)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(3.14159, 0), "3");
    EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(TextTable, NumFormatsIntegers)
{
    EXPECT_EQ(TextTable::num(std::uint64_t(0)), "0");
    EXPECT_EQ(TextTable::num(std::uint64_t(123456789)), "123456789");
}

TEST(TextTable, ChainedAddRow)
{
    TextTable t({"x"});
    t.addRow({"1"}).addRow({"2"}).addRow({"3"});
    const std::string s = t.str();
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 5);
}

} // namespace
