/**
 * @file
 * Tests for least-squares line fitting and line intersection.
 */

#include <gtest/gtest.h>

#include <vector>

#include "analysis/linreg.hh"
#include "sim/rng.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::analysis;

TEST(LinearFit, ExactLineRecovered)
{
    const std::vector<double> xs = {1, 2, 3, 4, 5};
    const std::vector<double> ys = {5, 8, 11, 14, 17}; // y = 3x + 2.
    const LinearFit f = fitLine(xs, ys);
    EXPECT_NEAR(f.slope, 3.0, 1e-12);
    EXPECT_NEAR(f.intercept, 2.0, 1e-12);
    EXPECT_NEAR(f.r2, 1.0, 1e-12);
    EXPECT_NEAR(f.sse, 0.0, 1e-12);
    EXPECT_EQ(f.n, 5u);
}

TEST(LinearFit, PredictInterpolatesAndExtrapolates)
{
    const std::vector<double> xs = {0, 10};
    const std::vector<double> ys = {1, 21};
    const LinearFit f = fitLine(xs, ys);
    EXPECT_NEAR(f.predict(5), 11.0, 1e-12);
    EXPECT_NEAR(f.predict(100), 201.0, 1e-12);
}

TEST(LinearFit, FlatDataHasZeroSlope)
{
    const std::vector<double> xs = {1, 2, 3, 4};
    const std::vector<double> ys = {7, 7, 7, 7};
    const LinearFit f = fitLine(xs, ys);
    EXPECT_NEAR(f.slope, 0.0, 1e-12);
    EXPECT_NEAR(f.intercept, 7.0, 1e-12);
}

TEST(LinearFit, NoisyDataApproximatesTrueLine)
{
    Rng rng(5);
    std::vector<double> xs, ys;
    for (int i = 0; i < 200; ++i) {
        xs.push_back(i);
        ys.push_back(2.5 * i + 40.0 + rng.normal(0.0, 3.0));
    }
    const LinearFit f = fitLine(xs, ys);
    EXPECT_NEAR(f.slope, 2.5, 0.05);
    EXPECT_NEAR(f.intercept, 40.0, 3.0);
    EXPECT_GT(f.r2, 0.99);
    EXPECT_GT(f.sse, 0.0);
}

TEST(LinearFit, DegenerateVerticalDataFallsBackToMean)
{
    const std::vector<double> xs = {5, 5, 5, 5};
    const std::vector<double> ys = {1, 2, 3, 4};
    const LinearFit f = fitLine(xs, ys);
    EXPECT_DOUBLE_EQ(f.slope, 0.0);
    EXPECT_DOUBLE_EQ(f.intercept, 2.5);
}

TEST(LinearFit, TwoPointsExact)
{
    const std::vector<double> xs = {1, 3};
    const std::vector<double> ys = {2, 8};
    const LinearFit f = fitLine(xs, ys);
    EXPECT_NEAR(f.slope, 3.0, 1e-12);
    EXPECT_NEAR(f.intercept, -1.0, 1e-12);
}

TEST(IntersectX, CrossingLines)
{
    LinearFit a, b;
    a.slope = 2.0;
    a.intercept = 0.0;
    b.slope = -1.0;
    b.intercept = 9.0;
    EXPECT_NEAR(intersectX(a, b, -1.0), 3.0, 1e-12);
}

TEST(IntersectX, ParallelLinesUseFallback)
{
    LinearFit a, b;
    a.slope = 1.0;
    a.intercept = 0.0;
    b.slope = 1.0;
    b.intercept = 5.0;
    EXPECT_DOUBLE_EQ(intersectX(a, b, 42.0), 42.0);
}

/** Property: fit residual orthogonality — SSE is minimal at the fit. */
class LinRegProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(LinRegProperty, PerturbedLinesHaveLargerSse)
{
    Rng rng(GetParam());
    std::vector<double> xs, ys;
    for (int i = 0; i < 50; ++i) {
        xs.push_back(rng.uniform(0, 100));
        ys.push_back(1.7 * xs.back() - 3.0 + rng.normal(0, 2.0));
    }
    const LinearFit f = fitLine(xs, ys);
    auto sse_of = [&](double slope, double icept) {
        double sse = 0.0;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            const double r = ys[i] - (slope * xs[i] + icept);
            sse += r * r;
        }
        return sse;
    };
    EXPECT_LE(f.sse, sse_of(f.slope + 0.01, f.intercept) + 1e-9);
    EXPECT_LE(f.sse, sse_of(f.slope - 0.01, f.intercept) + 1e-9);
    EXPECT_LE(f.sse, sse_of(f.slope, f.intercept + 1.0) + 1e-9);
    EXPECT_LE(f.sse, sse_of(f.slope, f.intercept - 1.0) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinRegProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
