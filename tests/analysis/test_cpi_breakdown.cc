/**
 * @file
 * Tests for the Table 3/4 CPI decomposition.
 */

#include <gtest/gtest.h>

#include "analysis/cpi_breakdown.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::analysis;
using perfmon::SystemCounters;

SystemCounters
syntheticCounters()
{
    SystemCounters c;
    c.instructions = {8e8, 2e8};        // 1e9 instructions.
    c.cycles = {3.2e9, 0.8e9};          // CPI 4.0.
    c.branchMispredicts = {3.2e6, 0.8e6};
    c.tlbMisses = {2.8e6, 0.7e6};
    c.tcMisses = {6.4e6, 1.6e6};
    c.l2Misses = {1.6e7, 4e6};
    c.l3Misses = {8e6, 2e6};
    c.ioqCycles = 102.0;
    return c;
}

TEST(CpiBreakdown, ComponentsFollowTable4)
{
    const CpiComponents b =
        computeCpiBreakdown(syntheticCounters(), 102.0);
    EXPECT_DOUBLE_EQ(b.inst, 0.5);
    EXPECT_DOUBLE_EQ(b.branch, 4e6 * 20 / 1e9);
    EXPECT_DOUBLE_EQ(b.tlb, 3.5e6 * 20 / 1e9);
    EXPECT_DOUBLE_EQ(b.tc, 8e6 * 20 / 1e9);
    EXPECT_DOUBLE_EQ(b.l2, (2e7 - 1e7) * 16 / 1e9);
    EXPECT_DOUBLE_EQ(b.l3, 1e7 * 300 / 1e9);
    EXPECT_DOUBLE_EQ(b.total(), 4.0);
}

TEST(CpiBreakdown, OtherIsResidual)
{
    const CpiComponents b =
        computeCpiBreakdown(syntheticCounters(), 102.0);
    EXPECT_NEAR(b.other, 4.0 - b.computed(), 1e-12);
}

TEST(CpiBreakdown, IoqExcessInflatesL3Component)
{
    SystemCounters c = syntheticCounters();
    c.ioqCycles = 142.0; // 40 cycles of queueing above the 1P base.
    const CpiComponents loaded = computeCpiBreakdown(c, 102.0);
    const CpiComponents base =
        computeCpiBreakdown(syntheticCounters(), 102.0);
    EXPECT_DOUBLE_EQ(loaded.l3, 1e7 * 340 / 1e9);
    EXPECT_GT(loaded.l3, base.l3);
}

TEST(CpiBreakdown, IoqBelowBaseClampsToZeroExcess)
{
    SystemCounters c = syntheticCounters();
    c.ioqCycles = 90.0;
    const CpiComponents b = computeCpiBreakdown(c, 102.0);
    EXPECT_DOUBLE_EQ(b.l3, 1e7 * 300 / 1e9);
}

TEST(CpiBreakdown, L3ShareMatchesPaperScale)
{
    // With the synthetic numbers the L3 miss component is the largest
    // single contributor, as the paper reports (~60%).
    const CpiComponents b =
        computeCpiBreakdown(syntheticCounters(), 102.0);
    EXPECT_GT(b.l3Share(), 0.5);
    EXPECT_LT(b.l3Share(), 0.9);
}

TEST(CpiBreakdown, EmptyCountersYieldZero)
{
    const CpiComponents b = computeCpiBreakdown(SystemCounters{}, 102.0);
    EXPECT_DOUBLE_EQ(b.total(), 0.0);
    EXPECT_DOUBLE_EQ(b.l3Share(), 0.0);
}

TEST(CpiBreakdown, L2BelowL3ClampsToZero)
{
    // Malformed counters (L3 > L2) must not produce a negative L2
    // component.
    SystemCounters c = syntheticCounters();
    c.l2Misses = {1e6, 1e6};
    const CpiComponents b = computeCpiBreakdown(c, 102.0);
    EXPECT_DOUBLE_EQ(b.l2, 0.0);
}

TEST(CpiBreakdown, CustomStallCosts)
{
    cpu::StallCosts costs;
    costs.l3MissCycles = 150.0;
    const CpiComponents b =
        computeCpiBreakdown(syntheticCounters(), 102.0, costs);
    EXPECT_DOUBLE_EQ(b.l3, 1e7 * 150 / 1e9);
}

} // namespace
