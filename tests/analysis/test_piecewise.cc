/**
 * @file
 * Tests for the two-segment piecewise fit and pivot extraction — the
 * paper's Section 6 model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "analysis/piecewise.hh"
#include "sim/rng.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::analysis;

/** Synthetic cached/scaled curve with known pivot. */
void
makeCurve(double pivot_x, double steep, double shallow, double y0,
          std::vector<double> &xs, std::vector<double> &ys,
          Rng *noise = nullptr, double sigma = 0.0)
{
    for (double x : {10., 25., 50., 75., 100., 150., 200., 300., 400.,
                     600., 800.}) {
        xs.push_back(x);
        double y;
        if (x < pivot_x)
            y = y0 + steep * x;
        else
            y = y0 + steep * pivot_x + shallow * (x - pivot_x);
        if (noise)
            y += noise->normal(0.0, sigma);
        ys.push_back(y);
    }
}

TEST(PiecewiseFit, RecoversCleanPivot)
{
    std::vector<double> xs, ys;
    makeCurve(100.0, 0.02, 0.001, 2.0, xs, ys);
    const PiecewiseFit f = fitTwoSegment(xs, ys);
    EXPECT_NEAR(f.pivotX, 100.0, 8.0);
    EXPECT_NEAR(f.cached.slope, 0.02, 0.002);
    EXPECT_NEAR(f.scaled.slope, 0.001, 0.0005);
    EXPECT_GT(f.cached.slope, f.scaled.slope);
}

TEST(PiecewiseFit, PredictUsesCorrectSegment)
{
    std::vector<double> xs, ys;
    makeCurve(100.0, 0.02, 0.001, 2.0, xs, ys);
    const PiecewiseFit f = fitTwoSegment(xs, ys);
    EXPECT_NEAR(f.predict(50.0), 3.0, 0.1);  // Cached line.
    EXPECT_NEAR(f.predict(400.0), 4.3, 0.1); // Scaled line.
}

TEST(PiecewiseFit, ExtrapolateScaledFollowsRightLine)
{
    std::vector<double> xs, ys;
    makeCurve(100.0, 0.02, 0.001, 2.0, xs, ys);
    const PiecewiseFit f = fitTwoSegment(xs, ys);
    // True value at 1200 W: 2 + 2 + 0.001 * 1100 = 5.1.
    EXPECT_NEAR(extrapolateScaled(f, 1200.0), 5.1, 0.15);
}

TEST(PiecewiseFit, PivotClampedIntoObservedRange)
{
    // Nearly-parallel segments put the raw intersection far away; the
    // fit must clamp it into [min x, max x].
    std::vector<double> xs = {10, 25, 50, 100, 200, 400, 800};
    std::vector<double> ys = {1.0, 1.01, 1.30, 1.31, 1.32, 1.33, 1.34};
    const PiecewiseFit f = fitTwoSegment(xs, ys);
    EXPECT_GE(f.pivotX, 10.0);
    EXPECT_LE(f.pivotX, 800.0);
}

TEST(PiecewiseFit, PrefersSteepThenShallowStructure)
{
    std::vector<double> xs, ys;
    makeCurve(75.0, 0.03, 0.0005, 1.0, xs, ys);
    const PiecewiseFit f = fitTwoSegment(xs, ys);
    EXPECT_GT(f.cached.slope, f.scaled.slope);
}

TEST(PiecewiseFit, BreakIndexSeparatesSegments)
{
    std::vector<double> xs, ys;
    makeCurve(150.0, 0.02, 0.001, 2.0, xs, ys);
    const PiecewiseFit f = fitTwoSegment(xs, ys);
    EXPECT_GE(f.breakIndex, 2u);
    EXPECT_LE(f.breakIndex, xs.size() - 2);
    // Every point belongs to exactly one segment.
    EXPECT_EQ(f.cached.n + f.scaled.n, xs.size());
}

TEST(PiecewiseFit, RejectsTooFewPoints)
{
    std::vector<double> xs = {1, 2, 3};
    std::vector<double> ys = {1, 2, 3};
    EXPECT_DEATH({ fitTwoSegment(xs, ys); }, "at least 4 points");
}

TEST(PiecewiseFit, RejectsUnsortedX)
{
    std::vector<double> xs = {1, 3, 2, 4};
    std::vector<double> ys = {1, 2, 3, 4};
    EXPECT_DEATH({ fitTwoSegment(xs, ys); }, "sorted");
}

/**
 * Property: pivot recovery across noise seeds and pivot locations —
 * the paper's claim that the two-region model is robust.
 */
class PiecewiseRecoveryProperty
    : public ::testing::TestWithParam<std::tuple<double, int>>
{
};

TEST_P(PiecewiseRecoveryProperty, PivotRecoveredUnderNoise)
{
    const auto [pivot, seed] = GetParam();
    Rng rng(seed);
    std::vector<double> xs, ys;
    makeCurve(pivot, 0.025, 0.0012, 2.0, xs, ys, &rng, 0.03);
    const PiecewiseFit f = fitTwoSegment(xs, ys);
    // Recovered within 40% of the true pivot despite the noise.
    EXPECT_NEAR(f.pivotX, pivot, 0.4 * pivot);
    EXPECT_GT(f.cached.slope, f.scaled.slope);
}

INSTANTIATE_TEST_SUITE_P(
    PivotsAndSeeds, PiecewiseRecoveryProperty,
    ::testing::Combine(::testing::Values(80.0, 120.0, 150.0),
                       ::testing::Values(1, 2, 3, 4, 5)));

} // namespace
