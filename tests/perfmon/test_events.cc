/**
 * @file
 * Tests for the EMON event definitions and system-counter snapshots.
 */

#include <gtest/gtest.h>

#include "../support/mini_odb.hh"
#include "perfmon/events.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::perfmon;

TEST(EmonEvents, AllEventsNamed)
{
    for (unsigned e = 0; e < numEmonEvents; ++e) {
        const char *name = toString(static_cast<EmonEvent>(e));
        EXPECT_NE(std::string(name), "?");
    }
}

TEST(EmonEvents, PaperTable2Aliases)
{
    EXPECT_STREQ(toString(EmonEvent::Instructions), "instr_retired");
    EXPECT_STREQ(toString(EmonEvent::BranchMispredicts),
                 "mispred_branch_retired");
    EXPECT_STREQ(toString(EmonEvent::TlbMisses), "page_walk_type");
    EXPECT_STREQ(toString(EmonEvent::TcMisses), "BPU_fetch_request");
    EXPECT_STREQ(toString(EmonEvent::ClockCycles),
                 "Global_power_events");
    EXPECT_STREQ(toString(EmonEvent::BusUtilization),
                 "FSB_data_activity");
}

TEST(EventReading, Arithmetic)
{
    EventReading a{10.0, 4.0};
    EventReading b{3.0, 1.0};
    const EventReading d = a - b;
    EXPECT_DOUBLE_EQ(d.user, 7.0);
    EXPECT_DOUBLE_EQ(d.os, 3.0);
    EXPECT_DOUBLE_EQ(d.total(), 10.0);
    EventReading acc;
    acc += a;
    acc += b;
    EXPECT_DOUBLE_EQ(acc.total(), 18.0);
}

TEST(SystemCounters, ReadAggregatesRunningSystem)
{
    test::MiniOdb rig;
    rig.measure();
    const SystemCounters c = SystemCounters::read(rig.sys);
    EXPECT_GT(c.instructions.user, 0.0);
    EXPECT_GT(c.instructions.os, 0.0);
    EXPECT_GT(c.cycles.total(), c.instructions.total() * 0.5);
    EXPECT_GT(c.branchMispredicts.total(), 0.0);
    EXPECT_GT(c.tlbMisses.total(), 0.0);
    EXPECT_GT(c.tcMisses.total(), 0.0);
    EXPECT_GT(c.l2Misses.total(), 0.0);
    EXPECT_GT(c.l3Misses.total(), 0.0);
    // Misses are nested: L3 misses cannot exceed L2 misses.
    EXPECT_LE(c.l3Misses.total(), c.l2Misses.total());
}

TEST(SystemCounters, DeltaSubtractsAccumulators)
{
    test::MiniOdb rig;
    rig.measure(20 * tickPerMs, 50 * tickPerMs);
    const SystemCounters a = SystemCounters::read(rig.sys);
    rig.sys.runFor(50 * tickPerMs);
    const SystemCounters b = SystemCounters::read(rig.sys);
    const SystemCounters d = b.delta(a);
    EXPECT_GT(d.instructions.total(), 0.0);
    EXPECT_LT(d.instructions.total(), b.instructions.total());
    EXPECT_GE(d.cycles.total(), 0.0);
}

TEST(SystemCounters, DerivedMetricsConsistent)
{
    test::MiniOdb rig;
    rig.measure();
    const SystemCounters c = SystemCounters::read(rig.sys);
    EXPECT_GT(c.cpi(), 0.5);
    EXPECT_LT(c.cpi(), 50.0);
    EXPECT_GT(c.mpi(), 0.0);
    EXPECT_LT(c.mpi(), 0.1);
    // The aggregate CPI lies between the per-mode CPIs.
    const double lo = std::min(c.cpiUser(), c.cpiOs());
    const double hi = std::max(c.cpiUser(), c.cpiOs());
    EXPECT_GE(c.cpi(), lo - 1e-9);
    EXPECT_LE(c.cpi(), hi + 1e-9);
}

TEST(SystemCounters, EmptySystemIsZero)
{
    os::System sys(test::miniSystemConfig(1));
    const SystemCounters c = SystemCounters::read(sys);
    EXPECT_DOUBLE_EQ(c.instructions.total(), 0.0);
    EXPECT_DOUBLE_EQ(c.cpi(), 0.0);
    EXPECT_DOUBLE_EQ(c.mpi(), 0.0);
}

} // namespace
