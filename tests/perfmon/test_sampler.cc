/**
 * @file
 * Tests for the EMON round-robin sampler: extrapolated estimates must
 * track ground truth within sampling error, reproducing the paper's
 * measurement methodology (and its known OS-CPI noise).
 */

#include <gtest/gtest.h>

#include "../support/mini_odb.hh"
#include "perfmon/sampler.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::perfmon;

TEST(EmonSampler, DefaultScheduleCoversAllEvents)
{
    const auto groups = EmonSampler::defaultGroups();
    EXPECT_EQ(groups.size(), 5u);
    unsigned events = 0;
    for (const auto &g : groups)
        events += static_cast<unsigned>(g.events.size());
    EXPECT_GE(events, 9u); // Table 2's event set.
}

TEST(EmonSampler, AdvancesSimTimeBySchedule)
{
    test::MiniOdb rig;
    rig.sys.runFor(50 * tickPerMs);
    EmonSampler sampler;
    const Tick before = rig.sys.now();
    const SampledMeasurement m =
        sampler.measure(rig.sys, 10 * tickPerMs, 2);
    EXPECT_EQ(m.window, rig.sys.now() - before);
    EXPECT_EQ(m.window, 2u * 5u * 10 * tickPerMs);
    EXPECT_EQ(m.slicesPerGroup, 2u);
}

TEST(EmonSampler, EstimatesTrackGroundTruth)
{
    test::MiniOdb rig(2, 2, 6);
    rig.sys.runFor(100 * tickPerMs);
    rig.sys.beginMeasurement();
    EmonSampler sampler;
    const SampledMeasurement m =
        sampler.measure(rig.sys, 20 * tickPerMs, 6);
    ASSERT_GT(m.actual.instructions.total(), 0.0);
    // Each event was observed for 1/5 of the window and scaled x5:
    // estimates land within ~25% of truth for a steady workload.
    EXPECT_NEAR(m.estimated.instructions.total(),
                m.actual.instructions.total(),
                0.25 * m.actual.instructions.total());
    EXPECT_NEAR(m.estimated.cycles.total(), m.actual.cycles.total(),
                0.25 * m.actual.cycles.total());
    EXPECT_NEAR(m.estimated.l3Misses.total(),
                m.actual.l3Misses.total(),
                0.35 * m.actual.l3Misses.total());
}

TEST(EmonSampler, DerivedCpiFromSampledCounters)
{
    test::MiniOdb rig(2, 2, 6);
    rig.sys.runFor(100 * tickPerMs);
    rig.sys.beginMeasurement();
    EmonSampler sampler;
    const SampledMeasurement m =
        sampler.measure(rig.sys, 20 * tickPerMs, 6);
    // Sampled CPI within 30% of true CPI (instructions and cycles are
    // measured in the same slice, so their ratio is robust).
    EXPECT_NEAR(m.estimated.cpi(), m.actual.cpi(),
                0.30 * m.actual.cpi());
}

TEST(EmonSampler, FewerRoundsMeanNoisierOsEstimates)
{
    // The paper attributes its OS-CPI variance at small W to sampling;
    // verify the user-mode estimate (large population) is tighter than
    // the OS-mode one across repeated short schedules.
    double user_err = 0.0, os_err = 0.0;
    for (int seed = 0; seed < 3; ++seed) {
        test::MiniOdb rig(2, 2, 4 + seed);
        rig.sys.runFor(60 * tickPerMs);
        rig.sys.beginMeasurement();
        EmonSampler sampler;
        const SampledMeasurement m =
            sampler.measure(rig.sys, 4 * tickPerMs, 1);
        if (m.actual.instructions.user > 0.0) {
            user_err += std::abs(m.estimated.instructions.user -
                                 m.actual.instructions.user) /
                        m.actual.instructions.user;
        }
        if (m.actual.instructions.os > 0.0) {
            os_err += std::abs(m.estimated.instructions.os -
                               m.actual.instructions.os) /
                      m.actual.instructions.os;
        }
    }
    // Both noisy, but the workload keeps running: estimates exist.
    EXPECT_GE(os_err, 0.0);
    EXPECT_LT(user_err, 3.0);
}

TEST(EmonSampler, GaugesUseLatestWindow)
{
    test::MiniOdb rig;
    rig.sys.runFor(100 * tickPerMs);
    EmonSampler sampler;
    const SampledMeasurement m =
        sampler.measure(rig.sys, 10 * tickPerMs, 2);
    EXPECT_GE(m.estimated.ioqCycles, 0.0);
    EXPECT_GE(m.actual.ioqCycles, 90.0); // Around the 102-cycle base.
}

} // namespace
