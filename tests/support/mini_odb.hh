/**
 * @file
 * A miniature ODB deployment for integration-style tests: a small
 * machine, a 2-4 warehouse database with reduced cardinalities, and a
 * handful of clients. Runs a full warm + measure cycle in tens of
 * milliseconds of wall time.
 */

#ifndef ODBSIM_TESTS_SUPPORT_MINI_ODB_HH
#define ODBSIM_TESTS_SUPPORT_MINI_ODB_HH

#include <memory>

#include "db/database.hh"
#include "odb/workload.hh"
#include "os/system.hh"

namespace odbsim::test
{

inline os::SystemConfig
miniSystemConfig(unsigned cpus = 2)
{
    os::SystemConfig cfg;
    cfg.numCpus = cpus;
    cfg.core.samplePeriod = 16;
    cfg.disks.dataDisks = 4;
    cfg.disks.logDisks = 1;
    cfg.seed = 99;
    return cfg;
}

inline db::DatabaseConfig
miniDbConfig(unsigned warehouses = 2)
{
    db::DatabaseConfig cfg;
    cfg.schema.warehouses = warehouses;
    cfg.schema.customersPerDistrict = 300;
    cfg.schema.itemCount = 2000;
    cfg.schema.stockPerWarehouse = 2000;
    cfg.schema.initialOrdersPerDistrict = 100;
    cfg.schema.ordersPerDistrictCap = 400;
    cfg.schema.olPerDistrictCap = 4500;
    cfg.schema.newOrderCap = 200;
    cfg.schema.historyCap = 1800;
    cfg.schema.undoBlocks = 256;
    cfg.sgaFrames = 4096;
    return cfg;
}

/** Fully wired mini deployment. */
struct MiniOdb
{
    os::System sys;
    db::Database db;
    odb::OdbWorkload workload;

    explicit MiniOdb(unsigned cpus = 2, unsigned warehouses = 2,
                     unsigned clients = 4)
        : MiniOdb(miniSystemConfig(cpus), miniDbConfig(warehouses),
                  clients)
    {}

    /** Full-control variant: bring your own system and database
     *  configs (fault plans, checkpoint ages, disk shapes). */
    MiniOdb(const os::SystemConfig &syscfg,
            const db::DatabaseConfig &dbcfg, unsigned clients)
        : sys(syscfg), db(sys, dbcfg), workload(db, [clients] {
              odb::WorkloadConfig w;
              w.clients = clients;
              w.seed = 7;
              return w;
          }())
    {
        db.start();
        workload.start();
        db.instantWarm();
    }

    /** Warm up, reset, and measure for @p measure ticks. */
    void
    measure(Tick warmup = 50 * tickPerMs, Tick measure = 200 * tickPerMs)
    {
        sys.runFor(warmup);
        sys.beginMeasurement();
        workload.resetStats();
        db.resetStats();
        sys.runFor(measure);
    }
};

} // namespace odbsim::test

#endif // ODBSIM_TESTS_SUPPORT_MINI_ODB_HH
