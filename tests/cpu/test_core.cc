/**
 * @file
 * Tests for the CPU core timing model: the statistical Table 3
 * components, stream sampling, exact-reference set sampling, counter
 * attribution and determinism.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::cpu;

constexpr std::uint32_t S = 16;

mem::HierarchyConfig
smallHier()
{
    mem::HierarchyConfig h;
    h.l2 = {16 * KiB, 4, 64};
    h.l3 = {64 * KiB, 8, 64};
    return h;
}

mem::BusConfig
quietBus()
{
    mem::BusConfig b;
    b.windowTicks = tickPerSec;
    return b;
}

CoreConfig
baseCfg()
{
    CoreConfig c;
    c.samplePeriod = S;
    return c;
}

struct Rig
{
    mem::MemorySystem ms;
    CpuCore core;

    explicit Rig(const CoreConfig &cfg = baseCfg())
        : ms(1, smallHier(), quietBus(), cfg.samplePeriod),
          core(0, cfg, ms, 1234)
    {}
};

WorkItem
pureCompute(std::uint64_t instr)
{
    WorkItem wi;
    wi.instructions = instr;
    wi.codeBase = 0x1000'0000;
    wi.codeBytes = 64; // One line: negligible code misses after warm.
    return wi;
}

TEST(CpuCore, BaseCpiFloor)
{
    // With no memory streams at all the cycle count reduces to the
    // statistical components: 0.5 + branch + TLB per instruction.
    CoreConfig cfg = baseCfg();
    cfg.codeL2RefsPerInstr = 0.0;
    cfg.dataL2RefsPerInstr = 0.0;
    Rig rig(cfg);
    const auto res = rig.core.execute(pureCompute(1000000), 0);
    const double expect =
        1e6 * (0.5 + 0.20 * 0.02 * 20.0 + 0.0035 * 20.0);
    EXPECT_NEAR(res.cycles, expect, 1.0);
}

TEST(CpuCore, CountersAccumulatePerMode)
{
    Rig rig;
    WorkItem wi = pureCompute(50000);
    wi.mode = mem::ExecMode::Os;
    rig.core.execute(wi, 0);
    const auto &os = rig.core.counters()[mem::ExecMode::Os];
    const auto &user = rig.core.counters()[mem::ExecMode::User];
    EXPECT_DOUBLE_EQ(os.instructions, 50000.0);
    EXPECT_DOUBLE_EQ(user.instructions, 0.0);
    EXPECT_GT(os.cycles, 0.0);
    EXPECT_NEAR(os.branchMispredicts, 50000 * 0.004, 1e-9);
    EXPECT_NEAR(os.tlbMisses, 50000 * 0.0035, 1e-9);
}

TEST(CpuCore, CyclesToTicksUsesClock)
{
    Rig rig;
    const auto res = rig.core.execute(pureCompute(16000), 0);
    // 1.6 GHz -> 625 ps per cycle.
    EXPECT_NEAR(static_cast<double>(res.ticks), res.cycles * 625.0, 1.0);
}

TEST(CpuCore, ExtraCyclesLandInOther)
{
    CoreConfig cfg = baseCfg();
    cfg.codeL2RefsPerInstr = 0.0;
    cfg.dataL2RefsPerInstr = 0.0;
    Rig rig(cfg);
    WorkItem wi = pureCompute(1000);
    wi.extraCycles = 777.0;
    const auto res = rig.core.execute(wi, 0);
    const auto &ctr = rig.core.counters()[mem::ExecMode::User];
    EXPECT_DOUBLE_EQ(ctr.otherCycles, 777.0);
    EXPECT_GT(res.cycles, 777.0);
}

TEST(CpuCore, ExactRefsTouchSampledLinesOnce)
{
    CoreConfig cfg = baseCfg();
    cfg.codeL2RefsPerInstr = 0.0;
    cfg.dataL2RefsPerInstr = 0.0;
    Rig rig(cfg);
    WorkItem wi = pureCompute(100);
    // A span covering exactly 2 sampled lines (2 * 16 * 64 bytes).
    wi.addRef(0, 2 * S * 64, false);
    rig.core.execute(wi, 0);
    const auto &mc = rig.ms.cpu(0).counters(mem::ExecMode::User);
    EXPECT_EQ(mc.dataReads, 2 * S);
}

TEST(CpuCore, ExactRefOutsideSampledGridIsSkipped)
{
    CoreConfig cfg = baseCfg();
    cfg.codeL2RefsPerInstr = 0.0;
    cfg.dataL2RefsPerInstr = 0.0;
    Rig rig(cfg);
    WorkItem wi = pureCompute(100);
    // 64 bytes at offset 64: contains no line whose index is a
    // multiple of 16 -> never sampled.
    wi.addRef(64, 64, false);
    rig.core.execute(wi, 0);
    EXPECT_EQ(rig.ms.cpu(0).counters(mem::ExecMode::User).dataReads, 0u);
}

TEST(CpuCore, ExactRefReuseHitsCache)
{
    CoreConfig cfg = baseCfg();
    cfg.codeL2RefsPerInstr = 0.0;
    cfg.dataL2RefsPerInstr = 0.0;
    Rig rig(cfg);
    WorkItem wi = pureCompute(100);
    wi.addRef(0, 64, false);
    const auto first = rig.core.execute(wi, 0);
    const auto second = rig.core.execute(wi, 0);
    // The second execution hits in L2: far fewer stall cycles.
    EXPECT_LT(second.cycles, first.cycles);
    const auto &mc = rig.ms.cpu(0).counters(mem::ExecMode::User);
    EXPECT_EQ(mc.dataReads, 2 * S);
    EXPECT_EQ(mc.l3Misses, S); // Only the first touch missed.
}

TEST(CpuCore, CodeStreamGeneratesFetches)
{
    CoreConfig cfg = baseCfg();
    cfg.dataL2RefsPerInstr = 0.0;
    cfg.codeL2RefsPerInstr = 0.008;
    Rig rig(cfg);
    WorkItem wi = pureCompute(1000000);
    wi.codeBytes = 1536 * KiB;
    rig.core.execute(wi, 0);
    const auto &mc = rig.ms.cpu(0).counters(mem::ExecMode::User);
    // Expected fetches ~ instr * rate (scaled estimate).
    EXPECT_NEAR(static_cast<double>(mc.codeFetches), 8000.0, 16.0);
}

TEST(CpuCore, DataStreamRespectsRateScale)
{
    CoreConfig cfg = baseCfg();
    cfg.codeL2RefsPerInstr = 0.0;
    cfg.dataL2RefsPerInstr = 0.01;
    Rig rig(cfg);
    WorkItem wi = pureCompute(1000000);
    wi.privateBase = 0x4'0000'0000;
    wi.privateBytes = 64 * KiB;
    wi.dataRateScale = 2.0f;
    rig.core.execute(wi, 0);
    const auto &mc = rig.ms.cpu(0).counters(mem::ExecMode::User);
    const double refs =
        static_cast<double>(mc.dataReads + mc.dataWrites);
    EXPECT_NEAR(refs, 20000.0, 32.0);
}

TEST(CpuCore, MemoryStallsRaiseCpi)
{
    CoreConfig cfg = baseCfg();
    cfg.codeL2RefsPerInstr = 0.0;
    cfg.dataL2RefsPerInstr = 0.02;
    Rig rig(cfg);
    WorkItem wi = pureCompute(500000);
    // A private region far larger than the scaled L3: mostly misses.
    wi.privateBase = 0x4'0000'0000;
    wi.privateBytes = 16 * MiB;
    const auto res = rig.core.execute(wi, 0);
    const double cpi = res.cycles / 500000.0;
    EXPECT_GT(cpi, 2.0); // L3 misses at ~300 cycles dominate.
}

TEST(CpuCore, DeterministicAcrossIdenticalRuns)
{
    auto run = [] {
        Rig rig;
        WorkItem wi = pureCompute(200000);
        wi.privateBase = 0x4'0000'0000;
        wi.privateBytes = 64 * KiB;
        wi.codeBytes = 256 * KiB;
        double total = 0.0;
        for (int i = 0; i < 10; ++i)
            total += rig.core.execute(wi, i * 1000).cycles;
        return total;
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

TEST(CpuCore, MismatchedSampleFactorPanics)
{
    mem::MemorySystem ms(1, smallHier(), quietBus(), 8);
    CoreConfig cfg = baseCfg(); // samplePeriod 16 != 8.
    EXPECT_DEATH({ CpuCore core(0, cfg, ms, 1); }, "must match");
}

/** Property: cycles scale linearly with instruction count. */
class CoreLinearityProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(CoreLinearityProperty, CyclesScaleWithInstructions)
{
    CoreConfig cfg = baseCfg();
    cfg.codeL2RefsPerInstr = 0.0;
    cfg.dataL2RefsPerInstr = 0.0;
    Rig rig(cfg);
    const std::uint64_t n = static_cast<std::uint64_t>(GetParam());
    const auto res = rig.core.execute(pureCompute(n), 0);
    const double per_instr = res.cycles / static_cast<double>(n);
    EXPECT_NEAR(per_instr, 0.5 + 0.08 + 0.07, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CoreLinearityProperty,
                         ::testing::Values(1000, 10000, 100000, 1000000));

} // namespace
