/**
 * @file
 * Tests for the sharer/owner coherence directory.
 */

#include <gtest/gtest.h>

#include "mem/coherence.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::mem;

constexpr Addr line = 0x1000;

TEST(CoherenceDirectory, ReadFillHasNoRemoteEffects)
{
    CoherenceDirectory dir(4);
    const auto out = dir.onFill(0, line, false);
    EXPECT_FALSE(out.remoteDirty);
    EXPECT_EQ(out.invalidateMask, 0u);
    EXPECT_EQ(dir.trackedLines(), 1u);
}

TEST(CoherenceDirectory, SharedReadersAccumulate)
{
    CoherenceDirectory dir(4);
    dir.onFill(0, line, false);
    dir.onFill(1, line, false);
    dir.onFill(2, line, false);
    const SnoopState s = dir.snoop(line);
    EXPECT_TRUE(s.tracked);
    EXPECT_EQ(s.sharers, 0b111u);
    EXPECT_EQ(s.modifiedOwner, -1);
}

TEST(CoherenceDirectory, WriteFillInvalidatesSharers)
{
    CoherenceDirectory dir(4);
    dir.onFill(0, line, false);
    dir.onFill(1, line, false);
    const auto out = dir.onFill(2, line, true);
    EXPECT_EQ(out.invalidateMask, 0b011u);
    EXPECT_FALSE(out.remoteDirty);
    const SnoopState s = dir.snoop(line);
    EXPECT_EQ(s.sharers, 0b100u);
    EXPECT_EQ(s.modifiedOwner, 2);
    EXPECT_EQ(dir.invalidationsSent(), 2u);
}

TEST(CoherenceDirectory, RemoteDirtyReadIsCoherenceMiss)
{
    CoherenceDirectory dir(4);
    dir.onFill(0, line, true); // CPU 0 owns modified.
    const auto out = dir.onFill(1, line, false);
    EXPECT_TRUE(out.remoteDirty);
    EXPECT_EQ(out.remoteOwner, 0u);
    EXPECT_EQ(dir.coherenceMisses(), 1u);
    // The read downgraded the line to shared.
    EXPECT_EQ(dir.snoop(line).modifiedOwner, -1);
}

TEST(CoherenceDirectory, RemoteDirtyWriteTransfersOwnership)
{
    CoherenceDirectory dir(4);
    dir.onFill(0, line, true);
    const auto out = dir.onFill(1, line, true);
    EXPECT_TRUE(out.remoteDirty);
    EXPECT_EQ(out.remoteOwner, 0u);
    EXPECT_EQ(out.invalidateMask, 0b001u);
    EXPECT_EQ(dir.snoop(line).modifiedOwner, 1);
}

TEST(CoherenceDirectory, OwnFillIsNotCoherenceMiss)
{
    CoherenceDirectory dir(4);
    dir.onFill(0, line, true);
    const auto out = dir.onFill(0, line, true);
    EXPECT_FALSE(out.remoteDirty);
    EXPECT_EQ(dir.coherenceMisses(), 0u);
}

TEST(CoherenceDirectory, WriteHitUpgradesAndInvalidates)
{
    CoherenceDirectory dir(4);
    dir.onFill(0, line, false);
    dir.onFill(1, line, false);
    const std::uint32_t mask = dir.onWriteHit(0, line);
    EXPECT_EQ(mask, 0b010u);
    EXPECT_EQ(dir.snoop(line).modifiedOwner, 0);
}

TEST(CoherenceDirectory, EvictionRemovesSharer)
{
    CoherenceDirectory dir(4);
    dir.onFill(0, line, false);
    dir.onFill(1, line, false);
    dir.onEviction(0, line);
    EXPECT_EQ(dir.snoop(line).sharers, 0b010u);
    dir.onEviction(1, line);
    // Last sharer gone: entry reclaimed.
    EXPECT_FALSE(dir.snoop(line).tracked);
    EXPECT_EQ(dir.trackedLines(), 0u);
}

TEST(CoherenceDirectory, EvictionOfModifiedOwnerClearsOwnership)
{
    CoherenceDirectory dir(4);
    dir.onFill(0, line, true);
    dir.onEviction(0, line);
    EXPECT_FALSE(dir.snoop(line).tracked);
    // Subsequent read fill is an ordinary miss.
    EXPECT_FALSE(dir.onFill(1, line, false).remoteDirty);
}

TEST(CoherenceDirectory, DmaFillDropsTheLine)
{
    CoherenceDirectory dir(4);
    dir.onFill(0, line, true);
    dir.onDmaFill(line);
    EXPECT_FALSE(dir.snoop(line).tracked);
}

TEST(CoherenceDirectory, EvictionOfUntrackedLineIsNoop)
{
    CoherenceDirectory dir(4);
    dir.onEviction(3, 0xdead000);
    EXPECT_EQ(dir.trackedLines(), 0u);
}

TEST(CoherenceDirectory, StatsReset)
{
    CoherenceDirectory dir(2);
    dir.onFill(0, line, true);
    dir.onFill(1, line, true);
    EXPECT_GT(dir.coherenceMisses() + dir.invalidationsSent(), 0u);
    dir.resetStats();
    EXPECT_EQ(dir.coherenceMisses(), 0u);
    EXPECT_EQ(dir.invalidationsSent(), 0u);
    // State survives a stats reset.
    EXPECT_TRUE(dir.snoop(line).tracked);
}

TEST(CoherenceDirectory, ClearDropsAllState)
{
    CoherenceDirectory dir(2);
    dir.onFill(0, line, false);
    dir.onFill(0, line + 64, false);
    dir.clear();
    EXPECT_EQ(dir.trackedLines(), 0u);
}

} // namespace
