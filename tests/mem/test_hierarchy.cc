/**
 * @file
 * Tests for the scaled-tag-store memory system: sampled-line
 * compression, miss propagation, coherence integration, DMA
 * invalidation, counter attribution.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::mem;

constexpr std::uint32_t S = 16;

HierarchyConfig
smallHier()
{
    HierarchyConfig h;
    h.l2 = {16 * KiB, 4, 64};
    h.l3 = {64 * KiB, 8, 64};
    return h;
}

BusConfig
quietBus()
{
    BusConfig b;
    b.windowTicks = tickPerSec; // Effectively never recompute.
    return b;
}

/** n-th sampled line address (multiples of S lines). */
Addr
sline(std::uint64_t n)
{
    return n * 64 * S;
}

TEST(MemorySystem, FirstTouchMissesEverywhere)
{
    MemorySystem ms(1, smallHier(), quietBus(), S);
    const auto res =
        ms.access(0, sline(1), AccessKind::DataRead, ExecMode::User, 0);
    EXPECT_EQ(res.servicedBy, ServicedBy::Memory);
    EXPECT_TRUE(res.l3Miss());
}

TEST(MemorySystem, RepeatHitsInL2)
{
    MemorySystem ms(1, smallHier(), quietBus(), S);
    ms.access(0, sline(1), AccessKind::DataRead, ExecMode::User, 0);
    const auto res =
        ms.access(0, sline(1), AccessKind::DataRead, ExecMode::User, 0);
    EXPECT_EQ(res.servicedBy, ServicedBy::L2);
}

TEST(MemorySystem, L2VictimStillHitsL3)
{
    MemorySystem ms(1, smallHier(), quietBus(), S);
    // L2 scaled: 16 KiB/16 = 1 KiB = 16 lines, 4 sets. Touch a line,
    // then flood its L2 set; it must still hit in the larger L3.
    ms.access(0, sline(0), AccessKind::DataRead, ExecMode::User, 0);
    for (std::uint64_t n = 1; n <= 8; ++n) {
        // Same L2 set: line index multiple of 4 (sets) in compressed
        // space -> choose sampled lines 4n.
        ms.access(0, sline(4 * n), AccessKind::DataRead, ExecMode::User,
                  0);
    }
    const auto res =
        ms.access(0, sline(0), AccessKind::DataRead, ExecMode::User, 0);
    EXPECT_EQ(res.servicedBy, ServicedBy::L3);
}

TEST(MemorySystem, SampledLinesSpreadOverAllSets)
{
    // Regression test for the compression bug: consecutive sampled
    // lines must map to consecutive cache sets, not collide in a few.
    MemorySystem ms(1, smallHier(), quietBus(), S);
    // Scaled L3 = 4 KiB = 64 lines, 8 sets x 8 ways. 64 distinct
    // sampled lines must all be resident afterwards.
    for (std::uint64_t n = 0; n < 64; ++n)
        ms.access(0, sline(n), AccessKind::DataRead, ExecMode::User, 0);
    std::uint64_t hits = 0;
    for (std::uint64_t n = 0; n < 64; ++n) {
        const auto r =
            ms.access(0, sline(n), AccessKind::DataRead, ExecMode::User,
                      0);
        hits += !r.l3Miss();
    }
    EXPECT_EQ(hits, 64u);
}

TEST(MemorySystem, CountersScaleBySampleFactor)
{
    MemorySystem ms(1, smallHier(), quietBus(), S);
    ms.access(0, sline(1), AccessKind::DataRead, ExecMode::User, 0);
    ms.access(0, sline(2), AccessKind::DataWrite, ExecMode::User, 0);
    ms.access(0, sline(3), AccessKind::CodeFetch, ExecMode::Os, 0);
    const MemCounters &u = ms.cpu(0).counters(ExecMode::User);
    const MemCounters &o = ms.cpu(0).counters(ExecMode::Os);
    EXPECT_EQ(u.dataReads, S);
    EXPECT_EQ(u.dataWrites, S);
    EXPECT_EQ(u.l3Misses, 2 * S);
    EXPECT_EQ(o.codeFetches, S);
    EXPECT_EQ(o.l3Misses, S);
}

TEST(MemorySystem, RemoteDirtyLineIsCoherenceMiss)
{
    MemorySystem ms(2, smallHier(), quietBus(), S);
    ms.access(0, sline(5), AccessKind::DataWrite, ExecMode::User, 0);
    const auto res =
        ms.access(1, sline(5), AccessKind::DataRead, ExecMode::User, 0);
    EXPECT_EQ(res.servicedBy, ServicedBy::RemoteCache);
    EXPECT_EQ(ms.cpu(1).counters(ExecMode::User).coherenceMisses, S);
}

TEST(MemorySystem, WriteInvalidatesRemoteCopies)
{
    MemorySystem ms(2, smallHier(), quietBus(), S);
    ms.access(0, sline(5), AccessKind::DataRead, ExecMode::User, 0);
    ms.access(1, sline(5), AccessKind::DataRead, ExecMode::User, 0);
    // CPU 1 writes: CPU 0's copy must be invalidated.
    ms.access(1, sline(5), AccessKind::DataWrite, ExecMode::User, 0);
    const auto res =
        ms.access(0, sline(5), AccessKind::DataRead, ExecMode::User, 0);
    EXPECT_TRUE(res.l3Miss());
}

TEST(MemorySystem, DmaFillInvalidatesCachedLines)
{
    MemorySystem ms(1, smallHier(), quietBus(), S);
    ms.access(0, sline(2), AccessKind::DataRead, ExecMode::User, 0);
    // DMA overwrites an 8 KB region containing the line.
    ms.dmaFill(0, 8192, 0);
    const auto res =
        ms.access(0, sline(2), AccessKind::DataRead, ExecMode::User, 0);
    EXPECT_TRUE(res.l3Miss());
}

TEST(MemorySystem, DmaChargesBusTraffic)
{
    BusConfig b;
    b.windowTicks = 100 * tickPerUs;
    b.ewmaAlpha = 1.0;
    MemorySystem ms(1, smallHier(), b, S);
    ms.dmaDrain(64 * 1024, 0);
    ms.bus().maybeUpdate(b.windowTicks);
    EXPECT_GT(ms.bus().utilization(), 0.0);
}

TEST(MemorySystem, ResetStatsKeepsCacheState)
{
    MemorySystem ms(1, smallHier(), quietBus(), S);
    ms.access(0, sline(9), AccessKind::DataRead, ExecMode::User, 0);
    ms.resetStats();
    EXPECT_EQ(ms.cpu(0).counters(ExecMode::User).dataReads, 0u);
    const auto res =
        ms.access(0, sline(9), AccessKind::DataRead, ExecMode::User, 0);
    EXPECT_FALSE(res.l3Miss()); // Still cached.
}

TEST(MemorySystem, FlushAllDropsState)
{
    MemorySystem ms(1, smallHier(), quietBus(), S);
    ms.access(0, sline(9), AccessKind::DataRead, ExecMode::User, 0);
    ms.flushAll();
    const auto res =
        ms.access(0, sline(9), AccessKind::DataRead, ExecMode::User, 0);
    EXPECT_TRUE(res.l3Miss());
}

TEST(MemorySystem, TotalCountersSumModes)
{
    MemorySystem ms(1, smallHier(), quietBus(), S);
    ms.access(0, sline(1), AccessKind::DataRead, ExecMode::User, 0);
    ms.access(0, sline(2), AccessKind::DataRead, ExecMode::Os, 0);
    const MemCounters t = ms.cpu(0).totalCounters();
    EXPECT_EQ(t.dataReads, 2 * S);
    EXPECT_EQ(t.l2Accesses(), 2 * S);
}

TEST(MemorySystem, CapacityEvictionsUpdateDirectory)
{
    MemorySystem ms(2, smallHier(), quietBus(), S);
    // CPU 0 reads a line, then streams enough lines to evict it from
    // its own L3. CPU 1 writing the line afterwards must see no stale
    // sharers (no crash, no invalidation of CPU 0 needed).
    ms.access(0, sline(0), AccessKind::DataRead, ExecMode::User, 0);
    for (std::uint64_t n = 1; n <= 128; ++n)
        ms.access(0, sline(n * 8), AccessKind::DataRead, ExecMode::User,
                  0);
    ms.access(1, sline(0), AccessKind::DataWrite, ExecMode::User, 0);
    EXPECT_EQ(ms.directory().snoop(sline(0)).modifiedOwner, 1);
}

void
expectSameCounters(const MemCounters &a, const MemCounters &b)
{
    EXPECT_EQ(a.codeFetches, b.codeFetches);
    EXPECT_EQ(a.dataReads, b.dataReads);
    EXPECT_EQ(a.dataWrites, b.dataWrites);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.l3Misses, b.l3Misses);
    EXPECT_EQ(a.coherenceMisses, b.coherenceMisses);
}

TEST(MemorySystem, EpochAccessesMatchPerCallAccesses)
{
    // The batched entry point must be bit-exact versus one access()
    // call per reference: same per-access results, same counters, same
    // bus accounting — including when the advancing clock makes the
    // hoisted maybeUpdate recompute the bus window.
    BusConfig b;
    b.windowTicks = 10 * tickPerUs;
    MemorySystem plain(2, smallHier(), b, S);
    MemorySystem epoched(2, smallHier(), b, S);
    std::uint64_t x = 88172645463325252ull; // xorshift64
    for (int e = 0; e < 200; ++e) {
        const Tick now = static_cast<Tick>(e) * 3 * tickPerUs;
        const unsigned cpu = e & 1;
        const ExecMode mode = (e & 2) ? ExecMode::Os : ExecMode::User;
        auto epoch = epoched.beginEpoch(cpu, mode, now);
        for (int i = 0; i < 32; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            const Addr addr = sline(x % 512);
            const AccessKind kind = (i % 5 == 0) ? AccessKind::DataWrite
                                   : (i % 5 == 1)
                                       ? AccessKind::CodeFetch
                                       : AccessKind::DataRead;
            const auto ra = plain.access(cpu, addr, kind, mode, now);
            const auto rb = epoch.access(addr, kind);
            ASSERT_EQ(ra.servicedBy, rb.servicedBy)
                << "epoch " << e << " ref " << i;
        }
    }
    for (unsigned c = 0; c < 2; ++c) {
        expectSameCounters(plain.cpu(c).counters(ExecMode::User),
                           epoched.cpu(c).counters(ExecMode::User));
        expectSameCounters(plain.cpu(c).counters(ExecMode::Os),
                           epoched.cpu(c).counters(ExecMode::Os));
    }
    plain.bus().maybeUpdate(1000 * tickPerUs);
    epoched.bus().maybeUpdate(1000 * tickPerUs);
    EXPECT_EQ(plain.bus().utilization(), epoched.bus().utilization());
    EXPECT_EQ(plain.directory().trackedLines(),
              epoched.directory().trackedLines());
}

TEST(MemorySystem, SingleCpuFastPathMatchesIdleSecondCpu)
{
    // A 1-CPU system takes the directory fast path; a 2-CPU system
    // whose second CPU never issues a reference takes the general
    // path. CPU 0 must observe bit-identical behaviour in both.
    MemorySystem solo(1, smallHier(), quietBus(), S);
    MemorySystem duo(2, smallHier(), quietBus(), S);
    std::uint64_t x = 424242;
    for (int i = 0; i < 20'000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const Addr addr = sline(x % 256);
        const AccessKind kind =
            (i % 4 == 0) ? AccessKind::DataWrite : AccessKind::DataRead;
        const auto ra = solo.access(0, addr, kind, ExecMode::User, 0);
        const auto rb = duo.access(0, addr, kind, ExecMode::User, 0);
        ASSERT_EQ(ra.servicedBy, rb.servicedBy) << "ref " << i;
    }
    expectSameCounters(solo.cpu(0).counters(ExecMode::User),
                       duo.cpu(0).counters(ExecMode::User));
    // The fast path skips remote bookkeeping but must keep tracking
    // lines so DMA snoops and trackedLines() stay identical.
    ASSERT_EQ(solo.directory().trackedLines(),
              duo.directory().trackedLines());
    for (std::uint64_t n = 0; n < 256; ++n) {
        const SnoopState a = solo.directory().snoop(sline(n));
        const SnoopState b = duo.directory().snoop(sline(n));
        ASSERT_EQ(a.tracked, b.tracked) << "line " << n;
        ASSERT_EQ(a.sharers, b.sharers) << "line " << n;
        ASSERT_EQ(a.modifiedOwner, b.modifiedOwner) << "line " << n;
    }
    EXPECT_EQ(solo.cpu(0).counters(ExecMode::User).coherenceMisses, 0u);
}

TEST(MemorySystem, SingleCpuDmaInvalidationStillWorks)
{
    // Lines tracked via the fast path must still be found (and
    // dropped) by DMA snoops.
    MemorySystem ms(1, smallHier(), quietBus(), S);
    ms.access(0, sline(3), AccessKind::DataWrite, ExecMode::User, 0);
    ASSERT_TRUE(ms.directory().snoop(sline(3)).tracked);
    ms.dmaFill(sline(3), 64, 0);
    EXPECT_FALSE(ms.directory().snoop(sline(3)).tracked);
    EXPECT_TRUE(ms.access(0, sline(3), AccessKind::DataRead,
                          ExecMode::User, 0)
                    .l3Miss());
}

/** Parameterized: every power-of-two sample factor behaves sanely. */
class SampleFactorProperty : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SampleFactorProperty, WorkingSetWithinScaledCacheIsRetained)
{
    const std::uint32_t s = GetParam();
    MemorySystem ms(1, smallHier(), quietBus(), s);
    const std::uint64_t lines = (64 * KiB / s) / 64; // Scaled L3 lines.
    for (std::uint64_t n = 0; n < lines; ++n)
        ms.access(0, n * 64 * s, AccessKind::DataRead, ExecMode::User, 0);
    std::uint64_t miss = 0;
    for (std::uint64_t n = 0; n < lines; ++n) {
        miss += ms.access(0, n * 64 * s, AccessKind::DataRead,
                          ExecMode::User, 0)
                    .l3Miss();
    }
    EXPECT_EQ(miss, 0u);
}

INSTANTIATE_TEST_SUITE_P(Factors, SampleFactorProperty,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

} // namespace
