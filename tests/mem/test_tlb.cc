/**
 * @file
 * Tests for the standalone TLB model.
 */

#include <gtest/gtest.h>

#include "mem/tlb.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::mem;

TEST(Tlb, MissThenHitSamePage)
{
    Tlb tlb(64, 4);
    EXPECT_FALSE(tlb.access(0x1234));
    EXPECT_TRUE(tlb.access(0x1238));  // Same 4 KB page.
    EXPECT_TRUE(tlb.access(0x1fff));
    EXPECT_FALSE(tlb.access(0x2000)); // Next page.
}

TEST(Tlb, CapacityEviction)
{
    Tlb tlb(4, 4); // Fully associative, 4 entries.
    for (Addr p = 0; p < 5; ++p)
        tlb.access(p * 4096);
    // Page 0 was LRU and must have been evicted.
    EXPECT_FALSE(tlb.access(0));
}

TEST(Tlb, CountsMisses)
{
    Tlb tlb(64, 4);
    tlb.access(0x0000);
    tlb.access(0x1000);
    tlb.access(0x0000);
    EXPECT_EQ(tlb.accesses(), 3u);
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(Tlb, FlushDropsTranslations)
{
    Tlb tlb(64, 4);
    tlb.access(0x5000);
    tlb.flush();
    EXPECT_FALSE(tlb.access(0x5000));
}

TEST(Tlb, ResetStats)
{
    Tlb tlb(64, 4);
    tlb.access(0x5000);
    tlb.resetStats();
    EXPECT_EQ(tlb.accesses(), 0u);
    EXPECT_EQ(tlb.misses(), 0u);
    EXPECT_TRUE(tlb.access(0x5000)); // Entry survives.
}

} // namespace
