/**
 * @file
 * Tests for the front-side-bus / IOQ queueing model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mem/bus.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::mem;

BusConfig
cfg()
{
    BusConfig c;
    c.cpuFreqHz = 1.6e9;
    c.baseTransactionCycles = 102.0;
    c.lineOccupancyCycles = 40.0;
    c.windowTicks = 100 * tickPerUs;
    c.ewmaAlpha = 1.0; // No smoothing: deterministic tests.
    return c;
}

/** Cycles in one window at 1.6 GHz. */
constexpr double windowCycles = 160000.0;

TEST(FrontSideBus, UnloadedBusHasBaseLatency)
{
    FrontSideBus bus(cfg());
    bus.maybeUpdate(cfg().windowTicks);
    EXPECT_DOUBLE_EQ(bus.utilization(), 0.0);
    EXPECT_DOUBLE_EQ(bus.ioqCycles(), 102.0);
    EXPECT_DOUBLE_EQ(bus.queueWaitCycles(), 0.0);
}

TEST(FrontSideBus, UtilizationMatchesOfferedLoad)
{
    FrontSideBus bus(cfg());
    // 400 line transfers x 40 cycles = 16000 busy cycles = 10%.
    bus.addLineTransfers(400);
    bus.maybeUpdate(cfg().windowTicks);
    EXPECT_NEAR(bus.utilization(), 0.10, 1e-9);
}

TEST(FrontSideBus, WaitGrowsSuperlinearlyWithLoad)
{
    FrontSideBus a(cfg()), b(cfg());
    a.addLineTransfers(windowCycles * 0.2 / 40.0);
    a.maybeUpdate(cfg().windowTicks);
    b.addLineTransfers(windowCycles * 0.8 / 40.0);
    b.maybeUpdate(cfg().windowTicks);
    EXPECT_GT(a.queueWaitCycles(), 0.0);
    // 4x the load must yield far more than 4x the wait.
    EXPECT_GT(b.queueWaitCycles(), 6.0 * a.queueWaitCycles());
}

TEST(FrontSideBus, UtilizationClamped)
{
    FrontSideBus bus(cfg());
    bus.addLineTransfers(1e9);
    bus.maybeUpdate(cfg().windowTicks);
    EXPECT_LE(bus.utilization(), cfg().maxUtilization);
    EXPECT_GT(bus.queueWaitCycles(), 0.0);
    EXPECT_TRUE(std::isfinite(bus.queueWaitCycles()));
}

TEST(FrontSideBus, NoUpdateBeforeWindowElapses)
{
    FrontSideBus bus(cfg());
    bus.addLineTransfers(1000);
    bus.maybeUpdate(cfg().windowTicks / 2);
    EXPECT_DOUBLE_EQ(bus.utilization(), 0.0); // Not yet recomputed.
    bus.maybeUpdate(cfg().windowTicks);
    EXPECT_GT(bus.utilization(), 0.0);
}

TEST(FrontSideBus, DmaTrafficCountsTowardUtilization)
{
    FrontSideBus bus(cfg());
    bus.addDmaBytes(100 * 1024.0); // 100 KB x 160 cycles = 16000 = 10%.
    bus.maybeUpdate(cfg().windowTicks);
    EXPECT_NEAR(bus.utilization(), 0.10, 1e-9);
}

TEST(FrontSideBus, LoadResetsEachWindow)
{
    FrontSideBus bus(cfg());
    bus.addLineTransfers(400);
    bus.maybeUpdate(cfg().windowTicks);
    const double u1 = bus.utilization();
    // Second window with no traffic: utilization decays to zero
    // (alpha = 1 -> immediately).
    bus.maybeUpdate(2 * cfg().windowTicks);
    EXPECT_LT(bus.utilization(), u1);
    EXPECT_DOUBLE_EQ(bus.utilization(), 0.0);
}

TEST(FrontSideBus, EwmaSmoothing)
{
    BusConfig c = cfg();
    c.ewmaAlpha = 0.5;
    FrontSideBus bus(c);
    bus.addLineTransfers(windowCycles * 0.4 / 40.0); // 40% raw.
    bus.maybeUpdate(c.windowTicks);
    EXPECT_NEAR(bus.utilization(), 0.20, 1e-9); // Half-way from 0.
}

TEST(FrontSideBus, StatsTrackTimeSeries)
{
    FrontSideBus bus(cfg());
    bus.addLineTransfers(100);
    bus.maybeUpdate(cfg().windowTicks);
    bus.addLineTransfers(100);
    bus.maybeUpdate(2 * cfg().windowTicks);
    EXPECT_EQ(bus.utilizationStat().count(), 2u);
    EXPECT_EQ(bus.ioqStat().count(), 2u);
    bus.resetStats();
    EXPECT_EQ(bus.utilizationStat().count(), 0u);
}

TEST(FrontSideBus, HigherCvMeansLongerWaits)
{
    BusConfig lo = cfg();
    lo.serviceCv2 = 0.0;
    BusConfig hi = cfg();
    hi.serviceCv2 = 2.0;
    FrontSideBus a(lo), b(hi);
    const double txns = windowCycles * 0.5 / 40.0;
    a.addLineTransfers(txns);
    b.addLineTransfers(txns);
    a.maybeUpdate(cfg().windowTicks);
    b.maybeUpdate(cfg().windowTicks);
    EXPECT_NEAR(b.queueWaitCycles(), 3.0 * a.queueWaitCycles(), 1e-9);
}

} // namespace
