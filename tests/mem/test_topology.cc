/**
 * @file
 * Tests for the multi-socket topology model: S=1 knob inertness (the
 * bit-exactness contract of docs/TOPOLOGY.md), hop geometry, the
 * first-touch home map, remote-penalty accounting, and DMA re-homing.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"
#include "mem/topology.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::mem;

constexpr std::uint32_t S = 16;

HierarchyConfig
smallHier()
{
    HierarchyConfig h;
    h.l2 = {16 * KiB, 4, 64};
    h.l3 = {64 * KiB, 8, 64};
    return h;
}

BusConfig
quietBus()
{
    BusConfig b;
    b.windowTicks = tickPerSec; // Effectively never recompute.
    return b;
}

/** n-th sampled line address (multiples of S lines). */
Addr
sline(std::uint64_t n)
{
    return n * 64 * S;
}

TEST(Topology, SocketHopsGeometry)
{
    // Single socket: no hops, ever.
    EXPECT_EQ(socketHops(0, 0, 1), 0u);
    // Up to four sockets: fully connected, one hop between any pair.
    EXPECT_EQ(socketHops(0, 3, 4), 1u);
    EXPECT_EQ(socketHops(2, 1, 4), 1u);
    EXPECT_EQ(socketHops(1, 1, 4), 0u);
    // Beyond four: ring, minimum distance either way around.
    EXPECT_EQ(socketHops(0, 1, 8), 1u);
    EXPECT_EQ(socketHops(0, 4, 8), 4u);
    EXPECT_EQ(socketHops(0, 5, 8), 3u);
    EXPECT_EQ(socketHops(7, 0, 8), 1u);
}

TEST(Topology, SingleSocketKnobsAreInert)
{
    // The S=1 contract: with sockets == 1 every other topology knob is
    // dead — results, stall cycles and counters are bit-identical to a
    // default-constructed system on an identical access stream.
    TopologyConfig absurd;
    absurd.sockets = 1;
    absurd.hopLatencyCycles = 1e6;
    absurd.linkOccupancyCycles = 1e6;
    absurd.linkDmaOccupancyCyclesPerKb = 1e6;

    MemorySystem legacy(2, smallHier(), quietBus(), S);
    MemorySystem knobbed(2, smallHier(), quietBus(), S, absurd);
    EXPECT_FALSE(knobbed.multiSocket());
    EXPECT_EQ(knobbed.interconnect(), nullptr);

    std::uint64_t x = 88172645463325252ull; // xorshift64
    for (int i = 0; i < 20'000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const Addr addr = sline(x % 512);
        const unsigned cpu = x & 1;
        const AccessKind kind =
            (i % 4 == 0) ? AccessKind::DataWrite : AccessKind::DataRead;
        const auto ra =
            legacy.access(cpu, addr, kind, ExecMode::User, 0);
        const auto rb =
            knobbed.access(cpu, addr, kind, ExecMode::User, 0);
        ASSERT_EQ(ra.servicedBy, rb.servicedBy) << "ref " << i;
        ASSERT_EQ(ra.memStallExtraCycles, rb.memStallExtraCycles)
            << "ref " << i;
    }
    for (unsigned c = 0; c < 2; ++c) {
        const MemCounters &a = legacy.cpu(c).counters(ExecMode::User);
        const MemCounters &b = knobbed.cpu(c).counters(ExecMode::User);
        EXPECT_EQ(a.l2Misses, b.l2Misses);
        EXPECT_EQ(a.l3Misses, b.l3Misses);
        EXPECT_EQ(a.coherenceMisses, b.coherenceMisses);
    }
    EXPECT_EQ(knobbed.remoteMisses(), 0u);
    EXPECT_EQ(knobbed.remoteMissShare(), 0.0);
    EXPECT_EQ(knobbed.linkUtilizationMean(), 0.0);
}

TEST(Topology, SocketOfSplitsCpusEvenly)
{
    TopologyConfig topo;
    topo.sockets = 2;
    MemorySystem ms(4, smallHier(), quietBus(), S, topo);
    EXPECT_TRUE(ms.multiSocket());
    EXPECT_EQ(ms.numSockets(), 2u);
    EXPECT_EQ(ms.socketOf(0), 0u);
    EXPECT_EQ(ms.socketOf(1), 0u);
    EXPECT_EQ(ms.socketOf(2), 1u);
    EXPECT_EQ(ms.socketOf(3), 1u);
    EXPECT_EQ(&ms.busAt(0), &ms.bus());
    EXPECT_NE(&ms.busAt(1), &ms.bus());
    EXPECT_NE(ms.interconnect(), nullptr);
}

TEST(Topology, HomeInterleaveAndRegionOverride)
{
    TopologyConfig topo;
    topo.sockets = 2;
    MemorySystem ms(2, smallHier(), quietBus(), S, topo);
    const Addr page = Addr{1} << topo.pageShift;
    // Default: page-interleaved.
    EXPECT_EQ(ms.homeSocket(0), 0u);
    EXPECT_EQ(ms.homeSocket(page), 1u);
    EXPECT_EQ(ms.homeSocket(2 * page), 0u);
    // First-touch override wins, later calls overwrite.
    ms.setHomeRegion(0, 2 * page, 1);
    EXPECT_EQ(ms.homeSocket(0), 1u);
    EXPECT_EQ(ms.homeSocket(page), 1u);
    EXPECT_EQ(ms.homeSocket(2 * page), 0u); // Outside the region.
    ms.setHomeRegion(0, page, 0);
    EXPECT_EQ(ms.homeSocket(0), 0u);
    EXPECT_EQ(ms.homeSocket(page), 1u);
}

TEST(Topology, RemoteMissPaysHopLatencyLocalDoesNot)
{
    TopologyConfig topo;
    topo.sockets = 2;
    topo.hopLatencyCycles = 300.0;
    MemorySystem ms(2, smallHier(), quietBus(), S, topo);
    // CPU 0 lives on socket 0. Home two disjoint regions explicitly.
    ms.setHomeRegion(sline(0), 64, 0);
    ms.setHomeRegion(sline(64), 64, 1);

    const auto local =
        ms.access(0, sline(0), AccessKind::DataRead, ExecMode::User, 0);
    ASSERT_TRUE(local.l3Miss());
    EXPECT_EQ(local.memStallExtraCycles, 0.0); // Quiet local bus.

    const auto remote = ms.access(0, sline(64), AccessKind::DataRead,
                                  ExecMode::User, 0);
    ASSERT_TRUE(remote.l3Miss());
    EXPECT_EQ(remote.memStallExtraCycles, 300.0); // One hop, idle link.

    EXPECT_EQ(ms.remoteMisses(), std::uint64_t{S});
    EXPECT_GT(ms.remoteMissShare(), 0.0);
}

TEST(Topology, RemoteIsNeverCheaperAndEqualAtZeroPenalty)
{
    // Sweep the hop latency: the remote extra stall must be monotone
    // in the knob and exactly equal to the local cost when the
    // interconnect is free.
    double prev = -1.0;
    for (const double hop : {0.0, 50.0, 300.0, 800.0}) {
        TopologyConfig topo;
        topo.sockets = 2;
        topo.hopLatencyCycles = hop;
        topo.linkOccupancyCycles = 0.0;
        MemorySystem ms(2, smallHier(), quietBus(), S, topo);
        ms.setHomeRegion(sline(0), 64, 0);
        ms.setHomeRegion(sline(64), 64, 1);
        const auto local = ms.access(0, sline(0), AccessKind::DataRead,
                                     ExecMode::User, 0);
        const auto remote = ms.access(0, sline(64),
                                      AccessKind::DataRead,
                                      ExecMode::User, 0);
        EXPECT_GE(remote.memStallExtraCycles,
                  local.memStallExtraCycles)
            << "hop " << hop;
        if (hop == 0.0) {
            EXPECT_EQ(remote.memStallExtraCycles,
                      local.memStallExtraCycles);
        }
        EXPECT_GT(remote.memStallExtraCycles, prev) << "hop " << hop;
        prev = remote.memStallExtraCycles;
        if (hop == 0.0)
            prev = -1.0; // 0-hop equals local; restart the chain.
    }
}

TEST(Topology, DmaReHomingMigratesDirectoryState)
{
    TopologyConfig topo;
    topo.sockets = 2;
    MemorySystem ms(2, smallHier(), quietBus(), S, topo);
    const Addr line = sline(0);
    ms.setHomeRegion(line, 64, 0);
    // CPU 1 (socket 1) caches the line; it is tracked by socket 0's
    // directory (its home).
    ms.access(1, line, AccessKind::DataWrite, ExecMode::User, 0);
    ASSERT_TRUE(ms.directoryAt(0).snoop(line).tracked);
    // DMA refills the region and re-homes it to socket 1: the stale
    // entry must leave the old home's directory, the cached copy must
    // be invalidated, and the home must move.
    ms.dmaFill(line, 64, 0, 1);
    EXPECT_FALSE(ms.directoryAt(0).snoop(line).tracked);
    EXPECT_EQ(ms.homeSocket(line), 1u);
    const auto res =
        ms.access(1, line, AccessKind::DataRead, ExecMode::User, 0);
    EXPECT_TRUE(res.l3Miss());
    EXPECT_TRUE(ms.directoryAt(1).snoop(line).tracked);
}

TEST(Topology, EpochPathMatchesPerCallPathMultiSocket)
{
    // The hoisted-epoch entry point must stay bit-exact with per-call
    // access() when the topology paths are engaged.
    TopologyConfig topo;
    topo.sockets = 2;
    BusConfig b;
    b.windowTicks = 10 * tickPerUs;
    MemorySystem plain(2, smallHier(), b, S, topo);
    MemorySystem epoched(2, smallHier(), b, S, topo);
    std::uint64_t x = 424242;
    for (int e = 0; e < 100; ++e) {
        const Tick now = static_cast<Tick>(e) * 3 * tickPerUs;
        const unsigned cpu = e & 1;
        auto epoch = epoched.beginEpoch(cpu, ExecMode::User, now);
        for (int i = 0; i < 32; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            const Addr addr = sline(x % 512);
            const AccessKind kind = (i % 5 == 0)
                                        ? AccessKind::DataWrite
                                        : AccessKind::DataRead;
            const auto ra =
                plain.access(cpu, addr, kind, ExecMode::User, now);
            const auto rb = epoch.access(addr, kind);
            ASSERT_EQ(ra.servicedBy, rb.servicedBy)
                << "epoch " << e << " ref " << i;
            ASSERT_EQ(ra.memStallExtraCycles, rb.memStallExtraCycles)
                << "epoch " << e << " ref " << i;
        }
    }
    EXPECT_EQ(plain.remoteMisses(), epoched.remoteMisses());
}

} // namespace
