/**
 * @file
 * Tests for the simulated address map: region disjointness and helper
 * arithmetic.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/addr_space.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::mem::addrmap;

TEST(AddrSpace, RegionsAreDisjoint)
{
    struct Region
    {
        Addr base;
        std::uint64_t bytes;
    };
    // The SGA frame region extends to the largest buffer cache used
    // (~400k frames); the PGA region sits far above it.
    const std::vector<Region> regions = {
        {kernelCodeBase, kernelCodeBytes},
        {kernelDataBase, kernelDataBytes},
        {dbCodeBase, dbCodeBytes},
        {dbSharedBase, dbSharedBytes},
        {sgaMetaBase, 500000ull * sgaMetaBytesPerFrame},
        {logBufferBase, logBufferBytes},
        {lockTableBase, lockTableBytes},
        {sgaFrameBase, 400000ull * 8192},
        {processPrivateBase(0), 128 * pgaStride},
    };
    for (std::size_t i = 0; i < regions.size(); ++i) {
        for (std::size_t j = i + 1; j < regions.size(); ++j) {
            const bool overlap =
                regions[i].base < regions[j].base + regions[j].bytes &&
                regions[j].base < regions[i].base + regions[i].bytes;
            EXPECT_FALSE(overlap) << "regions " << i << " and " << j;
        }
    }
}

TEST(AddrSpace, FrameAddressesAreFrameAligned)
{
    EXPECT_EQ(frameAddr(0, 8192), sgaFrameBase);
    EXPECT_EQ(frameAddr(7, 8192), sgaFrameBase + 7 * 8192);
    EXPECT_EQ(frameAddr(7, 8192) % 8192, sgaFrameBase % 8192);
}

TEST(AddrSpace, MetaAddressesStride64)
{
    EXPECT_EQ(frameMetaAddr(0), sgaMetaBase);
    EXPECT_EQ(frameMetaAddr(3) - frameMetaAddr(2), 64u);
}

TEST(AddrSpace, ProcessRegionsDoNotOverlap)
{
    for (std::uint64_t pid = 0; pid < 64; ++pid) {
        const Addr a = processPrivateBase(pid);
        const Addr b = processPrivateBase(pid + 1);
        EXPECT_GE(b, a + pgaHotBytes);
    }
}

TEST(AddrSpace, HotBytesFitTheStride)
{
    EXPECT_LE(pgaHotBytes, pgaStride);
}

} // namespace
