/**
 * @file
 * Unit and property tests for the set-associative tag store: hits,
 * LRU eviction, dirty writebacks, invalidation.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::mem;

CacheGeometry
tinyGeom()
{
    // 2 sets x 2 ways x 64 B lines.
    return CacheGeometry{256, 2, 64};
}

/** Line address in set @p set with tag index @p t (for a 2-set cache). */
Addr
addrFor(std::uint64_t set, std::uint64_t t, std::uint64_t sets = 2)
{
    return (t * sets + set) * 64;
}

TEST(CacheGeometry, DerivedQuantities)
{
    CacheGeometry g{1 * MiB, 8, 64};
    EXPECT_EQ(g.numLines(), 16384u);
    EXPECT_EQ(g.numSets(), 2048u);
}

TEST(SetAssocCache, ColdMissThenHit)
{
    SetAssocCache c("t", tinyGeom());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1020, false).hit); // Same line.
    EXPECT_EQ(c.accesses(), 3u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocCache, LruEvictsLeastRecent)
{
    SetAssocCache c("t", tinyGeom());
    const Addr a = addrFor(0, 1), b = addrFor(0, 2), d = addrFor(0, 3);
    c.access(a, false);
    c.access(b, false);
    c.access(a, false); // a most recent; b is LRU.
    const auto res = c.access(d, false);
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(res.evicted);
    EXPECT_EQ(res.evictedLineAddr, b);
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
}

TEST(SetAssocCache, DirtyVictimReportsWriteback)
{
    SetAssocCache c("t", tinyGeom());
    c.access(addrFor(0, 1), true);
    c.access(addrFor(0, 2), false);
    const auto res = c.access(addrFor(0, 3), false); // Evicts dirty #1.
    EXPECT_TRUE(res.evictedDirty);
    EXPECT_EQ(res.evictedLineAddr, addrFor(0, 1));
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(SetAssocCache, WriteHitMarksDirty)
{
    SetAssocCache c("t", tinyGeom());
    c.access(0x40, false);
    EXPECT_FALSE(c.probeDirty(0x40));
    c.access(0x40, true);
    EXPECT_TRUE(c.probeDirty(0x40));
}

TEST(SetAssocCache, SetsAreIndependent)
{
    SetAssocCache c("t", tinyGeom());
    // Fill set 0 beyond capacity; set 1 lines must survive.
    c.access(addrFor(1, 1), false);
    for (std::uint64_t t = 1; t <= 3; ++t)
        c.access(addrFor(0, t), false);
    EXPECT_TRUE(c.probe(addrFor(1, 1)));
}

TEST(SetAssocCache, InvalidateRemovesLine)
{
    SetAssocCache c("t", tinyGeom());
    c.access(0x80, true);
    EXPECT_TRUE(c.invalidate(0x80)); // Returns dirty flag.
    EXPECT_FALSE(c.probe(0x80));
    EXPECT_FALSE(c.invalidate(0x80)); // Second invalidate: not present.
    EXPECT_FALSE(c.access(0x80, false).hit);
}

TEST(SetAssocCache, FlushDropsEverything)
{
    SetAssocCache c("t", tinyGeom());
    for (std::uint64_t t = 0; t < 4; ++t)
        c.access(addrFor(t % 2, t), false);
    EXPECT_GT(c.validLines(), 0u);
    c.flush();
    EXPECT_EQ(c.validLines(), 0u);
    EXPECT_FALSE(c.probe(addrFor(0, 0)));
}

TEST(SetAssocCache, ResetStatsKeepsContents)
{
    SetAssocCache c("t", tinyGeom());
    c.access(0x100, false);
    c.resetStats();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_TRUE(c.access(0x100, false).hit);
}

TEST(SetAssocCache, MissRatio)
{
    SetAssocCache c("t", tinyGeom());
    c.access(0x0, false);  // miss
    c.access(0x0, false);  // hit
    c.access(0x0, false);  // hit
    c.access(0x40, false); // miss
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.5);
}

/**
 * Property tests across geometries: working sets within capacity never
 * miss after the first pass; streaming working sets twice the capacity
 * through an LRU cache always misses.
 */
class CacheGeometryProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint32_t>>
{
  protected:
    CacheGeometry
    geom() const
    {
        const auto [size, assoc] = GetParam();
        return CacheGeometry{size, assoc, 64};
    }
};

TEST_P(CacheGeometryProperty, FittingWorkingSetHasNoCapacityMisses)
{
    SetAssocCache c("t", geom());
    const std::uint64_t lines = geom().numLines();
    for (int pass = 0; pass < 3; ++pass) {
        for (std::uint64_t i = 0; i < lines; ++i)
            c.access(i * 64, false);
    }
    // Sequential fill maps exactly one line per way slot: only the
    // first pass misses.
    EXPECT_EQ(c.misses(), lines);
    EXPECT_EQ(c.accesses(), 3 * lines);
}

TEST_P(CacheGeometryProperty, ThrashingWorkingSetAlwaysMisses)
{
    SetAssocCache c("t", geom());
    const std::uint64_t lines = geom().numLines() * 2;
    for (int pass = 0; pass < 3; ++pass) {
        for (std::uint64_t i = 0; i < lines; ++i)
            c.access(i * 64, false);
    }
    // Cyclic sequential access over 2x capacity defeats LRU entirely.
    EXPECT_EQ(c.misses(), c.accesses());
}

TEST_P(CacheGeometryProperty, ValidLinesNeverExceedCapacity)
{
    SetAssocCache c("t", geom());
    for (std::uint64_t i = 0; i < geom().numLines() * 4; ++i)
        c.access(i * 64 * 3, i % 2 == 0);
    EXPECT_LE(c.validLines(), geom().numLines());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryProperty,
    ::testing::Values(std::make_tuple(4096u, 1u),
                      std::make_tuple(4096u, 4u),
                      std::make_tuple(65536u, 8u),
                      std::make_tuple(262144u, 8u),
                      std::make_tuple(1048576u, 16u)));

} // namespace
