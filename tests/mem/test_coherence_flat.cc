/**
 * @file
 * Tests for the flat open-addressing storage behind the coherence
 * directory: differential churn against a node-based reference model
 * (covering the backward-shift deletion path), steady-state allocation
 * behaviour, reserve(), O(1) clear() and its generation-stamp wrap.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/coherence.hh"
#include "sim/rng.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::mem;

/**
 * Executable spec of the directory semantics over std::unordered_map —
 * the storage the flat table replaced. Every transition mirrors
 * CoherenceDirectory's documented behaviour; the differential tests
 * below drive both through identical operation streams and require
 * identical observables.
 */
class ReferenceDirectory
{
  public:
    CoherenceOutcome
    onFill(unsigned cpu, Addr line, bool is_write)
    {
        CoherenceOutcome out;
        Entry &e = lines_[line];
        const std::uint32_t self = 1u << cpu;
        if (e.owner >= 0 && static_cast<unsigned>(e.owner) != cpu) {
            out.remoteDirty = true;
            out.remoteOwner = static_cast<unsigned>(e.owner);
            ++coherenceMisses_;
        }
        if (is_write) {
            const std::uint32_t remote = e.sharers & ~self;
            out.invalidateMask = remote;
            invalidations_ += std::popcount(remote);
            e.sharers = self;
            e.owner = static_cast<int>(cpu);
        } else {
            if (out.remoteDirty)
                e.owner = -1;
            e.sharers |= self;
        }
        return out;
    }

    std::uint32_t
    onWriteHit(unsigned cpu, Addr line)
    {
        Entry &e = lines_[line];
        const std::uint32_t self = 1u << cpu;
        const std::uint32_t remote = e.sharers & ~self;
        invalidations_ += std::popcount(remote);
        e.sharers = self;
        e.owner = static_cast<int>(cpu);
        return remote;
    }

    SnoopState
    snoop(Addr line) const
    {
        auto it = lines_.find(line);
        if (it == lines_.end())
            return SnoopState{};
        return SnoopState{true, it->second.sharers,
                          static_cast<std::int16_t>(it->second.owner)};
    }

    void
    onEviction(unsigned cpu, Addr line)
    {
        auto it = lines_.find(line);
        if (it == lines_.end())
            return;
        Entry &e = it->second;
        e.sharers &= ~(1u << cpu);
        if (e.owner >= 0 && static_cast<unsigned>(e.owner) == cpu)
            e.owner = -1;
        if (e.sharers == 0 && e.owner < 0)
            lines_.erase(it);
    }

    void onDmaFill(Addr line) { lines_.erase(line); }
    void clear() { lines_.clear(); }

    std::size_t trackedLines() const { return lines_.size(); }
    std::uint64_t coherenceMisses() const { return coherenceMisses_; }
    std::uint64_t invalidationsSent() const { return invalidations_; }

    /** Keys currently tracked (for exhaustive state comparison). */
    std::vector<Addr>
    keys() const
    {
        std::vector<Addr> out;
        out.reserve(lines_.size());
        for (const auto &kv : lines_)
            out.push_back(kv.first);
        return out;
    }

  private:
    struct Entry
    {
        std::uint32_t sharers = 0;
        int owner = -1;
    };

    std::unordered_map<Addr, Entry> lines_;
    std::uint64_t coherenceMisses_ = 0;
    std::uint64_t invalidations_ = 0;
};

void
expectSameSnoop(const CoherenceDirectory &flat,
                const ReferenceDirectory &ref, Addr line)
{
    const SnoopState a = flat.snoop(line);
    const SnoopState b = ref.snoop(line);
    ASSERT_EQ(a.tracked, b.tracked) << "line " << line;
    ASSERT_EQ(a.sharers, b.sharers) << "line " << line;
    ASSERT_EQ(a.modifiedOwner, b.modifiedOwner) << "line " << line;
}

/** Full observable-state comparison: counters plus every tracked line. */
void
expectSameState(const CoherenceDirectory &flat,
                const ReferenceDirectory &ref)
{
    ASSERT_EQ(flat.trackedLines(), ref.trackedLines());
    ASSERT_EQ(flat.coherenceMisses(), ref.coherenceMisses());
    ASSERT_EQ(flat.invalidationsSent(), ref.invalidationsSent());
    for (const Addr line : ref.keys())
        expectSameSnoop(flat, ref, line);
}

/**
 * Randomized churn over both implementations: per-op outcome equality,
 * periodic and final full-state equality. The footprint is small
 * relative to the op count so lines are repeatedly created, mutated
 * and destroyed — the mix is deliberately deletion-heavy (evictions,
 * DMA fills) to exercise backward-shift deletion inside long probe
 * chains.
 */
TEST(CoherenceFlatTable, DifferentialChurnMatchesReferenceModel)
{
    CoherenceDirectory flat(4);
    ReferenceDirectory ref;
    Rng rng(97);
    constexpr std::uint64_t footprint = 4096;
    constexpr int ops = 200'000;
    for (int i = 0; i < ops; ++i) {
        const Addr line = rng.below(footprint) * 64;
        const unsigned cpu = static_cast<unsigned>(rng.below(4));
        switch (rng.below(10)) {
          case 0:
          case 1:
          case 2: {
            const auto a = flat.onFill(cpu, line, false);
            const auto b = ref.onFill(cpu, line, false);
            ASSERT_EQ(a.remoteDirty, b.remoteDirty);
            ASSERT_EQ(a.invalidateMask, b.invalidateMask);
            if (a.remoteDirty) {
                ASSERT_EQ(a.remoteOwner, b.remoteOwner);
            }
            break;
          }
          case 3:
          case 4: {
            const auto a = flat.onFill(cpu, line, true);
            const auto b = ref.onFill(cpu, line, true);
            ASSERT_EQ(a.remoteDirty, b.remoteDirty);
            ASSERT_EQ(a.invalidateMask, b.invalidateMask);
            break;
          }
          case 5:
            ASSERT_EQ(flat.onWriteHit(cpu, line),
                      ref.onWriteHit(cpu, line));
            break;
          case 6:
          case 7:
          case 8:
            flat.onEviction(cpu, line);
            ref.onEviction(cpu, line);
            break;
          default:
            flat.onDmaFill(line);
            ref.onDmaFill(line);
            break;
        }
        if (i % 20'000 == 0)
            expectSameState(flat, ref);
    }
    expectSameState(flat, ref);
}

/**
 * Dense sequential insertion then interleaved deletion: adjacent keys
 * hash to adjacent slots under Fibonacci hashing, so deleting every
 * other one forces backward shifts through occupied runs.
 */
TEST(CoherenceFlatTable, InterleavedDeletionKeepsProbeChainsIntact)
{
    CoherenceDirectory flat(2);
    ReferenceDirectory ref;
    constexpr std::uint64_t n = 2048;
    for (std::uint64_t k = 0; k < n; ++k) {
        flat.onFill(0, k * 64, (k & 3) == 0);
        ref.onFill(0, k * 64, (k & 3) == 0);
    }
    for (std::uint64_t k = 0; k < n; k += 2) {
        flat.onDmaFill(k * 64);
        ref.onDmaFill(k * 64);
    }
    expectSameState(flat, ref);
    for (std::uint64_t k = 0; k < n; ++k)
        expectSameSnoop(flat, ref, k * 64);
}

TEST(CoherenceFlatTable, SteadyStateChurnDoesNotAllocate)
{
    CoherenceDirectory dir(4);
    Rng rng(7);
    constexpr std::uint64_t footprint = 1024;
    // Warm up: reach the high-water population once.
    for (std::uint64_t k = 0; k < footprint; ++k)
        dir.onFill(static_cast<unsigned>(k & 3), k * 64, false);
    const std::uint64_t allocs = dir.tableAllocations();
    ASSERT_GT(allocs, 0u);
    // Steady state: heavy create/mutate/destroy churn that never
    // exceeds the high-water mark must perform zero heap allocations.
    for (int i = 0; i < 100'000; ++i) {
        const Addr line = rng.below(footprint) * 64;
        const unsigned cpu = static_cast<unsigned>(rng.below(4));
        switch (rng.below(4)) {
          case 0:
            dir.onFill(cpu, line, true);
            break;
          case 1:
            dir.onWriteHit(cpu, line);
            break;
          case 2:
            dir.onEviction(cpu, line);
            break;
          default:
            dir.onDmaFill(line);
            break;
        }
    }
    EXPECT_EQ(dir.tableAllocations(), allocs);
}

TEST(CoherenceFlatTable, ReservePreallocatesTheWarmupPopulation)
{
    CoherenceDirectory dir(2);
    dir.reserve(20'000);
    EXPECT_GE(dir.capacity(), 20'000u);
    const std::uint64_t allocs = dir.tableAllocations();
    for (std::uint64_t k = 0; k < 20'000; ++k)
        dir.onFill(0, k * 64, false);
    EXPECT_EQ(dir.trackedLines(), 20'000u);
    // Filling up to the reserved population never rehashes.
    EXPECT_EQ(dir.tableAllocations(), allocs);
}

TEST(CoherenceFlatTable, GrowthPreservesAllEntries)
{
    CoherenceDirectory dir(4);
    constexpr std::uint64_t n = 100'000; // Far past minCapacity.
    for (std::uint64_t k = 0; k < n; ++k)
        dir.onFill(static_cast<unsigned>(k & 3), k * 64, (k & 7) == 0);
    EXPECT_EQ(dir.trackedLines(), n);
    for (std::uint64_t k = 0; k < n; ++k) {
        const SnoopState s = dir.snoop(k * 64);
        ASSERT_TRUE(s.tracked) << "line " << k * 64;
        ASSERT_EQ(s.sharers, 1u << (k & 3));
    }
}

TEST(CoherenceFlatTable, ClearSurvivesGenerationWrap)
{
    CoherenceDirectory dir(2);
    // clear() stamps slots dead by bumping a 16-bit generation; drive
    // it far past 65536 cycles so the wrap path (full re-zero) runs
    // several times. A stale stamp surviving the wrap would resurrect
    // line 0 or lose line 1.
    for (int cycle = 0; cycle < 70'000; ++cycle) {
        dir.onFill(0, 0, false);
        dir.clear();
        ASSERT_EQ(dir.trackedLines(), 0u);
        ASSERT_FALSE(dir.snoop(0).tracked);
    }
    dir.onFill(1, 64, true);
    EXPECT_EQ(dir.trackedLines(), 1u);
    EXPECT_FALSE(dir.snoop(0).tracked);
    EXPECT_EQ(dir.snoop(64).modifiedOwner, 1);
}

TEST(CoherenceFlatTable, TouchSoloTracksLikeTheGeneralPath)
{
    // touchSolo must leave the directory in exactly the state the
    // general-path calls it replaces would: P=1 accesses differ only
    // in skipped (provably no-op) remote bookkeeping.
    CoherenceDirectory solo(1);
    CoherenceDirectory general(1);
    Rng rng(41);
    constexpr std::uint64_t footprint = 512;
    for (int i = 0; i < 20'000; ++i) {
        const Addr line = rng.below(footprint) * 64;
        switch (rng.below(4)) {
          case 0:
            solo.touchSolo(line, true);
            general.onFill(0, line, true);
            break;
          case 1:
            solo.touchSolo(line, true);
            general.onWriteHit(0, line);
            break;
          case 2:
            solo.touchSolo(line, false);
            general.onFill(0, line, false);
            break;
          default:
            solo.onEviction(0, line);
            general.onEviction(0, line);
            break;
        }
    }
    // The general path on one CPU can never record remote activity.
    EXPECT_EQ(general.coherenceMisses(), 0u);
    EXPECT_EQ(general.invalidationsSent(), 0u);
    EXPECT_EQ(solo.coherenceMisses(), 0u);
    EXPECT_EQ(solo.invalidationsSent(), 0u);
    ASSERT_EQ(solo.trackedLines(), general.trackedLines());
    for (std::uint64_t k = 0; k < footprint; ++k) {
        const SnoopState a = solo.snoop(k * 64);
        const SnoopState b = general.snoop(k * 64);
        ASSERT_EQ(a.tracked, b.tracked) << "line " << k * 64;
        ASSERT_EQ(a.sharers, b.sharers) << "line " << k * 64;
        ASSERT_EQ(a.modifiedOwner, b.modifiedOwner) << "line " << k * 64;
    }
}

} // namespace
