/**
 * @file
 * Tests for the CMP shared-L3 mode: cross-core hits, on-die coherence
 * transfers, inclusive eviction, capacity sharing.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::mem;

constexpr std::uint32_t S = 16;

HierarchyConfig
cmpHier()
{
    HierarchyConfig h;
    h.l2 = {16 * KiB, 4, 64};
    h.l3 = {64 * KiB, 8, 64};
    h.sharedL3 = true;
    return h;
}

BusConfig
quietBus()
{
    BusConfig b;
    b.windowTicks = tickPerSec;
    return b;
}

Addr
sline(std::uint64_t n)
{
    return n * 64 * S;
}

TEST(SharedL3, ModeIsReported)
{
    MemorySystem cmp(4, cmpHier(), quietBus(), S);
    EXPECT_TRUE(cmp.sharedL3());
    HierarchyConfig smp = cmpHier();
    smp.sharedL3 = false;
    MemorySystem priv(4, smp, quietBus(), S);
    EXPECT_FALSE(priv.sharedL3());
}

TEST(SharedL3, CrossCoreReadHitsOnDie)
{
    MemorySystem ms(2, cmpHier(), quietBus(), S);
    // Core 0 fills the line from memory.
    EXPECT_EQ(ms.access(0, sline(3), AccessKind::DataRead,
                        ExecMode::User, 0)
                  .servicedBy,
              ServicedBy::Memory);
    // Core 1 reads: the shared L3 serves it without a bus transfer.
    EXPECT_EQ(ms.access(1, sline(3), AccessKind::DataRead,
                        ExecMode::User, 0)
                  .servicedBy,
              ServicedBy::L3);
    EXPECT_EQ(ms.cpu(1).counters(ExecMode::User).l3Misses, 0u);
}

TEST(SharedL3, PrivateModeMissesCrossCore)
{
    HierarchyConfig smp = cmpHier();
    smp.sharedL3 = false;
    MemorySystem ms(2, smp, quietBus(), S);
    ms.access(0, sline(3), AccessKind::DataRead, ExecMode::User, 0);
    // With private L3s the sibling must go to memory.
    EXPECT_EQ(ms.access(1, sline(3), AccessKind::DataRead,
                        ExecMode::User, 0)
                  .servicedBy,
              ServicedBy::Memory);
}

TEST(SharedL3, DirtyLineServedOnDieCountsAsHitm)
{
    MemorySystem ms(2, cmpHier(), quietBus(), S);
    ms.access(0, sline(5), AccessKind::DataWrite, ExecMode::User, 0);
    const auto res =
        ms.access(1, sline(5), AccessKind::DataRead, ExecMode::User, 0);
    EXPECT_EQ(res.servicedBy, ServicedBy::L3); // On-die, cheap.
    EXPECT_EQ(ms.cpu(1).counters(ExecMode::User).coherenceMisses, S);
}

TEST(SharedL3, WriteInvalidatesSiblingL2Copy)
{
    MemorySystem ms(2, cmpHier(), quietBus(), S);
    ms.access(0, sline(7), AccessKind::DataRead, ExecMode::User, 0);
    ms.access(1, sline(7), AccessKind::DataRead, ExecMode::User, 0);
    // Core 1 writes; core 0's L2 copy must be gone, but the data is
    // still on die.
    ms.access(1, sline(7), AccessKind::DataWrite, ExecMode::User, 0);
    const auto res =
        ms.access(0, sline(7), AccessKind::DataRead, ExecMode::User, 0);
    EXPECT_EQ(res.servicedBy, ServicedBy::L3);
}

TEST(SharedL3, CapacityIsShared)
{
    // Two cores streaming disjoint sets together thrash the single
    // shared L3 where private L3s would have held both.
    MemorySystem shared(2, cmpHier(), quietBus(), S);
    HierarchyConfig smp = cmpHier();
    smp.sharedL3 = false;
    MemorySystem priv(2, smp, quietBus(), S);

    // Scaled shared L3 = 64 lines. Each core streams 48 lines.
    auto stream = [](MemorySystem &ms, unsigned cpu, std::uint64_t base) {
        std::uint64_t misses = 0;
        for (int pass = 0; pass < 2; ++pass) {
            for (std::uint64_t n = 0; n < 48; ++n) {
                misses += ms.access(cpu, sline(base + n),
                                    AccessKind::DataRead,
                                    ExecMode::User, 0)
                              .l3Miss();
            }
        }
        return misses;
    };
    std::uint64_t shared_misses = 0, priv_misses = 0;
    // Interleave the two cores' streams.
    for (int rep = 0; rep < 2; ++rep) {
        shared_misses += stream(shared, 0, 0);
        shared_misses += stream(shared, 1, 1000);
        priv_misses += stream(priv, 0, 0);
        priv_misses += stream(priv, 1, 1000);
    }
    EXPECT_GT(shared_misses, priv_misses);
}

TEST(SharedL3, InclusiveEvictionRemovesL2Copies)
{
    MemorySystem ms(2, cmpHier(), quietBus(), S);
    ms.access(0, sline(0), AccessKind::DataRead, ExecMode::User, 0);
    // Stream enough lines through core 1 to evict line 0 from the
    // shared L3 entirely (64-line scaled capacity).
    for (std::uint64_t n = 1; n <= 256; ++n)
        ms.access(1, sline(n), AccessKind::DataRead, ExecMode::User, 0);
    // Core 0's next access must go to memory (its L2 copy was
    // back-invalidated with the shared-L3 eviction).
    EXPECT_EQ(ms.access(0, sline(0), AccessKind::DataRead,
                        ExecMode::User, 0)
                  .servicedBy,
              ServicedBy::Memory);
}

TEST(SharedL3, FlushAndResetCoverSharedCache)
{
    MemorySystem ms(2, cmpHier(), quietBus(), S);
    ms.access(0, sline(3), AccessKind::DataRead, ExecMode::User, 0);
    ms.flushAll();
    EXPECT_EQ(ms.access(1, sline(3), AccessKind::DataRead,
                        ExecMode::User, 0)
                  .servicedBy,
              ServicedBy::Memory);
}

} // namespace
