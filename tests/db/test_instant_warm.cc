/**
 * @file
 * Determinism contract of the host-parallel instant warm-up: with a
 * sharded buffer cache, partitioning the prefill stream by shard and
 * filling the shards on worker threads must leave the cache in exactly
 * the state the serial loop produces — same residency, same frame
 * assignments, same dirty bits.
 */

#include <gtest/gtest.h>

#include <vector>

#include "../support/mini_odb.hh"

namespace
{

using namespace odbsim;

db::DatabaseConfig
shardedConfig()
{
    db::DatabaseConfig cfg = test::miniDbConfig(4);
    cfg.shards = 4;
    cfg.sgaFrames = 4096;
    return cfg;
}

TEST(InstantWarm, ParallelPrefillMatchesSerialBitForBit)
{
    os::System serial_sys(test::miniSystemConfig(1));
    db::Database serial(serial_sys, shardedConfig());
    serial.instantWarm({}, 1);

    os::System parallel_sys(test::miniSystemConfig(1));
    db::Database parallel(parallel_sys, shardedConfig());
    parallel.instantWarm({}, 3);

    const db::BufferCache &a = serial.bufferCache();
    const db::BufferCache &b = parallel.bufferCache();
    EXPECT_EQ(a.residentBlocks(), b.residentBlocks());

    // Walk the warm candidate stream (a superset of what fit) and
    // compare the per-block cache state: hit/miss, frame assignment
    // and dirty bit must all agree.
    std::vector<db::BlockId> blocks;
    serial.schema().enumerateWarm(
        [&](db::BlockId blk) {
            blocks.push_back(blk);
            return blocks.size() < 3 * 4096;
        },
        nullptr);
    ASSERT_GT(blocks.size(), 0u);
    std::size_t resident = 0;
    for (db::BlockId blk : blocks) {
        const db::BufferLookup la = a.peek(blk);
        const db::BufferLookup lb = b.peek(blk);
        ASSERT_EQ(la.hit, lb.hit) << "block " << blk;
        if (!la.hit)
            continue;
        ++resident;
        EXPECT_EQ(la.frame, lb.frame) << "block " << blk;
        EXPECT_EQ(a.isDirty(la.frame), b.isDirty(lb.frame))
            << "block " << blk;
    }
    EXPECT_GT(resident, 0u);
}

TEST(InstantWarm, SingleShardIgnoresReplayThreads)
{
    // K=1 short-circuits to the legacy serial loop regardless of the
    // thread knob — the structural-inertness guarantee for the golden
    // configurations.
    db::DatabaseConfig unsharded = test::miniDbConfig(2);
    unsharded.sgaFrames = 2048;

    os::System sys_a(test::miniSystemConfig(1));
    db::Database warm_serial(sys_a, unsharded);
    warm_serial.instantWarm({}, 1);

    os::System sys_b(test::miniSystemConfig(1));
    db::Database warm_threaded(sys_b, unsharded);
    warm_threaded.instantWarm({}, 4);

    EXPECT_EQ(warm_serial.bufferCache().residentBlocks(),
              warm_threaded.bufferCache().residentBlocks());
}

} // namespace
