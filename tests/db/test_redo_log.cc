/**
 * @file
 * Tests for the redo log manager and LGWR: group commit batching,
 * durability wake-ups, statistics.
 */

#include <gtest/gtest.h>

#include <memory>

#include "db/cost_model.hh"
#include "db/redo_log.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::db;

/** Commits once, records when durability was signalled. */
class CommitterProcess : public os::Process
{
  public:
    CommitterProcess(LogManager &log, std::uint32_t bytes, Tick delay)
        : os::Process("committer"), log_(log), bytes_(bytes),
          delay_(delay)
    {}

    os::NextAction
    next(os::System &sys) override
    {
        os::NextAction act;
        switch (phase_++) {
          case 0:
            // Optional pre-commit think time.
            if (delay_) {
                sys.sleepProcess(this, delay_);
                act.after = os::NextAction::After::Block;
                return act;
            }
            ++phase_;
            [[fallthrough]];
          case 1:
            log_.requestCommit(this, bytes_);
            act.work.instructions = 1000;
            act.after = os::NextAction::After::Block;
            return act;
          default:
            durableAt = sys.now();
            act.after = os::NextAction::After::Terminate;
            return act;
        }
    }

    Tick durableAt = 0;

  private:
    LogManager &log_;
    std::uint32_t bytes_;
    Tick delay_;
    int phase_ = 0;
};

struct Rig
{
    os::System sys;
    DbCostModel costs;
    LogManager log;

    Rig(unsigned cpus = 2)
        : sys([cpus] {
              os::SystemConfig cfg;
              cfg.numCpus = cpus;
              cfg.core.samplePeriod = 16;
              cfg.disks.dataDisks = 1;
              cfg.disks.logDisks = 1;
              return cfg;
          }()),
          log(sys, costs)
    {
        log.start();
    }
};

TEST(LogManager, SingleCommitBecomesDurable)
{
    Rig rig;
    auto owned =
        std::make_unique<CommitterProcess>(rig.log, 6000, 0);
    auto *p = owned.get();
    rig.sys.spawn(std::move(owned));
    rig.sys.runFor(50 * tickPerMs);
    EXPECT_EQ(p->state(), os::Process::State::Done);
    EXPECT_GT(p->durableAt, 0u);
    EXPECT_EQ(rig.log.commitsServed(), 1u);
    EXPECT_GE(rig.log.flushes(), 1u);
    EXPECT_GE(rig.log.bytesFlushed(), 6000u);
}

TEST(LogManager, ConcurrentCommitsShareFlushes)
{
    Rig rig;
    std::vector<CommitterProcess *> ps;
    for (int i = 0; i < 16; ++i) {
        auto owned =
            std::make_unique<CommitterProcess>(rig.log, 4000, 0);
        ps.push_back(owned.get());
        rig.sys.spawn(std::move(owned));
    }
    rig.sys.runFor(100 * tickPerMs);
    for (auto *p : ps)
        EXPECT_EQ(p->state(), os::Process::State::Done);
    EXPECT_EQ(rig.log.commitsServed(), 16u);
    // Group commit: far fewer flushes than commits.
    EXPECT_LT(rig.log.flushes(), 16u);
    EXPECT_GT(rig.log.groupSize().max(), 1.0);
}

TEST(LogManager, SpacedCommitsFlushIndividually)
{
    Rig rig;
    for (int i = 0; i < 4; ++i) {
        rig.sys.spawn(std::make_unique<CommitterProcess>(
            rig.log, 2000, i * 20 * tickPerMs));
    }
    rig.sys.runFor(200 * tickPerMs);
    EXPECT_EQ(rig.log.commitsServed(), 4u);
    // 20 ms apart with ~0.3 ms flushes: every commit flushes alone.
    EXPECT_EQ(rig.log.flushes(), 4u);
}

TEST(LogManager, LogWritesAreSequentialOnLogDisks)
{
    Rig rig;
    rig.sys.spawn(std::make_unique<CommitterProcess>(rig.log, 6000, 0));
    rig.sys.runFor(50 * tickPerMs);
    EXPECT_GE(rig.sys.disks().logWrites(), 1u);
    EXPECT_EQ(rig.sys.disks().dataWrites(), 0u);
}

TEST(LogManager, DurabilityLatencyIsSubMillisecondUnloaded)
{
    Rig rig;
    auto owned = std::make_unique<CommitterProcess>(rig.log, 6000, 0);
    auto *p = owned.get();
    rig.sys.spawn(std::move(owned));
    rig.sys.runFor(50 * tickPerMs);
    // Sequential log write ~0.35 ms + scheduling.
    EXPECT_LT(p->durableAt, 2 * tickPerMs);
}

TEST(LogManager, ResetStats)
{
    Rig rig;
    rig.sys.spawn(std::make_unique<CommitterProcess>(rig.log, 6000, 0));
    rig.sys.runFor(50 * tickPerMs);
    rig.log.resetStats();
    EXPECT_EQ(rig.log.flushes(), 0u);
    EXPECT_EQ(rig.log.bytesFlushed(), 0u);
    EXPECT_EQ(rig.log.commitsServed(), 0u);
}

TEST(LogManager, DoubleStartPanics)
{
    Rig rig;
    EXPECT_DEATH({ rig.log.start(); }, "already started");
}

} // namespace
