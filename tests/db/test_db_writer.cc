/**
 * @file
 * Tests for DBWR: urgent write-back of evicted dirty blocks,
 * checkpointing of aged dirty blocks, coalescing, throttling.
 */

#include <gtest/gtest.h>

#include "db/buffer_cache.hh"
#include "db/cost_model.hh"
#include "db/db_writer.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::db;

struct Rig
{
    os::System sys;
    DbCostModel costs;
    BufferCache bc;
    DbWriter dbwr;

    explicit Rig(DbWriterConfig cfg = fastCfg())
        : sys([] {
              os::SystemConfig scfg;
              scfg.numCpus = 1;
              scfg.core.samplePeriod = 16;
              scfg.disks.dataDisks = 2;
              scfg.disks.logDisks = 1;
              return scfg;
          }()),
          bc(64), dbwr(sys, costs, bc, cfg)
    {
        dbwr.start();
    }

    static DbWriterConfig
    fastCfg()
    {
        DbWriterConfig cfg;
        cfg.checkpointAge = 20 * tickPerMs;
        cfg.scanInterval = 5 * tickPerMs;
        cfg.wakeThreshold = 4;
        return cfg;
    }
};

TEST(DbWriter, WritesEvictedDirtyBlocks)
{
    Rig rig;
    for (BlockId b = 0; b < 8; ++b)
        rig.dbwr.enqueueEvicted(b);
    rig.sys.runFor(100 * tickPerMs);
    EXPECT_EQ(rig.dbwr.blocksWritten(), 8u);
    EXPECT_EQ(rig.sys.disks().dataWrites(), 8u);
    EXPECT_EQ(rig.dbwr.urgentDepth(), 0u);
}

TEST(DbWriter, TimerDrainsSmallUrgentQueues)
{
    Rig rig;
    // Below the wake threshold: the periodic scan must still drain it.
    rig.dbwr.enqueueEvicted(1);
    rig.sys.runFor(100 * tickPerMs);
    EXPECT_EQ(rig.dbwr.blocksWritten(), 1u);
}

TEST(DbWriter, CheckpointsAgedDirtyBlocks)
{
    Rig rig;
    const auto v = rig.bc.allocate(77);
    rig.bc.fillComplete(v.frame);
    rig.bc.markDirty(v.frame);
    rig.dbwr.noteDirty(77, rig.sys.now());
    rig.sys.runFor(10 * tickPerMs); // Younger than checkpointAge.
    EXPECT_EQ(rig.dbwr.blocksWritten(), 0u);
    rig.sys.runFor(100 * tickPerMs); // Now aged out.
    EXPECT_EQ(rig.dbwr.blocksWritten(), 1u);
    EXPECT_FALSE(rig.bc.isDirty(v.frame)); // Cleaned at write time.
}

TEST(DbWriter, SkipsBlocksCleanedBeforeCheckpoint)
{
    Rig rig;
    const auto v = rig.bc.allocate(77);
    rig.bc.fillComplete(v.frame);
    rig.bc.markDirty(v.frame);
    rig.dbwr.noteDirty(77, rig.sys.now());
    rig.bc.markClean(77); // E.g. written through the urgent path.
    rig.sys.runFor(100 * tickPerMs);
    EXPECT_EQ(rig.dbwr.blocksWritten(), 0u);
}

TEST(DbWriter, SkipsEvictedEntriesOnCheckpointQueue)
{
    Rig rig;
    const auto v = rig.bc.allocate(77);
    rig.bc.fillComplete(v.frame);
    rig.bc.markDirty(v.frame);
    rig.dbwr.noteDirty(77, rig.sys.now());
    // Evict 77 by filling the cache; its checkpoint entry goes stale.
    for (BlockId b = 100; b < 100 + 64; ++b) {
        const auto vv = rig.bc.allocate(b);
        rig.bc.fillComplete(vv.frame);
        if (vv.hadBlock && vv.wasDirty)
            rig.dbwr.enqueueEvicted(vv.evictedBlock);
    }
    rig.sys.runFor(200 * tickPerMs);
    // Exactly one write: the urgent eviction; the stale checkpoint
    // entry was skipped.
    EXPECT_EQ(rig.dbwr.blocksWritten(), 1u);
}

TEST(DbWriter, CoalescesRedirtyWithinCheckpointWindow)
{
    Rig rig;
    const auto v = rig.bc.allocate(77);
    rig.bc.fillComplete(v.frame);
    // Dirtied twice in quick succession (two queue entries).
    rig.bc.markDirty(v.frame);
    rig.dbwr.noteDirty(77, rig.sys.now());
    rig.bc.markDirty(v.frame);
    rig.dbwr.noteDirty(77, rig.sys.now());
    rig.sys.runFor(200 * tickPerMs);
    // One write only: the second entry found the block clean.
    EXPECT_EQ(rig.dbwr.blocksWritten(), 1u);
}

TEST(DbWriter, HandlesLargeBurstsWithThrottling)
{
    DbWriterConfig cfg = Rig::fastCfg();
    cfg.maxOutstanding = 16;
    cfg.batchSize = 8;
    Rig rig(cfg);
    for (BlockId b = 0; b < 300; ++b)
        rig.dbwr.enqueueEvicted(b);
    rig.sys.runFor(3 * tickPerSec);
    EXPECT_EQ(rig.dbwr.blocksWritten(), 300u);
}

TEST(DbWriter, ChargesCpuWork)
{
    Rig rig;
    for (BlockId b = 0; b < 32; ++b)
        rig.dbwr.enqueueEvicted(b);
    rig.sys.runFor(100 * tickPerMs);
    const auto &user = rig.sys.core(0).counters()[mem::ExecMode::User];
    const auto &os = rig.sys.core(0).counters()[mem::ExecMode::Os];
    EXPECT_GT(user.instructions, 0.0); // DBWR queue processing.
    EXPECT_GT(os.instructions, 0.0);   // Async write submission.
}

TEST(DbWriter, ResetStats)
{
    Rig rig;
    rig.dbwr.enqueueEvicted(1);
    rig.sys.runFor(100 * tickPerMs);
    rig.dbwr.resetStats();
    EXPECT_EQ(rig.dbwr.blocksWritten(), 0u);
}

} // namespace
