/**
 * @file
 * Tests for the buffer cache (SGA): lookup/allocate semantics, LRU
 * order, dirty tracking, I/O-pending protection, warm pre-fill.
 */

#include <gtest/gtest.h>

#include "db/buffer_cache.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::db;

TEST(BufferCache, MissThenHit)
{
    BufferCache bc(16);
    EXPECT_FALSE(bc.lookup(5).hit);
    const BufferVictim v = bc.allocate(5);
    EXPECT_FALSE(v.hadBlock);
    bc.fillComplete(v.frame);
    const BufferLookup l = bc.lookup(5);
    EXPECT_TRUE(l.hit);
    EXPECT_EQ(l.frame, v.frame);
    EXPECT_EQ(bc.gets(), 2u);
    EXPECT_EQ(bc.misses(), 1u);
}

TEST(BufferCache, UsesFreeFramesBeforeEvicting)
{
    BufferCache bc(8);
    for (BlockId b = 0; b < 8; ++b) {
        const BufferVictim v = bc.allocate(b);
        EXPECT_FALSE(v.hadBlock);
        bc.fillComplete(v.frame);
    }
    EXPECT_EQ(bc.residentBlocks(), 8u);
    const BufferVictim v = bc.allocate(100);
    EXPECT_TRUE(v.hadBlock);
}

TEST(BufferCache, EvictsLruBlock)
{
    BufferCache bc(8);
    for (BlockId b = 0; b < 8; ++b)
        bc.fillComplete(bc.allocate(b).frame);
    // Touch everything except block 3.
    for (BlockId b = 0; b < 8; ++b) {
        if (b != 3)
            bc.lookup(b);
    }
    const BufferVictim v = bc.allocate(100);
    EXPECT_EQ(v.evictedBlock, 3u);
    EXPECT_FALSE(bc.lookup(3).hit);
}

TEST(BufferCache, DirtyEvictionReported)
{
    BufferCache bc(8);
    for (BlockId b = 0; b < 8; ++b) {
        const auto v = bc.allocate(b);
        bc.fillComplete(v.frame);
        if (b == 0)
            bc.markDirty(v.frame);
    }
    // Block 0 is LRU (untouched since fill order... touch others).
    for (BlockId b = 1; b < 8; ++b)
        bc.lookup(b);
    const BufferVictim v = bc.allocate(100);
    EXPECT_EQ(v.evictedBlock, 0u);
    EXPECT_TRUE(v.wasDirty);
    EXPECT_EQ(bc.dirtyEvictions(), 1u);
}

TEST(BufferCache, IoPendingFramesAreNotEvicted)
{
    BufferCache bc(8);
    const BufferVictim pending = bc.allocate(0); // Stays I/O pending.
    for (BlockId b = 1; b < 8; ++b)
        bc.fillComplete(bc.allocate(b).frame);
    // Evict repeatedly; the pending frame must never be the victim.
    for (BlockId b = 100; b < 106; ++b) {
        const BufferVictim v = bc.allocate(b);
        EXPECT_NE(v.frame, pending.frame);
        bc.fillComplete(v.frame);
    }
    EXPECT_TRUE(bc.lookup(0).hit);
}

TEST(BufferCache, MarkCleanByBlockId)
{
    BufferCache bc(8);
    const auto v = bc.allocate(7);
    bc.fillComplete(v.frame);
    bc.markDirty(v.frame);
    EXPECT_TRUE(bc.isDirty(v.frame));
    bc.markClean(7);
    EXPECT_FALSE(bc.isDirty(v.frame));
    bc.markClean(999); // Unknown block: no-op.
}

TEST(BufferCache, PeekDoesNotPromoteOrCount)
{
    BufferCache bc(8);
    bc.fillComplete(bc.allocate(1).frame);
    const std::uint64_t gets = bc.gets();
    const BufferLookup l = bc.peek(1);
    EXPECT_TRUE(l.hit);
    EXPECT_EQ(bc.gets(), gets);
    EXPECT_FALSE(bc.peek(2).hit);
}

TEST(BufferCache, PrefillMakesResidentWithoutStats)
{
    BufferCache bc(8);
    bc.prefill(42);
    EXPECT_EQ(bc.gets(), 0u);
    EXPECT_EQ(bc.residentBlocks(), 1u);
    EXPECT_TRUE(bc.lookup(42).hit);
}

TEST(BufferCache, PrefillDirtyFlag)
{
    BufferCache bc(8);
    bc.prefill(42, true);
    const BufferLookup l = bc.peek(42);
    EXPECT_TRUE(bc.isDirty(l.frame));
}

TEST(BufferCache, PrefillStopsWhenFull)
{
    BufferCache bc(8);
    for (BlockId b = 0; b < 12; ++b)
        bc.prefill(b);
    EXPECT_EQ(bc.residentBlocks(), 8u);
    EXPECT_TRUE(bc.lookup(7).hit);
    EXPECT_FALSE(bc.lookup(8).hit);
}

TEST(BufferCache, PrefillDuplicateIsNoop)
{
    BufferCache bc(8);
    bc.prefill(1);
    bc.prefill(1);
    EXPECT_EQ(bc.residentBlocks(), 1u);
}

TEST(BufferCache, PrefillOrderSetsLru)
{
    BufferCache bc(8);
    for (BlockId b = 0; b < 8; ++b)
        bc.prefill(b); // 0 is coldest, 3 is MRU.
    const BufferVictim v = bc.allocate(100);
    EXPECT_EQ(v.evictedBlock, 0u);
}

TEST(BufferCache, HitRatio)
{
    BufferCache bc(8);
    bc.prefill(1);
    bc.lookup(1);
    bc.lookup(1);
    bc.lookup(2);
    EXPECT_NEAR(bc.hitRatio(), 2.0 / 3.0, 1e-12);
}

TEST(BufferCache, FrameAndMetaAddresses)
{
    BufferCache bc(16);
    EXPECT_EQ(bc.frameAddr(0), mem::addrmap::sgaFrameBase);
    EXPECT_EQ(bc.frameAddr(2), mem::addrmap::sgaFrameBase + 2 * 8192);
    // Meta addresses stay inside the metadata region.
    for (BlockId b = 0; b < 100; ++b) {
        const Addr m = bc.metaAddr(b);
        EXPECT_GE(m, mem::addrmap::sgaMetaBase);
        EXPECT_LT(m, mem::addrmap::sgaMetaBase + 16 * 64);
    }
}

TEST(BufferCache, ResetStats)
{
    BufferCache bc(8);
    bc.lookup(1);
    bc.resetStats();
    EXPECT_EQ(bc.gets(), 0u);
    EXPECT_EQ(bc.misses(), 0u);
}

TEST(BufferCache, MetaAddrMatchesHardwareDivide)
{
    // metaAddr's fastmod fold must be bit-identical to the `%` it
    // replaced, for every frame count a config can choose — including
    // the studied 2.8 GB configuration's 358,400 frames.
    for (const std::uint64_t frames :
         {8ull, 9ull, 100ull, 1000ull, 4096ull, 358'400ull}) {
        BufferCache bc(frames);
        for (BlockId b = 0; b < 2000; ++b) {
            const std::uint64_t bucket =
                (b * 0x9e3779b97f4a7c15ULL) % frames;
            EXPECT_EQ(bc.metaAddr(b),
                      mem::addrmap::frameMetaAddr(bucket))
                << "b=" << b << " frames=" << frames;
        }
    }
}

TEST(BufferCacheDeathTest, AllocateWithAllFramesIoPendingAsserts)
{
    // Claim every frame without completing any fill: the next
    // allocation has no evictable victim and must trip the assert
    // rather than hand out a frame with an in-flight DMA.
    BufferCache bc(8);
    for (BlockId b = 0; b < 8; ++b)
        bc.allocate(b);
    EXPECT_DEATH({ bc.allocate(100); }, "frames are I/O pending");
}

TEST(BufferCache, MarkCleanOnIoPendingFrame)
{
    // DBWR may finish writing back a block that is concurrently being
    // re-read; markClean must neither complete the fill nor make the
    // frame evictable.
    BufferCache bc(8);
    const BufferVictim pending = bc.allocate(0);
    bc.markClean(0);
    EXPECT_FALSE(bc.isDirty(pending.frame));
    for (BlockId b = 1; b < 8; ++b)
        bc.fillComplete(bc.allocate(b).frame);
    for (BlockId b = 100; b < 104; ++b) {
        const BufferVictim v = bc.allocate(b);
        EXPECT_NE(v.frame, pending.frame); // Still fill-protected.
        bc.fillComplete(v.frame);
    }
    bc.fillComplete(pending.frame);
    EXPECT_TRUE(bc.lookup(0).hit);
}

TEST(BufferCache, PrefillWhenFullLeavesResidentsIntact)
{
    BufferCache bc(8);
    for (BlockId b = 0; b < 8; ++b)
        bc.prefill(b, b == 2);
    bc.prefill(50); // Full: must be a no-op, not an eviction.
    EXPECT_EQ(bc.residentBlocks(), 8u);
    EXPECT_FALSE(bc.peek(50).hit);
    for (BlockId b = 0; b < 8; ++b)
        EXPECT_TRUE(bc.peek(b).hit) << b;
    EXPECT_TRUE(bc.isDirty(bc.peek(2).frame));
}

TEST(BufferCache, SteadyStateChurnNeverGrowsTheIndex)
{
    // The resident index is reserved to the frame count at
    // construction; any amount of miss/evict churn afterwards must
    // leave the growth counter flat.
    BufferCache bc(64);
    const std::uint64_t allocs = bc.mapAllocations();
    for (BlockId b = 0; b < 10'000; ++b) {
        if (!bc.lookup(b % 500).hit)
            bc.fillComplete(bc.allocate(b % 500).frame);
    }
    EXPECT_EQ(bc.mapAllocations(), allocs);
}

/** Property: hit ratio is monotone in cache size for an LRU-friendly
 *  cyclic-with-skew reference pattern. */
class BufferCacheSizeProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BufferCacheSizeProperty, LargerCachesHitMore)
{
    auto run = [](std::uint64_t frames) {
        BufferCache bc(frames);
        // Skewed stream: hot blocks 0-9 interleaved with a long scan.
        for (int pass = 0; pass < 3; ++pass) {
            for (BlockId b = 0; b < 200; ++b) {
                const BlockId blk = b % 3 == 0 ? b / 3 % 10 : 1000 + b;
                if (!bc.lookup(blk).hit)
                    bc.fillComplete(bc.allocate(blk).frame);
            }
        }
        return bc.hitRatio();
    };
    const std::uint64_t frames = GetParam();
    EXPECT_LE(run(frames), run(frames * 2) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BufferCacheSizeProperty,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u));

} // namespace
