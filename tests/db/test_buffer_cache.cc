/**
 * @file
 * Tests for the buffer cache (SGA): lookup/allocate semantics, LRU
 * order, dirty tracking, I/O-pending protection, warm pre-fill.
 */

#include <gtest/gtest.h>

#include "db/buffer_cache.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::db;

TEST(BufferCache, MissThenHit)
{
    BufferCache bc(16);
    EXPECT_FALSE(bc.lookup(5).hit);
    const BufferVictim v = bc.allocate(5);
    EXPECT_FALSE(v.hadBlock);
    bc.fillComplete(v.frame);
    const BufferLookup l = bc.lookup(5);
    EXPECT_TRUE(l.hit);
    EXPECT_EQ(l.frame, v.frame);
    EXPECT_EQ(bc.gets(), 2u);
    EXPECT_EQ(bc.misses(), 1u);
}

TEST(BufferCache, UsesFreeFramesBeforeEvicting)
{
    BufferCache bc(8);
    for (BlockId b = 0; b < 8; ++b) {
        const BufferVictim v = bc.allocate(b);
        EXPECT_FALSE(v.hadBlock);
        bc.fillComplete(v.frame);
    }
    EXPECT_EQ(bc.residentBlocks(), 8u);
    const BufferVictim v = bc.allocate(100);
    EXPECT_TRUE(v.hadBlock);
}

TEST(BufferCache, EvictsLruBlock)
{
    BufferCache bc(8);
    for (BlockId b = 0; b < 8; ++b)
        bc.fillComplete(bc.allocate(b).frame);
    // Touch everything except block 3.
    for (BlockId b = 0; b < 8; ++b) {
        if (b != 3)
            bc.lookup(b);
    }
    const BufferVictim v = bc.allocate(100);
    EXPECT_EQ(v.evictedBlock, 3u);
    EXPECT_FALSE(bc.lookup(3).hit);
}

TEST(BufferCache, DirtyEvictionReported)
{
    BufferCache bc(8);
    for (BlockId b = 0; b < 8; ++b) {
        const auto v = bc.allocate(b);
        bc.fillComplete(v.frame);
        if (b == 0)
            bc.markDirty(v.frame);
    }
    // Block 0 is LRU (untouched since fill order... touch others).
    for (BlockId b = 1; b < 8; ++b)
        bc.lookup(b);
    const BufferVictim v = bc.allocate(100);
    EXPECT_EQ(v.evictedBlock, 0u);
    EXPECT_TRUE(v.wasDirty);
    EXPECT_EQ(bc.dirtyEvictions(), 1u);
}

TEST(BufferCache, IoPendingFramesAreNotEvicted)
{
    BufferCache bc(8);
    const BufferVictim pending = bc.allocate(0); // Stays I/O pending.
    for (BlockId b = 1; b < 8; ++b)
        bc.fillComplete(bc.allocate(b).frame);
    // Evict repeatedly; the pending frame must never be the victim.
    for (BlockId b = 100; b < 106; ++b) {
        const BufferVictim v = bc.allocate(b);
        EXPECT_NE(v.frame, pending.frame);
        bc.fillComplete(v.frame);
    }
    EXPECT_TRUE(bc.lookup(0).hit);
}

TEST(BufferCache, MarkCleanByBlockId)
{
    BufferCache bc(8);
    const auto v = bc.allocate(7);
    bc.fillComplete(v.frame);
    bc.markDirty(v.frame);
    EXPECT_TRUE(bc.isDirty(v.frame));
    bc.markClean(7);
    EXPECT_FALSE(bc.isDirty(v.frame));
    bc.markClean(999); // Unknown block: no-op.
}

TEST(BufferCache, PeekDoesNotPromoteOrCount)
{
    BufferCache bc(8);
    bc.fillComplete(bc.allocate(1).frame);
    const std::uint64_t gets = bc.gets();
    const BufferLookup l = bc.peek(1);
    EXPECT_TRUE(l.hit);
    EXPECT_EQ(bc.gets(), gets);
    EXPECT_FALSE(bc.peek(2).hit);
}

TEST(BufferCache, PrefillMakesResidentWithoutStats)
{
    BufferCache bc(8);
    bc.prefill(42);
    EXPECT_EQ(bc.gets(), 0u);
    EXPECT_EQ(bc.residentBlocks(), 1u);
    EXPECT_TRUE(bc.lookup(42).hit);
}

TEST(BufferCache, PrefillDirtyFlag)
{
    BufferCache bc(8);
    bc.prefill(42, true);
    const BufferLookup l = bc.peek(42);
    EXPECT_TRUE(bc.isDirty(l.frame));
}

TEST(BufferCache, PrefillStopsWhenFull)
{
    BufferCache bc(8);
    for (BlockId b = 0; b < 12; ++b)
        bc.prefill(b);
    EXPECT_EQ(bc.residentBlocks(), 8u);
    EXPECT_TRUE(bc.lookup(7).hit);
    EXPECT_FALSE(bc.lookup(8).hit);
}

TEST(BufferCache, PrefillDuplicateIsNoop)
{
    BufferCache bc(8);
    bc.prefill(1);
    bc.prefill(1);
    EXPECT_EQ(bc.residentBlocks(), 1u);
}

TEST(BufferCache, PrefillOrderSetsLru)
{
    BufferCache bc(8);
    for (BlockId b = 0; b < 8; ++b)
        bc.prefill(b); // 0 is coldest, 3 is MRU.
    const BufferVictim v = bc.allocate(100);
    EXPECT_EQ(v.evictedBlock, 0u);
}

TEST(BufferCache, HitRatio)
{
    BufferCache bc(8);
    bc.prefill(1);
    bc.lookup(1);
    bc.lookup(1);
    bc.lookup(2);
    EXPECT_NEAR(bc.hitRatio(), 2.0 / 3.0, 1e-12);
}

TEST(BufferCache, FrameAndMetaAddresses)
{
    BufferCache bc(16);
    EXPECT_EQ(bc.frameAddr(0), mem::addrmap::sgaFrameBase);
    EXPECT_EQ(bc.frameAddr(2), mem::addrmap::sgaFrameBase + 2 * 8192);
    // Meta addresses stay inside the metadata region.
    for (BlockId b = 0; b < 100; ++b) {
        const Addr m = bc.metaAddr(b);
        EXPECT_GE(m, mem::addrmap::sgaMetaBase);
        EXPECT_LT(m, mem::addrmap::sgaMetaBase + 16 * 64);
    }
}

TEST(BufferCache, ResetStats)
{
    BufferCache bc(8);
    bc.lookup(1);
    bc.resetStats();
    EXPECT_EQ(bc.gets(), 0u);
    EXPECT_EQ(bc.misses(), 0u);
}

TEST(BufferCache, MetaAddrMatchesHardwareDivide)
{
    // metaAddr's fastmod fold must be bit-identical to the `%` it
    // replaced, for every frame count a config can choose — including
    // the studied 2.8 GB configuration's 358,400 frames.
    for (const std::uint64_t frames :
         {8ull, 9ull, 100ull, 1000ull, 4096ull, 358'400ull}) {
        BufferCache bc(frames);
        for (BlockId b = 0; b < 2000; ++b) {
            const std::uint64_t bucket =
                (b * 0x9e3779b97f4a7c15ULL) % frames;
            EXPECT_EQ(bc.metaAddr(b),
                      mem::addrmap::frameMetaAddr(bucket))
                << "b=" << b << " frames=" << frames;
        }
    }
}

TEST(BufferCacheDeathTest, AllocateWithAllFramesIoPendingAsserts)
{
    // Claim every frame without completing any fill: the next
    // allocation has no evictable victim and must trip the assert
    // rather than hand out a frame with an in-flight DMA.
    BufferCache bc(8);
    for (BlockId b = 0; b < 8; ++b)
        bc.allocate(b);
    EXPECT_DEATH({ bc.allocate(100); }, "frames are I/O pending");
}

TEST(BufferCache, MarkCleanOnIoPendingFrame)
{
    // DBWR may finish writing back a block that is concurrently being
    // re-read; markClean must neither complete the fill nor make the
    // frame evictable.
    BufferCache bc(8);
    const BufferVictim pending = bc.allocate(0);
    bc.markClean(0);
    EXPECT_FALSE(bc.isDirty(pending.frame));
    for (BlockId b = 1; b < 8; ++b)
        bc.fillComplete(bc.allocate(b).frame);
    for (BlockId b = 100; b < 104; ++b) {
        const BufferVictim v = bc.allocate(b);
        EXPECT_NE(v.frame, pending.frame); // Still fill-protected.
        bc.fillComplete(v.frame);
    }
    bc.fillComplete(pending.frame);
    EXPECT_TRUE(bc.lookup(0).hit);
}

TEST(BufferCache, PrefillWhenFullLeavesResidentsIntact)
{
    BufferCache bc(8);
    for (BlockId b = 0; b < 8; ++b)
        bc.prefill(b, b == 2);
    bc.prefill(50); // Full: must be a no-op, not an eviction.
    EXPECT_EQ(bc.residentBlocks(), 8u);
    EXPECT_FALSE(bc.peek(50).hit);
    for (BlockId b = 0; b < 8; ++b)
        EXPECT_TRUE(bc.peek(b).hit) << b;
    EXPECT_TRUE(bc.isDirty(bc.peek(2).frame));
}

TEST(BufferCache, SteadyStateChurnNeverGrowsTheIndex)
{
    // The resident index is reserved to the frame count at
    // construction; any amount of miss/evict churn afterwards must
    // leave the growth counter flat.
    BufferCache bc(64);
    const std::uint64_t allocs = bc.mapAllocations();
    for (BlockId b = 0; b < 10'000; ++b) {
        if (!bc.lookup(b % 500).hit)
            bc.fillComplete(bc.allocate(b % 500).frame);
    }
    EXPECT_EQ(bc.mapAllocations(), allocs);
}

TEST(BufferCacheSharded, ShardOfPartitionsTheBlockSpace)
{
    BufferCache k1(16);
    BufferCache k4(64, 4);
    EXPECT_EQ(k1.shards(), 1u);
    EXPECT_EQ(k4.shards(), 4u);
    bool seen[4] = {};
    for (BlockId b = 0; b < 4096; ++b) {
        EXPECT_EQ(k1.shardOf(b), 0u);
        const unsigned s = k4.shardOf(b);
        ASSERT_LT(s, 4u);
        seen[s] = true;
        EXPECT_EQ(k4.shardOf(b), s); // Stable for the cache's life.
    }
    EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

/** K=1 must be structurally identical to the unsharded default: the
 *  same reference stream yields the same frames, victims and stats. */
TEST(BufferCacheSharded, ExplicitK1MatchesDefault)
{
    BufferCache a(16);
    BufferCache b(16, 1);
    for (BlockId i = 0; i < 200; ++i) {
        const BlockId blk = (i * 7) % 40;
        const BufferLookup la = a.lookup(blk);
        const BufferLookup lb = b.lookup(blk);
        ASSERT_EQ(la.hit, lb.hit) << blk;
        if (la.hit) {
            ASSERT_EQ(la.frame, lb.frame) << blk;
        } else {
            const BufferVictim va = a.allocate(blk);
            const BufferVictim vb = b.allocate(blk);
            ASSERT_EQ(va.frame, vb.frame) << blk;
            ASSERT_EQ(va.hadBlock, vb.hadBlock) << blk;
            ASSERT_EQ(va.evictedBlock, vb.evictedBlock) << blk;
            a.fillComplete(va.frame);
            b.fillComplete(vb.frame);
        }
    }
    EXPECT_EQ(a.gets(), b.gets());
    EXPECT_EQ(a.misses(), b.misses());
}

/** The replacement victim must always come from the missing block's
 *  own shard — sharding partitions the frame pool and the LRU. */
TEST(BufferCacheSharded, VictimComesFromOwnShard)
{
    BufferCache bc(64, 4);
    for (BlockId b = 0; bc.residentBlocks() < 64; ++b)
        bc.prefill(b);
    for (BlockId b = 1000; b < 1200; ++b) {
        if (bc.lookup(b).hit)
            continue;
        const BufferVictim v = bc.allocate(b);
        ASSERT_TRUE(v.hadBlock);
        EXPECT_EQ(bc.shardOf(v.evictedBlock), bc.shardOf(b)) << b;
        bc.fillComplete(v.frame);
    }
}

/** LRU recency is tracked per shard: a shard evicts its own coldest
 *  block even when other shards hold globally colder ones. */
TEST(BufferCacheSharded, LruIsPerShard)
{
    BufferCache bc(64, 4);
    // Populate every shard (these residents are globally coldest).
    for (BlockId b = 0; bc.residentBlocks() < 64; ++b)
        bc.prefill(b);
    // Collect shard 0's residents and warm all but one.
    std::vector<BlockId> s0;
    for (BlockId b = 0; s0.size() < 16 && b < 4096; ++b) {
        if (bc.shardOf(b) == 0 && bc.peek(b).hit)
            s0.push_back(b);
    }
    ASSERT_EQ(s0.size(), 16u);
    const BlockId cold = s0[3];
    for (const BlockId b : s0) {
        if (b != cold)
            bc.lookup(b);
    }
    // A miss in shard 0 must evict shard 0's cold block, not one of
    // the never-touched residents in shards 1-3.
    BlockId miss = 100'000;
    while (bc.shardOf(miss) != 0)
        ++miss;
    const BufferVictim v = bc.allocate(miss);
    EXPECT_EQ(v.evictedBlock, cold);
}

/** prefill() fills a shard's own frame share and then no-ops, leaving
 *  the other shards' frames untouched. */
TEST(BufferCacheSharded, PrefillStopsAtTheShardShare)
{
    BufferCache bc(64, 4);
    std::vector<BlockId> s0;
    for (BlockId b = 0; s0.size() < 17; ++b) {
        if (bc.shardOf(b) == 0)
            s0.push_back(b);
    }
    for (const BlockId b : s0)
        bc.prefill(b);
    // 16 frames per shard: the 17th block of shard 0 found no free
    // frame even though 48 frames sit free in other shards.
    EXPECT_EQ(bc.residentBlocks(), 16u);
    EXPECT_FALSE(bc.peek(s0.back()).hit);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_TRUE(bc.peek(s0[i]).hit) << i;
}

/** Statistics accumulate per shard and sum on read. */
TEST(BufferCacheSharded, StatsAggregateAcrossShards)
{
    BufferCache bc(64, 4);
    bool done[4] = {};
    unsigned covered = 0;
    for (BlockId b = 0; covered < 4; ++b) {
        const unsigned s = bc.shardOf(b);
        if (done[s])
            continue;
        done[s] = true;
        ++covered;
        EXPECT_FALSE(bc.lookup(b).hit); // One miss per shard...
        bc.fillComplete(bc.allocate(b).frame);
        EXPECT_TRUE(bc.lookup(b).hit); // ...and one hit per shard.
    }
    EXPECT_EQ(bc.gets(), 8u);
    EXPECT_EQ(bc.misses(), 4u);
    EXPECT_NEAR(bc.hitRatio(), 0.5, 1e-12);
    bc.resetStats();
    EXPECT_EQ(bc.gets(), 0u);
    EXPECT_EQ(bc.misses(), 0u);
}

/** Property: hit ratio is monotone in cache size for an LRU-friendly
 *  cyclic-with-skew reference pattern. */
class BufferCacheSizeProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BufferCacheSizeProperty, LargerCachesHitMore)
{
    auto run = [](std::uint64_t frames) {
        BufferCache bc(frames);
        // Skewed stream: hot blocks 0-9 interleaved with a long scan.
        for (int pass = 0; pass < 3; ++pass) {
            for (BlockId b = 0; b < 200; ++b) {
                const BlockId blk = b % 3 == 0 ? b / 3 % 10 : 1000 + b;
                if (!bc.lookup(blk).hit)
                    bc.fillComplete(bc.allocate(blk).frame);
            }
        }
        return bc.hitRatio();
    };
    const std::uint64_t frames = GetParam();
    EXPECT_LE(run(frames), run(frames * 2) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BufferCacheSizeProperty,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u));

} // namespace
