/**
 * @file
 * Tests for the Action trace vocabulary (builders and flags).
 */

#include <gtest/gtest.h>

#include "db/trace.hh"

namespace
{

using namespace odbsim::db;

TEST(Action, LockBuilder)
{
    const Action a = Action::lock(makeLockKey(Table::Warehouse, 7));
    EXPECT_EQ(a.kind(), ActionKind::Lock);
    EXPECT_EQ(a.target, makeLockKey(Table::Warehouse, 7));
}

TEST(Action, UnlockBuilder)
{
    const Action a = Action::unlock(42);
    EXPECT_EQ(a.kind(), ActionKind::Unlock);
    EXPECT_EQ(a.target, 42u);
}

TEST(Action, TouchHeapBuilder)
{
    const Action a = Action::touchHeap(1234, 512, 656, true);
    EXPECT_EQ(a.kind(), ActionKind::Touch);
    EXPECT_EQ(a.touch(), TouchKind::HeapModify);
    EXPECT_EQ(a.target, 1234u);
    EXPECT_EQ(a.offset(), 512u);
    EXPECT_EQ(a.bytes(), 656u);
    EXPECT_FALSE(a.fresh());
    const Action r = Action::touchHeap(1234, 0, 64, false);
    EXPECT_EQ(r.touch(), TouchKind::HeapRead);
}

TEST(Action, TouchFreshSetsFlagAndModify)
{
    const Action a = Action::touchFresh(99, 100, 200);
    EXPECT_EQ(a.kind(), ActionKind::Touch);
    EXPECT_EQ(a.touch(), TouchKind::HeapModify);
    EXPECT_TRUE(a.fresh());
}

TEST(Action, TouchIndexBuilder)
{
    const Action a = Action::touchIndex(55, 4032);
    EXPECT_EQ(a.touch(), TouchKind::IndexNode);
    EXPECT_EQ(a.bytes(), 256u);
    EXPECT_EQ(a.offset(), 4032u);
}

TEST(Action, ComputeAndCommitBuilders)
{
    const Action c = Action::compute(30000);
    EXPECT_EQ(c.kind(), ActionKind::Compute);
    EXPECT_EQ(c.instr, 30000u);
    const Action k = Action::commit();
    EXPECT_EQ(k.kind(), ActionKind::Commit);
}

TEST(TxnType, NamesAndCount)
{
    EXPECT_EQ(numTxnTypes, 5u);
    EXPECT_STREQ(toString(TxnType::NewOrder), "new_order");
    EXPECT_STREQ(toString(TxnType::StockLevel), "stock_level");
}

TEST(LockKey, TableRankOrdersKeys)
{
    // Lock keys sort by (table rank, row) — the deadlock-freedom
    // invariant the planners rely on.
    EXPECT_LT(makeLockKey(Table::Warehouse, 999999),
              makeLockKey(Table::District, 0));
    EXPECT_LT(makeLockKey(Table::District, 999999),
              makeLockKey(Table::Customer, 0));
    EXPECT_LT(makeLockKey(Table::Customer, 1),
              makeLockKey(Table::Customer, 2));
}

} // namespace
