/**
 * @file
 * Tests for the schema: extent disjointness, row addressing, order
 * allocation, delivery queue, deterministic derivations, warm
 * enumeration.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "db/schema.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::db;

SchemaConfig
tinyCfg(unsigned w = 2)
{
    SchemaConfig cfg;
    cfg.warehouses = w;
    cfg.customersPerDistrict = 300;
    cfg.itemCount = 2000;
    cfg.stockPerWarehouse = 2000;
    cfg.initialOrdersPerDistrict = 100;
    cfg.ordersPerDistrictCap = 300;
    cfg.olPerDistrictCap = 3000;
    cfg.newOrderCap = 200;
    cfg.historyCap = 1800;
    cfg.undoBlocks = 64;
    return cfg;
}

TEST(Schema, RowsStayInsideTheirBlocks)
{
    Schema s(tinyCfg());
    for (const RowLoc loc :
         {s.warehouseRow(1), s.districtRow(1, 9), s.customerRow(1, 9, 299),
          s.itemRow(1999), s.stockRow(1, 1999), s.orderRow(1, 9, 299),
          s.orderLineRow(1, 9, 2999), s.newOrderRow(1, 9, 199),
          s.historyRow(1, 1799)}) {
        EXPECT_LT(loc.block, s.totalBlocks());
        EXPECT_LT((loc.slot + 1) * static_cast<std::uint64_t>(loc.rowBytes),
                  blockBytes + 1);
    }
}

TEST(Schema, DistinctRowsDistinctLocations)
{
    Schema s(tinyCfg());
    std::set<std::pair<BlockId, std::uint32_t>> seen;
    for (std::uint32_t c = 0; c < 300; ++c) {
        const RowLoc loc = s.customerRow(0, 0, c);
        EXPECT_TRUE(seen.insert({loc.block, loc.slot}).second);
    }
}

TEST(Schema, TableExtentsDisjoint)
{
    Schema s(tinyCfg());
    // Sample one block from each table and the indexes; all distinct.
    std::set<BlockId> blocks = {
        s.warehouseRow(0).block,
        s.districtRow(0, 0).block,
        s.customerRow(0, 0, 0).block,
        s.itemRow(0).block,
        s.stockRow(0, 0).block,
        s.orderRow(0, 0, 0).block,
        s.orderLineRow(0, 0, 0).block,
        s.newOrderRow(0, 0, 0).block,
        s.historyRow(0, 0).block,
        s.customerIndex().lookup(0).leaf(),
        s.customerNameIndex().lookup(0).leaf(),
        s.itemIndex().lookup(0).leaf(),
        s.stockIndex().lookup(0).leaf(),
        s.ordersIndex().lookup(0).leaf(),
        s.newOrderIndex().lookup(0).leaf(),
        s.undoBlockAt(0),
    };
    EXPECT_EQ(blocks.size(), 16u);
    for (const BlockId b : blocks)
        EXPECT_LT(b, s.totalBlocks());
}

TEST(Schema, DistrictsOfAWarehouseShareOneBlock)
{
    Schema s(tinyCfg());
    const BlockId b0 = s.districtRow(1, 0).block;
    for (std::uint32_t d = 1; d < 10; ++d)
        EXPECT_EQ(s.districtRow(1, d).block, b0);
    EXPECT_NE(s.districtRow(0, 0).block, b0);
}

TEST(Schema, AllocateOrderAdvancesCounters)
{
    Schema s(tinyCfg());
    const std::uint32_t o0 = s.nextOid(0, 0);
    EXPECT_EQ(o0, 100u);
    const std::uint32_t oid = s.allocateOrder(0, 0, 42, 7);
    EXPECT_EQ(oid, o0);
    EXPECT_EQ(s.nextOid(0, 0), o0 + 1);
    const OrderInfo info = s.orderInfo(0, 0, oid);
    EXPECT_EQ(info.customer, 42u);
    EXPECT_EQ(info.olCnt, 7u);
    EXPECT_EQ(info.olSeqStart, 1000u); // 100 initial orders x 10 lines.
}

TEST(Schema, ConsecutiveOrdersGetConsecutiveLineRanges)
{
    Schema s(tinyCfg());
    const std::uint32_t a = s.allocateOrder(0, 1, 1, 5);
    const std::uint32_t b = s.allocateOrder(0, 1, 2, 9);
    EXPECT_EQ(s.orderInfo(0, 1, b).olSeqStart,
              s.orderInfo(0, 1, a).olSeqStart + 5);
}

TEST(Schema, PreloadedOrderInfoIsDeterministic)
{
    Schema s(tinyCfg());
    const OrderInfo a = s.orderInfo(1, 3, 50);
    const OrderInfo b = s.orderInfo(1, 3, 50);
    EXPECT_EQ(a.customer, b.customer);
    EXPECT_EQ(a.olCnt, b.olCnt);
    EXPECT_EQ(a.olSeqStart, 500u);
    EXPECT_GE(a.olCnt, 5u);
    EXPECT_LE(a.olCnt, 15u);
}

TEST(Schema, DeliveryQueueDrainsOldestFirst)
{
    Schema s(tinyCfg());
    // 100 initial orders, 70% delivered: 70..99 are pending.
    const auto first = s.popDeliveryOrder(0, 0);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, 70u);
    EXPECT_EQ(*s.popDeliveryOrder(0, 0), 71u);
    // Drain the remaining 28 and verify exhaustion.
    for (int i = 0; i < 28; ++i)
        EXPECT_TRUE(s.popDeliveryOrder(0, 0).has_value());
    EXPECT_FALSE(s.popDeliveryOrder(0, 0).has_value());
    // A new order replenishes the queue.
    s.allocateOrder(0, 0, 1, 5);
    EXPECT_TRUE(s.popDeliveryOrder(0, 0).has_value());
}

TEST(Schema, UndoCursorWrapsRing)
{
    Schema s(tinyCfg());
    const BlockId first = s.undoBlockAt(s.allocateUndo(100));
    std::uint64_t cur = 0;
    for (int i = 0; i < 10000; ++i)
        cur = s.allocateUndo(100);
    const BlockId later = s.undoBlockAt(cur);
    EXPECT_NE(first, later);
    // The ring wraps within its extent.
    EXPECT_LT(later, s.totalBlocks());
    const BlockId wrapped = s.undoBlockAt(
        static_cast<std::uint64_t>(tinyCfg().undoBlocks) * blockBytes);
    EXPECT_EQ(wrapped, s.undoBlockAt(0));
}

TEST(Schema, StockAdjustRestocksBelowTen)
{
    Schema s(tinyCfg());
    // Drive quantity down until the restock rule triggers.
    std::int32_t q = s.adjustStock(0, 5, 0);
    for (int i = 0; i < 50; ++i) {
        const std::int32_t prev = q;
        q = s.adjustStock(0, 5, -10);
        if (prev - 10 < 10) {
            EXPECT_EQ(q, prev - 10 + 91);
            return;
        }
        EXPECT_EQ(q, prev - 10);
    }
    FAIL() << "restock rule never triggered";
}

TEST(Schema, BalancesAccumulate)
{
    Schema s(tinyCfg());
    const double b1 = s.adjustCustomerBalance(0, 0, 1, -50.0);
    EXPECT_DOUBLE_EQ(b1, -60.0); // Initial balance -10.
    EXPECT_DOUBLE_EQ(s.adjustCustomerBalance(0, 0, 1, 10.0), -50.0);
    EXPECT_GT(s.addWarehouseYtd(0, 100.0), 100.0);
    EXPECT_GT(s.addDistrictYtd(0, 0, 100.0), 100.0);
}

TEST(Schema, HistoryRingAdvances)
{
    Schema s(tinyCfg());
    const std::uint32_t a = s.allocateHistory(1);
    const std::uint32_t b = s.allocateHistory(1);
    EXPECT_EQ(b, a + 1);
    EXPECT_EQ(s.allocateHistory(0), 0u); // Per-warehouse counters.
}

TEST(Schema, WarmEnumerationUniqueInPrefixAndBounded)
{
    Schema s(tinyCfg());
    std::vector<BlockId> order;
    std::unordered_set<BlockId> seen;
    s.enumerateWarm([&](BlockId b) {
        EXPECT_LT(b, s.totalBlocks());
        if (seen.insert(b).second)
            order.push_back(b);
        return order.size() < 500;
    });
    ASSERT_GE(order.size(), 100u);
    // The hottest prefix must contain the index roots and the
    // district blocks.
    std::unordered_set<BlockId> prefix(order.begin(), order.begin() + 100);
    EXPECT_TRUE(prefix.count(
        s.customerIndex().lookup(0).node[0])); // Root.
    EXPECT_TRUE(seen.count(s.districtRow(0, 0).block));
}

TEST(Schema, WarmEnumerationHonoursActiveList)
{
    Schema s(tinyCfg(4));
    std::vector<std::uint32_t> active = {2};
    std::unordered_set<BlockId> seen;
    s.enumerateWarm(
        [&](BlockId b) {
            seen.insert(b);
            return true;
        },
        &active);
    // Warehouse 2's hot customer block is in; warehouse 3's is not.
    EXPECT_TRUE(seen.count(s.customerRow(2, 0, 0).block));
    EXPECT_FALSE(seen.count(s.customerRow(3, 0, 0).block));
}

TEST(Schema, MixIsDeterministicAndSpread)
{
    EXPECT_EQ(Schema::mix(1, 2, 3), Schema::mix(1, 2, 3));
    EXPECT_NE(Schema::mix(1, 2, 3), Schema::mix(1, 2, 4));
    EXPECT_NE(Schema::mix(1, 2, 3), Schema::mix(2, 1, 3));
}

TEST(Schema, ReadableBlocksScaleRoughlyLinearly)
{
    Schema s2(tinyCfg(2)), s8(tinyCfg(8));
    EXPECT_NEAR(s2.readableBlocksPerWarehouse(),
                s8.readableBlocksPerWarehouse(),
                0.35 * s2.readableBlocksPerWarehouse());
}

/** Property: row addressing round-trips for random keys across W. */
class SchemaAddressProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SchemaAddressProperty, CustomerAddressingInjective)
{
    Schema s(tinyCfg(GetParam()));
    std::set<std::pair<BlockId, std::uint32_t>> seen;
    for (unsigned w = 0; w < GetParam(); ++w) {
        for (std::uint32_t d = 0; d < 10; d += 3) {
            for (std::uint32_t c = 0; c < 300; c += 37) {
                const RowLoc loc = s.customerRow(w, d, c);
                EXPECT_TRUE(seen.insert({loc.block, loc.slot}).second);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Warehouses, SchemaAddressProperty,
                         ::testing::Values(1u, 2u, 5u, 16u));

} // namespace
