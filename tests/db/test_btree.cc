/**
 * @file
 * Tests for the implicit B-tree: geometry, path determinism, extent
 * layout, hot-prefix property of internal levels.
 */

#include <gtest/gtest.h>

#include <set>

#include "db/btree.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::db;

TEST(ImplicitBTree, SingleLeafTree)
{
    ImplicitBTree t(100, 50, 300, 250);
    EXPECT_EQ(t.height(), 1u);
    EXPECT_EQ(t.blocksUsed(), 1u);
    const IndexPath p = t.lookup(49);
    EXPECT_EQ(p.height, 1u);
    EXPECT_EQ(p.node[0], 100u);
    EXPECT_EQ(p.leaf(), 100u);
    EXPECT_EQ(p.leafSlot, 49u);
}

TEST(ImplicitBTree, TwoLevelTree)
{
    // 1000 keys, 100 per leaf -> 10 leaves -> 1 root.
    ImplicitBTree t(0, 1000, 100, 250);
    EXPECT_EQ(t.height(), 2u);
    EXPECT_EQ(t.blocksUsed(), 11u);
    const IndexPath p = t.lookup(550);
    EXPECT_EQ(p.height, 2u);
    EXPECT_EQ(p.node[0], 0u);       // Root first (extent prefix).
    EXPECT_EQ(p.node[1], 1u + 5u);  // Sixth leaf.
    EXPECT_EQ(p.leafSlot, 50u);
}

TEST(ImplicitBTree, ThreeLevelTree)
{
    // 100000 keys, 100/leaf -> 1000 leaves, fanout 50 -> 20 -> 1.
    ImplicitBTree t(0, 100000, 100, 50);
    EXPECT_EQ(t.height(), 3u);
    EXPECT_EQ(t.levelNodes(0), 1000u);
    EXPECT_EQ(t.levelNodes(1), 20u);
    EXPECT_EQ(t.levelNodes(2), 1u);
    EXPECT_EQ(t.blocksUsed(), 1021u);
    // Root at extent start; level 1 follows; leaves last.
    EXPECT_EQ(t.levelBase(2), 0u);
    EXPECT_EQ(t.levelBase(1), 1u);
    EXPECT_EQ(t.levelBase(0), 21u);
}

TEST(ImplicitBTree, PathIsDeterministic)
{
    ImplicitBTree t(7, 100000, 100, 50);
    const IndexPath a = t.lookup(4242);
    const IndexPath b = t.lookup(4242);
    ASSERT_EQ(a.height, b.height);
    for (unsigned l = 0; l < a.height; ++l)
        EXPECT_EQ(a.node[l], b.node[l]);
    EXPECT_EQ(a.leafSlot, b.leafSlot);
}

TEST(ImplicitBTree, AdjacentKeysShareLeaf)
{
    ImplicitBTree t(0, 100000, 100, 50);
    EXPECT_EQ(t.lookup(100).leaf(), t.lookup(199).leaf());
    EXPECT_NE(t.lookup(199).leaf(), t.lookup(200).leaf());
}

TEST(ImplicitBTree, PathNodesDescendLevels)
{
    ImplicitBTree t(0, 100000, 100, 50);
    const IndexPath p = t.lookup(99999);
    // node[0] is root, node[height-1] the leaf; each lies in its
    // level's extent.
    EXPECT_EQ(p.node[0], t.levelBase(2));
    EXPECT_GE(p.node[1], t.levelBase(1));
    EXPECT_LT(p.node[1], t.levelBase(1) + t.levelNodes(1));
    EXPECT_GE(p.node[2], t.levelBase(0));
    EXPECT_LT(p.node[2], t.levelBase(0) + t.levelNodes(0));
}

TEST(ImplicitBTree, OutOfRangeKeyPanics)
{
    ImplicitBTree t(0, 100, 10, 10);
    EXPECT_DEATH({ t.lookup(100); }, "out of range");
}

/**
 * Property: across geometries, every key maps to a valid path whose
 * leaf extent covers all leaves, and sequential key ranges partition
 * cleanly into leaves.
 */
class BTreeGeomProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>>
{
};

TEST_P(BTreeGeomProperty, AllKeysResolveAndCoverLeaves)
{
    const auto [cap, per_leaf, fanout] = GetParam();
    ImplicitBTree t(1000, cap, per_leaf, fanout);
    std::set<BlockId> leaves;
    const std::uint64_t step = std::max<std::uint64_t>(1, cap / 997);
    for (std::uint64_t k = 0; k < cap; k += step) {
        const IndexPath p = t.lookup(k);
        ASSERT_GE(p.height, 1u);
        ASSERT_LE(p.height, maxBtreeHeight);
        ASSERT_EQ(p.node[0], t.levelBase(t.height() - 1));
        ASSERT_LT(p.leafSlot, per_leaf);
        leaves.insert(p.leaf());
        // Every node lies inside the extent.
        for (unsigned l = 0; l < p.height; ++l) {
            ASSERT_GE(p.node[l], 1000u);
            ASSERT_LT(p.node[l], 1000u + t.blocksUsed());
        }
    }
    // Sampled keys must reach a large share of the leaf level.
    EXPECT_GE(leaves.size(),
              std::min<std::uint64_t>(t.levelNodes(0), 997) / 2);
}

TEST_P(BTreeGeomProperty, LevelNodeCountsShrinkByFanout)
{
    const auto [cap, per_leaf, fanout] = GetParam();
    ImplicitBTree t(0, cap, per_leaf, fanout);
    for (unsigned l = 1; l < t.height(); ++l) {
        const std::uint64_t expected =
            (t.levelNodes(l - 1) + fanout - 1) / fanout;
        EXPECT_EQ(t.levelNodes(l), expected);
    }
    EXPECT_EQ(t.levelNodes(t.height() - 1), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BTreeGeomProperty,
    ::testing::Values(std::make_tuple(1ull, 300u, 250u),
                      std::make_tuple(299ull, 300u, 250u),
                      std::make_tuple(30000ull, 300u, 250u),
                      std::make_tuple(1000000ull, 400u, 250u),
                      std::make_tuple(24000000ull, 300u, 250u),
                      std::make_tuple(12345ull, 70u, 30u)));

} // namespace
