/**
 * @file
 * Tests for the row-lock manager: grant/queue semantics, FIFO
 * hand-off with wake-up, re-entrancy, statistics, releaseAll wake
 * ordering, and fault-injected lock-wait timeouts (including the
 * same-tick grant-vs-timeout race).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "db/lock_manager.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::db;

/** A process that simply parks (for use as a lock holder). */
class ParkedProcess : public os::Process
{
  public:
    ParkedProcess()
        : os::Process("parked")
    {}

    os::NextAction
    next(os::System &) override
    {
        os::NextAction act;
        act.after = os::NextAction::After::Block;
        return act;
    }
};

struct Rig
{
    os::System sys;
    LockManager locks;
    os::Process *p1;
    os::Process *p2;
    os::Process *p3;

    Rig()
        : sys([] {
              os::SystemConfig cfg;
              cfg.numCpus = 1;
              cfg.core.samplePeriod = 16;
              cfg.disks.dataDisks = 1;
              cfg.disks.logDisks = 1;
              return cfg;
          }())
    {
        p1 = sys.spawn(std::make_unique<ParkedProcess>());
        p2 = sys.spawn(std::make_unique<ParkedProcess>());
        p3 = sys.spawn(std::make_unique<ParkedProcess>());
        sys.runFor(tickPerMs); // Let everyone park.
    }
};

TEST(LockManager, GrantsFreeLock)
{
    Rig rig;
    EXPECT_TRUE(rig.locks.acquire(rig.p1, 100));
    EXPECT_EQ(rig.locks.heldCount(), 1u);
    EXPECT_EQ(rig.locks.conflicts(), 0u);
}

TEST(LockManager, ReentrantAcquireGranted)
{
    Rig rig;
    EXPECT_TRUE(rig.locks.acquire(rig.p1, 100));
    EXPECT_TRUE(rig.locks.acquire(rig.p1, 100));
    EXPECT_EQ(rig.locks.conflicts(), 0u);
}

TEST(LockManager, ConflictQueuesWaiter)
{
    Rig rig;
    EXPECT_TRUE(rig.locks.acquire(rig.p1, 100));
    EXPECT_FALSE(rig.locks.acquire(rig.p2, 100));
    EXPECT_EQ(rig.locks.conflicts(), 1u);
}

TEST(LockManager, ReleaseHandsOffAndWakes)
{
    Rig rig;
    rig.locks.acquire(rig.p1, 100);
    rig.locks.acquire(rig.p2, 100); // Queued.
    EXPECT_EQ(rig.p2->state(), os::Process::State::Blocked);
    rig.locks.release(rig.p1, 100, rig.sys);
    // p2 now owns the lock and was made runnable.
    EXPECT_NE(rig.p2->state(), os::Process::State::Blocked);
    // A third contender queues behind p2.
    EXPECT_FALSE(rig.locks.acquire(rig.p3, 100));
}

TEST(LockManager, FifoHandOffOrder)
{
    Rig rig;
    rig.locks.acquire(rig.p1, 100);
    rig.locks.acquire(rig.p2, 100);
    rig.locks.acquire(rig.p3, 100);
    rig.locks.release(rig.p1, 100, rig.sys);
    // p2 (the older waiter) must now hold it: p1 re-acquiring queues.
    EXPECT_FALSE(rig.locks.acquire(rig.p1, 100));
}

TEST(LockManager, ReleaseWithoutWaitersFreesResource)
{
    Rig rig;
    rig.locks.acquire(rig.p1, 100);
    rig.locks.release(rig.p1, 100, rig.sys);
    EXPECT_EQ(rig.locks.heldCount(), 0u);
    EXPECT_TRUE(rig.locks.acquire(rig.p2, 100));
}

TEST(LockManager, ReleaseAllClearsVector)
{
    Rig rig;
    std::vector<LockKey> held;
    for (LockKey k : {1ull, 2ull, 3ull}) {
        EXPECT_TRUE(rig.locks.acquire(rig.p1, k));
        held.push_back(k);
    }
    rig.locks.releaseAll(rig.p1, held, rig.sys);
    EXPECT_TRUE(held.empty());
    EXPECT_EQ(rig.locks.heldCount(), 0u);
}

TEST(LockManager, IndependentKeysDoNotConflict)
{
    Rig rig;
    EXPECT_TRUE(rig.locks.acquire(rig.p1, makeLockKey(Table::Warehouse, 1)));
    EXPECT_TRUE(rig.locks.acquire(rig.p2, makeLockKey(Table::Warehouse, 2)));
    EXPECT_TRUE(rig.locks.acquire(rig.p3, makeLockKey(Table::District, 1)));
    EXPECT_EQ(rig.locks.conflicts(), 0u);
}

TEST(LockManager, LockKeyEncodingSeparatesTables)
{
    EXPECT_NE(makeLockKey(Table::Warehouse, 7),
              makeLockKey(Table::District, 7));
    EXPECT_NE(makeLockKey(Table::Customer, 1),
              makeLockKey(Table::Customer, 2));
}

TEST(LockManager, HeldCountExcludesWaiters)
{
    Rig rig;
    rig.locks.acquire(rig.p1, 1);
    rig.locks.acquire(rig.p1, 2);
    rig.locks.acquire(rig.p1, 3);
    EXPECT_EQ(rig.locks.heldCount(), 3u);
    EXPECT_EQ(rig.locks.waiterCount(), 0u);
    // Two contenders queue on key 1: granted holders are unchanged.
    rig.locks.acquire(rig.p2, 1);
    rig.locks.acquire(rig.p3, 1);
    EXPECT_EQ(rig.locks.heldCount(), 3u);
    EXPECT_EQ(rig.locks.waiterCount(), 2u);
}

TEST(LockManager, HeldCountAcrossHandOffChain)
{
    Rig rig;
    rig.locks.acquire(rig.p1, 100);
    rig.locks.acquire(rig.p2, 100);
    rig.locks.acquire(rig.p3, 100);
    EXPECT_EQ(rig.locks.heldCount(), 1u);
    EXPECT_EQ(rig.locks.waiterCount(), 2u);
    // Hand-off: one holder replaces another, held count unchanged.
    rig.locks.release(rig.p1, 100, rig.sys);
    EXPECT_EQ(rig.locks.heldCount(), 1u);
    EXPECT_EQ(rig.locks.waiterCount(), 1u);
    rig.locks.release(rig.p2, 100, rig.sys);
    EXPECT_EQ(rig.locks.heldCount(), 1u);
    EXPECT_EQ(rig.locks.waiterCount(), 0u);
    // Final release retires the resource.
    rig.locks.release(rig.p3, 100, rig.sys);
    EXPECT_EQ(rig.locks.heldCount(), 0u);
    EXPECT_EQ(rig.locks.waiterCount(), 0u);
}

TEST(LockManager, ReentrantAcquireDoesNotInflateHeldCount)
{
    Rig rig;
    rig.locks.acquire(rig.p1, 100);
    rig.locks.acquire(rig.p1, 100);
    EXPECT_EQ(rig.locks.heldCount(), 1u);
}

TEST(LockManager, SteadyStateChurnNeverGrowsTheTable)
{
    Rig rig;
    // One warm-up round establishes the high-water population of the
    // resource table and the waiter pool...
    auto round = [&rig] {
        for (LockKey k = 0; k < 8; ++k)
            rig.locks.acquire(rig.p1, k);
        for (LockKey k = 0; k < 4; ++k)
            rig.locks.acquire(rig.p2, k);
        for (LockKey k = 0; k < 2; ++k)
            rig.locks.acquire(rig.p3, k);
        for (LockKey k = 0; k < 8; ++k)
            rig.locks.release(rig.p1, k, rig.sys);
        for (LockKey k = 0; k < 4; ++k)
            rig.locks.release(rig.p2, k, rig.sys);
        for (LockKey k = 0; k < 2; ++k)
            rig.locks.release(rig.p3, k, rig.sys);
    };
    round();
    // ...after which identical contended churn must be allocation-free
    // (the pooled waiter free-list and flat table never grow).
    const std::uint64_t allocs = rig.locks.tableAllocations();
    for (int i = 0; i < 1000; ++i)
        round();
    EXPECT_EQ(rig.locks.tableAllocations(), allocs);
    EXPECT_EQ(rig.locks.heldCount(), 0u);
    EXPECT_EQ(rig.locks.waiterCount(), 0u);
}

TEST(LockManager, ReservePresizesTableAndPool)
{
    Rig rig;
    rig.locks.reserve(64, 16);
    const std::uint64_t allocs = rig.locks.tableAllocations();
    for (LockKey k = 0; k < 64; ++k)
        rig.locks.acquire(rig.p1, k);
    for (LockKey k = 0; k < 16; ++k)
        rig.locks.acquire(rig.p2, k);
    EXPECT_EQ(rig.locks.tableAllocations(), allocs);
    for (LockKey k = 0; k < 64; ++k)
        rig.locks.release(rig.p1, k, rig.sys);
    // Keys 0-15 were handed off to the queued p2.
    for (LockKey k = 0; k < 16; ++k)
        rig.locks.release(rig.p2, k, rig.sys);
    EXPECT_EQ(rig.locks.heldCount(), 0u);
}

TEST(LockManager, ReleaseAllHandsEachLockToItsOldestWaiter)
{
    Rig rig;
    rig.locks.acquire(rig.p1, 100);
    rig.locks.acquire(rig.p2, 100); // Oldest waiter on 100.
    rig.locks.acquire(rig.p3, 100);
    rig.locks.acquire(rig.p1, 200);
    rig.locks.acquire(rig.p3, 200); // Oldest (only) waiter on 200.

    std::vector<LockKey> held{100, 200};
    rig.locks.releaseAll(rig.p1, held, rig.sys);

    // FIFO per key: p2 (not the newer p3) now owns 100; p3 owns 200
    // and still queues behind p2 on 100.
    EXPECT_EQ(rig.locks.holderOf(100), rig.p2);
    EXPECT_EQ(rig.locks.holderOf(200), rig.p3);
    EXPECT_EQ(rig.locks.waiterCount(), 1u);
}

/** Rig whose system carries a 5 ms lock-wait timeout fault plan. */
struct TimeoutRig
{
    os::System sys;
    LockManager locks;
    os::Process *p1;
    os::Process *p2;
    os::Process *p3;

    TimeoutRig()
        : sys([] {
              os::SystemConfig cfg;
              cfg.numCpus = 1;
              cfg.core.samplePeriod = 16;
              cfg.disks.dataDisks = 1;
              cfg.disks.logDisks = 1;
              cfg.faults.lockWaitTimeoutMs = 5.0;
              return cfg;
          }())
    {
        locks.bind(&sys);
        p1 = sys.spawn(std::make_unique<ParkedProcess>());
        p2 = sys.spawn(std::make_unique<ParkedProcess>());
        p3 = sys.spawn(std::make_unique<ParkedProcess>());
        sys.runFor(tickPerMs); // Let everyone park.
    }
};

TEST(LockTimeout, ExpiredWaiterIsWokenWithoutTheLock)
{
    TimeoutRig rig;
    rig.locks.acquire(rig.p1, 100);
    EXPECT_FALSE(rig.locks.acquire(rig.p2, 100));
    rig.sys.runFor(10 * tickPerMs); // Past the 5 ms deadline.

    // p2 was unlinked and woken empty-handed; p1 still holds the row.
    EXPECT_EQ(rig.sys.faults().stats().lockTimeouts, 1u);
    EXPECT_EQ(rig.locks.holderOf(100), rig.p1);
    EXPECT_EQ(rig.locks.waiterCount(), 0u);

    // The hand-off chain is gone: releasing retires the resource.
    rig.locks.release(rig.p1, 100, rig.sys);
    EXPECT_EQ(rig.locks.heldCount(), 0u);
}

TEST(LockTimeout, GrantBeforeDeadlineMakesTheTimeoutStale)
{
    TimeoutRig rig;
    rig.locks.acquire(rig.p1, 100);
    rig.locks.acquire(rig.p2, 100); // Arms a timeout at now + 5 ms.
    rig.locks.release(rig.p1, 100, rig.sys); // Granted immediately.
    EXPECT_EQ(rig.locks.holderOf(100), rig.p2);

    // The armed timeout fires against a recycled (stamp-bumped) node
    // and must be a no-op, even though p3 now waits on the same key
    // through a reused pool slot.
    rig.locks.acquire(rig.p3, 100);
    rig.sys.runFor(4 * tickPerMs);
    EXPECT_EQ(rig.sys.faults().stats().lockTimeouts, 0u);
    EXPECT_EQ(rig.locks.holderOf(100), rig.p2);
    EXPECT_EQ(rig.locks.waiterCount(), 1u);
}

TEST(LockTimeout, SameTickGrantVsTimeoutIsDeterministic)
{
    // The release lands on exactly the timeout tick. Event order
    // within a tick is FIFO, the timeout was scheduled first (at
    // enqueue), so the waiter times out and the release then retires
    // the uncontended resource — on every run.
    auto outcome = [](TimeoutRig &rig) {
        rig.locks.acquire(rig.p1, 100);
        rig.locks.acquire(rig.p2, 100);
        rig.sys.eq().scheduleAfter(
            rig.sys.faults().lockWaitTimeoutTicks(),
            [&rig] { rig.locks.release(rig.p1, 100, rig.sys); });
        rig.sys.runFor(10 * tickPerMs);
        return std::make_pair(rig.sys.faults().stats().lockTimeouts,
                              rig.locks.holderOf(100));
    };
    TimeoutRig a, b;
    const auto ra = outcome(a);
    const auto rb = outcome(b);
    EXPECT_EQ(ra.first, 1u);
    EXPECT_EQ(ra.second, nullptr);
    EXPECT_EQ(ra, rb);
}

TEST(LockManager, StatsCountAcquires)
{
    Rig rig;
    rig.locks.acquire(rig.p1, 5);
    rig.locks.acquire(rig.p2, 5);
    EXPECT_EQ(rig.locks.acquires(), 2u);
    rig.locks.resetStats();
    EXPECT_EQ(rig.locks.acquires(), 0u);
    EXPECT_EQ(rig.locks.conflicts(), 0u);
}

TEST(LockManagerSharded, ShardOfPartitionsTheKeySpace)
{
    LockManager k1(1);
    LockManager k4(4);
    EXPECT_EQ(k1.shards(), 1u);
    EXPECT_EQ(k4.shards(), 4u);
    bool seen[4] = {};
    for (LockKey k = 0; k < 4096; ++k) {
        EXPECT_EQ(k1.shardOf(k), 0u);
        const unsigned s = k4.shardOf(k);
        ASSERT_LT(s, 4u);
        seen[s] = true;
        // Stable: the owner never changes for a fixed key.
        EXPECT_EQ(k4.shardOf(k), s);
    }
    // A decorrelated hash must reach every shard on a dense range.
    EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

/**
 * The same contended op sequence through K=1 and K=4 managers must be
 * observationally identical: sharding only partitions storage, never
 * semantics (grant/queue/FIFO/statistics).
 */
TEST(LockManagerSharded, ShardedMatchesUnshardedSemantics)
{
    Rig rig; // Supplies sys + processes; rig.locks is the K=1 side.
    LockManager k4(4);
    auto drive = [&rig](LockManager &lm) {
        // Keys chosen to land in distinct shards of a 4-way split.
        for (LockKey k : {1ull, 2ull, 3ull, 5ull, 8ull, 13ull}) {
            lm.acquire(rig.p1, k);
            lm.acquire(rig.p2, k); // Queues.
        }
        lm.acquire(rig.p3, 1);           // Second waiter on key 1.
        lm.release(rig.p1, 1, rig.sys);  // Hand-off to p2.
        lm.release(rig.p2, 1, rig.sys);  // Hand-off to p3.
        lm.release(rig.p1, 2, rig.sys);  // Hand-off to p2.
    };
    drive(rig.locks);
    drive(k4);
    EXPECT_EQ(k4.heldCount(), rig.locks.heldCount());
    EXPECT_EQ(k4.waiterCount(), rig.locks.waiterCount());
    EXPECT_EQ(k4.acquires(), rig.locks.acquires());
    EXPECT_EQ(k4.conflicts(), rig.locks.conflicts());
    for (LockKey k : {1ull, 2ull, 3ull, 5ull, 8ull, 13ull})
        EXPECT_EQ(k4.holderOf(k), rig.locks.holderOf(k)) << k;
}

TEST(LockManagerSharded, ReserveAndChurnStayAllocationFree)
{
    Rig rig;
    LockManager k4(4);
    // reserve() gives each shard the ceiling share, but the shard
    // hash does not split a dense key range exactly evenly — so size
    // the reservation to the *largest* shard's actual population
    // (reserving 4×max hands each shard max).
    unsigned res_per_shard[4] = {};
    unsigned wait_per_shard[4] = {};
    for (LockKey k = 0; k < 256; ++k)
        ++res_per_shard[k4.shardOf(k)];
    for (LockKey k = 0; k < 32; ++k)
        ++wait_per_shard[k4.shardOf(k)];
    const unsigned max_res =
        *std::max_element(res_per_shard, res_per_shard + 4);
    const unsigned max_wait =
        *std::max_element(wait_per_shard, wait_per_shard + 4);
    k4.reserve(4 * max_res, 4 * max_wait);
    const std::uint64_t allocs = k4.tableAllocations();
    for (int round = 0; round < 50; ++round) {
        for (LockKey k = 0; k < 256; ++k)
            k4.acquire(rig.p1, k);
        for (LockKey k = 0; k < 32; ++k)
            k4.acquire(rig.p2, k); // Queued waiters exercise the pools.
        for (LockKey k = 0; k < 256; ++k)
            k4.release(rig.p1, k, rig.sys);
        for (LockKey k = 0; k < 32; ++k)
            k4.release(rig.p2, k, rig.sys);
    }
    EXPECT_EQ(k4.tableAllocations(), allocs);
    EXPECT_EQ(k4.heldCount(), 0u);
    EXPECT_EQ(k4.waiterCount(), 0u);
}

TEST(LockTimeoutSharded, TimeoutsWorkPerShard)
{
    TimeoutRig rig; // Carries the 5 ms lock-wait fault plan.
    LockManager k4(4);
    k4.bind(&rig.sys);
    // Two contended keys in different shards, both waiters expire.
    const LockKey ka = 1, kb = 2;
    ASSERT_NE(k4.shardOf(ka), k4.shardOf(kb));
    k4.acquire(rig.p1, ka);
    k4.acquire(rig.p1, kb);
    EXPECT_FALSE(k4.acquire(rig.p2, ka));
    EXPECT_FALSE(k4.acquire(rig.p3, kb));
    rig.sys.runFor(10 * tickPerMs);
    EXPECT_EQ(rig.sys.faults().stats().lockTimeouts, 2u);
    EXPECT_EQ(k4.holderOf(ka), rig.p1);
    EXPECT_EQ(k4.holderOf(kb), rig.p1);
    EXPECT_EQ(k4.waiterCount(), 0u);
}

} // namespace
