/**
 * @file
 * Tests for the client auto-tuner (the Table 1 methodology).
 */

#include <gtest/gtest.h>

#include "core/client_tuner.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::core;

RunKnobs
trialKnobs()
{
    RunKnobs k;
    k.warmup = ticksFromSeconds(0.08);
    k.measure = ticksFromSeconds(0.25);
    return k;
}

TEST(ClientTuner, ReachesTargetOnCachedSetup)
{
    OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 1;
    const TunedClients t =
        ClientTuner::tune(cfg, 0.90, 64, trialKnobs());
    EXPECT_GE(t.achievedUtil, 0.90);
    EXPECT_FALSE(t.ioBound);
    // Paper found 8 clients at (10 W, 1P); small machines saturate
    // with a handful of clients.
    EXPECT_LE(t.clients, 16u);
    EXPECT_GE(t.trials, 1u);
}

TEST(ClientTuner, MoreProcessorsNeedMoreClients)
{
    OltpConfiguration one, four;
    one.warehouses = 10;
    one.processors = 1;
    four.warehouses = 10;
    four.processors = 4;
    const TunedClients t1 =
        ClientTuner::tune(one, 0.90, 64, trialKnobs());
    const TunedClients t4 =
        ClientTuner::tune(four, 0.90, 64, trialKnobs());
    EXPECT_GE(t4.clients, t1.clients);
}

TEST(ClientTuner, CeilingMarksIoBound)
{
    OltpConfiguration cfg;
    cfg.warehouses = 100;
    cfg.processors = 4;
    // An absurdly low ceiling cannot reach 90%.
    const TunedClients t = ClientTuner::tune(cfg, 0.90, 4, trialKnobs());
    EXPECT_TRUE(t.ioBound || t.achievedUtil >= 0.90);
    EXPECT_LE(t.clients, 4u);
}

TEST(ClientTuner, TrivialTargetSatisfiedImmediately)
{
    OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 1;
    const TunedClients t =
        ClientTuner::tune(cfg, 0.10, 64, trialKnobs());
    EXPECT_EQ(t.trials, 1u);
    EXPECT_GE(t.achievedUtil, 0.10);
}

} // namespace
