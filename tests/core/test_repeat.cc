/**
 * @file
 * Tests for repeated-measurement statistics (the paper's six-repeat
 * methodology).
 */

#include <gtest/gtest.h>

#include "core/repeat.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::core;

RunKnobs
fastKnobs()
{
    RunKnobs k;
    k.warmup = ticksFromSeconds(0.08);
    k.measure = ticksFromSeconds(0.25);
    return k;
}

TEST(RepeatRun, ProducesRequestedRepeats)
{
    OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 1;
    const RepeatedResult rep = repeatRun(cfg, fastKnobs(), 3);
    ASSERT_EQ(rep.runs.size(), 3u);
    EXPECT_EQ(rep.tps().n, 3u);
}

TEST(RepeatRun, SeedsDifferAcrossRepeats)
{
    OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 1;
    const RepeatedResult rep = repeatRun(cfg, fastKnobs(), 3);
    // Different seeds perturb throughput at least slightly.
    EXPECT_GT(rep.tps().max, rep.tps().min);
}

TEST(RepeatRun, MeanWithinRunEnvelope)
{
    OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 2;
    const RepeatedResult rep = repeatRun(cfg, fastKnobs(), 4);
    const MetricStats cpi = rep.cpi();
    EXPECT_GE(cpi.mean, cpi.min);
    EXPECT_LE(cpi.mean, cpi.max);
    EXPECT_GE(cpi.stddev, 0.0);
    // Simulation noise on CPI is small relative to the mean.
    EXPECT_LT(cpi.stddev, 0.15 * cpi.mean);
}

TEST(RepeatRun, Ci95ShrinksWithMoreRepeats)
{
    MetricStats few, many;
    few.stddev = many.stddev = 1.0;
    few.n = 3;
    many.n = 12;
    EXPECT_GT(few.ci95(), many.ci95());
}

TEST(RepeatRun, SingleRunHasNoInterval)
{
    MetricStats one;
    one.stddev = 1.0;
    one.n = 1;
    EXPECT_DOUBLE_EQ(one.ci95(), 0.0);
}

TEST(RepeatRun, CustomMetricExtractor)
{
    OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 1;
    const RepeatedResult rep = repeatRun(cfg, fastKnobs(), 2);
    const MetricStats log_kb = rep.stats(
        [](const RunResult &r) { return r.logKbPerTxn; });
    EXPECT_GT(log_kb.mean, 3.0);
    EXPECT_LT(log_kb.mean, 10.0);
}

TEST(RepeatRun, ParallelReplicasAreBitIdentical)
{
    // jobs only changes host scheduling: every replica derives its RNG
    // streams from its own seed, so serial and parallel execution must
    // agree bit for bit, replica by replica.
    OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 1;
    const RepeatedResult serial = repeatRun(cfg, fastKnobs(), 3, 1);
    const RepeatedResult parallel = repeatRun(cfg, fastKnobs(), 3, 3);
    ASSERT_EQ(serial.runs.size(), parallel.runs.size());
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
        const RunResult &a = serial.runs[i];
        const RunResult &b = parallel.runs[i];
        EXPECT_EQ(a.tps, b.tps) << "replica " << i;
        EXPECT_EQ(a.txnsCommitted, b.txnsCommitted) << "replica " << i;
        EXPECT_EQ(a.eventsFired, b.eventsFired) << "replica " << i;
        EXPECT_EQ(a.cpi, b.cpi) << "replica " << i;
        EXPECT_EQ(a.mpi, b.mpi) << "replica " << i;
        EXPECT_EQ(a.avgLatencyMs, b.avgLatencyMs) << "replica " << i;
    }
}

TEST(AggregateRuns, MeansCountsAndProfilingSums)
{
    OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 1;
    const RepeatedResult rep = repeatRun(cfg, fastKnobs(), 3);
    const RunResult agg = aggregateRuns(rep.runs);
    // Doubles become means, profiling fields become sums, and the
    // configuration identity is replica 0's.
    EXPECT_NEAR(agg.tps, rep.tps().mean, 1e-9 * rep.tps().mean);
    EXPECT_EQ(agg.warehouses, rep.runs[0].warehouses);
    EXPECT_EQ(agg.processors, rep.runs[0].processors);
    double wall = 0.0;
    std::uint64_t events = 0;
    for (const RunResult &r : rep.runs) {
        wall += r.wallSeconds;
        events += r.eventsFired;
    }
    EXPECT_EQ(agg.wallSeconds, wall);
    EXPECT_EQ(agg.eventsFired, events);
    EXPECT_GT(agg.txnsCommitted, 0u);
}

} // namespace
