/**
 * @file
 * Tests for repeated-measurement statistics (the paper's six-repeat
 * methodology).
 */

#include <gtest/gtest.h>

#include "core/repeat.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::core;

RunKnobs
fastKnobs()
{
    RunKnobs k;
    k.warmup = ticksFromSeconds(0.08);
    k.measure = ticksFromSeconds(0.25);
    return k;
}

TEST(RepeatRun, ProducesRequestedRepeats)
{
    OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 1;
    const RepeatedResult rep = repeatRun(cfg, fastKnobs(), 3);
    ASSERT_EQ(rep.runs.size(), 3u);
    EXPECT_EQ(rep.tps().n, 3u);
}

TEST(RepeatRun, SeedsDifferAcrossRepeats)
{
    OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 1;
    const RepeatedResult rep = repeatRun(cfg, fastKnobs(), 3);
    // Different seeds perturb throughput at least slightly.
    EXPECT_GT(rep.tps().max, rep.tps().min);
}

TEST(RepeatRun, MeanWithinRunEnvelope)
{
    OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 2;
    const RepeatedResult rep = repeatRun(cfg, fastKnobs(), 4);
    const MetricStats cpi = rep.cpi();
    EXPECT_GE(cpi.mean, cpi.min);
    EXPECT_LE(cpi.mean, cpi.max);
    EXPECT_GE(cpi.stddev, 0.0);
    // Simulation noise on CPI is small relative to the mean.
    EXPECT_LT(cpi.stddev, 0.15 * cpi.mean);
}

TEST(RepeatRun, Ci95ShrinksWithMoreRepeats)
{
    MetricStats few, many;
    few.stddev = many.stddev = 1.0;
    few.n = 3;
    many.n = 12;
    EXPECT_GT(few.ci95(), many.ci95());
}

TEST(RepeatRun, SingleRunHasNoInterval)
{
    MetricStats one;
    one.stddev = 1.0;
    one.n = 1;
    EXPECT_DOUBLE_EQ(one.ci95(), 0.0);
}

TEST(RepeatRun, CustomMetricExtractor)
{
    OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 1;
    const RepeatedResult rep = repeatRun(cfg, fastKnobs(), 2);
    const MetricStats log_kb = rep.stats(
        [](const RunResult &r) { return r.logKbPerTxn; });
    EXPECT_GT(log_kb.mean, 3.0);
    EXPECT_LT(log_kb.mean, 10.0);
}

} // namespace
