/**
 * @file
 * Tests for the machine presets (Section 3.3 Xeon MP, Section 6.3
 * Itanium2).
 */

#include <gtest/gtest.h>

#include "core/machine.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::core;

TEST(Machine, XeonPresetMatchesPaperSection33)
{
    const MachinePreset m = makeMachine(MachineKind::XeonQuadMp, 4);
    EXPECT_EQ(m.sys.numCpus, 4u);
    EXPECT_DOUBLE_EQ(m.sys.core.freqHz, 1.6e9);
    EXPECT_EQ(m.sys.hierarchy.l2.sizeBytes, 256 * KiB);
    EXPECT_EQ(m.sys.hierarchy.l3.sizeBytes, 1 * MiB);
    EXPECT_EQ(m.sys.disks.dataDisks + m.sys.disks.logDisks, 26u);
    EXPECT_DOUBLE_EQ(m.sys.bus.baseTransactionCycles, 102.0);
    EXPECT_NEAR(m.cacheWarehouseEquivalents, 28.7, 1e-9);
}

TEST(Machine, Itanium2PresetMatchesPaperSection63)
{
    const MachinePreset m = makeMachine(MachineKind::Itanium2Quad, 4);
    EXPECT_DOUBLE_EQ(m.sys.core.freqHz, 1.5e9);
    EXPECT_EQ(m.sys.hierarchy.l3.sizeBytes, 3 * MiB);
    // +50% bus bandwidth -> two-thirds the line occupancy.
    const MachinePreset x = makeMachine(MachineKind::XeonQuadMp, 4);
    EXPECT_NEAR(m.sys.bus.lineOccupancyCycles,
                x.sys.bus.lineOccupancyCycles / 1.5, 1.0);
    // 34 disks and a much larger memory.
    EXPECT_EQ(m.sys.disks.dataDisks + m.sys.disks.logDisks, 34u);
    EXPECT_GT(m.cacheWarehouseEquivalents,
              x.cacheWarehouseEquivalents * 3);
}

TEST(Machine, ProcessorCountPropagates)
{
    for (unsigned p : {1u, 2u, 4u}) {
        const MachinePreset m = makeMachine(MachineKind::XeonQuadMp, p);
        EXPECT_EQ(m.sys.numCpus, p);
    }
}

TEST(Machine, SamplePeriodAndSeedPropagate)
{
    const MachinePreset m =
        makeMachine(MachineKind::XeonQuadMp, 2, 8, 777);
    EXPECT_EQ(m.sys.core.samplePeriod, 8u);
    EXPECT_EQ(m.sys.seed, 777u);
}

TEST(Machine, NamesAreStable)
{
    EXPECT_STREQ(toString(MachineKind::XeonQuadMp), "xeon-quad-mp");
    EXPECT_STREQ(toString(MachineKind::Itanium2Quad), "itanium2-quad");
}

TEST(Machine, RejectsAbsurdProcessorCounts)
{
    EXPECT_DEATH({ makeMachine(MachineKind::XeonQuadMp, 0); },
                 "unsupported");
    EXPECT_DEATH({ makeMachine(MachineKind::XeonQuadMp, 64); },
                 "unsupported");
}

} // namespace
