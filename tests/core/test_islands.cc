/**
 * @file
 * End-to-end topology contract tests: an S=1 run is bit-identical to
 * the legacy model no matter how the other topology/placement knobs
 * are set, multi-socket runs actually exercise the interconnect, and
 * island deployments stay bit-deterministic across study job counts.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/scaling_study.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::core;

RunKnobs
quickKnobs()
{
    RunKnobs knobs;
    knobs.warmup = ticksFromSeconds(0.05);
    knobs.measure = ticksFromSeconds(0.2);
    return knobs;
}

void
expectBitIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.txnsCommitted, b.txnsCommitted);
    EXPECT_EQ(a.tps, b.tps);
    EXPECT_EQ(a.cpuUtil, b.cpuUtil);
    EXPECT_EQ(a.ipx, b.ipx);
    EXPECT_EQ(a.cpi, b.cpi);
    EXPECT_EQ(a.mpi, b.mpi);
    EXPECT_EQ(a.ctxPerTxn, b.ctxPerTxn);
    EXPECT_EQ(a.avgLatencyMs, b.avgLatencyMs);
    EXPECT_EQ(a.p95LatencyMs, b.p95LatencyMs);
    EXPECT_EQ(a.bufferHitRatio, b.bufferHitRatio);
    EXPECT_EQ(a.busUtil, b.busUtil);
    EXPECT_EQ(a.ioqCycles, b.ioqCycles);
    EXPECT_EQ(a.coherenceShareOfL3, b.coherenceShareOfL3);
    EXPECT_EQ(a.remoteMissShare, b.remoteMissShare);
    EXPECT_EQ(a.linkUtil, b.linkUtil);
}

TEST(Islands, SingleSocketRunIsBitIdenticalToLegacy)
{
    // The docs/TOPOLOGY.md S=1 contract, end to end: with one socket,
    // absurd interconnect knobs and the Spread policy, a full run must
    // be bit-identical to the untouched default configuration.
    OltpConfiguration legacy;
    legacy.warehouses = 10;
    legacy.processors = 2;

    OltpConfiguration knobbed = legacy;
    knobbed.topology.sockets = 1;
    knobbed.topology.hopLatencyCycles = 1e6;
    knobbed.topology.linkOccupancyCycles = 1e6;
    knobbed.placement.policy = os::PlacementPolicy::Spread;

    const RunResult a = ExperimentRunner::run(legacy, quickKnobs());
    const RunResult b = ExperimentRunner::run(knobbed, quickKnobs());
    expectBitIdentical(a, b);
    EXPECT_EQ(a.remoteMissShare, 0.0);
    EXPECT_EQ(a.linkUtil, 0.0);
}

TEST(Islands, MultiSocketRunPaysRemoteMisses)
{
    OltpConfiguration cfg;
    cfg.warehouses = 10;
    cfg.processors = 2;
    cfg.topology.sockets = 2;
    const RunResult r = ExperimentRunner::run(cfg, quickKnobs());
    EXPECT_GT(r.remoteMissShare, 0.0);
    EXPECT_LT(r.remoteMissShare, 1.0);
    EXPECT_GT(r.linkUtil, 0.0);
    EXPECT_GT(r.tps, 0.0);
}

TEST(Islands, ShardedDeploymentIsDeterministicAcrossJobs)
{
    // An island sweep measured serially and on a 4-worker pool must
    // agree bit for bit — placement pinning and partitioned draws
    // derive from the per-run seed alone.
    StudyConfig cfg;
    cfg.warehouses = {10, 16};
    cfg.processors = {2};
    cfg.knobs = quickKnobs();
    cfg.topology.sockets = 2;
    cfg.placement.policy = os::PlacementPolicy::Island;
    cfg.placement.islandSockets = 1;

    StudyConfig serial = cfg;
    serial.jobs = 1;
    StudyConfig parallel = cfg;
    parallel.jobs = 4;

    const StudyResult a = ScalingStudy::run(serial);
    const StudyResult b = ScalingStudy::run(parallel);
    ASSERT_EQ(a.series.size(), 1u);
    ASSERT_EQ(b.series.size(), 1u);
    ASSERT_EQ(a.series[0].points.size(), b.series[0].points.size());
    for (std::size_t i = 0; i < a.series[0].points.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectBitIdentical(a.series[0].points[i],
                           b.series[0].points[i]);
    }
}

} // namespace
