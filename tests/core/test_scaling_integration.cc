/**
 * @file
 * End-to-end scaling-study integration test: a reduced W x P sweep on
 * the real stack, asserting the qualitative reproduction targets of
 * DESIGN.md Section 4 (monotonicities, regions, pivot band).
 *
 * This is the most expensive test in the suite (~10 s); it is the
 * in-tree guarantee that the paper's structure survives refactoring.
 */

#include <gtest/gtest.h>

#include "core/representative.hh"
#include "core/scaling_study.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::core;

class ScalingIntegration : public ::testing::Test
{
  protected:
    static const StudyResult &
    study()
    {
        static const StudyResult s = [] {
            StudyConfig cfg;
            cfg.warehouses = {10, 25, 50, 100, 200, 400, 800};
            cfg.processors = {1, 4};
            cfg.knobs.warmup = ticksFromSeconds(0.2);
            cfg.knobs.measure = ticksFromSeconds(0.8);
            return ScalingStudy::run(cfg);
        }();
        return s;
    }

    static const RunResult &
    at(unsigned p, unsigned w)
    {
        for (const auto &r : study().forProcessors(p).points) {
            if (r.warehouses == w)
                return r;
        }
        throw std::runtime_error("missing point");
    }
};

TEST_F(ScalingIntegration, TpsHighestWhenCached)
{
    for (unsigned p : {1u, 4u}) {
        const double cached =
            std::max(at(p, 10).tps, at(p, 25).tps);
        EXPECT_GT(cached, at(p, 400).tps) << p << "P";
        EXPECT_GT(cached, at(p, 800).tps) << p << "P";
    }
}

TEST_F(ScalingIntegration, MoreProcessorsMoreTps)
{
    for (unsigned w : {10u, 100u, 800u})
        EXPECT_GT(at(4, w).tps, at(1, w).tps) << w << "W";
}

TEST_F(ScalingIntegration, OsShareGrowsWithW)
{
    for (unsigned p : {1u, 4u}) {
        EXPECT_LT(at(p, 10).osCycleShare, 0.10) << p << "P";
        EXPECT_GT(at(p, 800).osCycleShare, at(p, 10).osCycleShare);
        EXPECT_GT(at(p, 800).osCycleShare, 0.12) << p << "P";
    }
}

TEST_F(ScalingIntegration, IpxGrowsUserStaysFlat)
{
    for (unsigned p : {1u, 4u}) {
        EXPECT_GT(at(p, 800).ipx, 1.1 * at(p, 10).ipx) << p << "P";
        EXPECT_GT(at(p, 800).ipxOs, 2.0 * at(p, 10).ipxOs) << p << "P";
        // User IPX roughly flat (within 25%).
        EXPECT_NEAR(at(p, 800).ipxUser, at(p, 10).ipxUser,
                    0.25 * at(p, 10).ipxUser)
            << p << "P";
    }
}

TEST_F(ScalingIntegration, CachedSetupsHaveNegligibleReads)
{
    for (unsigned p : {1u, 4u}) {
        EXPECT_LT(at(p, 10).diskReadKbPerTxn, 8.0) << p << "P";
        EXPECT_LT(at(p, 25).diskReadKbPerTxn, 10.0) << p << "P";
    }
}

TEST_F(ScalingIntegration, ReadsGrowBeyondTheCacheCrossover)
{
    for (unsigned p : {1u, 4u}) {
        EXPECT_GT(at(p, 200).diskReadKbPerTxn,
                  2.0 * at(p, 25).diskReadKbPerTxn + 1.0)
            << p << "P";
        EXPECT_GT(at(p, 800).diskReadKbPerTxn,
                  at(p, 100).diskReadKbPerTxn)
            << p << "P";
    }
}

TEST_F(ScalingIntegration, LogVolumeFlatNearSixKb)
{
    for (unsigned p : {1u, 4u}) {
        for (unsigned w : {10u, 100u, 800u}) {
            EXPECT_GT(at(p, w).logKbPerTxn, 3.5) << p << "P " << w;
            EXPECT_LT(at(p, w).logKbPerTxn, 9.0) << p << "P " << w;
        }
    }
}

TEST_F(ScalingIntegration, WritebackAppearsOnlyUnderPressure)
{
    for (unsigned p : {1u, 4u}) {
        EXPECT_LT(at(p, 10).diskWriteKbPerTxn, 2.0) << p << "P";
        EXPECT_GT(at(p, 800).diskWriteKbPerTxn, 2.0) << p << "P";
    }
}

TEST_F(ScalingIntegration, ContextSwitchesTrackDiskReads)
{
    for (unsigned p : {1u, 4u}) {
        EXPECT_GT(at(p, 800).ctxPerTxn, 2.0 * at(p, 25).ctxPerTxn)
            << p << "P";
    }
}

TEST_F(ScalingIntegration, CpiAndMpiGrowThenFlatten)
{
    for (unsigned p : {1u, 4u}) {
        // Growth from cached to scaled.
        EXPECT_GT(at(p, 800).cpi, 1.1 * at(p, 10).cpi) << p << "P";
        EXPECT_GT(at(p, 800).mpi, 1.15 * at(p, 10).mpi) << p << "P";
        // Flattening: the early rise (10->100) dominates the late
        // rise per warehouse (100->800).
        const double early = (at(p, 100).cpi - at(p, 10).cpi) / 90.0;
        const double late = (at(p, 800).cpi - at(p, 100).cpi) / 700.0;
        EXPECT_GT(early, 2.0 * late) << p << "P";
    }
}

TEST_F(ScalingIntegration, MpiDoesNotGrowWithProcessors)
{
    // Paper Section 5.2: coherence does not inflate MPI with P.
    for (unsigned w : {10u, 100u, 800u}) {
        EXPECT_NEAR(at(4, w).mpi, at(1, w).mpi, 0.25 * at(1, w).mpi)
            << w << "W";
    }
}

TEST_F(ScalingIntegration, CoherenceShareOfMissesIsSmall)
{
    for (unsigned w : {10u, 100u, 800u})
        EXPECT_LT(at(4, w).coherenceShareOfL3, 0.10) << w << "W";
}

TEST_F(ScalingIntegration, CpiGrowsWithProcessors)
{
    for (unsigned w : {10u, 100u})
        EXPECT_GT(at(4, w).cpi, at(1, w).cpi) << w << "W";
}

TEST_F(ScalingIntegration, BusBusierWithMoreProcessors)
{
    for (unsigned w : {10u, 100u}) {
        EXPECT_GT(at(4, w).busUtil, 2.0 * at(1, w).busUtil) << w << "W";
        EXPECT_GT(at(4, w).ioqCycles, at(1, w).ioqCycles) << w << "W";
    }
    // 1P IOQ stays near the unloaded 102 cycles at every W.
    for (unsigned w : {10u, 100u, 800u})
        EXPECT_NEAR(at(1, w).ioqCycles, 102.0, 12.0) << w << "W";
}

TEST_F(ScalingIntegration, L3MissesDominateCpi)
{
    for (unsigned p : {1u, 4u}) {
        for (unsigned w : {100u, 800u}) {
            EXPECT_GT(at(p, w).breakdown.l3Share(), 0.4)
                << p << "P " << w;
        }
    }
}

TEST_F(ScalingIntegration, FlatComponentsStayFlat)
{
    // Branch/TLB/TC contributions barely move across W (Figure 12).
    for (unsigned p : {1u, 4u}) {
        const auto &a = at(p, 10).breakdown;
        const auto &b = at(p, 800).breakdown;
        EXPECT_NEAR(a.branch, b.branch, 0.15 * a.branch) << p << "P";
        EXPECT_NEAR(a.tlb, b.tlb, 0.15 * a.tlb) << p << "P";
        EXPECT_NEAR(a.tc, b.tc, 0.4 * std::max(a.tc, 0.01)) << p << "P";
    }
}

TEST_F(ScalingIntegration, PivotsInPaperBand)
{
    const Recommendation rec =
        RepresentativeConfigSelector::select(study());
    for (const PivotRow &row : rec.pivots) {
        // Paper Table 5: all pivots below 150 warehouses.
        EXPECT_GT(row.cpiPivotW, 20.0) << row.processors << "P";
        EXPECT_LT(row.cpiPivotW, 160.0) << row.processors << "P";
        EXPECT_GT(row.mpiPivotW, 20.0) << row.processors << "P";
        EXPECT_LT(row.mpiPivotW, 160.0) << row.processors << "P";
    }
    EXPECT_GE(rec.recommendedW, 50u);
    EXPECT_LE(rec.recommendedW, 300u);
}

TEST_F(ScalingIntegration, ScaledLineExtrapolatesLargeSetups)
{
    // Section 6.2: behaviour at 800 W predicted from the scaled-region
    // line fit on <= 400 W within ~12%.
    for (unsigned p : {1u, 4u}) {
        const auto &series = study().forProcessors(p);
        std::vector<double> xs, ys;
        for (const auto &r : series.points) {
            if (r.warehouses <= 400) {
                xs.push_back(r.warehouses);
                ys.push_back(r.cpi);
            }
        }
        const auto fit = analysis::fitTwoSegment(xs, ys);
        const double predicted = analysis::extrapolateScaled(fit, 800.0);
        EXPECT_NEAR(predicted, at(p, 800).cpi, 0.12 * at(p, 800).cpi)
            << p << "P";
    }
}

} // namespace
