/**
 * @file
 * Tests for study CSV persistence: round-trip fidelity, corruption
 * detection.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/study_io.hh"

namespace
{

using namespace odbsim;
using namespace odbsim::core;

StudyResult
sampleStudy()
{
    StudyResult study;
    for (unsigned p : {1u, 4u}) {
        StudySeries s;
        s.processors = p;
        for (unsigned w : {10u, 100u, 800u}) {
            RunResult r;
            r.processors = p;
            r.warehouses = w;
            r.clients = w / 10 + p;
            r.measureSeconds = 1.5;
            r.txnsCommitted = 1000 + w;
            r.tps = 300.5 + w;
            r.ironLawTps = r.tps;
            r.cpuUtil = 0.93;
            r.osCycleShare = 0.11;
            r.osInstrShare = 0.09;
            r.ipx = 1.1e6;
            r.ipxUser = 1.0e6;
            r.ipxOs = 0.1e6;
            r.cpi = 4.25;
            r.cpiUser = 4.0;
            r.cpiOs = 6.5;
            r.mpi = 0.0105;
            r.mpiUser = 0.0100;
            r.mpiOs = 0.0150;
            r.diskReadKbPerTxn = 12.25;
            r.diskWriteKbPerTxn = 3.5;
            r.logKbPerTxn = 5.75;
            r.diskReadsPerTxn = 1.5;
            r.ctxPerTxn = 4.5;
            r.bufferHitRatio = 0.97;
            r.avgDiskUtil = 0.4;
            r.diskReadLatencyMs = 4.2;
            r.busUtil = 0.41;
            r.ioqCycles = 139.5;
            r.coherenceShareOfL3 = 0.02;
            r.breakdown.inst = 0.5;
            r.breakdown.branch = 0.08;
            r.breakdown.tlb = 0.07;
            r.breakdown.tc = 0.16;
            r.breakdown.l2 = 0.1;
            r.breakdown.l3 = 3.1;
            r.breakdown.other = 0.24;
            s.points.push_back(r);
        }
        study.series.push_back(std::move(s));
    }
    return study;
}

TEST(StudyIo, RoundTripPreservesEverything)
{
    const StudyResult in = sampleStudy();
    std::stringstream buf;
    saveStudyCsv(in, buf);
    StudyResult out;
    ASSERT_TRUE(loadStudyCsv(buf, out));

    ASSERT_EQ(out.series.size(), in.series.size());
    for (std::size_t s = 0; s < in.series.size(); ++s) {
        ASSERT_EQ(out.series[s].processors, in.series[s].processors);
        ASSERT_EQ(out.series[s].points.size(),
                  in.series[s].points.size());
        for (std::size_t i = 0; i < in.series[s].points.size(); ++i) {
            const RunResult &a = in.series[s].points[i];
            const RunResult &b = out.series[s].points[i];
            EXPECT_EQ(b.warehouses, a.warehouses);
            EXPECT_EQ(b.clients, a.clients);
            EXPECT_EQ(b.txnsCommitted, a.txnsCommitted);
            EXPECT_DOUBLE_EQ(b.tps, a.tps);
            EXPECT_DOUBLE_EQ(b.cpi, a.cpi);
            EXPECT_DOUBLE_EQ(b.mpi, a.mpi);
            EXPECT_DOUBLE_EQ(b.ipxOs, a.ipxOs);
            EXPECT_DOUBLE_EQ(b.logKbPerTxn, a.logKbPerTxn);
            EXPECT_DOUBLE_EQ(b.ioqCycles, a.ioqCycles);
            EXPECT_DOUBLE_EQ(b.breakdown.l3, a.breakdown.l3);
            EXPECT_DOUBLE_EQ(b.breakdown.other, a.breakdown.other);
        }
    }
}

TEST(StudyIo, RejectsWrongHeader)
{
    std::stringstream buf;
    buf << "not,a,study\n1,2,3\n";
    StudyResult out;
    EXPECT_FALSE(loadStudyCsv(buf, out));
}

TEST(StudyIo, RejectsMalformedRow)
{
    const StudyResult in = sampleStudy();
    std::stringstream buf;
    saveStudyCsv(in, buf);
    std::string text = buf.str();
    text += "4,garbage\n";
    std::stringstream corrupted(text);
    StudyResult out;
    EXPECT_FALSE(loadStudyCsv(corrupted, out));
}

TEST(StudyIo, RejectsEmptyStream)
{
    std::stringstream buf;
    StudyResult out;
    EXPECT_FALSE(loadStudyCsv(buf, out));
}

TEST(StudyIo, FileRoundTrip)
{
    const std::string path = "/tmp/odbsim_study_io_test.csv";
    const StudyResult in = sampleStudy();
    ASSERT_TRUE(saveStudyCsv(in, path));
    StudyResult out;
    ASSERT_TRUE(loadStudyCsv(path, out));
    EXPECT_EQ(out.series.size(), 2u);
    std::remove(path.c_str());
}

TEST(StudyIo, MissingFileFailsCleanly)
{
    StudyResult out;
    EXPECT_FALSE(loadStudyCsv("/nonexistent/odbsim.csv", out));
}

TEST(StudyIo, ProfileRoundTripPreservesPointCosts)
{
    StudyResult study = sampleStudy();
    double wall = 0.25;
    std::uint64_t events = 1000;
    for (auto &s : study.series) {
        for (auto &p : s.points) {
            p.wallSeconds = wall += 0.5;
            p.eventsFired = events *= 3;
        }
    }
    std::stringstream buf;
    saveStudyProfileCsv(study, buf);
    std::vector<PointProfile> out;
    ASSERT_TRUE(loadStudyProfileCsv(buf, out));
    ASSERT_EQ(out.size(), 6u);
    std::size_t i = 0;
    for (const auto &s : study.series) {
        for (const auto &p : s.points) {
            SCOPED_TRACE("row " + std::to_string(i));
            EXPECT_EQ(out[i].processors, p.processors);
            EXPECT_EQ(out[i].warehouses, p.warehouses);
            EXPECT_NEAR(out[i].wallSeconds, p.wallSeconds, 1e-6);
            EXPECT_EQ(out[i].eventsFired, p.eventsFired);
            ++i;
        }
    }
}

TEST(StudyIo, ProfileRejectsStudyCsvHeader)
{
    // A profile sidecar path accidentally pointed at a study CSV (or
    // vice versa) must fail cleanly, not misparse.
    const StudyResult study = sampleStudy();
    std::stringstream buf;
    saveStudyCsv(study, buf);
    std::vector<PointProfile> out;
    EXPECT_FALSE(loadStudyProfileCsv(buf, out));
    EXPECT_TRUE(out.empty());
}

TEST(StudyIo, ProfileRejectsMalformedRow)
{
    const StudyResult study = sampleStudy();
    std::stringstream buf;
    saveStudyProfileCsv(study, buf);
    std::string text = buf.str();
    text += "4,garbage\n";
    std::stringstream corrupted(text);
    std::vector<PointProfile> out;
    EXPECT_FALSE(loadStudyProfileCsv(corrupted, out));
    EXPECT_TRUE(out.empty());
}

TEST(StudyIo, ProfileMissingFileFailsCleanly)
{
    std::vector<PointProfile> out;
    EXPECT_FALSE(loadStudyProfileCsv("/nonexistent/odbsim_profile.csv",
                                     out));
}

} // namespace
